package visibility_test

import (
	"fmt"
	"sync"
	"testing"

	"visibility"
)

func TestQuickstartFlow(t *testing.T) {
	for _, alg := range []string{"raycast", "warnock", "paint", "paint-naive"} {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			rt := visibility.New(visibility.Config{Algorithm: alg, Validate: true, Workers: 4})
			defer rt.Close()
			cells := rt.CreateRegion("cells", visibility.Line(0, 63), "v")
			blocks := cells.PartitionEqual("B", 4)
			if !blocks.Disjoint() || !blocks.Complete() {
				t.Fatal("PartitionEqual must be disjoint and complete")
			}
			for i := 0; i < 4; i++ {
				rt.Launch(visibility.TaskSpec{
					Name:     "init",
					Accesses: []visibility.Access{visibility.Write(blocks.Sub(i), "v")},
					Kernel: visibility.Kernel{
						Write: func(_ int, p visibility.Point, _ float64) float64 { return float64(p.C[0]) },
					},
				})
			}
			rt.Launch(visibility.TaskSpec{
				Name:     "double",
				Accesses: []visibility.Access{visibility.Write(cells, "v")},
				Kernel: visibility.Kernel{
					Write: func(_ int, _ visibility.Point, in float64) float64 { return 2 * in },
				},
			})
			snap := rt.Read(cells, "v")
			for x := int64(0); x < 64; x++ {
				if v, ok := snap.Get(visibility.Pt(x)); !ok || v != float64(2*x) {
					t.Fatalf("cells[%d] = %v, %v", x, v, ok)
				}
			}
			if rt.Stats(cells).Launches == 0 {
				t.Error("no stats recorded")
			}
		})
	}
}

func TestReductionsAndAliasedPartitions(t *testing.T) {
	rt := visibility.New(visibility.Config{Validate: true})
	defer rt.Close()
	r := rt.CreateRegion("r", visibility.Line(0, 9), "v")
	r.Fill("v", 1)
	overlapping := r.Partition("O", []visibility.IndexSpace{
		visibility.Line(0, 6),
		visibility.Line(4, 9),
	})
	if overlapping.Disjoint() {
		t.Fatal("fixture should be aliased")
	}
	for i := 0; i < 2; i++ {
		rt.Launch(visibility.TaskSpec{
			Name:     "add",
			Accesses: []visibility.Access{visibility.Reduce(visibility.OpSum, overlapping.Sub(i), "v")},
			Kernel:   visibility.Kernel{Reduce: func(_ int, _ visibility.Point) float64 { return 10 }},
		})
	}
	snap := rt.Read(r, "v")
	if v, _ := snap.Get(visibility.Pt(5)); v != 21 { // 1 + 10 + 10 (both pieces)
		t.Errorf("overlap point = %v, want 21", v)
	}
	if v, _ := snap.Get(visibility.Pt(0)); v != 11 {
		t.Errorf("exclusive point = %v, want 11", v)
	}
}

func TestMinMaxReductions(t *testing.T) {
	rt := visibility.New(visibility.Config{Validate: true})
	defer rt.Close()
	r := rt.CreateRegion("r", visibility.Line(0, 0), "lo", "hi")
	r.Fill("lo", 100)
	r.Fill("hi", -100)
	for i := 0; i < 5; i++ {
		v := float64(i * 7 % 5)
		rt.Launch(visibility.TaskSpec{
			Name: "bound",
			Accesses: []visibility.Access{
				visibility.Reduce(visibility.OpMin, r, "lo"),
				visibility.Reduce(visibility.OpMax, r, "hi"),
			},
			Kernel: visibility.Kernel{Reduce: func(ai int, _ visibility.Point) float64 { return v }},
		})
	}
	if v, _ := rt.Read(r, "lo").Get(visibility.Pt(0)); v != 0 {
		t.Errorf("min = %v", v)
	}
	if v, _ := rt.Read(r, "hi").Get(visibility.Pt(0)); v != 4 {
		t.Errorf("max = %v", v)
	}
}

func TestBodyReceivesReads(t *testing.T) {
	rt := visibility.New(visibility.Config{})
	defer rt.Close()
	r := rt.CreateRegion("r", visibility.Line(0, 3), "v")
	r.Init("v", func(p visibility.Point) float64 { return float64(p.C[0] * p.C[0]) })

	var mu sync.Mutex
	var sum float64
	f := rt.Launch(visibility.TaskSpec{
		Name:     "observe",
		Accesses: []visibility.Access{visibility.Read(r, "v")},
		Kernel: visibility.Kernel{Body: func(in []*visibility.Snapshot) {
			mu.Lock()
			defer mu.Unlock()
			in[0].Each(func(_ visibility.Point, v float64) { sum += v })
		}},
	})
	f.Wait()
	if !f.Done() {
		t.Error("future should be done after Wait")
	}
	mu.Lock()
	defer mu.Unlock()
	if sum != 0+1+4+9 {
		t.Errorf("sum = %v", sum)
	}
}

func Test2DRegions(t *testing.T) {
	rt := visibility.New(visibility.Config{Validate: true})
	defer rt.Close()
	g := rt.CreateRegion("g", visibility.Grid(8, 8), "v")
	quads := g.Partition("Q", []visibility.IndexSpace{
		visibility.Box(0, 0, 3, 3), visibility.Box(4, 0, 7, 3),
		visibility.Box(0, 4, 3, 7), visibility.Box(4, 4, 7, 7),
	})
	for i := 0; i < 4; i++ {
		i := i
		rt.Launch(visibility.TaskSpec{
			Name:     "mark",
			Accesses: []visibility.Access{visibility.Write(quads.Sub(i), "v")},
			Kernel: visibility.Kernel{
				Write: func(_ int, _ visibility.Point, _ float64) float64 { return float64(i + 1) },
			},
		})
	}
	snap := rt.Read(g, "v")
	if v, _ := snap.Get(visibility.Pt2(5, 5)); v != 4 {
		t.Errorf("quadrant 3 = %v", v)
	}
	if v, _ := snap.Get(visibility.Pt2(1, 6)); v != 3 {
		t.Errorf("quadrant 2 = %v", v)
	}
	if snap.Len() != 64 {
		t.Errorf("snapshot len = %d", snap.Len())
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"unknown algorithm", func() { visibility.New(visibility.Config{Algorithm: "zbuffer"}) }},
		{"no fields", func() {
			rt := visibility.New(visibility.Config{})
			rt.CreateRegion("r", visibility.Line(0, 9))
		}},
		{"unknown field", func() {
			rt := visibility.New(visibility.Config{})
			r := rt.CreateRegion("r", visibility.Line(0, 9), "v")
			r.Fill("w", 0)
		}},
		{"init after launch", func() {
			rt := visibility.New(visibility.Config{})
			defer rt.Close()
			r := rt.CreateRegion("r", visibility.Line(0, 9), "v")
			rt.Launch(visibility.TaskSpec{
				Name:     "w",
				Accesses: []visibility.Access{visibility.Write(r, "v")},
			})
			r.Fill("v", 1)
		}},
		{"empty task", func() {
			rt := visibility.New(visibility.Config{})
			rt.Launch(visibility.TaskSpec{Name: "none"})
		}},
		{"too many pieces", func() {
			rt := visibility.New(visibility.Config{})
			r := rt.CreateRegion("r", visibility.Line(0, 3), "v")
			r.PartitionEqual("P", 10)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.f()
		})
	}
}

func TestHelpers(t *testing.T) {
	u := visibility.Union(visibility.Line(0, 3), visibility.Line(10, 12))
	if u.Volume() != 7 {
		t.Errorf("Union volume = %d", u.Volume())
	}
	if visibility.Union().Volume() != 0 {
		t.Error("empty Union should be empty")
	}
	ps := visibility.Points(5, 1, 3)
	if ps.Volume() != 3 || !ps.Contains(visibility.Pt(3)) {
		t.Errorf("Points = %v", ps)
	}
	if visibility.Grid(4, 4).Volume() != 16 {
		t.Error("Grid volume wrong")
	}
	if visibility.Box(1, 1, 2, 2).Volume() != 4 {
		t.Error("Box volume wrong")
	}
}

// TestManyTasksStress launches a few hundred tasks across algorithms with
// validation on, as an end-to-end soak of the whole public stack.
func TestManyTasksStress(t *testing.T) {
	rt := visibility.New(visibility.Config{Algorithm: "warnock", Validate: true, Workers: 8})
	defer rt.Close()
	r := rt.CreateRegion("r", visibility.Line(0, 99), "a", "b")
	blocks := r.PartitionEqual("B", 10)
	windows := r.Partition("W", []visibility.IndexSpace{
		visibility.Line(5, 24), visibility.Line(20, 59), visibility.Line(50, 99),
	})
	for iter := 0; iter < 10; iter++ {
		for i := 0; i < 10; i++ {
			rt.Launch(visibility.TaskSpec{
				Name:     fmt.Sprintf("w%d", i),
				Accesses: []visibility.Access{visibility.Write(blocks.Sub(i), "a")},
				Kernel: visibility.Kernel{Write: func(_ int, p visibility.Point, in float64) float64 {
					return in + float64(p.C[0])
				}},
			})
		}
		for i := 0; i < 3; i++ {
			rt.Launch(visibility.TaskSpec{
				Name: fmt.Sprintf("r%d", i),
				Accesses: []visibility.Access{
					visibility.Read(windows.Sub(i), "a"),
					visibility.Reduce(visibility.OpSum, windows.Sub(i), "b"),
				},
				Kernel: visibility.Kernel{Reduce: func(_ int, _ visibility.Point) float64 { return 1 }},
			})
		}
	}
	rt.Wait()
	snap := rt.Read(r, "b")
	if v, _ := snap.Get(visibility.Pt(22)); v != 20 { // in windows 0 and 1, 10 iters
		t.Errorf("b[22] = %v, want 20", v)
	}
}

func TestRuntimeRegionLookup(t *testing.T) {
	rt := visibility.New(visibility.Config{})
	defer rt.Close()
	r := rt.CreateRegion("alpha", visibility.Line(0, 3), "v")
	if rt.Region("alpha") != r {
		t.Error("Region lookup by name failed")
	}
	if rt.Region("beta") != nil {
		t.Error("missing region should be nil")
	}
}

func TestSnapshotNil(t *testing.T) {
	var s *visibility.Snapshot
	if _, ok := s.Get(visibility.Pt(0)); ok {
		t.Error("nil snapshot Get should report not-ok")
	}
}
