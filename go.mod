module visibility

go 1.22
