package visibility

import (
	"fmt"
	"io"
	"sort"

	"visibility/internal/core"
	"visibility/internal/field"
	"visibility/internal/graph"
)

// EdgeExplain is the provenance of one dependence edge, rendered with
// names resolved and everything stringified deterministically — the
// explain engine's answer to "why does task Dst wait on task Src?".
type EdgeExplain struct {
	Src     int    `json:"src"`
	SrcName string `json:"srcName"`
	Dst     int    `json:"dst"`
	DstName string `json:"dstName"`
	// Kind is "region" (interfering requirement pair found by an
	// analyzer), "future" (explicit ordering edge), or "replay" (edge
	// instantiated from a committed trace).
	Kind     string `json:"kind"`
	Analyzer string `json:"analyzer,omitempty"`
	// Region-interference detail (kind "region").
	SrcReq  int    `json:"srcReq"`
	DstReq  int    `json:"dstReq"`
	Field   string `json:"field,omitempty"`
	SrcPriv string `json:"srcPriv,omitempty"`
	DstPriv string `json:"dstPriv,omitempty"`
	Overlap string `json:"overlap,omitempty"`
	// Trace is the committed trace id for kind "replay"; -1 otherwise.
	Trace int `json:"trace"`
}

// TaskExplain is the full provenance of one task's incoming dependence
// edges, ascending by producer ID.
type TaskExplain struct {
	Task  int           `json:"task"`
	Name  string        `json:"name"`
	Edges []EdgeExplain `json:"edges"`
}

// CritTask is one step of the critical path: the task, its deterministic
// virtual weight, and its earliest start/finish under the weights.
type CritTask struct {
	Task   int     `json:"task"`
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	Start  float64 `json:"start"`
	Finish float64 `json:"finish"`
}

// CritContributor attributes makespan to one critical-path task.
type CritContributor struct {
	Task     int     `json:"task"`
	Name     string  `json:"name"`
	Weight   float64 `json:"weight"`
	SharePct float64 `json:"sharePct"`
}

// CritSummary is the weighted critical-path profile of a discovered
// dependence graph. All times are virtual units (analysis volume +
// points touched), derived from the workload rather than measured from
// analyzer internals, so the summary is byte-identical across runs of
// the same workload — even under different analyzers or shard counts.
type CritSummary struct {
	Tasks       int               `json:"tasks"`
	Edges       int               `json:"edges"`
	Length      float64           `json:"length"`
	Work        float64           `json:"work"`
	Parallelism float64           `json:"parallelism"`
	Path        []CritTask        `json:"path"`
	Top         []CritContributor `json:"top"`
	LevelSlack  []float64         `json:"levelSlack"`
}

// fieldName resolves a field ID back to its name by sorted scan — the
// map is tiny and iterating sorted names keeps the output independent
// of map order.
func (ts *treeState) fieldName(id field.ID) string {
	names := make([]string, 0, len(ts.fields))
	for name := range ts.fields {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if ts.fields[name] == id {
			return name
		}
	}
	return fmt.Sprintf("field%d", id)
}

func (ts *treeState) taskName(id int) string {
	if id >= 0 && id < len(ts.stream.Tasks) {
		return ts.stream.Tasks[id].Name
	}
	return ""
}

func (ts *treeState) explainEdge(r core.EdgeReason) EdgeExplain {
	e := EdgeExplain{
		Src: r.Src, SrcName: ts.taskName(r.Src),
		Dst: r.Dst, DstName: ts.taskName(r.Dst),
		Kind: r.Kind.String(), Analyzer: r.Analyzer,
		SrcReq: r.SrcReq, DstReq: r.DstReq, Trace: r.Trace,
	}
	if r.Kind == core.ReasonRegion {
		e.Field = ts.fieldName(r.Field)
		e.SrcPriv = r.SrcPriv.String()
		e.DstPriv = r.DstPriv.String()
		e.Overlap = r.Overlap.String()
	}
	return e
}

// Explain returns the provenance of every incoming dependence edge of
// the given task on the tree containing r. Requires Config.Provenance;
// returns nil when provenance is off, nothing has launched, or task is
// out of range.
//
// confined to runtime-owner
func (rt *Runtime) Explain(r *Region, task int) *TaskExplain {
	ts := r.tree
	if ts.prov == nil || ts.exec == nil || task < 0 || task >= len(ts.stream.Tasks) {
		return nil
	}
	out := &TaskExplain{Task: task, Name: ts.taskName(task), Edges: []EdgeExplain{}}
	for _, reason := range ts.prov.Reasons(task) {
		out.Edges = append(out.Edges, ts.explainEdge(reason))
	}
	return out
}

// buildDAG assembles the discovered dependence DAG of ts.
func (ts *treeState) buildDAG() *graph.DAG {
	return graph.FromStream(ts.stream.Tasks, ts.exec.Deps())
}

// weights returns each task's virtual cost (analysis ops + exec points)
// from the provenance cost table.
func (ts *treeState) weights() []float64 {
	out := make([]float64, len(ts.stream.Tasks))
	for i := range out {
		c := ts.prov.Cost(i)
		out[i] = float64(c.AnalysisOps + c.ExecVirt)
	}
	return out
}

// MustPrecede reports whether every legal execution of the tree
// containing r runs task a before task b — a is a transitive dependence
// ancestor of b. Queries are O(1) against cached precedence labels (no
// graph walk); the labels rebuild only when new tasks have launched
// since the last query. Requires Config.Provenance.
//
// confined to runtime-owner
func (rt *Runtime) MustPrecede(r *Region, a, b int) bool {
	ts := r.tree
	if ts.prov == nil || ts.exec == nil {
		return false
	}
	if ts.labels == nil || ts.labelsAt != len(ts.stream.Tasks) {
		ts.labels = ts.buildDAG().BuildLabels()
		ts.labelsAt = len(ts.stream.Tasks)
	}
	return ts.labels.MustPrecede(a, b)
}

// CriticalPath computes the weighted critical-path profile of the tree
// containing r: the longest chain under deterministic virtual weights,
// per-level slack, and the top-k heaviest tasks on the chain (k ≤ 0
// returns them all). Requires Config.Provenance; returns nil when
// provenance is off or nothing has launched.
//
// confined to runtime-owner
func (rt *Runtime) CriticalPath(r *Region, k int) *CritSummary {
	ts := r.tree
	if ts.prov == nil || ts.exec == nil {
		return nil
	}
	d := ts.buildDAG()
	c := d.WeightedCriticalPath(ts.weights())
	out := &CritSummary{
		Tasks:  len(d.Tasks),
		Edges:  d.Edges(),
		Length: c.Length,
		Work:   c.Work,
		Path:   []CritTask{},
		Top:    []CritContributor{},
	}
	if c.Length > 0 {
		out.Parallelism = c.Work / c.Length
	}
	for _, id := range c.Path {
		out.Path = append(out.Path, CritTask{
			Task: id, Name: ts.taskName(id),
			Weight: c.Weights[id], Start: c.Start[id], Finish: c.Finish[id],
		})
	}
	for _, con := range d.TopContributors(c, k) {
		out.Top = append(out.Top, CritContributor{
			Task: con.Task, Name: con.Name, Weight: con.Weight, SharePct: 100 * con.Share,
		})
	}
	out.LevelSlack = d.LevelSlack(c)
	return out
}

// WriteDOTCrit renders the discovered dependence graph of the tree
// containing r with the weighted critical path highlighted and
// time-annotated. Requires Config.Provenance.
//
// confined to runtime-owner
func (rt *Runtime) WriteDOTCrit(r *Region, w io.Writer) error {
	ts := r.tree
	if ts.prov == nil || ts.exec == nil {
		return graph.FromStream(nil, nil).WriteDOT(w)
	}
	d := ts.buildDAG()
	return d.WriteDOTCrit(w, d.WeightedCriticalPath(ts.weights()))
}
