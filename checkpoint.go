package visibility

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"visibility/internal/fault"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/index"
)

// Checkpoint format: every region tree with its structure (spaces, fields,
// partitions in creation order) and the current coherent contents of every
// field, read through the coherence algorithm itself.

type ckptFile struct {
	Version int          `json:"version"`
	Regions []ckptRegion `json:"regions"`
	// Sum is the IEEE CRC-32 of the JSON encoding of Regions, in hex.
	// Verified on restore when present, so corruption that changes any
	// structural or value content is detected rather than silently
	// restored; absent (omitempty) in checkpoints written before the field
	// existed, which restore without the check.
	Sum string `json:"sum,omitempty"`
}

// regionSum computes the Regions checksum stored in ckptFile.Sum. JSON
// encoding is canonical for this purpose: map keys are sorted and float64
// values use the shortest round-tripping representation, so
// encode→decode→encode is byte-stable.
func regionSum(regions []ckptRegion) (string, error) {
	raw, err := json.Marshal(regions)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(raw)), nil
}

type ckptRegion struct {
	Name       string          `json:"name"`
	Dim        int             `json:"dim"`
	Space      [][]int64       `json:"space"`
	Fields     []string        `json:"fields"`
	Partitions []ckptPartition `json:"partitions"`
	// Values maps field name to flat (dim coords..., value) tuples for
	// every point of the region.
	Values map[string][][]float64 `json:"values"`
}

type ckptPartition struct {
	Parent int         `json:"parent"` // region ID within the tree
	Name   string      `json:"name"`
	Pieces [][][]int64 `json:"pieces"`
}

func encodeSpace(s IndexSpace) [][]int64 {
	out := make([][]int64, 0, s.NumRects())
	for _, r := range s.Rects() {
		row := make([]int64, 0, 2*s.Dim())
		for a := 0; a < s.Dim(); a++ {
			row = append(row, r.Lo.C[a], r.Hi.C[a])
		}
		out = append(out, row)
	}
	return out
}

// decodeSpace rebuilds an index space from encoded rect rows. It rejects —
// with errors, never panics — every malformed shape an untrusted
// checkpoint can carry: a dimension outside [1, MaxDim], a row whose
// length is not 2·dim, and inverted bounds (lo > hi).
func decodeSpace(dim int, rows [][]int64) (IndexSpace, error) {
	if dim < 1 || dim > geometry.MaxDim {
		return index.Empty(1), fmt.Errorf("visibility: dimension %d outside [1, %d]", dim, geometry.MaxDim)
	}
	rects := make([]geometry.Rect, 0, len(rows))
	for _, row := range rows {
		if len(row) != 2*dim {
			return index.Empty(dim), fmt.Errorf("visibility: malformed rect %v for dim %d", row, dim)
		}
		r := geometry.Rect{Dim: dim}
		for a := 0; a < dim; a++ {
			r.Lo.C[a] = row[2*a]
			r.Hi.C[a] = row[2*a+1]
			if r.Lo.C[a] > r.Hi.C[a] {
				return index.Empty(dim), fmt.Errorf("visibility: inverted rect %v (lo > hi on axis %d)", row, a)
			}
		}
		rects = append(rects, r)
	}
	return index.FromRects(dim, rects...), nil
}

// Checkpoint waits for all launched work, reads every field's current
// contents through the coherence algorithm, and writes a JSON snapshot of
// every region tree — structure and data — to w. The runtime remains
// usable afterwards (the reads participate in dependence analysis like
// any other task).
//
// confined to runtime-owner
func (rt *Runtime) Checkpoint(w io.Writer) error {
	rt.Wait()
	file := ckptFile{Version: 1}
	for _, r := range rt.regions {
		ts := r.tree
		dim := ts.tree.Root.Space.Dim()
		cr := ckptRegion{
			Name:   ts.tree.Root.Name,
			Dim:    dim,
			Space:  encodeSpace(ts.tree.Root.Space),
			Values: make(map[string][][]float64),
		}
		for i := 0; i < ts.tree.Fields.Len(); i++ {
			cr.Fields = append(cr.Fields, ts.tree.Fields.Name(field.ID(i)))
		}
		for i := 0; i < ts.tree.NumPartitions(); i++ {
			p := ts.tree.PartitionAt(i)
			cp := ckptPartition{Parent: p.Parent.ID, Name: p.Name}
			for _, sub := range p.Subregions {
				cp.Pieces = append(cp.Pieces, encodeSpace(sub.Space))
			}
			cr.Partitions = append(cr.Partitions, cp)
		}
		for _, fname := range cr.Fields {
			var snap *Snapshot
			if ts.frozen {
				snap = rt.Read(r, fname)
			} else {
				// Nothing launched: the initial contents are current.
				snap = &Snapshot{st: ts.init[ts.fields[fname]]}
			}
			var rows [][]float64
			snap.Each(func(p Point, v float64) {
				row := make([]float64, 0, dim+1)
				for a := 0; a < dim; a++ {
					row = append(row, float64(p.C[a]))
				}
				rows = append(rows, append(row, v))
			})
			cr.Values[fname] = rows
		}
		file.Regions = append(file.Regions, cr)
	}
	sum, err := regionSum(file.Regions)
	if err != nil {
		return err
	}
	file.Sum = sum
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(&file); err != nil {
		return err
	}
	out := buf.Bytes()
	// Fault plane: corrupt the encoded bytes before they reach the writer,
	// as a failing disk or wire would.
	if fired, v := rt.cfg.Faults.FireValue(fault.CkptCorrupt, int64(len(out))); fired {
		fault.FlipBit(out, v)
	}
	_, err = w.Write(out)
	return err
}

// Restore builds a fresh runtime from a checkpoint: regions, fields,
// partitions (in creation order, so derived subregion identities line up),
// and initial contents equal to the snapshot. It returns the root regions
// by name.
func Restore(rd io.Reader, cfg Config) (*Runtime, map[string]*Region, error) {
	raw, err := io.ReadAll(rd)
	if err != nil {
		return nil, nil, fmt.Errorf("visibility: reading checkpoint: %w", err)
	}
	// Fault plane: corrupt the bytes before decoding — the restore path
	// must either round-trip (corruption landed in insignificant bytes) or
	// error, never silently diverge; the checksum below enforces that.
	if fired, v := cfg.Faults.FireValue(fault.RestoreCorrupt, int64(len(raw))); fired {
		fault.FlipBit(raw, v)
	}
	var file ckptFile
	if err := json.Unmarshal(raw, &file); err != nil {
		return nil, nil, fmt.Errorf("visibility: decoding checkpoint: %w", err)
	}
	if file.Version != 1 {
		return nil, nil, fmt.Errorf("visibility: unsupported checkpoint version %d", file.Version)
	}
	if file.Sum != "" {
		sum, err := regionSum(file.Regions)
		if err != nil {
			return nil, nil, fmt.Errorf("visibility: re-encoding checkpoint for checksum: %w", err)
		}
		if sum != file.Sum {
			return nil, nil, fmt.Errorf("visibility: checkpoint checksum mismatch (file %s, contents %s)", file.Sum, sum)
		}
	}
	rt := New(cfg)
	roots := make(map[string]*Region, len(file.Regions))
	for _, cr := range file.Regions {
		// A restore feeds CreateRegion and Partition, which panic on
		// malformed structure by design (program bugs); untrusted bytes
		// must be screened into errors here instead.
		if cr.Name == "" {
			return nil, nil, fmt.Errorf("visibility: checkpoint region with empty name")
		}
		if _, dup := roots[cr.Name]; dup {
			return nil, nil, fmt.Errorf("visibility: duplicate region name %q in checkpoint", cr.Name)
		}
		if len(cr.Fields) == 0 {
			return nil, nil, fmt.Errorf("visibility: checkpoint region %q has no fields", cr.Name)
		}
		seenFields := make(map[string]bool, len(cr.Fields))
		for _, f := range cr.Fields {
			if f == "" || seenFields[f] {
				return nil, nil, fmt.Errorf("visibility: region %q has empty or duplicate field %q", cr.Name, f)
			}
			seenFields[f] = true
		}
		space, err := decodeSpace(cr.Dim, cr.Space)
		if err != nil {
			return nil, nil, err
		}
		root := rt.CreateRegion(cr.Name, space, cr.Fields...)
		roots[cr.Name] = root

		// Partitions recreate in the original creation order; region IDs
		// are then assigned identically, so parent references resolve.
		for _, cp := range cr.Partitions {
			pieces := make([]IndexSpace, 0, len(cp.Pieces))
			for _, enc := range cp.Pieces {
				sp, err := decodeSpace(cr.Dim, enc)
				if err != nil {
					return nil, nil, err
				}
				pieces = append(pieces, sp)
			}
			if cp.Parent < 0 || cp.Parent >= root.tree.tree.NumRegions() {
				return nil, nil, fmt.Errorf("visibility: partition %q references unknown parent region %d", cp.Name, cp.Parent)
			}
			parent := &Region{rt: rt, tree: root.tree, reg: root.tree.tree.Region(cp.Parent)}
			for i, sp := range pieces {
				if !parent.reg.Space.Covers(sp) {
					return nil, nil, fmt.Errorf("visibility: piece %d of partition %q is not a subset of its parent", i, cp.Name)
				}
			}
			parent.Partition(cp.Name, pieces)
		}

		for fname, rows := range cr.Values {
			id, ok := root.tree.fields[fname]
			if !ok {
				return nil, nil, fmt.Errorf("visibility: checkpoint values for unknown field %q", fname)
			}
			st := root.tree.init[id]
			for _, row := range rows {
				if len(row) != cr.Dim+1 {
					return nil, nil, fmt.Errorf("visibility: malformed value row %v", row)
				}
				var p Point
				for a := 0; a < cr.Dim; a++ {
					p.C[a] = int64(row[a])
				}
				if !space.Contains(p) {
					return nil, nil, fmt.Errorf("visibility: value row %v outside region %q", row, cr.Name)
				}
				st.Set(p, row[cr.Dim])
			}
		}
	}
	return rt, roots, nil
}

// Partitions returns the partitions of this region, in creation order.
func (r *Region) Partitions() []*Partition {
	out := make([]*Partition, 0, len(r.reg.Partitions))
	for _, p := range r.reg.Partitions {
		out = append(out, &Partition{r: r, p: p})
	}
	return out
}

// PartitionName returns the partition's name.
func (p *Partition) PartitionName() string { return p.p.Name }
