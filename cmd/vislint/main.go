// Command vislint runs the visibility runtime's custom static analyzers
// (internal/lint) over the module and reports invariant violations.
//
// Usage:
//
//	go run ./cmd/vislint [-run name,name] [-list] [packages]
//
// With no package patterns it checks ./... . It exits 0 when the tree is
// clean, 1 when any analyzer reports a diagnostic, and 2 when loading or
// analysis itself fails. Individual findings can be suppressed — with a
// reason — by a "//vislint:ignore <analyzer> <why>" comment on or above
// the offending line.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"visibility/internal/lint"
)

func main() {
	var (
		runNames = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list     = flag.Bool("list", false, "list available analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vislint [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *runNames != "" {
		want := make(map[string]bool)
		for _, n := range strings.Split(*runNames, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fmt.Fprintf(os.Stderr, "vislint: unknown analyzer %q\n", n)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vislint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vislint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "vislint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
