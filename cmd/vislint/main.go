// Command vislint runs the visibility runtime's custom static analyzers
// (internal/lint) over the module and reports invariant violations.
//
// Usage:
//
//	go run ./cmd/vislint [-run name,name] [-list] [-json] [packages]
//
// With no package patterns it checks ./... . It exits 0 when the tree is
// clean, 1 when any analyzer reports a diagnostic, and 2 when loading or
// analysis itself fails. Individual findings can be suppressed with a
// "//lint:allow <analyzer> <rationale>" comment on or above the offending
// line; the rationale is mandatory. (The older "//vislint:ignore" spelling
// is still honored.)
//
// -json emits machine-readable output for CI: a single JSON object with a
// "findings" array of {file, line, col, analyzer, message}, sorted by
// position, with file paths relative to the working directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"visibility/internal/lint"
)

// finding is the JSON shape of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	var (
		runNames = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list     = flag.Bool("list", false, "list available analyzers and exit")
		jsonOut  = flag.Bool("json", false, "emit findings as JSON (file/line/col/analyzer/message)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vislint [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *runNames != "" {
		want := make(map[string]bool)
		for _, n := range strings.Split(*runNames, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fmt.Fprintf(os.Stderr, "vislint: unknown analyzer %q\n", n)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vislint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vislint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		cwd, _ := os.Getwd()
		out := struct {
			Findings []finding `json:"findings"`
			Count    int       `json:"count"`
		}{Findings: []finding{}, Count: len(diags)}
		for _, d := range diags {
			file := d.Pos.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
			}
			out.Findings = append(out.Findings, finding{
				File: file, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "vislint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "vislint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
