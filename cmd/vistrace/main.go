// Command vistrace inspects what the dynamic analyses see: it runs a
// benchmark application's task stream (at a small machine size) through a
// chosen coherence algorithm and dumps the discovered dependence graph —
// as text or Graphviz DOT — together with parallelism statistics and the
// analyzer's operation counters. It is the debugging lens for answers like
// "why did these two tasks serialize?".
//
// Usage:
//
//	vistrace [-app circuit] [-algo raycast] [-nodes 4] [-iters 2]
//	         [-format text|dot] [-exact]
package main

import (
	"flag"
	"fmt"
	"os"

	"visibility/internal/algo"
	"visibility/internal/apps"
	"visibility/internal/apps/circuit"
	"visibility/internal/apps/pennant"
	"visibility/internal/apps/stencil"
	"visibility/internal/core"
	"visibility/internal/field"
	"visibility/internal/graph"
	"visibility/internal/index"
)

func main() {
	appFlag := flag.String("app", "circuit", "application: stencil, circuit, pennant")
	algoFlag := flag.String("algo", "raycast", "algorithm: raycast, warnock, paint, paint-naive")
	nodes := flag.Int("nodes", 4, "simulated machine size")
	iters := flag.Int("iters", 2, "iterations of the main loop")
	format := flag.String("format", "text", "output: text or dot")
	exact := flag.Bool("exact", false, "also run the exact O(n²) reference and report precision")
	dumpSets := flag.Bool("dump-sets", false, "dump the live equivalence sets per field (warnock/raycast)")
	dumpTree := flag.Bool("dump-tree", false, "print the application's region tree (Figure 2(c) style)")
	flag.Parse()

	builders := map[string]apps.Builder{
		"stencil": stencil.New, "circuit": circuit.New, "pennant": pennant.New,
	}
	build, ok := builders[*appFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "vistrace: unknown app %q\n", *appFlag)
		os.Exit(2)
	}
	newAn, err := algo.Lookup(*algoFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vistrace: %v\n", err)
		os.Exit(2)
	}

	inst := build(*nodes)
	if *dumpTree {
		if err := inst.Tree.Print(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "vistrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	an := newAn(inst.Tree, core.Options{})
	stream := core.NewStream(inst.Tree)
	deps := make(map[int][]int)
	for it := 0; it < *iters; it++ {
		for _, l := range inst.Emit(stream, it) {
			deps[l.Task.ID] = an.Analyze(l.Task).Deps
		}
	}

	dag := graph.FromStream(stream.Tasks, deps)
	switch *format {
	case "dot":
		if err := dag.WriteDOT(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "vistrace: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Printf("%s on %s, %d nodes, %d iterations: %d launches\n\n",
			*algoFlag, *appFlag, *nodes, *iters, len(stream.Tasks))
		for _, t := range stream.Tasks {
			fmt.Printf("%-28s deps=%v\n", t.String(), deps[t.ID])
		}
	}

	// Parallelism summary: width of each antichain level of the DAG.
	widths := dag.Widths()
	fmt.Printf("\ncritical path: %d levels for %d tasks (%d dependence edges)\n",
		len(widths), len(stream.Tasks), dag.Edges())
	fmt.Printf("level widths (parallelism): %v — average parallelism %.1f\n",
		widths, dag.AverageParallelism())

	if *exact {
		ex := core.ExactDeps(stream.Tasks)
		got := make([][]int, len(stream.Tasks))
		for i := range got {
			got[i] = deps[i]
		}
		if err := core.CheckSound(got, ex); err != nil {
			fmt.Printf("SOUNDNESS VIOLATION: %v\n", err)
			os.Exit(1)
		}
		exEdges := 0
		for _, ds := range ex {
			exEdges += len(ds)
		}
		fmt.Printf("soundness: ok (all %d exact interferences preserved; %d spurious direct edges)\n",
			exEdges, core.CheckPrecise(got, ex))
	}

	st := an.Stats()
	fmt.Printf("\nanalyzer counters: entriesScanned=%d overlapTests=%d views=%d setsCreated=%d coalesced=%d bvhVisited=%d\n",
		st.EntriesScanned, st.OverlapTests, st.ViewsCreated, st.SetsCreated, st.SetsCoalesced, st.BVHVisited)

	if *dumpSets {
		type setDumper interface {
			SetSpaces(f field.ID) []index.Space
			EquivalenceSets(f field.ID) int
		}
		d, ok := an.(setDumper)
		if !ok {
			fmt.Printf("\n(%s does not maintain equivalence sets)\n", *algoFlag)
			return
		}
		fmt.Println("\nlive equivalence sets:")
		for f := 0; f < inst.Tree.Fields.Len(); f++ {
			id := field.ID(f)
			fmt.Printf("  field %-10s %d sets\n", inst.Tree.Fields.Name(id), d.EquivalenceSets(id))
			for _, sp := range d.SetSpaces(id) {
				fmt.Printf("    %v (|%d|)\n", sp, sp.Volume())
			}
		}
	}
}
