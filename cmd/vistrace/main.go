// Command vistrace inspects what the dynamic analyses see: it runs a
// benchmark application's task stream (at a small machine size) through a
// chosen coherence algorithm and dumps the discovered dependence graph —
// as text or Graphviz DOT — together with parallelism statistics and the
// analyzer's operation counters. It is the debugging lens for answers like
// "why did these two tasks serialize?".
//
// With -trace-out it additionally replays the stream over the simulated
// distributed machine and writes a Chrome trace-event (Perfetto-loadable)
// JSON timeline: one track per simulated node (exec and util processors),
// every work item as a duration event, every coherence message as a flow
// arrow, and the analyzer's wall-clock phase spans as a separate process.
//
// Usage:
//
//	vistrace [-app circuit] [-algo raycast] [-nodes 4] [-iters 2]
//	         [-format text|dot] [-exact] [-trace-out trace.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"visibility/internal/algo"
	"visibility/internal/apps"
	"visibility/internal/cluster"
	"visibility/internal/core"
	"visibility/internal/dist"
	"visibility/internal/field"
	"visibility/internal/graph"
	"visibility/internal/index"
	"visibility/internal/obs"

	// The app packages self-register with the apps registry.
	_ "visibility/internal/apps/circuit"
	_ "visibility/internal/apps/pennant"
	_ "visibility/internal/apps/stencil"
)

func main() {
	appFlag := flag.String("app", "circuit", "application: stencil, circuit, pennant")
	algoFlag := flag.String("algo", "raycast", "algorithm: raycast, warnock, paint, paint-naive")
	nodes := flag.Int("nodes", 4, "simulated machine size")
	iters := flag.Int("iters", 2, "iterations of the main loop")
	format := flag.String("format", "text", "output: text or dot")
	exact := flag.Bool("exact", false, "also run the exact O(n²) reference and report precision")
	dumpSets := flag.Bool("dump-sets", false, "dump the live equivalence sets per field (warnock/raycast)")
	dumpTree := flag.Bool("dump-tree", false, "print the application's region tree (Figure 2(c) style)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON timeline of the simulated run to this file")
	flag.Parse()

	// Validate every enumerated flag up front: a typo must be a usage
	// error, not a silent fall-through to the default behavior.
	build, ok := apps.Lookup(*appFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "vistrace: unknown app %q (have %v)\n", *appFlag, apps.Names())
		os.Exit(2)
	}
	newAn, err := algo.Lookup(*algoFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vistrace: %v\n", err)
		os.Exit(2)
	}
	switch *format {
	case "text", "dot":
	default:
		fmt.Fprintf(os.Stderr, "vistrace: unknown format %q (have text, dot)\n", *format)
		os.Exit(2)
	}

	inst := build(*nodes)
	if *dumpTree {
		if err := inst.Tree.Print(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "vistrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	an := newAn(inst.Tree, core.Options{})
	stream := core.NewStream(inst.Tree)
	deps := make(map[int][]int)
	for it := 0; it < *iters; it++ {
		for _, l := range inst.Emit(stream, it) {
			deps[l.Task.ID] = an.Analyze(l.Task).Deps
		}
	}

	dag := graph.FromStream(stream.Tasks, deps)
	switch *format {
	case "dot":
		if err := dag.WriteDOT(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "vistrace: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Printf("%s on %s, %d nodes, %d iterations: %d launches\n\n",
			*algoFlag, *appFlag, *nodes, *iters, len(stream.Tasks))
		for _, t := range stream.Tasks {
			fmt.Printf("%-28s deps=%v\n", t.String(), deps[t.ID])
		}
	}

	// Parallelism summary: width of each antichain level of the DAG.
	widths := dag.Widths()
	fmt.Printf("\ncritical path: %d levels for %d tasks (%d dependence edges)\n",
		len(widths), len(stream.Tasks), dag.Edges())
	fmt.Printf("level widths (parallelism): %v — average parallelism %.1f\n",
		widths, dag.AverageParallelism())

	if *exact {
		ex := core.ExactDeps(stream.Tasks)
		got := make([][]int, len(stream.Tasks))
		for i := range got {
			got[i] = deps[i]
		}
		if err := core.CheckSound(got, ex); err != nil {
			fmt.Printf("SOUNDNESS VIOLATION: %v\n", err)
			os.Exit(1)
		}
		exEdges := 0
		for _, ds := range ex {
			exEdges += len(ds)
		}
		fmt.Printf("soundness: ok (all %d exact interferences preserved; %d spurious direct edges)\n",
			exEdges, core.CheckPrecise(got, ex))
	}

	st := an.Stats()
	fmt.Printf("\nanalyzer counters: entriesScanned=%d overlapTests=%d views=%d setsCreated=%d coalesced=%d bvhVisited=%d\n",
		st.EntriesScanned, st.OverlapTests, st.ViewsCreated, st.SetsCreated, st.SetsCoalesced, st.BVHVisited)

	if *traceOut != "" {
		if err := exportTrace(build, newAn, *nodes, *iters, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "vistrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote Chrome trace-event JSON to %s (load it in Perfetto or chrome://tracing)\n", *traceOut)
	}

	if *dumpSets {
		dumpEquivalenceSets(an, inst, *algoFlag)
	}
}

// exportTrace replays the application's stream through a dist-driven run on
// the simulated machine (DCR on, owner-computes placement, like the paper's
// default configuration) and writes the resulting timeline as Chrome
// trace-event JSON: virtual-time exec/util tracks per node with message flow
// arrows, plus the analyzer's wall-clock phase spans as an extra process.
func exportTrace(build apps.Builder, newAn algo.New, nodes, iters int, path string) error {
	inst := build(nodes)
	ccfg := cluster.DefaultConfig(nodes)
	machine := cluster.New(ccfg)
	machine.EnableTracing()

	spans := obs.NewBuffer(1 << 16)
	spans.SetEnabled(true)
	dcfg := dist.DefaultConfig(true)
	dcfg.Spans = spans
	driver := dist.New(machine, inst.Tree, dist.NewAnalyzerFunc(newAn),
		dist.OwnerByPartition(inst.Owned, nodes), dcfg)

	stream := core.NewStream(inst.Tree)
	if inst.EmitInit != nil {
		for _, l := range inst.EmitInit(stream) {
			driver.Launch(l.Task, l.Node, l.Duration)
		}
	}
	for it := 0; it < iters; it++ {
		for _, l := range inst.Emit(stream, it) {
			driver.Launch(l.Task, l.Node, l.Duration)
		}
	}
	driver.Barrier()

	tw := obs.NewTraceWriter()
	machine.ExportTrace(tw)
	wallPid := machine.Nodes()
	tw.ProcessName(wallPid, "analyzer (wall clock)")
	tw.ThreadName(wallPid, 0, "analysis phases")
	tw.Spans(wallPid, 0, spans.Snapshot())

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tw.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func dumpEquivalenceSets(an core.Analyzer, inst *apps.Instance, algoName string) {
	type setDumper interface {
		SetSpaces(f field.ID) []index.Space
		EquivalenceSets(f field.ID) int
	}
	d, ok := an.(setDumper)
	if !ok {
		fmt.Printf("\n(%s does not maintain equivalence sets)\n", algoName)
		return
	}
	fmt.Println("\nlive equivalence sets:")
	for f := 0; f < inst.Tree.Fields.Len(); f++ {
		id := field.ID(f)
		fmt.Printf("  field %-10s %d sets\n", inst.Tree.Fields.Name(id), d.EquivalenceSets(id))
		for _, sp := range d.SetSpaces(id) {
			fmt.Printf("    %v (|%d|)\n", sp, sp.Volume())
		}
	}
}
