// Command visserve serves the multi-tenant visibility analysis service
// over HTTP: sessions own runtimes, clients submit wire-format workloads,
// and admission control bounds every queue (429 + Retry-After on
// overload). On SIGTERM/SIGINT the server drains: queued batches finish,
// every session's runtime is released, and the process exits cleanly.
//
// With -load N it instead runs the load harness: N concurrent sessions
// replay the graphsim workload against a server (an in-process one by
// default, or -target URL), verify the results are deterministic across
// tenants, and report admission statistics.
//
// With -fault <plan> the deterministic fault-injection plane is armed
// for the whole process (worker crashes, admission bursts, checkpoint
// corruption — see internal/fault for the site catalog and plan
// grammar); every injection lands in the flight recorder, so a SIGQUIT
// dump shows exactly which faults fired.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"visibility/internal/fault"
	"visibility/internal/server"
	"visibility/internal/server/client"
	"visibility/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "visserve:", err)
		os.Exit(1)
	}
}

// say writes a status line to the harness-provided writer. Status output
// is advisory — a failed write must not abort a drain in progress — so
// the error is deliberately dropped here, in exactly one place.
func say(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("visserve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	maxSessions := fs.Int("max-sessions", 64, "concurrent session cap")
	maxQueue := fs.Int("max-queue", 32, "per-session queue depth cap")
	maxInFlight := fs.Int("max-inflight", 256, "global in-flight job cap")
	idle := fs.Duration("idle", 5*time.Minute, "idle session expiry (negative disables)")
	load := fs.Int("load", 0, "run the load harness with N concurrent sessions instead of serving")
	iterations := fs.Int("iterations", 5, "graphsim iterations per load-mode session")
	target := fs.String("target", "", "load-mode server URL (default: start one in-process)")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	recorderCap := fs.Int("recorder-cap", 0, "flight-recorder ring capacity (0 = server default)")
	recorderDump := fs.String("recorder-dump", "", "directory for worker-failure recorder dumps (empty disables; SIGQUIT dumps fall back to the system temp dir)")
	traceOut := fs.String("trace-out", "", "load mode: write the merged Perfetto trace export to this file")
	faultPlan := fs.String("fault", "", "arm the fault-injection plane with this plan string (e.g. \"seed=1;server.worker.panic=every=1,max=1,arg=3\"); injections are journaled to the flight recorder")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var inj *fault.Injector
	if *faultPlan != "" {
		var err error
		if inj, err = fault.NewFromString(*faultPlan); err != nil {
			return err
		}
	}
	cfg := server.Config{
		MaxSessions: *maxSessions,
		MaxQueue:    *maxQueue,
		MaxInFlight: *maxInFlight,
		IdleTimeout: *idle,
		RecorderCap: *recorderCap,
		RecorderDir: *recorderDump,
		EnablePprof: *enablePprof,
		Faults:      inj,
	}
	if *load > 0 {
		return runLoad(stdout, cfg, *target, *load, *iterations, *traceOut)
	}
	return serve(stdout, cfg, *addr, *recorderDump)
}

// serve runs the service until SIGTERM/SIGINT, then drains. SIGQUIT is
// the flight-recorder escape hatch: each one dumps the recorder window
// to disk (dumpDir, or the system temp dir when unset) without stopping
// the server, so a live incident can be captured in passing.
func serve(stdout io.Writer, cfg server.Config, addr, dumpDir string) error {
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}

	// Register before announcing the address: once a caller can see the
	// server it may signal it, and an unhandled SIGQUIT kills the process.
	if dumpDir == "" {
		dumpDir = os.TempDir()
	}
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	defer signal.Stop(quit)
	go func() {
		for range quit {
			path, err := srv.DumpRecorder(dumpDir)
			if err != nil {
				say(stdout, "recorder dump failed: %v\n", err)
				continue
			}
			say(stdout, "recorder dump written to %s\n", path)
		}
	}()
	say(stdout, "visserve listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("draining sessions: %w", err)
	}
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("closing listener: %w", err)
	}
	say(stdout, "visserve drained: %d sessions remain, %d jobs in flight\n",
		srv.SessionCount(), srv.InFlight())
	return nil
}

// runLoad drives n concurrent sessions through the graphsim workload and
// checks cross-tenant determinism. With traceOut set it downloads the
// merged Perfetto trace export before closing the sessions — span rings
// die with their sessions, so the order matters.
func runLoad(stdout io.Writer, cfg server.Config, target string, n, iterations int, traceOut string) error {
	if target == "" {
		srv := server.New(cfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() {
			if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
				say(stdout, "in-process server: %v\n", err)
			}
		}()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				say(stdout, "draining in-process server: %v\n", err)
			}
			if err := hs.Shutdown(ctx); err != nil {
				say(stdout, "closing in-process server: %v\n", err)
			}
			say(stdout, "drained: %d sessions remain\n", srv.SessionCount())
		}()
		target = "http://" + ln.Addr().String()
		say(stdout, "load harness: in-process server at %s\n", target)
	}

	wl := wire.ExampleGraphsim(iterations)
	c := client.New(target)
	c.RetryWait = 20 * time.Millisecond

	type result struct {
		sum float64
		err error
	}
	results := make([]result, n)
	sessions := make([]*client.Session, n)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := &results[i]
			sess, err := c.CreateSession(client.SessionConfig{})
			if err != nil {
				res.err = err
				return
			}
			sessions[i] = sess
			if res.err = sess.Submit(wl); res.err != nil {
				return
			}
			rows, err := sess.Snapshot("N", "up")
			if err != nil {
				res.err = err
				return
			}
			for _, row := range rows {
				res.sum += row[len(row)-1]
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if traceOut != "" {
		data, err := c.DebugTrace()
		if err != nil {
			return fmt.Errorf("fetching trace export: %w", err)
		}
		if err := os.WriteFile(traceOut, data, 0o644); err != nil {
			return fmt.Errorf("writing trace export: %w", err)
		}
		say(stdout, "trace export (%d bytes) written to %s\n", len(data), traceOut)
	}
	for i, sess := range sessions {
		if sess == nil {
			continue
		}
		if err := sess.Close(); err != nil && results[i].err == nil {
			results[i].err = err
		}
	}

	for i, res := range results {
		if res.err != nil {
			return fmt.Errorf("session %d: %w", i, res.err)
		}
		if res.sum != results[0].sum {
			return fmt.Errorf("nondeterminism: session %d sum %v, session 0 sum %v",
				i, res.sum, results[0].sum)
		}
	}
	say(stdout, "load: sessions=%d tasks/session=%d elapsed=%v sum=%v deterministic ✓\n",
		n, len(wl.Tasks), elapsed.Round(time.Millisecond), results[0].sum)
	return nil
}
