package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"visibility"
	"visibility/internal/obs/recorder"
	"visibility/internal/server/client"
	"visibility/internal/wire"
)

// syncBuffer lets the test read run's output while run is still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeEndToEnd exercises the real command path: serve on an
// ephemeral port, replay the quickstart workload over HTTP, compare the
// served snapshot against an in-process run, then drain via SIGTERM —
// the same signal a supervisor sends.
func TestServeEndToEnd(t *testing.T) {
	var out syncBuffer
	errc := make(chan error, 1)
	go func() { errc <- run([]string{"-addr", "127.0.0.1:0"}, &out) }()

	var target string
	deadline := time.Now().Add(10 * time.Second)
	for target == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; output: %q", out.String())
		}
		if s := out.String(); strings.Contains(s, "listening on ") {
			line := s[strings.Index(s, "listening on ")+len("listening on "):]
			target = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	c := client.New(target)
	sess, err := c.CreateSession(client.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(wire.ExampleQuickstart()); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Snapshot("cells", "val")
	if err != nil {
		t.Fatal(err)
	}

	rt := visibility.New(visibility.Config{})
	defer rt.Close()
	env := wire.NewEnv(rt)
	if _, err := env.Apply(wire.ExampleQuickstart()); err != nil {
		t.Fatal(err)
	}
	var want [][]float64
	rt.Read(env.Region("cells"), "val").Each(func(p visibility.Point, v float64) {
		want = append(want, []float64{float64(p.C[0]), v})
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("served snapshot diverges from in-process run")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	// Graceful drain on SIGTERM, as a supervisor would deliver it.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not drain after SIGTERM")
	}
	if s := out.String(); !strings.Contains(s, "drained: 0 sessions remain, 0 jobs in flight") {
		t.Fatalf("drain summary missing from output: %q", s)
	}
}

// TestLoadMode runs the load harness end to end with an in-process
// server and four concurrent tenants.
func TestLoadMode(t *testing.T) {
	var out syncBuffer
	if err := run([]string{"-load", "4", "-iterations", "2"}, &out); err != nil {
		t.Fatalf("load mode failed: %v\noutput: %s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "sessions=4") || !strings.Contains(s, "deterministic ✓") {
		t.Fatalf("load summary missing: %q", s)
	}
	if !strings.Contains(s, "drained: 0 sessions remain") {
		t.Fatalf("load harness did not drain its server: %q", s)
	}
	// 2 iterations × (3 t1 + 3 t2) tasks per session.
	if !strings.Contains(s, fmt.Sprintf("tasks/session=%d", 12)) {
		t.Fatalf("unexpected task count in summary: %q", s)
	}
}

// TestLoadModeTraceOut runs the harness with -trace-out and checks the
// exported file is a Perfetto-loadable trace whose HTTP spans have
// analysis children — the fetch must happen before the sessions close,
// or their span rings are gone.
func TestLoadModeTraceOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "load.trace.json")
	var out syncBuffer
	if err := run([]string{"-load", "2", "-iterations", "1", "-trace-out", path}, &out); err != nil {
		t.Fatalf("load mode failed: %v\noutput: %s", err, out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	httpSpans := map[string]bool{} // span id of each http.workloads span
	for _, ev := range doc.TraceEvents {
		if ev.Name == "http.workloads" && ev.Args["span"] != "" {
			httpSpans[ev.Args["span"]] = false
		}
	}
	if len(httpSpans) == 0 {
		t.Fatal("trace export has no http.workloads spans")
	}
	for _, ev := range doc.TraceEvents {
		if ev.Cat == "analysis" {
			if _, ok := httpSpans[ev.Args["parent"]]; ok {
				httpSpans[ev.Args["parent"]] = true
			}
		}
	}
	for span, hasChild := range httpSpans {
		if !hasChild {
			t.Errorf("http.workloads span %s has no analysis children", span)
		}
	}
}

// TestServeSIGQUITDump serves on an ephemeral port, delivers SIGQUIT,
// and checks the flight recorder lands on disk as a parseable dump —
// without the signal taking the server down.
func TestServeSIGQUITDump(t *testing.T) {
	dir := t.TempDir()
	var out syncBuffer
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-recorder-dump", dir}, &out)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), "listening on ") {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; output: %q", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	var dumpPath string
	for dumpPath == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no recorder dump after SIGQUIT; output: %q", out.String())
		}
		if s := out.String(); strings.Contains(s, "recorder dump written to ") {
			line := s[strings.Index(s, "recorder dump written to ")+len("recorder dump written to "):]
			dumpPath = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	f, err := os.Open(dumpPath)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = recorder.ReadDump(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("SIGQUIT dump does not parse: %v", err)
	}

	// The server is still alive and drains normally.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not drain after SIGTERM")
	}
}
