package main

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"visibility"
	"visibility/internal/server/client"
	"visibility/internal/wire"
)

// syncBuffer lets the test read run's output while run is still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeEndToEnd exercises the real command path: serve on an
// ephemeral port, replay the quickstart workload over HTTP, compare the
// served snapshot against an in-process run, then drain via SIGTERM —
// the same signal a supervisor sends.
func TestServeEndToEnd(t *testing.T) {
	var out syncBuffer
	errc := make(chan error, 1)
	go func() { errc <- run([]string{"-addr", "127.0.0.1:0"}, &out) }()

	var target string
	deadline := time.Now().Add(10 * time.Second)
	for target == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; output: %q", out.String())
		}
		if s := out.String(); strings.Contains(s, "listening on ") {
			line := s[strings.Index(s, "listening on ")+len("listening on "):]
			target = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	c := client.New(target)
	sess, err := c.CreateSession(client.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(wire.ExampleQuickstart()); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Snapshot("cells", "val")
	if err != nil {
		t.Fatal(err)
	}

	rt := visibility.New(visibility.Config{})
	defer rt.Close()
	env := wire.NewEnv(rt)
	if _, err := env.Apply(wire.ExampleQuickstart()); err != nil {
		t.Fatal(err)
	}
	var want [][]float64
	rt.Read(env.Region("cells"), "val").Each(func(p visibility.Point, v float64) {
		want = append(want, []float64{float64(p.C[0]), v})
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("served snapshot diverges from in-process run")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	// Graceful drain on SIGTERM, as a supervisor would deliver it.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not drain after SIGTERM")
	}
	if s := out.String(); !strings.Contains(s, "drained: 0 sessions remain, 0 jobs in flight") {
		t.Fatalf("drain summary missing from output: %q", s)
	}
}

// TestLoadMode runs the load harness end to end with an in-process
// server and four concurrent tenants.
func TestLoadMode(t *testing.T) {
	var out syncBuffer
	if err := run([]string{"-load", "4", "-iterations", "2"}, &out); err != nil {
		t.Fatalf("load mode failed: %v\noutput: %s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "sessions=4") || !strings.Contains(s, "deterministic ✓") {
		t.Fatalf("load summary missing: %q", s)
	}
	if !strings.Contains(s, "drained: 0 sessions remain") {
		t.Fatalf("load harness did not drain its server: %q", s)
	}
	// 2 iterations × (3 t1 + 3 t2) tasks per session.
	if !strings.Contains(s, fmt.Sprintf("tasks/session=%d", 12)) {
		t.Fatalf("unexpected task count in summary: %q", s)
	}
}
