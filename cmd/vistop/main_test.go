package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"visibility/internal/server"
	"visibility/internal/server/client"
	"visibility/internal/wire"
)

func TestRate(t *testing.T) {
	if got := rate(30, 10, 2*time.Second); got != 10 {
		t.Errorf("rate(30, 10, 2s) = %v, want 10", got)
	}
	if got := rate(5, 0, 0); got != 0 {
		t.Errorf("rate with zero dt = %v, want 0", got)
	}
}

func TestLaunches(t *testing.T) {
	m := map[string]int64{
		"raycast/launches":  7,
		"analyzer/launches": 3,
		"sched/cache/hits":  99,
	}
	if got := launches(m); got != 10 {
		t.Errorf("launches = %d, want 10", got)
	}
	if got := launches(nil); got != 0 {
		t.Errorf("launches(nil) = %d, want 0", got)
	}
}

// TestDashboardAgainstLiveServer renders two frames against a real
// server with one active session and checks every table is populated:
// the endpoint rows, the session row with its launch count, and the
// analysis hot spots aggregated from the session's spans.
func TestDashboardAgainstLiveServer(t *testing.T) {
	srv := server.New(server.Config{IdleTimeout: -1})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer func() {
		if err := srv.Shutdown(t.Context()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	c := client.New(hs.URL)
	sess, err := c.CreateSession(client.SessionConfig{Algorithm: "warnock"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(wire.ExampleGraphsim(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Snapshot("N", "up"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	err = run([]string{"-target", hs.URL, "-frames", "2", "-interval", "10ms", "-plain"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"ENDPOINT", "workloads", "snapshot", // HTTP table rows
		"SESSION", sess.ID, "warnock", // session table row
		"HOT SPOT", // analysis-phase attribution
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard output missing %q:\n%s", want, out)
		}
	}
	// -plain renders frames without ANSI escapes.
	if strings.Contains(out, "\x1b[") {
		t.Error("-plain output contains ANSI escape sequences")
	}
	if n := strings.Count(out, "vistop · "); n != 2 {
		t.Errorf("rendered %d frame headers, want 2", n)
	}

	// The default mode clears the screen between frames.
	buf.Reset()
	if err := run([]string{"-target", hs.URL, "-frames", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "\x1b[2J\x1b[H") {
		t.Error("default mode does not clear the screen before a frame")
	}

	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestUnreachableTarget pins the failure mode: a dashboard that can't
// reach its server on the first frame exits with the fetch error.
func TestUnreachableTarget(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-target", "http://127.0.0.1:1", "-frames", "1"}, &buf)
	if err == nil {
		t.Fatal("run against an unreachable target succeeded")
	}
}
