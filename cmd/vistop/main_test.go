package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"visibility/internal/bench"

	"visibility/internal/server"
	"visibility/internal/server/client"
	"visibility/internal/wire"
)

func TestRate(t *testing.T) {
	if got := rate(30, 10, 2*time.Second); got != 10 {
		t.Errorf("rate(30, 10, 2s) = %v, want 10", got)
	}
	if got := rate(5, 0, 0); got != 0 {
		t.Errorf("rate with zero dt = %v, want 0", got)
	}
}

func TestLaunches(t *testing.T) {
	m := map[string]int64{
		"raycast/launches":  7,
		"analyzer/launches": 3,
		"sched/cache/hits":  99,
	}
	if got := launches(m); got != 10 {
		t.Errorf("launches = %d, want 10", got)
	}
	if got := launches(nil); got != 0 {
		t.Errorf("launches(nil) = %d, want 0", got)
	}
}

func TestTraceHitRate(t *testing.T) {
	if got := traceHitRate(map[string]int64{"warnock/launches": 10}); got != "-" {
		t.Errorf("hit rate without replays = %q, want -", got)
	}
	// 75 replayed of 100 total (25 analyzed + 75 replayed) = 75%.
	m := map[string]int64{"warnock/launches": 25, "trace/replayed": 75}
	if got := traceHitRate(m); got != "75" {
		t.Errorf("hit rate = %q, want 75", got)
	}
}

// TestDashboardAgainstLiveServer renders two frames against a real
// server with one active session and checks every table is populated:
// the endpoint rows, the session row with its launch count, and the
// analysis hot spots aggregated from the session's spans.
func TestDashboardAgainstLiveServer(t *testing.T) {
	srv := server.New(server.Config{IdleTimeout: -1})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer func() {
		if err := srv.Shutdown(t.Context()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	c := client.New(hs.URL)
	sess, err := c.CreateSession(client.SessionConfig{Algorithm: "warnock"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(wire.ExampleGraphsim(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Snapshot("N", "up"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	err = run([]string{"-target", hs.URL, "-frames", "2", "-interval", "10ms", "-plain"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"ENDPOINT", "workloads", "snapshot", // HTTP table rows
		"SESSION", sess.ID, "warnock", // session table row
		"TRACE%",   // trace hit-rate column
		"HOT SPOT", // analysis-phase attribution
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard output missing %q:\n%s", want, out)
		}
	}
	// -plain renders frames without ANSI escapes.
	if strings.Contains(out, "\x1b[") {
		t.Error("-plain output contains ANSI escape sequences")
	}
	if n := strings.Count(out, "vistop · "); n != 2 {
		t.Errorf("rendered %d frame headers, want 2", n)
	}

	// The default mode clears the screen between frames.
	buf.Reset()
	if err := run([]string{"-target", hs.URL, "-frames", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "\x1b[2J\x1b[H") {
		t.Error("default mode does not clear the screen before a frame")
	}

	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestUnreachableTarget pins the failure mode: a dashboard that can't
// reach its server on the first frame exits with the fetch error.
func TestUnreachableTarget(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-target", "http://127.0.0.1:1", "-frames", "1"}, &buf)
	if err == nil {
		t.Fatal("run against an unreachable target succeeded")
	}
}

// TestBenchSummary covers the trajectory row: the newest BENCH_<n>.json
// in a directory wins (numerically, so 10 beats 9), the row carries the
// aggregate launch rate and commit, and absent or disabled paths
// produce no row.
func TestBenchSummary(t *testing.T) {
	dir := t.TempDir()
	write := func(name, commit string, lps float64) {
		t.Helper()
		rec := &bench.Record{
			Meta: bench.Meta{Schema: bench.Schema, Commit: commit, GoVersion: "go1.24.0",
				GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 4, Reps: 3, Iters: 3, MaxNodes: 2,
				Apps: []string{"stencil"}},
			Cells: []bench.Cell{{
				App: "stencil", System: "raycast_dcr", Nodes: 1, Launches: 1000,
				WallSeconds: 1000 / lps, LaunchesPerSec: lps,
				InitTime: 0.01, IterTime: 0.002, ThroughputPerNode: 1,
				AllocsPerLaunch: 40, BytesPerLaunch: 3000,
				AnalysisP50Ns: 1, AnalysisP95Ns: 2, AnalysisP99Ns: 3,
			}},
		}
		if err := bench.WriteFile(filepath.Join(dir, name), rec); err != nil {
			t.Fatal(err)
		}
	}
	write("BENCH_9.json", "older00", 1000)
	write("BENCH_10.json", "newer00", 2000)

	line := benchSummary(dir)
	for _, want := range []string{"BENCH_10.json", "newer00", "2000 launches/s", "reps 3"} {
		if !strings.Contains(line, want) {
			t.Errorf("bench row %q missing %q", line, want)
		}
	}
	if got := benchSummary(filepath.Join(dir, "BENCH_9.json")); !strings.Contains(got, "older00") {
		t.Errorf("explicit file ignored: %q", got)
	}
	if got := benchSummary(t.TempDir()); got != "" {
		t.Errorf("empty dir produced a row: %q", got)
	}
	if got := benchSummary(""); got != "" {
		t.Errorf("disabled path produced a row: %q", got)
	}
	// A present-but-corrupt record is surfaced, not silently dropped.
	bad := filepath.Join(dir, "BENCH_11.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := benchSummary(bad); !strings.Contains(got, "unreadable") {
		t.Errorf("corrupt record row = %q, want unreadable marker", got)
	}
}

func TestLatestBenchFile(t *testing.T) {
	dir := t.TempDir()
	if got := latestBenchFile(dir); got != "" {
		t.Errorf("empty dir = %q, want \"\"", got)
	}
	for _, name := range []string{"BENCH_2.json", "BENCH_0.json", "BENCH_x.json", "notbench.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got := latestBenchFile(dir); filepath.Base(got) != "BENCH_2.json" {
		t.Errorf("latest = %q, want BENCH_2.json", got)
	}
}
