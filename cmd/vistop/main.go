// Command vistop is a live terminal dashboard for a running visserve
// instance. Each frame it polls /metrics, /v1/sessions, /debug/spans,
// and /debug/critpath and renders four tables: per-endpoint HTTP traffic
// with latency quantiles, per-session throughput, cache behavior, and
// trace hit rate (the share of launches served by trace replay), a CRIT
// panel with each session tree's weighted critical-path profile
// (virtual makespan, work, parallelism ratio, heaviest bottleneck
// task), and the hottest analysis phases by span time (where analysis
// wall-clock actually goes). A header row summarizes the latest committed BENCH_<n>.json
// benchmark record (see -bench), so live launch rates read against the
// repo's measured trajectory baseline. By default it redraws in place
// every two seconds; -plain appends frames instead (for logs and
// pipes), and -frames bounds the run for scripting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"visibility"
	"visibility/internal/bench"
	"visibility/internal/server/client"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vistop:", err)
		os.Exit(1)
	}
}

// say writes dashboard output; a broken pipe mid-frame is not actionable
// beyond the next frame failing too, so the error is dropped here, in
// exactly one place.
func say(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("vistop", flag.ContinueOnError)
	target := fs.String("target", "http://127.0.0.1:8080", "visserve URL to watch")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	frames := fs.Int("frames", 0, "frames to render before exiting (0 = run until interrupted)")
	plain := fs.Bool("plain", false, "append frames instead of redrawing the screen")
	benchPath := fs.String("bench", ".", "BENCH_<n>.json file or directory holding the committed benchmark trajectory (\"\" hides the bench row)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The committed trajectory point doesn't move while watching a
	// server, so the bench row is resolved once, not per frame.
	benchLine := benchSummary(*benchPath)
	c := client.New(*target)
	var prev *sample
	for frame := 0; *frames == 0 || frame < *frames; frame++ {
		if frame > 0 {
			time.Sleep(*interval)
		}
		cur, err := fetchSample(c)
		if err != nil {
			if prev == nil {
				return err // can't reach the server at all
			}
			say(stdout, "vistop: fetch: %v\n", err)
			continue
		}
		render(stdout, *target, benchLine, prev, cur, *plain)
		prev = cur
	}
	return nil
}

// benchSummary renders the one-line trajectory row from the latest
// committed benchmark record: where the repo's measured baseline stands,
// so live launch rates on the dashboard read against it at a glance.
// Returns "" when there is nothing to show (no record, or disabled).
func benchSummary(path string) string {
	if path == "" {
		return ""
	}
	file := path
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		if file = latestBenchFile(path); file == "" {
			return ""
		}
	}
	rec, err := bench.ReadFile(file)
	if err != nil {
		return fmt.Sprintf("bench · %s · unreadable: %v", filepath.Base(file), err)
	}
	return fmt.Sprintf("bench · %s · commit %s · aggregate %.0f launches/s over %d cells (reps %d)",
		filepath.Base(file), rec.Meta.Commit, rec.AggregateLaunchesPerSec(), len(rec.Cells), rec.Meta.Reps)
}

// latestBenchFile returns the BENCH_<n>.json in dir with the highest n,
// or "" when the directory holds none.
func latestBenchFile(dir string) string {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return ""
	}
	best, bestN := "", -1
	for _, m := range matches {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(m), "BENCH_%d.json", &n); err == nil && n > bestN {
			bestN, best = n, m
		}
	}
	return best
}

// sample is one poll of the server's observability surface.
type sample struct {
	at       time.Time
	server   map[string]int64            // server-level registry
	sessions map[string]map[string]int64 // per-session registries by id
	infos    []client.SessionInfo
	spans    map[string]client.SpanWindow
	crit     map[string]map[string]visibility.CritSummary
}

// fetchSample polls the three endpoints a frame is rendered from.
func fetchSample(c *client.Client) (*sample, error) {
	raw, err := c.Metrics()
	if err != nil {
		return nil, err
	}
	smp := &sample{at: time.Now(), sessions: map[string]map[string]int64{}}
	if err := json.Unmarshal(raw["server"], &smp.server); err != nil {
		return nil, fmt.Errorf("decoding server metrics: %w", err)
	}
	var perSession map[string]json.RawMessage
	if err := json.Unmarshal(raw["sessions"], &perSession); err != nil {
		return nil, fmt.Errorf("decoding session metrics: %w", err)
	}
	for id, body := range perSession {
		var m map[string]int64
		// A session too busy to snapshot reports a string body; skip it for
		// this frame rather than failing the whole poll.
		if err := json.Unmarshal(body, &m); err == nil {
			smp.sessions[id] = m
		}
	}
	if smp.infos, err = c.Sessions(); err != nil {
		return nil, err
	}
	if smp.spans, err = c.DebugSpans(); err != nil {
		return nil, err
	}
	if smp.crit, err = c.DebugCritPath(1); err != nil {
		return nil, err
	}
	return smp, nil
}

// rate converts a counter delta between two samples into a per-second
// rate (0 on the first frame, when there is no previous sample).
func rate(cur, prev int64, dt time.Duration) float64 {
	if dt <= 0 {
		return 0
	}
	return float64(cur-prev) / dt.Seconds()
}

// launches sums every analyzer launch counter in one session's registry
// (the counter lives under the algorithm's own prefix).
func launches(m map[string]int64) int64 {
	var n int64
	for k, v := range m {
		if strings.HasSuffix(k, "/launches") {
			n += v
		}
	}
	return n
}

// traceHitRate renders a session's trace hit rate: the share of launches
// served by trace replay instead of fresh analysis. Replayed launches
// never reach the underlying analyzer, so the session's total launch
// volume is the analyzer count plus the replays. "-" when the session
// has never replayed (tracing off, or no repeats found yet).
func traceHitRate(m map[string]int64) string {
	replayed := m["trace/replayed"]
	if replayed == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", 100*float64(replayed)/float64(launches(m)+replayed))
}

// render draws one frame.
func render(w io.Writer, target, benchLine string, prev, cur *sample, plain bool) {
	if !plain {
		say(w, "\x1b[2J\x1b[H") // clear screen, home cursor
	}
	dt := time.Duration(0)
	if prev != nil {
		dt = cur.at.Sub(prev.at)
	}
	say(w, "vistop · %s · %s · %d sessions\n", target, cur.at.Format("15:04:05"), len(cur.infos))
	if benchLine != "" {
		say(w, "%s\n", benchLine)
	}
	say(w, "\n")
	renderHTTP(w, prev, cur, dt)
	renderSessions(w, prev, cur, dt)
	renderCrit(w, cur)
	renderHotSpots(w, cur)
}

// renderHTTP tabulates per-endpoint request counts, rates, and latency
// quantiles from the server registry.
func renderHTTP(w io.Writer, prev, cur *sample, dt time.Duration) {
	type row struct {
		name          string
		reqs          int64
		rps           float64
		p50, p95, p99 int64
	}
	var rows []row
	for k, v := range cur.server {
		name, ok := strings.CutPrefix(k, "server/http/")
		if !ok {
			continue
		}
		name, ok = strings.CutSuffix(name, "/requests")
		if !ok || v == 0 {
			continue
		}
		r := row{
			name: name,
			reqs: v,
			p50:  cur.server["server/http/"+name+"/latency_us/p50"],
			p95:  cur.server["server/http/"+name+"/latency_us/p95"],
			p99:  cur.server["server/http/"+name+"/latency_us/p99"],
		}
		if prev != nil {
			r.rps = rate(v, prev.server[k], dt)
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].reqs != rows[j].reqs {
			return rows[i].reqs > rows[j].reqs
		}
		return rows[i].name < rows[j].name
	})
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	say(tw, "ENDPOINT\tREQS\tREQ/S\tP50µs\tP95µs\tP99µs\n")
	for _, r := range rows {
		say(tw, "%s\t%d\t%.1f\t%d\t%d\t%d\n", r.name, r.reqs, r.rps, r.p50, r.p95, r.p99)
	}
	_ = tw.Flush()
	say(w, "\n")
}

// renderSessions tabulates per-tenant queue depth, analysis throughput,
// and materialization cache behavior.
func renderSessions(w io.Writer, prev, cur *sample, dt time.Duration) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	say(tw, "SESSION\tALGO\tSHARDS\tQUEUED\tLAUNCHES\tLAUNCH/S\tCACHE%%\tTRACE%%\tSTATE\n")
	for _, info := range cur.infos {
		m := cur.sessions[info.ID]
		n := launches(m)
		var lps float64
		if prev != nil {
			lps = rate(n, launches(prev.sessions[info.ID]), dt)
		}
		hits, misses := m["sched/cache/hits"], m["sched/cache/misses"]
		cache := "-"
		if hits+misses > 0 {
			cache = fmt.Sprintf("%.0f", 100*float64(hits)/float64(hits+misses))
		}
		shards := "-"
		if info.Shards > 0 {
			shards = fmt.Sprintf("%d", info.Shards)
		}
		state := "ok"
		if info.Failed != "" {
			state = "FAILED"
		}
		say(tw, "%s\t%s\t%s\t%d\t%d\t%.1f\t%s\t%s\t%s\n", info.ID, info.Algorithm, shards, info.Queued, n, lps, cache, traceHitRate(m), state)
	}
	_ = tw.Flush()
	say(w, "\n")
}

// renderHotSpots aggregates every session's analysis spans by phase name
// and shows where span time is going — the server-side answer to "what
// is the analysis actually spending its time on".
func renderHotSpots(w io.Writer, cur *sample) {
	type spot struct {
		name  string
		count int64
		total int64 // ns
	}
	agg := map[string]*spot{}
	var grand int64
	for _, win := range cur.spans {
		for _, sp := range win.Spans {
			if sp.Cat != "analysis" {
				continue
			}
			s := agg[sp.Name]
			if s == nil {
				s = &spot{name: sp.Name}
				agg[sp.Name] = s
			}
			d := sp.End - sp.Start
			s.count++
			s.total += d
			grand += d
		}
	}
	spots := make([]*spot, 0, len(agg))
	for _, s := range agg {
		spots = append(spots, s)
	}
	sort.Slice(spots, func(i, j int) bool {
		if spots[i].total != spots[j].total {
			return spots[i].total > spots[j].total
		}
		return spots[i].name < spots[j].name
	})
	if len(spots) > 10 {
		spots = spots[:10]
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	say(tw, "HOT SPOT\tCOUNT\tTOTAL ms\tSHARE\n")
	for _, s := range spots {
		// Zero-duration span windows would make SHARE divide by zero (NaN);
		// render "-" like the other rate columns instead.
		share := "-"
		if grand > 0 {
			share = fmt.Sprintf("%.0f%%", 100*float64(s.total)/float64(grand))
		}
		say(tw, "%s\t%d\t%.3f\t%s\n", s.name, s.count, float64(s.total)/1e6, share)
	}
	_ = tw.Flush()
}

// renderCrit tabulates each session tree's weighted critical-path
// profile: makespan in virtual time, total work, the parallelism ratio
// (work/makespan — how much speedup the dependence structure admits),
// and the single heaviest critical task with its makespan share.
func renderCrit(w io.Writer, cur *sample) {
	type row struct {
		session, region string
		sum             visibility.CritSummary
	}
	var rows []row
	for id, byRegion := range cur.crit {
		for region, sum := range byRegion {
			rows = append(rows, row{session: id, region: region, sum: sum})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].session != rows[j].session {
			return rows[i].session < rows[j].session
		}
		return rows[i].region < rows[j].region
	})
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	say(tw, "CRIT SESSION\tREGION\tTASKS\tLENGTH\tWORK\tPAR\tBOTTLENECK\n")
	for _, r := range rows {
		bottleneck := "-"
		if len(r.sum.Top) > 0 {
			t := r.sum.Top[0]
			bottleneck = fmt.Sprintf("%s (%.0f%%)", t.Name, t.SharePct)
		}
		say(tw, "%s\t%s\t%d\t%.0f\t%.0f\t%.1f\t%s\n",
			r.session, r.region, r.sum.Tasks, r.sum.Length, r.sum.Work, r.sum.Parallelism, bottleneck)
	}
	_ = tw.Flush()
	say(w, "\n")
}
