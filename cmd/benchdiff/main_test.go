package main

import (
	"path/filepath"
	"strings"
	"testing"

	"visibility/internal/bench"
)

// writeRecord writes a two-cell record to dir, scaling throughput by
// factor, and returns the path.
func writeRecord(t *testing.T, dir, name string, factor float64) string {
	t.Helper()
	rec := &bench.Record{
		Meta: bench.Meta{
			Schema: bench.Schema, Commit: "test", GoVersion: "go1.24.0",
			GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 4,
			Reps: 3, Iters: 3, MaxNodes: 2, Apps: []string{"stencil"},
		},
		Cells: []bench.Cell{
			{
				App: "stencil", System: "raycast_dcr", Nodes: 1, Launches: 100,
				WallSeconds: 0.01 / factor, LaunchesPerSec: 10000 * factor,
				InitTime: 0.01, IterTime: 0.002, ThroughputPerNode: 1000,
				AllocsPerLaunch: 40, BytesPerLaunch: 3000,
				AnalysisP50Ns: 1000, AnalysisP95Ns: 2000, AnalysisP99Ns: 3000,
			},
			{
				App: "stencil", System: "raycast_dcr", Nodes: 2, Launches: 200,
				WallSeconds: 0.02 / factor, LaunchesPerSec: 10000 * factor,
				InitTime: 0.011, IterTime: 0.0021, ThroughputPerNode: 990,
				AllocsPerLaunch: 41, BytesPerLaunch: 3100,
				AnalysisP50Ns: 1100, AnalysisP95Ns: 2100, AnalysisP99Ns: 3100,
			},
		},
	}
	path := filepath.Join(dir, name)
	if err := bench.WriteFile(path, rec); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSelfDiffExitsZero is the acceptance check: diffing a record
// against itself exits 0 and renders an all-zero delta table.
func TestSelfDiffExitsZero(t *testing.T) {
	dir := t.TempDir()
	base := writeRecord(t, dir, "BENCH_a.json", 1)
	var out, errOut strings.Builder
	code := run([]string{"-max-regress", "5", "-max-alloc-growth", "5", "-max-virt-regress", "5", base, base}, &out, &errOut)
	if code != 0 {
		t.Fatalf("self-diff exit = %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "stencil/raycast_dcr/n1") || !strings.Contains(s, "+0.0") {
		t.Errorf("missing all-zero delta rows:\n%s", s)
	}
	if strings.Contains(s, "REGRESSION") {
		t.Errorf("self-diff reported a regression:\n%s", s)
	}
	if !strings.Contains(s, "aggregate launches/sec") {
		t.Errorf("missing aggregate line:\n%s", s)
	}
}

// TestSyntheticRegressionFailsGate: a 50% throughput loss must exit
// non-zero under -max-regress 10 — the contract the CI perf job gates on.
func TestSyntheticRegressionFailsGate(t *testing.T) {
	dir := t.TempDir()
	base := writeRecord(t, dir, "BENCH_base.json", 1)
	slow := writeRecord(t, dir, "BENCH_slow.json", 0.5)
	var out, errOut strings.Builder
	code := run([]string{"-max-regress", "10", base, slow}, &out, &errOut)
	if code != 1 {
		t.Fatalf("50%% regression exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "launches/sec -50.0%") {
		t.Errorf("table does not name the -50%% breach:\n%s", out.String())
	}
	// Without the gate the same pair is just a report.
	if code := run([]string{base, slow}, &strings.Builder{}, &strings.Builder{}); code != 0 {
		t.Errorf("ungated diff exit = %d, want 0", code)
	}
	// The improvement direction never fails.
	if code := run([]string{"-max-regress", "10", slow, base}, &strings.Builder{}, &strings.Builder{}); code != 0 {
		t.Errorf("improvement exit = %d, want 0", code)
	}
}

func TestUsageAndDecodeErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"only-one.json"}, &out, &errOut); code != 2 {
		t.Errorf("one arg exit = %d, want 2", code)
	}
	dir := t.TempDir()
	base := writeRecord(t, dir, "BENCH_a.json", 1)
	if code := run([]string{base, filepath.Join(dir, "absent.json")}, &out, &errOut); code != 2 {
		t.Errorf("missing file exit = %d, want 2", code)
	}
	if code := run([]string{"-bogus-flag", base, base}, &out, &errOut); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}
