// Command benchdiff compares two VISBENCH1 benchmark records and prints
// a per-cell delta table: wall-clock launch throughput, allocations and
// bytes per launch, p95 analysis latency, and the deterministic
// virtual-time iteration cost, each with its percent change against the
// baseline. It is the regression gate of the benchmark trajectory: CI
// runs a pinned cell set, diffs it against the committed BENCH_<n>.json,
// and fails the build when a threshold is exceeded.
//
// Usage:
//
//	benchdiff [-max-regress pct] [-max-alloc-growth pct]
//	          [-max-virt-regress pct] baseline.json new.json
//
// Thresholds are disabled at 0 (the default), so a bare benchdiff is a
// reporting tool that always exits 0 on comparable records. With gates
// enabled the exit code is 1 when any cell breaches, 2 on usage or
// decoding errors. Wall-clock numbers are only comparable on the same
// machine; cross-machine gates should rely on -max-virt-regress (virtual
// time replays identically everywhere) and -max-alloc-growth
// (allocation counts are near-deterministic), with -max-regress set
// generously or left off.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"visibility/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// complain writes a diagnostic; if stderr itself is broken there is
// nowhere left to report, so the write error is dropped here, in
// exactly one place.
func complain(w io.Writer, args ...any) {
	_, _ = fmt.Fprintln(w, args...)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	maxRegress := fs.Float64("max-regress", 0, "fail when launches/sec drops more than this percent (0 = off)")
	maxAlloc := fs.Float64("max-alloc-growth", 0, "fail when allocs/launch grows more than this percent (0 = off)")
	maxVirt := fs.Float64("max-virt-regress", 0, "fail when virtual iteration time grows more than this percent (0 = off)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		complain(stderr, "usage: benchdiff [flags] baseline.json new.json")
		return 2
	}
	prev, err := bench.ReadFile(fs.Arg(0))
	if err != nil {
		complain(stderr, "benchdiff:", err)
		return 2
	}
	cur, err := bench.ReadFile(fs.Arg(1))
	if err != nil {
		complain(stderr, "benchdiff:", err)
		return 2
	}
	rep := bench.Diff(prev, cur, bench.Thresholds{
		MaxRegressPct:     *maxRegress,
		MaxAllocGrowthPct: *maxAlloc,
		MaxVirtRegressPct: *maxVirt,
	})
	if err := rep.WriteTable(stdout); err != nil {
		complain(stderr, "benchdiff:", err)
		return 2
	}
	if rep.Breached {
		complain(stderr, "benchdiff: regression thresholds exceeded")
		return 1
	}
	return 0
}
