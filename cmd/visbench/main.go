// Command visbench regenerates the paper's evaluation (§8): for each
// benchmark application it sweeps machine sizes and the five
// algorithm/DCR configurations, printing initialization time
// (Figures 12-14) and weak-scaling throughput per node (Figures 15-17),
// or the raw TSV rows of the artifact's parse_results.py.
//
// With -metrics-out it additionally dumps every experiment cell's full
// metrics-registry snapshot — analyzer operation counts, cluster message
// tallies, per-launch cost histograms — as a deterministic JSON array.
//
// Usage:
//
//	visbench [-app stencil|circuit|pennant|all] [-metric init|weak|all]
//	         [-max-nodes 512] [-iters 3] [-format figure|tsv] [-reps 1]
//	         [-stats] [-metrics-out cells.json]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"visibility/internal/apps"
	"visibility/internal/apps/circuit"
	"visibility/internal/apps/pennant"
	"visibility/internal/apps/stencil"
	"visibility/internal/harness"
)

var figureOf = map[string]map[string]string{
	"stencil":         {"init": "Figure 12", "weak": "Figure 15"},
	"circuit":         {"init": "Figure 13", "weak": "Figure 16"},
	"pennant":         {"init": "Figure 14", "weak": "Figure 17"},
	"pennant-futures": {"init": "Figure 14 (futures dt)", "weak": "Figure 17 (futures dt)"},
}

func main() {
	appFlag := flag.String("app", "all", "application: stencil, circuit, pennant, or all")
	metric := flag.String("metric", "all", "metric: init (Figs 12-14), weak (Figs 15-17), or all")
	maxNodes := flag.Int("max-nodes", 512, "largest simulated node count (sweeps powers of two)")
	iters := flag.Int("iters", 3, "steady-state iterations to time")
	format := flag.String("format", "figure", "output format: figure, chart, or tsv")
	reps := flag.Int("reps", 1, "repetition rows in tsv output")
	stats := flag.Bool("stats", false, "print analyzer operation counts per cell")
	tracing := flag.Bool("tracing", false, "enable dynamic tracing (the paper disables it; see §8)")
	metricsOut := flag.String("metrics-out", "", "write per-cell metrics snapshots as JSON to this file (\"-\" for stdout)")
	flag.Parse()

	builders := map[string]apps.Builder{
		"stencil":         stencil.New,
		"circuit":         circuit.New,
		"pennant":         pennant.New,
		"pennant-futures": pennant.NewFutures,
	}
	var names []string
	if *appFlag == "all" {
		names = []string{"stencil", "circuit", "pennant"}
	} else if _, ok := builders[*appFlag]; ok {
		names = []string{*appFlag}
	} else {
		fmt.Fprintf(os.Stderr, "visbench: unknown app %q\n", *appFlag)
		os.Exit(2)
	}

	var allResults []*harness.Result
	for _, name := range names {
		results, err := harness.SweepTraced(builders[name], name, *maxNodes, *iters, *tracing)
		if err != nil {
			fmt.Fprintf(os.Stderr, "visbench: %v\n", err)
			os.Exit(1)
		}
		allResults = append(allResults, results...)
		switch *format {
		case "tsv":
			fmt.Printf("## %s\n", name)
			if err := harness.WriteTSV(os.Stdout, results, *reps); err != nil {
				fmt.Fprintf(os.Stderr, "visbench: %v\n", err)
				os.Exit(1)
			}
		default:
			for _, m := range []string{"init", "weak"} {
				if *metric != "all" && *metric != m {
					continue
				}
				fmt.Printf("\n== %s: %s ==\n", figureOf[name][m], name)
				var err error
				if *format == "chart" {
					err = harness.WriteChart(os.Stdout, results, m)
				} else {
					err = harness.WriteFigure(os.Stdout, results, m)
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "visbench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		if *stats {
			fmt.Printf("\n-- %s analyzer operation counts --\n", name)
			fmt.Printf("%-16s %6s %12s %12s %10s %10s %10s %10s %8s %8s\n",
				"system", "nodes", "entriesScan", "overlapTest", "views", "setsMade", "coalesced", "bvh", "gpu%", "util%")
			for _, r := range results {
				fmt.Printf("%-16s %6d %12d %12d %10d %10d %10d %10d %8.1f %8.1f\n",
					r.System, r.Nodes, r.Stats.EntriesScanned, r.Stats.OverlapTests,
					r.Stats.ViewsCreated, r.Stats.SetsCreated, r.Stats.SetsCoalesced, r.Stats.BVHVisited,
					100*r.ExecUtilization, 100*r.UtilUtilization)
			}
		}
	}

	if *metricsOut != "" {
		var w io.Writer = os.Stdout
		if *metricsOut != "-" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "visbench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := harness.WriteMetricsJSON(w, allResults); err != nil {
			fmt.Fprintf(os.Stderr, "visbench: %v\n", err)
			os.Exit(1)
		}
	}
}
