// Command visbench regenerates the paper's evaluation (§8): for each
// benchmark application it sweeps machine sizes and the five
// algorithm/DCR configurations, printing initialization time
// (Figures 12-14) and weak-scaling throughput per node (Figures 15-17),
// or the raw TSV rows of the artifact's parse_results.py.
//
// With -metrics-out it additionally dumps every experiment cell's full
// metrics-registry snapshot — analyzer operation counts, cluster message
// tallies, per-launch cost histograms — as a deterministic JSON array.
// With -reps N every cell is repeated and aggregated min-of-reps before
// snapshotting, and the output records the repetition count.
//
// Usage:
//
//	visbench [-app stencil|circuit|pennant|all] [-metric init|weak|all]
//	         [-max-nodes 512] [-iters 3] [-format figure|tsv] [-reps 1]
//	         [-stats] [-metrics-out cells.json] [-autotrace] [-list]
//
// -autotrace additionally measures every configuration with automatic
// trace memoization enabled (online repeat detection over the launch
// stream, no Begin/End brackets in the app). The extra rows and record
// cells carry a "_auto" system-name suffix; the schema is unchanged.
//
// -json switches to benchmark-record collection: cells run serially
// (wall-clock timing, ReadMemStats allocation deltas, and analysis-span
// latency quantiles are process-global measurements) and the pinned
// VISBENCH1 record lands in the named file ("-" for stdout) for
// cmd/benchdiff and the committed BENCH_<n>.json trajectory. -profile-out
// additionally captures per-cell pprof CPU and heap profiles, and
// -shards additionally measures every configuration through the shard
// layer at each listed count ("<system>_shard<N>" cells — shards=1 is
// the layer's single-atom overhead, shards>1 is parallel analysis):
//
//	visbench -json BENCH_8.json [-profile-out profiles/] [-shards 1,4]
//	         [-app all] [-max-nodes 32] [-iters 3] [-reps 3]
//
// -list prints the registered applications (with the paper figures they
// reproduce), coherence algorithms, and system configurations, all drawn
// from the shared registries.
//
// -chaos switches to the fault-injection crosscheck: each seed runs a
// randomized task stream through all four analyzers and a simulated
// cluster under an active fault plan, verifies the results against the
// sequential ground truth, then replays the seed from its plan string and
// requires a byte-identical flight-recorder dump:
//
//	visbench -chaos [-seeds 20] [-chaos-seed 1] [-chaos-plan "seed=1;..."]
//	         [-chaos-tasks 24] [-chaos-nodes 4]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"visibility/internal/algo"
	"visibility/internal/apps"
	"visibility/internal/bench"
	"visibility/internal/fault"
	"visibility/internal/harness"

	// The app packages self-register with the apps registry.
	_ "visibility/internal/apps/circuit"
	_ "visibility/internal/apps/pennant"
	_ "visibility/internal/apps/stencil"
)

func main() {
	appFlag := flag.String("app", "all", "application: stencil, circuit, pennant, or all")
	list := flag.Bool("list", false, "list registered applications, figures, and algorithms, then exit")
	metric := flag.String("metric", "all", "metric: init (Figs 12-14), weak (Figs 15-17), or all")
	maxNodes := flag.Int("max-nodes", 512, "largest simulated node count (sweeps powers of two)")
	iters := flag.Int("iters", 3, "steady-state iterations to time")
	format := flag.String("format", "figure", "output format: figure, chart, or tsv")
	reps := flag.Int("reps", 1, "repetition rows in tsv output")
	stats := flag.Bool("stats", false, "print analyzer operation counts per cell")
	tracing := flag.Bool("tracing", false, "enable dynamic tracing (the paper disables it; see §8)")
	autotrace := flag.Bool("autotrace", false, "additionally measure every configuration with automatic trace memoization (\"<system>_auto\" rows/cells)")
	metricsOut := flag.String("metrics-out", "", "write per-cell metrics snapshots as JSON to this file (\"-\" for stdout)")
	jsonOut := flag.String("json", "", "collect a VISBENCH1 benchmark record into this file (\"-\" for stdout) instead of printing figures")
	shardsFlag := flag.String("shards", "", "with -json: comma-separated shard counts; additionally measure every configuration through the shard layer (\"<system>_shard<N>\" cells)")
	profileOut := flag.String("profile-out", "", "with -json: write per-cell pprof CPU+heap profiles into this directory")
	chaos := flag.Bool("chaos", false, "run the fault-injection chaos crosscheck instead of the benchmarks")
	seeds := flag.Int("seeds", 20, "with -chaos: number of consecutive seeds to run")
	chaosSeed := flag.Int64("chaos-seed", 1, "with -chaos: first workload seed")
	chaosPlan := flag.String("chaos-plan", "", "with -chaos: fault plan string (default: per-seed mixed plan)")
	chaosTasks := flag.Int("chaos-tasks", 24, "with -chaos: tasks per stream")
	chaosNodes := flag.Int("chaos-nodes", 4, "with -chaos: simulated cluster size for the distributed leg (0 disables)")
	flag.Parse()

	if *list {
		printInventory()
		return
	}
	if *chaos {
		os.Exit(runChaos(*chaosSeed, *seeds, *chaosPlan, *chaosTasks, *chaosNodes))
	}

	var names []string
	if *appFlag == "all" {
		names = []string{"stencil", "circuit", "pennant"}
	} else if _, ok := apps.Lookup(*appFlag); ok {
		names = []string{*appFlag}
	} else {
		fmt.Fprintf(os.Stderr, "visbench: unknown app %q (have %v)\n", *appFlag, apps.Names())
		os.Exit(2)
	}
	shards, err := parseShards(*shardsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "visbench: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut != "" {
		os.Exit(runBenchRecord(*jsonOut, *profileOut, names, *maxNodes, *iters, *reps, *autotrace, shards))
	}
	if *profileOut != "" {
		fmt.Fprintln(os.Stderr, "visbench: -profile-out requires -json (profiles are captured per benchmark-record cell)")
		os.Exit(2)
	}
	if len(shards) > 0 {
		fmt.Fprintln(os.Stderr, "visbench: -shards requires -json (sharded cells are benchmark-record measurements)")
		os.Exit(2)
	}
	figureOf := harness.Figures()

	var allResults []*harness.Result
	for _, name := range names {
		builder, _ := apps.Lookup(name)
		results, err := harness.SweepReps(builder, name, *maxNodes, *iters, *reps, *tracing)
		if err != nil {
			fmt.Fprintf(os.Stderr, "visbench: %v\n", err)
			os.Exit(1)
		}
		if *autotrace {
			autoResults, err := harness.SweepAuto(builder, name, *maxNodes, *iters, *reps)
			if err != nil {
				fmt.Fprintf(os.Stderr, "visbench: %v\n", err)
				os.Exit(1)
			}
			results = append(results, autoResults...)
		}
		allResults = append(allResults, results...)
		switch *format {
		case "tsv":
			fmt.Printf("## %s\n", name)
			if err := harness.WriteTSV(os.Stdout, results, *reps); err != nil {
				fmt.Fprintf(os.Stderr, "visbench: %v\n", err)
				os.Exit(1)
			}
		default:
			for _, m := range []string{"init", "weak"} {
				if *metric != "all" && *metric != m {
					continue
				}
				fmt.Printf("\n== %s: %s ==\n", figureOf[name][m], name)
				var err error
				if *format == "chart" {
					err = harness.WriteChart(os.Stdout, results, m)
				} else {
					err = harness.WriteFigure(os.Stdout, results, m)
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "visbench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		if *stats {
			fmt.Printf("\n-- %s analyzer operation counts --\n", name)
			fmt.Printf("%-16s %6s %12s %12s %10s %10s %10s %10s %8s %8s\n",
				"system", "nodes", "entriesScan", "overlapTest", "views", "setsMade", "coalesced", "bvh", "gpu%", "util%")
			for _, r := range results {
				fmt.Printf("%-16s %6d %12d %12d %10d %10d %10d %10d %8.1f %8.1f\n",
					r.System, r.Nodes, r.Stats.EntriesScanned, r.Stats.OverlapTests,
					r.Stats.ViewsCreated, r.Stats.SetsCreated, r.Stats.SetsCoalesced, r.Stats.BVHVisited,
					100*r.ExecUtilization, 100*r.UtilUtilization)
			}
		}
	}

	if *metricsOut != "" {
		var w io.Writer = os.Stdout
		if *metricsOut != "-" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "visbench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := harness.WriteMetricsJSON(w, allResults); err != nil {
			fmt.Fprintf(os.Stderr, "visbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// runBenchRecord collects a pinned VISBENCH1 benchmark record over the
// named apps and writes it to out ("-" for stdout), optionally capturing
// per-cell pprof profiles. Returns the process exit code.
func runBenchRecord(out, profileDir string, names []string, maxNodes, iters, reps int, autotrace bool, shards []int) int {
	rec, err := bench.Collect(bench.Options{
		Apps: names, MaxNodes: maxNodes, Iters: iters, Reps: reps,
		Commit: gitCommit(), ProfileDir: profileDir, AutoTrace: autotrace,
		Shards: shards,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "visbench: %v\n", err)
		return 1
	}
	if out == "-" {
		if err := rec.Encode(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "visbench: %v\n", err)
			return 1
		}
		return 0
	}
	if err := bench.WriteFile(out, rec); err != nil {
		fmt.Fprintf(os.Stderr, "visbench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %d cells to %s (commit %s, reps %d, aggregate %.0f launches/sec)\n",
		len(rec.Cells), out, rec.Meta.Commit, rec.Meta.Reps, rec.AggregateLaunchesPerSec())
	return 0
}

// parseShards parses the -shards flag: a comma-separated list of
// positive shard counts, empty for none.
func parseShards(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-shards wants positive counts like \"1,4\", got %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// gitCommit names the measured code in record metadata: the short commit
// hash, or "unknown" outside a git checkout.
func gitCommit() string {
	hash, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(hash))
}

// runChaos drives the chaos crosscheck over n consecutive seeds. Each
// seed runs twice — once fresh and once replayed from the first run's
// plan string — and the two flight-recorder dumps must match byte for
// byte; a verification failure prints the plan string as the complete
// reproduction recipe. Returns the process exit code.
func runChaos(first int64, n int, plan string, tasks, nodes int) int {
	if plan != "" {
		if _, err := fault.Parse(plan); err != nil {
			fmt.Fprintf(os.Stderr, "visbench: %v\n", err)
			return 2
		}
	}
	fmt.Printf("%-8s %-8s %-8s %-10s %-12s %s\n", "seed", "events", "fires", "makespan", "replay", "plan")
	failed := 0
	for i := 0; i < n; i++ {
		seed := first + int64(i)
		cfg := harness.ChaosConfig{Seed: seed, Plan: plan, Tasks: tasks, Nodes: nodes}
		r, err := harness.RunChaos(cfg)
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "visbench: %v\n", err)
			if r != nil {
				fmt.Fprintf(os.Stderr, "visbench: reproduce with: visbench -chaos -seeds 1 -chaos-seed %d -chaos-plan %q\n", r.Seed, r.Plan)
			}
			continue
		}
		// Replay from the report's own plan string; the dump must not move.
		r2, err := harness.RunChaos(harness.ChaosConfig{Seed: r.Seed, Plan: r.Plan, Tasks: tasks, Nodes: nodes})
		replay := "identical"
		if err != nil {
			failed++
			replay = "FAILED: " + err.Error()
		} else if !bytes.Equal(r.Dump, r2.Dump) {
			failed++
			replay = fmt.Sprintf("DIVERGED (%d vs %d bytes)", len(r.Dump), len(r2.Dump))
		}
		var fires int64
		for _, c := range r.Fires {
			fires += c
		}
		fmt.Printf("%-8d %-8d %-8d %-10.3g %-12s %s\n", r.Seed, r.Events, fires, r.Makespan, replay, r.Plan)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "visbench: %d of %d chaos seeds failed\n", failed, n)
		return 1
	}
	fmt.Printf("all %d chaos seeds verified and replayed byte-identically\n", n)
	return 0
}

// printInventory enumerates everything the harness can run, pulled from
// the shared registries rather than hand-kept lists: registered
// applications with the paper figures they reproduce, the registered
// coherence algorithms, and the paper's five system configurations.
func printInventory() {
	figures := harness.Figures()
	fmt.Println("applications:")
	for _, name := range apps.Names() {
		fig := figures[name]
		fmt.Printf("  %-16s init=%-24s weak=%s\n", name, fig["init"], fig["weak"])
	}
	fmt.Println("algorithms:")
	for _, name := range algo.Names() {
		fmt.Printf("  %s\n", name)
	}
	fmt.Println("systems (paper configurations):")
	for _, c := range harness.PaperConfigs() {
		fmt.Printf("  %s\n", harness.SystemName(c.Algorithm, c.DCR))
	}
}
