// Command visexplain interrogates a running visserve instance for
// dependence provenance and weighted critical-path profiles. Two
// questions it answers:
//
//	visexplain why A B        # why must task B wait on task A?
//	visexplain critpath       # where does the makespan go?
//
// "why" prints the provenance of every dependence edge from A into B —
// which analyzer found it, the interfering requirement pair (regions,
// field, privileges, overlapping rectangle), or the future/trace-replay
// origin — plus the O(1) mustPrecede verdict. "critpath" prints the
// weighted critical path under deterministic virtual time (analyzer
// operations + points touched), the top-k bottleneck tasks, and
// per-level slack; -dot renders the full DAG with the critical path
// highlighted instead.
//
// By default the tool queries an existing session (-session, or the
// first live one). -graphsim N instead creates a fresh session, submits
// N iterations of the paper's Figure 1 graphsim workload, queries that,
// and deletes it on exit (-keep retains it). All output is derived from
// deterministic virtual quantities, so repeated runs over the same
// workload are byte-identical.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"visibility"
	"visibility/internal/server/client"
	"visibility/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "visexplain:", err)
		os.Exit(1)
	}
}

// say writes report output; a broken pipe mid-report is not actionable,
// so the error is dropped here, in exactly one place.
func say(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

const usage = `usage: visexplain [flags] why <src> <dst>
       visexplain [flags] critpath [-k n] [-dot]`

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("visexplain", flag.ContinueOnError)
	target := fs.String("target", "http://127.0.0.1:8080", "visserve URL to query")
	sessionID := fs.String("session", "", "session id to query (default: first live session)")
	region := fs.String("region", "", "root region tree to query (default: server picks first by name)")
	graphsim := fs.Int("graphsim", 0, "create a fresh session, submit N graphsim iterations, query it")
	keep := fs.Bool("keep", false, "with -graphsim: keep the demo session instead of deleting it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing subcommand\n%s", usage)
	}

	c := client.New(*target)
	sess, cleanup, err := pickSession(c, *sessionID, *graphsim, *keep)
	if err != nil {
		return err
	}
	defer cleanup()

	switch rest[0] {
	case "why":
		return runWhy(sess, *region, rest[1:], stdout)
	case "critpath":
		return runCritPath(sess, *region, rest[1:], stdout)
	default:
		return fmt.Errorf("unknown subcommand %q\n%s", rest[0], usage)
	}
}

// pickSession resolves the session to query: an explicit -session id, a
// fresh -graphsim demo session, or the first live session on the server.
// The returned cleanup deletes the demo session unless -keep was given.
func pickSession(c *client.Client, id string, graphsim int, keep bool) (*client.Session, func(), error) {
	nop := func() {}
	if graphsim > 0 {
		sess, err := c.CreateSession(client.SessionConfig{})
		if err != nil {
			return nil, nop, fmt.Errorf("creating demo session: %w", err)
		}
		if err := sess.Submit(wire.ExampleGraphsim(graphsim)); err != nil {
			_ = sess.Close()
			return nil, nop, fmt.Errorf("submitting graphsim workload: %w", err)
		}
		if keep {
			return sess, nop, nil
		}
		return sess, func() { _ = sess.Close() }, nil
	}
	if id != "" {
		return c.Session(id), nop, nil
	}
	infos, err := c.Sessions()
	if err != nil {
		return nil, nop, err
	}
	if len(infos) == 0 {
		return nil, nop, fmt.Errorf("no live sessions (use -graphsim N for a demo workload)")
	}
	return c.Session(infos[0].ID), nop, nil
}

// runWhy prints the provenance of every dependence edge src -> dst and
// the mustPrecede verdict for the pair.
func runWhy(sess *client.Session, region string, args []string, stdout io.Writer) error {
	if len(args) != 2 {
		return fmt.Errorf("why wants exactly two task ids\n%s", usage)
	}
	src, err := strconv.Atoi(args[0])
	if err != nil {
		return fmt.Errorf("invalid src task %q", args[0])
	}
	dst, err := strconv.Atoi(args[1])
	if err != nil {
		return fmt.Errorf("invalid dst task %q", args[1])
	}
	res, err := sess.Why(region, src, dst)
	if err != nil {
		return err
	}
	ex := res.Explain
	verdict := "MAY run in either order (no dependence path)"
	if res.MustPrecede {
		verdict = "MUST precede in every legal execution"
	}
	say(stdout, "task %d (%s) -> task %d (%s): %s\n", src, srcName(ex, src), dst, ex.Name, verdict)
	if len(ex.Edges) == 0 {
		say(stdout, "  no direct dependence edge %d -> %d (any ordering is transitive)\n", src, dst)
		return nil
	}
	for _, e := range ex.Edges {
		say(stdout, "  %s\n", formatEdge(e))
	}
	return nil
}

// srcName pulls the producer's name out of the (src-filtered) edge list.
func srcName(ex *visibility.TaskExplain, src int) string {
	for _, e := range ex.Edges {
		if e.Src == src {
			return e.SrcName
		}
	}
	return "?"
}

// formatEdge renders one provenance edge as a single deterministic line.
func formatEdge(e visibility.EdgeExplain) string {
	switch e.Kind {
	case "region":
		return fmt.Sprintf("region edge [%s]: req %d (%s) interferes with req %d (%s) on field %s over %s",
			e.Analyzer, e.SrcReq, e.SrcPriv, e.DstReq, e.DstPriv, e.Field, e.Overlap)
	case "future":
		return "future edge: explicit ordering on a task future"
	case "replay":
		return fmt.Sprintf("replay edge [%s]: instantiated from committed trace %d", e.Analyzer, e.Trace)
	default:
		return "edge of kind " + e.Kind
	}
}

// runCritPath prints the weighted critical-path profile (or, with -dot,
// the highlighted Graphviz rendering).
func runCritPath(sess *client.Session, region string, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("critpath", flag.ContinueOnError)
	k := fs.Int("k", 5, "how many bottleneck tasks to attribute")
	dot := fs.Bool("dot", false, "emit Graphviz with the critical path highlighted")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dot {
		out, err := sess.CritDOT(region)
		if err != nil {
			return err
		}
		say(stdout, "%s", out)
		return nil
	}
	sum, err := sess.CritPath(region, *k)
	if err != nil {
		return err
	}
	if sum == nil {
		return fmt.Errorf("no critical path (nothing launched yet)")
	}
	say(stdout, "tasks %d  edges %d  critical length %.0f  work %.0f  parallelism %.2f\n",
		sum.Tasks, sum.Edges, sum.Length, sum.Work, sum.Parallelism)
	say(stdout, "\nCRITICAL PATH (virtual time: analyzer ops + points touched):\n")
	for i, t := range sum.Path {
		say(stdout, "  %3d. task %d (%s)  w=%.0f  [%.0f..%.0f]\n", i+1, t.Task, t.Name, t.Weight, t.Start, t.Finish)
	}
	say(stdout, "\nTOP BOTTLENECKS:\n")
	for _, t := range sum.Top {
		say(stdout, "  task %d (%s)  w=%.0f  %.1f%% of makespan\n", t.Task, t.Name, t.Weight, t.SharePct)
	}
	say(stdout, "\nLEVEL SLACK (min per dependence level):\n  ")
	for i, s := range sum.LevelSlack {
		if i > 0 {
			say(stdout, " ")
		}
		say(stdout, "%.0f", s)
	}
	say(stdout, "\n")
	return nil
}
