package visibility_test

import (
	"fmt"

	"visibility"
)

// Example shows the minimal implicitly-parallel program: disjoint writes
// run in parallel, a dependent read observes all of them coherently.
func Example() {
	rt := visibility.New(visibility.Config{})
	defer rt.Close()

	cells := rt.CreateRegion("cells", visibility.Line(0, 15), "v")
	blocks := cells.PartitionEqual("blocks", 4)
	for i := 0; i < 4; i++ {
		rt.Launch(visibility.TaskSpec{
			Name:     "init",
			Accesses: []visibility.Access{visibility.Write(blocks.Sub(i), "v")},
			Kernel: visibility.Kernel{Write: func(_ int, p visibility.Point, _ float64) float64 {
				return float64(p.C[0])
			}},
		})
	}
	snap := rt.Read(cells, "v")
	var sum float64
	snap.Each(func(_ visibility.Point, v float64) { sum += v })
	fmt.Println(sum)
	// Output: 120
}

// ExampleReduce demonstrates reductions through an aliased partition: both
// windows contribute to their overlap, and the runtime orders and folds
// the contributions.
func ExampleReduce() {
	rt := visibility.New(visibility.Config{})
	defer rt.Close()

	r := rt.CreateRegion("r", visibility.Line(0, 9), "v")
	windows := r.Partition("w", []visibility.IndexSpace{
		visibility.Line(0, 6),
		visibility.Line(4, 9),
	})
	for i := 0; i < 2; i++ {
		rt.Launch(visibility.TaskSpec{
			Name:     "add",
			Accesses: []visibility.Access{visibility.Reduce(visibility.OpSum, windows.Sub(i), "v")},
			Kernel:   visibility.Kernel{Reduce: func(_ int, _ visibility.Point) float64 { return 1 }},
		})
	}
	snap := rt.Read(r, "v")
	v5, _ := snap.Get(visibility.Pt(5)) // in both windows
	v0, _ := snap.Get(visibility.Pt(0)) // in one window
	fmt.Println(v5, v0)
	// Output: 2 1
}

// ExampleRegion_PartitionImage derives a ghost partition from graph
// connectivity with dependent partitioning instead of enumerating halos by
// hand.
func ExampleRegion_PartitionImage() {
	rt := visibility.New(visibility.Config{})
	defer rt.Close()

	nodes := rt.CreateRegion("nodes", visibility.Line(0, 11), "v")
	primary := nodes.PartitionEqual("P", 3)
	neighbors := func(p visibility.Point) []visibility.Point {
		return []visibility.Point{
			visibility.Pt((p.C[0] + 11) % 12),
			visibility.Pt((p.C[0] + 1) % 12),
		}
	}
	ghost := nodes.PartitionImage("reach", primary, neighbors).Minus("G", primary)
	fmt.Println(ghost.Sub(0).Space())
	// Output: {[4..4] [11..11]}
}

// ExampleRuntime_BeginTrace shows dynamic tracing: the loop's dependence
// analysis runs once and replays for the remaining iterations.
func ExampleRuntime_BeginTrace() {
	rt := visibility.New(visibility.Config{Tracing: true})
	defer rt.Close()

	r := rt.CreateRegion("r", visibility.Line(0, 7), "v")
	halves := r.PartitionEqual("H", 2)
	// The first instance reads initial contents the loop overwrites, so
	// it records without becoming replayable; the second records the
	// steady-state shape; the rest replay.
	for iter := 0; iter < 5; iter++ {
		rt.BeginTrace(r, 1)
		for i := 0; i < 2; i++ {
			rt.Launch(visibility.TaskSpec{
				Name:     "step",
				Accesses: []visibility.Access{visibility.Write(halves.Sub(i), "v")},
				Kernel: visibility.Kernel{Write: func(_ int, _ visibility.Point, in float64) float64 {
					return in + 1
				}},
			})
		}
		rt.EndTrace(r)
	}
	rt.Wait()
	st := rt.TraceStats(r)
	fmt.Println(st.Recorded, st.Replayed)
	// Output: 4 6
}
