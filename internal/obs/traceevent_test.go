package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// buildSampleTrace assembles a small two-node trace exercising every event
// kind the exporters emit: process/thread metadata, duration slices on
// exec and util tracks, a cross-node message flow, and wall-clock spans.
func buildSampleTrace() *TraceWriter {
	tw := NewTraceWriter()
	tw.ProcessName(0, "node 0")
	tw.ThreadName(0, 0, "exec (gpu)")
	tw.ThreadName(0, 1, "util (analysis)")
	tw.ProcessName(1, "node 1")
	tw.ThreadName(1, 0, "exec (gpu)")
	tw.ThreadName(1, 1, "util (analysis)")

	tw.Duration(0, 1, "calc#0", "analysis", 0, 8000, nil)
	tw.Duration(0, 1, "send", "message", 8000, 400, map[string]any{"bytes": int64(256), "to": 1})
	tw.FlowStart(1, 0, 1, "msg", "message", 8000)
	tw.Duration(1, 1, "recv", "message", 10400, 400, map[string]any{"bytes": int64(256), "from": 0})
	tw.FlowEnd(1, 1, 1, "msg", "message", 10400)
	tw.Duration(1, 0, "calc#1", "task", 10800, 50000, nil)

	tw.Spans(2, 0, []Span{
		{Name: "raycast.analyze", Cat: "analysis", Start: 1000, End: 9000},
		{Name: "raycast.refine", Cat: "analysis", Start: 2000, End: 3500},
	})
	tw.ProcessName(2, "analyzer (wall clock)")
	return tw
}

// TestTraceEventGolden pins the exported trace-event JSON byte for byte:
// the schema consumed by Perfetto/chrome://tracing must not drift
// silently. Regenerate with UPDATE_GOLDEN=1 go test ./internal/obs and
// review the diff.
func TestTraceEventGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSampleTrace().Write(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exported trace differs from %s:\ngot:\n%s", golden, buf.String())
	}
}

func TestTraceEventDeterministicAndParses(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildSampleTrace().Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildSampleTrace().Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical traces are not byte-identical")
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if _, ok := ev["pid"]; !ok {
			t.Errorf("event without pid: %v", ev)
		}
	}
	if phases["X"] != 6 || phases["s"] != 1 || phases["f"] != 1 || phases["M"] != 7 {
		t.Errorf("phase counts = %v, want 6 X / 1 s / 1 f / 7 M", phases)
	}
}

func TestEmptyTraceWritesValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTraceWriter().Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace does not parse: %v", err)
	}
	if doc.TraceEvents == nil {
		t.Error("traceEvents missing or null in empty trace")
	}
}
