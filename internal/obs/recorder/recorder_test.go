package recorder

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// tick returns a deterministic strictly increasing clock.
func tick() func() int64 {
	var t int64
	var mu sync.Mutex
	return func() int64 {
		mu.Lock()
		defer mu.Unlock()
		t++
		return t
	}
}

func TestDropOldestOrdering(t *testing.T) {
	const capacity = 8
	const total = 21
	r := NewClock(capacity, tick())
	for i := 0; i < total; i++ {
		r.Log(KindTaskLaunch, int64(i), 2*int64(i))
	}
	if r.Len() != capacity {
		t.Errorf("Len = %d, want %d", r.Len(), capacity)
	}
	if r.Dropped() != total-capacity {
		t.Errorf("Dropped = %d, want %d", r.Dropped(), total-capacity)
	}
	events := r.Snapshot()
	if len(events) != capacity {
		t.Fatalf("snapshot has %d events, want %d", len(events), capacity)
	}
	for i, e := range events {
		wantA := int64(total - capacity + i)
		if e.A != wantA || e.B != 2*wantA || e.Kind != KindTaskLaunch {
			t.Errorf("event %d = %+v, want A=%d B=%d", i, e, wantA, 2*wantA)
		}
		if i > 0 && e.T <= events[i-1].T {
			t.Errorf("timestamps not increasing oldest-first: %v then %v", events[i-1].T, e.T)
		}
	}
}

func TestNilAndDisabledAreInert(t *testing.T) {
	var nilRec *Recorder
	nilRec.Log(KindEqSplit, 1, 2) // must not panic
	nilRec.SetEnabled(true)
	if nilRec.Snapshot() != nil || nilRec.Len() != 0 || nilRec.Dropped() != 0 || nilRec.Now() != 0 {
		t.Error("nil recorder not inert")
	}

	r := NewClock(4, tick())
	r.SetEnabled(false)
	r.Log(KindEqSplit, 1, 2)
	if r.Len() != 0 {
		t.Errorf("disabled recorder journaled %d events", r.Len())
	}
	r.SetEnabled(true)
	r.Log(KindEqSplit, 1, 2)
	if r.Len() != 1 {
		t.Errorf("re-enabled recorder has %d events, want 1", r.Len())
	}
}

func TestKindString(t *testing.T) {
	if got := KindEqCoalesce.String(); got != "eq_coalesce" {
		t.Errorf("KindEqCoalesce = %q", got)
	}
	if got := Kind(200).String(); got != "kind_200" {
		t.Errorf("unknown kind = %q", got)
	}
	if len(kindNames) != int(KindCritPath)+1 {
		t.Errorf("kindNames has %d entries for %d kinds", len(kindNames), KindCritPath+1)
	}
	if got := KindTraceReplay.String(); got != "trace_replay" {
		t.Errorf("KindTraceReplay = %q", got)
	}
}

// TestKindPin freezes the event-kind numbering and names: kinds are part
// of the VISFREC1 binary dump format, so renumbering or renaming an
// existing kind breaks old dumps. New kinds must append at the end.
func TestKindPin(t *testing.T) {
	pins := []struct {
		kind Kind
		num  uint8
		name string
	}{
		{KindNone, 0, "none"},
		{KindTaskLaunch, 1, "task_launch"},
		{KindEqSplit, 2, "eq_split"},
		{KindEqCoalesce, 3, "eq_coalesce"},
		{KindCacheHit, 4, "cache_hit"},
		{KindTraceInvalidate, 15, "trace_invalidate"},
		{KindReasonCapture, 16, "reason_capture"},
		{KindExplainQuery, 17, "explain_query"},
		{KindCritPath, 18, "crit_path"},
	}
	for _, p := range pins {
		if uint8(p.kind) != p.num {
			t.Errorf("kind %s renumbered: got %d, want %d (append-only format)", p.name, p.kind, p.num)
		}
		if got := p.kind.String(); got != p.name {
			t.Errorf("kind %d renamed: got %q, want %q", p.num, got, p.name)
		}
	}
}

// TestConcurrentLog hammers a small ring from many writers under -race:
// the drop-oldest accounting must balance and every surviving event must
// be internally consistent (no torn A/B pairs).
func TestConcurrentLog(t *testing.T) {
	const capacity = 32
	const goroutines = 8
	const perG = 1000
	r := NewClock(capacity, tick())
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Log(KindCacheHit, int64(i), -int64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
					_ = r.Dropped()
				}
			}
		}()
	}
	wg.Wait()
	if r.Len() != capacity {
		t.Errorf("Len = %d, want full ring of %d", r.Len(), capacity)
	}
	if got := r.Dropped() + int64(r.Len()); got != goroutines*perG {
		t.Errorf("recorded+dropped = %d, want %d", got, goroutines*perG)
	}
	for i, e := range r.Snapshot() {
		if e.Kind != KindCacheHit || e.B != -e.A {
			t.Fatalf("event %d torn: %+v", i, e)
		}
	}
}

func TestDumpDeterminismAndRoundTrip(t *testing.T) {
	r := NewClock(4, tick())
	for i := 0; i < 7; i++ {
		r.Log(Kind(1+i%3), int64(i), int64(100+i))
	}
	var d1, d2 bytes.Buffer
	if err := r.Dump(&d1); err != nil {
		t.Fatal(err)
	}
	if err := r.Dump(&d2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1.Bytes(), d2.Bytes()) {
		t.Error("two dumps of the same window differ")
	}

	events, dropped, err := ReadDump(&d1)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 3 {
		t.Errorf("dump dropped = %d, want 3", dropped)
	}
	want := r.Snapshot()
	if len(events) != len(want) {
		t.Fatalf("round trip has %d events, want %d", len(events), len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("round-trip event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}

func TestReadDumpRejectsGarbage(t *testing.T) {
	if _, _, err := ReadDump(strings.NewReader("not a dump at all")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, _, err := ReadDump(strings.NewReader("VIS")); err == nil {
		t.Error("truncated magic accepted")
	}
	// Valid magic + header claiming events, then truncated body.
	var buf bytes.Buffer
	r := NewClock(2, tick())
	r.Log(KindJobStart, 1, 0)
	if err := r.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, _, err := ReadDump(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated body accepted")
	}
}
