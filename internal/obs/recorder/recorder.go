// Package recorder is the always-on flight recorder: a bounded binary
// ring journaling coarse runtime events (task launches, equivalence-set
// splits and coalesces, instance-cache outcomes, admission rejects,
// worker job boundaries) so that when something goes wrong — a latched
// session failure, a SIGQUIT, a hung drain — the last window of runtime
// activity is available for forensics without having had tracing turned
// on in advance.
//
// The design mirrors obs.Buffer: a nil *Recorder is valid and records
// nothing after one pointer test, a disabled recorder costs one atomic
// load, and an enabled Log is a mutex-protected store of one fixed-size
// struct. Events are deliberately tiny (a timestamp, a kind byte, two
// integer arguments) — journaling must stay cheap enough to leave on in
// production, a bound BenchmarkObsOverhead enforces (<3% on the analysis
// hot path).
//
// Dump serializes the window to a compact little-endian binary format
// with a magic header; ReadDump parses it back. Identical windows
// produce byte-identical dumps, so post-mortem artifacts diff cleanly.
package recorder

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies one journaled event. The A/B argument meaning is
// per-kind, documented on each constant.
type Kind uint8

// Event kinds. New kinds append at the end: the binary dump format
// stores the raw byte, so renumbering breaks old dumps.
const (
	KindNone            Kind = iota
	KindTaskLaunch           // A=task ID, B=requirement count
	KindEqSplit              // A=fragments created, B=history entries copied
	KindEqCoalesce           // A=equivalence sets pruned by a dominating write
	KindCacheHit             // physical-instance cache hit
	KindCacheMiss            // physical-instance cache miss
	KindAdmitReject          // A=session seq (0=session-less), B=1 global cap, 2 session queue, 3 session cap
	KindJobStart             // A=session seq
	KindJobDone              // A=session seq
	KindWorkerFail           // A=session seq; the session latched a failure
	KindSessionOpen          // A=session seq
	KindSessionClose         // A=session seq
	KindFaultInject          // A=fault site catalog index (fault.SiteAt), B=site-specific argument
	KindTraceCommit          // A=trace id, B=period (launches per instance)
	KindTraceReplay          // A=trace id, B=period; one replayed instance completed
	KindTraceInvalidate      // A=trace id, B=position in the instance at abort
	KindReasonCapture        // A=task ID, B=dependence reasons captured for it
	KindExplainQuery         // A=queried task ID, B=edges explained
	KindCritPath             // A=critical-path length (tasks), B=makespan (virtual units, rounded)
)

var kindNames = [...]string{
	"none", "task_launch", "eq_split", "eq_coalesce", "cache_hit",
	"cache_miss", "admit_reject", "job_start", "job_done", "worker_fail",
	"session_open", "session_close", "fault_inject",
	"trace_commit", "trace_replay", "trace_invalidate",
	"reason_capture", "explain_query", "crit_path",
}

// String returns the kind's snake_case name ("kind_NN" for unknown
// bytes from a future dump).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind_%d", uint8(k))
}

// Event is one journaled record: a nanosecond timestamp on the
// recorder's clock, a kind, and two kind-specific arguments.
type Event struct {
	T    int64
	Kind Kind
	A, B int64
}

// Recorder is the bounded drop-oldest event ring. A nil *Recorder is
// valid and records nothing. Safe for concurrent use.
type Recorder struct {
	enabled   atomic.Bool
	now       func() int64 // immutable after construction
	unbounded bool         // immutable after construction; Log grows instead of wrapping

	mu      sync.Mutex
	ring    []Event // guarded by mu
	head    int     // guarded by mu; index of the oldest event when full
	dropped int64   // guarded by mu
}

// New creates an enabled recorder holding at most capacity events,
// timestamped with the monotonic wall clock.
func New(capacity int) *Recorder {
	base := time.Now()
	return NewClock(capacity, func() int64 { return time.Since(base).Nanoseconds() })
}

// NewClock is New with a caller-supplied clock; the serving layer passes
// the clock its span buffers use so journal timestamps and span
// timestamps share one axis, and tests pass a deterministic clock.
func NewClock(capacity int, now func() int64) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	r := &Recorder{now: now, ring: make([]Event, 0, capacity)}
	r.enabled.Store(true)
	return r
}

// NewTape creates an enabled, unbounded staging recorder: every event is
// kept (nothing is ever dropped) and all timestamps are zero. A tape is a
// holding pen for event sequences produced off the journaling goroutine —
// a shard worker journals into its own tape, and the merge stage replays
// the events into the real recorder (which stamps its own clock) in a
// deterministic order. Empty it with Take (copying) or Drain (in place).
func NewTape() *Recorder {
	r := &Recorder{now: func() int64 { return 0 }, unbounded: true}
	r.enabled.Store(true)
	return r
}

// Take returns the journaled events, oldest first, and resets the window
// to empty (retaining capacity). Nil-safe.
func (r *Recorder) Take() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.head:]...)
	out = append(out, r.ring[:r.head]...)
	r.ring = r.ring[:0]
	r.head = 0
	return out
}

// Drain invokes fn on each journaled event, oldest first, then resets
// the window to empty (retaining capacity) — Take without the copy, for
// per-launch staging tapes drained on every merge. fn runs under the
// recorder's lock and must not journal back into the same recorder.
// Nil-safe.
func (r *Recorder) Drain(fn func(Event)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.ring[r.head:] {
		fn(e)
	}
	for _, e := range r.ring[:r.head] {
		fn(e)
	}
	r.ring = r.ring[:0]
	r.head = 0
}

// SetEnabled turns journaling on or off.
func (r *Recorder) SetEnabled(on bool) {
	if r == nil {
		return
	}
	r.enabled.Store(on)
}

// Now returns the current time on the recorder's clock (0 when nil).
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return r.now()
}

// Log journals one event, overwriting the oldest when the ring is full.
// On a nil recorder it is one pointer test; disabled, one atomic load.
func (r *Recorder) Log(k Kind, a, b int64) {
	if r == nil || !r.enabled.Load() {
		return
	}
	e := Event{T: r.now(), Kind: k, A: a, B: b}
	r.mu.Lock()
	if r.unbounded || len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, e)
	} else {
		r.ring[r.head] = e
		r.head = (r.head + 1) % len(r.ring)
		r.dropped++
	}
	r.mu.Unlock()
}

// Snapshot returns the journaled events, oldest first (nil when the
// recorder is nil).
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.head:]...)
	out = append(out, r.ring[:r.head]...)
	return out
}

// Dropped returns how many events were overwritten by newer ones.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len returns the number of events currently held.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// --- binary dump --------------------------------------------------------

// dumpMagic identifies and versions the dump format: 8 magic bytes, then
// uint64 dropped, uint64 count, then count records of (int64 T, uint8
// Kind, int64 A, int64 B), all little-endian.
var dumpMagic = [8]byte{'V', 'I', 'S', 'F', 'R', 'E', 'C', '1'}

// Dump writes the current window (oldest first) to w in the binary dump
// format. The same window always produces the same bytes.
func (r *Recorder) Dump(w io.Writer) error {
	events := r.Snapshot()
	dropped := r.Dropped()
	if _, err := w.Write(dumpMagic[:]); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(dropped))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(events)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var rec [25]byte
	for _, e := range events {
		binary.LittleEndian.PutUint64(rec[0:], uint64(e.T))
		rec[8] = byte(e.Kind)
		binary.LittleEndian.PutUint64(rec[9:], uint64(e.A))
		binary.LittleEndian.PutUint64(rec[17:], uint64(e.B))
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
	}
	return nil
}

// ReadDump parses a binary dump back into its events (oldest first) and
// the dropped count at dump time.
func ReadDump(rd io.Reader) ([]Event, int64, error) {
	var magic [8]byte
	if _, err := io.ReadFull(rd, magic[:]); err != nil {
		return nil, 0, fmt.Errorf("recorder: reading dump magic: %w", err)
	}
	if magic != dumpMagic {
		return nil, 0, fmt.Errorf("recorder: bad dump magic %q", magic[:])
	}
	var hdr [16]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("recorder: reading dump header: %w", err)
	}
	dropped := int64(binary.LittleEndian.Uint64(hdr[0:]))
	count := binary.LittleEndian.Uint64(hdr[8:])
	const maxDumpEvents = 1 << 24 // refuse absurd counts from corrupt input
	if count > maxDumpEvents {
		return nil, 0, fmt.Errorf("recorder: dump claims %d events", count)
	}
	events := make([]Event, 0, count)
	var rec [25]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(rd, rec[:]); err != nil {
			return nil, 0, fmt.Errorf("recorder: reading event %d of %d: %w", i, count, err)
		}
		events = append(events, Event{
			T:    int64(binary.LittleEndian.Uint64(rec[0:])),
			Kind: Kind(rec[8]),
			A:    int64(binary.LittleEndian.Uint64(rec[9:])),
			B:    int64(binary.LittleEndian.Uint64(rec[17:])),
		})
	}
	return events, dropped, nil
}
