package obs

import (
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatalf("NewTraceContext not valid: %+v", tc)
	}
	if len(tc.TraceID) != 32 || len(tc.SpanID) != 16 {
		t.Fatalf("ID lengths wrong: trace=%q span=%q", tc.TraceID, tc.SpanID)
	}
	hdr := tc.Traceparent()
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("traceparent shape wrong: %q", hdr)
	}
	back, ok := ParseTraceparent(hdr)
	if !ok || back != tc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", back, ok, tc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"00-abc-def-01", // too short
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("a", 16) + "-01", // all-zero trace
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01", // all-zero span
		"00-" + strings.Repeat("A", 32) + "-" + strings.Repeat("a", 16) + "-01", // uppercase hex
		"ff-" + strings.Repeat("a", 32) + "-" + strings.Repeat("a", 16) + "-01", // forbidden version
		"0-" + strings.Repeat("a", 32) + "-" + strings.Repeat("a", 16) + "-01",  // short version
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted", s)
		}
	}
	// Unknown (but well-formed) versions parse as version 00 per the spec.
	if _, ok := ParseTraceparent("01-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-01"); !ok {
		t.Error("well-formed future version rejected")
	}
}

func TestIDUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		id := NewSpanID()
		if len(id) != 16 || !isLowerHex(id) || allZero(id) {
			t.Fatalf("malformed span ID %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate span ID %q after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestChildKeepsTrace(t *testing.T) {
	root := NewTraceContext()
	child := root.Child()
	if child.TraceID != root.TraceID {
		t.Errorf("child trace %q != root trace %q", child.TraceID, root.TraceID)
	}
	if child.SpanID == root.SpanID {
		t.Error("child span ID not fresh")
	}
	if (TraceContext{}).Valid() {
		t.Error("zero context claims validity")
	}
	if got := (TraceContext{}).Traceparent(); got != "" {
		t.Errorf("zero context traceparent = %q, want empty", got)
	}
}
