package obs

import (
	"encoding/json"
	"io"
)

// TraceWriter accumulates Chrome trace-event JSON ("trace event format",
// the JSON loaded by Perfetto and chrome://tracing). Producers append
// complete duration events, flow events, and process/thread metadata; the
// result is written as one {"traceEvents": [...]} object.
//
// Timestamps enter in nanoseconds and are emitted in microseconds (the
// format's unit). Events are emitted in append order and all map keys are
// sorted by encoding/json, so identical event sequences produce
// byte-identical output — the property the cross-checker pins for
// virtual-time traces.
type TraceWriter struct {
	events []traceEvent
}

// traceEvent is one element of the traceEvents array. Field names follow
// the trace-event format specification.
type traceEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int64          `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTraceWriter creates an empty writer.
func NewTraceWriter() *TraceWriter { return &TraceWriter{} }

func micros(ns int64) float64 { return float64(ns) / 1e3 }

// Duration appends a complete ("X") duration event: one slice of work on
// track (pid, tid).
func (tw *TraceWriter) Duration(pid, tid int, name, cat string, startNs, durNs int64, args map[string]any) {
	tw.events = append(tw.events, traceEvent{
		Name: name, Cat: cat, Ph: "X",
		Ts: micros(startNs), Dur: micros(durNs),
		Pid: pid, Tid: tid, Args: args,
	})
}

// FlowStart appends a flow-start ("s") event anchored inside the duration
// slice covering startNs on (pid, tid). Pair it with FlowEnd under the
// same id to draw an arrow between two slices — here, a message between
// two simulated nodes. Ids must be positive.
func (tw *TraceWriter) FlowStart(id int64, pid, tid int, name, cat string, startNs int64) {
	tw.events = append(tw.events, traceEvent{
		Name: name, Cat: cat, Ph: "s",
		Ts: micros(startNs), Pid: pid, Tid: tid, ID: id,
	})
}

// FlowEnd appends a flow-finish ("f") event binding to the enclosing
// slice at endNs on (pid, tid).
func (tw *TraceWriter) FlowEnd(id int64, pid, tid int, name, cat string, endNs int64) {
	tw.events = append(tw.events, traceEvent{
		Name: name, Cat: cat, Ph: "f", BP: "e",
		Ts: micros(endNs), Pid: pid, Tid: tid, ID: id,
	})
}

// ProcessName names a process (one simulated node, or the wall-clock
// analyzer) in the viewer.
func (tw *TraceWriter) ProcessName(pid int, name string) {
	tw.events = append(tw.events, traceEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name},
	})
}

// ThreadName names a thread (a node's execution or utility processor).
func (tw *TraceWriter) ThreadName(pid, tid int, name string) {
	tw.events = append(tw.events, traceEvent{
		Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	})
}

// Spans appends every span as a duration event on (pid, tid), oldest
// first — the bridge from a span Buffer to the exported trace. Spans that
// belong to a request trace carry their tree position in args
// ("trace"/"span"/"parent"), so a consumer can reassemble the parented
// HTTP → queue → analysis tree; untraced spans emit no args, keeping
// pre-existing exports byte-identical.
func (tw *TraceWriter) Spans(pid, tid int, spans []Span) {
	for _, s := range spans {
		var args map[string]any
		if s.Trace != "" {
			args = map[string]any{"trace": s.Trace, "span": s.ID}
			if s.Parent != "" {
				args["parent"] = s.Parent
			}
		}
		tw.Duration(pid, tid, s.Name, s.Cat, s.Start, s.End-s.Start, args)
	}
}

// Len returns the number of accumulated events.
func (tw *TraceWriter) Len() int { return len(tw.events) }

// Write emits the accumulated events as a complete trace-event JSON
// document.
func (tw *TraceWriter) Write(w io.Writer) error {
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: tw.events, DisplayTimeUnit: "ms"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []traceEvent{}
	}
	b, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
