package obs

import (
	"sync"
	"testing"
)

// fakeClock returns a deterministic strictly increasing clock.
func fakeClock() func() int64 {
	var t int64
	var mu sync.Mutex
	return func() int64 {
		mu.Lock()
		defer mu.Unlock()
		t += 100
		return t
	}
}

func TestBufferRecordsAndDropsOldest(t *testing.T) {
	b := NewBufferClock(3, fakeClock())
	for i, name := range []string{"a", "b", "c", "d", "e"} {
		sp := b.Begin(name, "test")
		sp.End()
		if want := i + 1; b.Len() != min(want, 3) {
			t.Errorf("after %d spans Len = %d", want, b.Len())
		}
	}
	got := b.Snapshot()
	if len(got) != 3 {
		t.Fatalf("snapshot has %d spans, want 3", len(got))
	}
	for i, want := range []string{"c", "d", "e"} {
		if got[i].Name != want {
			t.Errorf("snapshot[%d] = %q, want %q (oldest-first order)", i, got[i].Name, want)
		}
		if got[i].End <= got[i].Start {
			t.Errorf("span %q has End %d <= Start %d", got[i].Name, got[i].End, got[i].Start)
		}
	}
	if b.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", b.Dropped())
	}
}

func TestNilAndDisabledBuffersAreInert(t *testing.T) {
	var nilBuf *Buffer
	sp := nilBuf.Begin("x", "test")
	sp.End() // must not panic
	if nilBuf.Snapshot() != nil || nilBuf.Len() != 0 || nilBuf.Dropped() != 0 {
		t.Error("nil buffer not inert")
	}

	b := NewBufferClock(4, fakeClock())
	b.SetEnabled(false)
	b.Begin("skipped", "test").End()
	if b.Len() != 0 {
		t.Errorf("disabled buffer recorded %d spans", b.Len())
	}
	b.SetEnabled(true)
	b.Begin("kept", "test").End()
	if b.Len() != 1 {
		t.Errorf("re-enabled buffer has %d spans, want 1", b.Len())
	}
}

func TestBeginJoinsInstalledContext(t *testing.T) {
	b := NewBufferClock(8, fakeClock())
	b.Begin("orphan", "test").End()

	parent := NewTraceContext()
	b.SetContext(parent)
	b.Begin("child", "test").End()
	b.SetContext(TraceContext{})
	b.Begin("orphan2", "test").End()

	spans := b.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for _, i := range []int{0, 2} {
		if spans[i].Trace != "" || spans[i].ID != "" || spans[i].Parent != "" {
			t.Errorf("span %q outside context carries trace fields: %+v", spans[i].Name, spans[i])
		}
	}
	c := spans[1]
	if c.Trace != parent.TraceID || c.Parent != parent.SpanID {
		t.Errorf("child span not parented under installed context: %+v", c)
	}
	if len(c.ID) != 16 || c.ID == parent.SpanID {
		t.Errorf("child span ID malformed or reused: %q", c.ID)
	}
}

func TestBeginSpanAndRecordBuildTree(t *testing.T) {
	b := NewBufferClock(8, fakeClock())

	// Root span from no parent: fresh trace.
	root, rootCtx := b.BeginSpan("http.workloads", "http", TraceContext{})
	if !rootCtx.Valid() {
		t.Fatal("BeginSpan returned invalid context")
	}
	if got := root.Context(); got != rootCtx {
		t.Errorf("Active.Context = %+v, want %+v", got, rootCtx)
	}
	// Externally timed child (a queue wait).
	qCtx := b.Record("queue.wait", "queue", 10, 20, rootCtx)
	if qCtx.TraceID != rootCtx.TraceID || qCtx.SpanID == rootCtx.SpanID {
		t.Errorf("Record context wrong: %+v", qCtx)
	}
	// Explicit child of the root.
	child, childCtx := b.BeginSpan("analysis", "analysis", rootCtx)
	child.End()
	root.End()

	byID := make(map[string]Span)
	for _, s := range b.Snapshot() {
		byID[s.ID] = s
	}
	if len(byID) != 3 {
		t.Fatalf("got %d distinct spans, want 3", len(byID))
	}
	q := byID[qCtx.SpanID]
	if q.Name != "queue.wait" || q.Start != 10 || q.End != 20 || q.Parent != rootCtx.SpanID {
		t.Errorf("queue span wrong: %+v", q)
	}
	c := byID[childCtx.SpanID]
	if c.Parent != rootCtx.SpanID || c.Trace != rootCtx.TraceID {
		t.Errorf("child span wrong: %+v", c)
	}
	r := byID[rootCtx.SpanID]
	if r.Parent != "" || r.Trace != rootCtx.TraceID {
		t.Errorf("root span wrong: %+v", r)
	}
}

func TestBeginSpanPropagatesWhenDisabled(t *testing.T) {
	var nilBuf *Buffer
	sp, tc := nilBuf.BeginSpan("x", "test", TraceContext{})
	sp.End() // must not panic
	if !tc.Valid() {
		t.Error("nil buffer BeginSpan returned unusable context")
	}
	parent := NewTraceContext()
	_, tc2 := nilBuf.BeginSpan("y", "test", parent)
	if tc2.TraceID != parent.TraceID || tc2.SpanID == parent.SpanID {
		t.Errorf("nil buffer did not extend parent trace: %+v", tc2)
	}

	b := NewBufferClock(4, fakeClock())
	b.SetEnabled(false)
	if got := b.Record("q", "queue", 1, 2, parent); got != parent {
		t.Errorf("disabled Record did not pass parent through: %+v", got)
	}
	if b.Len() != 0 {
		t.Errorf("disabled buffer recorded %d spans", b.Len())
	}
	if nilBuf.Now() != 0 {
		t.Error("nil buffer Now != 0")
	}
}

// TestRingOverflowConcurrentTraced hammers a small traced ring from many
// writers: the drop-oldest invariant must hold (len+dropped == pushes)
// and no span may come out with a corrupted parent/ID relationship —
// every surviving traced span links to the installed context and keeps a
// unique well-formed ID. Run under -race in CI.
func TestRingOverflowConcurrentTraced(t *testing.T) {
	const cap = 64
	const goroutines = 8
	const perG = 1000
	b := NewBuffer(cap)
	root := NewTraceContext()
	b.SetContext(root)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sp := b.Begin("work", "test")
				sp.End()
				if i%100 == 0 {
					_ = b.Snapshot()
				}
			}
		}()
	}
	wg.Wait()

	if b.Len() != cap {
		t.Errorf("Len = %d, want full ring of %d", b.Len(), cap)
	}
	if got := b.Dropped() + int64(b.Len()); got != goroutines*perG {
		t.Errorf("recorded+dropped = %d, want %d", got, goroutines*perG)
	}
	ids := make(map[string]bool)
	for _, s := range b.Snapshot() {
		if s.Trace != root.TraceID || s.Parent != root.SpanID {
			t.Fatalf("span with corrupted parentage: %+v", s)
		}
		if len(s.ID) != 16 || !isLowerHex(s.ID) {
			t.Fatalf("span with malformed ID: %+v", s)
		}
		if ids[s.ID] {
			t.Fatalf("duplicate span ID %q survived overflow", s.ID)
		}
		ids[s.ID] = true
		if s.End < s.Start {
			t.Fatalf("span with End < Start: %+v", s)
		}
	}
}

func TestBufferConcurrency(t *testing.T) {
	b := NewBuffer(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := b.Begin("work", "test")
				sp.End()
				if i%50 == 0 {
					_ = b.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if b.Len() != 128 {
		t.Errorf("Len = %d, want full ring of 128", b.Len())
	}
	if got := b.Dropped() + int64(b.Len()); got != 8*500 {
		t.Errorf("recorded+dropped = %d, want 4000", got)
	}
}
