package obs

import (
	"sync"
	"testing"
)

// fakeClock returns a deterministic strictly increasing clock.
func fakeClock() func() int64 {
	var t int64
	var mu sync.Mutex
	return func() int64 {
		mu.Lock()
		defer mu.Unlock()
		t += 100
		return t
	}
}

func TestBufferRecordsAndDropsOldest(t *testing.T) {
	b := NewBufferClock(3, fakeClock())
	for i, name := range []string{"a", "b", "c", "d", "e"} {
		sp := b.Begin(name, "test")
		sp.End()
		if want := i + 1; b.Len() != min(want, 3) {
			t.Errorf("after %d spans Len = %d", want, b.Len())
		}
	}
	got := b.Snapshot()
	if len(got) != 3 {
		t.Fatalf("snapshot has %d spans, want 3", len(got))
	}
	for i, want := range []string{"c", "d", "e"} {
		if got[i].Name != want {
			t.Errorf("snapshot[%d] = %q, want %q (oldest-first order)", i, got[i].Name, want)
		}
		if got[i].End <= got[i].Start {
			t.Errorf("span %q has End %d <= Start %d", got[i].Name, got[i].End, got[i].Start)
		}
	}
	if b.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", b.Dropped())
	}
}

func TestNilAndDisabledBuffersAreInert(t *testing.T) {
	var nilBuf *Buffer
	sp := nilBuf.Begin("x", "test")
	sp.End() // must not panic
	if nilBuf.Snapshot() != nil || nilBuf.Len() != 0 || nilBuf.Dropped() != 0 {
		t.Error("nil buffer not inert")
	}

	b := NewBufferClock(4, fakeClock())
	b.SetEnabled(false)
	b.Begin("skipped", "test").End()
	if b.Len() != 0 {
		t.Errorf("disabled buffer recorded %d spans", b.Len())
	}
	b.SetEnabled(true)
	b.Begin("kept", "test").End()
	if b.Len() != 1 {
		t.Errorf("re-enabled buffer has %d spans, want 1", b.Len())
	}
}

func TestBufferConcurrency(t *testing.T) {
	b := NewBuffer(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := b.Begin("work", "test")
				sp.End()
				if i%50 == 0 {
					_ = b.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if b.Len() != 128 {
		t.Errorf("Len = %d, want full ring of 128", b.Len())
	}
	if got := b.Dropped() + int64(b.Len()); got != 8*500 {
		t.Errorf("recorded+dropped = %d, want 4000", got)
	}
}
