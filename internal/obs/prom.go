package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// TypedMetric is one instrument exported with its kind intact — unlike
// Snapshot, which flattens histograms into scalar entries, this is the
// shape a Prometheus exposition needs (bucket structure preserved).
type TypedMetric struct {
	Name  string
	Kind  string // "counter", "gauge", or "histogram"
	Value int64  // counter/gauge value; unused for histograms
	Hist  *HistogramView
}

// Typed captures every registered metric with its kind, sorted by name.
// Computed metrics export as gauges (they wrap externally-owned values
// whose monotonicity the registry cannot vouch for).
func (r *Registry) Typed() []TypedMetric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TypedMetric, 0, len(r.instruments)+len(r.funcs))
	for name, inst := range r.instruments {
		switch m := inst.(type) {
		case *Counter:
			out = append(out, TypedMetric{Name: name, Kind: "counter", Value: m.Load()})
		case *Gauge:
			out = append(out, TypedMetric{Name: name, Kind: "gauge", Value: m.Load()})
		case *Histogram:
			v := m.View()
			out = append(out, TypedMetric{Name: name, Kind: "histogram", Hist: &v})
		}
	}
	for name, fn := range r.funcs {
		out = append(out, TypedMetric{Name: name, Kind: "gauge", Value: fn()})
	}
	// Sorted by name: the exposition is deterministic and map iteration
	// order never reaches the wire.
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// promName maps a slash-separated registry name to the Prometheus metric
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelSet renders a deterministic {k="v",...} label block: base
// pairs sorted by key, then the extra pair (a histogram's le) last.
// Empty input renders as "".
func promLabelSet(base map[string]string, extraKey, extraVal string) string {
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", promName(k), base[k]))
	}
	if extraKey != "" {
		parts = append(parts, fmt.Sprintf("%s=%q", extraKey, extraVal))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteProm writes metrics in the Prometheus text exposition format
// (version 0.0.4), with the given labels attached to every sample.
// Counters render with the conventional _total suffix; histograms render
// cumulative _bucket series with an +Inf bucket plus _sum and _count.
// Identical inputs produce byte-identical output: metrics arrive sorted
// from Typed and labels render in sorted key order.
func WriteProm(w io.Writer, metrics []TypedMetric, labels map[string]string) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	for _, m := range metrics {
		name := promName(m.Name)
		switch m.Kind {
		case "counter":
			if err := p("# TYPE %s_total counter\n%s_total%s %d\n",
				name, name, promLabelSet(labels, "", ""), m.Value); err != nil {
				return err
			}
		case "gauge":
			if err := p("# TYPE %s gauge\n%s%s %d\n",
				name, name, promLabelSet(labels, "", ""), m.Value); err != nil {
				return err
			}
		case "histogram":
			if err := p("# TYPE %s histogram\n", name); err != nil {
				return err
			}
			var cum int64
			for i, b := range m.Hist.Bounds {
				cum += m.Hist.Counts[i]
				if err := p("%s_bucket%s %d\n",
					name, promLabelSet(labels, "le", strconv.FormatInt(b, 10)), cum); err != nil {
					return err
				}
			}
			if err := p("%s_bucket%s %d\n",
				name, promLabelSet(labels, "le", "+Inf"), m.Hist.Count); err != nil {
				return err
			}
			if err := p("%s_sum%s %d\n%s_count%s %d\n",
				name, promLabelSet(labels, "", ""), m.Hist.Sum,
				name, promLabelSet(labels, "", ""), m.Hist.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
