package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("a/count")
	c.Add(3)
	c.Inc()
	if got := c.Load(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	g := r.NewGauge("a/gauge")
	g.Set(7)
	g.Set(-2)
	if got := g.Load(); got != -2 {
		t.Errorf("gauge = %d, want -2", got)
	}
	h := r.NewHistogram("a/hist", 10, 100)
	for _, v := range []int64{1, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1122 {
		t.Errorf("histogram count=%d sum=%d, want 5/1122", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	want := Snapshot{
		"a/count": 4, "a/gauge": -2,
		"a/hist/le_10": 2, "a/hist/le_100": 2, "a/hist/le_inf": 1,
		"a/hist/count": 5, "a/hist/sum": 1122,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("snapshot[%q] = %d, want %d", k, snap[k], v)
		}
	}
	if len(snap) != len(want) {
		t.Errorf("snapshot has %d entries, want %d: %v", len(snap), len(want), snap)
	}
}

func TestRegistrationIdempotentAndKindChecked(t *testing.T) {
	r := NewRegistry()
	if r.NewCounter("x") != r.NewCounter("x") {
		t.Error("NewCounter not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Error("registering a counter name as a gauge did not panic")
		}
	}()
	r.NewGauge("x")
}

func TestRegisterFunc(t *testing.T) {
	r := NewRegistry()
	v := int64(41)
	r.RegisterFunc("live", func() int64 { return v })
	v++
	if got := r.Snapshot()["live"]; got != 42 {
		t.Errorf("computed metric = %d, want 42", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate RegisterFunc did not panic")
		}
	}()
	r.RegisterFunc("live", func() int64 { return 0 })
}

func TestSnapshotWriters(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("b").Add(2)
	r.NewCounter("a").Add(1)
	snap := r.Snapshot()

	var tsv bytes.Buffer
	if err := snap.WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	if got, want := tsv.String(), "a\t1\nb\t2\n"; got != want {
		t.Errorf("TSV = %q, want %q", got, want)
	}

	var js bytes.Buffer
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back map[string]int64
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if back["a"] != 1 || back["b"] != 2 {
		t.Errorf("JSON round trip = %v", back)
	}
	if idx := strings.Index(js.String(), `"a"`); idx < 0 || idx > strings.Index(js.String(), `"b"`) {
		t.Errorf("JSON keys not sorted: %s", js.String())
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// registration races, increments, observations, and snapshots — and is
// meaningful under -race (CI runs the suite with the race detector).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.NewCounter("shared/counter")
			h := r.NewHistogram("shared/hist", 8, 64, 512)
			gauge := r.NewGauge("shared/gauge")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(int64(i))
				gauge.Set(int64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap["shared/counter"]; got != goroutines*perG {
		t.Errorf("shared counter = %d, want %d", got, goroutines*perG)
	}
	if got := snap["shared/hist/count"]; got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
}
