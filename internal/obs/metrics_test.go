package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("a/count")
	c.Add(3)
	c.Inc()
	if got := c.Load(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	g := r.NewGauge("a/gauge")
	g.Set(7)
	g.Set(-2)
	if got := g.Load(); got != -2 {
		t.Errorf("gauge = %d, want -2", got)
	}
	h := r.NewHistogram("a/hist", 10, 100)
	for _, v := range []int64{1, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1122 {
		t.Errorf("histogram count=%d sum=%d, want 5/1122", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	want := Snapshot{
		"a/count": 4, "a/gauge": -2,
		"a/hist/le_10": 2, "a/hist/le_100": 2, "a/hist/le_inf": 1,
		"a/hist/count": 5, "a/hist/sum": 1122,
		// rank(p50)=3 lands halfway through (10,100]; p95/p99 land in the
		// overflow bucket and clamp to the last bound.
		"a/hist/p50": 55, "a/hist/p95": 100, "a/hist/p99": 100,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("snapshot[%q] = %d, want %d", k, snap[k], v)
		}
	}
	if len(snap) != len(want) {
		t.Errorf("snapshot has %d entries, want %d: %v", len(snap), len(want), snap)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", 100, 1000, 10000)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %d, want 0", got)
	}
	// 90 fast observations, 9 mid, 1 slow.
	for i := 0; i < 90; i++ {
		h.Observe(50)
	}
	for i := 0; i < 9; i++ {
		h.Observe(500)
	}
	h.Observe(5000)
	// p50: rank 50 of 100 inside (0,100] → 50/90 of the way up.
	if got := h.Quantile(0.50); got != 56 {
		t.Errorf("p50 = %d, want 56", got)
	}
	// p95: rank 95 → 5th of 9 in (100,1000] → 100 + 5/9*900 = 600.
	if got := h.Quantile(0.95); got != 600 {
		t.Errorf("p95 = %d, want 600", got)
	}
	// p99: rank 99 → last of the mid bucket.
	if got := h.Quantile(0.99); got != 1000 {
		t.Errorf("p99 = %d, want 1000", got)
	}
	// p100: top edge of the last finite bucket.
	if got := h.Quantile(1.0); got != 10000 {
		t.Errorf("p100 = %d, want 10000", got)
	}

	// A boundless histogram has no edges to interpolate between, so
	// every quantile is 0 no matter what it observed.
	m := r.NewHistogram("boundless")
	m.Observe(10)
	m.Observe(30)
	if got := m.Quantile(0.5); got != 0 {
		t.Errorf("boundless p50 = %d, want 0", got)
	}
}

// TestHistogramQuantileEdgeCases pins the degenerate shapes: empty and
// single-bucket histograms must report 0 for every quantile — never NaN,
// never a panic — and out-of-range q clamps rather than misbehaving.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()
	empty := r.NewHistogram("empty", 10, 100)
	emptyBoundless := r.NewHistogram("empty_boundless")
	single := r.NewHistogram("single_bucket") // only the overflow bucket
	single.Observe(7)
	overflowOnly := r.NewHistogram("overflow_only", 10)
	overflowOnly.Observe(50) // everything past the last bound
	one := r.NewHistogram("one_obs", 10)
	one.Observe(4)

	cases := []struct {
		name string
		h    *Histogram
		q    float64
		want int64
	}{
		{"empty p50", empty, 0.50, 0},
		{"empty p95", empty, 0.95, 0},
		{"empty p99", empty, 0.99, 0},
		{"empty boundless p50", emptyBoundless, 0.50, 0},
		{"single-bucket p50", single, 0.50, 0},
		{"single-bucket p95", single, 0.95, 0},
		{"single-bucket p99", single, 0.99, 0},
		{"all-overflow p50 clamps to last bound", overflowOnly, 0.50, 10},
		// One observation in (0,10]: interpolation puts every rank at the
		// bucket's top edge; out-of-range q clamps to a valid rank first.
		{"q=0 clamps to first rank", one, 0, 10},
		{"q>1 clamps to last rank", one, 2, 10},
	}
	for _, tc := range cases {
		if got := tc.h.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %d, want %d", tc.name, tc.q, got, tc.want)
		}
	}
	// The snapshot path exercises the same quantiles; it must not panic
	// on degenerate histograms and must report their zeros.
	snap := r.Snapshot()
	for _, k := range []string{"empty/p50", "single_bucket/p99"} {
		if snap[k] != 0 {
			t.Errorf("snapshot[%q] = %d, want 0", k, snap[k])
		}
	}
}

func TestHistogramView(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_view", 100, 1000)
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	h.Observe(5000)
	v := h.View()
	if want := []int64{100, 1000}; len(v.Bounds) != 2 || v.Bounds[0] != want[0] || v.Bounds[1] != want[1] {
		t.Errorf("View bounds = %v, want %v", v.Bounds, want)
	}
	if want := []int64{10, 0, 1}; len(v.Counts) != 3 || v.Counts[0] != 10 || v.Counts[1] != 0 || v.Counts[2] != 1 {
		t.Errorf("View counts = %v, want %v", v.Counts, want)
	}
	if v.Count != 11 || v.Sum != 5500 {
		t.Errorf("View count/sum = %d/%d, want 11/5500", v.Count, v.Sum)
	}
	if v.P50 != h.Quantile(0.50) || v.P95 != h.Quantile(0.95) || v.P99 != h.Quantile(0.99) {
		t.Errorf("View quantiles %d/%d/%d disagree with Quantile", v.P50, v.P95, v.P99)
	}
	// The view is a copy: mutating it must not touch the histogram.
	v.Bounds[0] = 1
	if h.Quantile(1.0) == 1 {
		t.Error("mutating a view's bounds reached the histogram")
	}
}

func TestRegistrationIdempotentAndKindChecked(t *testing.T) {
	r := NewRegistry()
	if r.NewCounter("x") != r.NewCounter("x") {
		t.Error("NewCounter not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Error("registering a counter name as a gauge did not panic")
		}
	}()
	r.NewGauge("x")
}

func TestRegisterFunc(t *testing.T) {
	r := NewRegistry()
	v := int64(41)
	r.RegisterFunc("live", func() int64 { return v })
	v++
	if got := r.Snapshot()["live"]; got != 42 {
		t.Errorf("computed metric = %d, want 42", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate RegisterFunc did not panic")
		}
	}()
	r.RegisterFunc("live", func() int64 { return 0 })
}

func TestSnapshotWriters(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("b").Add(2)
	r.NewCounter("a").Add(1)
	snap := r.Snapshot()

	var tsv bytes.Buffer
	if err := snap.WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	if got, want := tsv.String(), "a\t1\nb\t2\n"; got != want {
		t.Errorf("TSV = %q, want %q", got, want)
	}

	var js bytes.Buffer
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back map[string]int64
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if back["a"] != 1 || back["b"] != 2 {
		t.Errorf("JSON round trip = %v", back)
	}
	if idx := strings.Index(js.String(), `"a"`); idx < 0 || idx > strings.Index(js.String(), `"b"`) {
		t.Errorf("JSON keys not sorted: %s", js.String())
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// registration races, increments, observations, and snapshots — and is
// meaningful under -race (CI runs the suite with the race detector).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.NewCounter("shared/counter")
			h := r.NewHistogram("shared/hist", 8, 64, 512)
			gauge := r.NewGauge("shared/gauge")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(int64(i))
				gauge.Set(int64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap["shared/counter"]; got != goroutines*perG {
		t.Errorf("shared counter = %d, want %d", got, goroutines*perG)
	}
	if got := snap["shared/hist/count"]; got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
}
