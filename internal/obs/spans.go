package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one completed begin/end interval: a phase of a per-launch
// analysis (region-tree traversal, refinement, BVH query, coalescing), a
// tracer event (record/replay/invalidate), or a serving-layer interval
// (HTTP request, queue wait). Times are nanoseconds on the buffer's
// clock — monotonic wall clock by default.
//
// Trace, ID, and Parent place the span in a request-scoped trace tree
// (see TraceContext); all three are empty for spans recorded outside any
// trace context, which keeps pre-existing exports byte-identical.
type Span struct {
	Name  string
	Cat   string
	Start int64
	End   int64

	Trace  string `json:",omitempty"`
	ID     string `json:",omitempty"`
	Parent string `json:",omitempty"`
}

// Context returns the span's identity as a TraceContext (for parenting
// further children under it); invalid when the span carries no trace.
func (s Span) Context() TraceContext {
	return TraceContext{TraceID: s.Trace, SpanID: s.ID}
}

// Buffer records spans into a fixed-capacity ring, dropping the oldest
// span when full, so instrumentation of hot per-launch phases is bounded
// in memory no matter how long the run. A nil *Buffer is valid and
// records nothing; a non-nil buffer can also be disabled, which keeps the
// storage but turns Begin into a single atomic load. Safe for concurrent
// use.
type Buffer struct {
	enabled atomic.Bool
	ctx     atomic.Pointer[TraceContext] // current parent for Begin; nil = none
	now     func() int64                 // immutable after construction

	mu      sync.Mutex
	ring    []Span // guarded by mu
	head    int    // guarded by mu; index of the oldest span when full
	dropped int64  // guarded by mu
}

// NewBuffer creates an enabled buffer holding at most capacity spans,
// timestamped with the monotonic wall clock.
func NewBuffer(capacity int) *Buffer {
	base := time.Now()
	return NewBufferClock(capacity, func() int64 { return time.Since(base).Nanoseconds() })
}

// NewBufferClock is NewBuffer with a caller-supplied clock; tests use a
// deterministic clock to pin exported output.
func NewBufferClock(capacity int, now func() int64) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	b := &Buffer{now: now, ring: make([]Span, 0, capacity)}
	b.enabled.Store(true)
	return b
}

// SetEnabled turns recording on or off. Spans begun while enabled but
// ended after disabling are still recorded.
func (b *Buffer) SetEnabled(on bool) { b.enabled.Store(on) }

// Now returns the current time on the buffer's clock (0 on a nil buffer)
// so externally timed intervals (queue waits) land on the same axis as
// recorded spans.
func (b *Buffer) Now() int64 {
	if b == nil {
		return 0
	}
	return b.now()
}

// SetContext installs tc as the parent of every span Begin records until
// the next SetContext. An invalid tc clears the parent. The session
// worker brackets each job with SetContext, so the per-phase analysis
// spans the runtime emits during the job become children of the job's
// HTTP request span without the analyzers knowing about HTTP at all.
func (b *Buffer) SetContext(tc TraceContext) {
	if b == nil {
		return
	}
	if !tc.Valid() {
		b.ctx.Store(nil)
		return
	}
	b.ctx.Store(&tc)
}

// Context returns the currently installed parent context (invalid when
// none is set).
func (b *Buffer) Context() TraceContext {
	if b == nil {
		return TraceContext{}
	}
	if p := b.ctx.Load(); p != nil {
		return *p
	}
	return TraceContext{}
}

// Active is an in-flight span returned by Begin; call End exactly once.
// The zero Active (from a nil or disabled buffer) is inert.
type Active struct {
	buf    *Buffer
	name   string
	cat    string
	trace  string
	id     string
	parent string
	start  int64
}

// Begin starts a span. On a nil or disabled buffer it returns an inert
// Active whose End is a no-op, so call sites need no guards. When a
// parent context is installed (SetContext), the span joins its trace.
func (b *Buffer) Begin(name, cat string) Active {
	if b == nil || !b.enabled.Load() {
		return Active{}
	}
	a := Active{buf: b, name: name, cat: cat, start: b.now()}
	if p := b.ctx.Load(); p != nil {
		a.trace, a.parent, a.id = p.TraceID, p.SpanID, NewSpanID()
	}
	return a
}

// BeginSpan starts a span explicitly parented under parent, returning
// the in-flight span and the context identifying it (for parenting
// further children). An invalid parent starts a fresh root trace. On a
// nil or disabled buffer the span is inert but the returned context is
// still usable — propagation survives even where recording is off.
func (b *Buffer) BeginSpan(name, cat string, parent TraceContext) (Active, TraceContext) {
	if b == nil || !b.enabled.Load() {
		if !parent.Valid() {
			parent = NewTraceContext()
		}
		return Active{}, parent.Child()
	}
	a := Active{buf: b, name: name, cat: cat, start: b.now()}
	if parent.Valid() {
		a.trace, a.parent, a.id = parent.TraceID, parent.SpanID, NewSpanID()
	} else {
		a.trace, a.id = NewTraceID(), NewSpanID()
	}
	return a, TraceContext{TraceID: a.trace, SpanID: a.id}
}

// Record appends a completed span with explicit timestamps (on the
// buffer's clock, see Now) parented under parent, returning the recorded
// span's context. Used for intervals measured outside the buffer, like
// the time a job spent queued before its worker picked it up.
func (b *Buffer) Record(name, cat string, start, end int64, parent TraceContext) TraceContext {
	if b == nil || !b.enabled.Load() {
		return parent
	}
	s := Span{Name: name, Cat: cat, Start: start, End: end}
	if parent.Valid() {
		s.Trace, s.Parent, s.ID = parent.TraceID, parent.SpanID, NewSpanID()
	} else {
		s.Trace, s.ID = NewTraceID(), NewSpanID()
	}
	b.push(s)
	return s.Context()
}

// End completes the span and records it.
func (a Active) End() {
	if a.buf == nil {
		return
	}
	a.buf.push(Span{
		Name: a.name, Cat: a.cat, Start: a.start, End: a.buf.now(),
		Trace: a.trace, ID: a.id, Parent: a.parent,
	})
}

// Context returns the identity of an in-flight span begun with BeginSpan
// or under an installed parent context (invalid for inert or untraced
// spans).
func (a Active) Context() TraceContext {
	return TraceContext{TraceID: a.trace, SpanID: a.id}
}

// push appends s, overwriting the oldest span when the ring is full.
func (b *Buffer) push(s Span) {
	b.mu.Lock()
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, s)
	} else {
		b.ring[b.head] = s
		b.head = (b.head + 1) % len(b.ring)
		b.dropped++
	}
	b.mu.Unlock()
}

// Snapshot returns the recorded spans, oldest first. A nil buffer yields
// nil.
func (b *Buffer) Snapshot() []Span {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Span, 0, len(b.ring))
	out = append(out, b.ring[b.head:]...)
	out = append(out, b.ring[:b.head]...)
	return out
}

// Dropped returns how many spans were overwritten by newer ones.
func (b *Buffer) Dropped() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Len returns the number of spans currently held.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.ring)
}
