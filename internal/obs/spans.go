package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one completed begin/end interval: a phase of a per-launch
// analysis (region-tree traversal, refinement, BVH query, coalescing) or a
// tracer event (record/replay/invalidate). Times are nanoseconds on the
// buffer's clock — monotonic wall clock by default.
type Span struct {
	Name  string
	Cat   string
	Start int64
	End   int64
}

// Buffer records spans into a fixed-capacity ring, dropping the oldest
// span when full, so instrumentation of hot per-launch phases is bounded
// in memory no matter how long the run. A nil *Buffer is valid and
// records nothing; a non-nil buffer can also be disabled, which keeps the
// storage but turns Begin into a single atomic load. Safe for concurrent
// use.
type Buffer struct {
	enabled atomic.Bool
	now     func() int64 // immutable after construction

	mu      sync.Mutex
	ring    []Span // guarded by mu
	head    int    // guarded by mu; index of the oldest span when full
	dropped int64  // guarded by mu
}

// NewBuffer creates an enabled buffer holding at most capacity spans,
// timestamped with the monotonic wall clock.
func NewBuffer(capacity int) *Buffer {
	base := time.Now()
	return NewBufferClock(capacity, func() int64 { return time.Since(base).Nanoseconds() })
}

// NewBufferClock is NewBuffer with a caller-supplied clock; tests use a
// deterministic clock to pin exported output.
func NewBufferClock(capacity int, now func() int64) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	b := &Buffer{now: now, ring: make([]Span, 0, capacity)}
	b.enabled.Store(true)
	return b
}

// SetEnabled turns recording on or off. Spans begun while enabled but
// ended after disabling are still recorded.
func (b *Buffer) SetEnabled(on bool) { b.enabled.Store(on) }

// Active is an in-flight span returned by Begin; call End exactly once.
// The zero Active (from a nil or disabled buffer) is inert.
type Active struct {
	buf   *Buffer
	name  string
	cat   string
	start int64
}

// Begin starts a span. On a nil or disabled buffer it returns an inert
// Active whose End is a no-op, so call sites need no guards.
func (b *Buffer) Begin(name, cat string) Active {
	if b == nil || !b.enabled.Load() {
		return Active{}
	}
	return Active{buf: b, name: name, cat: cat, start: b.now()}
}

// End completes the span and records it.
func (a Active) End() {
	if a.buf == nil {
		return
	}
	a.buf.push(Span{Name: a.name, Cat: a.cat, Start: a.start, End: a.buf.now()})
}

// push appends s, overwriting the oldest span when the ring is full.
func (b *Buffer) push(s Span) {
	b.mu.Lock()
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, s)
	} else {
		b.ring[b.head] = s
		b.head = (b.head + 1) % len(b.ring)
		b.dropped++
	}
	b.mu.Unlock()
}

// Snapshot returns the recorded spans, oldest first. A nil buffer yields
// nil.
func (b *Buffer) Snapshot() []Span {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Span, 0, len(b.ring))
	out = append(out, b.ring[b.head:]...)
	out = append(out, b.ring[:b.head]...)
	return out
}

// Dropped returns how many spans were overwritten by newer ones.
func (b *Buffer) Dropped() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Len returns the number of spans currently held.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.ring)
}
