package obs

import (
	"testing"
)

func TestSpanDurations(t *testing.T) {
	spans := []Span{
		{Name: "a.analyze", Cat: "analysis", Start: 10, End: 40},
		{Name: "http", Cat: "server", Start: 0, End: 100},
		{Name: "a.refine", Cat: "analysis", Start: 40, End: 45},
	}
	got := SpanDurations(spans, "analysis")
	if len(got) != 2 || got[0] != 30 || got[1] != 5 {
		t.Errorf("SpanDurations(analysis) = %v, want [30 5]", got)
	}
	if all := SpanDurations(spans, ""); len(all) != 3 {
		t.Errorf("SpanDurations(\"\") = %v, want 3 durations", all)
	}
	if none := SpanDurations(nil, "analysis"); len(none) != 0 {
		t.Errorf("SpanDurations(nil) = %v, want empty", none)
	}
}

func TestQuantiles(t *testing.T) {
	// 1..100 shuffled deterministically; exact nearest-rank answers.
	var vals []int64
	for i := 0; i < 100; i++ {
		vals = append(vals, int64((i*37)%100)+1)
	}
	qs := Quantiles(vals, 0.50, 0.95, 0.99)
	if qs[0] != 51 || qs[1] != 96 || qs[2] != 100 {
		t.Errorf("Quantiles = %v, want [51 96 100]", qs)
	}
	// The input must not be reordered.
	if vals[0] != 1 || vals[1] != 38 {
		t.Errorf("Quantiles mutated its input: %v...", vals[:2])
	}
	if qs := Quantiles(nil, 0.5, 0.99); qs[0] != 0 || qs[1] != 0 {
		t.Errorf("Quantiles(nil) = %v, want zeros", qs)
	}
	if qs := Quantiles([]int64{42}, 0, 0.5, 1, 2); qs[0] != 42 || qs[3] != 42 {
		t.Errorf("out-of-range q did not clamp: %v", qs)
	}
}

func TestReadAllocsSince(t *testing.T) {
	before := ReadAllocs()
	sink := make([][]byte, 0, 100)
	for i := 0; i < 100; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	allocs, bytes := ReadAllocs().Since(before)
	if allocs < 100 {
		t.Errorf("allocs delta = %d, want >= 100", allocs)
	}
	if bytes < 100*1024 {
		t.Errorf("bytes delta = %d, want >= %d", bytes, 100*1024)
	}
	_ = sink
}
