package obs

import (
	"runtime"
	"sort"
)

// SpanDurations extracts the durations (End-Start, in the buffer's clock
// units) of every span in the given category, in recording order. An
// empty cat matches every span.
func SpanDurations(spans []Span, cat string) []int64 {
	var out []int64
	for _, s := range spans {
		if cat != "" && s.Cat != cat {
			continue
		}
		out = append(out, s.End-s.Start)
	}
	return out
}

// Quantiles returns the exact nearest-rank q-quantiles of values, one per
// requested q, sorting a copy of the input. Unlike Histogram.Quantile
// these are exact — benchmark records use them on the bounded span ring,
// where the raw samples are still in hand. Empty input yields all zeros;
// q outside (0,1] clamps to the nearest valid rank.
func Quantiles(values []int64, qs ...float64) []int64 {
	out := make([]int64, len(qs))
	if len(values) == 0 {
		return out
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, q := range qs {
		rank := int(float64(len(sorted)) * q)
		if rank >= len(sorted) {
			rank = len(sorted) - 1
		}
		if rank < 0 {
			rank = 0
		}
		out[i] = sorted[rank]
	}
	return out
}

// AllocSnapshot is a point-in-time sample of the runtime's cumulative
// allocation counters, taken with runtime.ReadMemStats. Two snapshots
// bracketing a run yield allocs/op and bytes/op for the benchmark record;
// the counters are process-global, so measured runs must not share the
// process with concurrent allocating work.
type AllocSnapshot struct {
	Mallocs    uint64
	TotalAlloc uint64
}

// ReadAllocs samples the cumulative allocation counters now.
func ReadAllocs() AllocSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return AllocSnapshot{Mallocs: ms.Mallocs, TotalAlloc: ms.TotalAlloc}
}

// Since returns the allocation count and byte deltas from prev to a.
func (a AllocSnapshot) Since(prev AllocSnapshot) (allocs, bytes int64) {
	return int64(a.Mallocs - prev.Mallocs), int64(a.TotalAlloc - prev.TotalAlloc)
}
