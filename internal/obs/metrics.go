// Package obs is the observability layer: a metrics registry of typed
// atomic instruments, a ring-buffered span recorder for the phases of each
// per-launch analysis, and a Chrome trace-event (Perfetto-loadable) JSON
// exporter for both wall-clock spans and the cluster's virtual-time
// schedule.
//
// The package is stdlib-only and sits below every other package in the
// module: core, the analyzers, the tracer, the scheduler, the cluster
// simulator, and the experiment harness all publish into it. Instruments
// are cheap enough to leave on unconditionally — a Counter increment is one
// atomic add — and span recording is nil-safe, so components hold a
// possibly-nil *Buffer and pay a single branch when observability is off.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram over int64 observations. Bounds
// are inclusive upper edges in ascending order; an implicit overflow
// bucket captures observations above the last bound. Buckets, count, and
// sum are all atomic, so concurrent Observe calls need no lock.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is overflow
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// distribution by linear interpolation inside the bucket containing the
// rank, taking each bucket's lower edge from the previous bound (0 for
// the first). Observations that landed in the overflow bucket clamp the
// estimate to the last bound — the histogram cannot see past its edges.
// Degenerate histograms are well-defined, never NaN and never a panic:
// with no observations the answer is 0, and a single-bucket histogram
// (no bounds, only the overflow bucket) has no edges to interpolate
// between, so every quantile is 0 as well.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q <= 0 {
		q = 1 / float64(total)
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	lo := int64(0)
	for i, bound := range h.bounds {
		n := h.buckets[i].Load()
		if cum+n >= rank {
			frac := float64(rank-cum) / float64(n)
			return lo + int64(math.Round(frac*float64(bound-lo)))
		}
		cum += n
		lo = bound
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramView is a point-in-time export of one histogram: the bucket
// bounds and counts, the observation count and sum, and the standard
// latency quantiles. It is the shape benchmark records and dashboards
// consume without re-deriving quantiles from raw bucket counts.
type HistogramView struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(Bounds)+1; last is overflow
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	P50    int64   `json:"p50"`
	P95    int64   `json:"p95"`
	P99    int64   `json:"p99"`
}

// View exports the histogram's current state. Bucket counts are loaded
// one atomic at a time, so a view taken during concurrent Observe calls
// is a consistent-enough snapshot for reporting, not an exact cut.
func (h *Histogram) View() HistogramView {
	v := HistogramView{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		P50:    h.Quantile(0.50),
		P95:    h.Quantile(0.95),
		P99:    h.Quantile(0.99),
	}
	for i := range h.buckets {
		v.Counts[i] = h.buckets[i].Load()
	}
	return v
}

// Registry holds instruments by hierarchical slash-separated name
// (e.g. "cluster/messages"). Registration is idempotent: asking for an
// existing name of the same kind returns the existing instrument, so
// components sharing a registry coordinate by name alone. Registering one
// name as two different kinds panics — that is a wiring bug, not a
// runtime condition.
type Registry struct {
	mu          sync.Mutex
	instruments map[string]any          // guarded by mu
	funcs       map[string]func() int64 // guarded by mu
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		instruments: make(map[string]any),
		funcs:       make(map[string]func() int64),
	}
}

// register returns the existing instrument under name after checking its
// kind, or installs the one built by mk.
func (r *Registry) register(name string, kind string, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if inst, ok := r.instruments[name]; ok {
		switch inst.(type) {
		case *Counter:
			if kind != "counter" {
				panic(fmt.Sprintf("obs: %q already registered as a counter", name))
			}
		case *Gauge:
			if kind != "gauge" {
				panic(fmt.Sprintf("obs: %q already registered as a gauge", name))
			}
		case *Histogram:
			if kind != "histogram" {
				panic(fmt.Sprintf("obs: %q already registered as a histogram", name))
			}
		}
		return inst
	}
	if _, ok := r.funcs[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a computed metric", name))
	}
	inst := mk()
	r.instruments[name] = inst
	return inst
}

// NewCounter returns the counter registered under name, creating it on
// first use.
func (r *Registry) NewCounter(name string) *Counter {
	return r.register(name, "counter", func() any { return &Counter{} }).(*Counter)
}

// NewGauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) NewGauge(name string) *Gauge {
	return r.register(name, "gauge", func() any { return &Gauge{} }).(*Gauge)
}

// NewHistogram returns the histogram registered under name, creating it
// with the given ascending inclusive bucket bounds on first use (later
// bounds are ignored for an existing histogram).
func (r *Registry) NewHistogram(name string, bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
		}
	}
	return r.register(name, "histogram", func() any {
		return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
	}).(*Histogram)
}

// RegisterFunc installs a computed metric: fn is evaluated at snapshot
// time. Use it to expose counters that already live elsewhere (e.g. a
// core.Stats field) without changing how they are incremented; the caller
// must guarantee fn is safe to call when Snapshot runs. Registering a
// duplicate name panics.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.instruments[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as an instrument", name))
	}
	if _, ok := r.funcs[name]; ok {
		panic(fmt.Sprintf("obs: computed metric %q already registered", name))
	}
	r.funcs[name] = fn
}

// Snapshot is a point-in-time view of every metric in a registry.
// Histograms expand into one entry per bucket ("name/le_<bound>" and
// "name/le_inf") plus "name/count", "name/sum", and quantile estimates
// "name/p50", "name/p95", "name/p99" (see Histogram.Quantile) so
// dashboards and CI can assert on latency percentiles without
// re-deriving them from bucket counts.
type Snapshot map[string]int64

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(Snapshot, len(r.instruments)+len(r.funcs))
	for name, inst := range r.instruments {
		switch m := inst.(type) {
		case *Counter:
			out[name] = m.Load()
		case *Gauge:
			out[name] = m.Load()
		case *Histogram:
			for i, b := range m.bounds {
				out[name+"/le_"+strconv.FormatInt(b, 10)] = m.buckets[i].Load()
			}
			out[name+"/le_inf"] = m.buckets[len(m.bounds)].Load()
			out[name+"/count"] = m.Count()
			out[name+"/sum"] = m.Sum()
			out[name+"/p50"] = m.Quantile(0.50)
			out[name+"/p95"] = m.Quantile(0.95)
			out[name+"/p99"] = m.Quantile(0.99)
		}
	}
	for name, fn := range r.funcs {
		out[name] = fn()
	}
	return out
}

// WriteJSON writes the snapshot as an indented JSON object with keys in
// sorted order (encoding/json sorts map keys), so identical states produce
// byte-identical output.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteTSV writes the snapshot as "name<TAB>value" lines in sorted name
// order.
func (s Snapshot) WriteTSV(w io.Writer) error {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s\t%d\n", name, s[name]); err != nil {
			return err
		}
	}
	return nil
}
