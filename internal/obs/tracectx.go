package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"strings"
	"sync/atomic"
)

// TraceContext identifies a position in a request-scoped distributed
// trace: the 16-byte trace ID shared by every span of one request and the
// 8-byte ID of the current span, both lower-hex encoded as in the W3C
// Trace Context "traceparent" header. The zero value means "no context";
// every consumer treats it as absent.
//
// The serving stack threads one TraceContext per HTTP request from the
// client (which mints the root), through the server middleware, across
// the session worker queue, and into the analysis span buffer — so one
// export shows HTTP span → queue-wait span → per-phase analysis spans as
// a single parented tree.
type TraceContext struct {
	TraceID string `json:"trace,omitempty"`
	SpanID  string `json:"span,omitempty"`
}

// Valid reports whether the context carries both IDs.
func (tc TraceContext) Valid() bool { return tc.TraceID != "" && tc.SpanID != "" }

// Traceparent renders the context as a W3C traceparent header value
// (version 00, sampled flag set). Invalid contexts render empty.
func (tc TraceContext) Traceparent() string {
	if !tc.Valid() {
		return ""
	}
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-01"
}

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// version byte (per the spec, unknown versions are parsed as version 00)
// and rejects malformed or all-zero IDs; ok is false for anything
// unusable, including the empty string.
func ParseTraceparent(s string) (TraceContext, bool) {
	parts := strings.Split(s, "-")
	if len(parts) < 4 {
		return TraceContext{}, false
	}
	version, trace, span := parts[0], parts[1], parts[2]
	if len(version) != 2 || !isLowerHex(version) || version == "ff" {
		return TraceContext{}, false
	}
	if len(trace) != 32 || !isLowerHex(trace) || allZero(trace) {
		return TraceContext{}, false
	}
	if len(span) != 16 || !isLowerHex(span) || allZero(span) {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: trace, SpanID: span}, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// ID generation: a per-process random salt mixed with an atomic counter
// through a splitmix64 finalizer. IDs are unique within the process and
// collide across processes only with the salt's 2^-64 probability —
// exactly the regime trace IDs need, without per-ID syscall cost.
var (
	idSalt atomic.Uint64
	idCtr  atomic.Uint64
)

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		idSalt.Store(binary.LittleEndian.Uint64(b[:]))
	}
}

func nextID() uint64 {
	z := idSalt.Load() + idCtr.Add(1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1 // the all-zero ID is invalid per the W3C spec
	}
	return z
}

// NewSpanID returns a fresh 16-hex-digit span ID.
func NewSpanID() string { return fmt.Sprintf("%016x", nextID()) }

// NewTraceID returns a fresh 32-hex-digit trace ID.
func NewTraceID() string { return fmt.Sprintf("%016x%016x", nextID(), nextID()) }

// NewTraceContext mints a root context: a fresh trace with a fresh span.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
}

// Child returns a context in the same trace with a fresh span ID —
// the identity of a new span parented under tc.
func (tc TraceContext) Child() TraceContext {
	return TraceContext{TraceID: tc.TraceID, SpanID: NewSpanID()}
}
