package data

import (
	"math/rand"
	"testing"
	"testing/quick"

	"visibility/internal/geometry"
	"visibility/internal/index"
	"visibility/internal/privilege"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore(2)
	if s.Len() != 0 || s.Dim() != 2 {
		t.Fatal("empty store wrong")
	}
	p := geometry.Pt2(1, 2)
	if _, ok := s.Get(p); ok {
		t.Error("Get on empty store")
	}
	s.Set(p, 3.5)
	if v, ok := s.Get(p); !ok || v != 3.5 {
		t.Errorf("Get = %v, %v", v, ok)
	}
	if s.MustGet(p) != 3.5 {
		t.Error("MustGet wrong")
	}
	s.Set(p, 4)
	if s.Len() != 1 || s.MustGet(p) != 4 {
		t.Error("Set should overwrite")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewStore(1).MustGet(geometry.Pt1(0))
}

func TestCloneIsDeep(t *testing.T) {
	s := NewStore(1)
	s.Set(geometry.Pt1(0), 1)
	c := s.Clone()
	c.Set(geometry.Pt1(0), 2)
	if s.MustGet(geometry.Pt1(0)) != 1 {
		t.Error("Clone aliases original")
	}
	if !s.Equal(s.Clone()) {
		t.Error("clone should be equal")
	}
}

func TestRestrict(t *testing.T) {
	s := NewStore(1)
	for i := int64(0); i < 10; i++ {
		s.Set(geometry.Pt1(i), float64(i))
	}
	r := s.Restrict(index.FromRect(geometry.R1(3, 5)))
	if r.Len() != 3 {
		t.Errorf("Restrict len = %d", r.Len())
	}
	if r.MustGet(geometry.Pt1(4)) != 4 {
		t.Error("Restrict value wrong")
	}
	if _, ok := r.Get(geometry.Pt1(6)); ok {
		t.Error("Restrict kept out-of-range point")
	}
	// Restricting to undefined points yields holes, not zeros.
	r2 := s.Restrict(index.FromRect(geometry.R1(8, 12)))
	if r2.Len() != 2 {
		t.Errorf("Restrict over partial definition len = %d", r2.Len())
	}
}

func TestEachSortedAndEqual(t *testing.T) {
	s := NewStore(2)
	s.Set(geometry.Pt2(1, 1), 1)
	s.Set(geometry.Pt2(0, 2), 2)
	s.Set(geometry.Pt2(5, 0), 3)
	var order []geometry.Point
	s.Each(func(p geometry.Point, _ float64) { order = append(order, p) })
	want := []geometry.Point{geometry.Pt2(5, 0), geometry.Pt2(1, 1), geometry.Pt2(0, 2)}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("Each order = %v, want %v", order, want)
		}
	}

	o := s.Clone()
	if !s.Equal(o) {
		t.Error("Equal on clone failed")
	}
	o.Set(geometry.Pt2(9, 9), 0)
	if s.Equal(o) {
		t.Error("Equal on different stores")
	}
	if s.Diff(o) == "" {
		t.Error("Diff should describe mismatch")
	}
	if s.Diff(s.Clone()) != "" {
		t.Error("Diff of equal stores should be empty")
	}
}

func TestBlendPaperSemantics(t *testing.T) {
	// §3.1: writes opaque, reductions blend, reads transparent.
	ops := []Op{
		WriteOp(10),
		ReduceOpOf(privilege.OpSum, 5),
		ReadOp(),
		ReduceOpOf(privilege.OpSum, 2),
	}
	if got := Blend(ops, 0); got != 17 {
		t.Errorf("Blend = %v, want 17", got)
	}
	// A later write occludes everything before it.
	ops = append(ops, WriteOp(100))
	if got := Blend(ops, 0); got != 100 {
		t.Errorf("Blend after write = %v, want 100", got)
	}
	// Value observed by a read at position i is Blend(ops[:i]).
	if got := Blend(ops[:3], 0); got != 15 {
		t.Errorf("read observes %v, want 15", got)
	}
}

func TestBlendMinMax(t *testing.T) {
	ops := []Op{
		WriteOp(10),
		ReduceOpOf(privilege.OpMin, 3),
		ReduceOpOf(privilege.OpMax, 7),
	}
	if got := Blend(ops, 0); got != 7 {
		t.Errorf("Blend = %v, want 7", got)
	}
	if got := Blend(ops[:2], 0); got != 3 {
		t.Errorf("Blend = %v, want 3", got)
	}
}

// Property: a write anywhere in the sequence makes the prefix irrelevant.
func TestBlendWriteOcclusionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		n := rng.Intn(8)
		ops := make([]Op, 0, n+1)
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				ops = append(ops, WriteOp(rng.Float64()))
			case 1:
				ops = append(ops, ReduceOpOf(privilege.OpSum, rng.Float64()))
			default:
				ops = append(ops, ReadOp())
			}
		}
		w := WriteOp(rng.Float64())
		suffix := make([]Op, rng.Intn(4))
		for i := range suffix {
			suffix[i] = ReduceOpOf(privilege.OpSum, rng.Float64())
		}
		full := append(append(append([]Op{}, ops...), w), suffix...)
		occl := append([]Op{w}, suffix...)
		return Blend(full, 123) == Blend(occl, 456)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: reads never change the blended value.
func TestBlendReadTransparencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		n := rng.Intn(8)
		ops := make([]Op, 0, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				ops = append(ops, WriteOp(rng.Float64()))
			} else {
				ops = append(ops, ReduceOpOf(privilege.OpSum, rng.Float64()))
			}
		}
		withReads := make([]Op, 0, 2*len(ops))
		for _, o := range ops {
			withReads = append(withReads, o, ReadOp())
		}
		return Blend(ops, 1) == Blend(withReads, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
