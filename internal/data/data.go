// Package data provides point-indexed value stores for region contents and
// the blending function B of paper §3.1, which defines ground-truth
// coherence semantics: the value of an element is the blend of the ordered
// sequence of operations applied to it, where writes are opaque, reductions
// are partially transparent, and reads are fully transparent.
package data

import (
	"fmt"
	"sort"
	"strings"

	"visibility/internal/geometry"
	"visibility/internal/index"
	"visibility/internal/privilege"
)

// Store maps points to float64 values. The zero Store is not usable; create
// with NewStore.
type Store struct {
	dim  int
	vals map[geometry.Point]float64
}

// NewStore creates an empty store for dim-dimensional points.
func NewStore(dim int) *Store {
	return &Store{dim: dim, vals: make(map[geometry.Point]float64)}
}

// Dim returns the dimensionality of the store's points.
func (s *Store) Dim() int { return s.dim }

// Len returns the number of points with defined values.
func (s *Store) Len() int { return len(s.vals) }

// Get returns the value at p; ok is false if p is undefined.
func (s *Store) Get(p geometry.Point) (float64, bool) {
	v, ok := s.vals[p]
	return v, ok
}

// MustGet returns the value at p and panics if p is undefined, which in the
// coherence engines indicates a materialization hole (a bug, not a user
// error).
func (s *Store) MustGet(p geometry.Point) float64 {
	v, ok := s.vals[p]
	if !ok {
		panic(fmt.Sprintf("data: undefined point %v", p))
	}
	return v
}

// Set assigns v to p.
func (s *Store) Set(p geometry.Point, v float64) { s.vals[p] = v }

// Clone returns a deep copy of the store.
func (s *Store) Clone() *Store {
	out := NewStore(s.dim)
	for p, v := range s.vals {
		out.vals[p] = v
	}
	return out
}

// Restrict returns a new store holding s's values at the points of sp that
// are defined in s.
func (s *Store) Restrict(sp index.Space) *Store {
	out := NewStore(s.dim)
	sp.Each(func(p geometry.Point) bool {
		if v, ok := s.vals[p]; ok {
			out.vals[p] = v
		}
		return true
	})
	return out
}

// Each calls f for every defined point in deterministic (sorted) order.
func (s *Store) Each(f func(geometry.Point, float64)) {
	pts := make([]geometry.Point, 0, len(s.vals))
	for p := range s.vals {
		pts = append(pts, p)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Less(pts[j], s.dim) })
	for _, p := range pts {
		f(p, s.vals[p])
	}
}

// Equal reports whether s and o define the same points with the same values.
func (s *Store) Equal(o *Store) bool {
	if len(s.vals) != len(o.vals) {
		return false
	}
	for p, v := range s.vals {
		ov, ok := o.vals[p]
		if !ok || ov != v {
			return false
		}
	}
	return true
}

// Diff returns a human-readable description of the first few differences
// between s and o, or "" if they are equal. Useful in test failures.
func (s *Store) Diff(o *Store) string {
	var b strings.Builder
	n := 0
	s.Each(func(p geometry.Point, v float64) {
		if n >= 5 {
			return
		}
		ov, ok := o.vals[p]
		if !ok {
			fmt.Fprintf(&b, "%v: %v vs <undefined>\n", p, v)
			n++
		} else if ov != v {
			fmt.Fprintf(&b, "%v: %v vs %v\n", p, v, ov)
			n++
		}
	})
	o.Each(func(p geometry.Point, v float64) {
		if n >= 5 {
			return
		}
		if _, ok := s.vals[p]; !ok {
			fmt.Fprintf(&b, "%v: <undefined> vs %v\n", p, v)
			n++
		}
	})
	return b.String()
}

// Op is one operation on a single element, as in §3.1: a write w_x, a
// reduction f_x, or a read r.
type Op struct {
	Priv  privilege.Privilege
	Value float64 // for writes and reductions
}

// WriteOp returns a write of x.
func WriteOp(x float64) Op { return Op{Priv: privilege.Writes(), Value: x} }

// ReduceOpOf returns a reduction f_x.
func ReduceOpOf(op privilege.ReduceOp, x float64) Op {
	return Op{Priv: privilege.Reduces(op), Value: x}
}

// ReadOp returns a read.
func ReadOp() Op { return Op{Priv: privilege.Reads()} }

// BlendOne applies one operation to the current value v: b(w_x, v) = x,
// b(f_x, v) = f(x, v), b(r, v) = v.
func BlendOne(o Op, v float64) float64 {
	switch {
	case o.Priv.IsWrite():
		return o.Value
	case o.Priv.IsReduce():
		return privilege.Apply(o.Priv.Op, v, o.Value)
	default:
		return v
	}
}

// Blend is the blending function B of §3.1: it folds the time-ordered
// operation sequence over the initial value v. The value observed by a read
// at position i is Blend(ops[:i], v0).
func Blend(ops []Op, v float64) float64 {
	for _, o := range ops {
		v = BlendOne(o, v)
	}
	return v
}
