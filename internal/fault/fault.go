// Package fault is the deterministic fault-injection plane: a catalog of
// named injection sites threaded through the runtime (cluster transport,
// equivalence-set maintenance, the scheduler's instance cache, checkpoint
// encode/restore, and the serving layer's admission and worker paths),
// each gated by a seeded Plan of per-site rules.
//
// Determinism is the whole point. Every site draws from its own
// splitmix64 stream derived from (plan seed, site name), so a site's
// fire/no-fire sequence depends only on its own evaluation order — one
// component's faults never perturb another's — and replaying the same
// plan over the same workload reproduces the identical fault sequence.
// Every fire is journaled to the flight recorder (KindFaultInject), so an
// injected fault is visible in the recorded event stream next to the
// runtime events it provoked, and a failing run's plan string is a
// complete reproduction recipe.
//
// A nil *Injector is valid and never fires, so injection points cost one
// pointer test in production.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"visibility/internal/obs/recorder"
)

// Site is a named deterministic injection point. The catalog below is the
// complete set; Parse rejects unknown names.
type Site string

// The injection-site catalog. Append new sites at the end: the catalog
// index is journaled in flight-recorder events (KindFaultInject.A), so
// reordering breaks the interpretation of old dumps.
const (
	// MsgDrop loses a cluster message; the virtual-time transport models
	// the loss as a retransmission after a timeout, so delivery still
	// happens but late. Arg: destination node.
	MsgDrop Site = "cluster.msg.drop"
	// MsgDelay adds a deterministic pseudo-random latency to a cluster
	// message. Arg: destination node.
	MsgDelay Site = "cluster.msg.delay"
	// MsgDup delivers a cluster message twice; the duplicate receive
	// occupies the destination's utility processor. Arg: destination node.
	MsgDup Site = "cluster.msg.dup"
	// MsgReorder holds a cluster message long enough for later traffic to
	// overtake it. Arg: destination node.
	MsgReorder Site = "cluster.msg.reorder"
	// EqSplit forces an equivalence-set refinement that the analysis did
	// not need: a set fully covered by the requested region is split into
	// two fragments anyway. Semantics-preserving by construction; shakes
	// out code that secretly depends on sets staying whole. Arg: the
	// set's point volume.
	EqSplit Site = "analyzer.eqset.split"
	// EqMigrate forces the ray-casting analyzer to rebuild its
	// acceleration structure mid-stream — re-bucketing against the same
	// partition, or abandoning it for the K-d fallback — the migration
	// race of §7.1. Arg: task ID.
	EqMigrate Site = "analyzer.eqset.migrate"
	// CacheBypass forces a physical-instance cache miss in the scheduler,
	// so a materialization that would have been reused is recomputed from
	// its plan. Arg: field ID.
	CacheBypass Site = "sched.cache.bypass"
	// WorkerPanic crashes a session worker goroutine mid-job, inside its
	// recovery scope, exercising the failure-latch path. Arg: session seq.
	WorkerPanic Site = "server.worker.panic"
	// AdmitBurst rejects an admission as if the global in-flight cap were
	// hit, simulating overload pressure. Arg: session seq.
	AdmitBurst Site = "server.admit.burst"
	// CkptCorrupt flips one bit of an encoded checkpoint before it is
	// written. Arg: encoded length in bytes.
	CkptCorrupt Site = "checkpoint.encode.flip"
	// RestoreCorrupt flips one bit of a checkpoint's bytes before they
	// are decoded. Arg: input length in bytes.
	RestoreCorrupt Site = "checkpoint.restore.flip"
	// TraceInvalidate forces an automatic trace to invalidate mid-replay:
	// the autotracer aborts the bracketed instance as if its structure had
	// diverged, the memoized results are dropped, and every replayed
	// launch is re-analyzed through the wrapped analyzer. Recovery must be
	// byte-identical to a run that never traced. Arg: task ID.
	TraceInvalidate Site = "trace.invalidate"
	// ShardStall delays one shard worker's analysis of a launch by a
	// deterministic pseudo-random duration, perturbing the completion
	// order the merge barrier observes. Timing-only: the merged result
	// must be byte-identical to an unstalled run. Arg: task ID.
	ShardStall Site = "shard.stall"
	// ShardMigrate reassigns one analysis atom to a different shard
	// goroutine mid-stream. Scheduling-only: which goroutine runs an
	// atom's analyzer must never change its output. Arg: task ID.
	ShardMigrate Site = "shard.migrate"
)

// catalog fixes the Site -> index mapping journaled in recorder events.
var catalog = []Site{
	MsgDrop, MsgDelay, MsgDup, MsgReorder,
	EqSplit, EqMigrate, CacheBypass,
	WorkerPanic, AdmitBurst,
	CkptCorrupt, RestoreCorrupt,
	TraceInvalidate,
	ShardStall, ShardMigrate,
}

var catalogIndex = func() map[Site]int {
	m := make(map[Site]int, len(catalog))
	for i, s := range catalog {
		m[s] = i
	}
	return m
}()

// Sites returns the full site catalog in index order.
func Sites() []Site { return append([]Site(nil), catalog...) }

// Index returns the site's stable catalog index (-1 for unknown sites),
// the value journaled in KindFaultInject events.
func (s Site) Index() int {
	if i, ok := catalogIndex[s]; ok {
		return i
	}
	return -1
}

// SiteAt returns the site with the given catalog index, for decoding
// recorder dumps ("site_NN" for out-of-range indices from future dumps).
func SiteAt(i int) Site {
	if i >= 0 && i < len(catalog) {
		return catalog[i]
	}
	return Site(fmt.Sprintf("site_%d", i))
}

// Rule schedules one site's fires. The zero value never fires. Prob and
// Every compose: the site fires when either triggers. All triggers
// respect After (evaluations skipped first) and Max (total fire cap).
type Rule struct {
	// Prob fires independently with this probability per evaluation,
	// drawn from the site's private deterministic stream.
	Prob float64
	// Every fires on every Nth matching evaluation (after After).
	Every int
	// After skips the first N matching evaluations entirely.
	After int
	// Max caps total fires; 0 means unlimited.
	Max int
	// Arg, when ArgSet, restricts the rule to evaluations whose argument
	// equals it — e.g. one session's seq, one destination node. Other
	// evaluations do not advance the site's counters or stream.
	Arg    int64
	ArgSet bool
}

// Plan is a seed plus per-site rules — the complete, replayable
// description of a fault campaign.
type Plan struct {
	Seed  int64
	Rules map[Site]Rule
}

// String renders the plan in its canonical grammar:
//
//	seed=<n>;<site>=<k>=<v>[,<k>=<v>...];...
//
// with sites sorted and clauses in fixed order (p, every, after, max,
// arg), so Parse(p.String()) reproduces p exactly.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	sites := make([]string, 0, len(p.Rules))
	//vislint:ignore detrange collecting keys to sort is order-insensitive
	for s := range p.Rules {
		sites = append(sites, string(s))
	}
	sort.Strings(sites)
	for _, s := range sites {
		r := p.Rules[Site(s)]
		var clauses []string
		if r.Prob > 0 {
			clauses = append(clauses, "p="+strconv.FormatFloat(r.Prob, 'g', -1, 64))
		}
		if r.Every > 0 {
			clauses = append(clauses, "every="+strconv.Itoa(r.Every))
		}
		if r.After > 0 {
			clauses = append(clauses, "after="+strconv.Itoa(r.After))
		}
		if r.Max > 0 {
			clauses = append(clauses, "max="+strconv.Itoa(r.Max))
		}
		if r.ArgSet {
			clauses = append(clauses, "arg="+strconv.FormatInt(r.Arg, 10))
		}
		fmt.Fprintf(&b, ";%s=%s", s, strings.Join(clauses, ","))
	}
	return b.String()
}

// Parse parses the plan grammar emitted by String. The empty string is
// the empty plan (seed 0, no rules — an injector that never fires).
func Parse(s string) (Plan, error) {
	p := Plan{Rules: make(map[Site]Rule)}
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, spec, ok := strings.Cut(part, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: clause %q is not <site>=<spec>", part)
		}
		if name == "seed" {
			seed, err := strconv.ParseInt(spec, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: bad seed %q", spec)
			}
			p.Seed = seed
			continue
		}
		site := Site(name)
		if site.Index() < 0 {
			return Plan{}, fmt.Errorf("fault: unknown site %q (have %v)", name, catalog)
		}
		if _, dup := p.Rules[site]; dup {
			return Plan{}, fmt.Errorf("fault: duplicate rules for site %q", name)
		}
		var r Rule
		for _, clause := range strings.Split(spec, ",") {
			k, v, ok := strings.Cut(clause, "=")
			if !ok {
				return Plan{}, fmt.Errorf("fault: clause %q of site %s is not <k>=<v>", clause, name)
			}
			switch k {
			case "p":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f < 0 || f > 1 {
					return Plan{}, fmt.Errorf("fault: site %s probability %q outside [0,1]", name, v)
				}
				r.Prob = f
			case "every", "after", "max":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return Plan{}, fmt.Errorf("fault: site %s %s=%q is not a non-negative integer", name, k, v)
				}
				switch k {
				case "every":
					r.Every = n
				case "after":
					r.After = n
				case "max":
					r.Max = n
				}
			case "arg":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return Plan{}, fmt.Errorf("fault: site %s arg=%q is not an integer", name, v)
				}
				r.Arg, r.ArgSet = n, true
			default:
				return Plan{}, fmt.Errorf("fault: site %s has unknown clause key %q", name, k)
			}
		}
		if r.Prob == 0 && r.Every == 0 {
			return Plan{}, fmt.Errorf("fault: site %s rule has no trigger (need p= or every=)", name)
		}
		p.Rules[site] = r
	}
	return p, nil
}

// siteState is one site's deterministic decision stream.
type siteState struct {
	rule  Rule
	rng   uint64 // splitmix64 state, advanced once per matching evaluation
	evals int64
	fires int64
}

// next advances the stream by one draw.
func (st *siteState) next() uint64 {
	st.rng += 0x9e3779b97f4a7c15
	z := st.rng
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Injector evaluates a Plan at runtime. A nil *Injector is valid and
// never fires. Safe for concurrent use (one mutex; injection points are
// cold paths by construction — they exist to break things, not to be
// fast).
type Injector struct {
	plan Plan

	mu    sync.Mutex
	rec   *recorder.Recorder  // guarded by mu
	sites map[Site]*siteState // guarded by mu; immutable key set
}

// New builds an injector for plan. Sites without rules never fire.
func New(plan Plan) *Injector {
	p := clonePlan(plan)
	sites := make(map[Site]*siteState, len(p.Rules))
	for site, rule := range p.Rules {
		// Seed each site's stream from the plan seed and the site name, so
		// streams are mutually independent and stable across catalog
		// growth.
		h := uint64(14695981039346656037) // FNV-1a offset basis
		for _, c := range []byte(site) {
			h ^= uint64(c)
			h *= 1099511628211
		}
		sites[site] = &siteState{rule: rule, rng: h ^ uint64(plan.Seed)}
	}
	return &Injector{plan: p, sites: sites}
}

// NewFromString is New over Parse.
func NewFromString(s string) (*Injector, error) {
	plan, err := Parse(s)
	if err != nil {
		return nil, err
	}
	return New(plan), nil
}

func clonePlan(p Plan) Plan {
	out := Plan{Seed: p.Seed, Rules: make(map[Site]Rule, len(p.Rules))}
	//vislint:ignore detrange map copy is order-insensitive
	for s, r := range p.Rules {
		out.Rules[s] = r
	}
	return out
}

// Plan returns a copy of the injector's plan (zero Plan when nil).
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return clonePlan(in.plan)
}

// String renders the injector's plan string ("" when nil).
func (in *Injector) String() string {
	if in == nil {
		return ""
	}
	return in.plan.String()
}

// SetRecorder routes fire events into rec's flight-recorder ring, so
// injected faults appear in the recorded event stream. Last writer wins;
// nil-safe on both sides.
func (in *Injector) SetRecorder(rec *recorder.Recorder) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.rec = rec
	in.mu.Unlock()
}

// Fire evaluates site once with the given argument and reports whether
// the fault fires. Evaluations whose argument a rule's arg= clause
// excludes do not advance the site's counters or stream.
func (in *Injector) Fire(site Site, arg int64) bool {
	fired, _ := in.FireValue(site, arg)
	return fired
}

// FireValue is Fire, additionally returning a deterministic payload draw
// (a bit-flip offset, a delay magnitude) when the fault fires.
func (in *Injector) FireValue(site Site, arg int64) (bool, uint64) {
	if in == nil {
		return false, 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.sites[site]
	if st == nil {
		return false, 0
	}
	if st.rule.ArgSet && arg != st.rule.Arg {
		return false, 0
	}
	st.evals++
	if st.rule.Max > 0 && st.fires >= int64(st.rule.Max) {
		return false, 0
	}
	if st.evals <= int64(st.rule.After) {
		return false, 0
	}
	fired := false
	if st.rule.Every > 0 && (st.evals-int64(st.rule.After))%int64(st.rule.Every) == 0 {
		fired = true
	}
	if st.rule.Prob > 0 {
		// One draw per evaluation, fired or not, keeps the stream aligned
		// with the evaluation sequence alone.
		if float64(st.next()>>11)/(1<<53) < st.rule.Prob {
			fired = true
		}
	}
	if !fired {
		return false, 0
	}
	st.fires++
	in.rec.Log(recorder.KindFaultInject, int64(site.Index()), arg)
	return true, st.next()
}

// Crash panics with a recognizable message when site fires. Callers place
// it inside their panic-recovery scope, so an injected crash takes the
// same path a real one would.
func (in *Injector) Crash(site Site, arg int64) {
	if in.Fire(site, arg) {
		panic(fmt.Sprintf("fault: injected crash at %s", site))
	}
}

// Fires returns how many times site has fired (0 when nil).
func (in *Injector) Fires(site Site) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st := in.sites[site]; st != nil {
		return st.fires
	}
	return 0
}

// Counts returns fires per site for every site with a rule, for chaos
// reports.
func (in *Injector) Counts() map[Site]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Site]int64, len(in.sites))
	//vislint:ignore detrange map copy is order-insensitive
	for s, st := range in.sites {
		out[s] = st.fires
	}
	return out
}

// FlipBit flips one bit of data at a position derived from payload — the
// shared corruption primitive of the checkpoint sites. No-op on empty
// data.
func FlipBit(data []byte, payload uint64) {
	if len(data) == 0 {
		return
	}
	off := payload % uint64(len(data))
	bit := (payload >> 32) % 8
	data[off] ^= 1 << bit
}
