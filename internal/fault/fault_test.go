package fault

import (
	"bytes"
	"strings"
	"testing"

	"visibility/internal/obs/recorder"
)

func TestCatalogStable(t *testing.T) {
	// The catalog index is journaled in recorder dumps; pin the mapping so
	// an accidental reorder fails loudly.
	want := []Site{
		MsgDrop, MsgDelay, MsgDup, MsgReorder,
		EqSplit, EqMigrate, CacheBypass,
		WorkerPanic, AdmitBurst,
		CkptCorrupt, RestoreCorrupt,
		TraceInvalidate,
		ShardStall, ShardMigrate,
	}
	got := Sites()
	if len(got) != len(want) {
		t.Fatalf("catalog has %d sites, want %d", len(got), len(want))
	}
	for i, s := range want {
		if got[i] != s {
			t.Fatalf("catalog[%d] = %s, want %s", i, got[i], s)
		}
		if s.Index() != i {
			t.Fatalf("%s.Index() = %d, want %d", s, s.Index(), i)
		}
		if SiteAt(i) != s {
			t.Fatalf("SiteAt(%d) = %s, want %s", i, SiteAt(i), s)
		}
	}
	if Site("bogus").Index() != -1 {
		t.Fatalf("unknown site has catalog index %d", Site("bogus").Index())
	}
	if got := SiteAt(999); got != "site_999" {
		t.Fatalf("SiteAt(999) = %q", got)
	}
}

func TestPlanStringParseRoundTrip(t *testing.T) {
	plans := []string{
		"",
		"seed=0",
		"seed=42;analyzer.eqset.split=p=0.25",
		"seed=-7;cluster.msg.drop=p=0.1,max=3;server.worker.panic=every=1,max=1,arg=5",
		"seed=9;checkpoint.encode.flip=every=2,after=1;sched.cache.bypass=p=1",
	}
	for _, in := range plans {
		p, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		out := p.String()
		p2, err := Parse(out)
		if err != nil {
			t.Fatalf("Parse(String(%q)) = Parse(%q): %v", in, out, err)
		}
		if p2.String() != out {
			t.Fatalf("canonical form unstable: %q -> %q -> %q", in, out, p2.String())
		}
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct{ in, want string }{
		{"seed=x", "bad seed"},
		{"nonsense", "not <site>=<spec>"},
		{"cluster.msg.bogus=p=1", "unknown site"},
		{"cluster.msg.drop=p=2", "outside [0,1]"},
		{"cluster.msg.drop=p=-0.5", "outside [0,1]"},
		{"cluster.msg.drop=every=-1", "non-negative"},
		{"cluster.msg.drop=max=1", "no trigger"},
		{"cluster.msg.drop=arg=3", "no trigger"},
		{"cluster.msg.drop=p=1;cluster.msg.drop=p=1", "duplicate rules"},
		{"cluster.msg.drop=zap=1", "unknown clause key"},
		{"cluster.msg.drop=arg=x", "not an integer"},
		{"cluster.msg.drop=p", "not <k>=<v>"},
	}
	for _, c := range cases {
		if _, err := Parse(c.in); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want substring %q", c.in, err, c.want)
		}
	}
}

func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if in.Fire(EqSplit, 0) {
		t.Fatal("nil injector fired")
	}
	if fired, _ := in.FireValue(EqSplit, 0); fired {
		t.Fatal("nil injector fired")
	}
	in.Crash(WorkerPanic, 0) // must not panic
	in.SetRecorder(nil)
	if in.Fires(EqSplit) != 0 || in.Counts() != nil || in.String() != "" {
		t.Fatal("nil injector leaked state")
	}
	if p := in.Plan(); p.Seed != 0 || len(p.Rules) != 0 {
		t.Fatal("nil injector has a plan")
	}
}

func TestEverySchedule(t *testing.T) {
	in, err := NewFromString("seed=1;analyzer.eqset.split=every=3,after=2,max=2")
	if err != nil {
		t.Fatal(err)
	}
	var fires []int
	for i := 1; i <= 20; i++ {
		if in.Fire(EqSplit, 0) {
			fires = append(fires, i)
		}
	}
	// after=2 skips evals 1-2; every=3 then fires on matching evals 5, 8,
	// 11, ... ; max=2 caps at two fires.
	if len(fires) != 2 || fires[0] != 5 || fires[1] != 8 {
		t.Fatalf("fires at %v, want [5 8]", fires)
	}
	if in.Fires(EqSplit) != 2 {
		t.Fatalf("Fires = %d, want 2", in.Fires(EqSplit))
	}
}

func TestArgTargeting(t *testing.T) {
	in, err := NewFromString("seed=1;server.worker.panic=every=1,max=1,arg=5")
	if err != nil {
		t.Fatal(err)
	}
	// Evaluations with other args never fire and never advance counters,
	// so the targeted arg fires on its first evaluation regardless of
	// interleaving.
	for i := int64(0); i < 10; i++ {
		if in.Fire(WorkerPanic, i%5) {
			t.Fatalf("fired for arg %d", i%5)
		}
	}
	if !in.Fire(WorkerPanic, 5) {
		t.Fatal("did not fire for targeted arg")
	}
	if in.Fire(WorkerPanic, 5) {
		t.Fatal("fired past max")
	}
}

func TestProbDeterministicAndSeedSensitive(t *testing.T) {
	run := func(plan string) []bool {
		in, err := NewFromString(plan)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Fire(MsgDrop, int64(i))
		}
		return out
	}
	a := run("seed=7;cluster.msg.drop=p=0.3")
	b := run("seed=7;cluster.msg.drop=p=0.3")
	c := run("seed=8;cluster.msg.drop=p=0.3")
	var fires, diff int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same plan diverged at eval %d", i)
		}
		if a[i] {
			fires++
		}
		if a[i] != c[i] {
			diff++
		}
	}
	if fires < 30 || fires > 90 {
		t.Fatalf("p=0.3 over 200 evals fired %d times", fires)
	}
	if diff == 0 {
		t.Fatal("seed change did not alter the fire sequence")
	}
}

func TestSiteStreamsIndependent(t *testing.T) {
	// Interleaving evaluations of another site must not perturb a site's
	// own fire sequence.
	seq := func(interleave bool) []bool {
		in, err := NewFromString("seed=3;cluster.msg.drop=p=0.5;cluster.msg.dup=p=0.5")
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 100)
		for i := range out {
			if interleave {
				in.Fire(MsgDup, int64(i))
			}
			out[i] = in.Fire(MsgDrop, int64(i))
		}
		return out
	}
	plain, mixed := seq(false), seq(true)
	for i := range plain {
		if plain[i] != mixed[i] {
			t.Fatalf("site stream perturbed by sibling site at eval %d", i)
		}
	}
}

func TestFireJournalsToRecorder(t *testing.T) {
	rec := recorder.NewClock(16, func() int64 { return 0 })
	in, err := NewFromString("seed=1;checkpoint.encode.flip=every=1")
	if err != nil {
		t.Fatal(err)
	}
	in.SetRecorder(rec)
	if !in.Fire(CkptCorrupt, 123) {
		t.Fatal("every=1 did not fire")
	}
	events := rec.Snapshot()
	if len(events) != 1 {
		t.Fatalf("recorder holds %d events, want 1", len(events))
	}
	e := events[0]
	if e.Kind != recorder.KindFaultInject || SiteAt(int(e.A)) != CkptCorrupt || e.B != 123 {
		t.Fatalf("journaled %+v", e)
	}
}

func TestCrashPanics(t *testing.T) {
	in, err := NewFromString("seed=1;server.worker.panic=every=1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "injected crash at server.worker.panic") {
			t.Fatalf("recovered %v", r)
		}
	}()
	in.Crash(WorkerPanic, 1)
	t.Fatal("Crash did not panic")
}

func TestFlipBit(t *testing.T) {
	FlipBit(nil, 99) // no-op on empty data
	data := []byte{0, 0, 0, 0}
	orig := append([]byte(nil), data...)
	FlipBit(data, 1<<33|2)
	if bytes.Equal(data, orig) {
		t.Fatal("FlipBit changed nothing")
	}
	FlipBit(data, 1<<33|2)
	if !bytes.Equal(data, orig) {
		t.Fatal("double flip did not restore")
	}
}

func TestPlanCopyIsolation(t *testing.T) {
	in, err := NewFromString("seed=1;cluster.msg.drop=p=1")
	if err != nil {
		t.Fatal(err)
	}
	p := in.Plan()
	p.Rules[MsgDup] = Rule{Prob: 1}
	if _, ok := in.Plan().Rules[MsgDup]; ok {
		t.Fatal("Plan() exposed internal map")
	}
}
