// Package trace implements dynamic tracing: memoization of the dependence
// and coherence analysis for repetitive task streams, after Lee et al.,
// "Dynamic Tracing: Memoization of Task Graphs for Dynamic Task-Based
// Runtimes" (SC'18). The paper's evaluation (§8) disables Legion's tracing
// to isolate the coherence algorithms; this package reproduces the
// mechanism so that the claim — tracing removes the per-launch analysis
// cost in steady state — can itself be measured.
//
// A Tracer wraps any core.Analyzer. The application brackets a repetitive
// section with Begin(id)/End. The first instance of a trace records every
// launch's analysis result together with a structural signature; later
// instances that match the signature and are contiguous with the previous
// instance replay the memoized results, translating dependence and
// plan-producer task IDs by the trace's stream offset, without consulting
// the underlying analyzer at all. Any mismatch invalidates the trace: the
// buffered launches are re-analyzed through the wrapped analyzer (whose
// state must catch up) and recording starts over.
package trace

import (
	"fmt"

	"visibility/internal/core"
	"visibility/internal/field"
	"visibility/internal/index"
	"visibility/internal/obs"
	"visibility/internal/privilege"
)

// Stats extends the analyzer counters with tracing outcomes.
type Stats struct {
	Recorded      int64 // launches recorded
	Replayed      int64 // launches replayed from a trace
	Invalidations int64 // traces dropped due to mismatch
}

// Tracer is a memoizing wrapper around an analyzer. Not safe for
// concurrent use (like the analyzers themselves).
type Tracer struct {
	an   core.Analyzer
	opts core.Options

	// Tracing outcomes live on the obs registry of the tracer's options
	// (a private registry when none was supplied); TraceStats reads them
	// back, so existing callers see the same numbers.
	recorded      *obs.Counter
	replayed      *obs.Counter
	invalidations *obs.Counter

	traces map[int]*traceState

	mode      int // idle, recording, replaying
	active    *traceState
	replayIdx int
	startID   int // first task ID of the current instance

	// pending holds launches whose analysis was replayed (skipped); the
	// wrapped analyzer must observe them before it can analyze anything
	// new.
	pending []*core.Task
	lastID  int // last task ID seen (for contiguity checks)
}

const (
	idle = iota
	recording
	replaying
)

type traceState struct {
	id       int
	sigs     []signature
	results  []recordedResult
	startID  int // task ID of the recording's first launch
	lastInst int // first task ID of the most recent instance
	valid    bool
	// written accumulates, per field, the points written by tasks inside
	// the trace — used to validate that initial-contents plan entries are
	// really stable across instances.
	written map[field.ID]index.Space
}

type signature struct {
	name string
	reqs []reqSig
}

type reqSig struct {
	region int
	field  field.ID
	priv   privilege.Privilege
}

// recordedResult stores deps and plans relative to the trace start.
type recordedResult struct {
	depOffsets []int // dep = instanceStart + offset (offset may be negative)
	plans      [][]recordedVisible
	planFields []field.ID // field of each requirement's plan
}

type recordedVisible struct {
	offset  int // producer = instanceStart + offset
	initial bool
	req     int
	priv    privilege.Privilege
	pts     index.Space
}

// New wraps an analyzer with a tracer.
func New(an core.Analyzer, opts core.Options) *Tracer {
	opts = opts.Normalize()
	return &Tracer{
		an:            an,
		opts:          opts,
		recorded:      opts.Metrics.NewCounter("trace/recorded"),
		replayed:      opts.Metrics.NewCounter("trace/replayed"),
		invalidations: opts.Metrics.NewCounter("trace/invalidations"),
		traces:        make(map[int]*traceState),
		lastID:        -1,
	}
}

// Name implements core.Analyzer.
func (tr *Tracer) Name() string { return tr.an.Name() + "+trace" }

// Stats implements core.Analyzer (the wrapped analyzer's counters).
func (tr *Tracer) Stats() *core.Stats { return tr.an.Stats() }

// TraceStats returns the tracing counters (a thin read over the registry
// counters the tracer publishes).
func (tr *Tracer) TraceStats() Stats {
	return Stats{
		Recorded:      tr.recorded.Load(),
		Replayed:      tr.replayed.Load(),
		Invalidations: tr.invalidations.Load(),
	}
}

// Replaying reports whether the tracer is currently inside a replaying
// instance — the window in which an invalidation actually discards
// memoized work (the autotracer's forced-invalidation fault site only
// fires here).
func (tr *Tracer) Replaying() bool { return tr.mode == replaying }

// Begin starts a trace instance. If the trace id was recorded before, is
// still valid, and this instance is contiguous with the previous one, the
// instance replays; otherwise it records.
func (tr *Tracer) Begin(id int) {
	if tr.mode != idle {
		panic("trace: Begin inside an active trace")
	}
	// Contiguity: the new instance must start exactly one recorded
	// period after the previous one, so relative offsets resolve to
	// structurally identical launches of the previous instance.
	ts, ok := tr.traces[id]
	if ok && ts.valid && tr.lastID+1 == ts.lastInst+len(ts.sigs) {
		tr.mode = replaying
		tr.active = ts
		tr.replayIdx = 0
		tr.startID = tr.lastID + 1
		return
	}
	ts = &traceState{id: id}
	tr.traces[id] = ts
	tr.mode = recording
	tr.active = ts
	tr.startID = -1
}

// replayable decides whether a recorded trace is period-invariant, i.e.
// whether replaying it with all task references shifted by one period
// reproduces what real analysis would compute. Two recorded patterns break
// that invariance and force the trace to stay invalid (every instance
// re-records and runs real analysis):
//
//  1. a dependence or plan producer more than one period old — its
//     absolute identity would shift under replay, but the referenced task
//     (e.g. a pre-loop initializer) does not recur;
//  2. a plan mixing previous-instance reductions with the region's
//     initial contents — no write inside the window bounds the visible
//     reductions, so they accumulate and the plan grows every iteration
//     instead of repeating. (Cross-instance reductions occluded by a
//     write within the last period are shift-invariant and fine — the
//     Figure 1 loop is exactly that shape.)
//  3. a plan reading initial contents of points the trace itself writes —
//     after one instance those points hold task outputs, so the recorded
//     "read initial data" entry would replay stale values.
func replayable(ts *traceState) bool {
	period := len(ts.sigs)
	if period == 0 {
		return false
	}
	for _, rec := range ts.results {
		for _, off := range rec.depOffsets {
			if off < -period {
				return false
			}
		}
		for ri, plan := range rec.plans {
			hasInitial := false
			hasCrossReduce := false
			for _, rv := range plan {
				if rv.initial {
					hasInitial = true
					if w, ok := ts.written[rec.planFields[ri]]; ok && w.Overlaps(rv.pts) {
						return false
					}
					continue
				}
				if rv.offset < -period {
					return false
				}
				if rv.offset < 0 && rv.priv.IsReduce() {
					hasCrossReduce = true
				}
			}
			if hasInitial && hasCrossReduce {
				return false
			}
		}
	}
	return true
}

// End finishes the current trace instance.
func (tr *Tracer) End() {
	switch tr.mode {
	case recording:
		tr.active.valid = replayable(tr.active)
		tr.active.lastInst = tr.active.startID
	case replaying:
		if tr.replayIdx != len(tr.active.sigs) {
			// Short instance: structure changed; drop the trace.
			tr.invalidate()
		} else {
			tr.active.lastInst = tr.startID
		}
	default:
		panic("trace: End without Begin")
	}
	tr.mode = idle
	tr.active = nil
}

// invalidate drops the active trace and re-analyzes everything the wrapped
// analyzer missed.
func (tr *Tracer) invalidate() {
	span := tr.opts.Spans.Begin("trace.invalidate", "trace")
	defer span.End()
	tr.invalidations.Inc()
	tr.active.valid = false
	tr.drain()
}

// drain catches the wrapped analyzer up on replayed launches.
func (tr *Tracer) drain() {
	for _, t := range tr.pending {
		tr.an.Analyze(t)
	}
	tr.pending = tr.pending[:0]
}

func sigOf(t *core.Task) signature {
	s := signature{name: t.Name, reqs: make([]reqSig, len(t.Reqs))}
	for i, r := range t.Reqs {
		s.reqs[i] = reqSig{region: r.Region.ID, field: r.Field, priv: r.Priv}
	}
	return s
}

func sigEqual(a, b signature) bool {
	if a.name != b.name || len(a.reqs) != len(b.reqs) {
		return false
	}
	for i := range a.reqs {
		if a.reqs[i] != b.reqs[i] {
			return false
		}
	}
	return true
}

// Analyze implements core.Analyzer.
func (tr *Tracer) Analyze(t *core.Task) *core.Result {
	defer func() { tr.lastID = t.ID }()
	switch tr.mode {
	case replaying:
		ts := tr.active
		if tr.replayIdx >= len(ts.sigs) || !sigEqual(ts.sigs[tr.replayIdx], sigOf(t)) {
			// Structure diverged: fall back to real analysis.
			tr.mode = recording
			tr.invalidate()
			nts := &traceState{id: ts.id}
			tr.traces[ts.id] = nts
			tr.active = nts
			tr.startID = -1
			return tr.analyzeAndRecord(t)
		}
		span := tr.opts.Spans.Begin("trace.replay", "trace")
		defer span.End()
		rec := ts.results[tr.replayIdx]
		tr.replayIdx++
		tr.pending = append(tr.pending, t)
		tr.replayed.Inc()
		// Replay is a constant-time local operation per launch.
		tr.opts.Probe.Touch(core.LocalOwner, 1)
		return tr.instantiate(t, rec)

	case recording:
		if tr.startID == -1 {
			tr.startID = t.ID
			tr.active.startID = t.ID
		}
		return tr.analyzeAndRecord(t)

	default:
		tr.drain()
		return tr.an.Analyze(t)
	}
}

// analyzeAndRecord runs the real analysis and memoizes the result relative
// to the trace start.
func (tr *Tracer) analyzeAndRecord(t *core.Task) *core.Result {
	tr.drain()
	res := tr.an.Analyze(t)
	ts := tr.active
	if ts == nil {
		return res
	}
	span := tr.opts.Spans.Begin("trace.record", "trace")
	defer span.End()
	rec := recordedResult{
		plans:      make([][]recordedVisible, len(res.Plans)),
		planFields: make([]field.ID, len(res.Plans)),
	}
	if ts.written == nil {
		ts.written = make(map[field.ID]index.Space)
	}
	for _, req := range t.Reqs {
		if req.Priv.IsWrite() {
			cur, ok := ts.written[req.Field]
			if !ok {
				cur = index.Empty(req.Region.Space.Dim())
			}
			ts.written[req.Field] = cur.Union(req.Region.Space)
		}
	}
	for ri, req := range t.Reqs {
		rec.planFields[ri] = req.Field
	}
	for _, d := range res.Deps {
		rec.depOffsets = append(rec.depOffsets, d-tr.startID)
	}
	for ri, plan := range res.Plans {
		for _, v := range plan {
			rv := recordedVisible{req: v.Req, priv: v.Priv, pts: v.Pts}
			if v.Task == core.InitialTask {
				rv.initial = true
			} else {
				rv.offset = v.Task - tr.startID
			}
			rec.plans[ri] = append(rec.plans[ri], rv)
		}
	}
	ts.sigs = append(ts.sigs, sigOf(t))
	ts.results = append(ts.results, rec)
	tr.recorded.Inc()
	return res
}

// instantiate maps a recorded result to the current instance's task IDs.
func (tr *Tracer) instantiate(t *core.Task, rec recordedResult) *core.Result {
	res := &core.Result{Plans: make([][]core.Visible, len(t.Reqs))}
	for _, off := range rec.depOffsets {
		res.Deps = append(res.Deps, tr.startID+off)
	}
	res.Deps = core.DedupDeps(res.Deps)
	if tr.opts.Prov != nil {
		// Replayed launches never reach the analyzer, so their edges carry
		// trace provenance: the committed trace the offsets came from.
		// First-capture-wins in the store means a later invalidation
		// re-analysis cannot overwrite these — the replay is what the
		// runtime acted on.
		for _, d := range res.Deps {
			tr.opts.Prov.AddReason(core.EdgeReason{
				Src: d, Dst: t.ID, Kind: core.ReasonReplay,
				Analyzer: core.BaseName(tr.an.Name()), Trace: tr.active.id,
			})
		}
	}
	for ri, plan := range rec.plans {
		for _, rv := range plan {
			v := core.Visible{Req: rv.req, Priv: rv.priv, Pts: rv.pts}
			if rv.initial {
				v.Task = core.InitialTask
			} else {
				v.Task = tr.startID + rv.offset
			}
			res.Plans[ri] = append(res.Plans[ri], v)
		}
	}
	return res
}

// Verify that Tracer satisfies core.Analyzer.
var _ core.Analyzer = (*Tracer)(nil)

// Describe returns a human-readable summary of the tracer state, for the
// inspection CLI.
func (tr *Tracer) Describe() string {
	st := tr.TraceStats()
	return fmt.Sprintf("traces=%d recorded=%d replayed=%d invalidations=%d",
		len(tr.traces), st.Recorded, st.Replayed, st.Invalidations)
}
