package trace_test

import (
	"testing"

	"visibility/internal/core"
	"visibility/internal/paint"
	"visibility/internal/privilege"
	"visibility/internal/raycast"
	"visibility/internal/region"
	"visibility/internal/testutil"
	"visibility/internal/trace"
	"visibility/internal/warnock"
)

func factories() []core.Factory {
	return []core.Factory{
		{Name: "paint", New: func(tr *region.Tree) core.Analyzer { return paint.NewPainter(tr, core.Options{}) }},
		{Name: "warnock", New: func(tr *region.Tree) core.Analyzer { return warnock.New(tr, core.Options{}) }},
		{Name: "raycast", New: func(tr *region.Tree) core.Analyzer { return raycast.New(tr, core.Options{}) }},
	}
}

// runTraced executes iterations of the Figure 1 loop through a traced
// engine (recording iteration 1, replaying 2..n) and compares every value
// against the sequential interpreter.
func runTraced(t *testing.T, fac core.Factory, iters int) *trace.Tracer {
	t.Helper()
	tree, p, g := testutil.GraphTree()
	init := testutil.FullInit(tree)
	kern := core.HashKernel{}

	seq := core.NewSeq(tree, init)
	seqStream := core.NewStream(tree)
	emit := func(s *core.Stream) []*core.Task {
		var out []*core.Task
		for i := 0; i < 3; i++ {
			out = append(out, testutil.LaunchT1(s, p, g, i))
		}
		for i := 0; i < 3; i++ {
			out = append(out, testutil.LaunchT2(s, p, g, i))
		}
		return out
	}
	for it := 0; it < iters; it++ {
		for _, task := range emit(seqStream) {
			seq.Run(task, kern)
		}
	}

	tr := trace.New(fac.New(tree), core.Options{})
	eng := core.NewEngine(tree, tr, init)
	eng.RecordInputs = true
	stream := core.NewStream(tree)
	for it := 0; it < iters; it++ {
		if it > 0 {
			tr.Begin(7)
		}
		tasks := emit(stream)
		for _, task := range tasks {
			eng.Launch(task, kern)
		}
		if it > 0 {
			tr.End()
		}
	}

	for id, want := range seq.Inputs {
		have := eng.Inputs[id]
		for ri := range want {
			if want[ri] == nil {
				continue
			}
			if !want[ri].Equal(have[ri]) {
				t.Fatalf("%s: task %d req %d diverged under tracing:\n%s",
					fac.Name, id, ri, want[ri].Diff(have[ri]))
			}
		}
	}
	return tr
}

func TestTracedExecutionMatchesSequential(t *testing.T) {
	for _, fac := range factories() {
		fac := fac
		t.Run(fac.Name, func(t *testing.T) {
			tr := runTraced(t, fac, 8)
			st := tr.TraceStats()
			if st.Recorded != 6 {
				t.Errorf("recorded %d launches, want 6 (one loop iteration)", st.Recorded)
			}
			if st.Replayed != 6*6 {
				t.Errorf("replayed %d launches, want 36 (six replayed iterations)", st.Replayed)
			}
			if st.Invalidations != 0 {
				t.Errorf("unexpected invalidations: %d", st.Invalidations)
			}
		})
	}
}

// TestReplaySkipsUnderlyingAnalysis checks that replayed instances do not
// touch the wrapped analyzer until it must catch up.
func TestReplaySkipsUnderlyingAnalysis(t *testing.T) {
	tree, p, g := testutil.GraphTree()
	an := warnock.New(tree, core.Options{})
	tr := trace.New(an, core.Options{})
	stream := core.NewStream(tree)

	emit := func() []*core.Task {
		var out []*core.Task
		for i := 0; i < 3; i++ {
			out = append(out, testutil.LaunchT1(stream, p, g, i))
		}
		return out
	}
	run := func(traced bool) {
		if traced {
			tr.Begin(1)
		}
		for _, task := range emit() {
			tr.Analyze(task)
		}
		if traced {
			tr.End()
		}
	}
	run(false) // warm-up: the loop's first instance reads initial contents
	run(true)  // record (producers now point one period back)
	launchesAfterRecord := an.Stats().Launches
	run(true) // replay
	run(true) // replay
	if got := an.Stats().Launches; got != launchesAfterRecord {
		t.Errorf("wrapped analyzer observed %d launches during replay, want 0", got-launchesAfterRecord)
	}
	// An untraced launch forces the analyzer to catch up on the replayed
	// instances before analyzing.
	tr.Analyze(stream.Launch("probe",
		core.Req{Region: tree.Root, Field: 0, Priv: privilege.Reads()}))
	if got := an.Stats().Launches; got != launchesAfterRecord+6+1 {
		t.Errorf("after catch-up: %d launches, want %d", got, launchesAfterRecord+7)
	}
}

// TestInvalidationOnStructureChange verifies that a diverging instance
// falls back to real analysis and still produces correct values.
func TestInvalidationOnStructureChange(t *testing.T) {
	tree, p, g := testutil.GraphTree()
	init := testutil.FullInit(tree)
	kern := core.HashKernel{}

	seq := core.NewSeq(tree, init)
	seqStream := core.NewStream(tree)
	tr := trace.New(raycast.New(tree, core.Options{}), core.Options{})
	eng := core.NewEngine(tree, tr, init)
	eng.RecordInputs = true
	stream := core.NewStream(tree)

	iter := func(s *core.Stream, swap bool) []*core.Task {
		var out []*core.Task
		for i := 0; i < 3; i++ {
			if swap {
				out = append(out, testutil.LaunchT2(s, p, g, i))
			} else {
				out = append(out, testutil.LaunchT1(s, p, g, i))
			}
		}
		return out
	}
	shapes := []bool{false, false, false, true, false} // iteration 3 diverges
	for _, s := range shapes {
		for _, task := range iter(seqStream, s) {
			seq.Run(task, kern)
		}
	}
	for it, s := range shapes {
		if it > 0 {
			tr.Begin(1)
		}
		for _, task := range iter(stream, s) {
			eng.Launch(task, kern)
		}
		if it > 0 {
			tr.End()
		}
	}
	for id, want := range seq.Inputs {
		have := eng.Inputs[id]
		for ri := range want {
			if want[ri] != nil && !want[ri].Equal(have[ri]) {
				t.Fatalf("task %d req %d diverged:\n%s", id, ri, want[ri].Diff(have[ri]))
			}
		}
	}
	if tr.TraceStats().Invalidations == 0 {
		t.Error("expected an invalidation for the diverging iteration")
	}
	if tr.TraceStats().Replayed == 0 {
		t.Error("expected the matching iterations to replay")
	}
}

// TestNonContiguousInstanceRecords verifies that a trace instance separated
// from the previous one by extra launches re-records instead of replaying
// with stale offsets.
func TestNonContiguousInstanceRecords(t *testing.T) {
	tree, p, g := testutil.GraphTree()
	tr := trace.New(warnock.New(tree, core.Options{}), core.Options{})
	stream := core.NewStream(tree)

	one := func() {
		tr.Begin(1)
		for i := 0; i < 3; i++ {
			tr.Analyze(stream.Launch("w",
				core.Req{Region: p.Subregions[i], Field: 0, Priv: privilege.Writes()}))
		}
		tr.End()
	}
	_ = g
	one() // record
	// Interpose an untraced launch: the next instance is not contiguous.
	tr.Analyze(stream.Launch("gap", core.Req{Region: tree.Root, Field: 0, Priv: privilege.Reads()}))
	one() // must re-record
	if got := tr.TraceStats().Replayed; got != 0 {
		t.Errorf("non-contiguous instance replayed %d launches", got)
	}
	// The re-recording itself saw producers across the gap (more than one
	// period back), so it is not replayable either; the next instance
	// records once more with clean one-period offsets...
	one()
	if got := tr.TraceStats().Replayed; got != 0 {
		t.Errorf("gap-crossing recording replayed %d launches", got)
	}
	// ...and from then on instances replay.
	one()
	if got := tr.TraceStats().Replayed; got != 3 {
		t.Errorf("replayed %d launches, want 3", got)
	}
}

// TestTraceSoundness runs the traced dependence output through the exact
// checker across several iterations.
func TestTraceSoundness(t *testing.T) {
	tree, p, g := testutil.GraphTree()
	tr := trace.New(raycast.New(tree, core.Options{}), core.Options{})
	stream := core.NewStream(tree)
	var got [][]int
	for it := 0; it < 6; it++ {
		if it > 0 {
			tr.Begin(1)
		}
		for i := 0; i < 3; i++ {
			got = append(got, tr.Analyze(testutil.LaunchT1(stream, p, g, i)).Deps)
		}
		for i := 0; i < 3; i++ {
			got = append(got, tr.Analyze(testutil.LaunchT2(stream, p, g, i)).Deps)
		}
		if it > 0 {
			tr.End()
		}
	}
	if err := core.CheckSound(got, core.ExactDeps(stream.Tasks)); err != nil {
		t.Fatal(err)
	}
}

func TestBeginEndMisuse(t *testing.T) {
	tree, _, _ := testutil.GraphTree()
	tr := trace.New(warnock.New(tree, core.Options{}), core.Options{})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("End without Begin should panic")
			}
		}()
		tr.End()
	}()
	tr.Begin(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nested Begin should panic")
			}
		}()
		tr.Begin(2)
	}()
}

func TestDescribeAndName(t *testing.T) {
	tree, _, _ := testutil.GraphTree()
	tr := trace.New(warnock.New(tree, core.Options{}), core.Options{})
	if tr.Name() != "warnock+trace" {
		t.Errorf("Name = %q", tr.Name())
	}
	if tr.Describe() == "" {
		t.Error("Describe empty")
	}
}
