package core

import (
	"fmt"

	"visibility/internal/privilege"
)

// ReqsInterfere reports whether two requirements interfere: same field,
// interfering privileges, and overlapping points (the content-based
// dependence test of §3.2).
func ReqsInterfere(a, b Req) bool {
	if a.Field != b.Field {
		return false
	}
	if !privilege.Interferes(a.Priv, b.Priv) {
		return false
	}
	return a.Region.Space.Overlaps(b.Region.Space)
}

// TasksInterfere reports whether any pair of requirements of s and t
// interferes.
func TasksInterfere(s, t *Task) bool {
	for _, a := range s.Reqs {
		for _, b := range t.Reqs {
			if ReqsInterfere(a, b) {
				return true
			}
		}
	}
	return false
}

// ExactDeps computes, for every task in the stream, the complete set of
// earlier tasks it interferes with — the quadratic reference analysis that
// the visibility algorithms must preserve (directly or transitively).
// Task IDs must equal stream positions.
func ExactDeps(tasks []*Task) [][]int {
	out := make([][]int, len(tasks))
	for i, t := range tasks {
		if t.ID != i {
			panic(fmt.Sprintf("core: task %v at position %d", t, i))
		}
		for j := 0; j < i; j++ {
			if TasksInterfere(tasks[j], t) {
				out[i] = append(out[i], j)
			}
		}
		// Future consumption is an exact ordering edge too.
		for _, fd := range t.FutureDeps {
			if fd < 0 || fd >= i {
				panic(fmt.Sprintf("core: future dependence %d -> %d is not backward", fd, i))
			}
			out[i] = append(out[i], fd)
		}
		out[i] = DedupDeps(out[i])
	}
	return out
}

// Closure computes the transitive closure of a dependence DAG given as
// per-task predecessor lists (deps[i] ⊆ {0..i-1}). The result supports
// Reaches queries.
type Closure struct {
	n     int
	words int
	bits  []uint64 // n rows × words
}

// NewClosure builds the closure of deps.
func NewClosure(deps [][]int) *Closure {
	n := len(deps)
	words := (n + 63) / 64
	c := &Closure{n: n, words: words, bits: make([]uint64, n*words)}
	for i := 0; i < n; i++ {
		row := c.bits[i*words : (i+1)*words]
		for _, d := range deps[i] {
			if d < 0 || d >= i {
				panic(fmt.Sprintf("core: dependence %d -> %d is not backward", d, i))
			}
			row[d/64] |= 1 << uint(d%64)
			prev := c.bits[d*words : (d+1)*words]
			for w := range row {
				row[w] |= prev[w]
			}
		}
	}
	return c
}

// Reaches reports whether task from transitively precedes task to.
func (c *Closure) Reaches(from, to int) bool {
	if to < 0 || to >= c.n || from < 0 || from >= c.n {
		return false
	}
	return c.bits[to*c.words+from/64]&(1<<uint(from%64)) != 0
}

// CheckSound verifies that the dependences reported by an analyzer preserve
// every exact dependence at least transitively: for every exact pair
// (j before i), j must reach i in the closure of got. Returns a descriptive
// error for the first violation.
func CheckSound(got, exact [][]int) error {
	if len(got) != len(exact) {
		return fmt.Errorf("core: %d analyzed tasks vs %d exact", len(got), len(exact))
	}
	c := NewClosure(got)
	for i, deps := range exact {
		for _, j := range deps {
			if !c.Reaches(j, i) {
				return fmt.Errorf("core: missing ordering %d -> %d (exact dependence not preserved)", j, i)
			}
		}
	}
	return nil
}

// CheckPrecise counts reported dependence edges that are not exact
// interferences. Conservative analyzers are allowed to report such edges,
// so the count is advisory; tests use it to bound imprecision.
func CheckPrecise(got, exact [][]int) int {
	spurious := 0
	for i := range got {
		ex := make(map[int]bool, len(exact[i]))
		for _, j := range exact[i] {
			ex[j] = true
		}
		for _, j := range got[i] {
			if !ex[j] {
				spurious++
			}
		}
	}
	return spurious
}
