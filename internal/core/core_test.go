package core_test

import (
	"testing"

	"visibility/internal/core"
	"visibility/internal/data"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/index"
	"visibility/internal/paint"
	"visibility/internal/privilege"
	"visibility/internal/region"
)

// lineTree builds a root region [0,n-1] with fields "a","b" and a disjoint
// partition into k equal blocks.
func lineTree(n, k int64) (*region.Tree, *region.Partition) {
	fs := field.NewSpace()
	fs.Add("a")
	fs.Add("b")
	tree := region.NewTree("R", index.FromRect(geometry.R1(0, n-1)), fs)
	pieces := make([]index.Space, k)
	per := n / k
	for i := int64(0); i < k; i++ {
		pieces[i] = index.FromRect(geometry.R1(i*per, (i+1)*per-1))
	}
	return tree, tree.Root.Partition("B", pieces)
}

func TestDedupDeps(t *testing.T) {
	got := core.DedupDeps([]int{5, 3, 5, core.InitialTask, 1, 3})
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("DedupDeps = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DedupDeps = %v, want %v", got, want)
		}
	}
	if core.DedupDeps(nil) != nil {
		t.Error("DedupDeps(nil) should be nil")
	}
	if core.DedupDeps([]int{core.InitialTask}) != nil {
		t.Error("initial task alone should dedup to nil")
	}
}

func TestReqsInterfere(t *testing.T) {
	tree, p := lineTree(12, 3)
	a := core.Req{Region: p.Subregions[0], Field: 0, Priv: privilege.Writes()}
	b := core.Req{Region: p.Subregions[1], Field: 0, Priv: privilege.Writes()}
	if core.ReqsInterfere(a, b) {
		t.Error("disjoint regions cannot interfere")
	}
	c := core.Req{Region: tree.Root, Field: 0, Priv: privilege.Reads()}
	if !core.ReqsInterfere(a, c) {
		t.Error("write vs overlapping read should interfere")
	}
	d := core.Req{Region: tree.Root, Field: 1, Priv: privilege.Writes()}
	if core.ReqsInterfere(a, d) {
		t.Error("different fields cannot interfere")
	}
	e := core.Req{Region: tree.Root, Field: 0, Priv: privilege.Reads()}
	if core.ReqsInterfere(c, e) {
		t.Error("read/read does not interfere")
	}
}

func TestExactDepsAndClosure(t *testing.T) {
	tree, p := lineTree(12, 3)
	s := core.NewStream(tree)
	w := func(r *region.Region) *core.Task {
		return s.Launch("w", core.Req{Region: r, Field: 0, Priv: privilege.Writes()})
	}
	w(p.Subregions[0])                                                                  // 0
	w(p.Subregions[1])                                                                  // 1
	w(p.Subregions[2])                                                                  // 2
	rd := s.Launch("r", core.Req{Region: tree.Root, Field: 0, Priv: privilege.Reads()}) // 3
	w(p.Subregions[0])                                                                  // 4

	exact := core.ExactDeps(s.Tasks)
	if len(exact[0]) != 0 || len(exact[1]) != 0 || len(exact[2]) != 0 {
		t.Errorf("independent writes have deps: %v", exact[:3])
	}
	if len(exact[rd.ID]) != 3 {
		t.Errorf("root read should depend on all writes: %v", exact[rd.ID])
	}
	// Task 4 interferes with write 0 and read 3.
	if len(exact[4]) != 2 || exact[4][0] != 0 || exact[4][1] != 3 {
		t.Errorf("exact[4] = %v, want [0 3]", exact[4])
	}

	// Closure: 0 reaches 4 directly and via 3.
	c := core.NewClosure(exact)
	if !c.Reaches(0, 4) || !c.Reaches(0, 3) || !c.Reaches(3, 4) {
		t.Error("closure missing pairs")
	}
	if c.Reaches(1, 4) != true { // 1 -> 3 -> 4
		t.Error("closure should include transitive 1->4")
	}
	if c.Reaches(4, 0) || c.Reaches(2, 1) {
		t.Error("closure has spurious pairs")
	}

	// A sparser DAG that relies on transitivity still passes CheckSound.
	sparse := [][]int{{}, {}, {}, {0, 1, 2}, {3}}
	if err := core.CheckSound(sparse, exact); err != nil {
		t.Errorf("CheckSound(sparse) = %v", err)
	}
	// Dropping the 3->4 edge breaks ordering 0->4.
	broken := [][]int{{}, {}, {}, {0, 1, 2}, {}}
	if err := core.CheckSound(broken, exact); err == nil {
		t.Error("CheckSound should fail for missing ordering")
	}
}

func TestCheckPrecise(t *testing.T) {
	exact := [][]int{{}, {0}}
	if core.CheckPrecise([][]int{{}, {0}}, exact) != 0 {
		t.Error("no spurious edges expected")
	}
	if core.CheckPrecise([][]int{{}, {0}}, [][]int{{}, {}}) != 1 {
		t.Error("one spurious edge expected")
	}
}

func initStores(tree *region.Tree, val func(f field.ID, p geometry.Point) float64) map[field.ID]*data.Store {
	init := make(map[field.ID]*data.Store)
	for f := 0; f < tree.Fields.Len(); f++ {
		st := data.NewStore(tree.Root.Space.Dim())
		tree.Root.Space.Each(func(p geometry.Point) bool {
			st.Set(p, val(field.ID(f), p))
			return true
		})
		init[field.ID(f)] = st
	}
	return init
}

func TestEngineMatchesSeq(t *testing.T) {
	tree, p := lineTree(12, 3)
	init := initStores(tree, func(f field.ID, pt geometry.Point) float64 {
		return float64(int64(f)*100) + float64(pt.C[0])
	})
	s := core.NewStream(tree)
	// Writes to pieces, reductions to overlapping spans, then reads.
	s.Launch("w0", core.Req{Region: p.Subregions[0], Field: 0, Priv: privilege.Writes()})
	s.Launch("w1", core.Req{Region: p.Subregions[1], Field: 0, Priv: privilege.Writes()})
	s.Launch("red", core.Req{Region: tree.Root, Field: 0, Priv: privilege.Reduces(privilege.OpSum)})
	s.Launch("r", core.Req{Region: tree.Root, Field: 0, Priv: privilege.Reads()})
	s.Launch("w2", core.Req{Region: p.Subregions[2], Field: 1, Priv: privilege.Writes()})
	s.Launch("rb", core.Req{Region: tree.Root, Field: 1, Priv: privilege.Reads()})

	err := core.Verify(s, init, core.HashKernel{}, core.Factory{
		Name: "paint-naive",
		New: func(tr *region.Tree) core.Analyzer {
			return paint.NewNaive(tr, core.Options{})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesBadAnalyzer(t *testing.T) {
	tree, p := lineTree(12, 3)
	init := initStores(tree, func(field.ID, geometry.Point) float64 { return 1 })
	s := core.NewStream(tree)
	s.Launch("w0", core.Req{Region: p.Subregions[0], Field: 0, Priv: privilege.Writes()})
	s.Launch("r", core.Req{Region: tree.Root, Field: 0, Priv: privilege.Reads()})

	err := core.Verify(s, init, core.HashKernel{}, core.Factory{
		Name: "amnesiac",
		New: func(tr *region.Tree) core.Analyzer {
			return &amnesiac{tree: tr}
		},
	})
	if err == nil {
		t.Fatal("Verify accepted an analyzer that forgets writes")
	}
}

// amnesiac is a deliberately broken analyzer: it reports no dependences and
// materializes only the initial contents.
type amnesiac struct {
	tree  *region.Tree
	stats core.Stats
}

func (a *amnesiac) Name() string       { return "amnesiac" }
func (a *amnesiac) Stats() *core.Stats { return &a.stats }
func (a *amnesiac) Analyze(t *core.Task) *core.Result {
	plans := make([][]core.Visible, len(t.Reqs))
	for ri, req := range t.Reqs {
		if !req.Priv.IsReduce() {
			plans[ri] = []core.Visible{{
				Task: core.InitialTask, Req: 0,
				Priv: privilege.Writes(), Pts: req.Region.Space,
			}}
		}
	}
	return &core.Result{Plans: plans}
}

func TestSeqReduceOverUndefined(t *testing.T) {
	// Reducing to never-written points folds onto the identity.
	fs := field.NewSpace()
	fs.Add("a")
	tree := region.NewTree("R", index.FromRect(geometry.R1(0, 3)), fs)
	seq := core.NewSeq(tree, map[field.ID]*data.Store{0: data.NewStore(1)})
	s := core.NewStream(tree)
	red := s.Launch("red", core.Req{Region: tree.Root, Field: 0, Priv: privilege.Reduces(privilege.OpSum)})
	seq.Run(red, constKernel{7})
	if got := seq.Global(0).MustGet(geometry.Pt1(0)); got != 7 {
		t.Errorf("reduce over undefined = %v, want 7", got)
	}
}

type constKernel struct{ v float64 }

func (k constKernel) WriteValue(*core.Task, int, geometry.Point, float64) float64 { return k.v }
func (k constKernel) ReduceValue(*core.Task, int, geometry.Point) float64         { return k.v }
