package core

import (
	"fmt"

	"visibility/internal/data"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/index"
	"visibility/internal/privilege"
	"visibility/internal/region"
)

// Engine executes a task stream with real values, driving an Analyzer for
// dependence analysis and coherence. It is the value-level realization of
// run_task (Figure 6): for each launch it asks the analyzer for a
// materialization plan, reconstructs each requirement's input contents from
// the committed outputs of visible producers, runs the kernel, and stores
// the task's outputs for future materializations.
//
// Unlike the sequential interpreter, the engine never holds a single global
// copy of the data: all state lives in per-task committed stores addressed
// by the analyzer's visibility computations, exactly as distributed Legion
// instances would be.
type Engine struct {
	tree *region.Tree
	// an is the dynamic dependence analyzer; Launch drives it in program
	// order on one goroutine (§3.2).
	//
	// confined to analyzer
	an   Analyzer
	init map[field.ID]*data.Store

	// committed maps (task, requirement) to the store it produced;
	// mutated by Launch's commit phase with no lock, so no other
	// goroutine may touch it.
	//
	// confined to analyzer
	committed map[commitKey]*data.Store

	// Inputs records materialized inputs per task (read and read-write
	// requirements only) when RecordInputs is set.
	RecordInputs bool
	Inputs       map[int][]*data.Store
	// Deps records the analyzer-reported dependences per task.
	Deps map[int][]int
	// StrictPlans additionally validates every materialization plan's
	// structural invariants (entries within the requested points, no
	// coverage holes, committed producers) and panics on violation —
	// catching analyzer bugs at the launch that triggers them rather
	// than as wrong values downstream.
	StrictPlans bool
}

type commitKey struct {
	task int
	req  int
}

// NewEngine creates an engine running stream tasks through analyzer an with
// the given initial contents per field.
func NewEngine(tree *region.Tree, an Analyzer, init map[field.ID]*data.Store) *Engine {
	e := &Engine{
		tree:      tree,
		an:        an,
		init:      make(map[field.ID]*data.Store, len(init)),
		committed: make(map[commitKey]*data.Store),
		Inputs:    make(map[int][]*data.Store),
		Deps:      make(map[int][]int),
	}
	//vislint:ignore detrange cloning a map into a map is order-insensitive
	for f, s := range init {
		e.init[f] = s.Clone()
	}
	return e
}

// Analyzer returns the engine's analyzer.
//
// confined to analyzer
func (e *Engine) Analyzer() Analyzer { return e.an }

// Launch analyzes and executes one task, returning the analysis result.
//
// confined to analyzer
func (e *Engine) Launch(t *Task, k Kernel) *Result {
	res := e.an.Analyze(t)
	if len(res.Plans) != len(t.Reqs) {
		panic(fmt.Sprintf("core: analyzer %s returned %d plans for %d reqs", e.an.Name(), len(res.Plans), len(t.Reqs)))
	}
	e.Deps[t.ID] = res.Deps

	inputs := make([]*data.Store, len(t.Reqs))
	for ri, req := range t.Reqs {
		if req.Priv.IsReduce() {
			// Reductions accumulate into identity-initialized scratch
			// (Figure 7 line 15); no materialization.
			continue
		}
		if e.StrictPlans {
			e.checkPlan(t, ri, req, res.Plans[ri])
		}
		inputs[ri] = e.materialize(req, res.Plans[ri])
	}

	// Run the kernel and commit outputs.
	for ri, req := range t.Reqs {
		switch {
		case req.Priv.IsWrite():
			out := data.NewStore(req.Region.Space.Dim())
			in := inputs[ri]
			req.Region.Space.Each(func(p geometry.Point) bool {
				cur, ok := in.Get(p)
				if !ok {
					cur = 0 // parity with Seq's undefined-write rule
				}
				out.Set(p, k.WriteValue(t, ri, p, cur))
				return true
			})
			e.committed[commitKey{t.ID, ri}] = out
		case req.Priv.IsReduce():
			op := req.Priv.Op
			out := data.NewStore(req.Region.Space.Dim())
			req.Region.Space.Each(func(p geometry.Point) bool {
				out.Set(p, privilege.Apply(op, privilege.Identity(op), k.ReduceValue(t, ri, p)))
				return true
			})
			e.committed[commitKey{t.ID, ri}] = out
		}
	}

	if e.RecordInputs {
		e.Inputs[t.ID] = inputs
	}
	return res
}

// materialize reconstructs the current contents of req's points by applying
// the plan in order: write entries copy the producer's committed values,
// reduce entries fold the producer's contributions (paint, Figure 7).
func (e *Engine) materialize(req Req, plan []Visible) *data.Store {
	in := data.NewStore(req.Region.Space.Dim())
	for _, v := range plan {
		src := e.source(v, req.Field)
		switch {
		case v.Priv.IsWrite():
			v.Pts.Each(func(p geometry.Point) bool {
				if val, ok := src.Get(p); ok {
					in.Set(p, val)
				}
				return true
			})
		case v.Priv.IsReduce():
			op := v.Priv.Op
			v.Pts.Each(func(p geometry.Point) bool {
				contrib, ok := src.Get(p)
				if !ok {
					return true
				}
				base, okb := in.Get(p)
				if !okb {
					base = privilege.Identity(op)
				}
				in.Set(p, privilege.Apply(op, base, contrib))
				return true
			})
		default:
			panic(fmt.Sprintf("core: read entry %v in materialization plan", v))
		}
	}
	return in
}

// checkPlan validates a materialization plan's structural invariants.
func (e *Engine) checkPlan(t *Task, ri int, req Req, plan []Visible) {
	covered := index.Empty(req.Region.Space.Dim())
	for vi, v := range plan {
		if !req.Region.Space.Covers(v.Pts) {
			panic(fmt.Sprintf("core: %s plan for %v req %d entry %d escapes the requested points: %v ⊄ %v",
				e.an.Name(), t, ri, vi, v.Pts, req.Region.Space))
		}
		if v.Priv.IsRead() {
			panic(fmt.Sprintf("core: %s plan for %v req %d entry %d has read privilege", e.an.Name(), t, ri, vi))
		}
		if v.Task != InitialTask {
			if v.Task < 0 || v.Task >= t.ID {
				panic(fmt.Sprintf("core: %s plan for %v req %d references non-prior task %d",
					e.an.Name(), t, ri, v.Task))
			}
			if _, ok := e.committed[commitKey{v.Task, v.Req}]; !ok {
				panic(fmt.Sprintf("core: %s plan for %v req %d references uncommitted %d.%d",
					e.an.Name(), t, ri, v.Task, v.Req))
			}
		}
		if v.Priv.IsWrite() {
			covered = covered.Union(v.Pts)
		}
	}
	// Every requested point must be reachable from some write (possibly
	// the initial contents); reductions alone cannot define a value.
	if !covered.Covers(req.Region.Space) {
		panic(fmt.Sprintf("core: %s plan for %v req %d leaves holes: %v not covered by writes",
			e.an.Name(), t, ri, req.Region.Space.Subtract(covered)))
	}
}

// source returns the committed store a plan entry refers to.
func (e *Engine) source(v Visible, f field.ID) *data.Store {
	if v.Task == InitialTask {
		s := e.init[f]
		if s == nil {
			panic(fmt.Sprintf("core: no initial data for field %d", f))
		}
		return s
	}
	s := e.committed[commitKey{v.Task, v.Req}]
	if s == nil {
		panic(fmt.Sprintf("core: plan references uncommitted producer %d.%d", v.Task, v.Req))
	}
	return s
}
