package core

import (
	"fmt"
	"sort"

	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/privilege"
)

// ReasonKind classifies how one dependence edge was discovered.
type ReasonKind uint8

const (
	// ReasonNone is the zero value: no provenance recorded.
	ReasonNone ReasonKind = iota
	// ReasonRegion is an interfering region-requirement pair found by an
	// analyzer's history scan — the content-based dependence test of §3.2.
	ReasonRegion
	// ReasonFuture is an explicit future (after) edge: the consumer waits
	// for the producer's scalar result, no region data involved.
	ReasonFuture
	// ReasonReplay is an edge instantiated from a committed trace during
	// replay: the analyzer never ran, the memoized offsets did.
	ReasonReplay
)

func (k ReasonKind) String() string {
	switch k {
	case ReasonRegion:
		return "region"
	case ReasonFuture:
		return "future"
	case ReasonReplay:
		return "replay"
	}
	return "none"
}

// EdgeReason is the compact provenance of one dependence edge Src → Dst:
// which analyzer emitted it and which requirement pair interfered (fields,
// privileges, overlapping points) — or, for future and trace-replay edges,
// the ordering construct that produced them. Region names are not stored:
// requirement indices resolve against the task stream at explain time.
//
// Region reasons are canonical: AddReason keeps the lexicographically
// smallest interfering (DstReq, SrcReq) pair and widens Overlap across
// every capture of that pair, so the stored reason is a property of the
// workload's interference pattern alone — independent of equivalence-set
// identities, scan order, and how the analysis was partitioned across
// shards.
type EdgeReason struct {
	Src int // producing (earlier) task ID
	Dst int // consuming (later) task ID

	Kind     ReasonKind
	Analyzer string // Name() of the emitting analyzer; "" for future edges

	// Region-interference provenance (Kind == ReasonRegion).
	SrcReq  int                 // producer's requirement index
	DstReq  int                 // consumer's requirement index
	Field   field.ID            // interfering field
	SrcPriv privilege.Privilege // producer's privilege (the history entry's)
	DstPriv privilege.Privilege // consumer's privilege (the requirement's)
	Overlap geometry.Rect       // bounding box of the interfering points

	// Trace-replay provenance (Kind == ReasonReplay): the committed trace
	// id the edge was instantiated from; -1 otherwise.
	Trace int
}

func (r EdgeReason) String() string {
	switch r.Kind {
	case ReasonFuture:
		return fmt.Sprintf("%d→%d future", r.Src, r.Dst)
	case ReasonReplay:
		return fmt.Sprintf("%d→%d replay(trace %d, %s)", r.Src, r.Dst, r.Trace, r.Analyzer)
	case ReasonRegion:
		return fmt.Sprintf("%d.%d %v ⟂ %d.%d %v field %d (%s)",
			r.Src, r.SrcReq, r.SrcPriv, r.Dst, r.DstReq, r.DstPriv, r.Field, r.Analyzer)
	}
	return fmt.Sprintf("%d→%d none", r.Src, r.Dst)
}

// TaskCost is one launch's deterministic cost sample, in the virtual units
// of the distributed cost model: AnalysisOps is the launch's analysis
// volume (requirements analyzed plus dependence edges discovered — a
// property of the task stream and its graph, not of analyzer internals),
// ExecVirt the points its requirements touch (the virtual execution time
// of a unit-cost-per-point kernel). Both replay identically run to run
// AND across analyzer/sharding configurations, so critical paths weighted
// by them are byte-reproducible — unlike wall-clock span durations or
// measured operation counters.
type TaskCost struct {
	AnalysisOps int64
	ExecVirt    int64
}

// Provenance accumulates dependence provenance: one EdgeReason per
// discovered edge and one TaskCost per launch. Like the analyzers that
// feed it, a Provenance is driven by the single goroutine that submits
// launches; readers must be on that goroutine (the runtime owner / session
// worker). It carries no lock by design — the nil-fast-path Options hook
// keeps it entirely off the analysis path when disabled.
type Provenance struct {
	reasons map[int][]EdgeReason // keyed by consumer (Dst); insertion order
	costs   []TaskCost           // indexed by task ID
}

// NewProvenance creates an empty provenance store.
func NewProvenance() *Provenance {
	return &Provenance{reasons: make(map[int][]EdgeReason)}
}

// AddReason records r, keeping at most one reason per edge Src → Dst.
//
// When both the stored and the incoming reason are region captures, the
// canonical one survives: the lexicographically smallest (DstReq, SrcReq)
// interfering pair, with Overlap widened (bounding-box union) across every
// capture of that pair. The set of attempted captures — which requirement
// pairs interfere at some live point, and the points that make them
// interfere — is a per-point property of the workload, so the canonical
// reason is identical no matter which equivalence sets reported it, in
// what order, or how the analysis was sharded. Bounding-box union is
// commutative and associative, so capture order never shows through.
//
// Across kinds the first capture wins: a future edge recorded at launch,
// or a replay edge recorded when a trace instantiated the dependence, is
// the provenance the runtime acted on — a later region re-discovery (e.g.
// a post-invalidation re-analysis) never overwrites it.
func (p *Provenance) AddReason(r EdgeReason) {
	if r.Kind == ReasonRegion {
		r.Trace = -1
	}
	rs := p.reasons[r.Dst]
	for i := range rs {
		if rs[i].Src != r.Src {
			continue
		}
		old := &rs[i]
		if old.Kind != ReasonRegion || r.Kind != ReasonRegion {
			return // first capture wins across kinds
		}
		switch {
		case r.DstReq < old.DstReq || (r.DstReq == old.DstReq && r.SrcReq < old.SrcReq):
			*old = r
		case r.DstReq == old.DstReq && r.SrcReq == old.SrcReq:
			old.Overlap = old.Overlap.Union(r.Overlap)
		}
		return
	}
	p.reasons[r.Dst] = append(rs, r)
}

// Reasons returns the recorded reasons for dst's incoming edges, sorted by
// producer ID ascending (a fresh slice; callers may keep it).
func (p *Provenance) Reasons(dst int) []EdgeReason {
	rs := p.reasons[dst]
	out := append([]EdgeReason(nil), rs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Src < out[j].Src })
	return out
}

// TakeReasons removes and returns dst's recorded reasons in insertion
// order. The shard merge stage drains each atom's staging provenance with
// this and replays the reasons into the real store; because region merges
// are order-independent and cross-kind conflicts are resolved before
// staging, replay order never shows through.
func (p *Provenance) TakeReasons(dst int) []EdgeReason {
	rs := p.reasons[dst]
	delete(p.reasons, dst)
	return rs
}

// AddCost records task's cost sample, growing the table as needed.
func (p *Provenance) AddCost(task int, c TaskCost) {
	if task < 0 {
		return
	}
	for len(p.costs) <= task {
		p.costs = append(p.costs, TaskCost{})
	}
	p.costs[task] = c
}

// Cost returns task's recorded cost sample (zero when none was recorded).
func (p *Provenance) Cost(task int) TaskCost {
	if task < 0 || task >= len(p.costs) {
		return TaskCost{}
	}
	return p.costs[task]
}
