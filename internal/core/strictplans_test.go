package core_test

import (
	"strings"
	"testing"

	"visibility/internal/core"
	"visibility/internal/data"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/index"
	"visibility/internal/privilege"
	"visibility/internal/region"
)

// planFaker returns a fixed plan for every read/read-write requirement.
type planFaker struct {
	stats core.Stats
	plan  func(t *core.Task, req core.Req) []core.Visible
}

func (f *planFaker) Name() string       { return "faker" }
func (f *planFaker) Stats() *core.Stats { return &f.stats }
func (f *planFaker) Analyze(t *core.Task) *core.Result {
	plans := make([][]core.Visible, len(t.Reqs))
	for ri, req := range t.Reqs {
		if !req.Priv.IsReduce() {
			plans[ri] = f.plan(t, req)
		}
	}
	return &core.Result{Plans: plans}
}

func strictEngine(t *testing.T, f *planFaker) (*core.Engine, *core.Stream) {
	t.Helper()
	fs := field.NewSpace()
	fs.Add("v")
	tree := region.NewTree("A", index.FromRect(geometry.R1(0, 9)), fs)
	init := map[field.ID]*data.Store{0: data.NewStore(1)}
	tree.Root.Space.Each(func(p geometry.Point) bool {
		init[0].Set(p, 1)
		return true
	})
	eng := core.NewEngine(tree, f, init)
	eng.StrictPlans = true
	return eng, core.NewStream(tree)
}

func expectPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic = %v, want substring %q", r, want)
		}
	}()
	f()
}

func goodPlan(t *core.Task, req core.Req) []core.Visible {
	return []core.Visible{{
		Task: core.InitialTask, Req: 0,
		Priv: privilege.Writes(), Pts: req.Region.Space,
	}}
}

func TestStrictPlansAcceptsValid(t *testing.T) {
	eng, s := strictEngine(t, &planFaker{plan: goodPlan})
	eng.Launch(s.Launch("r", core.Req{Region: s.Tree.Root, Field: 0, Priv: privilege.Reads()}), core.HashKernel{})
}

func TestStrictPlansRejectsEscape(t *testing.T) {
	f := &planFaker{plan: func(t *core.Task, req core.Req) []core.Visible {
		return []core.Visible{{
			Task: core.InitialTask,
			Priv: privilege.Writes(),
			Pts:  index.FromRect(geometry.R1(0, 50)), // beyond the root
		}}
	}}
	eng, s := strictEngine(t, f)
	expectPanic(t, "escapes", func() {
		eng.Launch(s.Launch("r", core.Req{Region: s.Tree.Root, Field: 0, Priv: privilege.Reads()}), core.HashKernel{})
	})
}

func TestStrictPlansRejectsHoles(t *testing.T) {
	f := &planFaker{plan: func(t *core.Task, req core.Req) []core.Visible {
		return []core.Visible{{
			Task: core.InitialTask,
			Priv: privilege.Writes(),
			Pts:  index.FromRect(geometry.R1(0, 4)), // only half the region
		}}
	}}
	eng, s := strictEngine(t, f)
	expectPanic(t, "holes", func() {
		eng.Launch(s.Launch("r", core.Req{Region: s.Tree.Root, Field: 0, Priv: privilege.Reads()}), core.HashKernel{})
	})
}

func TestStrictPlansRejectsReadEntries(t *testing.T) {
	f := &planFaker{plan: func(t *core.Task, req core.Req) []core.Visible {
		return []core.Visible{{
			Task: core.InitialTask,
			Priv: privilege.Reads(),
			Pts:  req.Region.Space,
		}}
	}}
	eng, s := strictEngine(t, f)
	expectPanic(t, "read privilege", func() {
		eng.Launch(s.Launch("r", core.Req{Region: s.Tree.Root, Field: 0, Priv: privilege.Reads()}), core.HashKernel{})
	})
}

func TestStrictPlansRejectsFutureProducer(t *testing.T) {
	f := &planFaker{plan: func(t *core.Task, req core.Req) []core.Visible {
		return []core.Visible{{
			Task: t.ID, // itself: not a prior task
			Priv: privilege.Writes(),
			Pts:  req.Region.Space,
		}}
	}}
	eng, s := strictEngine(t, f)
	expectPanic(t, "non-prior", func() {
		eng.Launch(s.Launch("r", core.Req{Region: s.Tree.Root, Field: 0, Priv: privilege.Reads()}), core.HashKernel{})
	})
}

func TestStrictPlansRejectsUncommittedProducer(t *testing.T) {
	f := &planFaker{plan: func(t *core.Task, req core.Req) []core.Visible {
		return []core.Visible{{
			Task: 0, Req: 0, // task 0 was a read: committed nothing
			Priv: privilege.Writes(),
			Pts:  req.Region.Space,
		}}
	}}
	eng, s := strictEngine(t, f)
	first := s.Launch("r0", core.Req{Region: s.Tree.Root, Field: 0, Priv: privilege.Reads()})
	// Give task 0 a valid plan by special-casing it.
	inner := f.plan
	f.plan = func(t *core.Task, req core.Req) []core.Visible {
		if t.ID == 0 {
			return goodPlan(t, req)
		}
		return inner(t, req)
	}
	eng.Launch(first, core.HashKernel{})
	expectPanic(t, "uncommitted", func() {
		eng.Launch(s.Launch("r1", core.Req{Region: s.Tree.Root, Field: 0, Priv: privilege.Reads()}), core.HashKernel{})
	})
}
