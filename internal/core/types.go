// Package core defines the common framework for the visibility-based
// coherence algorithms (paper §4): tasks with privileged region
// requirements, the analyzer contract (materialize/commit folded into a
// single Analyze step per launch), the exact O(n²) reference dependence
// analysis, a sequential ground-truth interpreter implementing the blending
// semantics of §3.1, and a value-level execution engine that drives any
// analyzer and materializes real region contents from its copy plans.
package core

import (
	"fmt"
	"sort"
	"strings"

	"visibility/internal/fault"
	"visibility/internal/field"
	"visibility/internal/index"
	"visibility/internal/obs"
	"visibility/internal/obs/recorder"
	"visibility/internal/privilege"
	"visibility/internal/region"
)

// LocalOwner is the owner passed to Probe.Touch for work against state
// that is replicated across the machine (e.g. upper levels of a BVH,
// §6.1): it is charged to whichever node performs the analysis rather
// than to a fixed owner.
const LocalOwner = -1

// InitialTask is the pseudo-task ID representing the initial contents of
// the root region: every analyzer's state is seeded with a full write of
// the root by this task (the [⟨read-write, A⟩] of §5).
const InitialTask = -1

// Req is one region requirement of a task: a logical region, the field
// accessed, and the privilege held.
type Req struct {
	Region *region.Region
	Field  field.ID
	Priv   privilege.Privilege
}

func (r Req) String() string {
	return fmt.Sprintf("%v %s.%d", r.Priv, r.Region.Name, r.Field)
}

// Task is one task launch observed by the dynamic analysis. IDs are dense
// and increase in program (launch) order.
type Task struct {
	ID   int
	Name string
	Reqs []Req
	// FutureDeps are earlier tasks whose scalar results (futures) this
	// task consumes. Futures are opaque to the coherence analysis — they
	// carry no region data — but they are ordering edges the runtime must
	// honor, and on a distributed machine each one is a small message
	// from the producer's node.
	FutureDeps []int
}

func (t *Task) String() string { return fmt.Sprintf("%s#%d", t.Name, t.ID) }

// Stream is an ordered sequence of task launches against one region tree,
// the input to the dynamic analyses (§3.2, Figure 5).
type Stream struct {
	Tree  *region.Tree
	Tasks []*Task
}

// NewStream creates an empty stream for tree.
func NewStream(tree *region.Tree) *Stream { return &Stream{Tree: tree} }

// Launch appends a task with the given requirements and returns it.
func (s *Stream) Launch(name string, reqs ...Req) *Task {
	t := &Task{ID: len(s.Tasks), Name: name, Reqs: reqs}
	s.Tasks = append(s.Tasks, t)
	return t
}

// Visible is one element of a materialization plan: the points of the
// requested region for which the given producer's update is visible, and
// how the producer touched them. Applying a plan's entries in order over
// undefined storage — writes copying values, reductions folding
// contributions — reconstructs the current contents (the paint function of
// §5). Producer InitialTask denotes the root region's initial contents.
type Visible struct {
	Task int // producing task ID, or InitialTask
	Req  int // producing requirement index within that task
	Priv privilege.Privilege
	Pts  index.Space
}

// Result is the outcome of analyzing one task launch.
type Result struct {
	// Deps lists the earlier tasks this launch depends on: deduplicated,
	// ascending, excluding InitialTask. Analyzers may omit edges implied
	// transitively by other reported edges.
	Deps []int
	// Plans holds, for each requirement, the ordered visible updates
	// needed to materialize its input. Requirements with reduce privilege
	// have nil plans: reductions are accumulated into identity-initialized
	// buffers and folded lazily (§5).
	Plans [][]Visible
}

// Analyzer is a coherence and dependence analysis (one of the three
// visibility algorithms, or a reference). Analyze observes the launch of t:
// it computes t's dependences and materialization plans against the current
// state (materialize, Figure 6 line 4) and then records t's own updates
// (commit, line 7). Analyzers are not safe for concurrent use; the runtime
// observes launches in program order.
type Analyzer interface {
	Name() string
	Analyze(t *Task) *Result
	Stats() *Stats
}

// BaseName strips wrapper suffixes from an analyzer name
// ("raycast+shard4+autotrace" → "raycast"). Wrapping analyzers compose
// names with '+'; provenance and other cross-configuration-comparable
// outputs want the algorithm's name, not the harness around it.
func BaseName(name string) string {
	if i := strings.IndexByte(name, '+'); i >= 0 {
		return name[:i]
	}
	return name
}

// Stats counts the elementary operations an analyzer performs; the
// distributed cost model converts them into simulated time, and the
// experiment harness reports them for ablations.
type Stats struct {
	Launches       int64 // task launches analyzed
	OverlapTests   int64 // index-space overlap/intersection tests
	EntriesScanned int64 // history entries examined
	DepsReported   int64 // dependence edges reported (pre-dedup)

	// Painter-specific.
	ViewsCreated int64 // composite views constructed
	ViewEntries  int64 // entries captured into composite views
	ItemsPruned  int64 // history items deleted by occlusion tests

	// Warnock/ray-casting-specific.
	SetsCreated   int64 // equivalence sets created (refinement or write)
	SetsVisited   int64 // equivalence sets examined during materialize
	SetsCoalesced int64 // equivalence sets removed by dominating writes
	BVHVisited    int64 // acceleration-structure nodes traversed
}

// RegisterMetrics exposes every counter of s on reg as computed metrics
// under prefix (e.g. "analyzer/launches"), read live at snapshot time.
// The fields stay plain int64s incremented by the single-threaded
// analyzers, so the hot paths are untouched; snapshot the registry only
// when the analyzer is quiescent (after a drain or barrier).
func (s *Stats) RegisterMetrics(reg *obs.Registry, prefix string) {
	for _, m := range []struct {
		name string
		v    *int64
	}{
		{"launches", &s.Launches},
		{"overlap_tests", &s.OverlapTests},
		{"entries_scanned", &s.EntriesScanned},
		{"deps_reported", &s.DepsReported},
		{"views_created", &s.ViewsCreated},
		{"view_entries", &s.ViewEntries},
		{"items_pruned", &s.ItemsPruned},
		{"sets_created", &s.SetsCreated},
		{"sets_visited", &s.SetsVisited},
		{"sets_coalesced", &s.SetsCoalesced},
		{"bvh_visited", &s.BVHVisited},
	} {
		v := m.v
		reg.RegisterFunc(prefix+"/"+m.name, func() int64 { return *v })
	}
}

// Ops totals the elementary operation counters — the analyzer's
// deterministic "analysis duration" in virtual units, the same quantity
// the distributed cost model scales into simulated seconds. Deltas of
// Ops around a launch weight that launch's node on the critical path.
func (s *Stats) Ops() int64 {
	return s.OverlapTests + s.EntriesScanned + s.ViewsCreated + s.ViewEntries +
		s.ItemsPruned + s.SetsCreated + s.SetsVisited + s.SetsCoalesced + s.BVHVisited
}

// Add accumulates o into s.
func (s *Stats) Add(o *Stats) {
	s.Launches += o.Launches
	s.OverlapTests += o.OverlapTests
	s.EntriesScanned += o.EntriesScanned
	s.DepsReported += o.DepsReported
	s.ViewsCreated += o.ViewsCreated
	s.ViewEntries += o.ViewEntries
	s.ItemsPruned += o.ItemsPruned
	s.SetsCreated += o.SetsCreated
	s.SetsVisited += o.SetsVisited
	s.SetsCoalesced += o.SetsCoalesced
	s.BVHVisited += o.BVHVisited
}

// Probe receives fine-grained attribution of analysis work to owners of
// distributed state. Owners are small integers assigned by an OwnerFunc
// (typically: the machine node owning a piece of the data); the distributed
// runtime turns cross-node touches into messages and queued work.
type Probe interface {
	// Touch reports ops units of analysis work against state owned by
	// owner: history entry scans, interference tests, set mutations.
	Touch(owner int, ops int64)
	// Visit reports ops traversal steps through replicated acceleration
	// structures (BVH/K-d nodes): much cheaper than Touch work and always
	// local to the analyzing node.
	Visit(ops int64)
	// Fetch reports traversal of an immutable piece of distributed state
	// (a refinement-tree node, a composite view) identified by token and
	// holding ops entries. Replication is on demand (§5.1, §6.1): the
	// first fetch by each analyzing node pays a remote touch of ops work;
	// later fetches by the same node find it cached and cost one visit.
	Fetch(owner int, token int64, ops int64)
}

// NopProbe ignores all touches.
type NopProbe struct{}

// Touch implements Probe.
func (NopProbe) Touch(int, int64) {}

// Visit implements Probe.
func (NopProbe) Visit(int64) {}

// Fetch implements Probe.
func (NopProbe) Fetch(int, int64, int64) {}

// OwnerFunc maps a piece of analysis state (identified by the points it
// covers) to the owner node responsible for it.
type OwnerFunc func(index.Space) int

// Options configures an analyzer's instrumentation. The zero value is
// valid: no probe, everything owned by node 0, a private metrics
// registry, and no span recording.
type Options struct {
	Probe Probe
	Owner OwnerFunc
	// Metrics is the registry components publish counters into. Nil gets
	// a private registry, so instruments always exist; pass a shared
	// registry to collect one snapshot across the whole stack.
	Metrics *obs.Registry
	// Spans receives begin/end records for the phases of each per-launch
	// analysis. Nil (the default) disables span recording; every
	// instrumentation site is nil-safe.
	Spans *obs.Buffer
	// Recorder is the flight-recorder ring that journals coarse runtime
	// events (task launches, equivalence-set splits/coalesces, cache
	// outcomes). Nil disables journaling; every site is nil-safe.
	Recorder *recorder.Recorder
	// Faults is the deterministic fault-injection plane. Nil (the default,
	// preserved by Normalize) disables every injection site at the cost of
	// one pointer test.
	Faults *fault.Injector
	// Prov receives dependence provenance: one EdgeReason per emitted
	// dependence edge and per-launch cost samples. Nil (the default,
	// preserved by Normalize) disables capture at the cost of one pointer
	// test per emission site.
	Prov *Provenance
}

// Normalize fills in defaults for nil fields (Spans stays nil: a nil
// buffer is the disabled fast path).
func (o Options) Normalize() Options {
	if o.Probe == nil {
		o.Probe = NopProbe{}
	}
	if o.Owner == nil {
		o.Owner = func(index.Space) int { return 0 }
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// Entry is one recorded operation in an analyzer's history: task t touched
// points Pts with privilege Priv through its Req-th requirement. Entries
// are the "primitives in the scene" of the visibility reduction (§3).
type Entry struct {
	Task int
	Req  int
	Priv privilege.Privilege
	Pts  index.Space
}

func (e Entry) String() string {
	return fmt.Sprintf("⟨%d.%d %v %v⟩", e.Task, e.Req, e.Priv, e.Pts)
}

// SeedEntry returns the initial history entry recording the root region's
// starting contents.
func SeedEntry(root index.Space) Entry {
	return Entry{Task: InitialTask, Req: 0, Priv: privilege.Writes(), Pts: root}
}

// DedupDeps sorts deps ascending, removes duplicates, and drops
// InitialTask.
func DedupDeps(deps []int) []int {
	if len(deps) == 0 {
		return nil
	}
	sort.Ints(deps)
	out := deps[:0]
	for _, d := range deps {
		if d == InitialTask {
			continue
		}
		if len(out) > 0 && out[len(out)-1] == d {
			continue
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
