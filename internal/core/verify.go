package core

import (
	"fmt"

	"visibility/internal/data"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/privilege"
	"visibility/internal/region"
)

// Factory constructs a fresh analyzer for a tree. Verification runs each
// factory's analyzer over the same stream and cross-checks the results.
type Factory struct {
	Name string
	New  func(tree *region.Tree) Analyzer
}

// Verify runs the stream through the sequential ground-truth interpreter
// and through an engine per factory, checking for each analyzer that:
//
//  1. every read and read-write requirement materializes exactly the values
//     the sequential interpreter observed (coherence, §3.1);
//  2. the reported dependences preserve, at least transitively, every exact
//     interference (soundness of dependence analysis, §3.2);
//  3. a final read of the entire root region per field materializes the
//     sequential interpreter's final contents.
//
// Returns nil if all analyzers pass, or an error naming the first failure.
func Verify(stream *Stream, init map[field.ID]*data.Store, k Kernel, factories ...Factory) error {
	tree := stream.Tree

	// Extend the stream with one root-wide read per field so the final
	// contents are themselves checked through each analyzer.
	extended := NewStream(tree)
	extended.Tasks = append(extended.Tasks, stream.Tasks...)
	var finals []*Task
	for f := 0; f < tree.Fields.Len(); f++ {
		ft := extended.Launch(fmt.Sprintf("final-read-%s", tree.Fields.Name(field.ID(f))),
			Req{Region: tree.Root, Field: field.ID(f), Priv: privilege.Reads()})
		finals = append(finals, ft)
	}

	seq := NewSeq(tree, init)
	for _, t := range extended.Tasks {
		seq.Run(t, k)
	}
	exact := ExactDeps(extended.Tasks)

	for _, fac := range factories {
		an := fac.New(tree)
		eng := NewEngine(tree, an, init)
		eng.RecordInputs = true
		eng.StrictPlans = true
		got := make([][]int, 0, len(extended.Tasks))
		for _, t := range extended.Tasks {
			res := eng.Launch(t, k)
			// The runtime enforces future edges itself, in addition to
			// whatever the analyzer reports.
			got = append(got, DedupDeps(append(append([]int{}, res.Deps...), t.FutureDeps...)))
		}

		// 1. Coherence of every materialized input.
		for _, t := range extended.Tasks {
			want := seq.Inputs[t.ID]
			have := eng.Inputs[t.ID]
			for ri, req := range t.Reqs {
				if req.Priv.IsReduce() {
					continue
				}
				if !want[ri].Equal(have[ri]) {
					return fmt.Errorf("%s: task %v req %d (%v) materialized wrong values:\n%s",
						fac.Name, t, ri, req, want[ri].Diff(have[ri]))
				}
			}
		}

		// 2. Soundness of dependences.
		if err := CheckSound(got, exact); err != nil {
			return fmt.Errorf("%s: %w", fac.Name, err)
		}

		// 3. Final contents (redundant with 1 via the appended reads, but
		// stated explicitly against the global store).
		for i, ft := range finals {
			want := seq.Global(field.ID(i)).Restrict(tree.Root.Space)
			have := eng.Inputs[ft.ID][0]
			if !want.Equal(have) {
				return fmt.Errorf("%s: final contents of field %d wrong:\n%s",
					fac.Name, i, want.Diff(have))
			}
		}
	}
	return nil
}

// HashKernel is a deterministic pseudo-random kernel for tests: every
// written value and reduction contribution is a pure function of the task
// ID, requirement index, point, and the materialized input (for writes), so
// any coherence error changes downstream values and is detected.
type HashKernel struct{}

func mix(h uint64, x uint64) uint64 {
	h ^= x
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	return h
}

func (HashKernel) hash(t *Task, ri int, px, py, pz int64) float64 {
	h := mix(mix(mix(mix(uint64(0x12345678), uint64(t.ID)+1), uint64(ri)+1),
		uint64(px)+0x55), mix(uint64(py)+0xAA, uint64(pz)+0x33))
	// Map to a smallish integer so float arithmetic is exact and
	// order-independent errors cannot cancel by rounding.
	return float64(h % 1024)
}

// WriteValue implements Kernel.
func (k HashKernel) WriteValue(t *Task, ri int, p geometry.Point, in float64) float64 {
	return k.hash(t, ri, p.C[0], p.C[1], p.C[2]) + in/2048
}

// ReduceValue implements Kernel.
func (k HashKernel) ReduceValue(t *Task, ri int, p geometry.Point) float64 {
	return k.hash(t, ri, p.C[0], p.C[1], p.C[2])
}
