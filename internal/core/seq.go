package core

import (
	"fmt"

	"visibility/internal/data"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/privilege"
	"visibility/internal/region"
)

// Kernel supplies the data transformation performed by each task. Kernels
// must be deterministic functions of their arguments so that the sequential
// interpreter and analyzer-driven engines compute bit-identical values.
type Kernel interface {
	// WriteValue returns the new value at point p for requirement ri of
	// task t, given the current (materialized) value in. Called only for
	// read-write requirements.
	WriteValue(t *Task, ri int, p geometry.Point, in float64) float64
	// ReduceValue returns t's reduction contribution at point p for
	// requirement ri. Called only for reduce requirements; it cannot
	// observe current values, mirroring the write-only nature of
	// reduction privileges.
	ReduceValue(t *Task, ri int, p geometry.Point) float64
}

// Seq is the ground-truth sequential interpreter: it executes the task
// stream in program order against a single global store per field,
// implementing the blending semantics of §3.1 directly (writes overwrite,
// reductions fold eagerly, reads observe the current value).
type Seq struct {
	tree *region.Tree
	// global is the single mutable store per field; Run folds every task
	// into it in program order on one goroutine.
	//
	// confined to analyzer
	global map[field.ID]*data.Store

	// Inputs records, for every executed task, the materialized input
	// store of each read or read-write requirement (nil for reduce
	// requirements). Used to validate analyzer-driven execution.
	Inputs map[int][]*data.Store
}

// NewSeq creates a sequential interpreter with the given initial contents
// per field. The stores are cloned; the caller's copies are not mutated.
func NewSeq(tree *region.Tree, init map[field.ID]*data.Store) *Seq {
	g := make(map[field.ID]*data.Store, len(init))
	//vislint:ignore detrange cloning a map into a map is order-insensitive
	for f, s := range init {
		g[f] = s.Clone()
	}
	return &Seq{tree: tree, global: g, Inputs: make(map[int][]*data.Store)}
}

// Global returns the current global store for field f.
//
// confined to analyzer
func (s *Seq) Global(f field.ID) *data.Store { return s.global[f] }

// Run executes one task.
//
// confined to analyzer
func (s *Seq) Run(t *Task, k Kernel) { s.RunBody(t, k, nil) }

// RunBody executes one task, invoking body (if non-nil) after all inputs
// are materialized and before any outputs apply — the run_task structure of
// Figure 6. Engines driving kernels whose Write/Reduce functions close over
// state prepared by a body must use this form.
//
// confined to analyzer
func (s *Seq) RunBody(t *Task, k Kernel, body func(inputs []*data.Store)) {
	// Phase 1: materialize every input (Figure 6 line 4).
	inputs := make([]*data.Store, len(t.Reqs))
	for ri, req := range t.Reqs {
		g := s.global[req.Field]
		if g == nil {
			panic(fmt.Sprintf("core: no initial data for field %d", req.Field))
		}
		if !req.Priv.IsReduce() {
			inputs[ri] = g.Restrict(req.Region.Space)
		}
	}
	if body != nil {
		body(inputs)
	}
	// Phase 2: run the kernel and apply outputs (lines 6-8). The §4
	// restriction (interfering requirements of one task have disjoint
	// domains) makes the apply order across requirements immaterial except
	// for same-operator reductions, which commute structurally and are
	// applied in requirement order by every engine.
	for ri, req := range t.Reqs {
		g := s.global[req.Field]
		switch {
		case req.Priv.IsWrite():
			in := inputs[ri]
			req.Region.Space.Each(func(p geometry.Point) bool {
				cur, ok := in.Get(p)
				if !ok {
					// Writing over never-initialized data: the kernel
					// sees the reduction-free undefined marker 0; both
					// engines apply the same rule.
					cur = 0
				}
				g.Set(p, k.WriteValue(t, ri, p, cur))
				return true
			})
		case req.Priv.IsReduce():
			op := req.Priv.Op
			req.Region.Space.Each(func(p geometry.Point) bool {
				contrib := privilege.Apply(op, privilege.Identity(op), k.ReduceValue(t, ri, p))
				cur, ok := g.Get(p)
				if !ok {
					cur = privilege.Identity(op)
				}
				g.Set(p, privilege.Apply(op, cur, contrib))
				return true
			})
		}
	}
	s.Inputs[t.ID] = inputs
}
