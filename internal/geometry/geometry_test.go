package geometry

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectEmpty(t *testing.T) {
	cases := []struct {
		r    Rect
		want bool
	}{
		{R1(0, 0), false},
		{R1(0, -1), true},
		{R1(5, 4), true},
		{R2(0, 0, 3, 3), false},
		{R2(0, 4, 3, 3), true},
		{R3(0, 0, 0, 0, 0, 0), false},
		{Rect{}, true}, // zero value has Dim 0
	}
	for _, c := range cases {
		if got := c.r.Empty(); got != c.want {
			t.Errorf("%v.Empty() = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestRectVolume(t *testing.T) {
	cases := []struct {
		r    Rect
		want int64
	}{
		{R1(0, 9), 10},
		{R1(3, 3), 1},
		{R1(3, 2), 0},
		{R2(0, 0, 9, 4), 50},
		{R3(0, 0, 0, 1, 1, 1), 8},
	}
	for _, c := range cases {
		if got := c.r.Volume(); got != c.want {
			t.Errorf("%v.Volume() = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestRectContains(t *testing.T) {
	r := R2(0, 0, 4, 4)
	if !r.Contains(Pt2(0, 0)) || !r.Contains(Pt2(4, 4)) || !r.Contains(Pt2(2, 3)) {
		t.Error("expected interior and corner points to be contained")
	}
	if r.Contains(Pt2(5, 0)) || r.Contains(Pt2(0, -1)) {
		t.Error("expected exterior points to not be contained")
	}
}

func TestRectContainsRect(t *testing.T) {
	r := R2(0, 0, 9, 9)
	if !r.ContainsRect(R2(2, 2, 5, 5)) {
		t.Error("inner rect should be contained")
	}
	if !r.ContainsRect(r) {
		t.Error("rect should contain itself")
	}
	if r.ContainsRect(R2(5, 5, 10, 10)) {
		t.Error("overhanging rect should not be contained")
	}
	if !r.ContainsRect(R2(3, 3, 2, 2)) {
		t.Error("empty rect should be contained in everything")
	}
	if (Rect{Dim: 2, Lo: Pt2(1, 1), Hi: Pt2(0, 0)}).ContainsRect(R2(0, 0, 0, 0)) {
		t.Error("empty rect contains nothing")
	}
}

func TestRectOverlapsIntersect(t *testing.T) {
	a := R2(0, 0, 5, 5)
	b := R2(3, 3, 8, 8)
	if !a.Overlaps(b) {
		t.Fatal("expected overlap")
	}
	got := a.Intersect(b)
	if !got.Equal(R2(3, 3, 5, 5)) {
		t.Errorf("Intersect = %v, want [3,3..5,5]", got)
	}
	c := R2(6, 0, 8, 2)
	if a.Overlaps(c) {
		t.Error("disjoint rects should not overlap")
	}
	if !a.Intersect(c).Empty() {
		t.Error("intersection of disjoint rects should be empty")
	}
}

func TestRectSubtract(t *testing.T) {
	// Subtracting the center of a 2-D rect yields a frame of 4 rects.
	r := R2(0, 0, 9, 9)
	s := R2(3, 3, 6, 6)
	parts := r.Subtract(s, nil)
	var vol int64
	for i, p := range parts {
		if p.Empty() {
			t.Errorf("part %d empty: %v", i, p)
		}
		if p.Overlaps(s) {
			t.Errorf("part %v overlaps subtracted %v", p, s)
		}
		for j := i + 1; j < len(parts); j++ {
			if p.Overlaps(parts[j]) {
				t.Errorf("parts %v and %v overlap", p, parts[j])
			}
		}
		vol += p.Volume()
	}
	if want := r.Volume() - s.Volume(); vol != want {
		t.Errorf("total volume %d, want %d", vol, want)
	}

	// Subtracting a non-overlapping rect returns the original.
	parts = r.Subtract(R2(20, 20, 30, 30), nil)
	if len(parts) != 1 || !parts[0].Equal(r) {
		t.Errorf("Subtract(disjoint) = %v, want [r]", parts)
	}

	// Subtracting a covering rect yields nothing.
	if parts := r.Subtract(R2(-1, -1, 10, 10), nil); len(parts) != 0 {
		t.Errorf("Subtract(cover) = %v, want empty", parts)
	}
}

func TestRectEach(t *testing.T) {
	r := R2(1, 1, 3, 2)
	var pts []Point
	r.Each(func(p Point) bool {
		pts = append(pts, p)
		return true
	})
	want := []Point{Pt2(1, 1), Pt2(2, 1), Pt2(3, 1), Pt2(1, 2), Pt2(2, 2), Pt2(3, 2)}
	if len(pts) != len(want) {
		t.Fatalf("Each visited %d points, want %d", len(pts), len(want))
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("point %d = %v, want %v", i, pts[i], want[i])
		}
	}

	// Early termination.
	n := 0
	done := r.Each(func(Point) bool { n++; return n < 3 })
	if done || n != 3 {
		t.Errorf("early stop: done=%v n=%d", done, n)
	}
}

func TestPointLess(t *testing.T) {
	if !Pt2(5, 0).Less(Pt2(0, 1), 2) {
		t.Error("row-major: y dominates in 2-D")
	}
	if !Pt2(0, 1).Less(Pt2(1, 1), 2) {
		t.Error("x breaks ties")
	}
	if Pt2(1, 1).Less(Pt2(1, 1), 2) {
		t.Error("point is not less than itself")
	}
}

func randRect(rng *rand.Rand, dim int, span int64) Rect {
	r := Rect{Dim: dim}
	for a := 0; a < dim; a++ {
		lo := rng.Int63n(span)
		hi := lo + rng.Int63n(span/2+1)
		r.Lo.C[a] = lo
		r.Hi.C[a] = hi
	}
	return r
}

// Property: subtract partitions r into the part inside s and parts outside.
func TestRectSubtractProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for dim := 1; dim <= 3; dim++ {
		f := func() bool {
			r := randRect(rng, dim, 20)
			s := randRect(rng, dim, 20)
			parts := r.Subtract(s, nil)
			vol := r.Intersect(s).Volume()
			for _, p := range parts {
				if p.Overlaps(s) || !r.ContainsRect(p) {
					return false
				}
				vol += p.Volume()
			}
			return vol == r.Volume()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("dim %d: %v", dim, err)
		}
	}
}

// Property: intersection is the set of points contained in both.
func TestRectIntersectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		r := randRect(rng, 2, 12)
		s := randRect(rng, 2, 12)
		inter := r.Intersect(s)
		ok := true
		r.Union(s).Each(func(p Point) bool {
			in := r.Contains(p) && s.Contains(p)
			if in != inter.Contains(p) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRectString(t *testing.T) {
	if got := R2(0, 1, 2, 3).String(); got != "[0,1..2,3]" {
		t.Errorf("String = %q", got)
	}
	if got := R1(1, 0).String(); got != "[empty d1]" {
		t.Errorf("empty String = %q", got)
	}
}

func TestRect3D(t *testing.T) {
	r := R3(0, 0, 0, 1, 2, 3)
	if r.Volume() != 2*3*4 {
		t.Errorf("3-D volume = %d", r.Volume())
	}
	if !r.Contains(Pt3(1, 2, 3)) || r.Contains(Pt3(2, 0, 0)) {
		t.Error("3-D containment wrong")
	}
	var count int
	r.Each(func(p Point) bool {
		count++
		return true
	})
	if count != 24 {
		t.Errorf("3-D Each visited %d points", count)
	}
	// Subtract a corner cube.
	parts := r.Subtract(R3(0, 0, 0, 0, 0, 0), nil)
	var vol int64
	for _, p := range parts {
		vol += p.Volume()
	}
	if vol != 23 {
		t.Errorf("3-D subtract volume = %d", vol)
	}
}

func TestPointRect(t *testing.T) {
	pr := PointRect(Pt2(3, 4), 2)
	if pr.Volume() != 1 || !pr.Contains(Pt2(3, 4)) {
		t.Errorf("PointRect = %v", pr)
	}
}

func TestRectUnionWithEmpty(t *testing.T) {
	e := R1(1, 0)
	r := R1(3, 7)
	if !r.Union(e).Equal(r) || !e.Union(r).Equal(r) {
		t.Error("union with empty should be identity")
	}
}
