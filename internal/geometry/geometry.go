// Package geometry provides n-dimensional integer points and rectangles,
// the primitive spatial vocabulary for index spaces, regions, and the
// visibility algorithms built on top of them.
//
// Coordinates are int64. Rectangles are axis-aligned with inclusive bounds
// on every axis, matching Legion's index-space rectangles. Dimensions up to
// MaxDim are supported; unused coordinates are zero so that Point values are
// directly comparable and usable as map keys.
package geometry

import (
	"fmt"
	"strings"
)

// MaxDim is the maximum number of spatial dimensions supported.
const MaxDim = 3

// Point is an n-dimensional integer point. Coordinates beyond the dimension
// of the enclosing space are zero, so Point is comparable and may be used as
// a map key regardless of dimensionality.
type Point struct {
	C [MaxDim]int64
}

// Pt1 returns a 1-D point.
func Pt1(x int64) Point { return Point{C: [MaxDim]int64{x}} }

// Pt2 returns a 2-D point.
func Pt2(x, y int64) Point { return Point{C: [MaxDim]int64{x, y}} }

// Pt3 returns a 3-D point.
func Pt3(x, y, z int64) Point { return Point{C: [MaxDim]int64{x, y, z}} }

// Less reports whether p precedes q in lexicographic order over the first
// dim coordinates, comparing the highest axis first so iteration order
// matches row-major traversal.
func (p Point) Less(q Point, dim int) bool {
	for a := dim - 1; a >= 0; a-- {
		if p.C[a] != q.C[a] {
			return p.C[a] < q.C[a]
		}
	}
	return false
}

// String formats the point for debugging, e.g. "(3,4)". All MaxDim
// coordinates are printed; trailing zeros are harmless.
func (p Point) String() string {
	parts := make([]string, MaxDim)
	for a := 0; a < MaxDim; a++ {
		parts[a] = fmt.Sprint(p.C[a])
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Rect is an axis-aligned n-dimensional rectangle with inclusive bounds.
// A Rect is empty when Lo.C[a] > Hi.C[a] for any axis a < Dim.
type Rect struct {
	Lo, Hi Point
	Dim    int
}

// R1 returns the 1-D rectangle [lo, hi].
func R1(lo, hi int64) Rect { return Rect{Lo: Pt1(lo), Hi: Pt1(hi), Dim: 1} }

// R2 returns the 2-D rectangle [lox,hix] x [loy,hiy].
func R2(lox, loy, hix, hiy int64) Rect {
	return Rect{Lo: Pt2(lox, loy), Hi: Pt2(hix, hiy), Dim: 2}
}

// R3 returns the 3-D rectangle with the given inclusive bounds.
func R3(lox, loy, loz, hix, hiy, hiz int64) Rect {
	return Rect{Lo: Pt3(lox, loy, loz), Hi: Pt3(hix, hiy, hiz), Dim: 3}
}

// PointRect returns the degenerate rectangle containing exactly p.
func PointRect(p Point, dim int) Rect { return Rect{Lo: p, Hi: p, Dim: dim} }

// Empty reports whether r contains no points.
func (r Rect) Empty() bool {
	if r.Dim <= 0 {
		return true
	}
	for a := 0; a < r.Dim; a++ {
		if r.Lo.C[a] > r.Hi.C[a] {
			return true
		}
	}
	return false
}

// Volume returns the number of points in r.
func (r Rect) Volume() int64 {
	if r.Empty() {
		return 0
	}
	v := int64(1)
	for a := 0; a < r.Dim; a++ {
		v *= r.Hi.C[a] - r.Lo.C[a] + 1
	}
	return v
}

// Contains reports whether p lies inside r.
func (r Rect) Contains(p Point) bool {
	if r.Empty() {
		return false
	}
	for a := 0; a < r.Dim; a++ {
		if p.C[a] < r.Lo.C[a] || p.C[a] > r.Hi.C[a] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether every point of s lies inside r. An empty s is
// contained in everything.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	if r.Empty() {
		return false
	}
	for a := 0; a < r.Dim; a++ {
		if s.Lo.C[a] < r.Lo.C[a] || s.Hi.C[a] > r.Hi.C[a] {
			return false
		}
	}
	return true
}

// Overlaps reports whether r and s share at least one point.
func (r Rect) Overlaps(s Rect) bool {
	if r.Empty() || s.Empty() {
		return false
	}
	for a := 0; a < r.Dim; a++ {
		if r.Hi.C[a] < s.Lo.C[a] || s.Hi.C[a] < r.Lo.C[a] {
			return false
		}
	}
	return true
}

// Intersect returns the common rectangle of r and s, which may be empty.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{Dim: r.Dim}
	for a := 0; a < r.Dim; a++ {
		out.Lo.C[a] = max64(r.Lo.C[a], s.Lo.C[a])
		out.Hi.C[a] = min64(r.Hi.C[a], s.Hi.C[a])
	}
	if out.Empty() {
		return Rect{Dim: r.Dim, Lo: Pt1(1), Hi: Pt1(0)} // canonical empty
	}
	return out
}

// Union returns the smallest rectangle containing both r and s (their
// bounding box, not their set union).
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	out := Rect{Dim: r.Dim}
	for a := 0; a < r.Dim; a++ {
		out.Lo.C[a] = min64(r.Lo.C[a], s.Lo.C[a])
		out.Hi.C[a] = max64(r.Hi.C[a], s.Hi.C[a])
	}
	return out
}

// Subtract returns r \ s as a set of at most 2*Dim disjoint rectangles.
// The result slice is appended to dst and returned.
func (r Rect) Subtract(s Rect, dst []Rect) []Rect {
	if r.Empty() {
		return dst
	}
	inter := r.Intersect(s)
	if inter.Empty() {
		return append(dst, r)
	}
	// Peel off slabs on each axis outside the intersection, shrinking the
	// remainder as we go so the produced rectangles are pairwise disjoint.
	rem := r
	for a := 0; a < r.Dim; a++ {
		if rem.Lo.C[a] < inter.Lo.C[a] {
			slab := rem
			slab.Hi.C[a] = inter.Lo.C[a] - 1
			dst = append(dst, slab)
			rem.Lo.C[a] = inter.Lo.C[a]
		}
		if rem.Hi.C[a] > inter.Hi.C[a] {
			slab := rem
			slab.Lo.C[a] = inter.Hi.C[a] + 1
			dst = append(dst, slab)
			rem.Hi.C[a] = inter.Hi.C[a]
		}
	}
	return dst
}

// Equal reports whether r and s contain exactly the same points.
func (r Rect) Equal(s Rect) bool {
	if r.Empty() && s.Empty() {
		return true
	}
	if r.Empty() != s.Empty() || r.Dim != s.Dim {
		return false
	}
	for a := 0; a < r.Dim; a++ {
		if r.Lo.C[a] != s.Lo.C[a] || r.Hi.C[a] != s.Hi.C[a] {
			return false
		}
	}
	return true
}

// Each calls f for every point of r in row-major order. Iteration stops
// early if f returns false; Each reports whether iteration ran to
// completion.
func (r Rect) Each(f func(Point) bool) bool {
	if r.Empty() {
		return true
	}
	p := r.Lo
	for {
		if !f(p) {
			return false
		}
		// Advance odometer-style, lowest axis fastest.
		a := 0
		for a < r.Dim {
			p.C[a]++
			if p.C[a] <= r.Hi.C[a] {
				break
			}
			p.C[a] = r.Lo.C[a]
			a++
		}
		if a == r.Dim {
			return true
		}
	}
}

// String formats the rectangle for debugging, e.g. "[0,0..3,4]".
func (r Rect) String() string {
	if r.Empty() {
		return fmt.Sprintf("[empty d%d]", r.Dim)
	}
	lo := make([]string, r.Dim)
	hi := make([]string, r.Dim)
	for a := 0; a < r.Dim; a++ {
		lo[a] = fmt.Sprint(r.Lo.C[a])
		hi[a] = fmt.Sprint(r.Hi.C[a])
	}
	return "[" + strings.Join(lo, ",") + ".." + strings.Join(hi, ",") + "]"
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
