package autotrace

import "testing"

// feed pushes a hash stream built from small symbols (each symbol mapped
// to a distinct hash) and returns the detected period after every push.
func feed(d *detector, symbols []int) []int {
	periods := make([]int, len(symbols))
	for i, s := range symbols {
		d.push(0x9e3779b97f4a7c15 * uint64(s+1)) // distinct, well-mixed hashes
		periods[i] = d.detect()
	}
	return periods
}

// repeatPattern appends reps copies of pattern.
func repeatPattern(pattern []int, reps int) []int {
	out := make([]int, 0, len(pattern)*reps)
	for i := 0; i < reps; i++ {
		out = append(out, pattern...)
	}
	return out
}

func TestDetectPeriodAtSecondCopy(t *testing.T) {
	d := newDetector(64, 1, 16, 2)
	periods := feed(d, repeatPattern([]int{1, 2, 3}, 2))
	for i := 0; i < 5; i++ {
		if periods[i] != 0 {
			t.Errorf("push %d: detected period %d before two full copies", i, periods[i])
		}
	}
	if periods[5] != 3 {
		t.Errorf("after two copies of ABC: period %d, want 3", periods[5])
	}
}

func TestDetectSmallestPeriod(t *testing.T) {
	// AAAA...: period 1 qualifies and must win over 2, 3, ...
	d := newDetector(64, 1, 16, 2)
	periods := feed(d, repeatPattern([]int{7}, 8))
	if periods[7] != 1 {
		t.Errorf("constant stream: period %d, want 1", periods[7])
	}
	// ABABABAB: 2 and 4 both repeat; the detector must pick 2.
	d = newDetector(64, 1, 16, 2)
	periods = feed(d, repeatPattern([]int{1, 2}, 4))
	if periods[7] != 2 {
		t.Errorf("ABAB stream: period %d, want 2", periods[7])
	}
}

func TestDetectRespectsMinPeriod(t *testing.T) {
	d := newDetector(64, 3, 16, 2)
	periods := feed(d, repeatPattern([]int{1, 2}, 6))
	// AB repeated: period 2 is below the floor, but 4 (= 2 rounded up to a
	// multiple above MinPeriod) still describes the stream.
	if got := periods[len(periods)-1]; got != 4 {
		t.Errorf("minPeriod=3 over ABAB...: period %d, want 4", got)
	}
}

func TestDetectRespectsMinReps(t *testing.T) {
	d := newDetector(64, 2, 16, 3)
	stream := repeatPattern([]int{1, 2, 3}, 3)
	periods := feed(d, stream)
	for i := 0; i < 8; i++ {
		if periods[i] != 0 {
			t.Errorf("push %d: detected with only %d copies seen, want 3", i, (i+1)/3)
		}
	}
	if periods[8] != 3 {
		t.Errorf("after three copies: period %d, want 3", periods[8])
	}
}

func TestDetectNothingOnDistinctStream(t *testing.T) {
	d := newDetector(64, 1, 16, 2)
	stream := make([]int, 64)
	for i := range stream {
		stream[i] = i
	}
	for i, p := range feed(d, stream) {
		if p != 0 {
			t.Fatalf("push %d: spurious period %d on an all-distinct stream", i, p)
		}
	}
}

// TestDetectSurvivesEviction streams noise far beyond the window, then a
// repeating pattern; compaction must not corrupt the rolling hashes.
func TestDetectSurvivesEviction(t *testing.T) {
	d := newDetector(32, 1, 8, 2)
	noise := make([]int, 1000)
	for i := range noise {
		noise[i] = 100 + i // all distinct
	}
	feed(d, noise)
	periods := feed(d, repeatPattern([]int{1, 2, 3, 4}, 2))
	if got := periods[len(periods)-1]; got != 4 {
		t.Errorf("pattern after heavy eviction: period %d, want 4", got)
	}
}

// TestDetectCandidateAlignment checks that the candidate is the final
// period of the stream in order, so the next launch continues at index 0.
func TestDetectCandidateAlignment(t *testing.T) {
	d := newDetector(64, 1, 16, 2)
	pattern := []int{5, 9, 2}
	feed(d, repeatPattern(pattern, 3))
	p := d.detect()
	if p != 3 {
		t.Fatalf("period %d, want 3", p)
	}
	cand := d.candidate(p)
	for i, s := range pattern {
		want := 0x9e3779b97f4a7c15 * uint64(s+1)
		if cand[i] != want {
			t.Errorf("candidate[%d] = %#x, want hash of symbol %d", i, cand[i], s)
		}
	}
}

// TestDetectMaxPeriodClamp verifies periods above maxPeriod are ignored.
func TestDetectMaxPeriodClamp(t *testing.T) {
	d := newDetector(64, 1, 3, 2)
	periods := feed(d, repeatPattern([]int{1, 2, 3, 4}, 4))
	for i, p := range periods {
		if p != 0 {
			t.Fatalf("push %d: period %d detected above maxPeriod=3", i, p)
		}
	}
}

// TestDetectOffsetPattern: a repeat that starts mid-stream (prefix noise)
// is still found once two clean copies are in the window.
func TestDetectOffsetPattern(t *testing.T) {
	d := newDetector(64, 2, 16, 2)
	stream := append([]int{90, 91, 92, 93, 94}, repeatPattern([]int{1, 2, 3}, 2)...)
	periods := feed(d, stream)
	if got := periods[len(periods)-1]; got != 3 {
		t.Errorf("pattern after noise prefix: period %d, want 3", got)
	}
	for i := 0; i < len(stream)-1; i++ {
		if periods[i] != 0 {
			t.Errorf("push %d: premature period %d", i, periods[i])
		}
	}
}
