// Package autotrace identifies repeated launch subsequences online and
// promotes them to memoized traces automatically, following Yadav et al.,
// "Automatic Tracing in Task-Based Runtime Systems": the application
// keeps launching tasks with no trace annotations at all, and the
// runtime watches the launch stream for a repeating structural pattern,
// brackets it with trace.Tracer Begin/End once confirmed, and falls back
// to direct analysis on any mismatch. The paper's steady-state loops
// (§8) are exactly such patterns, so in the replayed regime the
// per-launch dependence analysis cost drops to O(1) without any
// application cooperation.
//
// The subsystem composes with, rather than replaces, the explicit
// tracing of package trace: an Auto wraps any core.Analyzer in a
// trace.Tracer and drives the brackets itself. The tracer's own
// signature check and period-invariance rules remain the correctness
// backstop — a hash collision in the detector can at worst trigger a
// trace invalidation, never a wrong analysis result.
package autotrace

import (
	"visibility/internal/core"
)

// FNV-1a 64-bit parameters, shared with the fault plane's site seeding.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Signature hashes one launch's structure: kernel name, region
// requirements (region identity, field, privilege including the
// reduction operator), and future `after` edges as offsets relative to
// the launching task — structure only, never data values. Launches that
// are structurally identical hash equal at every stream offset, which is
// what lets the detector compare instances across the window; the
// relative future-dep encoding is what keeps a loop that chains each
// iteration to the previous one offset-invariant.
func Signature(t *core.Task) uint64 {
	h := uint64(fnvOffset)
	h = hashString(h, t.Name)
	h = hashWord(h, uint64(len(t.Reqs)))
	for _, r := range t.Reqs {
		h = hashWord(h, uint64(int64(r.Region.ID)))
		h = hashWord(h, uint64(int64(r.Field)))
		h = hashWord(h, uint64(int64(r.Priv.Kind)))
		h = hashWord(h, uint64(int64(r.Priv.Op)))
	}
	h = hashWord(h, uint64(len(t.FutureDeps)))
	for _, d := range t.FutureDeps {
		h = hashWord(h, uint64(int64(t.ID-d)))
	}
	return h
}

// hashString folds a length-prefixed string into the running FNV-1a
// state; the prefix keeps ("ab","c") distinct from ("a","bc") when
// adjacent fields are both strings.
func hashString(h uint64, s string) uint64 {
	h = hashWord(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// hashWord folds one 64-bit word into the running FNV-1a state, a byte
// at a time in little-endian order.
func hashWord(h, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= w & 0xff
		h *= fnvPrime
		w >>= 8
	}
	return h
}
