package autotrace

import (
	"fmt"

	"visibility/internal/core"
	"visibility/internal/fault"
	"visibility/internal/obs"
	"visibility/internal/obs/recorder"
	"visibility/internal/trace"
)

// Config tunes the online detector. The zero value selects the defaults
// below; Normalize derives the missing pieces and clamps MaxPeriod so a
// candidate always fits the detector's guaranteed history (window/2
// after bulk eviction).
type Config struct {
	// Window bounds how many launch hashes the detector retains
	// (default 4096).
	Window int
	// MinPeriod is the shortest repeating unit worth bracketing
	// (default 1: even a single-launch loop body replays profitably).
	MinPeriod int
	// MaxPeriod is the longest period searched for (default 512,
	// clamped to Window / (2 * MinReps)).
	MaxPeriod int
	// MinReps is how many consecutive copies of a candidate must be
	// observed before it is committed (default 2).
	MinReps int
}

// Normalize fills defaults and enforces the detector's invariants.
func (c Config) Normalize() Config {
	if c.Window <= 0 {
		c.Window = 4096
	}
	if c.MinPeriod <= 0 {
		c.MinPeriod = 1
	}
	if c.MinReps < 2 {
		c.MinReps = 2
	}
	if c.MaxPeriod <= 0 {
		c.MaxPeriod = 512
	}
	if limit := c.Window / (2 * c.MinReps); c.MaxPeriod > limit {
		c.MaxPeriod = limit
	}
	if c.MaxPeriod < c.MinPeriod {
		c.MaxPeriod = c.MinPeriod
	}
	return c
}

// Stats summarizes the autotracer's outcomes alongside the underlying
// tracer's counters.
type Stats struct {
	// Candidates is how many repeating patterns the detector committed.
	Candidates int64
	// Instances is how many bracketed instances completed (recorded or
	// replayed).
	Instances int64
	// Aborts is how many bracketed instances diverged mid-instance and
	// fell back to direct analysis.
	Aborts int64
	// Trace carries the wrapped tracer's recorded/replayed/invalidation
	// launch counters.
	Trace trace.Stats
}

// Auto wraps an analyzer with automatic trace identification: every
// launch is hashed into the detector's window, a confirmed repeat is
// bracketed through an internal trace.Tracer, and any divergence falls
// back to direct analysis. Like the analyzers it wraps, an Auto is
// driven from a single goroutine at a time.
//
// The state machine has three modes. In watching, launches pass through
// the idle tracer while the detector looks for a repeating suffix; a
// commit arms a candidate. In armed, the tracer is idle between
// instances: a launch matching the candidate's first hash opens a
// bracket (Begin), anything else retires the candidate — a clean loop
// exit, no invalidation, because nothing memoized is pending. Inside a
// bracket, matching launches are forwarded to the tracer (recording on
// the first instance, replaying afterwards) and the bracket closes
// (End) after one full period, returning to armed so back-to-back
// instances stay contiguous — the tracer's replay precondition. A
// mid-instance mismatch (or a fired trace.invalidate fault) ends the
// bracket early: a replaying tracer invalidates and re-analyzes every
// replayed launch through the wrapped analyzer, a recording tracer
// finalizes a partial trace under an id that is never begun again, and
// the autotracer returns to watching with the window still current, so
// a surviving loop is re-detected and re-recorded within one period.
type Auto struct {
	// tr is the bracketed tracer; the autotracer is its only driver.
	//
	// confined to analyzer
	tr   *trace.Tracer
	opts core.Options
	cfg  Config
	name string

	// confined to analyzer
	det *detector

	// confined to analyzer
	mode int
	// cand is the committed candidate: the hash sequence one bracketed
	// instance must reproduce.
	//
	// confined to analyzer
	cand []uint64
	// confined to analyzer
	pos int // position inside the current bracketed instance
	// confined to analyzer
	traceID int // current trace id; bumped so aborted ids never replay

	candidates *obs.Counter
	instances  *obs.Counter
	aborts     *obs.Counter

	// traceStats reads the wrapped tracer's counters without touching
	// the analyzer-confined tracer reference: the counters live in the
	// metrics registry (atomics), so the runtime owner may read them
	// while the analyzer goroutine is mid-launch.
	traceStats func() trace.Stats
}

const (
	watching = iota
	armed
	inside
)

// New wraps an analyzer with an autotracer using the default Config.
func New(an core.Analyzer, opts core.Options) *Auto {
	return NewConfig(an, opts, Config{})
}

// NewConfig is New with explicit detector tuning.
func NewConfig(an core.Analyzer, opts core.Options, cfg Config) *Auto {
	opts = opts.Normalize()
	cfg = cfg.Normalize()
	tr := trace.New(an, opts)
	return &Auto{
		tr:         tr,
		opts:       opts,
		cfg:        cfg,
		name:       an.Name() + "+autotrace",
		det:        newDetector(cfg.Window, cfg.MinPeriod, cfg.MaxPeriod, cfg.MinReps),
		candidates: opts.Metrics.NewCounter("autotrace/candidates"),
		instances:  opts.Metrics.NewCounter("autotrace/instances"),
		aborts:     opts.Metrics.NewCounter("autotrace/aborts"),
		traceStats: tr.TraceStats,
	}
}

// Name implements core.Analyzer.
func (a *Auto) Name() string { return a.name }

// Stats implements core.Analyzer (the wrapped analyzer's counters).
func (a *Auto) Stats() *core.Stats { return a.tr.Stats() }

// AutoStats returns the autotracer's outcome counters. Safe from the
// runtime owner: everything read here is registry atomics.
func (a *Auto) AutoStats() Stats {
	return Stats{
		Candidates: a.candidates.Load(),
		Instances:  a.instances.Load(),
		Aborts:     a.aborts.Load(),
		Trace:      a.traceStats(),
	}
}

// Analyze implements core.Analyzer.
//
// confined to analyzer
func (a *Auto) Analyze(t *core.Task) *core.Result {
	h := Signature(t)
	switch a.mode {
	case inside:
		return a.step(t, h)
	case armed:
		if h == a.cand[0] {
			a.tr.Begin(a.traceID)
			a.mode = inside
			a.pos = 0
			return a.step(t, h)
		}
		// The loop exited between instances: nothing is bracketed, so
		// retiring the candidate costs nothing.
		a.mode = watching
		a.cand = nil
		fallthrough
	default:
		res := a.tr.Analyze(t)
		a.observe(h)
		return res
	}
}

// step handles one launch inside a bracketed instance.
func (a *Auto) step(t *core.Task, h uint64) *core.Result {
	if h == a.cand[a.pos] {
		// The forced-invalidation fault site only fires where an
		// invalidation has teeth: mid-replay, with memoized launches
		// pending re-analysis.
		if !a.tr.Replaying() || !a.opts.Faults.Fire(fault.TraceInvalidate, int64(t.ID)) {
			res := a.tr.Analyze(t)
			// Bracketed launches still feed the window (without running
			// detection), so an abort resumes from current history.
			a.det.push(h)
			a.pos++
			if a.pos == len(a.cand) {
				a.endInstance()
			}
			return res
		}
	}
	a.abort()
	// The tracer is idle again: this re-analyzes directly (after the
	// invalidation drain caught the wrapped analyzer up).
	res := a.tr.Analyze(t)
	a.observe(h)
	return res
}

// endInstance closes a completed bracket and re-arms for the next
// contiguous instance.
func (a *Auto) endInstance() {
	replayed := a.tr.Replaying()
	a.tr.End()
	a.instances.Inc()
	if replayed {
		a.opts.Recorder.Log(recorder.KindTraceReplay, int64(a.traceID), int64(len(a.cand)))
	}
	a.mode = armed
	a.pos = 0
}

// abort ends a bracketed instance early. Ending a replaying tracer
// short invalidates the trace (the tracer re-analyzes every replayed
// launch); ending a recording tracer finalizes a partial trace, which
// stays harmless because its id is retired here and never begun again.
// The detector window was fed throughout, so a loop that merely hiccuped
// is re-detected and re-recorded within one period.
func (a *Auto) abort() {
	a.opts.Recorder.Log(recorder.KindTraceInvalidate, int64(a.traceID), int64(a.pos))
	a.aborts.Inc()
	a.tr.End()
	a.traceID++
	a.mode = watching
	a.cand = nil
	a.pos = 0
}

// observe feeds one launch hash to the detector and commits a candidate
// when the stream's suffix repeats.
func (a *Auto) observe(h uint64) {
	a.det.push(h)
	if a.mode != watching {
		return
	}
	if p := a.det.detect(); p > 0 {
		a.cand = a.det.candidate(p)
		a.candidates.Inc()
		a.opts.Recorder.Log(recorder.KindTraceCommit, int64(a.traceID), int64(p))
		a.mode = armed
		a.pos = 0
	}
}

// Verify that Auto satisfies core.Analyzer.
var _ core.Analyzer = (*Auto)(nil)

// Describe returns a human-readable summary for the inspection CLI.
func (a *Auto) Describe() string {
	st := a.AutoStats()
	return fmt.Sprintf("candidates=%d instances=%d aborts=%d recorded=%d replayed=%d invalidations=%d",
		st.Candidates, st.Instances, st.Aborts, st.Trace.Recorded, st.Trace.Replayed, st.Trace.Invalidations)
}
