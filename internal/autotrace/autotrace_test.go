package autotrace_test

import (
	"bytes"
	"testing"

	"visibility/internal/autotrace"
	"visibility/internal/core"
	"visibility/internal/fault"
	"visibility/internal/obs"
	"visibility/internal/obs/recorder"
	"visibility/internal/paint"
	"visibility/internal/privilege"
	"visibility/internal/raycast"
	"visibility/internal/region"
	"visibility/internal/testutil"
	"visibility/internal/warnock"
)

func factories() []core.Factory {
	return []core.Factory{
		{Name: "paint", New: func(tr *region.Tree) core.Analyzer { return paint.NewPainter(tr, core.Options{}) }},
		{Name: "warnock", New: func(tr *region.Tree) core.Analyzer { return warnock.New(tr, core.Options{}) }},
		{Name: "raycast", New: func(tr *region.Tree) core.Analyzer { return raycast.New(tr, core.Options{}) }},
	}
}

// schedule produces iteration it's launches; the autotracer sees the
// concatenated stream with no brackets at all.
type schedule func(s *core.Stream, p, g *region.Partition, it int) []*core.Task

// loopIter is the Figure 1 loop body: three t1 then three t2 launches.
func loopIter(s *core.Stream, p, g *region.Partition, _ int) []*core.Task {
	var out []*core.Task
	for i := 0; i < 3; i++ {
		out = append(out, testutil.LaunchT1(s, p, g, i))
	}
	for i := 0; i < 3; i++ {
		out = append(out, testutil.LaunchT2(s, p, g, i))
	}
	return out
}

// runSchedule drives iters iterations of sched through an autotraced
// engine with NO explicit trace brackets, checks every task input
// against the sequential interpreter, and returns the autotracer.
func runSchedule(t *testing.T, fac core.Factory, iters int, opts core.Options, sched schedule) *autotrace.Auto {
	t.Helper()
	tree, p, g := testutil.GraphTree()
	init := testutil.FullInit(tree)
	kern := core.HashKernel{}

	seq := core.NewSeq(tree, init)
	seqStream := core.NewStream(tree)
	for it := 0; it < iters; it++ {
		for _, task := range sched(seqStream, p, g, it) {
			seq.Run(task, kern)
		}
	}

	auto := autotrace.New(fac.New(tree), opts)
	eng := core.NewEngine(tree, auto, init)
	eng.RecordInputs = true
	stream := core.NewStream(tree)
	for it := 0; it < iters; it++ {
		for _, task := range sched(stream, p, g, it) {
			eng.Launch(task, kern)
		}
	}

	for id, want := range seq.Inputs {
		have := eng.Inputs[id]
		for ri := range want {
			if want[ri] == nil {
				continue
			}
			if !want[ri].Equal(have[ri]) {
				t.Fatalf("%s: task %d req %d diverged under autotracing:\n%s",
					fac.Name, id, ri, want[ri].Diff(have[ri]))
			}
		}
	}
	return auto
}

// TestAutoMatchesSequential checks the full pipeline on the unbracketed
// Figure 1 loop: two iterations to detect, one to record, the rest
// replay — and every value matches the sequential interpreter.
func TestAutoMatchesSequential(t *testing.T) {
	for _, fac := range factories() {
		fac := fac
		t.Run(fac.Name, func(t *testing.T) {
			auto := runSchedule(t, fac, 10, core.Options{}, loopIter)
			st := auto.AutoStats()
			if st.Candidates != 1 {
				t.Errorf("candidates = %d, want 1", st.Candidates)
			}
			if st.Aborts != 0 {
				t.Errorf("aborts = %d, want 0", st.Aborts)
			}
			// Iterations 0-1 detect, 2 records, 3-9 replay; each bracketed
			// iteration is one instance.
			if st.Instances != 8 {
				t.Errorf("instances = %d, want 8", st.Instances)
			}
			if st.Trace.Recorded != 6 {
				t.Errorf("recorded %d launches, want 6 (one loop iteration)", st.Trace.Recorded)
			}
			if st.Trace.Replayed != 7*6 {
				t.Errorf("replayed %d launches, want 42 (seven replayed iterations)", st.Trace.Replayed)
			}
			if st.Trace.Invalidations != 0 {
				t.Errorf("invalidations = %d, want 0", st.Trace.Invalidations)
			}
		})
	}
}

// TestAutoReplaySkipsUnderlyingAnalysis proves replayed instances never
// reach the wrapped analyzer.
func TestAutoReplaySkipsUnderlyingAnalysis(t *testing.T) {
	tree, p, g := testutil.GraphTree()
	an := warnock.New(tree, core.Options{})
	auto := autotrace.New(an, core.Options{})
	stream := core.NewStream(tree)
	emit := func() {
		for i := 0; i < 3; i++ {
			auto.Analyze(testutil.LaunchT1(stream, p, g, i))
		}
		for i := 0; i < 3; i++ {
			auto.Analyze(testutil.LaunchT2(stream, p, g, i))
		}
	}
	emit() // watch
	emit() // watch; candidate commits on the last launch
	emit() // record
	launchesAfterRecord := an.Stats().Launches
	emit() // replay
	emit() // replay
	if got := an.Stats().Launches; got != launchesAfterRecord {
		t.Errorf("wrapped analyzer observed %d launches during replay, want 0", got-launchesAfterRecord)
	}
	if st := auto.AutoStats(); st.Trace.Replayed != 12 {
		t.Errorf("replayed %d launches, want 12", st.Trace.Replayed)
	}
}

// TestAutoSingleLaunchLoop checks the degenerate but common period-1
// stream: the same launch over and over.
func TestAutoSingleLaunchLoop(t *testing.T) {
	spin := func(s *core.Stream, _, _ *region.Partition, _ int) []*core.Task {
		return []*core.Task{s.Launch("spin",
			core.Req{Region: s.Tree.Root, Field: 0, Priv: privilege.Writes()})}
	}
	auto := runSchedule(t, factories()[1], 8, core.Options{}, spin)
	st := auto.AutoStats()
	if st.Candidates != 1 {
		t.Errorf("candidates = %d, want 1", st.Candidates)
	}
	if st.Trace.Recorded != 1 || st.Trace.Replayed != 5 {
		t.Errorf("recorded/replayed = %d/%d, want 1/5", st.Trace.Recorded, st.Trace.Replayed)
	}
}

// TestAutoDivergenceRecovers scrambles one iteration mid-replay: the
// first launch still matches (so the bracket opens), the second does
// not, forcing an invalidation — then the loop resumes and must be
// re-detected, re-recorded, and replayed again, with all values exact.
func TestAutoDivergenceRecovers(t *testing.T) {
	scrambled := func(s *core.Stream, p, g *region.Partition, it int) []*core.Task {
		if it != 5 {
			return loopIter(s, p, g, it)
		}
		var out []*core.Task
		out = append(out, testutil.LaunchT1(s, p, g, 0))
		for i := 0; i < 3; i++ {
			out = append(out, testutil.LaunchT2(s, p, g, i))
		}
		out = append(out, testutil.LaunchT1(s, p, g, 1))
		out = append(out, testutil.LaunchT1(s, p, g, 2))
		return out
	}
	auto := runSchedule(t, factories()[2], 12, core.Options{}, scrambled)
	st := auto.AutoStats()
	if st.Aborts != 1 {
		t.Errorf("aborts = %d, want 1", st.Aborts)
	}
	if st.Trace.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Trace.Invalidations)
	}
	if st.Candidates != 2 {
		t.Errorf("candidates = %d, want 2 (re-detected after the scramble)", st.Candidates)
	}
	// Iterations 3-4 replayed before the scramble; 9-11 after recovery.
	if st.Trace.Replayed <= 2*6 {
		t.Errorf("replayed %d launches, want replay to resume after recovery", st.Trace.Replayed)
	}
}

// TestAutoCleanLoopExit ends the loop between instances: the armed
// candidate retires without an invalidation and the tail launches are
// analyzed directly.
func TestAutoCleanLoopExit(t *testing.T) {
	tail := func(s *core.Stream, p, g *region.Partition, it int) []*core.Task {
		if it < 6 {
			return loopIter(s, p, g, it)
		}
		return []*core.Task{s.Launch("after",
			core.Req{Region: s.Tree.Root, Field: 0, Priv: privilege.Reads()})}
	}
	auto := runSchedule(t, factories()[0], 7, core.Options{}, tail)
	st := auto.AutoStats()
	if st.Aborts != 0 {
		t.Errorf("aborts = %d, want 0: a loop exit between instances is clean", st.Aborts)
	}
	if st.Trace.Invalidations != 0 {
		t.Errorf("invalidations = %d, want 0", st.Trace.Invalidations)
	}
	if st.Trace.Replayed != 3*6 {
		t.Errorf("replayed %d launches, want 18", st.Trace.Replayed)
	}
}

// TestAutoForcedInvalidation arms the trace.invalidate fault site so a
// replaying instance aborts mid-flight, and checks full recovery: exact
// values, a journaled fault_inject + trace_invalidate pair, and replay
// resuming after re-detection.
func TestAutoForcedInvalidation(t *testing.T) {
	rec := recorder.NewClock(4096, eventClock())
	inj := fault.New(fault.Plan{Seed: 1, Rules: map[fault.Site]fault.Rule{
		fault.TraceInvalidate: {Every: 4, Max: 1},
	}})
	inj.SetRecorder(rec)
	opts := core.Options{Recorder: rec, Faults: inj}
	auto := runSchedule(t, factories()[1], 12, opts, loopIter)
	st := auto.AutoStats()
	if got := inj.Fires(fault.TraceInvalidate); got != 1 {
		t.Fatalf("trace.invalidate fired %d times, want 1", got)
	}
	if st.Aborts != 1 || st.Trace.Invalidations != 1 {
		t.Errorf("aborts/invalidations = %d/%d, want 1/1", st.Aborts, st.Trace.Invalidations)
	}
	if st.Candidates != 2 {
		t.Errorf("candidates = %d, want 2 (loop re-detected after the forced abort)", st.Candidates)
	}
	if st.Trace.Replayed <= 3 {
		t.Errorf("replayed %d launches, want replay to resume after the forced abort", st.Trace.Replayed)
	}
	counts := map[recorder.Kind]int{}
	sawFault := false
	for _, e := range rec.Snapshot() {
		counts[e.Kind]++
		if e.Kind == recorder.KindFaultInject && fault.SiteAt(int(e.A)) == fault.TraceInvalidate {
			sawFault = true
		}
	}
	if !sawFault {
		t.Error("no fault_inject event journaled for trace.invalidate")
	}
	if counts[recorder.KindTraceCommit] != 2 {
		t.Errorf("journaled %d trace_commit events, want 2", counts[recorder.KindTraceCommit])
	}
	if counts[recorder.KindTraceInvalidate] != 1 {
		t.Errorf("journaled %d trace_invalidate events, want 1", counts[recorder.KindTraceInvalidate])
	}
	if counts[recorder.KindTraceReplay] == 0 {
		t.Error("no trace_replay events journaled")
	}
}

// TestAutoJournalDeterministic runs the same autotraced workload twice
// on event-count clocks and requires byte-identical flight-recorder
// dumps.
func TestAutoJournalDeterministic(t *testing.T) {
	run := func() []byte {
		rec := recorder.NewClock(4096, eventClock())
		auto := runSchedule(t, factories()[2], 9, core.Options{Recorder: rec}, loopIter)
		_ = auto
		var buf bytes.Buffer
		if err := rec.Dump(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("two identical autotraced runs produced different dumps (%d vs %d bytes)", len(a), len(b))
	}
}

// eventClock returns a deterministic clock advancing one tick per event.
func eventClock() func() int64 {
	var ticks int64
	return func() int64 { ticks++; return ticks }
}

// TestAutoMetricsPublished checks the autotrace and trace counters land
// on a shared obs registry under the expected keys.
func TestAutoMetricsPublished(t *testing.T) {
	tree, p, g := testutil.GraphTree()
	reg := obs.NewRegistry()
	auto := autotrace.New(warnock.New(tree, core.Options{}), core.Options{Metrics: reg})
	stream := core.NewStream(tree)
	for it := 0; it < 6; it++ {
		for i := 0; i < 3; i++ {
			auto.Analyze(testutil.LaunchT1(stream, p, g, i))
		}
		for i := 0; i < 3; i++ {
			auto.Analyze(testutil.LaunchT2(stream, p, g, i))
		}
	}
	snap := reg.Snapshot()
	for _, key := range []string{"autotrace/candidates", "autotrace/instances", "trace/recorded", "trace/replayed"} {
		if snap[key] == 0 {
			t.Errorf("metric %q = 0 after an autotraced loop, want > 0", key)
		}
	}
	if snap["autotrace/aborts"] != 0 || snap["trace/invalidations"] != 0 {
		t.Errorf("unexpected aborts/invalidations in %v", snap)
	}
}

func TestAutoNameAndDescribe(t *testing.T) {
	tree, _, _ := testutil.GraphTree()
	auto := autotrace.New(warnock.New(tree, core.Options{}), core.Options{})
	if auto.Name() != "warnock+autotrace" {
		t.Errorf("Name = %q", auto.Name())
	}
	if auto.Describe() == "" {
		t.Error("Describe empty")
	}
	if auto.Stats() == nil {
		t.Error("Stats nil")
	}
}

func TestConfigNormalize(t *testing.T) {
	def := autotrace.Config{}.Normalize()
	if def.Window != 4096 || def.MinPeriod != 1 || def.MaxPeriod != 512 || def.MinReps != 2 {
		t.Errorf("defaults = %+v", def)
	}
	clamped := autotrace.Config{Window: 100, MinReps: 5}.Normalize()
	if clamped.MaxPeriod != 10 {
		t.Errorf("MaxPeriod = %d, want 10 (window/2 divided by reps)", clamped.MaxPeriod)
	}
}
