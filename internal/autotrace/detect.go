package autotrace

// detector is the bounded-window online repeated-substring detector: it
// keeps the most recent Window launch hashes together with polynomial
// prefix hashes, and after each push can answer "does the stream end in
// MinReps consecutive copies of some period-P substring?" in
// O(MaxPeriod) expected time. Candidate periods are found with a cheap
// one-element filter (the newest hash must equal the hash one period
// back), confirmed with O(1) rolling range-hash comparisons, and finally
// re-checked element-wise so a rolling-hash collision cannot commit a
// bogus candidate. Overlapping candidates are resolved toward the
// smallest qualifying period: it is the primitive period of the
// repeating suffix, larger qualifying periods are repetitions of it, and
// per-launch replay cost is O(1) either way.
//
// confined to analyzer
type detector struct {
	window    int
	minPeriod int
	maxPeriod int
	minReps   int

	// hs holds the newest window of launch hashes in stream order; pre
	// holds polynomial prefix hashes over exactly hs (pre[i] covers
	// hs[0..i]), rebuilt on compaction. pows[k] is rollBase^k.
	//
	// confined to analyzer
	hs []uint64
	// confined to analyzer
	pre  []uint64
	pows []uint64
}

// rollBase is the polynomial rolling-hash base. Arithmetic is mod 2^64;
// an odd base keeps the map position-sensitive.
const rollBase = 0x9ddfea08eb382d69

func newDetector(window, minPeriod, maxPeriod, minReps int) *detector {
	d := &detector{window: window, minPeriod: minPeriod, maxPeriod: maxPeriod, minReps: minReps}
	d.pows = make([]uint64, window+1)
	d.pows[0] = 1
	for i := 1; i <= window; i++ {
		d.pows[i] = d.pows[i-1] * rollBase
	}
	return d
}

// push appends one launch hash, evicting the oldest entries when the
// window overflows. Eviction compacts in bulk — drop the oldest half,
// rebuild the prefix array over the survivors — so the amortized cost
// stays O(1). The history detect can rely on is therefore window/2, the
// bound Config normalization derives maxPeriod from.
func (d *detector) push(h uint64) {
	if len(d.hs) == d.window {
		half := d.window / 2
		n := copy(d.hs, d.hs[half:])
		d.hs = d.hs[:n]
		d.pre = d.pre[:0]
		acc := uint64(0)
		for _, v := range d.hs {
			acc = acc*rollBase + v
			d.pre = append(d.pre, acc)
		}
	}
	d.hs = append(d.hs, h)
	acc := h
	if len(d.pre) > 0 {
		acc = d.pre[len(d.pre)-1]*rollBase + h
	}
	d.pre = append(d.pre, acc)
}

// rangeHash returns the polynomial hash of hs[i:j) (0 <= i < j <=
// len(hs)).
func (d *detector) rangeHash(i, j int) uint64 {
	if i == 0 {
		return d.pre[j-1]
	}
	return d.pre[j-1] - d.pre[i-1]*d.pows[j-i]
}

// detect reports the smallest period P in [minPeriod, maxPeriod] such
// that the window currently ends in minReps consecutive copies of its
// last P hashes, or 0 when the stream's suffix is not (yet) repeating.
func (d *detector) detect() int {
	n := len(d.hs)
	for p := d.minPeriod; p <= d.maxPeriod; p++ {
		if n < d.minReps*p {
			return 0 // longer periods need even more history
		}
		// Cheap filter: the newest element must recur one period back.
		if d.hs[n-1] != d.hs[n-1-p] {
			continue
		}
		if !d.copiesMatch(p) {
			continue
		}
		if d.copiesEqual(p) {
			return p
		}
	}
	return 0
}

// copiesMatch compares the last minReps period-p blocks by rolling range
// hash — O(minReps) regardless of p.
func (d *detector) copiesMatch(p int) bool {
	n := len(d.hs)
	last := d.rangeHash(n-p, n)
	for r := 1; r < d.minReps; r++ {
		if d.rangeHash(n-(r+1)*p, n-r*p) != last {
			return false
		}
	}
	return true
}

// copiesEqual is the exact element-wise confirmation behind the rolling
// hashes, so a range-hash collision cannot commit a bogus candidate.
func (d *detector) copiesEqual(p int) bool {
	n := len(d.hs)
	for r := 1; r < d.minReps; r++ {
		a, b := d.hs[n-p:n], d.hs[n-(r+1)*p:n-r*p]
		for k := range a {
			if a[k] != b[k] {
				return false
			}
		}
	}
	return true
}

// candidate returns a copy of the window's last p hashes — the repeating
// unit a committed trace will bracket.
func (d *detector) candidate(p int) []uint64 {
	n := len(d.hs)
	return append([]uint64(nil), d.hs[n-p:n]...)
}
