package autotrace

import (
	"testing"

	"visibility/internal/core"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/index"
	"visibility/internal/privilege"
	"visibility/internal/region"
)

// sigTree builds a small region tree whose root has two subregions, so
// corpus entries can differ by region identity alone.
func sigTree() (*region.Tree, *region.Partition) {
	fs := field.NewSpace()
	fs.Add("f0")
	fs.Add("f1")
	tree := region.NewTree("R", index.FromRect(geometry.R1(0, 9)), fs)
	a, b := tree.Root.Space.SplitAt(5)
	p := tree.Root.Partition("P", []index.Space{a, b})
	return tree, p
}

// task builds a launch at a chosen stream offset without a Stream, so
// tests control task IDs (and therefore future-dep offsets) directly.
func task(id int, name string, reqs []core.Req, futureDeps ...int) *core.Task {
	return &core.Task{ID: id, Name: name, Reqs: reqs, FutureDeps: futureDeps}
}

// TestSignatureCorpusNoCollisions enumerates launches that differ in
// exactly one structural dimension each — kernel name, requirement
// count, region identity, field, privilege kind, reduction operator,
// future-edge count and offset — and requires all hashes pairwise
// distinct.
func TestSignatureCorpusNoCollisions(t *testing.T) {
	tree, p := sigTree()
	root := tree.Root
	sub0, sub1 := p.Subregions[0], p.Subregions[1]
	req := func(r *region.Region, f field.ID, pr privilege.Privilege) []core.Req {
		return []core.Req{{Region: r, Field: f, Priv: pr}}
	}
	corpus := map[string]*core.Task{
		"base":          task(10, "t", req(root, 0, privilege.Reads())),
		"name":          task(10, "u", req(root, 0, privilege.Reads())),
		"region":        task(10, "t", req(sub0, 0, privilege.Reads())),
		"other region":  task(10, "t", req(sub1, 0, privilege.Reads())),
		"field":         task(10, "t", req(root, 1, privilege.Reads())),
		"priv write":    task(10, "t", req(root, 0, privilege.Writes())),
		"priv reduce":   task(10, "t", req(root, 0, privilege.Reduces(privilege.OpSum))),
		"reduce op":     task(10, "t", req(root, 0, privilege.Reduces(privilege.OpMax))),
		"two reqs":      task(10, "t", append(req(sub0, 0, privilege.Reads()), core.Req{Region: sub1, Field: 0, Priv: privilege.Reads()})),
		"req order":     task(10, "t", append(req(sub1, 0, privilege.Reads()), core.Req{Region: sub0, Field: 0, Priv: privilege.Reads()})),
		"future dep":    task(10, "t", req(root, 0, privilege.Reads()), 9),
		"older dep":     task(10, "t", req(root, 0, privilege.Reads()), 7),
		"two deps":      task(10, "t", req(root, 0, privilege.Reads()), 9, 8),
		"empty name":    task(10, "", req(root, 0, privilege.Reads())),
		"prefix squash": task(10, "tt", req(root, 0, privilege.Reads())),
	}
	seen := map[uint64]string{}
	for label, tk := range corpus {
		h := Signature(tk)
		if prev, dup := seen[h]; dup {
			t.Errorf("corpus entries %q and %q collide on %#x", prev, label, h)
		}
		seen[h] = label
	}
}

// TestSignatureOffsetInvariance requires structurally identical launches
// to hash equal at every stream offset — including launches whose future
// edges point the same relative distance back.
func TestSignatureOffsetInvariance(t *testing.T) {
	tree, p := sigTree()
	reqs := []core.Req{
		{Region: p.Subregions[0], Field: 1, Priv: privilege.Writes()},
		{Region: tree.Root, Field: 0, Priv: privilege.Reads()},
	}
	base := Signature(task(5, "step", reqs, 3, 1))
	for _, off := range []int{0, 1, 17, 4096, 1 << 30} {
		id := 5 + off
		got := Signature(task(id, "step", reqs, id-2, id-4))
		if got != base {
			t.Errorf("offset %d: hash %#x, want %#x (structure unchanged)", off, got, base)
		}
	}
	// A shifted future edge is a different structure.
	if Signature(task(6, "step", reqs, 3, 2)) == base {
		t.Error("future-dep offset change did not change the hash")
	}
}

// FuzzSignature checks determinism and structural equality: the hash is
// a pure function of the launch's structure, and rebuilding the same
// structure at a different stream offset reproduces it.
func FuzzSignature(f *testing.F) {
	f.Add("t", 0, 0, 1, 3, 2)
	f.Add("kernel", 1, 1, 2, 0, 7)
	f.Fuzz(func(t *testing.T, name string, sub, fld, privSel, op, depOff int) {
		tree, p := sigTree()
		r := tree.Root
		if sub%3 != 0 {
			r = p.Subregions[abs(sub)%2]
		}
		var pr privilege.Privilege
		switch abs(privSel) % 3 {
		case 0:
			pr = privilege.Reads()
		case 1:
			pr = privilege.Writes()
		default:
			ops := []privilege.ReduceOp{privilege.OpSum, privilege.OpProd, privilege.OpMin, privilege.OpMax}
			pr = privilege.Reduces(ops[abs(op)%len(ops)])
		}
		reqs := []core.Req{{Region: r, Field: field.ID(abs(fld) % 2), Priv: pr}}
		off := 1 + abs(depOff)%64
		a := task(100, name, reqs, 100-off)
		b := task(7+off, name, reqs, 7)
		ha, hb := Signature(a), Signature(b)
		if ha != Signature(a) {
			t.Fatal("signature is not deterministic")
		}
		if ha != hb {
			t.Fatalf("equal structures at offsets 100 and %d hash %#x vs %#x", 7+off, ha, hb)
		}
	})
}

func abs(v int) int {
	if v < 0 {
		if v == -v { // math.MinInt stays negative under negation
			return 0
		}
		return -v
	}
	return v
}
