package harness_test

import (
	"strings"
	"testing"

	"visibility/internal/apps"
	"visibility/internal/apps/circuit"
	"visibility/internal/apps/pennant"
	"visibility/internal/apps/stencil"
	"visibility/internal/dist"
	"visibility/internal/harness"
)

func run(t *testing.T, app apps.Builder, name, algorithm string, dcr bool, nodes int) *harness.Result {
	t.Helper()
	r, err := harness.Run(harness.Config{
		App: app, AppName: name, Algorithm: algorithm, DCR: dcr,
		Nodes: nodes, MeasureIters: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunProducesSaneNumbers(t *testing.T) {
	for _, tc := range []struct {
		name string
		app  apps.Builder
		unit string
	}{
		{"stencil", stencil.New, "points"},
		{"circuit", circuit.New, "wires"},
		{"pennant", pennant.New, "zones"},
	} {
		r := run(t, tc.app, tc.name, "raycast", true, 4)
		if r.InitTime <= 0 || r.IterTime <= 0 || r.ThroughputPerNode <= 0 {
			t.Errorf("%s: non-positive measurements: %+v", tc.name, r)
		}
		if r.UnitName != tc.unit {
			t.Errorf("%s: unit = %q, want %q", tc.name, r.UnitName, tc.unit)
		}
		if r.Launches == 0 || r.Stats.Launches == 0 {
			t.Errorf("%s: no launches recorded", tc.name)
		}
		if r.System != "raycast_dcr" {
			t.Errorf("%s: system = %q", tc.name, r.System)
		}
	}
}

func TestUnknownAlgorithmFails(t *testing.T) {
	_, err := harness.Run(harness.Config{App: stencil.New, AppName: "stencil", Algorithm: "zbuffer", Nodes: 1})
	if err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
	_, err = harness.Run(harness.Config{App: stencil.New, AppName: "stencil", Algorithm: "raycast", Nodes: 0})
	if err == nil {
		t.Fatal("expected error for zero nodes")
	}
}

// TestPaperShapesSmall asserts the headline qualitative results of §8 at a
// small scale: with DCR, ray casting beats Warnock's algorithm on
// initialization; without DCR, the painter's algorithm has the worst
// steady-state throughput at scale.
func TestPaperShapesSmall(t *testing.T) {
	nodes := 32
	rcInit := run(t, circuit.New, "circuit", "raycast", true, nodes).InitTime
	waInit := run(t, circuit.New, "circuit", "warnock", true, nodes).InitTime
	if rcInit >= waInit {
		t.Errorf("raycast init (%v) should beat warnock init (%v) at %d nodes", rcInit, waInit, nodes)
	}

	nodes = 128
	rc := run(t, circuit.New, "circuit", "raycast", false, nodes).ThroughputPerNode
	pa := run(t, circuit.New, "circuit", "paint", false, nodes).ThroughputPerNode
	if pa >= rc {
		t.Errorf("painter throughput (%v) should trail raycast (%v) at %d nodes", pa, rc, nodes)
	}

	// DCR must help ray casting at scale.
	dcr := run(t, circuit.New, "circuit", "raycast", true, nodes).ThroughputPerNode
	if dcr <= rc {
		t.Errorf("DCR throughput (%v) should beat no-DCR (%v)", dcr, rc)
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, circuit.New, "circuit", "warnock", true, 8)
	b := run(t, circuit.New, "circuit", "warnock", true, 8)
	if a.InitTime != b.InitTime || a.IterTime != b.IterTime {
		t.Errorf("simulation is not deterministic: %+v vs %+v", a, b)
	}
}

func TestSweepAndFormats(t *testing.T) {
	results, err := harness.Sweep(stencil.New, "stencil", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 5 configurations × 3 node counts (1, 2, 4).
	if len(results) != 15 {
		t.Fatalf("sweep produced %d results, want 15", len(results))
	}

	var tsv strings.Builder
	if err := harness.WriteTSV(&tsv, results, 2); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(tsv.String()), "\n")
	if len(lines) != 1+15*2 {
		t.Errorf("TSV rows = %d, want %d", len(lines), 1+30)
	}
	if !strings.HasPrefix(lines[0], "system\tnodes\tprocs_per_node\trep\tinit_time\telapsed_time") {
		t.Errorf("TSV header wrong: %q", lines[0])
	}
	if !strings.Contains(tsv.String(), "raycast_dcr\t2\t1\t1\t") {
		t.Error("TSV missing expected row")
	}

	var fig strings.Builder
	if err := harness.WriteFigure(&fig, results, "weak"); err != nil {
		t.Fatal(err)
	}
	out := fig.String()
	for _, want := range []string{"throughput per node (points/s)", "raycast,dcr", "paint,nodcr"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
	var figInit strings.Builder
	if err := harness.WriteFigure(&figInit, results, "init"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(figInit.String(), "init time (s)") {
		t.Error("init figure missing label")
	}
}

func TestNodeSweep(t *testing.T) {
	got := harness.NodeSweep(512)
	want := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	if len(got) != len(want) {
		t.Fatalf("NodeSweep = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NodeSweep = %v", got)
		}
	}
}

func TestSystemName(t *testing.T) {
	if harness.SystemName("raycast", true) != "raycast_dcr" {
		t.Error("dcr name wrong")
	}
	if harness.SystemName("paint", false) != "paint_nodcr" {
		t.Error("nodcr name wrong")
	}
}

// TestTracingRecoversThroughput verifies the §8 caveat quantitatively:
// with tracing enabled, even the no-DCR configuration recovers most of its
// throughput at a scale where untraced analysis is the bottleneck.
func TestTracingRecoversThroughput(t *testing.T) {
	nodes := 128
	untraced := run(t, circuit.New, "circuit", "raycast", false, nodes)
	traced, err := harness.Run(harness.Config{
		App: circuit.New, AppName: "circuit", Algorithm: "raycast",
		DCR: false, Nodes: nodes, MeasureIters: 2, Tracing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if traced.System != "raycast_nodcr_trace" {
		t.Errorf("system = %q", traced.System)
	}
	if traced.ThroughputPerNode < 2*untraced.ThroughputPerNode {
		t.Errorf("tracing should at least double no-DCR throughput at %d nodes: traced=%v untraced=%v",
			nodes, traced.ThroughputPerNode, untraced.ThroughputPerNode)
	}
}

// TestAutoTraceRecoversThroughput checks that the automatic tracer —
// given no brackets at all — finds the iteration structure on its own
// and recovers the same steady-state regime explicit tracing does.
func TestAutoTraceRecoversThroughput(t *testing.T) {
	nodes := 128
	untraced := run(t, circuit.New, "circuit", "raycast", false, nodes)
	auto, err := harness.Run(harness.Config{
		App: circuit.New, AppName: "circuit", Algorithm: "raycast",
		DCR: false, Nodes: nodes, MeasureIters: 2, AutoTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if auto.System != "raycast_nodcr_auto" {
		t.Errorf("system = %q", auto.System)
	}
	if auto.Metrics["autotrace/candidates"] == 0 {
		t.Fatalf("no candidate detected: %v", auto.Metrics)
	}
	if auto.Metrics["trace/replayed"] == 0 {
		t.Fatal("no launches replayed in the timed window")
	}
	if auto.Metrics["trace/invalidations"] != 0 {
		t.Errorf("unexpected invalidations: %d", auto.Metrics["trace/invalidations"])
	}
	if auto.ThroughputPerNode < 2*untraced.ThroughputPerNode {
		t.Errorf("autotracing should at least double no-DCR throughput at %d nodes: auto=%v untraced=%v",
			nodes, auto.ThroughputPerNode, untraced.ThroughputPerNode)
	}
}

// TestAutoTraceMutualExclusion rejects a cell asking for both modes.
func TestAutoTraceMutualExclusion(t *testing.T) {
	_, err := harness.Run(harness.Config{
		App: stencil.New, AppName: "stencil", Algorithm: "raycast",
		Nodes: 1, Tracing: true, AutoTrace: true,
	})
	if err == nil {
		t.Fatal("Tracing+AutoTrace cell was accepted")
	}
}

// TestOwnerMappingBeatsRandom quantifies locality: the owner-computes
// mapping (the paper's) must beat a random mapping, which moves every
// piece's data across the network.
func TestOwnerMappingBeatsRandom(t *testing.T) {
	nodes := 16
	owner, err := harness.Run(harness.Config{
		App: stencil.New, AppName: "stencil", Algorithm: "raycast", DCR: true,
		Nodes: nodes, MeasureIters: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	random, err := harness.Run(harness.Config{
		App: stencil.New, AppName: "stencil", Algorithm: "raycast", DCR: true,
		Nodes: nodes, MeasureIters: 2, Mapper: dist.NewRandomMapper(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if random.ThroughputPerNode >= owner.ThroughputPerNode {
		t.Errorf("random mapping (%v) should not beat owner mapping (%v)",
			random.ThroughputPerNode, owner.ThroughputPerNode)
	}
	if random.MessageBytes <= owner.MessageBytes {
		t.Errorf("random mapping should move more bytes: %d vs %d",
			random.MessageBytes, owner.MessageBytes)
	}
}

// TestPennantFuturesFixesDtFunnel compares the two pennant variants: at
// scale, routing the global timestep through futures (as real PENNANT
// does) must outperform routing it through reductions on a single
// control element.
func TestPennantFuturesFixesDtFunnel(t *testing.T) {
	nodes := 256
	regionDT := run(t, pennant.New, "pennant", "raycast", true, nodes)
	futures, err := harness.Run(harness.Config{
		App: pennant.NewFutures, AppName: "pennant-futures",
		Algorithm: "raycast", DCR: true, Nodes: nodes, MeasureIters: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if futures.ThroughputPerNode <= regionDT.ThroughputPerNode {
		t.Errorf("futures dt (%v) should beat region dt (%v) at %d nodes",
			futures.ThroughputPerNode, regionDT.ThroughputPerNode, nodes)
	}
}

func TestWriteChart(t *testing.T) {
	results, err := harness.Sweep(stencil.New, "stencil", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"init", "weak"} {
		var b strings.Builder
		if err := harness.WriteChart(&b, results, metric); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		for _, want := range []string{"log-log", "R=raycast_dcr", "P=paint_nodcr", "nodes"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s chart missing %q:\n%s", metric, want, out)
			}
		}
		// Every node count appears on the axis.
		for _, n := range []string{"1", "2", "4"} {
			if !strings.Contains(out, n) {
				t.Errorf("%s chart missing node label %s", metric, n)
			}
		}
	}
	// Empty input is a no-op.
	var b strings.Builder
	if err := harness.WriteChart(&b, nil, "weak"); err != nil || b.Len() != 0 {
		t.Errorf("empty chart: err=%v out=%q", err, b.String())
	}
}

func TestUtilizationMetrics(t *testing.T) {
	r := run(t, circuit.New, "circuit", "raycast", true, 8)
	if r.ExecUtilization <= 0 || r.ExecUtilization > 1 {
		t.Errorf("ExecUtilization = %v", r.ExecUtilization)
	}
	if r.UtilUtilization <= 0 || r.UtilUtilization > 1 {
		t.Errorf("UtilUtilization = %v", r.UtilUtilization)
	}
	// Kernel work dominates analysis for raycast+DCR.
	if r.ExecUtilization < r.UtilUtilization {
		t.Errorf("expected exec-bound run: exec=%v util=%v", r.ExecUtilization, r.UtilUtilization)
	}
}

// TestRunRepsAggregates checks min-of-reps aggregation: the result
// carries Reps, its times are no worse than a single run's (the
// simulation is deterministic, so they are equal), and the metrics JSON
// records the repetition count instead of overwriting cells.
func TestRunRepsAggregates(t *testing.T) {
	cfg := harness.Config{
		App: stencil.New, AppName: "stencil", Algorithm: "raycast", DCR: true,
		Nodes: 2, MeasureIters: 2,
	}
	single, err := harness.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if single.Reps != 1 {
		t.Errorf("single run Reps = %d, want 1", single.Reps)
	}
	agg, err := harness.RunReps(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Reps != 3 {
		t.Errorf("aggregated Reps = %d, want 3", agg.Reps)
	}
	if agg.InitTime > single.InitTime || agg.IterTime > single.IterTime {
		t.Errorf("min-of-reps times worse than one run: init %v > %v or iter %v > %v",
			agg.InitTime, single.InitTime, agg.IterTime, single.IterTime)
	}
	if agg.InitTime != single.InitTime || agg.IterTime != single.IterTime {
		t.Errorf("deterministic sim: reps should agree, got init %v vs %v, iter %v vs %v",
			agg.InitTime, single.InitTime, agg.IterTime, single.IterTime)
	}

	var buf strings.Builder
	if err := harness.WriteMetricsJSON(&buf, []*harness.Result{agg}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"reps": 3`) {
		t.Errorf("metrics JSON missing reps field:\n%s", out)
	}
	// One aggregated cell, not one cell per rep.
	if got := strings.Count(out, `"system"`); got != 1 {
		t.Errorf("metrics JSON has %d cells, want 1 aggregated cell:\n%s", got, out)
	}

	// A zero-valued Reps (a Result built by hand) is reported as 1.
	buf.Reset()
	legacy := *single
	legacy.Reps = 0
	if err := harness.WriteMetricsJSON(&buf, []*harness.Result{&legacy}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"reps": 1`) {
		t.Errorf("legacy result did not default to reps 1:\n%s", buf.String())
	}
}

// TestSweepReps checks the reps-aware sweep returns aggregated cells in
// the same deterministic order as the plain sweep.
func TestSweepReps(t *testing.T) {
	plain, err := harness.SweepTraced(stencil.New, "stencil", 2, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	reps, err := harness.SweepReps(stencil.New, "stencil", 2, 1, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(reps) {
		t.Fatalf("sweep lengths differ: %d vs %d", len(plain), len(reps))
	}
	for i := range plain {
		if plain[i].System != reps[i].System || plain[i].Nodes != reps[i].Nodes {
			t.Errorf("cell %d order differs: %s/%d vs %s/%d",
				i, plain[i].System, plain[i].Nodes, reps[i].System, reps[i].Nodes)
		}
		if reps[i].Reps != 2 {
			t.Errorf("cell %d Reps = %d, want 2", i, reps[i].Reps)
		}
	}
}
