// Package harness runs the paper's experiments (§8): it instantiates a
// benchmark application at a machine size, drives one of the coherence
// algorithms over the simulated cluster with or without dynamic control
// replication, and measures the two quantities the paper plots for every
// application — initialization time (application start through the end of
// the first main-loop iteration, Figures 12-14) and steady-state weak
// scaling throughput per node (Figures 15-17). Output formats match the
// artifact's parse_results.py TSV.
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"visibility/internal/algo"
	"visibility/internal/apps"
	"visibility/internal/autotrace"
	"visibility/internal/cluster"
	"visibility/internal/core"
	"visibility/internal/dist"
	"visibility/internal/obs"
	"visibility/internal/obs/recorder"
	"visibility/internal/region"
	"visibility/internal/shard"
	"visibility/internal/trace"
)

// Config selects one experiment cell.
type Config struct {
	App       apps.Builder
	AppName   string
	Algorithm string // algo registry name
	DCR       bool
	Nodes     int
	// MeasureIters is the number of steady-state iterations timed after
	// the initialization iteration. Zero selects a default of 3.
	MeasureIters int
	// Tracing enables dynamic tracing (Lee et al. [15]): each steady-state
	// iteration is bracketed as a trace, so the first is recorded and the
	// rest replay memoized analysis. The paper disables tracing to measure
	// the coherence algorithms themselves (§8); enabling it here measures
	// how much of the steady-state gap tracing recovers.
	Tracing bool
	// AutoTrace enables automatic trace memoization (Yadav et al.): no
	// brackets are emitted at all — the runtime detects the repeating
	// iteration structure online and replays it. Two extra warm-up
	// iterations are excluded from the timed window (one for the detector
	// to see a full repetition, one to record), so the measured regime is
	// steady-state replay. Mutually exclusive with Tracing.
	AutoTrace bool
	// Shards, when positive, routes each node's analysis through the shard
	// layer with this many parallel shards (internal/shard): the region
	// tree is split into coordinate bands, analyzed concurrently, and the
	// per-band results are merged back into the sequential edge stream.
	// The cell's system name gains a "_shard<N>" suffix. Shards composes
	// with Tracing and AutoTrace (the trace layers wrap outside the shard
	// fan-out, so replayed launches skip it entirely).
	Shards int
	// Mapper overrides task placement (default: owner-computes, the
	// paper's mapping). Locality-oblivious mappers quantify how much the
	// implicit-communication machinery has to move.
	Mapper dist.Mapper
	// TraceOut, when non-nil, receives the cell's virtual-time schedule
	// as Chrome trace-event JSON after the run. The export contains only
	// virtual-time events, so identical configurations produce
	// byte-identical traces.
	TraceOut io.Writer
	// Spans, when non-nil, receives wall-clock analysis-phase spans.
	Spans *obs.Buffer
	// Recorder, when non-nil, journals coarse analyzer events into the
	// flight-recorder ring.
	Recorder *recorder.Recorder
}

// Result is one measured experiment cell.
type Result struct {
	System            string // e.g. "raycast_dcr", matching the artifact naming
	App               string
	Nodes             int
	InitTime          float64 // seconds, Figures 12-14
	IterTime          float64 // seconds per steady-state iteration
	ThroughputPerNode float64 // units/s/node, Figures 15-17
	UnitName          string
	Launches          int
	Stats             core.Stats
	Messages          int64
	MessageBytes      int64
	// ExecUtilization and UtilUtilization are the mean busy fractions of
	// the execution (GPU) and utility (analysis) processors over the run.
	ExecUtilization float64
	UtilUtilization float64
	// Reps is how many repetitions this result aggregates (min-of-reps,
	// see RunReps); 1 for a single Run.
	Reps int
	// Metrics is the cell's full registry snapshot: analyzer operation
	// counts, cluster message tallies, per-launch cost histograms, and
	// (when tracing) trace outcomes, all under hierarchical names.
	Metrics obs.Snapshot
}

// SystemName returns the artifact-style configuration name.
func SystemName(algorithm string, dcr bool) string {
	if dcr {
		return algorithm + "_dcr"
	}
	return algorithm + "_nodcr"
}

// TracedSystemName returns the configuration name with tracing noted.
func TracedSystemName(algorithm string, dcr, tracing bool) string {
	n := SystemName(algorithm, dcr)
	if tracing {
		n += "_trace"
	}
	return n
}

// AutoSystemName returns the configuration name for an automatically
// traced cell. The suffix is the only schema-visible difference between
// an autotraced cell and its untraced baseline.
func AutoSystemName(algorithm string, dcr bool) string {
	return SystemName(algorithm, dcr) + "_auto"
}

// ShardSystemName appends the sharded-analysis variant suffix to a
// configuration name: "_shard<N>". It composes after the trace suffixes,
// so a sharded autotraced cell reads "raycast_dcr_auto_shard4"; shards
// of zero returns the name unchanged.
func ShardSystemName(system string, shards int) string {
	if shards <= 0 {
		return system
	}
	return fmt.Sprintf("%s_shard%d", system, shards)
}

// Run executes one experiment cell.
func Run(cfg Config) (*Result, error) {
	newAn, err := algo.Lookup(cfg.Algorithm)
	if err != nil {
		return nil, err
	}
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("harness: invalid node count %d", cfg.Nodes)
	}
	iters := cfg.MeasureIters
	if iters == 0 {
		iters = 3
	}
	if cfg.Tracing && cfg.AutoTrace {
		return nil, fmt.Errorf("harness: Tracing and AutoTrace are mutually exclusive")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("harness: invalid shard count %d", cfg.Shards)
	}

	inst := cfg.App(cfg.Nodes)
	// One registry per cell: the machine, the driver, the analyzer, and
	// the tracer all publish into it, and the result carries one snapshot.
	reg := obs.NewRegistry()
	clusterCfg := cluster.DefaultConfig(cfg.Nodes)
	clusterCfg.Metrics = reg
	machine := cluster.New(clusterCfg)
	if cfg.TraceOut != nil {
		machine.EnableTracing()
	}
	owner := dist.OwnerByPartition(inst.Owned, cfg.Nodes)

	var tracer *trace.Tracer
	var auto *autotrace.Auto
	// The shard layer sits innermost (fan-out under the trace layers, so a
	// replayed launch skips it entirely); its worker goroutines are
	// released once the cell's measurements are done.
	newInner := dist.NewAnalyzerFunc(newAn)
	var openShards []*shard.Analyzer
	if cfg.Shards > 0 {
		newInner = func(tree *region.Tree, opts core.Options) core.Analyzer {
			sh := shard.New(tree, opts, cfg.Shards, shard.Factory(newAn))
			openShards = append(openShards, sh)
			return sh
		}
	}
	defer func() {
		for _, sh := range openShards {
			sh.Close()
		}
	}()
	buildAnalyzer := newInner
	if cfg.Tracing {
		buildAnalyzer = func(tree *region.Tree, opts core.Options) core.Analyzer {
			tracer = trace.New(newInner(tree, opts), opts)
			return tracer
		}
	}
	if cfg.AutoTrace {
		buildAnalyzer = func(tree *region.Tree, opts core.Options) core.Analyzer {
			auto = autotrace.New(newInner(tree, opts), opts)
			return auto
		}
	}
	distCfg := dist.DefaultConfig(cfg.DCR)
	distCfg.Metrics = reg
	distCfg.Spans = cfg.Spans
	distCfg.Recorder = cfg.Recorder
	driver := dist.New(machine, inst.Tree, buildAnalyzer, owner, distCfg)
	stream := core.NewStream(inst.Tree)

	mapper := cfg.Mapper
	if mapper == nil {
		mapper = dist.OwnerMapper{}
	}
	launches := 0
	emit := func(iter int) {
		if tracer != nil && iter > 0 {
			tracer.Begin(0)
			defer tracer.End()
		}
		for _, l := range inst.Emit(stream, iter) {
			driver.Launch(l.Task, mapper.Place(l.Task, l.Node, cfg.Nodes), l.Duration)
			launches++
		}
	}

	// Initialization phase: application setup plus everything through the
	// end of the first main-loop iteration (§8).
	if inst.EmitInit != nil {
		for _, l := range inst.EmitInit(stream) {
			driver.Launch(l.Task, mapper.Place(l.Task, l.Node, cfg.Nodes), l.Duration)
			launches++
		}
	}
	emit(0)
	initTime := driver.Barrier()

	// Steady state. With tracing, the first steady iteration records and
	// is excluded from the timed window so the replayed regime is what is
	// measured (Legion measures traced steady state the same way). With
	// automatic tracing there are two excluded iterations: the detector
	// commits a candidate once it has seen two full repetitions (iteration
	// 0 and the first warm-up), and the second warm-up records.
	warm := 0
	if tracer != nil {
		warm = 1
	}
	if auto != nil {
		warm = 2
	}
	for k := 0; k < warm; k++ {
		emit(1 + k)
	}
	if warm > 0 {
		initTime = driver.Barrier()
	}
	first := 1 + warm
	for k := 0; k < iters; k++ {
		emit(first + k)
	}
	total := driver.Barrier()
	iterTime := (total - initTime) / float64(iters)

	msgs, bytes := machine.Messages()
	var execBusy, utilBusy float64
	for n := 0; n < cfg.Nodes; n++ {
		execBusy += machine.NodeBusy(n)
		utilBusy += machine.UtilBusy(n)
	}
	if cfg.TraceOut != nil {
		tw := obs.NewTraceWriter()
		machine.ExportTrace(tw)
		if err := tw.Write(cfg.TraceOut); err != nil {
			return nil, fmt.Errorf("harness: writing trace: %w", err)
		}
	}
	span := total * float64(cfg.Nodes)
	system := TracedSystemName(cfg.Algorithm, cfg.DCR, cfg.Tracing)
	if cfg.AutoTrace {
		system = AutoSystemName(cfg.Algorithm, cfg.DCR)
	}
	system = ShardSystemName(system, cfg.Shards)
	return &Result{
		Reps:              1,
		System:            system,
		App:               cfg.AppName,
		Nodes:             cfg.Nodes,
		InitTime:          initTime,
		IterTime:          iterTime,
		ThroughputPerNode: inst.UnitsPerNode / iterTime,
		UnitName:          inst.UnitName,
		Launches:          launches,
		Stats:             *driver.Analyzer().Stats(),
		Messages:          msgs,
		MessageBytes:      bytes,
		ExecUtilization:   execBusy / span,
		UtilUtilization:   utilBusy / span,
		Metrics:           reg.Snapshot(),
	}, nil
}

// RunReps executes one experiment cell reps times and aggregates
// min-of-reps: the returned result carries the minimum init and
// per-iteration times observed across repetitions (and therefore the
// maximum throughput), the matching rep's metrics snapshot, and
// Reps=reps. The simulation itself is deterministic in virtual time, so
// repetitions mostly agree; the aggregation matters for the wall-clock
// measurements benchmark records layer on top, and it is the
// repetition discipline the paper's artifact uses (best of five).
func RunReps(cfg Config, reps int) (*Result, error) {
	if reps < 1 {
		reps = 1
	}
	var best *Result
	for i := 0; i < reps; i++ {
		r, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		if best == nil || r.IterTime < best.IterTime {
			if best != nil && r.InitTime > best.InitTime {
				r.InitTime = best.InitTime
			}
			best = r
		} else if r.InitTime < best.InitTime {
			best.InitTime = r.InitTime
		}
	}
	best.Reps = reps
	return best, nil
}

// WriteMetricsJSON writes one registry snapshot per experiment cell as an
// indented JSON array, in result order. Cells and keys are emitted
// deterministically, so identical runs are byte-identical. Each cell
// records how many repetitions it aggregates (see RunReps), so a
// min-of-reps artifact is distinguishable from a single run.
func WriteMetricsJSON(w io.Writer, results []*Result) error {
	type cell struct {
		System  string       `json:"system"`
		App     string       `json:"app"`
		Nodes   int          `json:"nodes"`
		Reps    int          `json:"reps"`
		Metrics obs.Snapshot `json:"metrics"`
	}
	cells := make([]cell, 0, len(results))
	for _, r := range results {
		reps := r.Reps
		if reps == 0 {
			reps = 1
		}
		cells = append(cells, cell{System: r.System, App: r.App, Nodes: r.Nodes, Reps: reps, Metrics: r.Metrics})
	}
	b, err := json.MarshalIndent(cells, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Figures maps application name to metric ("init" or "weak") to the
// paper figure that plots it — the shared source for visbench's figure
// headers and its -list inventory.
func Figures() map[string]map[string]string {
	return map[string]map[string]string{
		"stencil":         {"init": "Figure 12", "weak": "Figure 15"},
		"circuit":         {"init": "Figure 13", "weak": "Figure 16"},
		"pennant":         {"init": "Figure 14", "weak": "Figure 17"},
		"pennant-futures": {"init": "Figure 14 (futures dt)", "weak": "Figure 17 (futures dt)"},
	}
}

// PaperConfigs returns the five configurations of every figure in §8:
// ray casting and Warnock's algorithm each with and without DCR, and the
// painter's algorithm without DCR (its implementation predates a stable
// DCR, as the paper notes).
func PaperConfigs() []struct {
	Algorithm string
	DCR       bool
} {
	return []struct {
		Algorithm string
		DCR       bool
	}{
		{"raycast", true},
		{"raycast", false},
		{"warnock", true},
		{"warnock", false},
		{"paint", false},
	}
}

// NodeSweep returns the power-of-two node counts of the paper's plots up
// to max (1..512 on Piz Daint).
func NodeSweep(max int) []int {
	var out []int
	for n := 1; n <= max; n *= 2 {
		out = append(out, n)
	}
	return out
}

// Sweep runs all paper configurations for one app over a node sweep.
func Sweep(app apps.Builder, appName string, maxNodes, iters int) ([]*Result, error) {
	return SweepTraced(app, appName, maxNodes, iters, false)
}

// SweepTraced is Sweep with dynamic tracing optionally enabled for every
// configuration. Cells are independent simulations, so they run in
// parallel across the host's CPUs; results are returned in deterministic
// (configuration-major) order.
func SweepTraced(app apps.Builder, appName string, maxNodes, iters int, tracing bool) ([]*Result, error) {
	return SweepReps(app, appName, maxNodes, iters, 1, tracing)
}

// SweepReps is SweepTraced with each cell repeated reps times and
// aggregated min-of-reps (see RunReps) instead of measured once.
func SweepReps(app apps.Builder, appName string, maxNodes, iters, reps int, tracing bool) ([]*Result, error) {
	return sweepCells(app, appName, maxNodes, iters, reps, tracing, false)
}

// SweepAuto is SweepReps with automatic trace memoization enabled for
// every configuration (and explicit tracing off).
func SweepAuto(app apps.Builder, appName string, maxNodes, iters, reps int) ([]*Result, error) {
	return sweepCells(app, appName, maxNodes, iters, reps, false, true)
}

func sweepCells(app apps.Builder, appName string, maxNodes, iters, reps int, tracing, auto bool) ([]*Result, error) {
	var cells []Config
	for _, cfg := range PaperConfigs() {
		for _, n := range NodeSweep(maxNodes) {
			cells = append(cells, Config{
				App: app, AppName: appName,
				Algorithm: cfg.Algorithm, DCR: cfg.DCR,
				Nodes: n, MeasureIters: iters, Tracing: tracing, AutoTrace: auto,
			})
		}
	}
	out := make([]*Result, len(cells))
	errs := make([]error, len(cells))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cells) {
		workers = len(cells)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				out[i], errs[i] = RunReps(cells[i], reps)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WriteTSV writes results in the artifact's parse_results.py format:
// system, nodes, procs_per_node, rep, init_time, elapsed_time. The
// simulation is deterministic, so reps repeats identical rows the way the
// artifact's five repetitions appear for a stable run.
func WriteTSV(w io.Writer, results []*Result, reps int) error {
	if reps < 1 {
		reps = 1
	}
	if _, err := fmt.Fprintln(w, "system\tnodes\tprocs_per_node\trep\tinit_time\telapsed_time"); err != nil {
		return err
	}
	for _, r := range results {
		for rep := 0; rep < reps; rep++ {
			if _, err := fmt.Fprintf(w, "%s\t%d\t1\t%d\t%.6f\t%.6f\n",
				r.System, r.Nodes, rep, r.InitTime, r.IterTime); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteFigure writes one paper figure as aligned columns: one row per node
// count, one column per configuration. metric selects "init"
// (Figures 12-14) or "weak" (Figures 15-17).
func WriteFigure(w io.Writer, results []*Result, metric string) error {
	order := []string{
		"raycast_dcr", "raycast_nodcr", "warnock_dcr", "warnock_nodcr", "paint_nodcr",
		"raycast_dcr_trace", "raycast_nodcr_trace", "warnock_dcr_trace", "warnock_nodcr_trace", "paint_nodcr_trace",
		"raycast_dcr_auto", "raycast_nodcr_auto", "warnock_dcr_auto", "warnock_nodcr_auto", "paint_nodcr_auto",
	}
	byCell := make(map[string]map[int]*Result)
	nodesSet := make(map[int]bool)
	unit := ""
	for _, r := range results {
		if byCell[r.System] == nil {
			byCell[r.System] = make(map[int]*Result)
		}
		byCell[r.System][r.Nodes] = r
		nodesSet[r.Nodes] = true
		unit = r.UnitName
	}
	var nodes []int
	for n := 1; n <= 1<<20; n *= 2 {
		if nodesSet[n] {
			nodes = append(nodes, n)
		}
	}

	label := "init time (s)"
	if metric == "weak" {
		label = fmt.Sprintf("throughput per node (%s/s)", unit)
	}
	pw := &printer{w: w}
	pw.printf("# %s\n", label)
	pw.printf("%-7s", "nodes")
	for _, sys := range order {
		if byCell[sys] != nil {
			pw.printf(" %14s", strings.ReplaceAll(sys, "_", ","))
		}
	}
	pw.printf("\n")
	for _, n := range nodes {
		pw.printf("%-7d", n)
		for _, sys := range order {
			cell := byCell[sys]
			if cell == nil {
				continue
			}
			r, ok := cell[n]
			if !ok {
				pw.printf(" %14s", "-")
				continue
			}
			v := r.InitTime
			if metric == "weak" {
				v = r.ThroughputPerNode
			}
			pw.printf(" %14.4g", v)
		}
		pw.printf("\n")
	}
	return pw.err
}

// printer accumulates formatted output to an io.Writer, holding the first
// write error so report generators can check once at the end instead of
// after every line.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}
