package harness

import (
	"bytes"
	"fmt"
	"math/rand"

	"visibility/internal/algo"
	"visibility/internal/autotrace"
	"visibility/internal/cluster"
	"visibility/internal/core"
	"visibility/internal/data"
	"visibility/internal/dist"
	"visibility/internal/fault"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/index"
	"visibility/internal/obs/recorder"
	"visibility/internal/privilege"
	"visibility/internal/region"
	"visibility/internal/shard"
)

// ChaosConfig selects one chaos run: a workload seed, a fault plan, and
// the workload size. The workload seed and the plan's own seed are
// independent axes — the same task stream can be searched under many
// fault schedules and vice versa.
type ChaosConfig struct {
	// Seed drives the random region tree and task stream.
	Seed int64
	// Plan is the fault plan string (fault.Parse grammar). Empty selects
	// DefaultChaosPlan(Seed).
	Plan string
	// Tasks is the stream length (default 24).
	Tasks int
	// Nodes, when positive, adds a distributed leg: the stream is also
	// driven over a simulated cluster of this many nodes with the
	// transport fault sites armed, and the virtual makespan is reported.
	Nodes int
}

// ChaosReport is the outcome of one chaos run. Everything in it is a
// deterministic function of the config: replaying the same config yields
// a byte-identical Dump, which is what makes a failing seed's plan string
// a complete reproduction recipe.
type ChaosReport struct {
	Seed      int64
	Plan      string
	Tasks     int
	Analyzers []string
	// Fires counts injected faults per site on the session injector — the
	// plan's schedule exactly as written.
	Fires map[fault.Site]int64
	// AtomFires counts injected faults per site on the sharded legs'
	// private per-atom injectors, whose streams are deterministically
	// decorrelated from the session's (internal/shard). Their journal
	// entries appear in Dump alongside the session's, so Fires+AtomFires
	// is what reconciles against the dump's injection events.
	AtomFires map[fault.Site]int64
	// Events is the number of flight-recorder events journaled.
	Events int
	// Dump is the recorder window in VISFREC1 binary form, journaled on a
	// deterministic event-count clock.
	Dump []byte
	// AutoTrace summarizes the autotrace leg: a periodic stream driven
	// unbracketed through an autotraced analyzer under the same fault
	// plan, so trace.invalidate fires mid-replay and recovery is
	// value-checked against the sequential ground truth.
	AutoTrace autotrace.Stats
	// Makespan is the distributed leg's virtual completion time (0 when
	// Nodes is 0).
	Makespan float64
}

// DefaultChaosPlan is the mixed fault plan chaos runs use when none is
// given: every analyzer and transport site armed at low probability,
// seeded so distinct seeds explore distinct fault schedules.
func DefaultChaosPlan(seed int64) string {
	p := fault.Plan{Seed: seed, Rules: map[fault.Site]fault.Rule{
		fault.EqSplit:         {Prob: 0.10},
		fault.EqMigrate:       {Prob: 0.05},
		fault.CacheBypass:     {Prob: 0.25},
		fault.TraceInvalidate: {Prob: 0.10},
		fault.ShardStall:      {Prob: 0.10},
		fault.ShardMigrate:    {Prob: 0.05},
		fault.MsgDrop:         {Prob: 0.02},
		fault.MsgDelay:        {Prob: 0.05},
		fault.MsgDup:          {Prob: 0.05},
		fault.MsgReorder:      {Prob: 0.03},
	}}
	return p.String()
}

// RunChaos runs one randomized task stream through all four analyzers
// under an active fault plan, cross-checking every materialized value and
// dependence against the sequential ground truth (core.Verify), then —
// when cfg.Nodes is set — drives the same stream over a fault-injected
// simulated cluster. The report is returned even when verification fails,
// so a failing seed still yields its recorder dump for replay.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	if cfg.Tasks <= 0 {
		cfg.Tasks = 24
	}
	if cfg.Plan == "" {
		cfg.Plan = DefaultChaosPlan(cfg.Seed)
	}
	inj, err := fault.NewFromString(cfg.Plan)
	if err != nil {
		return nil, err
	}
	// The recorder clock counts events rather than reading wall time, so
	// identical runs journal identical timestamps and the dump is
	// byte-reproducible.
	var ticks int64
	rec := recorder.NewClock(1<<16, func() int64 { ticks++; return ticks })
	inj.SetRecorder(rec)

	rng := rand.New(rand.NewSource(cfg.Seed))
	tree := chaosTree(rng)
	stream := chaosStream(rng, tree, cfg.Tasks)

	report := &ChaosReport{Seed: cfg.Seed, Plan: cfg.Plan, Tasks: len(stream.Tasks), Analyzers: algo.Names()}
	// The sharded legs' atoms fire faults on private injectors whose
	// journal entries reach rec via tape replay; their counts are gathered
	// here so Fires+AtomFires reconciles with the dump's injection events.
	atomFires := make(map[fault.Site]int64)
	finish := func() {
		report.Fires = inj.Counts()
		report.AtomFires = atomFires
		report.Events = rec.Len()
		var buf bytes.Buffer
		_ = rec.Dump(&buf) // bytes.Buffer writes cannot fail
		report.Dump = buf.Bytes()
	}

	opts := core.Options{Faults: inj, Recorder: rec}
	var factories []core.Factory
	for _, name := range algo.Names() {
		newAn, _ := algo.Lookup(name)
		factories = append(factories, core.Factory{Name: name, New: func(tr *region.Tree) core.Analyzer { return newAn(tr, opts) }})
	}
	// Sharded legs: the same stream through the shard layer at two shard
	// counts, under the same injector. The outer shard.stall/shard.migrate
	// sites fire here, and every inner analyzer site fires per-atom on a
	// decorrelated stream; the crosscheck still demands byte-equality with
	// the sequential ground truth.
	newRaySharded, _ := algo.Lookup("raycast")
	var openShards []*shard.Analyzer
	for _, shards := range []int{2, 5} {
		shards := shards
		name := fmt.Sprintf("raycast+shard%d", shards)
		factories = append(factories, core.Factory{Name: name, New: func(tr *region.Tree) core.Analyzer {
			sh := shard.New(tr, opts, shards, shard.Factory(newRaySharded))
			openShards = append(openShards, sh)
			return sh
		}})
		report.Analyzers = append(report.Analyzers, name)
	}
	err = core.Verify(stream, chaosInit(tree), core.HashKernel{}, factories...)
	for _, sh := range openShards {
		for site, n := range sh.AtomFaultCounts() {
			atomFires[site] += n
		}
		sh.Close()
	}
	if err != nil {
		finish()
		return report, fmt.Errorf("chaos seed %d plan %q: %w", cfg.Seed, cfg.Plan, err)
	}

	// Autotrace leg: the random stream above never repeats, so traces
	// cannot form there. A separate periodic stream — one random body
	// repeated verbatim — is driven unbracketed through an autotraced
	// analyzer under the same injector, so an armed trace.invalidate site
	// fires mid-replay and every recovered value is still checked against
	// the sequential ground truth.
	loop := chaosLoopStream(rng, tree, 10)
	var auto *autotrace.Auto
	newRay, _ := algo.Lookup("raycast")
	autoFac := core.Factory{Name: "raycast+autotrace", New: func(tr *region.Tree) core.Analyzer {
		auto = autotrace.New(newRay(tr, opts), opts)
		return auto
	}}
	if err := core.Verify(loop, chaosInit(tree), core.HashKernel{}, autoFac); err != nil {
		finish()
		return report, fmt.Errorf("chaos seed %d plan %q (autotrace leg): %w", cfg.Seed, cfg.Plan, err)
	}
	report.AutoTrace = auto.AutoStats()

	if cfg.Nodes > 0 {
		mcfg := cluster.DefaultConfig(cfg.Nodes)
		mcfg.Faults = inj
		m := cluster.New(mcfg)
		newAn, _ := algo.Lookup("raycast")
		owner := func(s index.Space) int {
			if s.IsEmpty() {
				return 0
			}
			return int(s.Bounds().Lo.C[0]) % cfg.Nodes
		}
		dcfg := dist.DefaultConfig(true)
		dcfg.Recorder = rec
		dcfg.Faults = inj
		d := dist.New(m, tree, dist.NewAnalyzerFunc(newAn), owner, dcfg)
		for _, t := range stream.Tasks {
			d.Launch(t, t.ID%cfg.Nodes, 1e-6)
		}
		report.Makespan = m.Makespan()
	}

	finish()
	return report, nil
}

// ChaosTree exposes the chaos tree generator: a random region tree over
// a 1-D or 2-D root with a mix of disjoint and aliased partitions,
// possibly nested. Property suites (e.g. the shard-equivalence test)
// reuse it so their workload family matches the chaos harness's.
func ChaosTree(rng *rand.Rand) *region.Tree { return chaosTree(rng) }

// ChaosStream exposes the chaos stream generator: n random launches over
// random regions of tree with random privileges, honoring the §4
// same-task disjointness restriction.
func ChaosStream(rng *rand.Rand, tree *region.Tree, n int) *core.Stream {
	return chaosStream(rng, tree, n)
}

// ChaosInit exposes the chaos initial contents: a deterministic non-zero
// per-point value for every field.
func ChaosInit(tree *region.Tree) map[field.ID]*data.Store { return chaosInit(tree) }

// chaosInit fills every field with a deterministic per-point value, so
// coherence errors cannot hide behind zero contents.
func chaosInit(tree *region.Tree) map[field.ID]*data.Store {
	init := make(map[field.ID]*data.Store)
	for f := 0; f < tree.Fields.Len(); f++ {
		st := data.NewStore(tree.Root.Space.Dim())
		fv := float64(int64(f+1) * 1000)
		tree.Root.Space.Each(func(p geometry.Point) bool {
			st.Set(p, fv+float64(p.C[0])+2*float64(p.C[1]))
			return true
		})
		init[field.ID(f)] = st
	}
	return init
}

// chaosTree builds a random region tree over a 1-D or 2-D root with a mix
// of disjoint and aliased partitions, possibly nested — the same shape
// family the crosscheck suite searches, regenerated here so non-test code
// (visbench -chaos) can drive it.
func chaosTree(rng *rand.Rand) *region.Tree {
	fs := field.NewSpace()
	fs.Add("f0")
	fs.Add("f1")
	var root index.Space
	dim := 1 + rng.Intn(2)
	if dim == 1 {
		root = index.FromRect(geometry.R1(0, 23))
	} else {
		root = index.FromRect(geometry.R2(0, 0, 5, 3))
	}
	tree := region.NewTree("A", root, fs)

	nparts := 1 + rng.Intn(3)
	for pi := 0; pi < nparts; pi++ {
		npieces := 2 + rng.Intn(3)
		pieces := make([]index.Space, npieces)
		for i := range pieces {
			b := root.Bounds()
			r := geometry.Rect{Dim: dim}
			for a := 0; a < dim; a++ {
				span := b.Hi.C[a] - b.Lo.C[a] + 1
				lo := b.Lo.C[a] + rng.Int63n(span)
				hi := lo + rng.Int63n(span-(lo-b.Lo.C[a]))
				r.Lo.C[a], r.Hi.C[a] = lo, hi
			}
			pieces[i] = index.FromRect(r).Intersect(root)
		}
		p := tree.Root.Partition("Q", pieces)
		if rng.Intn(3) == 0 && len(p.Subregions) > 0 {
			sub := p.Subregions[rng.Intn(len(p.Subregions))]
			if !sub.Space.IsEmpty() && sub.Space.Volume() > 1 {
				a, b := sub.Space.SplitAt(sub.Space.Volume() / 2)
				sub.Partition("nested", []index.Space{a, b})
			}
		}
	}
	return tree
}

// chaosStream launches a random sequence of tasks over random regions of
// the tree with random privileges, honoring the §4 restriction that one
// task's requirements be disjoint unless both read or both reduce with
// the same operator.
func chaosStream(rng *rand.Rand, tree *region.Tree, n int) *core.Stream {
	var regions []*region.Region
	for i := 0; i < tree.NumRegions(); i++ {
		r := tree.Region(i)
		if !r.Space.IsEmpty() {
			regions = append(regions, r)
		}
	}
	ops := []privilege.ReduceOp{privilege.OpSum, privilege.OpMin, privilege.OpMax, privilege.OpProd}
	s := core.NewStream(tree)
	for i := 0; i < n; i++ {
		nreq := 1
		if rng.Intn(4) == 0 {
			nreq = 2
		}
		var reqs []core.Req
		for ri := 0; ri < nreq; ri++ {
			r := regions[rng.Intn(len(regions))]
			f := field.ID(rng.Intn(tree.Fields.Len()))
			var priv privilege.Privilege
			switch rng.Intn(4) {
			case 0:
				priv = privilege.Reads()
			case 1, 2:
				priv = privilege.Writes()
			default:
				priv = privilege.Reduces(ops[rng.Intn(len(ops))])
			}
			ok := true
			for _, prev := range reqs {
				if prev.Field != f {
					continue
				}
				compatible := (prev.Priv.IsRead() && priv.IsRead()) ||
					(prev.Priv.IsReduce() && priv.IsReduce() && prev.Priv.Op == priv.Op)
				if !compatible && prev.Region.Space.Overlaps(r.Space) {
					ok = false
					break
				}
			}
			if ok {
				reqs = append(reqs, core.Req{Region: r, Field: f, Priv: priv})
			}
		}
		if len(reqs) > 0 {
			s.Launch("rand", reqs...)
		}
	}
	return s
}

// chaosLoopStream builds the periodic stream the autotrace leg drives: a
// random body of launches repeated verbatim for iters iterations. The
// body opens with a whole-root write of every field so every later read
// sources from a producer at most one period back — the shape family the
// tracer's replayable() check accepts, which is what lets the armed
// trace.invalidate site actually reach a mid-replay state.
func chaosLoopStream(rng *rand.Rand, tree *region.Tree, iters int) *core.Stream {
	var regions []*region.Region
	for i := 0; i < tree.NumRegions(); i++ {
		r := tree.Region(i)
		if !r.Space.IsEmpty() {
			regions = append(regions, r)
		}
	}
	type launch struct {
		name string
		reqs []core.Req
	}
	head := launch{name: "loop_head"}
	for f := 0; f < tree.Fields.Len(); f++ {
		head.reqs = append(head.reqs, core.Req{Region: tree.Root, Field: field.ID(f), Priv: privilege.Writes()})
	}
	body := []launch{head}
	for i, n := 0, 2+rng.Intn(3); i < n; i++ {
		r := regions[rng.Intn(len(regions))]
		f := field.ID(rng.Intn(tree.Fields.Len()))
		priv := privilege.Writes()
		if rng.Intn(2) == 0 {
			priv = privilege.Reads()
		}
		body = append(body, launch{name: fmt.Sprintf("loop_%d", i), reqs: []core.Req{{Region: r, Field: f, Priv: priv}}})
	}
	s := core.NewStream(tree)
	for it := 0; it < iters; it++ {
		for _, l := range body {
			s.Launch(l.name, l.reqs...)
		}
	}
	return s
}
