package harness

import (
	"math/rand"
	"testing"

	"visibility/internal/algo"
	"visibility/internal/autotrace"
	"visibility/internal/core"
	"visibility/internal/region"
)

// TestChaosProvenanceCompleteness drives a chaos stream through every
// analyzer with provenance capture on and requires an EdgeReason for
// every reported dependence edge, consistent with the exact-interference
// ground truth: each region reason names a requirement pair that really
// interferes (core.ReqsInterfere) under the privileges it recorded. The
// same factories also pass core.Verify, so capture provably does not
// perturb the analysis.
func TestChaosProvenanceCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tree := chaosTree(rng)
	stream := chaosStream(rng, tree, 150)
	init := chaosInit(tree)

	for _, name := range algo.Names() {
		newAn, err := algo.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		prov := core.NewProvenance()
		an := newAn(tree, core.Options{Prov: prov})
		eng := core.NewEngine(tree, an, init)
		for _, task := range stream.Tasks {
			res := eng.Launch(task, core.HashKernel{})
			reasons := prov.Reasons(task.ID)
			for _, d := range core.DedupDeps(res.Deps) {
				if d == core.InitialTask {
					continue
				}
				var match *core.EdgeReason
				for i := range reasons {
					if reasons[i].Src == d {
						match = &reasons[i]
						break
					}
				}
				if match == nil {
					t.Fatalf("%s: task %d dep on %d has no EdgeReason (have %v)",
						name, task.ID, d, reasons)
				}
				if match.Kind != core.ReasonRegion {
					t.Fatalf("%s: task %d dep on %d: kind %v, want region", name, task.ID, d, match.Kind)
				}
				if match.Analyzer != name {
					t.Errorf("%s: task %d dep on %d credited to analyzer %q", name, task.ID, d, match.Analyzer)
				}
				src := stream.Tasks[d]
				if match.SrcReq < 0 || match.SrcReq >= len(src.Reqs) ||
					match.DstReq < 0 || match.DstReq >= len(task.Reqs) {
					t.Fatalf("%s: task %d dep on %d: req indices %d/%d out of range",
						name, task.ID, d, match.SrcReq, match.DstReq)
				}
				sreq, dreq := src.Reqs[match.SrcReq], task.Reqs[match.DstReq]
				if !core.ReqsInterfere(sreq, dreq) {
					t.Fatalf("%s: task %d dep on %d: recorded req pair %d/%d does not interfere (%v vs %v)",
						name, task.ID, d, match.SrcReq, match.DstReq, sreq, dreq)
				}
				if !match.SrcPriv.Same(sreq.Priv) || !match.DstPriv.Same(dreq.Priv) {
					t.Errorf("%s: task %d dep on %d: recorded privileges %v/%v, req privileges %v/%v",
						name, task.ID, d, match.SrcPriv, match.DstPriv, sreq.Priv, dreq.Priv)
				}
				if match.Field != dreq.Field {
					t.Errorf("%s: task %d dep on %d: recorded field %d, req field %d",
						name, task.ID, d, match.Field, dreq.Field)
				}
			}
		}
	}

	// The captured analyzers still pass the full coherence + soundness
	// gate: provenance is observation, not behavior.
	var factories []core.Factory
	for _, name := range algo.Names() {
		newAn, _ := algo.Lookup(name)
		factories = append(factories, core.Factory{Name: name, New: func(tr *region.Tree) core.Analyzer {
			return newAn(tr, core.Options{Prov: core.NewProvenance()})
		}})
	}
	if err := core.Verify(stream, init, core.HashKernel{}, factories...); err != nil {
		t.Fatalf("Verify with provenance enabled: %v", err)
	}
}

// TestChaosProvenanceReplay drives a periodic stream through an
// autotraced analyzer with capture on: replayed instances bypass the
// analyzer, so their edges must carry replay reasons naming the
// committed trace, while analyzed instances keep region reasons.
func TestChaosProvenanceReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tree := chaosTree(rng)
	loop := chaosLoopStream(rng, tree, 10)
	init := chaosInit(tree)

	prov := core.NewProvenance()
	opts := core.Options{Prov: prov}
	newRay, _ := algo.Lookup("raycast")
	auto := autotrace.New(newRay(tree, opts), opts)
	eng := core.NewEngine(tree, auto, init)

	replayEdges := 0
	for _, task := range loop.Tasks {
		res := eng.Launch(task, core.HashKernel{})
		reasons := prov.Reasons(task.ID)
		for _, d := range core.DedupDeps(res.Deps) {
			if d == core.InitialTask {
				continue
			}
			found := false
			for _, r := range reasons {
				if r.Src != d {
					continue
				}
				found = true
				switch r.Kind {
				case core.ReasonReplay:
					replayEdges++
					if r.Trace < 0 {
						t.Fatalf("task %d dep on %d: replay reason without a trace id", task.ID, d)
					}
				case core.ReasonRegion:
					// analyzed instance: fine
				default:
					t.Fatalf("task %d dep on %d: unexpected reason kind %v", task.ID, d, r.Kind)
				}
			}
			if !found {
				t.Fatalf("task %d dep on %d has no EdgeReason under autotrace", task.ID, d)
			}
		}
	}
	if auto.AutoStats().Trace.Replayed == 0 {
		t.Fatal("autotrace never replayed; the replay leg tested nothing")
	}
	if replayEdges == 0 {
		t.Fatal("no replay-provenance edges captured despite replays")
	}
}
