package harness

import (
	"bytes"
	"sync"
	"testing"

	"visibility/internal/fault"
	"visibility/internal/obs/recorder"
)

// TestChaosReplayDeterministic is the replay property at the heart of the
// fault plane: the same (workload seed, plan) pair must journal the
// identical recorder dump byte for byte, including the distributed leg,
// so a failing seed's plan string is a complete reproduction recipe. Runs
// pairs concurrently so -race additionally checks the runs share nothing.
func TestChaosReplayDeterministic(t *testing.T) {
	seeds := []int64{1, 2, 3, 7, 1001}
	if testing.Short() {
		seeds = seeds[:3]
	}
	var wg sync.WaitGroup
	for _, seed := range seeds {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := ChaosConfig{Seed: seed, Nodes: 4}
			a, err := RunChaos(cfg)
			if err != nil {
				t.Errorf("seed %d: %v", seed, err)
				return
			}
			b, err := RunChaos(cfg)
			if err != nil {
				t.Errorf("seed %d replay: %v", seed, err)
				return
			}
			if !bytes.Equal(a.Dump, b.Dump) {
				t.Errorf("seed %d: replay dump differs (%d vs %d bytes)", seed, len(a.Dump), len(b.Dump))
				return
			}
			if a.Makespan != b.Makespan {
				t.Errorf("seed %d: replay makespan differs (%g vs %g)", seed, a.Makespan, b.Makespan)
			}
			// The dump must parse back (VISFREC1 round trip) and every
			// journaled injection must name a cataloged site, so dumps are
			// interpretable post mortem.
			events, dropped, err := recorder.ReadDump(bytes.NewReader(a.Dump))
			if err != nil {
				t.Errorf("seed %d: reading dump: %v", seed, err)
				return
			}
			if dropped != 0 || len(events) != a.Events {
				t.Errorf("seed %d: dump holds %d events (%d dropped), report says %d", seed, len(events), dropped, a.Events)
			}
			var injected int64
			for _, e := range events {
				if e.Kind == recorder.KindFaultInject {
					injected++
					if site := fault.SiteAt(int(e.A)); site.Index() < 0 {
						t.Errorf("seed %d: dump names unknown fault site index %d", seed, e.A)
					}
				}
			}
			// Session fires journal directly; the sharded legs' per-atom
			// fires journal via tape replay. Together they must account
			// for every injection event in the dump.
			var fires int64
			for _, n := range a.Fires {
				fires += n
			}
			for _, n := range a.AtomFires {
				fires += n
			}
			if injected != fires {
				t.Errorf("seed %d: %d KindFaultInject events vs %d reported fires", seed, injected, fires)
			}
		}()
	}
	wg.Wait()
}

// TestChaosPlanSensitivity checks the plan actually steers the run: a
// different plan seed over the same workload must change the fault
// schedule (otherwise the plan string is not the reproduction recipe it
// claims to be).
func TestChaosPlanSensitivity(t *testing.T) {
	a, err := RunChaos(ChaosConfig{Seed: 1, Plan: DefaultChaosPlan(10), Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(ChaosConfig{Seed: 1, Plan: DefaultChaosPlan(11), Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Dump, b.Dump) {
		t.Fatal("different plan seeds produced identical dumps")
	}
}

// TestChaosExplicitPlan pins the targeted-rule path: a plan with a single
// every= rule fires exactly its scheduled count.
func TestChaosExplicitPlan(t *testing.T) {
	r, err := RunChaos(ChaosConfig{Seed: 3, Plan: "seed=9;analyzer.eqset.split=every=5,max=3", Tasks: 30})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Fires[fault.EqSplit]; got != 3 {
		t.Fatalf("EqSplit fired %d times, want 3 (max)", got)
	}
}

// TestChaosAutotraceInvalidationRecovery pins the autotrace leg: a plan
// arming only trace.invalidate forces replays to abort mid-instance, and
// the run's verification (inside RunChaos) proves the recovered values
// still match the sequential ground truth. The journal must carry the
// injection and the resulting invalidation.
func TestChaosAutotraceInvalidationRecovery(t *testing.T) {
	r, err := RunChaos(ChaosConfig{Seed: 5, Plan: "seed=5;trace.invalidate=every=3,max=2"})
	if err != nil {
		t.Fatalf("autotraced run diverged from ground truth: %v", err)
	}
	fires := r.Fires[fault.TraceInvalidate]
	if fires == 0 {
		t.Fatal("trace.invalidate never fired — replay was never reached")
	}
	at := r.AutoTrace
	if at.Aborts != fires || at.Trace.Invalidations != fires {
		t.Errorf("fires=%d but aborts=%d invalidations=%d, want all equal", fires, at.Aborts, at.Trace.Invalidations)
	}
	if at.Trace.Replayed == 0 {
		t.Error("no launches replayed after recovery")
	}
	if at.Candidates < 2 {
		t.Errorf("candidates = %d, want re-detection after the abort", at.Candidates)
	}
	events, _, err := recorder.ReadDump(bytes.NewReader(r.Dump))
	if err != nil {
		t.Fatal(err)
	}
	var injected, invalidated int64
	for _, e := range events {
		switch e.Kind {
		case recorder.KindFaultInject:
			if fault.SiteAt(int(e.A)) == fault.TraceInvalidate {
				injected++
			}
		case recorder.KindTraceInvalidate:
			invalidated++
		}
	}
	if injected != fires || invalidated != fires {
		t.Errorf("journal has %d fault_inject + %d trace_invalidate for %d fires", injected, invalidated, fires)
	}
}

// TestChaosShardFaults pins the shard fault sites: a plan arming only
// shard.stall and shard.migrate fires both on the sharded legs, the runs
// still match the sequential ground truth (verified inside RunChaos),
// and replay from the plan string stays byte-identical — worker stalls
// and atom migrations are timing/placement-only and must never show
// through in the journal or the analysis.
func TestChaosShardFaults(t *testing.T) {
	cfg := ChaosConfig{Seed: 11, Plan: "seed=4;shard.stall=every=3;shard.migrate=every=4"}
	a, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("sharded run diverged from ground truth: %v", err)
	}
	if a.Fires[fault.ShardStall] == 0 {
		t.Fatal("shard.stall never fired")
	}
	if a.Fires[fault.ShardMigrate] == 0 {
		t.Fatal("shard.migrate never fired")
	}
	b, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Dump, b.Dump) {
		t.Fatalf("replay dump differs under shard faults (%d vs %d bytes)", len(a.Dump), len(b.Dump))
	}
}

// TestChaosRejectsBadPlan covers the error path callers (visbench -chaos)
// surface to users.
func TestChaosRejectsBadPlan(t *testing.T) {
	if _, err := RunChaos(ChaosConfig{Seed: 1, Plan: "seed=1;no.such.site=p=1"}); err == nil {
		t.Fatal("bad plan accepted")
	}
}
