package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WriteChart renders one figure as an ASCII chart (log-scale y, log-scale
// x over the node sweep), one letter per configuration — a terminal
// rendition of the paper's plots. metric is "init" or "weak".
func WriteChart(w io.Writer, results []*Result, metric string) error {
	type point struct {
		nodes int
		val   float64
	}
	series := make(map[string][]point)
	nodesSet := map[int]bool{}
	unit := ""
	for _, r := range results {
		v := r.InitTime
		if metric == "weak" {
			v = r.ThroughputPerNode
			unit = r.UnitName + "/s/node"
		} else {
			unit = "seconds"
		}
		if v <= 0 {
			continue
		}
		series[r.System] = append(series[r.System], point{r.Nodes, v})
		nodesSet[r.Nodes] = true
	}
	if len(series) == 0 {
		return nil
	}
	var nodes []int
	for n := range nodesSet {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)

	// One letter per system, stable order.
	legendOrder := []string{
		"raycast_dcr", "raycast_nodcr", "warnock_dcr", "warnock_nodcr", "paint_nodcr",
		"raycast_dcr_trace", "raycast_nodcr_trace", "warnock_dcr_trace", "warnock_nodcr_trace", "paint_nodcr_trace",
	}
	letters := "RrWwPRrWwP"
	sysLetter := map[string]byte{}
	legend := make([]string, 0, len(series))
	li := 0
	for _, sys := range legendOrder {
		if _, ok := series[sys]; !ok {
			continue
		}
		sysLetter[sys] = letters[li%len(letters)]
		legend = append(legend, fmt.Sprintf("%c=%s", letters[li%len(letters)], sys))
		li++
	}
	for sys := range series {
		if _, ok := sysLetter[sys]; !ok {
			sysLetter[sys] = '?'
			legend = append(legend, fmt.Sprintf("?=%s", sys))
		}
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, pts := range series {
		for _, p := range pts {
			lo = math.Min(lo, p.val)
			hi = math.Max(hi, p.val)
		}
	}
	if lo == hi {
		hi = lo * 1.01
	}
	logLo, logHi := math.Log10(lo), math.Log10(hi)

	const rows = 14
	colOf := map[int]int{}
	for i, n := range nodes {
		colOf[n] = i * 6
	}
	width := (len(nodes)-1)*6 + 1
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	rowOf := func(v float64) int {
		frac := (math.Log10(v) - logLo) / (logHi - logLo)
		r := int(math.Round(float64(rows-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= rows {
			r = rows - 1
		}
		return r
	}
	for sys, pts := range series {
		for _, p := range pts {
			r, c := rowOf(p.val), colOf[p.nodes]
			if grid[r][c] == ' ' {
				grid[r][c] = sysLetter[sys]
			} else if grid[r][c] != sysLetter[sys] {
				grid[r][c] = '*' // collision
			}
		}
	}

	pw := &printer{w: w}
	pw.printf("# %s (log-log; * = overlapping series)\n", unit)
	for r := 0; r < rows; r++ {
		frac := 1 - float64(r)/float64(rows-1)
		val := math.Pow(10, logLo+frac*(logHi-logLo))
		pw.printf("%10.3g |%s\n", val, string(grid[r]))
	}
	pw.printf("%10s +%s\n", "", strings.Repeat("-", width))
	var axis strings.Builder
	axis.WriteString(strings.Repeat(" ", 11))
	for i, n := range nodes {
		label := fmt.Sprint(n)
		pos := i*6 + 1
		for axis.Len() < 11+pos {
			axis.WriteByte(' ')
		}
		axis.WriteString(label)
	}
	pw.printf("%s\n", axis.String())
	pw.printf("%10s  nodes    %s\n", "", strings.Join(legend, "  "))
	return pw.err
}
