// Package shard parallelizes one session's dependence analysis across N
// shard goroutines — a single-session slice of Dynamic Control
// Replication (paper §8) — without giving up the byte-level determinism
// the sequential analyzers guarantee.
//
// The root index space is cut into N "atoms": contiguous coordinate
// bands along the highest axis (row-major order), intersected with the
// root space. Each atom carries a shadow region tree — the real tree
// with every region's space restricted to the atom — and its own
// instance of the inner analyzer, built by the same constructor the
// algorithm registry exposes. Atoms are assigned to shard goroutines by
// a stable FNV-1a hash of the atom's index-space key, so ownership is a
// pure function of the workload, not of scheduling.
//
// Each launch fans out: the submit goroutine restricts the task's
// requirements to every atom, dispatches the atoms with work to their
// owning shards, waits for all of them (a barrier), and merges. The
// merge is what makes the parallelism invisible:
//
//   - Dependences: each atom reports the tasks with a live interfering
//     history entry at some point of the atom. Liveness and interference
//     are per-point properties, so the union over a partition of the
//     space equals the sequential analyzer's answer exactly; DedupDeps
//     of the concatenation is byte-identical.
//
//   - Plans: per-atom plans are concatenated in atom order, never
//     coalesced. Entries from different atoms touch disjoint points, so
//     every point sees its visible updates in exactly the sequential
//     order. (Coalescing by producer would be unsound: a reduce entry
//     could migrate ahead of a later write that covers its points.)
//
//   - Instrumentation: workers journal recorder events, probe traffic,
//     and provenance into per-atom staging buffers, which the submit
//     goroutine replays in atom order after the barrier. Nothing
//     order-sensitive is written concurrently.
//
// Analysis-order-sensitive side channels (fault streams, equivalence-set
// identities) are decorrelated per atom: each atom gets its own fault
// injector seeded from the session plan and the atom index, so a fault
// campaign replays byte-identically for a fixed shard count.
//
// The shard layer is itself an analyzer, so it composes under the trace
// and autotrace wrappers (which then memoize the merged results) and
// sits above nothing: the inner analyzers never know they are sharded.
package shard

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"visibility/internal/core"
	"visibility/internal/fault"
	"visibility/internal/index"
	"visibility/internal/obs"
	"visibility/internal/obs/recorder"
	"visibility/internal/region"
)

// Factory constructs the inner analyzer an atom runs over its shadow
// tree — the same shape as the algorithm registry's constructors.
type Factory func(tree *region.Tree, opts core.Options) core.Analyzer

// maxStall bounds the delay the shard.stall fault site injects.
const maxStall = 200 * time.Microsecond

// probeOp is one staged Probe call.
type probeOp struct {
	kind  uint8 // 0 Touch, 1 Visit, 2 Fetch
	owner int
	token int64
	ops   int64
}

// stagingProbe buffers an atom's probe traffic during the parallel
// phase; the merge stage replays it into the real probe in atom order
// (the distributed cost model's probe is order-sensitive and not safe
// for concurrent use).
type stagingProbe struct {
	log []probeOp
}

func (p *stagingProbe) Touch(owner int, ops int64) {
	p.log = append(p.log, probeOp{kind: 0, owner: owner, ops: ops})
}

func (p *stagingProbe) Visit(ops int64) {
	p.log = append(p.log, probeOp{kind: 1, ops: ops})
}

func (p *stagingProbe) Fetch(owner int, token, ops int64) {
	p.log = append(p.log, probeOp{kind: 2, owner: owner, token: token, ops: ops})
}

func (p *stagingProbe) drain(dst core.Probe) {
	for _, op := range p.log {
		switch op.kind {
		case 0:
			dst.Touch(op.owner, op.ops)
		case 1:
			dst.Visit(op.ops)
		default:
			dst.Fetch(op.owner, op.token, op.ops)
		}
	}
	p.log = p.log[:0]
}

// atom is one disjoint slice of the analysis: a band of the root space,
// the shadow tree restricted to it, and the inner analyzer plus staging
// instrumentation that slice owns.
type atom struct {
	index int         // position in Analyzer.atoms; the merge order
	space index.Space // the atom's slice of the root space
	home  int         // owning shard; mutated only by shard.migrate on the submit goroutine

	tree     *region.Tree
	mirrored int // partitions of the real tree mirrored so far

	an    core.Analyzer
	tape  *recorder.Recorder // staging journal, drained at merge
	probe *stagingProbe
	prov  *core.Provenance // staging provenance; nil when provenance is off
	inj   *fault.Injector  // private fault injector; nil when faults are off
}

// job is one launch's work for one shard goroutine. tasks and results
// are shared across the launch's jobs but indexed by atom, and each slot
// is written by exactly one goroutine; the barrier publishes them back
// to the submit goroutine.
type job struct {
	atoms   []int
	tasks   []*core.Task
	results []*core.Result
	stall   time.Duration
	done    *sync.WaitGroup
}

// Analyzer is the sharded analysis layer. It implements core.Analyzer:
// Analyze fans one launch out across the shard goroutines and merges
// their results into exactly the stream the inner analyzer would have
// produced alone. Like every analyzer it is driven by one goroutine at
// a time; the parallelism inside each Analyze is invisible to callers.
type Analyzer struct {
	tree   *region.Tree
	opts   core.Options
	shards int
	serial bool // run every atom inline on the submit goroutine (see SetSerial)
	name   string
	atoms  []*atom

	inboxes []chan job
	workers sync.WaitGroup
	closed  bool

	launches int64
	stats    core.Stats // aggregate of the atom analyzers; rebuilt after each launch

	// Per-launch scratch, reused across launches: Analyze is
	// single-goroutine and the barrier ends every worker's use of these
	// before the next launch can start.
	scratchTasks   []*core.Task
	scratchResults []*core.Result
	scratchShards  [][]int

	cDispatch   *obs.Counter
	cAtomRuns   *obs.Counter
	cAtomSkips  *obs.Counter
	cStalls     *obs.Counter
	cMigrations *obs.Counter
}

// fnv1a hashes s with 64-bit FNV-1a.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// New builds a sharded analyzer over tree: shards parallel goroutines,
// each running its own inner analyzer (built by inner) over a disjoint
// slice of the space. shards < 1 is treated as 1. The returned analyzer
// owns goroutines; Close it when done (Analyze after Close panics).
func New(tree *region.Tree, opts core.Options, shards int, inner Factory) *Analyzer {
	if shards < 1 {
		shards = 1
	}
	opts = opts.Normalize()
	a := &Analyzer{
		tree:        tree,
		opts:        opts,
		shards:      shards,
		cDispatch:   opts.Metrics.NewCounter("shard/dispatches"),
		cAtomRuns:   opts.Metrics.NewCounter("shard/atom_runs"),
		cAtomSkips:  opts.Metrics.NewCounter("shard/atom_skips"),
		cStalls:     opts.Metrics.NewCounter("shard/stalls"),
		cMigrations: opts.Metrics.NewCounter("shard/migrations"),
	}
	for _, space := range bands(tree.Root.Space, shards) {
		at := &atom{
			index: len(a.atoms),
			space: space,
			home:  int(fnv1a(space.Key()) % uint64(shards)),
			tree:  region.NewTree(tree.Root.Name, space, tree.Fields),
			tape:  recorder.NewTape(),
			probe: &stagingProbe{},
		}
		if opts.Prov != nil {
			at.prov = core.NewProvenance()
		}
		var inj *fault.Injector
		if opts.Faults != nil {
			// Decorrelate the atoms' fault streams from each other and
			// from the session's, deterministically per atom.
			plan := opts.Faults.Plan()
			plan.Seed ^= int64(fnv1a(fmt.Sprintf("atom%d", at.index)))
			inj = fault.New(plan)
			inj.SetRecorder(at.tape)
			at.inj = inj
		}
		at.an = inner(at.tree, core.Options{
			Probe:    at.probe,
			Owner:    opts.Owner,
			Spans:    opts.Spans,
			Recorder: at.tape,
			Faults:   inj,
			Prov:     at.prov,
		})
		a.atoms = append(a.atoms, at)
	}
	a.name = a.atoms[0].an.Name() + fmt.Sprintf("+shard%d", shards)
	// On a single-P scheduler, dispatching to workers buys no
	// parallelism — every goroutine multiplexes onto one thread — so the
	// atoms run inline and the win is pure work splitting: each atom's
	// analyzer sees only its band's history and space.
	a.serial = runtime.GOMAXPROCS(0) == 1
	if shards > 1 {
		a.inboxes = make([]chan job, shards)
		for k := range a.inboxes {
			a.inboxes[k] = make(chan job, 1)
			a.workers.Add(1)
			go a.worker(k)
		}
	}
	return a
}

// SetSerial forces (true) or forbids (false) the inline-serial execution
// mode New picks automatically on single-P schedulers. Which goroutine
// runs an atom is invisible in every result and journal, so this is a
// scheduling knob only — tests use it to pin both paths regardless of
// the host. Call it between launches, like every other method here.
func (a *Analyzer) SetSerial(on bool) { a.serial = on }

// bands cuts space into at most n non-empty contiguous coordinate bands
// along the highest axis (so band order matches row-major point order).
// Degenerate spaces yield fewer bands — possibly one.
func bands(space index.Space, n int) []index.Space {
	out := make([]index.Space, 0, n)
	if space.IsEmpty() || n <= 1 {
		return append(out, space)
	}
	b := space.Bounds()
	ax := b.Dim - 1
	lo, hi := b.Lo.C[ax], b.Hi.C[ax]
	extent := hi - lo + 1
	for i := 0; i < n; i++ {
		blo := lo + extent*int64(i)/int64(n)
		bhi := lo + extent*int64(i+1)/int64(n) - 1
		if bhi < blo {
			continue
		}
		band := b
		band.Lo.C[ax], band.Hi.C[ax] = blo, bhi
		piece := space.Intersect(index.FromRect(band))
		if !piece.IsEmpty() {
			out = append(out, piece)
		}
	}
	return out
}

// Name implements core.Analyzer.
func (a *Analyzer) Name() string { return a.name }

// Stats implements core.Analyzer: the aggregate of the atom analyzers'
// counters, with Launches counting fanned-out launches once.
func (a *Analyzer) Stats() *core.Stats { return &a.stats }

// AtomFaultCounts sums injected-fault fires across the atoms' private
// injectors. These fires reach the session journal when each atom's tape
// is replayed at merge, but they never advance the session injector's
// own counters — callers reconciling journaled injections against fire
// totals (the chaos report) add them back with this. Call it only
// between launches, like every other method here.
func (a *Analyzer) AtomFaultCounts() map[fault.Site]int64 {
	out := make(map[fault.Site]int64)
	for _, at := range a.atoms {
		for site, n := range at.inj.Counts() {
			out[site] += n
		}
	}
	return out
}

// Atoms returns each atom's slice of the root space, in merge order
// (exposed for tests and debugging endpoints).
func (a *Analyzer) Atoms() []index.Space {
	out := make([]index.Space, len(a.atoms))
	for i, at := range a.atoms {
		out[i] = at.space
	}
	return out
}

// Shards returns the shard goroutine count.
func (a *Analyzer) Shards() int { return a.shards }

// Close shuts the shard goroutines down and waits for them. Idempotent;
// Analyze must not be called after Close.
func (a *Analyzer) Close() {
	if a.closed {
		return
	}
	a.closed = true
	for _, ch := range a.inboxes {
		close(ch)
	}
	a.workers.Wait()
}

// worker owns one shard goroutine: it drains its inbox and runs each
// handed atom's inner analyzer. All state it touches is either handed
// over through the job (the channel send happens-before the receive) or
// owned by the atoms assigned to it for that launch.
//
// confined to shard-worker
func (a *Analyzer) worker(k int) {
	defer a.workers.Done()
	cat := fmt.Sprintf("shard%d", k)
	for j := range a.inboxes[k] {
		sp := a.opts.Spans.Begin("shard.atoms", cat)
		if j.stall > 0 {
			time.Sleep(j.stall)
		}
		for _, ai := range j.atoms {
			at := a.atoms[ai]
			j.results[ai] = at.an.Analyze(j.tasks[ai])
		}
		sp.End()
		j.done.Done()
	}
}

// mirror brings every atom's shadow tree up to date with the real tree,
// replaying partitions in creation order with each piece intersected
// against the atom. Creation order is preserved, so shadow region and
// partition IDs equal the real ones and requirement regions translate
// by ID alone.
func (a *Analyzer) mirror() {
	for _, at := range a.atoms {
		for pi := at.mirrored; pi < a.tree.NumPartitions(); pi++ {
			p := a.tree.PartitionAt(pi)
			pieces := make([]index.Space, len(p.Subregions))
			for i, sub := range p.Subregions {
				pieces[i] = sub.Space.Intersect(at.space)
			}
			at.tree.Region(p.Parent.ID).Partition(p.Name, pieces)
		}
		at.mirrored = a.tree.NumPartitions()
	}
}

// restrict translates t into at's shadow tree. It returns nil when none
// of t's requirements overlap the atom — the atom's analyzer would
// observe an entirely empty launch, contributing nothing.
func (at *atom) restrict(t *core.Task) *core.Task {
	active := false
	for _, req := range t.Reqs {
		if !at.tree.Region(req.Region.ID).Space.IsEmpty() {
			active = true
			break
		}
	}
	if !active {
		return nil
	}
	reqs := make([]core.Req, len(t.Reqs))
	for ri, req := range t.Reqs {
		reqs[ri] = core.Req{Region: at.tree.Region(req.Region.ID), Field: req.Field, Priv: req.Priv}
	}
	return &core.Task{ID: t.ID, Name: t.Name, Reqs: reqs, FutureDeps: t.FutureDeps}
}

// Analyze implements core.Analyzer: restrict t to every atom, run the
// atoms with work on their owning shards, wait, and merge the per-atom
// results back into the sequential analyzer's exact output.
//
// confined to analyzer
func (a *Analyzer) Analyze(t *core.Task) *core.Result {
	sp := a.opts.Spans.Begin("shard.analyze", "analysis")
	defer sp.End()
	a.launches++
	a.mirror()

	// Fault sites, evaluated in program order on the submit goroutine
	// against the session injector (the atoms' private injectors handle
	// the analyzer-level sites).
	if fired, v := a.opts.Faults.FireValue(fault.ShardMigrate, int64(t.ID)); fired && a.shards > 1 {
		at := a.atoms[int(v%uint64(len(a.atoms)))]
		at.home = (at.home + 1 + int((v>>8)%uint64(a.shards-1))) % a.shards
		a.cMigrations.Inc()
	}
	var stall time.Duration
	stallShard := -1
	if fired, v := a.opts.Faults.FireValue(fault.ShardStall, int64(t.ID)); fired {
		stall = time.Duration(v%uint64(maxStall)) + 1
		stallShard = int((v >> 16) % uint64(a.shards))
		a.cStalls.Inc()
	}

	if a.scratchTasks == nil {
		a.scratchTasks = make([]*core.Task, len(a.atoms))
		a.scratchResults = make([]*core.Result, len(a.atoms))
		a.scratchShards = make([][]int, a.shards)
	}
	tasks, results, perShard := a.scratchTasks, a.scratchResults, a.scratchShards
	for i := range tasks {
		tasks[i], results[i] = nil, nil
	}
	for k := range perShard {
		perShard[k] = perShard[k][:0]
	}
	for ai, at := range a.atoms {
		rt := at.restrict(t)
		if rt == nil {
			a.cAtomSkips.Inc()
			continue
		}
		tasks[ai] = rt
		perShard[at.home] = append(perShard[at.home], ai)
		a.cAtomRuns.Inc()
	}

	if a.shards == 1 || a.serial {
		// Serial path (single shard, or a single-P scheduler): every
		// atom runs inline in atom order — no goroutine round trip, and
		// the work-splitting effect of the restricted trees is the whole
		// win. The first active atom homed on the stalled shard takes the
		// injected delay.
		stalled := stallShard < 0
		for ai, at := range a.atoms {
			if tasks[ai] == nil {
				continue
			}
			if !stalled && at.home == stallShard {
				time.Sleep(stall)
				stalled = true
			}
			results[ai] = at.an.Analyze(tasks[ai])
		}
	} else {
		// The lowest-indexed shard with work runs inline on the submit
		// goroutine while the rest run on their workers: a launch confined
		// to one shard's atoms pays no channel round trip at all, and a
		// fanned-out launch saves one dispatch and overlaps with the rest.
		// Which goroutine runs an atom never shows: every atom's state and
		// staging buffers are touched only by its runner, and the merge
		// below reads them after the barrier in atom order regardless.
		var done sync.WaitGroup
		inline := -1
		for k, ais := range perShard {
			if len(ais) == 0 {
				continue
			}
			if inline < 0 {
				inline = k
				continue
			}
			done.Add(1)
			j := job{atoms: ais, tasks: tasks, results: results, done: &done}
			if k == stallShard {
				j.stall = stall
			}
			a.inboxes[k] <- j
			a.cDispatch.Inc()
		}
		if inline >= 0 {
			if inline == stallShard {
				time.Sleep(stall)
			}
			for _, ai := range perShard[inline] {
				results[ai] = a.atoms[ai].an.Analyze(tasks[ai])
			}
		}
		done.Wait()
	}

	// Merge in atom order: concatenation only, so every point's entry
	// order — and every staged instrumentation stream — lands exactly
	// where the sequential analyzer would have put it.
	var deps []int
	plans := make([][]core.Visible, len(t.Reqs))
	for _, at := range a.atoms {
		res := results[at.index]
		if res != nil {
			deps = append(deps, res.Deps...)
			for ri := range plans {
				plans[ri] = append(plans[ri], res.Plans[ri]...)
			}
		}
		// Staged instrumentation replays even for skipped atoms: their
		// injectors and probes are idle, but draining unconditionally
		// keeps the merge oblivious to the skip decision.
		at.tape.Drain(func(e recorder.Event) {
			a.opts.Recorder.Log(e.Kind, e.A, e.B)
		})
		at.probe.drain(a.opts.Probe)
		if at.prov != nil {
			for _, r := range at.prov.TakeReasons(t.ID) {
				a.opts.Prov.AddReason(r)
			}
		}
	}

	a.stats = core.Stats{}
	for _, at := range a.atoms {
		a.stats.Add(at.an.Stats())
	}
	a.stats.Launches = a.launches

	return &core.Result{Deps: core.DedupDeps(deps), Plans: plans}
}

var _ core.Analyzer = (*Analyzer)(nil)
