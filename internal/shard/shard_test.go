package shard_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"visibility/internal/algo"
	"visibility/internal/core"
	"visibility/internal/data"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/harness"
	"visibility/internal/index"
	"visibility/internal/region"
	"visibility/internal/shard"
)

// digestStream runs stream through a raycast analyzer — sequential when
// shards == 0, sharded otherwise — with provenance capture on, and
// renders everything the shard layer promises to preserve byte-for-byte:
// the dependence edge stream, every materialized input value, and the
// canonical provenance of every edge.
func digestStream(t *testing.T, tree *region.Tree, stream *core.Stream, init map[field.ID]*data.Store, shards int) string {
	return digestStreamMode(t, tree, stream, init, shards, false)
}

// digestStreamMode is digestStream with the dispatch mode pinned:
// forceParallel routes every multi-shard launch through the worker
// goroutines even when the scheduler has a single P, so the race
// detector sees the channel handoff and merge barrier regardless of
// the machine the suite runs on.
func digestStreamMode(t *testing.T, tree *region.Tree, stream *core.Stream, init map[field.ID]*data.Store, shards int, forceParallel bool) string {
	t.Helper()
	newRay, err := algo.Lookup("raycast")
	if err != nil {
		t.Fatalf("lookup raycast: %v", err)
	}
	prov := core.NewProvenance()
	opts := core.Options{Prov: prov}
	var an core.Analyzer
	if shards == 0 {
		an = newRay(tree, opts)
	} else {
		sh := shard.New(tree, opts, shards, shard.Factory(newRay))
		if forceParallel {
			sh.SetSerial(false)
		}
		defer sh.Close()
		an = sh
	}
	eng := core.NewEngine(tree, an, init)
	eng.RecordInputs = true
	eng.StrictPlans = true

	var b strings.Builder
	for _, task := range stream.Tasks {
		res := eng.Launch(task, core.HashKernel{})
		fmt.Fprintf(&b, "task %d deps %v\n", task.ID, res.Deps)
		for _, r := range prov.Reasons(task.ID) {
			fmt.Fprintf(&b, "  reason %s overlap %v\n", r.String(), r.Overlap)
		}
		for ri, req := range task.Reqs {
			in := eng.Inputs[task.ID][ri]
			if in == nil {
				continue
			}
			fmt.Fprintf(&b, "  in %d:", ri)
			req.Region.Space.Each(func(p geometry.Point) bool {
				v, ok := in.Get(p)
				fmt.Fprintf(&b, " %v/%t", v, ok)
				return true
			})
			fmt.Fprintf(&b, "\n")
		}
	}
	return b.String()
}

func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  sequential: %s\n  sharded:    %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length: %d vs %d lines", len(al), len(bl))
}

// TestShardEquivalence is the shard layer's core property: for random
// region trees and task streams (the chaos harness's generators), every
// shard count from 1 to 8 produces a dependence edge stream, execution
// state, and provenance byte-identical to the sequential analyzer's.
func TestShardEquivalence(t *testing.T) {
	trials := 50
	if testing.Short() {
		trials = 10
	}
	const baseSeed = 90_000
	for trial := 0; trial < trials; trial++ {
		seed := int64(baseSeed + trial)
		rng := rand.New(rand.NewSource(seed))
		tree := harness.ChaosTree(rng)
		stream := harness.ChaosStream(rng, tree, 30)
		init := harness.ChaosInit(tree)
		want := digestStream(t, tree, stream, init, 0)
		for shards := 1; shards <= 8; shards++ {
			got := digestStream(t, tree, stream, init, shards)
			if got != want {
				t.Fatalf("shards=%d diverged from the sequential analyzer (workload seed %d)\n"+
					"repro: go test ./internal/shard -run TestShardEquivalence (trial %d = seed %d+%d)\nfirst divergence at %s",
					shards, seed, trial, baseSeed, trial, firstDiff(want, got))
			}
		}
	}
}

// TestShardParallelDispatch pins the parallel execution path: with
// serial-inline mode forced off, multi-shard launches fan out to worker
// goroutines through their inboxes and merge at the barrier, and the
// result must still be byte-identical to the sequential analyzer. On a
// single-P machine the shard layer would otherwise route everything
// through the inline path, leaving the worker handoff untested — this
// test (run under -race by the suite) keeps it honest everywhere.
func TestShardParallelDispatch(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 4
	}
	const baseSeed = 91_000
	for trial := 0; trial < trials; trial++ {
		seed := int64(baseSeed + trial)
		rng := rand.New(rand.NewSource(seed))
		tree := harness.ChaosTree(rng)
		stream := harness.ChaosStream(rng, tree, 30)
		init := harness.ChaosInit(tree)
		want := digestStream(t, tree, stream, init, 0)
		for _, shards := range []int{2, 4, 7} {
			got := digestStreamMode(t, tree, stream, init, shards, true)
			if got != want {
				t.Fatalf("shards=%d (parallel dispatch) diverged from the sequential analyzer (workload seed %d)\n"+
					"first divergence at %s", shards, seed, firstDiff(want, got))
			}
		}
	}
}

// TestShardVerify runs the sharded analyzer through the full crosscheck
// oracle: values against the sequential interpreter, dependence soundness
// against the exact O(n²) reference, strict plan invariants throughout.
func TestShardVerify(t *testing.T) {
	newRay, _ := algo.Lookup("raycast")
	for trial := 0; trial < 10; trial++ {
		seed := int64(77_000 + trial)
		rng := rand.New(rand.NewSource(seed))
		tree := harness.ChaosTree(rng)
		stream := harness.ChaosStream(rng, tree, 24)
		var open []*shard.Analyzer
		var factories []core.Factory
		for _, shards := range []int{1, 2, 3, 5, 8} {
			shards := shards
			factories = append(factories, core.Factory{
				Name: fmt.Sprintf("raycast+shard%d", shards),
				New: func(tr *region.Tree) core.Analyzer {
					sh := shard.New(tr, core.Options{}, shards, shard.Factory(newRay))
					open = append(open, sh)
					return sh
				},
			})
		}
		err := core.Verify(stream, harness.ChaosInit(tree), core.HashKernel{}, factories...)
		for _, sh := range open {
			sh.Close()
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestBands pins the atom decomposition: bands are non-empty, disjoint,
// cover the space, and follow row-major order along the highest axis.
func TestBands(t *testing.T) {
	spaces := []index.Space{
		index.FromRect(geometry.R1(0, 23)),
		index.FromRect(geometry.R2(0, 0, 5, 3)),
		index.FromRect(geometry.R1(3, 3)),
		index.FromPoints(1, geometry.Pt1(0), geometry.Pt1(9), geometry.Pt1(17)),
	}
	newRay, _ := algo.Lookup("raycast")
	for _, space := range spaces {
		for shards := 1; shards <= 6; shards++ {
			fs := field.NewSpace()
			fs.Add("f0")
			tree := region.NewTree("A", space, fs)
			sh := shard.New(tree, core.Options{}, shards, shard.Factory(newRay))
			atoms := sh.Atoms()
			sh.Close()
			if len(atoms) == 0 || len(atoms) > shards {
				t.Fatalf("space %v shards %d: %d atoms", space, shards, len(atoms))
			}
			union := index.Empty(space.Dim())
			for i, at := range atoms {
				if at.IsEmpty() {
					t.Fatalf("space %v shards %d: atom %d empty", space, shards, i)
				}
				if union.Overlaps(at) {
					t.Fatalf("space %v shards %d: atom %d overlaps earlier atoms", space, shards, i)
				}
				union = union.Union(at)
			}
			if !union.Equal(space) {
				t.Fatalf("space %v shards %d: atoms cover %v, want %v", space, shards, union, space)
			}
		}
	}
}

// TestShardName pins the composed analyzer name and its base.
func TestShardName(t *testing.T) {
	newRay, _ := algo.Lookup("raycast")
	fs := field.NewSpace()
	fs.Add("f0")
	tree := region.NewTree("A", index.FromRect(geometry.R1(0, 9)), fs)
	sh := shard.New(tree, core.Options{}, 4, shard.Factory(newRay))
	defer sh.Close()
	if sh.Name() != "raycast+shard4" {
		t.Fatalf("Name = %q", sh.Name())
	}
	if core.BaseName(sh.Name()) != "raycast" {
		t.Fatalf("BaseName = %q", core.BaseName(sh.Name()))
	}
	if sh.Shards() != 4 {
		t.Fatalf("Shards = %d", sh.Shards())
	}
}
