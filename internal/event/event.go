// Package event provides the low-level deferred-execution substrate the
// runtime is built on, modeled after Realm (Treichler et al., PACT'14),
// the event-based runtime beneath Legion: one-shot events, user-triggered
// events, event merging, and processors that run work once its
// preconditions have triggered.
package event

import (
	"sync"
	"sync/atomic"
)

// Event is a one-shot completion handle: it transitions from untriggered to
// triggered exactly once, and any number of goroutines may wait on it.
type Event struct {
	done chan struct{}
	once sync.Once
}

// NewUserEvent returns an untriggered event that the caller will trigger.
func NewUserEvent() *Event {
	return &Event{done: make(chan struct{})}
}

// Done returns an already-triggered event (the no-precondition event).
func Done() *Event {
	e := NewUserEvent()
	e.Trigger()
	return e
}

// Trigger fires the event. Triggering more than once is a no-op, matching
// Realm's idempotent event semantics.
func (e *Event) Trigger() {
	e.once.Do(func() { close(e.done) })
}

// Wait blocks until the event has triggered.
func (e *Event) Wait() { <-e.done }

// HasTriggered reports whether the event has triggered, without blocking.
func (e *Event) HasTriggered() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// Merge returns an event that triggers once all inputs have triggered.
// Merging nothing returns a triggered event.
func Merge(events ...*Event) *Event {
	pending := make([]*Event, 0, len(events))
	for _, e := range events {
		if e != nil && !e.HasTriggered() {
			pending = append(pending, e)
		}
	}
	if len(pending) == 0 {
		return Done()
	}
	out := NewUserEvent()
	var remaining atomic.Int64
	remaining.Store(int64(len(pending)))
	for _, e := range pending {
		e := e
		go func() {
			e.Wait()
			if remaining.Add(-1) == 0 {
				out.Trigger()
			}
		}()
	}
	return out
}

// Processor executes deferred work items in submission order on a single
// goroutine, the analog of a Realm processor. Work gated on untriggered
// preconditions does not block the processor pipeline: it is re-enqueued by
// a waiter goroutine when ready.
type Processor struct {
	queue chan work
	wg    sync.WaitGroup
	quit  chan struct{}
}

type work struct {
	// f is the deferred work body; it runs only on the processor
	// goroutine (w.f() in run), Spawn wraps it before the handoff.
	//
	// confined to event-proc
	f    func()
	done *Event
}

// NewProcessor starts a processor with the given queue depth.
func NewProcessor(depth int) *Processor {
	p := &Processor{queue: make(chan work, depth), quit: make(chan struct{})}
	p.wg.Add(1)
	go p.run()
	return p
}

// run is the processor loop; all queued work bodies execute here, in
// submission order.
//
// confined to event-proc
func (p *Processor) run() {
	defer p.wg.Done()
	for {
		select {
		case w := <-p.queue:
			w.f()
			w.done.Trigger()
		case <-p.quit:
			// Drain anything already queued, then exit.
			for {
				select {
				case w := <-p.queue:
					w.f()
					w.done.Trigger()
				default:
					return
				}
			}
		}
	}
}

// Spawn schedules f to run on the processor once pre has triggered and
// returns f's completion event. A nil pre means no precondition.
//
//confined:callbacks event-proc
func (p *Processor) Spawn(pre *Event, f func()) *Event {
	done := NewUserEvent()
	enqueue := func() { p.queue <- work{f: f, done: done} }
	if pre == nil || pre.HasTriggered() {
		enqueue()
	} else {
		go func() {
			pre.Wait()
			enqueue()
		}()
	}
	return done
}

// Shutdown stops the processor after finishing queued work. Spawning after
// Shutdown panics (send on closed channel is avoided by the quit check, so
// the panic surface is the internal queue; callers must stop spawning
// first).
func (p *Processor) Shutdown() {
	close(p.quit)
	p.wg.Wait()
}
