package event

import (
	"sync"
)

// Barrier is a phase barrier in the Realm style: it triggers once an
// expected number of arrivals have been recorded, and advances through
// generations so a repetitive computation can reuse one barrier per
// phase without re-plumbing events.
type Barrier struct {
	mu        sync.Mutex
	arrivals  int      // guarded by mu
	remaining int      // guarded by mu
	ev        *Event   // guarded by mu
	next      *Barrier // guarded by mu
}

// NewBarrier creates a barrier expecting the given number of arrivals per
// generation.
func NewBarrier(arrivals int) *Barrier {
	if arrivals < 1 {
		panic("event: barrier needs at least one arrival")
	}
	return &Barrier{arrivals: arrivals, remaining: arrivals, ev: NewUserEvent()}
}

// Arrive records count arrivals on this generation; the barrier's event
// triggers when the expected number have arrived. Over-arriving panics.
func (b *Barrier) Arrive(count int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if count < 1 {
		panic("event: arrival count must be positive")
	}
	if count > b.remaining {
		panic("event: too many arrivals on barrier generation")
	}
	b.remaining -= count
	if b.remaining == 0 {
		b.ev.Trigger()
	}
}

// Event returns the event that triggers when this generation completes.
func (b *Barrier) Event() *Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ev
}

// Advance returns the next generation of the barrier (creating it on
// first use); all callers advancing from the same generation observe the
// same next generation.
func (b *Barrier) Advance() *Barrier {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.next == nil {
		b.next = NewBarrier(b.arrivals)
	}
	return b.next
}

// Reservation provides deferred mutual exclusion in the Realm style:
// Acquire returns an event that triggers once the reservation is held
// (after an optional precondition), without blocking the caller. The
// holder must Release to pass the reservation on, in acquisition order.
type Reservation struct {
	token chan struct{}
}

// NewReservation creates an unheld reservation.
func NewReservation() *Reservation {
	r := &Reservation{token: make(chan struct{}, 1)}
	r.token <- struct{}{}
	return r
}

// Acquire requests the reservation once pre has triggered (nil means
// immediately) and returns an event that triggers when it is held.
func (r *Reservation) Acquire(pre *Event) *Event {
	granted := NewUserEvent()
	go func() {
		if pre != nil {
			pre.Wait()
		}
		<-r.token
		granted.Trigger()
	}()
	return granted
}

// Release passes the reservation to the next waiter. Releasing an unheld
// reservation panics.
func (r *Reservation) Release() {
	select {
	case r.token <- struct{}{}:
	default:
		panic("event: release of unheld reservation")
	}
}
