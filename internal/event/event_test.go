package event

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTriggerAndWait(t *testing.T) {
	e := NewUserEvent()
	if e.HasTriggered() {
		t.Fatal("new event already triggered")
	}
	go e.Trigger()
	e.Wait()
	if !e.HasTriggered() {
		t.Fatal("triggered event reports untriggered")
	}
	e.Trigger() // idempotent
}

func TestDone(t *testing.T) {
	if !Done().HasTriggered() {
		t.Fatal("Done() should be pre-triggered")
	}
}

func TestMergeAll(t *testing.T) {
	a, b, c := NewUserEvent(), NewUserEvent(), NewUserEvent()
	m := Merge(a, b, c)
	if m.HasTriggered() {
		t.Fatal("merge triggered early")
	}
	a.Trigger()
	b.Trigger()
	time.Sleep(time.Millisecond)
	if m.HasTriggered() {
		t.Fatal("merge triggered before all inputs")
	}
	c.Trigger()
	m.Wait()
}

func TestMergeEdgeCases(t *testing.T) {
	if !Merge().HasTriggered() {
		t.Error("empty merge should be triggered")
	}
	if !Merge(nil, Done(), nil).HasTriggered() {
		t.Error("merge of nil and done should be triggered")
	}
	e := NewUserEvent()
	m := Merge(e, nil, Done())
	if m.HasTriggered() {
		t.Error("merge with one pending input triggered early")
	}
	e.Trigger()
	m.Wait()
}

func TestProcessorOrdering(t *testing.T) {
	p := NewProcessor(16)
	defer p.Shutdown()
	var order []int
	var mu sync.Mutex
	var evs []*Event
	for i := 0; i < 10; i++ {
		i := i
		evs = append(evs, p.Spawn(nil, func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}))
	}
	for _, e := range evs {
		e.Wait()
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("processor ran out of order: %v", order)
		}
	}
}

func TestProcessorPrecondition(t *testing.T) {
	p := NewProcessor(4)
	defer p.Shutdown()
	pre := NewUserEvent()
	var ran atomic.Bool
	done := p.Spawn(pre, func() { ran.Store(true) })
	time.Sleep(2 * time.Millisecond)
	if ran.Load() {
		t.Fatal("work ran before precondition")
	}
	// The processor is not blocked by the gated work.
	other := p.Spawn(nil, func() {})
	other.Wait()
	pre.Trigger()
	done.Wait()
	if !ran.Load() {
		t.Fatal("work did not run after trigger")
	}
}

func TestProcessorParallelismAcrossProcessors(t *testing.T) {
	// Two processors can make progress concurrently: a rendezvous where
	// each side waits for the other would deadlock on one processor.
	p1, p2 := NewProcessor(4), NewProcessor(4)
	defer p1.Shutdown()
	defer p2.Shutdown()
	var wg sync.WaitGroup
	wg.Add(2)
	meet := func() {
		wg.Done()
		wg.Wait()
	}
	d1 := p1.Spawn(nil, meet)
	d2 := p2.Spawn(nil, meet)
	timeout := time.After(2 * time.Second)
	ok := make(chan struct{})
	go func() {
		d1.Wait()
		d2.Wait()
		close(ok)
	}()
	select {
	case <-ok:
	case <-timeout:
		t.Fatal("processors did not run concurrently")
	}
}
