package event

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBarrierTriggersOnFullArrival(t *testing.T) {
	b := NewBarrier(3)
	b.Arrive(1)
	b.Arrive(1)
	if b.Event().HasTriggered() {
		t.Fatal("barrier triggered early")
	}
	b.Arrive(1)
	b.Event().Wait()
}

func TestBarrierBulkArrive(t *testing.T) {
	b := NewBarrier(4)
	b.Arrive(4)
	if !b.Event().HasTriggered() {
		t.Fatal("bulk arrival should trigger")
	}
}

func TestBarrierGenerations(t *testing.T) {
	b := NewBarrier(2)
	g1a := b.Advance()
	g1b := b.Advance()
	if g1a != g1b {
		t.Fatal("Advance must return one shared next generation")
	}
	b.Arrive(2)
	if g1a.Event().HasTriggered() {
		t.Fatal("next generation triggered by previous generation's arrivals")
	}
	g1a.Arrive(2)
	g1a.Event().Wait()
}

func TestBarrierMisuse(t *testing.T) {
	for name, f := range map[string]func(){
		"zero arrivals": func() { NewBarrier(0) },
		"over-arrive":   func() { b := NewBarrier(1); b.Arrive(2) },
		"bad count":     func() { b := NewBarrier(1); b.Arrive(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBarrierConcurrentArrivals(t *testing.T) {
	n := 64
	b := NewBarrier(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Arrive(1)
		}()
	}
	wg.Wait()
	if !b.Event().HasTriggered() {
		t.Fatal("barrier did not trigger after all concurrent arrivals")
	}
}

func TestReservationMutualExclusion(t *testing.T) {
	r := NewReservation()
	var inside atomic.Int64
	var maxInside atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Acquire(nil).Wait()
			if v := inside.Add(1); v > maxInside.Load() {
				maxInside.Store(v)
			}
			time.Sleep(time.Microsecond)
			inside.Add(-1)
			r.Release()
		}()
	}
	wg.Wait()
	if maxInside.Load() != 1 {
		t.Fatalf("reservation admitted %d holders", maxInside.Load())
	}
}

func TestReservationWaitsForPrecondition(t *testing.T) {
	r := NewReservation()
	pre := NewUserEvent()
	granted := r.Acquire(pre)
	time.Sleep(time.Millisecond)
	if granted.HasTriggered() {
		t.Fatal("acquired before precondition")
	}
	pre.Trigger()
	granted.Wait()
	r.Release()
}

func TestReservationReleaseUnheldPanics(t *testing.T) {
	r := NewReservation()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.Release()
}
