// Package deppart implements dependent partitioning (Treichler et al.,
// OOPSLA'16, cited by the paper's §2 [25]): computing new partitions from
// existing ones through relations, instead of enumerating pieces by hand.
// This is how Legion applications derive ghost partitions — e.g. the ghost
// nodes of a circuit piece are the image of its wires under the
// wire→endpoint relation, minus the piece's own nodes.
//
// Relations are point-to-points functions. All operators work on index
// spaces; the region package's Partition constructor turns the results
// into region-tree partitions.
package deppart

import (
	"visibility/internal/geometry"
	"visibility/internal/index"
)

// Relation maps a point to related points (e.g. a wire to its endpoints,
// a cell to its stencil neighbors).
type Relation func(geometry.Point) []geometry.Point

// Image computes, for each source piece, the set of points its elements
// map to under rel, clipped to target. The result array is parallel to
// sources. (Legion's image operator.)
func Image(sources []index.Space, rel Relation, target index.Space, dim int) []index.Space {
	out := make([]index.Space, len(sources))
	for i, src := range sources {
		var pts []geometry.Point
		src.Each(func(p geometry.Point) bool {
			pts = append(pts, rel(p)...)
			return true
		})
		out[i] = index.FromPoints(dim, pts...).Intersect(target)
	}
	return out
}

// Preimage computes, for each target piece, the set of source points whose
// image intersects it. (Legion's preimage operator.)
func Preimage(source index.Space, rel Relation, targets []index.Space, dim int) []index.Space {
	out := make([]index.Space, len(targets))
	// Invert pointwise: for each source point, find the target pieces its
	// image touches.
	buckets := make([][]geometry.Point, len(targets))
	source.Each(func(p geometry.Point) bool {
		for _, q := range rel(p) {
			for ti, t := range targets {
				if t.Contains(q) {
					buckets[ti] = append(buckets[ti], p)
				}
			}
		}
		return true
	})
	for ti, pts := range buckets {
		out[ti] = index.FromPoints(dim, pts...)
	}
	return out
}

// ByColor partitions space into n pieces by a coloring function: piece i
// holds the points colored i. Points colored outside [0,n) are dropped
// (an incomplete partition). (Legion's partition-by-field.)
func ByColor(space index.Space, n int, color func(geometry.Point) int) []index.Space {
	buckets := make([][]geometry.Point, n)
	space.Each(func(p geometry.Point) bool {
		if c := color(p); c >= 0 && c < n {
			buckets[c] = append(buckets[c], p)
		}
		return true
	})
	out := make([]index.Space, n)
	for i, pts := range buckets {
		out[i] = index.FromPoints(space.Dim(), pts...)
	}
	return out
}

// Difference computes the pairwise difference of two parallel piece
// arrays: out[i] = a[i] \ b[i]. Used to strip a piece's own elements from
// its image when computing ghosts.
func Difference(a, b []index.Space) []index.Space {
	out := make([]index.Space, len(a))
	for i := range a {
		out[i] = a[i].Subtract(b[i])
	}
	return out
}

// Intersect computes the pairwise intersection of two parallel piece
// arrays.
func Intersect(a, b []index.Space) []index.Space {
	out := make([]index.Space, len(a))
	for i := range a {
		out[i] = a[i].Intersect(b[i])
	}
	return out
}

// Union computes the pairwise union of two parallel piece arrays.
func Union(a, b []index.Space) []index.Space {
	out := make([]index.Space, len(a))
	for i := range a {
		out[i] = a[i].Union(b[i])
	}
	return out
}
