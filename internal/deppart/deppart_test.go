package deppart

import (
	"math/rand"
	"testing"

	"visibility/internal/geometry"
	"visibility/internal/index"
)

// ringRel relates each node on a ring of n to its two neighbors.
func ringRel(n int64) Relation {
	return func(p geometry.Point) []geometry.Point {
		x := p.C[0]
		return []geometry.Point{
			geometry.Pt1((x - 1 + n) % n),
			geometry.Pt1((x + 1) % n),
		}
	}
}

func TestImageComputesGhosts(t *testing.T) {
	n := int64(12)
	root := index.FromRect(geometry.R1(0, n-1))
	pieces := []index.Space{
		index.FromRect(geometry.R1(0, 3)),
		index.FromRect(geometry.R1(4, 7)),
		index.FromRect(geometry.R1(8, 11)),
	}
	img := Image(pieces, ringRel(n), root, 1)
	// Image of piece 0 under the neighbor relation: {11,1} ∪ {0,2} ∪ ... =
	// {11, 0..4}.
	want := index.FromRects(1, geometry.R1(0, 4), geometry.R1(11, 11))
	if !img[0].Equal(want) {
		t.Errorf("image[0] = %v, want %v", img[0], want)
	}

	// Ghost partition: image minus the piece itself.
	ghosts := Difference(img, pieces)
	wantGhost := index.FromRects(1, geometry.R1(4, 4), geometry.R1(11, 11))
	if !ghosts[0].Equal(wantGhost) {
		t.Errorf("ghost[0] = %v, want %v", ghosts[0], wantGhost)
	}
	for i := range ghosts {
		if ghosts[i].Overlaps(pieces[i]) {
			t.Errorf("ghost %d overlaps its own piece", i)
		}
	}
}

func TestPreimageDuality(t *testing.T) {
	// x ∈ Preimage(t_i) ⇔ rel(x) ∩ t_i ≠ ∅, checked exhaustively against
	// a random relation.
	rng := rand.New(rand.NewSource(5))
	n := int64(20)
	src := index.FromRect(geometry.R1(0, n-1))
	targets := []index.Space{
		index.FromRect(geometry.R1(0, 9)),
		index.FromRects(1, geometry.R1(5, 12), geometry.R1(18, 19)),
	}
	table := make(map[geometry.Point][]geometry.Point)
	src.Each(func(p geometry.Point) bool {
		k := rng.Intn(3)
		for j := 0; j < k; j++ {
			table[p] = append(table[p], geometry.Pt1(rng.Int63n(n)))
		}
		return true
	})
	rel := func(p geometry.Point) []geometry.Point { return table[p] }

	pre := Preimage(src, rel, targets, 1)
	for ti, tgt := range targets {
		src.Each(func(p geometry.Point) bool {
			want := false
			for _, q := range rel(p) {
				if tgt.Contains(q) {
					want = true
				}
			}
			if got := pre[ti].Contains(p); got != want {
				t.Fatalf("preimage[%d] contains %v = %v, want %v", ti, p, got, want)
			}
			return true
		})
	}
}

func TestImagePreimageRoundTrip(t *testing.T) {
	// For any piece s and relation rel: s ⊆ Preimage(Image(s)).
	n := int64(16)
	root := index.FromRect(geometry.R1(0, n-1))
	pieces := []index.Space{
		index.FromRect(geometry.R1(2, 5)),
		index.FromRect(geometry.R1(9, 14)),
	}
	rel := ringRel(n)
	img := Image(pieces, rel, root, 1)
	for i, s := range pieces {
		pre := Preimage(root, rel, []index.Space{img[i]}, 1)
		if !pre[0].Covers(s) {
			t.Errorf("piece %d not covered by preimage of its image", i)
		}
	}
}

func TestByColor(t *testing.T) {
	space := index.FromRect(geometry.R1(0, 9))
	pieces := ByColor(space, 3, func(p geometry.Point) int {
		if p.C[0] == 9 {
			return -1 // uncolored
		}
		return int(p.C[0] % 3)
	})
	if pieces[0].Volume() != 3 || !pieces[0].Contains(geometry.Pt1(6)) {
		t.Errorf("color 0 = %v", pieces[0])
	}
	if pieces[2].Contains(geometry.Pt1(9)) {
		t.Error("uncolored point should be dropped")
	}
	// Colors partition the colored subset disjointly.
	for i := range pieces {
		for j := i + 1; j < len(pieces); j++ {
			if pieces[i].Overlaps(pieces[j]) {
				t.Errorf("colors %d and %d overlap", i, j)
			}
		}
	}
}

func TestSetOperators(t *testing.T) {
	a := []index.Space{index.FromRect(geometry.R1(0, 5)), index.FromRect(geometry.R1(10, 15))}
	b := []index.Space{index.FromRect(geometry.R1(3, 8)), index.FromRect(geometry.R1(14, 20))}
	inter := Intersect(a, b)
	if !inter[0].Equal(index.FromRect(geometry.R1(3, 5))) {
		t.Errorf("Intersect[0] = %v", inter[0])
	}
	uni := Union(a, b)
	if !uni[1].Equal(index.FromRect(geometry.R1(10, 20))) {
		t.Errorf("Union[1] = %v", uni[1])
	}
	diff := Difference(a, b)
	if !diff[0].Equal(index.FromRect(geometry.R1(0, 2))) {
		t.Errorf("Difference[0] = %v", diff[0])
	}
}

func TestImageClipsToTarget(t *testing.T) {
	// Relations may produce points outside the target region; Image clips.
	src := []index.Space{index.FromRect(geometry.R1(0, 3))}
	rel := func(p geometry.Point) []geometry.Point {
		return []geometry.Point{geometry.Pt1(p.C[0] + 100)}
	}
	img := Image(src, rel, index.FromRect(geometry.R1(0, 50)), 1)
	if !img[0].IsEmpty() {
		t.Errorf("out-of-target image should be empty, got %v", img[0])
	}
}
