package wire

import "fmt"

// ExampleQuickstart returns the quickstart example as a wire workload:
// four disjoint block writes, one overlapping window reduction — the
// minimal program whose dependences the analysis must discover. It is the
// canonical small payload for smoke tests and the fuzz corpus.
func ExampleQuickstart() *Workload {
	wl := &Workload{
		Version: Version,
		Name:    "quickstart",
		Regions: []RegionDecl{{
			Name:   "cells",
			Dim:    1,
			Space:  [][]int64{{0, 99}},
			Fields: []string{"val"},
			Partitions: []PartitionDecl{
				{Name: "blocks", Kind: "equal", Pieces: 4},
				{Name: "window", Kind: "explicit", Spaces: [][][]int64{{{30, 69}}}},
			},
		}},
	}
	for i := 0; i < 4; i++ {
		wl.Tasks = append(wl.Tasks, TaskDecl{
			Name: fmt.Sprintf("init[%d]", i),
			Accesses: []AccessDecl{{
				Region:    fmt.Sprintf("blocks[%d]", i),
				Field:     "val",
				Privilege: "write",
				Kernel:    &FuncSpec{Name: "coord", Args: map[string]float64{"axis": 0}},
			}},
		})
	}
	wl.Tasks = append(wl.Tasks, TaskDecl{
		Name: "bump",
		Accesses: []AccessDecl{{
			Region:    "window[0]",
			Field:     "val",
			Privilege: "reduce",
			Op:        "sum",
			Kernel:    &FuncSpec{Name: "fill", Args: map[string]float64{"value": 10}},
		}},
	})
	return wl
}

// ExampleGraphsim returns the paper's Figure 1 running example as a wire
// workload: a ring graph in three pieces with an aliased ghost partition
// derived by dependent partitioning (image under the width-4 neighbor
// relation, minus the primary), alternating t1/t2 launches that push
// sum-reductions into neighbor pieces for the given number of iterations.
func ExampleGraphsim(iterations int) *Workload {
	const (
		pieces = 3
		total  = 18
	)
	wl := &Workload{
		Version: Version,
		Name:    "graphsim",
		Regions: []RegionDecl{{
			Name:   "N",
			Dim:    1,
			Space:  [][]int64{{0, total - 1}},
			Fields: []string{"up", "down"},
			Init: map[string]*FuncSpec{
				"up": {Name: "coord", Args: map[string]float64{"axis": 0}},
			},
			Partitions: []PartitionDecl{
				{Name: "P", Kind: "equal", Pieces: pieces},
				{Name: "reach", Kind: "image", Source: "P",
					Relation: &FuncSpec{Name: "ring", Args: map[string]float64{"radius": 4, "modulo": total}}},
				{Name: "G", Kind: "minus", Left: "reach", Right: "P"},
			},
		}},
	}
	for iter := 0; iter < iterations; iter++ {
		for i := 0; i < pieces; i++ {
			wl.Tasks = append(wl.Tasks, TaskDecl{
				Name: "t1",
				Accesses: []AccessDecl{
					{Region: fmt.Sprintf("P[%d]", i), Field: "up", Privilege: "write",
						Kernel: &FuncSpec{Name: "affine", Args: map[string]float64{"scale": 0.5, "offset": 1}}},
					{Region: fmt.Sprintf("G[%d]", i), Field: "down", Privilege: "reduce", Op: "sum",
						Kernel: &FuncSpec{Name: "fill", Args: map[string]float64{"value": 0.25}}},
				},
			})
		}
		for i := 0; i < pieces; i++ {
			wl.Tasks = append(wl.Tasks, TaskDecl{
				Name: "t2",
				Accesses: []AccessDecl{
					{Region: fmt.Sprintf("P[%d]", i), Field: "down", Privilege: "write",
						Kernel: &FuncSpec{Name: "affine", Args: map[string]float64{"scale": 0.5, "offset": 0}}},
					{Region: fmt.Sprintf("G[%d]", i), Field: "up", Privilege: "reduce", Op: "sum",
						Kernel: &FuncSpec{Name: "fill", Args: map[string]float64{"value": 0.125}}},
				},
			})
		}
	}
	return wl
}
