// Package wire defines the versioned JSON wire format for complete
// visibility workloads: region and partition declarations (equal,
// explicit, image, preimage, by-color, minus), task launches with read/
// write/reduce accesses and future dependences, and named kernels,
// relations, and colorings resolved from registries — everything a remote
// client needs to drive a Runtime without shipping code.
//
// The decoder is strict by design: unknown JSON fields, bad privileges,
// malformed rectangles, dangling region references, and unresolvable
// kernel names are errors, never panics, so workload files double as
// replayable corpus inputs (FuzzWireDecode seeds the example workloads).
// Encoding is deterministic (struct field order is fixed and map keys
// sort), and decode→encode→decode is a fixed point.
package wire

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"visibility"
	"visibility/internal/geometry"
	"visibility/internal/index"
)

// Version is the wire-format version this package reads and writes.
const Version = 1

// Workload is a complete, self-contained unit of work: declarations plus
// launches. A workload with no region declarations is a batch — its task
// references resolve against the regions a session has already declared.
type Workload struct {
	Version int          `json:"version"`
	Name    string       `json:"name,omitempty"`
	Regions []RegionDecl `json:"regions,omitempty"`
	Tasks   []TaskDecl   `json:"tasks,omitempty"`
}

// RegionDecl declares one root region: an index space (encoded as rows of
// 2·dim inclusive bounds, lo/hi interleaved per axis), named fields,
// optional initial contents per field, and derived partitions.
type RegionDecl struct {
	Name       string               `json:"name"`
	Dim        int                  `json:"dim"`
	Space      [][]int64            `json:"space"`
	Fields     []string             `json:"fields"`
	Init       map[string]*FuncSpec `json:"init,omitempty"`
	Partitions []PartitionDecl      `json:"partitions,omitempty"`
}

// PartitionDecl declares one partition of its enclosing region. Kind
// selects the operator; the other fields are kind-specific:
//
//	equal:    Pieces equal contiguous blocks
//	explicit: Spaces, one encoded index space per piece (may alias)
//	image:    Source partition pushed through Relation
//	preimage: points whose image under Relation lands in Source's pieces
//	bycolor:  Pieces buckets of the Color function
//	minus:    pairwise difference Left \ Right
type PartitionDecl struct {
	Name     string      `json:"name"`
	Kind     string      `json:"kind"`
	Pieces   int         `json:"pieces,omitempty"`
	Spaces   [][][]int64 `json:"spaces,omitempty"`
	Source   string      `json:"source,omitempty"`
	Left     string      `json:"left,omitempty"`
	Right    string      `json:"right,omitempty"`
	Relation *FuncSpec   `json:"relation,omitempty"`
	Color    *FuncSpec   `json:"color,omitempty"`
}

// TaskDecl declares one task launch. After lists indices of earlier tasks
// in the same workload whose futures this task waits on (scalar ordering
// dependences, like Legion futures).
type TaskDecl struct {
	Name     string       `json:"name"`
	Accesses []AccessDecl `json:"accesses"`
	After    []int        `json:"after,omitempty"`
}

// AccessDecl declares how the task touches one region's field. Region is a
// reference: a root region name ("cells") or an indexed partition piece
// ("blocks[2]"). Privilege is "read", "write", or "reduce"; Op names the
// reduction operator for reduce accesses. Kernel names the per-point
// function applied for write and reduce accesses (identity when absent);
// read accesses carry no kernel.
type AccessDecl struct {
	Region    string    `json:"region"`
	Field     string    `json:"field"`
	Privilege string    `json:"privilege"`
	Op        string    `json:"op,omitempty"`
	Kernel    *FuncSpec `json:"kernel,omitempty"`
}

// FuncSpec names a registered kernel, relation, or coloring together with
// its numeric arguments.
type FuncSpec struct {
	Name string             `json:"name"`
	Args map[string]float64 `json:"args,omitempty"`
}

// Decode reads one workload from r, rejecting unknown fields, trailing
// garbage, and every structural error Validate covers.
func Decode(r io.Reader) (*Workload, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var wl Workload
	if err := dec.Decode(&wl); err != nil {
		return nil, fmt.Errorf("wire: decoding workload: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("wire: trailing data after workload")
	}
	if err := wl.Validate(); err != nil {
		return nil, err
	}
	return &wl, nil
}

// Encode writes wl as indented JSON. Field order is fixed by the struct
// definitions and encoding/json sorts map keys, so a given workload has
// exactly one serialization.
func Encode(w io.Writer, wl *Workload) error {
	b, err := json.MarshalIndent(wl, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// --- registries ---------------------------------------------------------

// KernelFunc is a pure per-point function: for write accesses in is the
// current value; for reduce accesses and initial contents in is zero.
type KernelFunc func(p visibility.Point, in float64) float64

// RelationFunc maps a point to related points (image/preimage operands).
type RelationFunc func(p visibility.Point) []visibility.Point

// ColorFunc assigns a point to a partition piece.
type ColorFunc func(p visibility.Point) int

var (
	regMu     sync.Mutex
	kernels   = map[string]func(args map[string]float64) (KernelFunc, error){}
	relations = map[string]func(args map[string]float64) (RelationFunc, error){}
	colors    = map[string]func(args map[string]float64) (ColorFunc, error){}
)

// RegisterKernel installs a named kernel builder. Registering a duplicate
// or empty name panics — a wiring bug, not a runtime condition.
func RegisterKernel(name string, build func(args map[string]float64) (KernelFunc, error)) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || kernels[name] != nil {
		panic(fmt.Sprintf("wire: kernel %q empty or already registered", name))
	}
	kernels[name] = build
}

// RegisterRelation installs a named relation builder.
func RegisterRelation(name string, build func(args map[string]float64) (RelationFunc, error)) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || relations[name] != nil {
		panic(fmt.Sprintf("wire: relation %q empty or already registered", name))
	}
	relations[name] = build
}

// RegisterColor installs a named coloring builder.
func RegisterColor(name string, build func(args map[string]float64) (ColorFunc, error)) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || colors[name] != nil {
		panic(fmt.Sprintf("wire: color %q empty or already registered", name))
	}
	colors[name] = build
}

// KernelNames returns the registered kernel names, sorted.
func KernelNames() []string { return sortedNames(kernels) }

// RelationNames returns the registered relation names, sorted.
func RelationNames() []string { return sortedNames(relations) }

// ColorNames returns the registered coloring names, sorted.
func ColorNames() []string { return sortedNames(colors) }

func sortedNames[T any](m map[string]T) []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func buildKernel(spec *FuncSpec) (KernelFunc, error) {
	regMu.Lock()
	b := kernels[spec.Name]
	regMu.Unlock()
	if b == nil {
		return nil, fmt.Errorf("wire: unknown kernel %q (have %v)", spec.Name, KernelNames())
	}
	return b(spec.Args)
}

func buildRelation(spec *FuncSpec) (RelationFunc, error) {
	regMu.Lock()
	b := relations[spec.Name]
	regMu.Unlock()
	if b == nil {
		return nil, fmt.Errorf("wire: unknown relation %q (have %v)", spec.Name, RelationNames())
	}
	return b(spec.Args)
}

func buildColor(spec *FuncSpec) (ColorFunc, error) {
	regMu.Lock()
	b := colors[spec.Name]
	regMu.Unlock()
	if b == nil {
		return nil, fmt.Errorf("wire: unknown color %q (have %v)", spec.Name, ColorNames())
	}
	return b(spec.Args)
}

// args wraps a FuncSpec's argument map with exact-arity checking: every
// Get must name a declared key, and Done reports keys the caller never
// consumed — an unknown argument is as much an error as a missing one.
type args struct {
	m    map[string]float64
	used map[string]bool
	err  error
}

func newArgs(m map[string]float64) *args {
	return &args{m: m, used: make(map[string]bool)}
}

func (a *args) get(name string) float64 {
	v, ok := a.m[name]
	if !ok && a.err == nil {
		a.err = fmt.Errorf("missing argument %q", name)
	}
	a.used[name] = true
	return v
}

func (a *args) getInt(name string) int64 {
	v := a.get(name)
	if a.err == nil && (math.IsNaN(v) || v != math.Trunc(v)) {
		a.err = fmt.Errorf("argument %q = %v is not an integer", name, v)
	}
	return int64(v)
}

func (a *args) done() error {
	if a.err != nil {
		return a.err
	}
	for k := range a.m {
		if !a.used[k] {
			return fmt.Errorf("unknown argument %q", k)
		}
	}
	return nil
}

func init() {
	RegisterKernel("identity", func(m map[string]float64) (KernelFunc, error) {
		if err := newArgs(m).done(); err != nil {
			return nil, err
		}
		return func(_ visibility.Point, in float64) float64 { return in }, nil
	})
	RegisterKernel("fill", func(m map[string]float64) (KernelFunc, error) {
		a := newArgs(m)
		v := a.get("value")
		if err := a.done(); err != nil {
			return nil, err
		}
		return func(visibility.Point, float64) float64 { return v }, nil
	})
	RegisterKernel("affine", func(m map[string]float64) (KernelFunc, error) {
		a := newArgs(m)
		scale, offset := a.get("scale"), a.get("offset")
		if err := a.done(); err != nil {
			return nil, err
		}
		return func(_ visibility.Point, in float64) float64 { return in*scale + offset }, nil
	})
	RegisterKernel("coord", func(m map[string]float64) (KernelFunc, error) {
		a := newArgs(m)
		axis := a.getInt("axis")
		if err := a.done(); err != nil {
			return nil, err
		}
		if axis < 0 || axis >= geometry.MaxDim {
			return nil, fmt.Errorf("axis %d outside [0, %d)", axis, geometry.MaxDim)
		}
		return func(p visibility.Point, _ float64) float64 { return float64(p.C[axis]) }, nil
	})
	RegisterRelation("ring", func(m map[string]float64) (RelationFunc, error) {
		a := newArgs(m)
		radius, modulo := a.getInt("radius"), a.getInt("modulo")
		if err := a.done(); err != nil {
			return nil, err
		}
		if radius < 1 || modulo < 1 {
			return nil, fmt.Errorf("ring needs radius >= 1 and modulo >= 1, got %d, %d", radius, modulo)
		}
		return func(p visibility.Point) []visibility.Point {
			out := make([]visibility.Point, 0, 2*radius)
			for d := int64(1); d <= radius; d++ {
				out = append(out,
					visibility.Pt(((p.C[0]-d)%modulo+modulo)%modulo),
					visibility.Pt((p.C[0]+d)%modulo))
			}
			return out
		}, nil
	})
	RegisterRelation("window", func(m map[string]float64) (RelationFunc, error) {
		a := newArgs(m)
		radius := a.getInt("radius")
		if err := a.done(); err != nil {
			return nil, err
		}
		if radius < 1 {
			return nil, fmt.Errorf("window needs radius >= 1, got %d", radius)
		}
		return func(p visibility.Point) []visibility.Point {
			out := make([]visibility.Point, 0, 2*radius)
			for d := int64(1); d <= radius; d++ {
				out = append(out, visibility.Pt(p.C[0]-d), visibility.Pt(p.C[0]+d))
			}
			return out
		}, nil
	})
	RegisterColor("mod", func(m map[string]float64) (ColorFunc, error) {
		a := newArgs(m)
		axis, n := a.getInt("axis"), a.getInt("n")
		if err := a.done(); err != nil {
			return nil, err
		}
		if axis < 0 || axis >= geometry.MaxDim || n < 1 {
			return nil, fmt.Errorf("mod needs axis in [0, %d) and n >= 1", geometry.MaxDim)
		}
		return func(p visibility.Point) int { return int(((p.C[axis] % n) + n) % n) }, nil
	})
	RegisterColor("block", func(m map[string]float64) (ColorFunc, error) {
		a := newArgs(m)
		axis, size := a.getInt("axis"), a.getInt("size")
		if err := a.done(); err != nil {
			return nil, err
		}
		if axis < 0 || axis >= geometry.MaxDim || size < 1 {
			return nil, fmt.Errorf("block needs axis in [0, %d) and size >= 1", geometry.MaxDim)
		}
		return func(p visibility.Point) int { return int(p.C[axis] / size) }, nil
	})
}

// --- validation ---------------------------------------------------------

// decodeSpace rebuilds an index space from encoded rect rows with the same
// strictness as the checkpoint decoder: dim in [1, MaxDim], row length
// 2·dim, lo <= hi on every axis.
func decodeSpace(dim int, rows [][]int64) (index.Space, error) {
	if dim < 1 || dim > geometry.MaxDim {
		return index.Empty(1), fmt.Errorf("dimension %d outside [1, %d]", dim, geometry.MaxDim)
	}
	rects := make([]geometry.Rect, 0, len(rows))
	for _, row := range rows {
		if len(row) != 2*dim {
			return index.Empty(dim), fmt.Errorf("malformed rect %v for dim %d", row, dim)
		}
		r := geometry.Rect{Dim: dim}
		for a := 0; a < dim; a++ {
			r.Lo.C[a] = row[2*a]
			r.Hi.C[a] = row[2*a+1]
			if r.Lo.C[a] > r.Hi.C[a] {
				return index.Empty(dim), fmt.Errorf("inverted rect %v (lo > hi on axis %d)", row, a)
			}
		}
		rects = append(rects, r)
	}
	return index.FromRects(dim, rects...), nil
}

// declared tracks what one workload's region declarations define, for
// resolving references during validation and piece-count checks.
type declared struct {
	// regions maps root region name to its declaration.
	regions map[string]*RegionDecl
	// parts maps partition name to (owning region name, piece count).
	parts map[string]partInfo
}

type partInfo struct {
	region string
	pieces int
}

// Validate checks every structural property of the workload that does not
// depend on prior session state: version, region/partition declarations
// (including registry resolution of every named function), and — when the
// workload declares regions — task references. A pure batch (no region
// declarations) defers reference resolution to the session environment.
func (wl *Workload) Validate() error {
	if wl.Version != Version {
		return fmt.Errorf("wire: unsupported version %d (want %d)", wl.Version, Version)
	}
	d := &declared{regions: make(map[string]*RegionDecl), parts: make(map[string]partInfo)}
	for i := range wl.Regions {
		if err := validateRegion(&wl.Regions[i], d); err != nil {
			return err
		}
	}
	for i := range wl.Tasks {
		if err := validateTask(&wl.Tasks[i], i, d, len(wl.Regions) > 0); err != nil {
			return err
		}
	}
	return nil
}

func validateRegion(r *RegionDecl, d *declared) error {
	if r.Name == "" {
		return fmt.Errorf("wire: region with empty name")
	}
	if _, dup := d.regions[r.Name]; dup {
		return fmt.Errorf("wire: duplicate region name %q", r.Name)
	}
	if _, dup := d.parts[r.Name]; dup {
		return fmt.Errorf("wire: region %q collides with a partition name", r.Name)
	}
	space, err := decodeSpace(r.Dim, r.Space)
	if err != nil {
		return fmt.Errorf("wire: region %q: %v", r.Name, err)
	}
	if space.IsEmpty() {
		return fmt.Errorf("wire: region %q has an empty index space", r.Name)
	}
	if len(r.Fields) == 0 {
		return fmt.Errorf("wire: region %q has no fields", r.Name)
	}
	fields := make(map[string]bool, len(r.Fields))
	for _, f := range r.Fields {
		if f == "" || fields[f] {
			return fmt.Errorf("wire: region %q has empty or duplicate field %q", r.Name, f)
		}
		fields[f] = true
	}
	for f, spec := range r.Init {
		if !fields[f] {
			return fmt.Errorf("wire: region %q: init for unknown field %q", r.Name, f)
		}
		if spec == nil {
			return fmt.Errorf("wire: region %q: nil init kernel for field %q", r.Name, f)
		}
		if _, err := buildKernel(spec); err != nil {
			return fmt.Errorf("wire: region %q: init %q: %v", r.Name, f, err)
		}
	}
	d.regions[r.Name] = r
	for i := range r.Partitions {
		if err := validatePartition(&r.Partitions[i], r, space, d); err != nil {
			return err
		}
	}
	return nil
}

func validatePartition(p *PartitionDecl, r *RegionDecl, space index.Space, d *declared) error {
	if p.Name == "" {
		return fmt.Errorf("wire: region %q: partition with empty name", r.Name)
	}
	if _, dup := d.parts[p.Name]; dup {
		return fmt.Errorf("wire: duplicate partition name %q", p.Name)
	}
	if _, dup := d.regions[p.Name]; dup {
		return fmt.Errorf("wire: partition %q collides with a region name", p.Name)
	}
	// sibling resolves a partition reference to an earlier partition of
	// the same region.
	sibling := func(role, name string) (partInfo, error) {
		pi, ok := d.parts[name]
		if !ok {
			return partInfo{}, fmt.Errorf("wire: partition %q: %s references unknown partition %q", p.Name, role, name)
		}
		if pi.region != r.Name {
			return partInfo{}, fmt.Errorf("wire: partition %q: %s partition %q belongs to region %q, not %q",
				p.Name, role, name, pi.region, r.Name)
		}
		return pi, nil
	}
	pieces := 0
	switch p.Kind {
	case "equal":
		if p.Pieces < 1 || int64(p.Pieces) > space.Volume() {
			return fmt.Errorf("wire: partition %q: cannot split %d points into %d equal pieces",
				p.Name, space.Volume(), p.Pieces)
		}
		pieces = p.Pieces
	case "explicit":
		if len(p.Spaces) == 0 {
			return fmt.Errorf("wire: partition %q: explicit partition with no pieces", p.Name)
		}
		for i, rows := range p.Spaces {
			sp, err := decodeSpace(r.Dim, rows)
			if err != nil {
				return fmt.Errorf("wire: partition %q piece %d: %v", p.Name, i, err)
			}
			if !space.Covers(sp) {
				return fmt.Errorf("wire: partition %q piece %d is not a subset of region %q", p.Name, i, r.Name)
			}
		}
		pieces = len(p.Spaces)
	case "image", "preimage":
		pi, err := sibling("source", p.Source)
		if err != nil {
			return err
		}
		if p.Relation == nil {
			return fmt.Errorf("wire: partition %q: %s partition needs a relation", p.Name, p.Kind)
		}
		if _, err := buildRelation(p.Relation); err != nil {
			return fmt.Errorf("wire: partition %q: %v", p.Name, err)
		}
		pieces = pi.pieces
	case "bycolor":
		if p.Pieces < 1 {
			return fmt.Errorf("wire: partition %q: bycolor needs pieces >= 1", p.Name)
		}
		if p.Color == nil {
			return fmt.Errorf("wire: partition %q: bycolor partition needs a color", p.Name)
		}
		if _, err := buildColor(p.Color); err != nil {
			return fmt.Errorf("wire: partition %q: %v", p.Name, err)
		}
		pieces = p.Pieces
	case "minus":
		left, err := sibling("left", p.Left)
		if err != nil {
			return err
		}
		right, err := sibling("right", p.Right)
		if err != nil {
			return err
		}
		if left.pieces != right.pieces {
			return fmt.Errorf("wire: partition %q: minus operands have %d and %d pieces",
				p.Name, left.pieces, right.pieces)
		}
		pieces = left.pieces
	default:
		return fmt.Errorf("wire: partition %q: unknown kind %q", p.Name, p.Kind)
	}
	d.parts[p.Name] = partInfo{region: r.Name, pieces: pieces}
	return nil
}

// parseRef splits a region reference into base name and optional piece
// index: "cells" or "blocks[2]".
func parseRef(ref string) (base string, idx int, hasIdx bool, err error) {
	if ref == "" {
		return "", 0, false, fmt.Errorf("empty region reference")
	}
	open := -1
	for i := 0; i < len(ref); i++ {
		if ref[i] == '[' {
			open = i
			break
		}
	}
	if open == -1 {
		return ref, 0, false, nil
	}
	if open == 0 || ref[len(ref)-1] != ']' {
		return "", 0, false, fmt.Errorf("malformed region reference %q", ref)
	}
	n := 0
	digits := ref[open+1 : len(ref)-1]
	if digits == "" {
		return "", 0, false, fmt.Errorf("malformed region reference %q", ref)
	}
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		if c < '0' || c > '9' {
			return "", 0, false, fmt.Errorf("malformed region reference %q", ref)
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return "", 0, false, fmt.Errorf("piece index overflow in %q", ref)
		}
	}
	return ref[:open], n, true, nil
}

var reduceOps = map[string]visibility.ReduceOp{
	"sum":  visibility.OpSum,
	"prod": visibility.OpProd,
	"min":  visibility.OpMin,
	"max":  visibility.OpMax,
}

func validateTask(t *TaskDecl, pos int, d *declared, resolveRefs bool) error {
	if t.Name == "" {
		return fmt.Errorf("wire: task %d has no name", pos)
	}
	if len(t.Accesses) == 0 {
		return fmt.Errorf("wire: task %q needs at least one access", t.Name)
	}
	tree := "" // root region every access must share
	for ai := range t.Accesses {
		a := &t.Accesses[ai]
		base, idx, hasIdx, err := parseRef(a.Region)
		if err != nil {
			return fmt.Errorf("wire: task %q access %d: %v", t.Name, ai, err)
		}
		switch a.Privilege {
		case "read":
			if a.Kernel != nil {
				return fmt.Errorf("wire: task %q access %d: read access carries a kernel", t.Name, ai)
			}
			if a.Op != "" {
				return fmt.Errorf("wire: task %q access %d: op on non-reduce access", t.Name, ai)
			}
		case "write":
			if a.Op != "" {
				return fmt.Errorf("wire: task %q access %d: op on non-reduce access", t.Name, ai)
			}
		case "reduce":
			if _, ok := reduceOps[a.Op]; !ok {
				return fmt.Errorf("wire: task %q access %d: unknown reduction op %q", t.Name, ai, a.Op)
			}
		default:
			return fmt.Errorf("wire: task %q access %d: unknown privilege %q", t.Name, ai, a.Privilege)
		}
		if a.Kernel != nil {
			if _, err := buildKernel(a.Kernel); err != nil {
				return fmt.Errorf("wire: task %q access %d: %v", t.Name, ai, err)
			}
		}
		if a.Field == "" {
			return fmt.Errorf("wire: task %q access %d: empty field", t.Name, ai)
		}
		if !resolveRefs {
			continue
		}
		root := ""
		if hasIdx {
			pi, ok := d.parts[base]
			if !ok {
				return fmt.Errorf("wire: task %q access %d: dangling reference %q", t.Name, ai, a.Region)
			}
			if idx >= pi.pieces {
				return fmt.Errorf("wire: task %q access %d: piece %d outside partition %q (len %d)",
					t.Name, ai, idx, base, pi.pieces)
			}
			root = pi.region
		} else {
			if _, ok := d.regions[base]; !ok {
				return fmt.Errorf("wire: task %q access %d: dangling reference %q", t.Name, ai, a.Region)
			}
			root = base
		}
		fieldOK := false
		for _, f := range d.regions[root].Fields {
			if f == a.Field {
				fieldOK = true
				break
			}
		}
		if !fieldOK {
			return fmt.Errorf("wire: task %q access %d: region %q has no field %q", t.Name, ai, root, a.Field)
		}
		if tree == "" {
			tree = root
		} else if tree != root {
			return fmt.Errorf("wire: task %q mixes regions %q and %q (one tree per task)", t.Name, tree, root)
		}
	}
	for _, a := range t.After {
		if a < 0 || a >= pos {
			return fmt.Errorf("wire: task %q: after index %d outside [0, %d)", t.Name, a, pos)
		}
	}
	return nil
}
