package wire_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"visibility/internal/wire"
)

// FuzzWireDecode throws arbitrary bytes at the strict decoder, seeded
// with the example workload corpus. Two properties must hold for every
// input: Decode never panics, and anything it accepts is a decode→encode→
// decode fixed point (the second decode yields the identical encoding).
func FuzzWireDecode(f *testing.F) {
	for _, name := range []string{"quickstart.json", "graphsim.json"} {
		b, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"regions":[{"name":"r","dim":1,"space":[[0,9]],"fields":["v"]}]}`))
	f.Add([]byte(`{"version":2,"nope":true}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		wl, err := wire.Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected, fine — the property is "no panic"
		}
		var enc1 bytes.Buffer
		if err := wire.Encode(&enc1, wl); err != nil {
			t.Fatalf("accepted workload failed to encode: %v", err)
		}
		wl2, err := wire.Decode(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("encoding of accepted workload rejected on re-decode: %v", err)
		}
		var enc2 bytes.Buffer
		if err := wire.Encode(&enc2, wl2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatalf("decode→encode not a fixed point:\n%s\nvs\n%s", enc1.Bytes(), enc2.Bytes())
		}
	})
}
