package wire_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"visibility"
	"visibility/internal/wire"
)

// TestDecodeRejects feeds the decoder every class of malformed input the
// wire format must screen out: each comes back as an error mentioning the
// offending construct, never a panic.
func TestDecodeRejects(t *testing.T) {
	region := func(tail string) string {
		return `{"version":1,"regions":[{"name":"r","dim":1,"space":[[0,9]],"fields":["v"]` + tail + `}]}`
	}
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"not json", `not json`, "decoding workload"},
		{"unknown top-level field", `{"version":1,"bogus":3}`, "bogus"},
		{"unknown access field",
			`{"version":1,"regions":[{"name":"r","dim":1,"space":[[0,9]],"fields":["v"]}],` +
				`"tasks":[{"name":"t","accesses":[{"region":"r","field":"v","privilege":"read","frob":1}]}]}`,
			"frob"},
		{"trailing garbage", `{"version":1}{"version":1}`, "trailing data"},
		{"wrong version", `{"version":7}`, "unsupported version"},
		{"empty region name", `{"version":1,"regions":[{"name":"","dim":1,"space":[[0,9]],"fields":["v"]}]}`, "empty name"},
		{"duplicate region", `{"version":1,"regions":[` +
			`{"name":"r","dim":1,"space":[[0,9]],"fields":["v"]},` +
			`{"name":"r","dim":1,"space":[[0,9]],"fields":["v"]}]}`, "duplicate region"},
		{"dim zero", `{"version":1,"regions":[{"name":"r","dim":0,"space":[[0,9]],"fields":["v"]}]}`, "dimension 0"},
		{"inverted rect", `{"version":1,"regions":[{"name":"r","dim":1,"space":[[9,0]],"fields":["v"]}]}`, "lo > hi"},
		{"malformed rect", `{"version":1,"regions":[{"name":"r","dim":2,"space":[[0,9]],"fields":["v"]}]}`, "malformed rect"},
		{"empty space", `{"version":1,"regions":[{"name":"r","dim":1,"space":[],"fields":["v"]}]}`, "empty index space"},
		{"no fields", `{"version":1,"regions":[{"name":"r","dim":1,"space":[[0,9]],"fields":[]}]}`, "no fields"},
		{"duplicate field", `{"version":1,"regions":[{"name":"r","dim":1,"space":[[0,9]],"fields":["v","v"]}]}`, "duplicate field"},
		{"init unknown field", region(`,"init":{"w":{"name":"fill","args":{"value":1}}}`), "unknown field"},
		{"init unknown kernel", region(`,"init":{"v":{"name":"nope"}}`), "unknown kernel"},
		{"kernel bad args", region(`,"init":{"v":{"name":"fill","args":{"value":1,"extra":2}}}`), `unknown argument "extra"`},
		{"kernel missing args", region(`,"init":{"v":{"name":"fill"}}`), `missing argument "value"`},
		{"kernel non-integer axis", region(`,"init":{"v":{"name":"coord","args":{"axis":0.5}}}`), "not an integer"},
		{"partition unknown kind", region(`,"partitions":[{"name":"p","kind":"spiral"}]`), "unknown kind"},
		{"equal too many pieces", region(`,"partitions":[{"name":"p","kind":"equal","pieces":99}]`), "99 equal pieces"},
		{"explicit piece escapes", region(`,"partitions":[{"name":"p","kind":"explicit","spaces":[[[0,50]]]}]`), "not a subset"},
		{"image dangling source", region(`,"partitions":[{"name":"p","kind":"image","source":"q",` +
			`"relation":{"name":"ring","args":{"radius":1,"modulo":10}}}]`), "unknown partition"},
		{"image missing relation", region(`,"partitions":[{"name":"q","kind":"equal","pieces":2},` +
			`{"name":"p","kind":"image","source":"q"}]`), "needs a relation"},
		{"minus mismatched pieces", region(`,"partitions":[{"name":"a","kind":"equal","pieces":2},` +
			`{"name":"b","kind":"equal","pieces":5},{"name":"p","kind":"minus","left":"a","right":"b"}]`),
			"2 and 5 pieces"},
		{"bycolor missing color", region(`,"partitions":[{"name":"p","kind":"bycolor","pieces":2}]`), "needs a color"},
		{"task no accesses",
			`{"version":1,"regions":[{"name":"r","dim":1,"space":[[0,9]],"fields":["v"]}],` +
				`"tasks":[{"name":"t","accesses":[]}]}`,
			"at least one access"},
		{"bad privilege", taskJSON(`{"region":"r","field":"v","privilege":"mutate"}`), "unknown privilege"},
		{"reduce bad op", taskJSON(`{"region":"r","field":"v","privilege":"reduce","op":"xor"}`), "unknown reduction op"},
		{"op on write", taskJSON(`{"region":"r","field":"v","privilege":"write","op":"sum"}`), "op on non-reduce"},
		{"kernel on read", taskJSON(`{"region":"r","field":"v","privilege":"read","kernel":{"name":"identity"}}`), "read access carries a kernel"},
		{"dangling region ref", taskJSON(`{"region":"nope","field":"v","privilege":"read"}`), "dangling reference"},
		{"malformed ref", taskJSON(`{"region":"r[","field":"v","privilege":"read"}`), "malformed region reference"},
		{"piece out of range",
			`{"version":1,"regions":[{"name":"r","dim":1,"space":[[0,9]],"fields":["v"],` +
				`"partitions":[{"name":"p","kind":"equal","pieces":2}]}],` +
				`"tasks":[{"name":"t","accesses":[{"region":"p[7]","field":"v","privilege":"read"}]}]}`,
			"piece 7 outside"},
		{"unknown task field ref", taskJSON(`{"region":"r","field":"w","privilege":"read"}`), `no field "w"`},
		{"after out of range", taskJSON(`{"region":"r","field":"v","privilege":"read"}`, 5), "after index 5"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked: %v", r)
				}
			}()
			_, err := wire.Decode(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("Decode accepted %s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// taskJSON wraps one access JSON in a minimal workload with region r and
// field v; after, when given, adds the after list.
func taskJSON(access string, after ...int) string {
	a := ""
	if len(after) > 0 {
		parts := make([]string, len(after))
		for i, x := range after {
			parts[i] = fmt.Sprint(x)
		}
		a = `,"after":[` + strings.Join(parts, ",") + `]`
	}
	return `{"version":1,"regions":[{"name":"r","dim":1,"space":[[0,9]],"fields":["v"]}],` +
		`"tasks":[{"name":"t","accesses":[` + access + `]` + a + `}]}`
}

// TestGolden pins the canonical example workloads to their testdata
// encodings byte for byte: the constructors, the encoder, and the corpus
// files move together or the test fails. Regenerate with
// `go run ./internal/wire/gen`.
func TestGolden(t *testing.T) {
	cases := []struct {
		file string
		wl   *wire.Workload
	}{
		{"quickstart.json", wire.ExampleQuickstart()},
		{"graphsim.json", wire.ExampleGraphsim(3)},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := wire.Encode(&got, tc.wl); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("encoding of %s drifted from testdata (run `go run ./internal/wire/gen`)", tc.file)
			}
			// decode → encode is a fixed point.
			decoded, err := wire.Decode(bytes.NewReader(want))
			if err != nil {
				t.Fatal(err)
			}
			var again bytes.Buffer
			if err := wire.Encode(&again, decoded); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again.Bytes(), want) {
				t.Fatal("decode→encode is not a fixed point")
			}
		})
	}
}

// TestApplyQuickstart replays the quickstart workload through an Env and
// checks the same invariants the hand-coded example asserts.
func TestApplyQuickstart(t *testing.T) {
	rt := visibility.New(visibility.Config{Validate: true})
	defer rt.Close()
	env := wire.NewEnv(rt)
	futs, err := env.Apply(wire.ExampleQuickstart())
	if err != nil {
		t.Fatal(err)
	}
	if len(futs) != 5 {
		t.Fatalf("launched %d tasks, want 5", len(futs))
	}
	cells := env.Region("cells")
	if cells == nil {
		t.Fatal("workload did not declare cells")
	}
	snap := rt.Read(cells, "val")
	var sum float64
	snap.Each(func(_ visibility.Point, v float64) { sum += v })
	if want := float64(99*100/2 + 40*10); sum != want {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
}

// TestApplyGraphsimMatchesHandCoded replays the Figure 1 workload through
// the wire layer and requires point-identical results to the hand-coded
// program from the graphsim example: the wire format is a faithful
// encoding, not an approximation.
func TestApplyGraphsimMatchesHandCoded(t *testing.T) {
	const iterations = 3
	// Wire path.
	rtW := visibility.New(visibility.Config{Validate: true})
	defer rtW.Close()
	env := wire.NewEnv(rtW)
	if _, err := env.Apply(wire.ExampleGraphsim(iterations)); err != nil {
		t.Fatal(err)
	}
	graphW := env.Region("N")

	// Hand-coded path, as in examples/graphsim.
	rtH := visibility.New(visibility.Config{Validate: true})
	defer rtH.Close()
	graphH := rtH.CreateRegion("N", visibility.Line(0, 17), "up", "down")
	graphH.Init("up", func(p visibility.Point) float64 { return float64(p.C[0]) })
	primary := graphH.PartitionEqual("P", 3)
	neighbors := func(p visibility.Point) []visibility.Point {
		var out []visibility.Point
		for d := int64(1); d <= 4; d++ {
			out = append(out, visibility.Pt((p.C[0]-d+18)%18), visibility.Pt((p.C[0]+d)%18))
		}
		return out
	}
	ghost := graphH.PartitionImage("reach", primary, neighbors).Minus("G", primary)
	for iter := 0; iter < iterations; iter++ {
		for i := 0; i < 3; i++ {
			rtH.Launch(visibility.TaskSpec{
				Name: "t1",
				Accesses: []visibility.Access{
					visibility.Write(primary.Sub(i), "up"),
					visibility.Reduce(visibility.OpSum, ghost.Sub(i), "down"),
				},
				Kernel: visibility.Kernel{
					Write:  func(_ int, _ visibility.Point, in float64) float64 { return in*0.5 + 1 },
					Reduce: func(int, visibility.Point) float64 { return 0.25 },
				},
			})
		}
		for i := 0; i < 3; i++ {
			rtH.Launch(visibility.TaskSpec{
				Name: "t2",
				Accesses: []visibility.Access{
					visibility.Write(primary.Sub(i), "down"),
					visibility.Reduce(visibility.OpSum, ghost.Sub(i), "up"),
				},
				Kernel: visibility.Kernel{
					Write:  func(_ int, _ visibility.Point, in float64) float64 { return in * 0.5 },
					Reduce: func(int, visibility.Point) float64 { return 0.125 },
				},
			})
		}
	}

	for _, f := range []string{"up", "down"} {
		w, h := rtW.Read(graphW, f), rtH.Read(graphH, f)
		if w.Len() != h.Len() {
			t.Fatalf("field %s: %d vs %d points", f, w.Len(), h.Len())
		}
		h.Each(func(p visibility.Point, want float64) {
			if got, ok := w.Get(p); !ok || got != want {
				t.Fatalf("field %s at %v: wire %v, hand-coded %v", f, p, got, want)
			}
		})
	}
}

// TestApplyBatchAgainstSession exercises the batch path: a second
// workload with no region declarations resolves against state the first
// one declared, and bad batches launch nothing.
func TestApplyBatchAgainstSession(t *testing.T) {
	rt := visibility.New(visibility.Config{})
	defer rt.Close()
	env := wire.NewEnv(rt)
	if _, err := env.Apply(wire.ExampleQuickstart()); err != nil {
		t.Fatal(err)
	}

	batch := &wire.Workload{
		Version: wire.Version,
		Tasks: []wire.TaskDecl{{
			Name: "bump2",
			Accesses: []wire.AccessDecl{{
				Region: "window[0]", Field: "val", Privilege: "reduce", Op: "sum",
				Kernel: &wire.FuncSpec{Name: "fill", Args: map[string]float64{"value": 1}},
			}},
		}},
	}
	if _, err := env.Apply(batch); err != nil {
		t.Fatalf("batch against session state: %v", err)
	}

	bad := &wire.Workload{
		Version: wire.Version,
		Tasks: []wire.TaskDecl{
			{Name: "ok", Accesses: []wire.AccessDecl{{Region: "cells", Field: "val", Privilege: "read"}}},
			{Name: "bad", Accesses: []wire.AccessDecl{{Region: "ghosts[0]", Field: "val", Privilege: "read"}}},
		},
	}
	if _, err := env.Apply(bad); err == nil || !strings.Contains(err.Error(), "dangling reference") {
		t.Fatalf("bad batch error = %v, want dangling reference", err)
	}
	// The rejected batch launched nothing: the sum reflects exactly the
	// quickstart result plus the one extra reduction.
	snap := rt.Read(env.Region("cells"), "val")
	var sum float64
	snap.Each(func(_ visibility.Point, v float64) { sum += v })
	if want := float64(99*100/2+40*10) + 40; sum != want {
		t.Fatalf("sum = %v, want %v", sum, want)
	}

	// A redeclaration of an existing name is rejected before declaring.
	if _, err := env.Apply(wire.ExampleQuickstart()); err == nil || !strings.Contains(err.Error(), "already declared") {
		t.Fatalf("redeclaration error = %v, want already declared", err)
	}
}

// TestApplyAfterFutures checks the After edges turn into future
// dependences: a chain of reductions ordered only by After must fold in
// program order (sum is order-independent, so order via write-read).
func TestApplyAfterFutures(t *testing.T) {
	rt := visibility.New(visibility.Config{Validate: true})
	defer rt.Close()
	env := wire.NewEnv(rt)
	wl := &wire.Workload{
		Version: wire.Version,
		Regions: []wire.RegionDecl{{
			Name: "r", Dim: 1, Space: [][]int64{{0, 3}}, Fields: []string{"v"},
		}},
		Tasks: []wire.TaskDecl{
			{Name: "a", Accesses: []wire.AccessDecl{{Region: "r", Field: "v", Privilege: "write",
				Kernel: &wire.FuncSpec{Name: "fill", Args: map[string]float64{"value": 2}}}}},
			{Name: "b", After: []int{0}, Accesses: []wire.AccessDecl{{Region: "r", Field: "v", Privilege: "write",
				Kernel: &wire.FuncSpec{Name: "affine", Args: map[string]float64{"scale": 3, "offset": 1}}}}},
		},
	}
	futs, err := env.Apply(wl)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range futs {
		f.Wait()
	}
	if v, _ := rt.Read(env.Region("r"), "v").Get(visibility.Pt(0)); v != 7 {
		t.Fatalf("v = %v, want 7 (= 2*3+1 in program order)", v)
	}
	// After edges appear in the dependence graph.
	deps := rt.Dependences(env.Region("r"))
	if len(deps) < 2 || len(deps[1].Deps) == 0 {
		t.Fatalf("dependences = %+v, want task 1 to depend on task 0", deps)
	}
}

// TestEnvFromRestore round-trips a session through a checkpoint and keeps
// serving wire batches against the restored regions.
func TestEnvFromRestore(t *testing.T) {
	rt := visibility.New(visibility.Config{})
	defer rt.Close()
	env := wire.NewEnv(rt)
	if _, err := env.Apply(wire.ExampleQuickstart()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rt.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	rt2, roots, err := visibility.Restore(&buf, visibility.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	env2, err := wire.EnvFromRestore(rt2, roots)
	if err != nil {
		t.Fatal(err)
	}
	batch := &wire.Workload{
		Version: wire.Version,
		Tasks: []wire.TaskDecl{{
			Name: "post-restore",
			Accesses: []wire.AccessDecl{{Region: "blocks[0]", Field: "val", Privilege: "write",
				Kernel: &wire.FuncSpec{Name: "affine", Args: map[string]float64{"scale": 1, "offset": 1}}}},
		}},
	}
	if _, err := env2.Apply(batch); err != nil {
		t.Fatal(err)
	}
	if v, _ := rt2.Read(env2.Region("cells"), "val").Get(visibility.Pt(5)); v != 6 {
		t.Fatalf("restored cells[5]+1 = %v, want 6", v)
	}
}

// TestRegistryNames pins the built-in registry contents (additions are
// fine — removals break workload files in the wild).
func TestRegistryNames(t *testing.T) {
	has := func(names []string, want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	for _, k := range []string{"identity", "fill", "affine", "coord"} {
		if !has(wire.KernelNames(), k) {
			t.Errorf("kernel %q missing from registry %v", k, wire.KernelNames())
		}
	}
	for _, r := range []string{"ring", "window"} {
		if !has(wire.RelationNames(), r) {
			t.Errorf("relation %q missing from registry %v", r, wire.RelationNames())
		}
	}
	for _, c := range []string{"mod", "block"} {
		if !has(wire.ColorNames(), c) {
			t.Errorf("color %q missing from registry %v", c, wire.ColorNames())
		}
	}
}
