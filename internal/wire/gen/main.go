// Command gen regenerates the golden testdata workloads from the
// canonical example constructors. Run from the repo root:
//
//	go run ./internal/wire/gen
package main

import (
	"os"

	"visibility/internal/wire"
)

func main() {
	write := func(path string, wl *wire.Workload) {
		f, err := os.Create(path)
		if err != nil {
			panic(err)
		}
		defer f.Close()
		if err := wire.Encode(f, wl); err != nil {
			panic(err)
		}
	}
	write("internal/wire/testdata/quickstart.json", wire.ExampleQuickstart())
	write("internal/wire/testdata/graphsim.json", wire.ExampleGraphsim(3))
}
