package wire

import (
	"fmt"

	"visibility"
	"visibility/internal/privilege"
)

// Env resolves wire references against one runtime's declared state and
// applies workloads to it. A serving session owns one Env; successive
// batches accumulate declarations into the same namespace, so a batch with
// no region declarations can launch against regions declared earlier (or
// restored from a checkpoint).
//
// Env is not safe for concurrent use — like the Runtime it wraps, all
// calls must come from one goroutine.
// Env's tables are read and written by whichever single goroutine owns
// the environment (in the analysis service, the session worker); the
// exported methods are that owner's entry points.
//
// confined to env-owner
type Env struct {
	// confined to env-owner
	rt *visibility.Runtime
	// confined to env-owner
	regions map[string]*visibility.Region
	// confined to env-owner
	parts map[string]*visibility.Partition
}

// NewEnv creates an empty environment over rt.
func NewEnv(rt *visibility.Runtime) *Env {
	return &Env{
		rt:      rt,
		regions: make(map[string]*visibility.Region),
		parts:   make(map[string]*visibility.Partition),
	}
}

// EnvFromRestore builds an environment over a restored runtime, adopting
// every root region (and its named partitions) so wire references resolve
// against the checkpointed state.
//
// confined to env-owner
func EnvFromRestore(rt *visibility.Runtime, roots map[string]*visibility.Region) (*Env, error) {
	e := NewEnv(rt)
	for _, r := range roots {
		if err := e.Adopt(r); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Adopt registers an existing root region and its partitions into the
// environment's namespace.
//
// confined to env-owner
func (e *Env) Adopt(r *visibility.Region) error {
	if err := e.claim(r.Name()); err != nil {
		return err
	}
	e.regions[r.Name()] = r
	for _, p := range r.Partitions() {
		if err := e.claim(p.PartitionName()); err != nil {
			return err
		}
		e.parts[p.PartitionName()] = p
	}
	return nil
}

// claim checks a name is free in the shared region/partition namespace.
func (e *Env) claim(name string) error {
	if _, dup := e.regions[name]; dup {
		return fmt.Errorf("wire: name %q already declared as a region", name)
	}
	if _, dup := e.parts[name]; dup {
		return fmt.Errorf("wire: name %q already declared as a partition", name)
	}
	return nil
}

// Region returns the declared root region with the given name, or nil.
//
// confined to env-owner
func (e *Env) Region(name string) *visibility.Region { return e.regions[name] }

// Regions returns the declared root region names (unsorted map iteration
// does not escape: callers sort or look up by name).
//
// confined to env-owner
func (e *Env) Regions() []*visibility.Region {
	out := make([]*visibility.Region, 0, len(e.regions))
	for _, r := range e.regions {
		out = append(out, r)
	}
	return out
}

// resolve maps a wire region reference to a region in the environment.
func (e *Env) resolve(ref string) (*visibility.Region, error) {
	base, idx, hasIdx, err := parseRef(ref)
	if err != nil {
		return nil, err
	}
	if hasIdx {
		p, ok := e.parts[base]
		if !ok {
			return nil, fmt.Errorf("dangling reference %q", ref)
		}
		if idx >= p.Len() {
			return nil, fmt.Errorf("piece %d outside partition %q (len %d)", idx, base, p.Len())
		}
		return p.Sub(idx), nil
	}
	r, ok := e.regions[base]
	if !ok {
		return nil, fmt.Errorf("dangling reference %q", ref)
	}
	return r, nil
}

// Apply validates wl, applies its declarations, and launches its tasks,
// returning the futures in launch order. Apply is all-or-nothing up to the
// first launch: every declaration name is checked against the session
// namespace and every task reference is resolved before anything runs, so
// a rejected workload leaves the runtime exactly as it found it.
//
// confined to env-owner
func (e *Env) Apply(wl *Workload) ([]visibility.Future, error) {
	if err := wl.Validate(); err != nil {
		return nil, err
	}
	// Phase 1: no declared name may collide with session state.
	for i := range wl.Regions {
		r := &wl.Regions[i]
		if err := e.claim(r.Name); err != nil {
			return nil, err
		}
		for j := range r.Partitions {
			if err := e.claim(r.Partitions[j].Name); err != nil {
				return nil, err
			}
		}
	}
	// Phase 2: declare regions and partitions.
	for i := range wl.Regions {
		if err := e.declare(&wl.Regions[i]); err != nil {
			return nil, err
		}
	}
	// Phase 3: resolve every task fully before launching any, so a bad
	// batch launches nothing.
	specs := make([]visibility.TaskSpec, 0, len(wl.Tasks))
	afters := make([][]int, 0, len(wl.Tasks))
	for i := range wl.Tasks {
		spec, err := e.taskSpec(&wl.Tasks[i])
		if err != nil {
			return nil, fmt.Errorf("wire: task %q: %v", wl.Tasks[i].Name, err)
		}
		specs = append(specs, spec)
		afters = append(afters, wl.Tasks[i].After)
	}
	// Phase 4: launch.
	futs := make([]visibility.Future, 0, len(specs))
	for i, spec := range specs {
		for _, a := range afters[i] {
			spec.After = append(spec.After, futs[a])
		}
		futs = append(futs, e.rt.Launch(spec))
	}
	return futs, nil
}

// declare materializes one region declaration: space, fields, initial
// contents, partitions in order.
func (e *Env) declare(rd *RegionDecl) error {
	space, err := decodeSpace(rd.Dim, rd.Space)
	if err != nil {
		return fmt.Errorf("wire: region %q: %v", rd.Name, err)
	}
	r := e.rt.CreateRegion(rd.Name, space, rd.Fields...)
	e.regions[rd.Name] = r
	// Deterministic init order: iterate declared fields, not the map.
	for _, f := range rd.Fields {
		spec, ok := rd.Init[f]
		if !ok {
			continue
		}
		k, err := buildKernel(spec)
		if err != nil {
			return fmt.Errorf("wire: region %q: init %q: %v", rd.Name, f, err)
		}
		r.Init(f, func(p visibility.Point) float64 { return k(p, 0) })
	}
	for i := range rd.Partitions {
		if err := e.declarePartition(&rd.Partitions[i], r, rd); err != nil {
			return err
		}
	}
	return nil
}

func (e *Env) declarePartition(pd *PartitionDecl, r *visibility.Region, rd *RegionDecl) error {
	// sibling resolves an operand to an earlier partition of the same
	// region; Validate guaranteed existence and region membership.
	sibling := func(name string) *visibility.Partition { return e.parts[name] }
	var p *visibility.Partition
	switch pd.Kind {
	case "equal":
		p = r.PartitionEqual(pd.Name, pd.Pieces)
	case "explicit":
		pieces := make([]visibility.IndexSpace, 0, len(pd.Spaces))
		for i, rows := range pd.Spaces {
			sp, err := decodeSpace(rd.Dim, rows)
			if err != nil {
				return fmt.Errorf("wire: partition %q piece %d: %v", pd.Name, i, err)
			}
			pieces = append(pieces, sp)
		}
		p = r.Partition(pd.Name, pieces)
	case "image", "preimage":
		rel, err := buildRelation(pd.Relation)
		if err != nil {
			return fmt.Errorf("wire: partition %q: %v", pd.Name, err)
		}
		relFn := func(pt visibility.Point) []visibility.Point { return rel(pt) }
		if pd.Kind == "image" {
			p = r.PartitionImage(pd.Name, sibling(pd.Source), relFn)
		} else {
			p = r.PartitionPreimage(pd.Name, sibling(pd.Source), relFn)
		}
	case "bycolor":
		color, err := buildColor(pd.Color)
		if err != nil {
			return fmt.Errorf("wire: partition %q: %v", pd.Name, err)
		}
		p = r.PartitionByColor(pd.Name, pd.Pieces, func(pt visibility.Point) int { return color(pt) })
	case "minus":
		p = sibling(pd.Left).Minus(pd.Name, sibling(pd.Right))
	default:
		return fmt.Errorf("wire: partition %q: unknown kind %q", pd.Name, pd.Kind)
	}
	e.parts[pd.Name] = p
	return nil
}

// taskSpec resolves one task declaration against the environment —
// repeating the reference checks Validate skips for batches — and builds
// the per-access kernel dispatch.
func (e *Env) taskSpec(td *TaskDecl) (visibility.TaskSpec, error) {
	var zero visibility.TaskSpec
	if len(td.Accesses) == 0 {
		return zero, fmt.Errorf("needs at least one access")
	}
	accs := make([]visibility.Access, len(td.Accesses))
	writes := make([]KernelFunc, len(td.Accesses))
	reduces := make([]KernelFunc, len(td.Accesses))
	ops := make([]visibility.ReduceOp, len(td.Accesses))
	var first *visibility.Region
	for ai := range td.Accesses {
		a := &td.Accesses[ai]
		reg, err := e.resolve(a.Region)
		if err != nil {
			return zero, fmt.Errorf("access %d: %v", ai, err)
		}
		if !reg.HasField(a.Field) {
			return zero, fmt.Errorf("access %d: region %q has no field %q", ai, reg.Name(), a.Field)
		}
		if first == nil {
			first = reg
		} else if !first.SameTree(reg) {
			return zero, fmt.Errorf("access %d: mixes region trees (one tree per task)", ai)
		}
		var k KernelFunc
		if a.Kernel != nil {
			if k, err = buildKernel(a.Kernel); err != nil {
				return zero, fmt.Errorf("access %d: %v", ai, err)
			}
		}
		switch a.Privilege {
		case "read":
			if a.Kernel != nil {
				return zero, fmt.Errorf("access %d: read access carries a kernel", ai)
			}
			accs[ai] = visibility.Read(reg, a.Field)
		case "write":
			accs[ai] = visibility.Write(reg, a.Field)
			writes[ai] = k
		case "reduce":
			op, ok := reduceOps[a.Op]
			if !ok {
				return zero, fmt.Errorf("access %d: unknown reduction op %q", ai, a.Op)
			}
			accs[ai] = visibility.Reduce(op, reg, a.Field)
			reduces[ai] = k
			ops[ai] = op
		default:
			return zero, fmt.Errorf("access %d: unknown privilege %q", ai, a.Privilege)
		}
	}
	return visibility.TaskSpec{
		Name:     td.Name,
		Accesses: accs,
		Kernel: visibility.Kernel{
			Write: func(ai int, p visibility.Point, in float64) float64 {
				if writes[ai] == nil {
					return in
				}
				return writes[ai](p, in)
			},
			Reduce: func(ai int, p visibility.Point) float64 {
				if reduces[ai] == nil {
					return privilege.Identity(ops[ai])
				}
				return reduces[ai](p, 0)
			},
		},
	}, nil
}
