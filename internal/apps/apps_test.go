package apps_test

import (
	"testing"

	"visibility/internal/apps"
	"visibility/internal/apps/circuit"
	"visibility/internal/apps/pennant"
	"visibility/internal/apps/stencil"
	"visibility/internal/core"
	"visibility/internal/index"
	"visibility/internal/privilege"
)

var builders = []struct {
	name  string
	build apps.Builder
}{
	{"stencil", stencil.New},
	{"circuit", circuit.New},
	{"pennant", pennant.New},
}

// TestInstancesWellFormed checks the structural requirements the harness
// and the ray-casting heuristic rely on.
func TestInstancesWellFormed(t *testing.T) {
	for _, b := range builders {
		for _, nodes := range []int{1, 2, 3, 4, 8} {
			inst := b.build(nodes)
			if inst.Name != b.name {
				t.Errorf("%s(%d): name %q", b.name, nodes, inst.Name)
			}
			if !inst.Owned.DisjointComplete() {
				t.Errorf("%s(%d): owned partition must be disjoint-complete, got %v",
					b.name, nodes, inst.Owned)
			}
			if len(inst.Owned.Subregions) != nodes {
				t.Errorf("%s(%d): owned pieces = %d", b.name, nodes, len(inst.Owned.Subregions))
			}
			if inst.UnitsPerNode <= 0 || inst.UnitName == "" {
				t.Errorf("%s(%d): bad units", b.name, nodes)
			}

			s := core.NewStream(inst.Tree)
			launches := inst.Emit(s, 0)
			if len(launches) == 0 {
				t.Fatalf("%s(%d): no launches", b.name, nodes)
			}
			for _, l := range launches {
				if l.Duration <= 0 {
					t.Errorf("%s(%d): launch %v has no duration", b.name, nodes, l.Task)
				}
				if l.Node < 0 || l.Node >= nodes {
					t.Errorf("%s(%d): launch %v on node %d", b.name, nodes, l.Task, l.Node)
				}
				for _, req := range l.Task.Reqs {
					if !inst.Tree.Root.Space.Covers(req.Region.Space) {
						t.Errorf("%s(%d): region escapes root", b.name, nodes)
					}
				}
			}
			// Iterations are structurally identical: same task count and
			// same per-phase shape.
			l1 := inst.Emit(s, 1)
			if len(l1) != len(launches) {
				t.Errorf("%s(%d): iteration shape changed: %d vs %d",
					b.name, nodes, len(launches), len(l1))
			}
		}
	}
}

// TestGhostsAliased verifies the content-based-coherence-requiring
// property: ghost partitions overlap (except at trivial machine sizes).
func TestGhostsAliased(t *testing.T) {
	for _, b := range builders {
		inst := b.build(4)
		aliased := false
		for _, p := range inst.Tree.Root.Partitions {
			if !p.Disjoint {
				aliased = true
			}
		}
		if !aliased {
			t.Errorf("%s: no aliased partition — the workload would not need content-based coherence", b.name)
		}
	}
}

// TestPhaseParallelism checks that tasks within one phase of one iteration
// are mutually independent (they must run in parallel), via the exact
// analyzer.
func TestPhaseParallelism(t *testing.T) {
	for _, b := range builders {
		nodes := 4
		inst := b.build(nodes)
		s := core.NewStream(inst.Tree)
		launches := inst.Emit(s, 0)
		exact := core.ExactDeps(s.Tasks)

		// Group launches by task name prefix (phase).
		phase := func(name string) string {
			for i, c := range name {
				if c == '[' {
					return name[:i]
				}
			}
			return name
		}
		byPhase := make(map[string][]int)
		for _, l := range launches {
			p := phase(l.Task.Name)
			byPhase[p] = append(byPhase[p], l.Task.ID)
		}
		for p, ids := range byPhase {
			for _, a := range ids {
				for _, d := range exact[a] {
					for _, other := range ids {
						if d == other {
							t.Errorf("%s: phase %s tasks %d and %d interfere", b.name, p, d, a)
						}
					}
				}
			}
		}
	}
}

// TestCrossPhaseDependences verifies that consecutive phases actually
// communicate: at least one exact dependence must exist from each phase to
// a later one within an iteration (otherwise the benchmark would not
// exercise coherence at all).
func TestCrossPhaseDependences(t *testing.T) {
	for _, b := range builders {
		inst := b.build(4)
		s := core.NewStream(inst.Tree)
		inst.Emit(s, 0)
		inst.Emit(s, 1)
		exact := core.ExactDeps(s.Tasks)
		total := 0
		for _, deps := range exact {
			total += len(deps)
		}
		if total == 0 {
			t.Errorf("%s: no dependences at all", b.name)
		}
	}
}

// TestPennantUsesDistinctReductions checks the paper's claim driver:
// Pennant uses several distinct reduction operators.
func TestPennantUsesDistinctReductions(t *testing.T) {
	inst := pennant.New(2)
	s := core.NewStream(inst.Tree)
	ops := make(map[privilege.ReduceOp]bool)
	for _, l := range inst.Emit(s, 0) {
		for _, req := range l.Task.Reqs {
			if req.Priv.IsReduce() {
				ops[req.Priv.Op] = true
			}
		}
	}
	if len(ops) < 2 {
		t.Errorf("pennant uses %d distinct reduction operators, want >= 2", len(ops))
	}
}

// TestStencilGhostIsPlusShaped verifies the 9-point star halo: width-2
// strips in the four cardinal directions, no corners.
func TestStencilGhostIsPlusShaped(t *testing.T) {
	inst := stencil.New(4) // 2x2 grid of pieces
	var ghost *index.Space
	for _, p := range inst.Tree.Root.Partitions {
		if p.Name == "G" {
			g := p.Subregions[0].Space
			ghost = &g
		}
	}
	if ghost == nil {
		t.Fatal("no ghost partition")
	}
	piece := inst.Owned.Subregions[0].Space
	if ghost.Overlaps(piece) {
		t.Error("ghost must exclude the piece itself")
	}
	// Interior piece 0 at the 2x2 corner: its halo has exactly two strips
	// (east and north), each of width 2.
	b := piece.Bounds()
	if ghost.Volume() != 2*(b.Hi.C[0]-b.Lo.C[0]+1)+2*(b.Hi.C[1]-b.Lo.C[1]+1) {
		t.Errorf("ghost volume = %d, not two width-2 strips", ghost.Volume())
	}
}

// TestCircuitDeterministic verifies the graph generator is a pure function
// of the node count.
func TestCircuitDeterministic(t *testing.T) {
	a := circuit.New(4)
	b := circuit.New(4)
	for i, sub := range a.Tree.Root.Partitions[3].Subregions {
		if !sub.Space.Equal(b.Tree.Root.Partitions[3].Subregions[i].Space) {
			t.Fatalf("ghost piece %d differs between builds", i)
		}
	}
}
