// Package apps defines the common shape of the benchmark applications of
// the paper's evaluation (§8): Stencil, Circuit, and Pennant. Each app
// builds a region tree sized to a node count and emits the task launches of
// one iteration of its main loop, annotated with the execution node and the
// virtual duration of each task's kernel.
//
// Index spaces use the applications' real logical sizes (analysis cost in
// this codebase depends on rectangle structure, not volume), so data
// transfer volumes derived from index-space volumes are realistic.
package apps

import (
	"fmt"
	"sort"
	"sync"

	"visibility/internal/cluster"
	"visibility/internal/core"
	"visibility/internal/region"
)

// Launch is one task launch of an application iteration.
type Launch struct {
	Task     *core.Task
	Node     int          // execution node (the piece's owner)
	Duration cluster.Time // kernel execution time in virtual seconds
}

// Instance is one application instantiated at a machine size.
type Instance struct {
	Name string
	Tree *region.Tree
	// Owned is a disjoint-complete partition assigning every element to
	// its owner piece; analysis state and initial data live with it.
	Owned *region.Partition
	// UnitsPerNode is the work per node per iteration in the unit the
	// paper plots for this application.
	UnitsPerNode float64
	// UnitName is the plotted unit ("points", "wires", "zones").
	UnitName string
	// EmitInit appends the application's setup launches (fills and
	// per-piece initialization tasks) to s; they run once, before the
	// first main-loop iteration, and count toward the paper's
	// initialization-time metric. May be nil.
	EmitInit func(s *core.Stream) []Launch
	// Emit appends one iteration's launches to s. Iterations are
	// structurally identical (the steady-state loops of §8 do not change
	// partitioning after initialization).
	Emit func(s *core.Stream, iter int) []Launch
}

// Builder constructs an application instance for a node count.
type Builder func(nodes int) *Instance

var (
	regMu    sync.Mutex
	registry = map[string]Builder{}
)

// Register installs a named application builder; the app packages call it
// from init, so importing an app package (even blank) makes it available
// to Lookup and Names. A duplicate or empty name panics — a wiring bug.
func Register(name string, b Builder) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || registry[name] != nil {
		panic(fmt.Sprintf("apps: builder %q empty or already registered", name))
	}
	registry[name] = b
}

// Lookup returns the registered builder for name.
func Lookup(name string) (Builder, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	b, ok := registry[name]
	return b, ok
}

// Names returns the registered application names, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
