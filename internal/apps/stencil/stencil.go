// Package stencil builds the 2-D 9-point stencil benchmark of §8: a
// structured regular grid of cells partitioned into one block per node,
// with an aliased ghost partition of width-2 halo strips (two cells in
// each cardinal direction, no corners) and a data-parallel increment phase
// intermixed with the stencil phase, following the Parallel Research
// Kernels stencil [26].
package stencil

import (
	"fmt"

	"visibility/internal/apps"
	"visibility/internal/core"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/index"
	"visibility/internal/privilege"
	"visibility/internal/region"
)

const (
	// blockSide is the cells per side of one node's block (weak scaling:
	// the grid grows with the machine).
	blockSide = 2048
	// radius is the stencil radius (two cells each direction, §8).
	radius = 2
	// stencilSeconds and incSeconds are the kernel durations, calibrated
	// to a GPU sweeping ~10⁹-10¹⁰ cell-updates per second.
	stencilSeconds = 4.0e-4
	incSeconds     = 1.0e-4
)

// grid factors nodes into the most square px × py arrangement.
func grid(nodes int) (int, int) {
	px := 1
	for f := 1; f*f <= nodes; f++ {
		if nodes%f == 0 {
			px = f
		}
	}
	return px, nodes / px
}

// New builds the stencil instance for a node count.
func New(nodes int) *apps.Instance {
	px, py := grid(nodes)
	fs := field.NewSpace()
	fin := fs.Add("in")
	fout := fs.Add("out")

	w := int64(px) * blockSide
	h := int64(py) * blockSide
	tree := region.NewTree("grid", index.FromRect(geometry.R2(0, 0, w-1, h-1)), fs)

	block := func(i int) geometry.Rect {
		cx, cy := int64(i%px), int64(i/px)
		return geometry.R2(cx*blockSide, cy*blockSide, (cx+1)*blockSide-1, (cy+1)*blockSide-1)
	}
	pieces := make([]index.Space, nodes)
	halos := make([]index.Space, nodes)
	root := tree.Root.Space
	for i := 0; i < nodes; i++ {
		b := block(i)
		pieces[i] = index.FromRect(b)
		// Width-`radius` strips in the four cardinal directions, clipped
		// to the grid (non-periodic): the star stencil needs no corners.
		strips := []geometry.Rect{
			geometry.R2(b.Lo.C[0], b.Lo.C[1]-radius, b.Hi.C[0], b.Lo.C[1]-1),
			geometry.R2(b.Lo.C[0], b.Hi.C[1]+1, b.Hi.C[0], b.Hi.C[1]+radius),
			geometry.R2(b.Lo.C[0]-radius, b.Lo.C[1], b.Lo.C[0]-1, b.Hi.C[1]),
			geometry.R2(b.Hi.C[0]+1, b.Lo.C[1], b.Hi.C[0]+radius, b.Hi.C[1]),
		}
		halos[i] = index.FromRects(2, strips...).Intersect(root)
	}
	owned := tree.Root.Partition("P", pieces)
	ghost := tree.Root.Partition("G", halos)

	inst := &apps.Instance{
		Name:         "stencil",
		Tree:         tree,
		Owned:        owned,
		UnitsPerNode: float64(blockSide) * float64(blockSide),
		UnitName:     "points",
	}
	inst.EmitInit = func(s *core.Stream) []apps.Launch {
		// Per-piece initialization of both fields, as the PRK stencil's
		// setup loop does.
		launches := make([]apps.Launch, 0, 2*nodes)
		for i := 0; i < nodes; i++ {
			for _, f := range []field.ID{fin, fout} {
				t := s.Launch(fmt.Sprintf("init[%d]", i),
					core.Req{Region: owned.Subregions[i], Field: f, Priv: privilege.Writes()})
				launches = append(launches, apps.Launch{Task: t, Node: i, Duration: incSeconds})
			}
		}
		return launches
	}
	inst.Emit = func(s *core.Stream, iter int) []apps.Launch {
		launches := make([]apps.Launch, 0, 2*nodes)
		for i := 0; i < nodes; i++ {
			st := s.Launch(fmt.Sprintf("stencil[%d]", i),
				core.Req{Region: owned.Subregions[i], Field: fin, Priv: privilege.Reads()},
				core.Req{Region: ghost.Subregions[i], Field: fin, Priv: privilege.Reads()},
				core.Req{Region: owned.Subregions[i], Field: fout, Priv: privilege.Writes()})
			launches = append(launches, apps.Launch{Task: st, Node: i, Duration: stencilSeconds})
		}
		for i := 0; i < nodes; i++ {
			inc := s.Launch(fmt.Sprintf("inc[%d]", i),
				core.Req{Region: owned.Subregions[i], Field: fin, Priv: privilege.Writes()})
			launches = append(launches, apps.Launch{Task: inc, Node: i, Duration: incSeconds})
		}
		return launches
	}
	return inst
}

func init() { apps.Register("stencil", New) }
