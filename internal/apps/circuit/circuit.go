// Package circuit builds the graph-based circuit simulation benchmark of
// §8 [22], the application the paper's running example (Figure 1) is
// derived from: an irregular graph of voltage nodes partitioned into
// pieces, an aliased ghost partition of the remote nodes each piece's
// wires reach, and per-iteration phases that read ghost voltages, reduce
// charge contributions onto shared nodes, and update owned voltages.
package circuit

import (
	"fmt"
	"math/rand"
	"sort"

	"visibility/internal/apps"
	"visibility/internal/core"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/index"
	"visibility/internal/privilege"
	"visibility/internal/region"
)

const (
	// nodesPerPiece is the number of voltage nodes owned by one piece.
	nodesPerPiece = 4096
	// wiresPerPiece is the number of wires owned by one piece (wires are
	// private to their piece; only their endpoints cross pieces).
	wiresPerPiece = 8192
	// externalNeighbors is how many distinct remote nodes a piece's
	// boundary wires reach in each of the near and far categories.
	nearExternal = 16
	farExternal  = 8
	// modelWiresPerNode is the plotted work unit per node per iteration.
	modelWiresPerNode = 65536
	// Kernel durations: calc_new_currents dominates (iterative wire
	// solve), distribute_charge and update_voltages are lighter.
	cncSeconds = 1.0e-2
	dcSeconds  = 4.0e-3
	uvSeconds  = 2.0e-3
)

// New builds the circuit instance for a node count. The graph structure is
// deterministic for a given node count.
func New(nodes int) *apps.Instance {
	fs := field.NewSpace()
	fVolt := fs.Add("voltage")
	fCharge := fs.Add("charge")
	fCur := fs.Add("current")

	// Index layout: voltage nodes first, then wires, one contiguous block
	// per piece each, so a single disjoint-complete "owned" partition
	// exists for the ray-casting heuristic (§7.1).
	nTotal := int64(nodes) * nodesPerPiece
	wTotal := int64(nodes) * wiresPerPiece
	tree := region.NewTree("circuit", index.FromRect(geometry.R1(0, nTotal+wTotal-1)), fs)

	nodeBlock := func(i int) geometry.Rect {
		return geometry.R1(int64(i)*nodesPerPiece, int64(i+1)*nodesPerPiece-1)
	}
	wireBlock := func(i int) geometry.Rect {
		return geometry.R1(nTotal+int64(i)*wiresPerPiece, nTotal+int64(i+1)*wiresPerPiece-1)
	}

	rng := rand.New(rand.NewSource(int64(nodes)*7919 + 17))
	ownedPieces := make([]index.Space, nodes)
	nodePieces := make([]index.Space, nodes)
	wirePieces := make([]index.Space, nodes)
	ghostPieces := make([]index.Space, nodes)
	for i := 0; i < nodes; i++ {
		nodePieces[i] = index.FromRect(nodeBlock(i))
		wirePieces[i] = index.FromRect(wireBlock(i))
		ownedPieces[i] = nodePieces[i].Union(wirePieces[i])

		// Ghost: boundary-zone nodes of ring neighbors plus a few random
		// far pieces — the irregular, piece-specific communication
		// pattern the paper calls out.
		var ext []geometry.Point
		pick := func(piece, n int) {
			if piece == i || piece < 0 {
				return
			}
			base := int64(piece) * nodesPerPiece
			for k := 0; k < n; k++ {
				ext = append(ext, geometry.Pt1(base+rng.Int63n(nodesPerPiece)))
			}
		}
		if nodes > 1 {
			pick((i+1)%nodes, nearExternal)
			pick((i-1+nodes)%nodes, nearExternal)
			for k := 0; k < farExternal; k++ {
				pick(rng.Intn(nodes), 1)
			}
		}
		sort.Slice(ext, func(a, b int) bool { return ext[a].C[0] < ext[b].C[0] })
		ghostPieces[i] = index.FromPoints(1, ext...)
	}
	owned := tree.Root.Partition("owned", ownedPieces)
	pn := tree.Root.Partition("PN", nodePieces)
	pw := tree.Root.Partition("PW", wirePieces)
	gn := tree.Root.Partition("GN", ghostPieces)

	inst := &apps.Instance{
		Name:         "circuit",
		Tree:         tree,
		Owned:        owned,
		UnitsPerNode: modelWiresPerNode,
		UnitName:     "wires",
	}
	inst.EmitInit = func(s *core.Stream) []apps.Launch {
		// Per-piece graph construction: node state, then wire state, as
		// the Legion circuit's init_pieces tasks do.
		launches := make([]apps.Launch, 0, 3*nodes)
		for i := 0; i < nodes; i++ {
			tn := s.Launch(fmt.Sprintf("init_nodes[%d]", i),
				core.Req{Region: pn.Subregions[i], Field: fVolt, Priv: privilege.Writes()},
				core.Req{Region: pn.Subregions[i], Field: fCharge, Priv: privilege.Writes()})
			launches = append(launches, apps.Launch{Task: tn, Node: i, Duration: uvSeconds})
			tw := s.Launch(fmt.Sprintf("init_wires[%d]", i),
				core.Req{Region: pw.Subregions[i], Field: fCur, Priv: privilege.Writes()})
			launches = append(launches, apps.Launch{Task: tw, Node: i, Duration: uvSeconds})
		}
		// Locator construction reads each piece's remote endpoints — the
		// first ghost-region uses, after all pieces are loaded, as in
		// Legion circuit's load phase.
		for i := 0; i < nodes; i++ {
			tl := s.Launch(fmt.Sprintf("init_locator[%d]", i),
				core.Req{Region: pn.Subregions[i], Field: fVolt, Priv: privilege.Reads()},
				core.Req{Region: gn.Subregions[i], Field: fVolt, Priv: privilege.Reads()})
			launches = append(launches, apps.Launch{Task: tl, Node: i, Duration: uvSeconds})
		}
		return launches
	}
	inst.Emit = func(s *core.Stream, iter int) []apps.Launch {
		launches := make([]apps.Launch, 0, 3*nodes)
		for i := 0; i < nodes; i++ {
			cnc := s.Launch(fmt.Sprintf("calc_new_currents[%d]", i),
				core.Req{Region: pn.Subregions[i], Field: fVolt, Priv: privilege.Reads()},
				core.Req{Region: gn.Subregions[i], Field: fVolt, Priv: privilege.Reads()},
				core.Req{Region: pw.Subregions[i], Field: fCur, Priv: privilege.Writes()})
			launches = append(launches, apps.Launch{Task: cnc, Node: i, Duration: cncSeconds})
		}
		for i := 0; i < nodes; i++ {
			dc := s.Launch(fmt.Sprintf("distribute_charge[%d]", i),
				core.Req{Region: pw.Subregions[i], Field: fCur, Priv: privilege.Reads()},
				core.Req{Region: pn.Subregions[i], Field: fCharge, Priv: privilege.Reduces(privilege.OpSum)},
				core.Req{Region: gn.Subregions[i], Field: fCharge, Priv: privilege.Reduces(privilege.OpSum)})
			launches = append(launches, apps.Launch{Task: dc, Node: i, Duration: dcSeconds})
		}
		for i := 0; i < nodes; i++ {
			uv := s.Launch(fmt.Sprintf("update_voltages[%d]", i),
				core.Req{Region: pn.Subregions[i], Field: fVolt, Priv: privilege.Writes()},
				core.Req{Region: pn.Subregions[i], Field: fCharge, Priv: privilege.Writes()})
			launches = append(launches, apps.Launch{Task: uv, Node: i, Duration: uvSeconds})
		}
		return launches
	}
	return inst
}

func init() { apps.Register("circuit", New) }
