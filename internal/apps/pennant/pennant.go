// Package pennant builds the PENNANT mini-app benchmark of §8 [12]: 2-D
// Lagrangian hydrodynamics on an unstructured mesh of zones and points.
// Zones are private to a piece; mesh points on piece boundaries are shared,
// giving an aliased ghost-point partition, and point forces are gathered
// with sum-reductions while the global timestep is computed with min/max
// reductions onto a single control element — several distinct reduction
// operators used in different parts of the code, as the paper notes.
package pennant

import (
	"fmt"

	"visibility/internal/apps"
	"visibility/internal/core"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/index"
	"visibility/internal/privilege"
	"visibility/internal/region"
)

const (
	// zonesPerPiece / pointsPerPiece size one node's share of the mesh.
	zonesPerPiece  = 2048
	pointsPerPiece = 2112
	// haloPoints is how many boundary points a piece shares with each
	// neighbor; adjacent pieces' ghost sets overlap (aliased).
	haloPoints = 64
	// modelZonesPerNode is the plotted work unit.
	modelZonesPerNode = 262144
	// Kernel durations for the five phases of one hydro cycle.
	cfzSeconds = 1.0e-3
	afSeconds  = 3.0e-4
	azSeconds  = 6.0e-4
	eosSeconds = 4.0e-4
	cdtSeconds = 3.0e-4
)

// New builds the pennant instance for a node count, with the global
// timestep routed through the region system (a single control element
// receiving min/max reductions).
func New(nodes int) *apps.Instance { return build(nodes, false) }

// NewFutures builds the pennant variant that computes the global timestep
// through futures, as the real PENNANT port does: calc_dt tasks return
// futures, a folding task consumes them, and the next cycle's tasks
// consume the folded future — ordering edges and small messages instead
// of region coherence traffic.
func NewFutures(nodes int) *apps.Instance { return build(nodes, true) }

func build(nodes int, useFutures bool) *apps.Instance {
	fs := field.NewSpace()
	fZP := fs.Add("zp")   // zone pressure
	fZR := fs.Add("zr")   // zone density
	fPF := fs.Add("pf")   // point force (sum reductions)
	fPU := fs.Add("pu")   // point velocity
	fDT := fs.Add("dt")   // global timestep (min reduction)
	fDE := fs.Add("derr") // global error estimate (max reduction)

	// Index layout: zones, then points, then one control element, each
	// piece contiguous, so the "owned" partition is disjoint-complete.
	zTotal := int64(nodes) * zonesPerPiece
	pTotal := int64(nodes) * pointsPerPiece
	ctrl := geometry.Pt1(zTotal + pTotal)
	tree := region.NewTree("pennant", index.FromRect(geometry.R1(0, zTotal+pTotal)), fs)

	zoneBlock := func(i int) geometry.Rect {
		return geometry.R1(int64(i)*zonesPerPiece, int64(i+1)*zonesPerPiece-1)
	}
	pointBlock := func(i int) geometry.Rect {
		return geometry.R1(zTotal+int64(i)*pointsPerPiece, zTotal+int64(i+1)*pointsPerPiece-1)
	}

	ownedPieces := make([]index.Space, nodes)
	zonePieces := make([]index.Space, nodes)
	pointPieces := make([]index.Space, nodes)
	ghostPieces := make([]index.Space, nodes)
	for i := 0; i < nodes; i++ {
		zonePieces[i] = index.FromRect(zoneBlock(i))
		pointPieces[i] = index.FromRect(pointBlock(i))
		ownedPieces[i] = zonePieces[i].Union(pointPieces[i])
		if i == 0 {
			ownedPieces[i] = ownedPieces[i].Union(index.FromPoints(1, ctrl))
		}
		// Ghost points: boundary points of the ring neighbors, plus a few
		// points of the second neighbor (mesh corners touch diagonal
		// pieces in an unstructured decomposition), which makes adjacent
		// pieces' ghost sets overlap — an aliased partition.
		var halo []geometry.Rect
		if nodes > 1 {
			r := pointBlock((i + 1) % nodes)
			halo = append(halo, geometry.R1(r.Lo.C[0], r.Lo.C[0]+haloPoints-1))
			l := pointBlock((i - 1 + nodes) % nodes)
			halo = append(halo, geometry.R1(l.Hi.C[0]-haloPoints+1, l.Hi.C[0]))
			rr := pointBlock((i + 2) % nodes)
			halo = append(halo, geometry.R1(rr.Lo.C[0], rr.Lo.C[0]+haloPoints/4-1))
		}
		ghostPieces[i] = index.FromRects(1, halo...)
	}
	owned := tree.Root.Partition("owned", ownedPieces)
	pz := tree.Root.Partition("PZ", zonePieces)
	pp := tree.Root.Partition("PP", pointPieces)
	gp := tree.Root.Partition("GP", ghostPieces)
	dt := tree.Root.Partition("DT", []index.Space{index.FromPoints(1, ctrl)})
	dtReg := dt.Subregions[0]

	name := "pennant"
	if useFutures {
		name = "pennant-futures"
	}
	inst := &apps.Instance{
		Name:         name,
		Tree:         tree,
		Owned:        owned,
		UnitsPerNode: modelZonesPerNode,
		UnitName:     "zones",
	}
	// lastFinalize carries the previous cycle's dt future across Emit
	// calls in the futures variant.
	lastFinalize := -1
	inst.EmitInit = func(s *core.Stream) []apps.Launch {
		// Mesh setup: per-piece zone and point state, then the initial
		// global timestep on node 0.
		launches := make([]apps.Launch, 0, 2*nodes+1)
		for i := 0; i < nodes; i++ {
			tz := s.Launch(fmt.Sprintf("init_zones[%d]", i),
				core.Req{Region: pz.Subregions[i], Field: fZR, Priv: privilege.Writes()},
				core.Req{Region: pz.Subregions[i], Field: fZP, Priv: privilege.Writes()})
			launches = append(launches, apps.Launch{Task: tz, Node: i, Duration: eosSeconds})
			tp := s.Launch(fmt.Sprintf("init_points[%d]", i),
				core.Req{Region: pp.Subregions[i], Field: fPF, Priv: privilege.Writes()},
				core.Req{Region: pp.Subregions[i], Field: fPU, Priv: privilege.Writes()})
			launches = append(launches, apps.Launch{Task: tp, Node: i, Duration: afSeconds})
		}
		t0 := s.Launch("init_dt",
			core.Req{Region: dtReg, Field: fDT, Priv: privilege.Writes()},
			core.Req{Region: dtReg, Field: fDE, Priv: privilege.Writes()})
		launches = append(launches, apps.Launch{Task: t0, Node: 0, Duration: 1e-5})
		return launches
	}
	inst.Emit = func(s *core.Stream, iter int) []apps.Launch {
		launches := make([]apps.Launch, 0, 5*nodes)
		// Phase 1: gather corner forces; reductions reach ghost points.
		// The current timestep arrives either through the dt region or as
		// last cycle's folded future.
		for i := 0; i < nodes; i++ {
			reqs := []core.Req{
				{Region: pz.Subregions[i], Field: fZP, Priv: privilege.Reads()},
				{Region: pp.Subregions[i], Field: fPF, Priv: privilege.Reduces(privilege.OpSum)},
				{Region: gp.Subregions[i], Field: fPF, Priv: privilege.Reduces(privilege.OpSum)},
			}
			if !useFutures {
				reqs = append(reqs, core.Req{Region: dtReg, Field: fDT, Priv: privilege.Reads()})
			}
			cfz := s.Launch(fmt.Sprintf("calc_forces[%d]", i), reqs...)
			if useFutures && lastFinalize >= 0 {
				cfz.FutureDeps = []int{lastFinalize}
			}
			launches = append(launches, apps.Launch{Task: cfz, Node: i, Duration: cfzSeconds})
		}
		// Phase 2: apply forces to points.
		for i := 0; i < nodes; i++ {
			af := s.Launch(fmt.Sprintf("apply_forces[%d]", i),
				core.Req{Region: pp.Subregions[i], Field: fPU, Priv: privilege.Writes()},
				core.Req{Region: pp.Subregions[i], Field: fPF, Priv: privilege.Writes()})
			launches = append(launches, apps.Launch{Task: af, Node: i, Duration: afSeconds})
		}
		// Phase 3: advance zones from point velocities (incl. ghosts).
		for i := 0; i < nodes; i++ {
			az := s.Launch(fmt.Sprintf("adv_zones[%d]", i),
				core.Req{Region: pz.Subregions[i], Field: fZR, Priv: privilege.Writes()},
				core.Req{Region: pp.Subregions[i], Field: fPU, Priv: privilege.Reads()},
				core.Req{Region: gp.Subregions[i], Field: fPU, Priv: privilege.Reads()})
			launches = append(launches, apps.Launch{Task: az, Node: i, Duration: azSeconds})
		}
		// Phase 4: equation of state.
		for i := 0; i < nodes; i++ {
			eos := s.Launch(fmt.Sprintf("eos[%d]", i),
				core.Req{Region: pz.Subregions[i], Field: fZP, Priv: privilege.Writes()},
				core.Req{Region: pz.Subregions[i], Field: fZR, Priv: privilege.Reads()})
			launches = append(launches, apps.Launch{Task: eos, Node: i, Duration: eosSeconds})
		}
		// Phase 5: per-piece timestep proposals. In the region variant the
		// proposals are min/max reductions onto the control element; in
		// the futures variant each calc_dt returns a future.
		var cdtIDs []int
		for i := 0; i < nodes; i++ {
			reqs := []core.Req{
				{Region: pz.Subregions[i], Field: fZR, Priv: privilege.Reads()},
			}
			if !useFutures {
				reqs = append(reqs,
					core.Req{Region: dtReg, Field: fDT, Priv: privilege.Reduces(privilege.OpMin)},
					core.Req{Region: dtReg, Field: fDE, Priv: privilege.Reduces(privilege.OpMax)})
			}
			cdt := s.Launch(fmt.Sprintf("calc_dt[%d]", i), reqs...)
			cdtIDs = append(cdtIDs, cdt.ID)
			launches = append(launches, apps.Launch{Task: cdt, Node: i, Duration: cdtSeconds})
		}
		// Phase 6: fold the proposals into the new timestep — one task on
		// node 0, completing the all-reduce (N→1→N each cycle).
		if useFutures {
			fin := s.Launch("fold_dt",
				core.Req{Region: dt.Subregions[0], Field: fDT, Priv: privilege.Writes()})
			fin.FutureDeps = cdtIDs
			lastFinalize = fin.ID
			launches = append(launches, apps.Launch{Task: fin, Node: 0, Duration: 1e-5})
		} else {
			fin := s.Launch("finalize_dt",
				core.Req{Region: dtReg, Field: fDT, Priv: privilege.Writes()},
				core.Req{Region: dtReg, Field: fDE, Priv: privilege.Writes()})
			launches = append(launches, apps.Launch{Task: fin, Node: 0, Duration: 1e-5})
		}
		return launches
	}
	return inst
}

func init() {
	apps.Register("pennant", New)
	apps.Register("pennant-futures", NewFutures)
}
