// Package privilege defines task privileges on region arguments and the
// interference relation between them (paper §4).
//
// A privilege is read, read-write, or reduce(f) for a reduction operator f.
// Two privileges interfere when two tasks holding them on overlapping data
// could produce different results if reordered; the only non-interfering
// combinations are read/read and reduce(f)/reduce(f) with the same f.
package privilege

import (
	"fmt"
	"math"
)

// Kind classifies a privilege.
type Kind int

const (
	// Read grants read-only access: fully transparent in the visibility
	// reduction (§3.1).
	Read Kind = iota
	// ReadWrite grants mutation: fully opaque, occluding all earlier
	// updates to the same points.
	ReadWrite
	// Reduce grants application of one reduction operator: partially
	// transparent, blending with earlier updates.
	Reduce
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case ReadWrite:
		return "read-write"
	case Reduce:
		return "reduce"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ReduceOp identifies a reduction operator. All operators used here have an
// identity element so reductions can be accumulated lazily into scratch
// buffers and folded when the value is finally read (§5).
type ReduceOp int

const (
	OpNone ReduceOp = iota // not a reduction
	OpSum                  // +=, identity 0
	OpProd                 // *=, identity 1
	OpMin                  // min=, identity +inf
	OpMax                  // max=, identity -inf
)

func (op ReduceOp) String() string {
	switch op {
	case OpNone:
		return "none"
	case OpSum:
		return "+"
	case OpProd:
		return "*"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	default:
		return fmt.Sprintf("ReduceOp(%d)", int(op))
	}
}

// Privilege is a task's declared access to one region argument.
type Privilege struct {
	Kind Kind
	Op   ReduceOp // valid only when Kind == Reduce
}

// Reads returns the read privilege.
func Reads() Privilege { return Privilege{Kind: Read} }

// Writes returns the read-write privilege.
func Writes() Privilege { return Privilege{Kind: ReadWrite} }

// Reduces returns the reduce privilege for op.
func Reduces(op ReduceOp) Privilege { return Privilege{Kind: Reduce, Op: op} }

// IsWrite reports whether the privilege can overwrite data (fully opaque).
func (p Privilege) IsWrite() bool { return p.Kind == ReadWrite }

// IsRead reports whether the privilege only observes data.
func (p Privilege) IsRead() bool { return p.Kind == Read }

// IsReduce reports whether the privilege applies a reduction.
func (p Privilege) IsReduce() bool { return p.Kind == Reduce }

// Mutates reports whether the privilege changes data at all (write or
// reduce); such privileges contribute entries that later materializations
// must observe.
func (p Privilege) Mutates() bool { return p.Kind != Read }

// Same reports whether p and q are the identical privilege (same kind and,
// for reductions, the same operator). Code outside this package must use
// Same rather than comparing Privilege values with ==, so that any future
// field added here (e.g. a write-discard refinement) cannot silently fall
// out of the comparison.
func (p Privilege) Same(q Privilege) bool { return p == q }

func (p Privilege) String() string {
	if p.Kind == Reduce {
		return "reduce" + p.Op.String()
	}
	return p.Kind.String()
}

// Interferes reports whether tasks holding p and q on overlapping data have
// a dependence (§4): every combination interferes except read/read and
// reductions with the same operator.
func Interferes(p, q Privilege) bool {
	if p.Kind == Read && q.Kind == Read {
		return false
	}
	if p.Kind == Reduce && q.Kind == Reduce && p.Op == q.Op {
		return false
	}
	return true
}

// Summary is a conservative set of privilege shapes present in a region
// subtree, used by the painter's algorithm (§5.1) to skip composite-view
// creation for subtrees whose recorded privileges cannot interfere with a
// new task's privilege.
type Summary struct {
	hasRead   bool
	hasWrite  bool
	reduceOps map[ReduceOp]bool
}

// NewSummary returns an empty summary.
func NewSummary() *Summary { return &Summary{reduceOps: make(map[ReduceOp]bool)} }

// Add records p in the summary.
func (s *Summary) Add(p Privilege) {
	switch p.Kind {
	case Read:
		s.hasRead = true
	case ReadWrite:
		s.hasWrite = true
	case Reduce:
		s.reduceOps[p.Op] = true
	}
}

// IsEmpty reports whether no privileges have been recorded.
func (s *Summary) IsEmpty() bool {
	return !s.hasRead && !s.hasWrite && len(s.reduceOps) == 0
}

// Reset clears the summary.
func (s *Summary) Reset() {
	s.hasRead = false
	s.hasWrite = false
	for op := range s.reduceOps {
		delete(s.reduceOps, op)
	}
}

// AddAll records every privilege of o into s.
func (s *Summary) AddAll(o *Summary) {
	if o.hasRead {
		s.hasRead = true
	}
	if o.hasWrite {
		s.hasWrite = true
	}
	for op := range o.reduceOps {
		s.reduceOps[op] = true
	}
}

// Interferes reports whether any recorded privilege interferes with p.
func (s *Summary) Interferes(p Privilege) bool {
	if s.hasWrite {
		return true
	}
	if s.hasRead && p.Kind != Read {
		return true
	}
	for op := range s.reduceOps {
		if Interferes(Reduces(op), p) {
			return true
		}
	}
	return false
}

// Identity returns the identity element of op.
func Identity(op ReduceOp) float64 {
	switch op {
	case OpSum:
		return 0
	case OpProd:
		return 1
	case OpMin:
		return inf
	case OpMax:
		return -inf
	default:
		panic("privilege: no identity for " + op.String())
	}
}

// Apply folds x into acc using op.
func Apply(op ReduceOp, acc, x float64) float64 {
	switch op {
	case OpSum:
		return acc + x
	case OpProd:
		return acc * x
	case OpMin:
		if x < acc {
			return x
		}
		return acc
	case OpMax:
		if x > acc {
			return x
		}
		return acc
	default:
		panic("privilege: cannot apply " + op.String())
	}
}

var inf = math.Inf(1)
