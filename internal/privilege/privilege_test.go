package privilege

import (
	"math"
	"testing"
)

func TestInterferes(t *testing.T) {
	cases := []struct {
		p, q Privilege
		want bool
	}{
		{Reads(), Reads(), false},
		{Reads(), Writes(), true},
		{Writes(), Reads(), true},
		{Writes(), Writes(), true},
		{Reduces(OpSum), Reduces(OpSum), false},
		{Reduces(OpSum), Reduces(OpMin), true},
		{Reduces(OpSum), Reads(), true},
		{Reads(), Reduces(OpSum), true},
		{Writes(), Reduces(OpSum), true},
		{Reduces(OpMax), Writes(), true},
	}
	for _, c := range cases {
		if got := Interferes(c.p, c.q); got != c.want {
			t.Errorf("Interferes(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
		// Interference is symmetric.
		if got := Interferes(c.q, c.p); got != c.want {
			t.Errorf("Interferes(%v, %v) = %v, want %v (symmetry)", c.q, c.p, got, c.want)
		}
	}
}

func TestInterferesEdgeCases(t *testing.T) {
	ops := []ReduceOp{OpSum, OpProd, OpMin, OpMax}

	// Reductions interfere exactly when their operators differ: sum and
	// min do not commute with each other, but each commutes with itself.
	for _, f := range ops {
		for _, g := range ops {
			want := f != g
			if got := Interferes(Reduces(f), Reduces(g)); got != want {
				t.Errorf("Interferes(reduce%v, reduce%v) = %v, want %v", f, g, got, want)
			}
		}
	}

	// A reduction interferes with both reads (the read must see the folded
	// value) and writes (the write occludes the accumulation), regardless
	// of operator.
	for _, f := range ops {
		if !Interferes(Reduces(f), Reads()) || !Interferes(Reads(), Reduces(f)) {
			t.Errorf("reduce%v vs read should interfere", f)
		}
		if !Interferes(Reduces(f), Writes()) || !Interferes(Writes(), Reduces(f)) {
			t.Errorf("reduce%v vs write should interfere", f)
		}
	}

	// The zero Privilege value is a read (Kind zero value is Read): it
	// must behave exactly like Reads() under interference.
	var zero Privilege
	if !zero.IsRead() {
		t.Fatalf("zero Privilege should be a read, got %v", zero)
	}
	if Interferes(zero, Reads()) || Interferes(zero, zero) {
		t.Error("zero privilege should not interfere with reads")
	}
	if !Interferes(zero, Writes()) || !Interferes(zero, Reduces(OpSum)) {
		t.Error("zero privilege should interfere with mutators")
	}
}

func TestSame(t *testing.T) {
	cases := []struct {
		p, q Privilege
		want bool
	}{
		{Reads(), Reads(), true},
		{Writes(), Writes(), true},
		{Reduces(OpSum), Reduces(OpSum), true},
		{Reduces(OpSum), Reduces(OpMin), false},
		{Reads(), Writes(), false},
		{Writes(), Reduces(OpSum), false},
		{Reads(), Privilege{}, true}, // zero value is the read privilege
	}
	for _, c := range cases {
		if got := c.p.Same(c.q); got != c.want {
			t.Errorf("(%v).Same(%v) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := c.q.Same(c.p); got != c.want {
			t.Errorf("(%v).Same(%v) = %v, want %v (symmetry)", c.q, c.p, got, c.want)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !Writes().IsWrite() || !Writes().Mutates() || Writes().IsRead() || Writes().IsReduce() {
		t.Error("Writes predicates wrong")
	}
	if !Reads().IsRead() || Reads().Mutates() {
		t.Error("Reads predicates wrong")
	}
	if !Reduces(OpSum).IsReduce() || !Reduces(OpSum).Mutates() {
		t.Error("Reduces predicates wrong")
	}
}

func TestIdentityAndApply(t *testing.T) {
	ops := []ReduceOp{OpSum, OpProd, OpMin, OpMax}
	for _, op := range ops {
		id := Identity(op)
		for _, x := range []float64{-3, 0, 2.5, 100} {
			if got := Apply(op, id, x); got != x {
				t.Errorf("Apply(%v, identity, %v) = %v, want %v", op, x, got, x)
			}
		}
	}
	if Apply(OpSum, 2, 3) != 5 {
		t.Error("sum wrong")
	}
	if Apply(OpProd, 2, 3) != 6 {
		t.Error("prod wrong")
	}
	if Apply(OpMin, 2, 3) != 2 || Apply(OpMin, 3, 2) != 2 {
		t.Error("min wrong")
	}
	if Apply(OpMax, 2, 3) != 3 || Apply(OpMax, 3, 2) != 3 {
		t.Error("max wrong")
	}
	if !math.IsInf(Identity(OpMin), 1) || !math.IsInf(Identity(OpMax), -1) {
		t.Error("min/max identities should be infinities")
	}
}

func TestIdentityPanicsOnNone(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Identity(OpNone)
}

func TestSummary(t *testing.T) {
	s := NewSummary()
	if !s.IsEmpty() {
		t.Error("new summary should be empty")
	}
	if s.Interferes(Writes()) {
		t.Error("empty summary interferes with nothing")
	}

	s.Add(Reads())
	if s.Interferes(Reads()) {
		t.Error("read summary should not interfere with read")
	}
	if !s.Interferes(Writes()) || !s.Interferes(Reduces(OpSum)) {
		t.Error("read summary should interfere with mutators")
	}

	s.Reset()
	s.Add(Reduces(OpSum))
	if s.Interferes(Reduces(OpSum)) {
		t.Error("same-op reductions do not interfere")
	}
	if !s.Interferes(Reduces(OpMin)) || !s.Interferes(Reads()) {
		t.Error("reduce summary should interfere with other ops and reads")
	}

	s.Add(Writes())
	if !s.Interferes(Reads()) || !s.Interferes(Reduces(OpSum)) {
		t.Error("write summary interferes with everything")
	}
	if s.IsEmpty() {
		t.Error("summary with entries is not empty")
	}
}

func TestStrings(t *testing.T) {
	if Reduces(OpSum).String() != "reduce+" {
		t.Errorf("String = %q", Reduces(OpSum).String())
	}
	if Writes().String() != "read-write" || Reads().String() != "read" {
		t.Error("kind strings wrong")
	}
	if OpMin.String() != "min" || OpMax.String() != "max" || OpProd.String() != "*" || OpNone.String() != "none" {
		t.Error("op strings wrong")
	}
}
