package privilege

import (
	"testing"
)

// decodePrivilege builds a privilege from one fuzz byte, covering every
// kind, every operator, and ill-formed combinations (a reduce op on a
// non-reduce privilege, OpNone on a reduce) the constructors never emit.
func decodePrivilege(b byte) Privilege {
	p := Privilege{Kind: Kind(b % 3), Op: ReduceOp(int(b/3) % 5)}
	return p
}

// FuzzInterferes checks the interference relation against its §4
// specification on arbitrary privilege pairs: the only non-interfering
// combinations are read/read and reduce/reduce with one operator, the
// relation is symmetric, self-interference is exactly write-ness, and a
// single-entry Summary agrees with the pairwise relation.
func FuzzInterferes(f *testing.F) {
	f.Add(byte(0), byte(0))   // read vs read
	f.Add(byte(1), byte(2))   // write vs reduce
	f.Add(byte(5), byte(5))   // reduce(sum) vs reduce(sum)
	f.Add(byte(5), byte(8))   // reduce(sum) vs reduce(prod)
	f.Add(byte(2), byte(14))  // reduce(none) vs reduce(max)
	f.Add(byte(255), byte(0)) // high bytes wrap
	f.Fuzz(func(t *testing.T, pb, qb byte) {
		p, q := decodePrivilege(pb), decodePrivilege(qb)

		want := true
		switch {
		case p.Kind == Read && q.Kind == Read:
			want = false
		case p.Kind == Reduce && q.Kind == Reduce && p.Op == q.Op:
			want = false
		}
		if got := Interferes(p, q); got != want {
			t.Fatalf("Interferes(%v, %v) = %v, want %v", p, q, got, want)
		}
		if Interferes(p, q) != Interferes(q, p) {
			t.Fatalf("Interferes(%v, %v) is not symmetric", p, q)
		}
		// A privilege interferes with itself exactly when it can
		// overwrite: reads observe, reductions of one operator commute.
		if Interferes(p, p) != p.IsWrite() {
			t.Fatalf("Interferes(%v, %v) = %v, want IsWrite = %v", p, p, Interferes(p, p), p.IsWrite())
		}
		// Same privileges never interfere unless they write.
		if p.Same(q) && Interferes(p, q) != p.IsWrite() {
			t.Fatalf("identical privileges %v: Interferes = %v, IsWrite = %v", p, Interferes(p, q), p.IsWrite())
		}
		// A summary holding only p must agree with the pairwise relation.
		s := NewSummary()
		s.Add(p)
		if s.Interferes(q) != Interferes(p, q) {
			t.Fatalf("Summary{%v}.Interferes(%v) = %v, Interferes = %v",
				p, q, s.Interferes(q), Interferes(p, q))
		}
	})
}
