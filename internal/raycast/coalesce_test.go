package raycast_test

import (
	"testing"

	"visibility/internal/core"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/index"
	"visibility/internal/privilege"
	"visibility/internal/raycast"
	"visibility/internal/region"
	"visibility/internal/testutil"
)

// TestDominatingWriteCoalesces reproduces the §7 behavior on the Figure 5
// stream: the ghost-phase reductions refine the up field to nine sets, and
// the second write phase's dominating writes coalesce them back to the
// three primary pieces.
func TestDominatingWriteCoalesces(t *testing.T) {
	tree, p, g := testutil.GraphTree()
	up, _ := tree.Fields.Lookup("up")
	s := core.NewStream(tree)
	rc := raycast.New(tree, core.Options{})

	for _, task := range testutil.Figure5(s, p, g) {
		rc.Analyze(task)
	}
	// After t6-t8 (writes of P[i].up), each P piece is one coalesced set.
	if got := rc.EquivalenceSets(up); got != 3 {
		t.Errorf("after write phase: up sets = %d, want 3 (coalesced)", got)
	}
	if rc.Stats().SetsCoalesced == 0 {
		t.Error("expected dominating writes to coalesce sets")
	}
	if rc.CurrentPartition(up) != p {
		t.Errorf("bucket partition = %v, want P", rc.CurrentPartition(up))
	}

	// The population oscillates between the refined ghost shape and the
	// coalesced write shape but never grows beyond the first iteration's
	// peak — unlike Warnock, whose count would stay at the peak forever.
	peak := 0
	for iter := 0; iter < 5; iter++ {
		for i := 0; i < 3; i++ {
			rc.Analyze(testutil.LaunchT2(s, p, g, i))
		}
		if n := rc.EquivalenceSets(up); n > peak {
			peak = n
		}
		for i := 0; i < 3; i++ {
			rc.Analyze(testutil.LaunchT1(s, p, g, i))
		}
		if got := rc.EquivalenceSets(up); got != 3 {
			t.Errorf("iteration %d: after writes, up sets = %d, want 3", iter, got)
		}
	}
	if peak > 9 {
		t.Errorf("set population peaked at %d, want ≤ 9", peak)
	}
}

// TestInvariantHolds checks disjointness/coverage of the live sets across
// a stream with coalescing.
func TestInvariantHolds(t *testing.T) {
	tree, p, g := testutil.GraphTree()
	s := core.NewStream(tree)
	rc := raycast.New(tree, core.Options{})
	var launches []*core.Task
	launches = append(launches, testutil.Figure5(s, p, g)...)
	for i := 0; i < 3; i++ {
		launches = append(launches, testutil.LaunchT2(s, p, g, i))
	}
	for _, task := range launches {
		rc.Analyze(task)
		for f := 0; f < tree.Fields.Len(); f++ {
			if err := testutil.CheckPartitionInvariant(rc.SetSpaces(field.ID(f)), tree.Root.Space); err != nil {
				t.Fatalf("after %v: %v", task, err)
			}
		}
	}
}

// TestMigration verifies that when the application durably switches to a
// different disjoint-complete partition, the equivalence sets are
// re-bucketed under it (§7.1).
func TestMigration(t *testing.T) {
	fs := field.NewSpace()
	fs.Add("v")
	tree := region.NewTree("A", index.FromRect(geometry.R1(0, 15)), fs)
	p4 := tree.Root.Partition("P4", []index.Space{
		index.FromRect(geometry.R1(0, 3)),
		index.FromRect(geometry.R1(4, 7)),
		index.FromRect(geometry.R1(8, 11)),
		index.FromRect(geometry.R1(12, 15)),
	})
	p2 := tree.Root.Partition("P2", []index.Space{
		index.FromRect(geometry.R1(0, 7)),
		index.FromRect(geometry.R1(8, 15)),
	})

	s := core.NewStream(tree)
	rc := raycast.New(tree, core.Options{})
	for i := 0; i < 4; i++ {
		rc.Analyze(s.Launch("w", core.Req{Region: p4.Subregions[i], Field: 0, Priv: privilege.Writes()}))
	}
	if rc.CurrentPartition(0) != p4 {
		t.Fatalf("initial partition = %v, want P4", rc.CurrentPartition(0))
	}

	// Switch the application to P2 for many launches: the analyzer must
	// migrate its buckets.
	for rep := 0; rep < 10; rep++ {
		for i := 0; i < 2; i++ {
			rc.Analyze(s.Launch("w2", core.Req{Region: p2.Subregions[i], Field: 0, Priv: privilege.Writes()}))
		}
	}
	if rc.CurrentPartition(0) != p2 {
		t.Errorf("after switch: partition = %v, want P2", rc.CurrentPartition(0))
	}
	if err := testutil.CheckPartitionInvariant(rc.SetSpaces(0), tree.Root.Space); err != nil {
		t.Error(err)
	}
	// Writes through P2 coalesce to its two pieces.
	if got := rc.EquivalenceSets(0); got != 2 {
		t.Errorf("sets after migration + writes = %d, want 2", got)
	}
}

// TestKDFallback verifies correctness when no disjoint-complete partition
// exists: the K-d container carries the sets.
func TestKDFallback(t *testing.T) {
	fs := field.NewSpace()
	fs.Add("v")
	tree := region.NewTree("A", index.FromRect(geometry.R2(0, 0, 7, 7)), fs)
	// Incomplete (hole in the middle) and aliased partitions only.
	q := tree.Root.Partition("Q", []index.Space{
		index.FromRect(geometry.R2(0, 0, 4, 4)),
		index.FromRect(geometry.R2(3, 3, 7, 7)),
	})
	if q.DisjointComplete() {
		t.Fatal("fixture must not be disjoint-complete")
	}

	s := core.NewStream(tree)
	rc := raycast.New(tree, core.Options{})
	rc.Analyze(s.Launch("w0", core.Req{Region: q.Subregions[0], Field: 0, Priv: privilege.Writes()}))
	rc.Analyze(s.Launch("r", core.Req{Region: q.Subregions[1], Field: 0, Priv: privilege.Reads()}))
	res := rc.Analyze(s.Launch("w1", core.Req{Region: q.Subregions[1], Field: 0, Priv: privilege.Writes()}))

	if rc.CurrentPartition(0) != nil {
		t.Error("expected K-d fallback (no partition)")
	}
	// w1 must depend on the overlapping write and the read.
	if len(res.Deps) != 2 || res.Deps[0] != 0 || res.Deps[1] != 1 {
		t.Errorf("w1 deps = %v, want [0 1]", res.Deps)
	}
	if err := testutil.CheckPartitionInvariant(rc.SetSpaces(0), tree.Root.Space); err != nil {
		t.Error(err)
	}
	// Full coherence check through the engine on the same shape.
	s2 := core.NewStream(tree)
	s2.Launch("w0", core.Req{Region: q.Subregions[0], Field: 0, Priv: privilege.Writes()})
	s2.Launch("red", core.Req{Region: q.Subregions[1], Field: 0, Priv: privilege.Reduces(privilege.OpSum)})
	s2.Launch("w1", core.Req{Region: q.Subregions[0], Field: 0, Priv: privilege.Writes()})
	err := core.Verify(s2, testutil.FullInit(tree), core.HashKernel{},
		core.Factory{Name: "raycast", New: func(tr *region.Tree) core.Analyzer {
			return raycast.New(tr, core.Options{})
		}})
	if err != nil {
		t.Error(err)
	}
}
