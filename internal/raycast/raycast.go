// Package raycast implements the ray-casting coherence algorithm (paper
// §7), the algorithm in production use by Legion. It keeps Warnock-style
// equivalence sets, but a task writing a region R creates a single fresh
// equivalence set for R and prunes every set R occludes (dominating_write,
// Figure 11), so equivalence sets coalesce as well as refine and the
// steady-state population stays small.
//
// Because coalescing destroys the monotone refinement tree Warnock's
// algorithm uses as its BVH, ray casting instead derives its acceleration
// structure from a disjoint-complete partition of the root region chosen by
// a heuristic from the partitions tasks actually use: equivalence sets are
// stored in per-piece buckets, with a static BVH over the piece bounding
// boxes to find the buckets a region overlaps. If the application migrates
// to a different disjoint-complete partition, the sets are re-bucketed; if
// no such partition exists, a K-d decomposition of the root bounds is used
// instead (§7.1).
package raycast

import (
	"sort"

	"visibility/internal/bvh"
	"visibility/internal/core"
	"visibility/internal/fault"
	"visibility/internal/field"
	"visibility/internal/index"
	"visibility/internal/obs/recorder"
	"visibility/internal/privilege"
	"visibility/internal/region"
)

// migrateAfter is how many consecutive launches must use a different
// disjoint-complete partition before the equivalence sets are re-bucketed.
const migrateAfter = 8

// RayCast is the ray-casting coherence analyzer of §7.
type RayCast struct {
	tree *region.Tree
	opts core.Options
	// state holds the per-field interval lists and acceleration indexes,
	// mutated by every Analyze with no lock: the analyzer runs on exactly
	// one goroutine (the submit side, §3.2).
	//
	// confined to analyzer
	state map[field.ID]*fieldState
	// confined to analyzer
	stats core.Stats
}

// New creates a ray-casting analyzer for tree.
func New(tree *region.Tree, opts core.Options) *RayCast {
	return &RayCast{tree: tree, opts: opts.Normalize(), state: make(map[field.ID]*fieldState)}
}

// Name implements core.Analyzer.
func (rc *RayCast) Name() string { return "raycast" }

// Stats implements core.Analyzer.
//
// confined to analyzer
func (rc *RayCast) Stats() *core.Stats { return &rc.stats }

type eqset struct {
	id     int
	pts    index.Space
	hist   []core.Entry
	bucket int  // owning DCP piece index; -1 in K-d mode
	dead   bool // replaced by refinement or pruned by a dominating write
}

type fieldState struct {
	nextID int

	// Disjoint-complete-partition mode.
	dcp     *region.Partition
	pieces  *bvh.Tree // over piece bounding boxes
	buckets [][]*eqset

	// K-d fallback mode (dcp == nil).
	kd     *bvh.KD
	kdSets map[int]*eqset

	// Migration heuristic state.
	misses    int
	candidate *region.Partition
}

// EquivalenceSets returns the number of live equivalence sets for field f.
//
// confined to analyzer
func (rc *RayCast) EquivalenceSets(f field.ID) int {
	fs, ok := rc.state[f]
	if !ok {
		return 1
	}
	if fs.dcp == nil {
		return len(fs.kdSets)
	}
	n := 0
	for _, b := range fs.buckets {
		n += len(b)
	}
	return n
}

// SetSpaces returns the point sets of the live equivalence sets for field
// f, for invariant checks in tests.
//
// confined to analyzer
func (rc *RayCast) SetSpaces(f field.ID) []index.Space {
	fs, ok := rc.state[f]
	if !ok {
		return []index.Space{rc.tree.Root.Space}
	}
	var out []index.Space
	if fs.dcp == nil {
		for _, id := range sortedIntKeys(fs.kdSets) {
			out = append(out, fs.kdSets[id].pts)
		}
		return out
	}
	for _, b := range fs.buckets {
		for _, s := range b {
			out = append(out, s.pts)
		}
	}
	return out
}

// CurrentPartition returns the disjoint-complete partition currently
// defining field f's buckets, or nil when the K-d fallback is active.
//
// confined to analyzer
func (rc *RayCast) CurrentPartition(f field.ID) *region.Partition {
	if fs, ok := rc.state[f]; ok {
		return fs.dcp
	}
	return nil
}

func (rc *RayCast) fieldFor(f field.ID, hint *region.Region) *fieldState {
	fs, ok := rc.state[f]
	if ok {
		return fs
	}
	fs = &fieldState{}
	root := rc.tree.Root.Space
	seed := &eqset{pts: root, hist: []core.Entry{core.SeedEntry(root)}}
	rc.installAccel(fs, rc.chooseDCP(hint), []*eqset{seed})
	rc.state[f] = fs
	return fs
}

// rootPartitionOf returns the root-level partition whose subtree contains
// r, or nil for the root itself.
func (rc *RayCast) rootPartitionOf(r *region.Region) *region.Partition {
	cur := r
	for cur.Parent != nil {
		if cur.Parent.Parent.IsRoot() {
			return cur.Parent
		}
		cur = cur.Parent.Parent
	}
	return nil
}

// chooseDCP picks the disjoint-complete partition to bucket by: the one
// containing hint when it qualifies, else the first disjoint-complete
// partition of the root, else nil (K-d fallback).
func (rc *RayCast) chooseDCP(hint *region.Region) *region.Partition {
	if hint != nil {
		if p := rc.rootPartitionOf(hint); p != nil && p.DisjointComplete() {
			return p
		}
	}
	for _, p := range rc.tree.Root.Partitions {
		if p.DisjointComplete() {
			return p
		}
	}
	return nil
}

// installAccel (re)builds the acceleration structure for dcp (or the K-d
// fallback when dcp is nil) and distributes sets into it, splitting sets
// at piece boundaries so each lives in exactly one bucket.
func (rc *RayCast) installAccel(fs *fieldState, dcp *region.Partition, sets []*eqset) {
	fs.dcp = dcp
	fs.misses = 0
	fs.candidate = nil
	fs.pieces = nil
	fs.buckets = nil
	fs.kd = nil
	fs.kdSets = nil

	if dcp == nil {
		fs.kd = bvh.NewKD(rc.tree.Root.Space.Bounds(), 64)
		fs.kdSets = make(map[int]*eqset)
		for _, s := range sets {
			rc.kdInsert(fs, s)
		}
		return
	}

	// Index every rectangle of every piece rather than piece bounding
	// boxes: pieces made of scattered blocks (e.g. a node block plus a
	// wire block) would otherwise produce mutually-overlapping boxes and
	// degrade every query to a full scan.
	var inputs []bvh.Input
	for i, sub := range dcp.Subregions {
		for _, r := range sub.Space.Rects() {
			inputs = append(inputs, bvh.Input{Box: r, ID: i})
		}
	}
	fs.pieces = bvh.Build(inputs)
	fs.buckets = make([][]*eqset, len(dcp.Subregions))
	for _, s := range sets {
		for i, sub := range dcp.Subregions {
			rc.stats.OverlapTests++
			part := s.pts.Intersect(sub.Space)
			if part.IsEmpty() {
				continue
			}
			ns := &eqset{id: fs.nextID, pts: part, hist: append([]core.Entry(nil), s.hist...), bucket: i}
			fs.nextID++
			fs.buckets[i] = append(fs.buckets[i], ns)
			rc.opts.Probe.Touch(rc.opts.Owner(part), 1)
		}
	}
}

func (rc *RayCast) kdInsert(fs *fieldState, s *eqset) {
	s.id = fs.nextID
	s.bucket = -1
	fs.nextID++
	fs.kdSets[s.id] = s
	fs.kd.Insert(s.id, s.pts.Bounds())
	rc.opts.Probe.Touch(rc.opts.Owner(s.pts), 1)
}

// overlappingBuckets returns the indices of dcp pieces whose contents
// overlap sp.
func (rc *RayCast) overlappingBuckets(fs *fieldState, sp index.Space) []int {
	span := rc.opts.Spans.Begin("raycast.bvh_query", "analysis")
	defer span.End()
	var out []int
	visited := fs.pieces.QuerySpace(sp, func(i int) {
		rc.stats.OverlapTests++
		if fs.dcp.Subregions[i].Space.Overlaps(sp) {
			out = append(out, i)
		}
	})
	rc.stats.BVHVisited += int64(visited)
	rc.opts.Probe.Visit(int64(visited))
	return out
}

// candidates returns the live sets overlapping sp.
func (rc *RayCast) candidates(fs *fieldState, sp index.Space) []*eqset {
	var out []*eqset
	if fs.dcp != nil {
		for _, bi := range rc.overlappingBuckets(fs, sp) {
			for _, s := range fs.buckets[bi] {
				rc.stats.SetsVisited++
				rc.stats.OverlapTests++
				if s.pts.Overlaps(sp) {
					out = append(out, s)
				}
			}
			rc.opts.Probe.Touch(rc.opts.Owner(fs.dcp.Subregions[bi].Space), int64(len(fs.buckets[bi])))
		}
		return out
	}
	visited := fs.kd.QuerySpace(sp, func(id int) {
		s := fs.kdSets[id]
		rc.stats.SetsVisited++
		rc.stats.OverlapTests++
		if s.pts.Overlaps(sp) {
			out = append(out, s)
		}
		rc.opts.Probe.Touch(rc.opts.Owner(s.pts), 1)
	})
	rc.stats.BVHVisited += int64(visited)
	rc.opts.Probe.Visit(int64(visited))
	return out
}

// remove deletes s from the acceleration structure.
func (rc *RayCast) remove(fs *fieldState, s *eqset) {
	if fs.dcp != nil {
		b := fs.buckets[s.bucket]
		for i, x := range b {
			if x == s {
				b[i] = b[len(b)-1]
				fs.buckets[s.bucket] = b[:len(b)-1]
				return
			}
		}
		return
	}
	fs.kd.Remove(s.id)
	delete(fs.kdSets, s.id)
}

// insert adds a set whose bucket is already known (refined fragments stay
// in their parent's piece) or registers it in the K-d container.
func (rc *RayCast) insert(fs *fieldState, s *eqset) {
	if fs.dcp != nil {
		s.id = fs.nextID
		fs.nextID++
		fs.buckets[s.bucket] = append(fs.buckets[s.bucket], s)
		rc.opts.Probe.Touch(rc.opts.Owner(s.pts), 1)
		return
	}
	rc.kdInsert(fs, s)
}

// refine splits partially-overlapping sets and returns those fully inside
// sp, exactly as Warnock's refine (Figure 9) but over the bucketed store.
func (rc *RayCast) refine(fs *fieldState, sp index.Space) []*eqset {
	span := rc.opts.Spans.Begin("raycast.refine", "analysis")
	defer span.End()
	var inside []*eqset
	for _, s := range rc.candidates(fs, sp) {
		rc.stats.OverlapTests++
		if sp.Covers(s.pts) {
			// Fault plane: force a refinement the analysis did not need.
			// Both fragments carry the full history, so the split is
			// semantics-preserving — it only breaks code that secretly
			// depends on covered sets staying whole.
			if vol := s.pts.Volume(); vol > 1 {
				if fired, v := rc.opts.Faults.FireValue(fault.EqSplit, vol); fired {
					a, b := s.pts.SplitAt(1 + int64(v%uint64(vol-1)))
					in := &eqset{pts: a, hist: append([]core.Entry(nil), s.hist...), bucket: s.bucket}
					out := &eqset{pts: b, hist: s.hist, bucket: s.bucket}
					s.dead = true
					rc.remove(fs, s)
					rc.insert(fs, in)
					rc.insert(fs, out)
					rc.stats.SetsCreated += 2
					rc.opts.Recorder.Log(recorder.KindEqSplit, 2, int64(len(s.hist)))
					inside = append(inside, in, out)
					continue
				}
			}
			inside = append(inside, s)
			continue
		}
		in := &eqset{pts: s.pts.Intersect(sp), hist: append([]core.Entry(nil), s.hist...), bucket: s.bucket}
		out := &eqset{pts: s.pts.Subtract(sp), hist: s.hist, bucket: s.bucket}
		s.dead = true
		rc.remove(fs, s)
		rc.insert(fs, in)
		rc.insert(fs, out)
		rc.stats.SetsCreated += 2
		rc.opts.Recorder.Log(recorder.KindEqSplit, 2, int64(len(s.hist)))
		inside = append(inside, in)
	}
	return inside
}

// maybeMigrate tracks which disjoint-complete partition recent launches
// use and re-buckets when the application has durably switched (§7.1).
func (rc *RayCast) maybeMigrate(fs *fieldState, r *region.Region) {
	if fs.dcp == nil {
		return
	}
	p := rc.rootPartitionOf(r)
	if p == nil || !p.DisjointComplete() {
		return
	}
	if p == fs.dcp {
		fs.misses = 0
		fs.candidate = nil
		return
	}
	if fs.candidate != p {
		fs.candidate = p
		fs.misses = 0
	}
	fs.misses++
	if fs.misses >= migrateAfter {
		var all []*eqset
		for _, b := range fs.buckets {
			all = append(all, b...)
		}
		rc.installAccel(fs, p, all)
	}
}

// forceMigrate is the EqMigrate fault action: rebuild the acceleration
// structure mid-stream without waiting for the migration heuristic — odd
// payloads abandon the current partition for the K-d fallback, even ones
// re-bucket against the same partition — exercising the §7.1 migration
// path under an adversarial schedule.
func (rc *RayCast) forceMigrate(fs *fieldState, payload uint64) {
	var all []*eqset
	if fs.dcp == nil {
		for _, id := range sortedIntKeys(fs.kdSets) {
			all = append(all, fs.kdSets[id])
		}
		rc.installAccel(fs, nil, all)
		return
	}
	for _, b := range fs.buckets {
		all = append(all, b...)
	}
	if payload&1 == 1 {
		rc.installAccel(fs, nil, all)
	} else {
		rc.installAccel(fs, fs.dcp, all)
	}
}

// Analyze implements core.Analyzer.
//
// confined to analyzer
func (rc *RayCast) Analyze(t *core.Task) *core.Result {
	span := rc.opts.Spans.Begin("raycast.analyze", "analysis")
	defer span.End()
	rc.stats.Launches++
	var deps []int
	plans := make([][]core.Visible, len(t.Reqs))

	insides := make([][]*eqset, len(t.Reqs))
	for ri, req := range t.Reqs {
		if req.Region.Space.IsEmpty() {
			// No points: nothing can interfere and nothing materializes.
			// Common under sharding, where a requirement's restriction to
			// most atoms is empty, and for clipped boundary halos.
			continue
		}
		fs := rc.fieldFor(req.Field, req.Region)
		rc.maybeMigrate(fs, req.Region)
		if fired, v := rc.opts.Faults.FireValue(fault.EqMigrate, int64(t.ID)); fired {
			rc.forceMigrate(fs, v)
		}
		inside := rc.refine(fs, req.Region.Space)
		insides[ri] = inside
		var plan []core.Visible
		for _, s := range inside {
			// Charge one interference test per privilege epoch, as in
			// Legion's user lists (see warnock.privRuns).
			rc.opts.Probe.Touch(rc.opts.Owner(s.pts), privRuns(s.hist))
			for _, e := range s.hist {
				rc.stats.EntriesScanned++
				if privilege.Interferes(e.Priv, req.Priv) {
					deps = append(deps, e.Task)
					rc.stats.DepsReported++
					if rc.opts.Prov != nil && e.Task != core.InitialTask {
						rc.opts.Prov.AddReason(core.EdgeReason{
							Src: e.Task, Dst: t.ID, Kind: core.ReasonRegion, Analyzer: "raycast",
							SrcReq: e.Req, DstReq: ri, Field: req.Field,
							SrcPriv: e.Priv, DstPriv: req.Priv, Overlap: s.pts.Bounds(), Trace: -1,
						})
					}
				}
				if !req.Priv.IsReduce() && e.Priv.Mutates() {
					plan = append(plan, core.Visible{Task: e.Task, Req: e.Req, Priv: e.Priv, Pts: s.pts})
				}
			}
		}
		if req.Priv.IsReduce() {
			plan = nil
		}
		plans[ri] = plan
	}

	// commit: writes dominate (create one coalesced set per overlapped
	// bucket and prune everything they occlude); reads and reductions
	// append to each constituent set.
	for ri, req := range t.Reqs {
		if req.Region.Space.IsEmpty() {
			continue
		}
		fs := rc.fieldFor(req.Field, req.Region)
		e := core.Entry{Task: t.ID, Req: ri, Priv: req.Priv, Pts: req.Region.Space}
		// Reuse the constituent sets from materialize unless another
		// requirement of this task refined or pruned them since.
		inside := insides[ri]
		for _, s := range inside {
			if s.dead {
				inside = rc.refine(fs, req.Region.Space)
				break
			}
		}
		if req.Priv.IsWrite() {
			rc.dominatingWrite(fs, req.Region.Space, e, inside)
			continue
		}
		for _, s := range inside {
			se := e
			se.Pts = s.pts
			s.hist = append(s.hist, se)
			rc.opts.Probe.Touch(rc.opts.Owner(s.pts), 1)
		}
	}

	return &core.Result{Deps: core.DedupDeps(deps), Plans: plans}
}

// privRuns counts maximal runs of identical privileges in a history — the
// epochs a scan actually tests for interference.
func privRuns(hist []core.Entry) int64 {
	var runs int64
	for i, e := range hist {
		if i == 0 || !e.Priv.Same(hist[i-1].Priv) {
			runs++
		}
	}
	return runs
}

// dominatingWrite implements Figure 11: the write's region becomes a fresh
// equivalence set (split at piece boundaries in DCP mode) and every
// occluded set is pruned. inside holds the occluded sets, found during the
// materialize-phase refine: every set overlapping the write's region is
// covered by it after refinement.
func (rc *RayCast) dominatingWrite(fs *fieldState, sp index.Space, e core.Entry, inside []*eqset) {
	span := rc.opts.Spans.Begin("raycast.coalesce", "analysis")
	defer span.End()
	rc.opts.Recorder.Log(recorder.KindEqCoalesce, int64(len(inside)), 0)
	buckets := make(map[int]index.Space)
	for _, s := range inside {
		s.dead = true
		rc.remove(fs, s)
		rc.stats.SetsCoalesced++
		if s.bucket >= 0 {
			cur, ok := buckets[s.bucket]
			if !ok {
				cur = index.Empty(sp.Dim())
			}
			buckets[s.bucket] = cur.Union(s.pts)
		}
	}
	if fs.dcp != nil {
		// One coalesced set per piece the write covers: the union of the
		// pruned sets in that bucket (= piece ∩ write region). Bucket order
		// fixes the new sets' ids, which downstream scans report in: iterate
		// sorted so two runs of the same stream emit identical output.
		for _, bi := range sortedIntKeys(buckets) {
			part := buckets[bi]
			se := e
			se.Pts = part
			ns := &eqset{id: fs.nextID, pts: part, hist: []core.Entry{se}, bucket: bi}
			fs.nextID++
			fs.buckets[bi] = append(fs.buckets[bi], ns)
			rc.stats.SetsCreated++
			// Invalidate-and-replace is one batched update per owner.
			rc.opts.Probe.Touch(rc.opts.Owner(part), 2)
		}
		return
	}
	ns := &eqset{pts: sp, hist: []core.Entry{e}}
	rc.kdInsert(fs, ns)
	rc.stats.SetsCreated++
}

// sortedIntKeys returns m's keys in ascending order, making iteration over
// the map's contents deterministic.
func sortedIntKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	//vislint:ignore detrange collecting keys to sort is order-insensitive
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
