package sched_test

import (
	"sync"
	"testing"
	"time"

	"visibility/internal/core"
	"visibility/internal/data"
	"visibility/internal/field"
	"visibility/internal/paint"
	"visibility/internal/privilege"
	"visibility/internal/raycast"
	"visibility/internal/region"
	"visibility/internal/sched"
	"visibility/internal/testutil"
	"visibility/internal/warnock"
)

func analyzers() []core.Factory {
	return []core.Factory{
		{Name: "paint", New: func(tr *region.Tree) core.Analyzer { return paint.NewPainter(tr, core.Options{}) }},
		{Name: "warnock", New: func(tr *region.Tree) core.Analyzer { return warnock.New(tr, core.Options{}) }},
		{Name: "raycast", New: func(tr *region.Tree) core.Analyzer { return raycast.New(tr, core.Options{}) }},
	}
}

// TestParallelExecutionMatchesSequential runs several loop iterations of
// the Figure 1 program on 4 workers under every analyzer and compares the
// final contents with the sequential interpreter.
func TestParallelExecutionMatchesSequential(t *testing.T) {
	for _, fac := range analyzers() {
		fac := fac
		t.Run(fac.Name, func(t *testing.T) {
			tree, p, g := testutil.GraphTree()
			init := testutil.FullInit(tree)
			kern := core.HashKernel{}

			// Ground truth.
			seqStream := core.NewStream(tree)
			for iter := 0; iter < 8; iter++ {
				for i := 0; i < 3; i++ {
					testutil.LaunchT1(seqStream, p, g, i)
				}
				for i := 0; i < 3; i++ {
					testutil.LaunchT2(seqStream, p, g, i)
				}
			}
			seq := core.NewSeq(tree, init)
			for _, task := range seqStream.Tasks {
				seq.Run(task, kern)
			}

			// Parallel execution with an identical stream.
			stream := core.NewStream(tree)
			x := sched.NewExecutor(tree, fac.New(tree), init, 4)
			defer x.Shutdown()
			for iter := 0; iter < 8; iter++ {
				for i := 0; i < 3; i++ {
					x.Submit(testutil.LaunchT1(stream, p, g, i), kern, nil)
				}
				for i := 0; i < 3; i++ {
					x.Submit(testutil.LaunchT2(stream, p, g, i), kern, nil)
				}
			}
			x.Drain()

			for f := 0; f < tree.Fields.Len(); f++ {
				got := x.Read(stream, tree.Root, field.ID(f))
				want := seq.Global(field.ID(f))
				if !want.Equal(got) {
					t.Fatalf("field %d diverged:\n%s", f, want.Diff(got))
				}
			}
		})
	}
}

// TestIndependentTasksRunConcurrently submits the three independent t1
// tasks of Figure 5 with kernels that rendezvous: if the executor
// serialized them, the rendezvous would time out.
func TestIndependentTasksRunConcurrently(t *testing.T) {
	tree, p, g := testutil.GraphTree()
	stream := core.NewStream(tree)
	x := sched.NewExecutor(tree, raycast.New(tree, core.Options{}), testutil.FullInit(tree), 3)
	defer x.Shutdown()

	var wg sync.WaitGroup
	wg.Add(3)
	rendezvous := func([]*data.Store) {
		wg.Done()
		wg.Wait()
	}
	var done []chan struct{}
	for i := 0; i < 3; i++ {
		ch := make(chan struct{})
		done = append(done, ch)
		ev := x.Submit(testutil.LaunchT1(stream, p, g, i), core.HashKernel{}, rendezvous)
		go func() {
			ev.Wait()
			close(ch)
		}()
	}
	timeout := time.After(5 * time.Second)
	for _, ch := range done {
		select {
		case <-ch:
		case <-timeout:
			t.Fatal("independent tasks did not run concurrently")
		}
	}
}

// TestDependentTasksAreOrdered submits a write and a dependent read of the
// same region and checks the read observes the write's completion.
func TestDependentTasksAreOrdered(t *testing.T) {
	tree, p, g := testutil.GraphTree()
	_ = g
	stream := core.NewStream(tree)
	x := sched.NewExecutor(tree, warnock.New(tree, core.Options{}), testutil.FullInit(tree), 4)
	defer x.Shutdown()

	var order []string
	var mu sync.Mutex
	note := func(s string) func([]*data.Store) {
		return func([]*data.Store) {
			time.Sleep(time.Millisecond) // encourage misordering if unsynchronized
			mu.Lock()
			order = append(order, s)
			mu.Unlock()
		}
	}
	up, _ := tree.Fields.Lookup("up")
	w := stream.Launch("w", core.Req{Region: p.Subregions[0], Field: up, Priv: writes()})
	r := stream.Launch("r", core.Req{Region: p.Subregions[0], Field: up, Priv: reads()})
	x.Submit(w, core.HashKernel{}, note("w"))
	x.Submit(r, core.HashKernel{}, note("r"))
	x.Drain()
	if len(order) != 2 || order[0] != "w" || order[1] != "r" {
		t.Fatalf("execution order = %v, want [w r]", order)
	}
}

func writes() privilege.Privilege { return privilege.Writes() }
func reads() privilege.Privilege  { return privilege.Reads() }

// TestInstanceCacheReuse verifies that repeated reads with identical
// materialization plans share one physical instance instead of copying.
func TestInstanceCacheReuse(t *testing.T) {
	tree, p, g := testutil.GraphTree()
	_ = g
	x := sched.NewExecutor(tree, raycast.New(tree, core.Options{}), testutil.FullInit(tree), 2)
	defer x.Shutdown()
	stream := core.NewStream(tree)
	up, _ := tree.Fields.Lookup("up")

	// One write, then many reads of the same region: every read after the
	// first materializes from the same plan.
	x.Submit(stream.Launch("w", core.Req{Region: p.Subregions[0], Field: up, Priv: privilege.Writes()}),
		core.HashKernel{}, nil)
	var stores []*data.Store
	var mu sync.Mutex
	for i := 0; i < 6; i++ {
		x.Submit(stream.Launch("r", core.Req{Region: p.Subregions[0], Field: up, Priv: privilege.Reads()}),
			core.HashKernel{}, func(in []*data.Store) {
				mu.Lock()
				stores = append(stores, in[0])
				mu.Unlock()
			})
	}
	x.Drain()
	if hits, _ := x.CacheStats(); hits < 5 {
		t.Errorf("cache hits = %d, want >= 5", hits)
	}
	for _, s := range stores[1:] {
		if s != stores[0] {
			t.Error("readers did not share the cached instance")
		}
	}

	// A new write invalidates naturally: the next read's plan differs.
	x.Submit(stream.Launch("w2", core.Req{Region: p.Subregions[0], Field: up, Priv: privilege.Writes()}),
		core.HashKernel{}, nil)
	_, miss := x.CacheStats()
	var after *data.Store
	x.Submit(stream.Launch("r2", core.Req{Region: p.Subregions[0], Field: up, Priv: privilege.Reads()}),
		core.HashKernel{}, func(in []*data.Store) { after = in[0] })
	x.Drain()
	if _, misses := x.CacheStats(); misses == miss {
		t.Error("read after a new write should miss the cache")
	}
	if after == stores[0] {
		t.Error("read after a new write must not reuse the stale instance")
	}
}
