// Package sched executes analyzed task streams with real parallelism: the
// dependence analysis runs sequentially in program order (as the paper's
// dynamic analyses require, §3.2), while the kernels it admits run
// concurrently on a pool of processors gated by completion events — the
// relaxation of sequential order into a parallel partial order that the
// dependence analysis exists to justify.
package sched

import (
	"fmt"
	"strings"
	"sync"

	"visibility/internal/core"
	"visibility/internal/data"
	"visibility/internal/event"
	"visibility/internal/fault"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/obs"
	"visibility/internal/obs/recorder"
	"visibility/internal/privilege"
	"visibility/internal/region"
)

// Executor runs tasks through an analyzer and executes their kernels in
// parallel, respecting only the analyzer-reported dependences.
type Executor struct {
	tree *region.Tree
	// an is the dynamic dependence analyzer: analysis observes launches
	// sequentially in program order (§3.2), so only the submitting
	// goroutine may touch it — worker closures get their inputs through
	// the mu-guarded tables below.
	//
	// confined to sched-submit
	an   core.Analyzer
	init map[field.ID]*data.Store

	procs []*event.Processor
	// next is the round-robin processor cursor.
	//
	// confined to sched-submit
	next int

	mu        sync.Mutex
	committed map[commitKey]*data.Store // guarded by mu
	events    map[int]*event.Event      // guarded by mu
	all       []*event.Event            // guarded by mu
	deps      map[int][]int             // guarded by mu; analyzer deps per task

	// Physical-instance cache: two materializations driven by identical
	// plans produce identical contents, so the store can be reused
	// instead of re-copied — the analog of Legion reusing a valid
	// physical instance instead of issuing copies. Materialized stores
	// are immutable by construction (kernels write fresh output stores).
	instances map[instanceKey]*data.Store // guarded by mu
	instanceQ []instanceKey               // guarded by mu; FIFO eviction order
	maxCached int

	// Cache outcomes live on the executor's obs registry (atomic, so
	// workers need no lock to bump them); CacheStats reads them back.
	metrics   *obs.Registry
	cacheHits *obs.Counter
	cacheMiss *obs.Counter

	// Flight recorder for coarse event journaling (nil-safe).
	rec *recorder.Recorder

	// Fault-injection plane (nil-safe): CacheBypass forces instance-cache
	// misses, exercising the invariant that the cache is a pure
	// optimization.
	faults *fault.Injector

	// prov, when non-nil, accumulates per-launch cost samples (analyzer
	// op deltas, virtual exec time) next to the EdgeReasons the analyzer
	// itself records through the shared core.Provenance.
	//
	// confined to sched-submit
	prov *core.Provenance
}

type commitKey struct {
	task int
	req  int
}

type instanceKey struct {
	field field.ID
	space string // index-space key
	plan  string // plan signature: producers, privileges, points
}

// NewExecutor creates an executor with workers parallel processors and a
// private metrics registry.
func NewExecutor(tree *region.Tree, an core.Analyzer, init map[field.ID]*data.Store, workers int) *Executor {
	return NewExecutorMetrics(tree, an, init, workers, nil)
}

// NewExecutorMetrics is NewExecutor publishing into the given registry
// (nil gets a private one); a serving layer passes one registry per
// session so scheduler counters land next to the analyzer's.
func NewExecutorMetrics(tree *region.Tree, an core.Analyzer, init map[field.ID]*data.Store, workers int, metrics *obs.Registry) *Executor {
	return NewExecutorObs(tree, an, init, workers, metrics, nil)
}

// NewExecutorObs is NewExecutorMetrics that also journals task launches
// and instance-cache outcomes into rec (nil disables journaling).
func NewExecutorObs(tree *region.Tree, an core.Analyzer, init map[field.ID]*data.Store, workers int, metrics *obs.Registry, rec *recorder.Recorder) *Executor {
	return NewExecutorFault(tree, an, init, workers, metrics, rec, nil)
}

// NewExecutorFault is NewExecutorObs with a fault-injection plane wired
// into the scheduler's sites (nil disables them).
func NewExecutorFault(tree *region.Tree, an core.Analyzer, init map[field.ID]*data.Store, workers int, metrics *obs.Registry, rec *recorder.Recorder, faults *fault.Injector) *Executor {
	return NewExecutorProv(tree, an, init, workers, metrics, rec, faults, nil)
}

// NewExecutorProv is NewExecutorFault that additionally samples
// per-launch costs into prov (nil disables sampling; the analyzer's own
// EdgeReason capture is wired through core.Options.Prov separately).
func NewExecutorProv(tree *region.Tree, an core.Analyzer, init map[field.ID]*data.Store, workers int, metrics *obs.Registry, rec *recorder.Recorder, faults *fault.Injector, prov *core.Provenance) *Executor {
	if workers < 1 {
		workers = 1
	}
	if metrics == nil {
		metrics = obs.NewRegistry()
	}
	x := &Executor{
		tree:      tree,
		an:        an,
		init:      make(map[field.ID]*data.Store, len(init)),
		committed: make(map[commitKey]*data.Store),
		events:    make(map[int]*event.Event),
		deps:      make(map[int][]int),
		instances: make(map[instanceKey]*data.Store),
		maxCached: 256,
		metrics:   metrics,
		cacheHits: metrics.NewCounter("sched/cache/hits"),
		cacheMiss: metrics.NewCounter("sched/cache/misses"),
		rec:       rec,
		faults:    faults,
		prov:      prov,
	}
	for f, s := range init {
		x.init[f] = s.Clone()
	}
	for i := 0; i < workers; i++ {
		x.procs = append(x.procs, event.NewProcessor(64))
	}
	return x
}

// Analyzer returns the executor's analyzer (for stats inspection).
//
// confined to sched-submit
func (x *Executor) Analyzer() core.Analyzer { return x.an }

// Submit analyzes t in program order and schedules its kernel; it returns
// immediately with the task's completion event. body, when non-nil, is run
// on the worker after inputs are materialized and before outputs commit,
// with the task's materialized inputs (indexed by requirement; reduce
// requirements have nil inputs).
//
// confined to sched-submit
func (x *Executor) Submit(t *core.Task, k core.Kernel, body func(inputs []*data.Store)) *event.Event {
	x.rec.Log(recorder.KindTaskLaunch, int64(t.ID), int64(len(t.Reqs)))
	res := x.an.Analyze(t)
	if len(res.Plans) != len(t.Reqs) {
		panic(fmt.Sprintf("sched: analyzer %s returned %d plans for %d reqs", x.an.Name(), len(res.Plans), len(t.Reqs)))
	}
	if x.prov != nil {
		// The launch's deterministic cost sample: its analysis volume
		// (requirements analyzed plus dependence edges discovered), plus
		// the points its requirements touch as a unit-cost virtual
		// execution time. Both are properties of the task stream and its
		// discovered graph — not of analyzer internals — so critical paths
		// weighted by them are byte-reproducible across runs and across
		// analyzer/sharding configurations. Measured operation counters
		// stay in Stats() and the metrics registry.
		var exec int64
		for _, req := range t.Reqs {
			exec += req.Region.Space.Volume()
		}
		x.prov.AddCost(t.ID, core.TaskCost{AnalysisOps: int64(len(t.Reqs) + len(res.Deps)), ExecVirt: exec})
		x.rec.Log(recorder.KindReasonCapture, int64(t.ID), int64(len(x.prov.Reasons(t.ID))))
	}

	x.mu.Lock()
	x.deps[t.ID] = append([]int(nil), res.Deps...)
	pres := make([]*event.Event, 0, len(res.Deps)+len(t.FutureDeps))
	for _, d := range res.Deps {
		if e, ok := x.events[d]; ok {
			pres = append(pres, e)
		}
	}
	for _, fd := range t.FutureDeps {
		if e, ok := x.events[fd]; ok {
			pres = append(pres, e)
		}
	}
	x.mu.Unlock()
	pre := event.Merge(pres...)

	proc := x.procs[x.next%len(x.procs)]
	x.next++
	done := proc.Spawn(pre, func() {
		inputs := make([]*data.Store, len(t.Reqs))
		for ri, req := range t.Reqs {
			if !req.Priv.IsReduce() {
				inputs[ri] = x.materialize(req, res.Plans[ri])
			}
		}
		if body != nil {
			body(inputs)
		}
		for ri, req := range t.Reqs {
			switch {
			case req.Priv.IsWrite():
				out := data.NewStore(req.Region.Space.Dim())
				in := inputs[ri]
				req.Region.Space.Each(func(p geometry.Point) bool {
					cur, ok := in.Get(p)
					if !ok {
						cur = 0
					}
					out.Set(p, k.WriteValue(t, ri, p, cur))
					return true
				})
				x.commit(t.ID, ri, out)
			case req.Priv.IsReduce():
				op := req.Priv.Op
				out := data.NewStore(req.Region.Space.Dim())
				req.Region.Space.Each(func(p geometry.Point) bool {
					out.Set(p, privilege.Apply(op, privilege.Identity(op), k.ReduceValue(t, ri, p)))
					return true
				})
				x.commit(t.ID, ri, out)
			}
		}
	})

	x.mu.Lock()
	x.events[t.ID] = done
	x.all = append(x.all, done)
	x.mu.Unlock()
	return done
}

func (x *Executor) commit(task, req int, s *data.Store) {
	x.mu.Lock()
	x.committed[commitKey{task, req}] = s
	x.mu.Unlock()
}

func (x *Executor) source(v core.Visible, f field.ID) *data.Store {
	if v.Task == core.InitialTask {
		return x.init[f]
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	s := x.committed[commitKey{v.Task, v.Req}]
	if s == nil {
		panic(fmt.Sprintf("sched: plan references uncommitted producer %d.%d — missing dependence", v.Task, v.Req))
	}
	return s
}

// planSignature uniquely identifies a materialization's inputs: the same
// producers contributing the same points with the same privileges yield
// the same contents.
func planSignature(plan []core.Visible) string {
	var b strings.Builder
	for _, v := range plan {
		fmt.Fprintf(&b, "%d.%d%s:%s;", v.Task, v.Req, v.Priv, v.Pts.Key())
	}
	return b.String()
}

func (x *Executor) materialize(req core.Req, plan []core.Visible) *data.Store {
	key := instanceKey{field: req.Field, space: req.Region.Space.Key(), plan: planSignature(plan)}
	// Fault plane: a CacheBypass fire skips the lookup, forcing a fresh
	// materialization of contents the cache already holds — correctness
	// must not depend on instance reuse.
	bypass := x.faults.Fire(fault.CacheBypass, int64(req.Field))
	x.mu.Lock()
	if st, ok := x.instances[key]; ok && !bypass {
		x.mu.Unlock()
		x.cacheHits.Inc()
		x.rec.Log(recorder.KindCacheHit, int64(req.Field), 0)
		return st
	}
	x.mu.Unlock()
	x.cacheMiss.Inc()
	x.rec.Log(recorder.KindCacheMiss, int64(req.Field), 0)

	in := x.materializeFresh(req, plan)

	x.mu.Lock()
	if _, dup := x.instances[key]; !dup {
		x.instances[key] = in
		x.instanceQ = append(x.instanceQ, key)
		if len(x.instanceQ) > x.maxCached {
			evict := x.instanceQ[0]
			x.instanceQ = x.instanceQ[1:]
			delete(x.instances, evict)
		}
	}
	x.mu.Unlock()
	return in
}

func (x *Executor) materializeFresh(req core.Req, plan []core.Visible) *data.Store {
	in := data.NewStore(req.Region.Space.Dim())
	for _, v := range plan {
		src := x.source(v, req.Field)
		switch {
		case v.Priv.IsWrite():
			v.Pts.Each(func(p geometry.Point) bool {
				if val, ok := src.Get(p); ok {
					in.Set(p, val)
				}
				return true
			})
		case v.Priv.IsReduce():
			op := v.Priv.Op
			v.Pts.Each(func(p geometry.Point) bool {
				contrib, ok := src.Get(p)
				if !ok {
					return true
				}
				base, okb := in.Get(p)
				if !okb {
					base = privilege.Identity(op)
				}
				in.Set(p, privilege.Apply(op, base, contrib))
				return true
			})
		}
	}
	return in
}

// CacheStats returns the physical-instance cache's hit and miss counters
// (thin reads over the registry counters).
func (x *Executor) CacheStats() (hits, misses int64) {
	return x.cacheHits.Load(), x.cacheMiss.Load()
}

// Metrics returns the executor's metrics registry.
func (x *Executor) Metrics() *obs.Registry { return x.metrics }

// Deps returns a copy of the analyzer-reported dependences of every
// submitted task, keyed by task ID — the discovered dependence graph
// (future edges live on the tasks themselves).
func (x *Executor) Deps() map[int][]int {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make(map[int][]int, len(x.deps))
	for id, ds := range x.deps {
		out[id] = append([]int(nil), ds...)
	}
	return out
}

// Drain waits for every submitted task to complete.
func (x *Executor) Drain() {
	x.mu.Lock()
	all := append([]*event.Event(nil), x.all...)
	x.mu.Unlock()
	for _, e := range all {
		e.Wait()
	}
}

// Shutdown drains and stops the worker processors.
func (x *Executor) Shutdown() {
	x.Drain()
	for _, p := range x.procs {
		p.Shutdown()
	}
}

// Read materializes the current contents of a region/field through the
// analyzer by submitting a read-only task and waiting for it. It is the
// "inline mapping" used by examples to observe results.
func (x *Executor) Read(stream *core.Stream, r *region.Region, f field.ID) *data.Store {
	var got *data.Store
	t := stream.Launch("inline-read", core.Req{Region: r, Field: f, Priv: privilege.Reads()})
	done := x.Submit(t, nopKernel{}, func(inputs []*data.Store) { got = inputs[0] })
	done.Wait()
	return got
}

type nopKernel struct{}

func (nopKernel) WriteValue(*core.Task, int, geometry.Point, float64) float64 { return 0 }
func (nopKernel) ReduceValue(*core.Task, int, geometry.Point) float64         { return 0 }
