package crosscheck

import (
	"bytes"
	"testing"
	"time"

	"visibility/internal/fault"
	"visibility/internal/harness"
)

// TestChaosAnalyzersAgree is the chaos soak: dozens of (workload seed,
// fault plan) cells, each running a randomized task stream through all
// four analyzers with the fault plane active — forced equivalence-set
// splits, forced migrations, cache bypasses — and a distributed leg with
// transport faults. Coherence and dependence soundness against the
// sequential ground truth must survive every cell. Skipped in short mode;
// TestChaosAnalyzersAgreeSmoke is the always-on tier-1 variant.
func TestChaosAnalyzersAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak: long test, run without -short")
	}
	// 24 workload seeds × 2 plan seeds ≥ the 20 distinct seeds the fault
	// plane promises to survive, plus an aggressive all-sites plan.
	for seed := int64(1); seed <= 24; seed++ {
		for _, planSeed := range []int64{seed, seed + 1000} {
			r, err := harness.RunChaos(harness.ChaosConfig{
				Seed:  seed,
				Plan:  harness.DefaultChaosPlan(planSeed),
				Tasks: 32,
				Nodes: 4,
			})
			if err != nil {
				t.Fatalf("%v (reproduce with: visbench -chaos -chaos-seed %d -chaos-plan %q)", err, seed, harness.DefaultChaosPlan(planSeed))
			}
			if r.Events == 0 {
				t.Fatalf("seed %d: chaos run journaled no events", seed)
			}
		}
		// Aggressive cell: every covered set splits, every launch migrates.
		aggressive := "seed=1;analyzer.eqset.split=p=1;analyzer.eqset.migrate=p=0.5;cluster.msg.drop=p=0.2;cluster.msg.dup=p=0.3"
		if _, err := harness.RunChaos(harness.ChaosConfig{Seed: seed, Plan: aggressive, Tasks: 24, Nodes: 3}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestChaosAnalyzersAgreeSmoke is the bounded smoke variant that always
// runs in tier-1: as many chaos cells as fit in ~2 seconds, at least one.
func TestChaosAnalyzersAgreeSmoke(t *testing.T) {
	deadline := time.Now().Add(2 * time.Second)
	ran := 0
	for seed := int64(1); seed <= 8; seed++ {
		r, err := harness.RunChaos(harness.ChaosConfig{Seed: seed, Nodes: 4})
		if err != nil {
			t.Fatal(err)
		}
		if r.Events == 0 {
			t.Fatalf("seed %d: chaos run journaled no events", seed)
		}
		ran++
		if time.Now().After(deadline) {
			break
		}
	}
	t.Logf("chaos smoke: %d cells", ran)
}

// TestChaosPlanReplayDeterministic is the crosscheck-level replay
// property: the exact acceptance contract is that a failing seed's plan
// string reproduces the identical recorder dump, which requires equality
// for passing seeds too.
func TestChaosPlanReplayDeterministic(t *testing.T) {
	seeds := []int64{2, 5, 11}
	if !testing.Short() {
		seeds = append(seeds, 17, 23, 42, 99)
	}
	for _, seed := range seeds {
		cfg := harness.ChaosConfig{Seed: seed, Nodes: 4}
		a, err := harness.RunChaos(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Replay from the report's own plan string, the artifact a failing
		// run hands back.
		b, err := harness.RunChaos(harness.ChaosConfig{Seed: a.Seed, Plan: a.Plan, Nodes: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Dump, b.Dump) {
			t.Fatalf("seed %d: replay from plan string diverged (%d vs %d bytes)", seed, len(a.Dump), len(b.Dump))
		}
	}
}

// TestChaosForcedSplitsVisible asserts the fault plane actually reaches
// the analyzers: under an every-split plan, equivalence-set splits must
// fire, and the randomized verification still passes — the splits are
// semantics-preserving by construction.
func TestChaosForcedSplitsVisible(t *testing.T) {
	r, err := harness.RunChaos(harness.ChaosConfig{Seed: 6, Plan: "seed=1;analyzer.eqset.split=every=2", Tasks: 24})
	if err != nil {
		t.Fatal(err)
	}
	if r.Fires[fault.EqSplit] == 0 {
		t.Fatal("every=2 split plan never fired")
	}
}
