package crosscheck

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"visibility/internal/apps/circuit"
	"visibility/internal/harness"
)

// runTraced executes one full harness cell with trace export enabled and
// returns the exported Chrome trace-event JSON and the metrics snapshot.
func runTraced(t *testing.T) ([]byte, map[string]int64) {
	t.Helper()
	var buf bytes.Buffer
	res, err := harness.Run(harness.Config{
		App: circuit.New, AppName: "circuit",
		Algorithm: "raycast", DCR: true,
		Nodes: 4, MeasureIters: 2,
		TraceOut: &buf,
	})
	if err != nil {
		t.Fatalf("harness.Run: %v", err)
	}
	return buf.Bytes(), res.Metrics
}

// TestTraceExportDeterministic asserts that two identical harness runs
// export byte-identical virtual-time traces and identical metrics
// snapshots: the export contains only simulated-clock events, so nothing
// about the host (wall-clock jitter, goroutine interleaving) may leak in.
func TestTraceExportDeterministic(t *testing.T) {
	trace1, metrics1 := runTraced(t)
	trace2, metrics2 := runTraced(t)

	if !bytes.Equal(trace1, trace2) {
		t.Errorf("identical runs exported different traces (%d vs %d bytes)", len(trace1), len(trace2))
	}
	if !reflect.DeepEqual(metrics1, metrics2) {
		t.Errorf("identical runs produced different metrics snapshots:\n%v\nvs\n%v", metrics1, metrics2)
	}

	// The export must be loadable trace-event JSON with per-node tracks.
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace1, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	pids := make(map[int]bool)
	flows := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			pids[e.Pid] = true
		}
		if e.Ph == "s" {
			flows++
		}
	}
	if len(pids) != 4 {
		t.Errorf("expected duration events on 4 node tracks, got pids %v", pids)
	}
	if flows == 0 {
		t.Errorf("expected cross-node message flow events, got none")
	}
}
