// Package crosscheck cross-validates all four coherence analyzers (naive
// painter, optimized painter, Warnock, ray casting) against the sequential
// ground-truth interpreter and the exact dependence analysis, on the
// paper's running example and on randomized task streams.
package crosscheck

import (
	"math/rand"
	"testing"

	"visibility/internal/core"
	"visibility/internal/data"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/index"
	"visibility/internal/paint"
	"visibility/internal/privilege"
	"visibility/internal/raycast"
	"visibility/internal/region"
	"visibility/internal/warnock"
)

// allFactories returns fresh-analyzer factories for every algorithm.
func allFactories() []core.Factory {
	return []core.Factory{
		{Name: "paint-naive", New: func(tr *region.Tree) core.Analyzer { return paint.NewNaive(tr, core.Options{}) }},
		{Name: "paint", New: func(tr *region.Tree) core.Analyzer { return paint.NewPainter(tr, core.Options{}) }},
		{Name: "warnock", New: func(tr *region.Tree) core.Analyzer { return warnock.New(tr, core.Options{}) }},
		{Name: "raycast", New: func(tr *region.Tree) core.Analyzer { return raycast.New(tr, core.Options{}) }},
	}
}

func fullInit(tree *region.Tree) map[field.ID]*data.Store {
	init := make(map[field.ID]*data.Store)
	for f := 0; f < tree.Fields.Len(); f++ {
		st := data.NewStore(tree.Root.Space.Dim())
		tree.Root.Space.Each(func(p geometry.Point) bool {
			st.Set(p, float64(int64(f+1)*1000)+float64(p.C[0])+2*float64(p.C[1]))
			return true
		})
		init[field.ID(f)] = st
	}
	return init
}

// graphTree builds the Figure 1/2 setup: an 18-node ring, primary partition
// P into three blocks of six, and aliased ghost partition G of width-4
// halos, with fields up and down.
func graphTree() (*region.Tree, *region.Partition, *region.Partition) {
	fs := field.NewSpace()
	fs.Add("up")
	fs.Add("down")
	tree := region.NewTree("N", index.FromRect(geometry.R1(0, 17)), fs)
	p := tree.Root.Partition("P", []index.Space{
		index.FromRect(geometry.R1(0, 5)),
		index.FromRect(geometry.R1(6, 11)),
		index.FromRect(geometry.R1(12, 17)),
	})
	// Ghost of piece i: 4 elements on each side on the ring, so adjacent
	// ghost subregions overlap (aliased partition).
	g := tree.Root.Partition("G", []index.Space{
		index.FromRects(1, geometry.R1(14, 17), geometry.R1(6, 9)),
		index.FromRects(1, geometry.R1(2, 5), geometry.R1(12, 15)),
		index.FromRects(1, geometry.R1(8, 11), geometry.R1(0, 3)),
	})
	return tree, p, g
}

// figure5Stream launches the nine tasks of Figure 5: three t1 tasks, three
// t2 tasks, three more t1 tasks.
func figure5Stream(tree *region.Tree, p, g *region.Partition) *core.Stream {
	up, _ := tree.Fields.Lookup("up")
	down, _ := tree.Fields.Lookup("down")
	s := core.NewStream(tree)
	t1 := func(i int) *core.Task {
		return s.Launch("t1",
			core.Req{Region: p.Subregions[i], Field: up, Priv: privilege.Writes()},
			core.Req{Region: g.Subregions[i], Field: down, Priv: privilege.Reduces(privilege.OpSum)})
	}
	t2 := func(i int) *core.Task {
		return s.Launch("t2",
			core.Req{Region: p.Subregions[i], Field: down, Priv: privilege.Writes()},
			core.Req{Region: g.Subregions[i], Field: up, Priv: privilege.Reduces(privilege.OpSum)})
	}
	for i := 0; i < 3; i++ {
		t1(i)
	}
	for i := 0; i < 3; i++ {
		t2(i)
	}
	for i := 0; i < 3; i++ {
		t1(i)
	}
	return s
}

func TestFigure5AllAnalyzers(t *testing.T) {
	tree, p, g := graphTree()
	s := figure5Stream(tree, p, g)
	if err := core.Verify(s, fullInit(tree), core.HashKernel{}, allFactories()...); err != nil {
		t.Fatal(err)
	}
}

// TestFigure5Parallelism checks the parallel structure the paper derives
// from Figure 5: the three tasks inside each phase are mutually
// independent, while phases are ordered through the data they share.
func TestFigure5Parallelism(t *testing.T) {
	tree, p, g := graphTree()
	s := figure5Stream(tree, p, g)
	exact := core.ExactDeps(s.Tasks)

	for _, fac := range allFactories() {
		an := fac.New(tree)
		var got [][]int
		for _, task := range s.Tasks {
			got = append(got, an.Analyze(task).Deps)
		}
		if err := core.CheckSound(got, exact); err != nil {
			t.Errorf("%s: %v", fac.Name, err)
			continue
		}
		c := core.NewClosure(got)
		// Within-phase independence: t0-2, t3-5, t6-8 run in parallel.
		for _, group := range [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}} {
			for _, a := range group {
				for _, b := range group {
					if a != b && c.Reaches(a, b) {
						t.Errorf("%s: spurious ordering %d -> %d within a parallel phase", fac.Name, a, b)
					}
				}
			}
		}
		// Cross-phase exact dependences, computed from the ring geometry:
		// t4 reduces G[1].up = {2..5, 12..15}, overlapping t0's write of
		// P[0].up = {0..5} and t2's write of P[2].up; t6 rewrites P[0].up,
		// overlapping the reductions of t4 and t5.
		for _, pair := range [][2]int{{0, 4}, {2, 4}, {4, 6}, {5, 6}} {
			if !c.Reaches(pair[0], pair[1]) {
				t.Errorf("%s: missing required ordering %d -> %d", fac.Name, pair[0], pair[1])
			}
		}
	}
}

// TestFigure5SteadyStateLoop runs many iterations of the Figure 1 loop and
// verifies coherence end to end (this exercises occlusion pruning and
// dominating writes over a long stream).
func TestFigure5SteadyStateLoop(t *testing.T) {
	tree, p, g := graphTree()
	up, _ := tree.Fields.Lookup("up")
	down, _ := tree.Fields.Lookup("down")
	s := core.NewStream(tree)
	for iter := 0; iter < 10; iter++ {
		for i := 0; i < 3; i++ {
			s.Launch("t1",
				core.Req{Region: p.Subregions[i], Field: up, Priv: privilege.Writes()},
				core.Req{Region: g.Subregions[i], Field: down, Priv: privilege.Reduces(privilege.OpSum)})
		}
		for i := 0; i < 3; i++ {
			s.Launch("t2",
				core.Req{Region: p.Subregions[i], Field: down, Priv: privilege.Writes()},
				core.Req{Region: g.Subregions[i], Field: up, Priv: privilege.Reduces(privilege.OpSum)})
		}
	}
	if err := core.Verify(s, fullInit(tree), core.HashKernel{}, allFactories()...); err != nil {
		t.Fatal(err)
	}
}

// randTree builds a random region tree over a 1-D or 2-D root with a mix of
// disjoint and aliased partitions, possibly nested.
func randTree(rng *rand.Rand) *region.Tree {
	fs := field.NewSpace()
	fs.Add("f0")
	fs.Add("f1")
	var root index.Space
	dim := 1 + rng.Intn(2)
	if dim == 1 {
		root = index.FromRect(geometry.R1(0, 23))
	} else {
		root = index.FromRect(geometry.R2(0, 0, 5, 3))
	}
	tree := region.NewTree("A", root, fs)

	nparts := 1 + rng.Intn(3)
	for pi := 0; pi < nparts; pi++ {
		npieces := 2 + rng.Intn(3)
		pieces := make([]index.Space, npieces)
		for i := range pieces {
			// Random sub-rectangles of the root bounds, clipped to the root.
			b := root.Bounds()
			r := geometry.Rect{Dim: dim}
			for a := 0; a < dim; a++ {
				span := b.Hi.C[a] - b.Lo.C[a] + 1
				lo := b.Lo.C[a] + rng.Int63n(span)
				hi := lo + rng.Int63n(span-(lo-b.Lo.C[a]))
				r.Lo.C[a], r.Hi.C[a] = lo, hi
			}
			pieces[i] = index.FromRect(r).Intersect(root)
		}
		p := tree.Root.Partition("Q", pieces)
		// Occasionally nest a partition under a subregion.
		if rng.Intn(3) == 0 && len(p.Subregions) > 0 {
			sub := p.Subregions[rng.Intn(len(p.Subregions))]
			if !sub.Space.IsEmpty() && sub.Space.Volume() > 1 {
				half := sub.Space.Volume() / 2
				var first []geometry.Point
				sub.Space.Each(func(pt geometry.Point) bool {
					if int64(len(first)) < half {
						first = append(first, pt)
						return true
					}
					return false
				})
				a := index.FromPoints(dim, first...)
				sub.Partition("nested", []index.Space{a, sub.Space.Subtract(a)})
			}
		}
	}
	return tree
}

// randStream launches a random sequence of tasks over random regions of the
// tree with random privileges.
func randStream(rng *rand.Rand, tree *region.Tree, n int) *core.Stream {
	var regions []*region.Region
	for i := 0; i < tree.NumRegions(); i++ {
		r := tree.Region(i)
		if !r.Space.IsEmpty() {
			regions = append(regions, r)
		}
	}
	ops := []privilege.ReduceOp{privilege.OpSum, privilege.OpMin, privilege.OpMax, privilege.OpProd}
	s := core.NewStream(tree)
	for i := 0; i < n; i++ {
		nreq := 1
		if rng.Intn(4) == 0 {
			nreq = 2
		}
		var reqs []core.Req
		for ri := 0; ri < nreq; ri++ {
			r := regions[rng.Intn(len(regions))]
			f := field.ID(rng.Intn(tree.Fields.Len()))
			var priv privilege.Privilege
			switch rng.Intn(4) {
			case 0:
				priv = privilege.Reads()
			case 1, 2:
				priv = privilege.Writes()
			default:
				priv = privilege.Reduces(ops[rng.Intn(len(ops))])
			}
			// Respect the §4 restriction: requirements of one task must
			// be disjoint unless both read or both reduce with one op.
			ok := true
			for _, prev := range reqs {
				if prev.Field != f {
					continue
				}
				compatible := (prev.Priv.IsRead() && priv.IsRead()) ||
					(prev.Priv.IsReduce() && priv.IsReduce() && prev.Priv.Op == priv.Op)
				if !compatible && prev.Region.Space.Overlaps(r.Space) {
					ok = false
					break
				}
			}
			if ok {
				reqs = append(reqs, core.Req{Region: r, Field: f, Priv: priv})
			}
		}
		if len(reqs) > 0 {
			s.Launch("rand", reqs...)
		}
	}
	return s
}

// TestRandomStreamsAllAnalyzers is the main property test: on dozens of
// random trees and task streams, every analyzer must materialize exactly
// the sequential values and preserve all exact dependences.
func TestRandomStreamsAllAnalyzers(t *testing.T) {
	rng := rand.New(rand.NewSource(20230225))
	iters := 40
	if testing.Short() {
		iters = 8
	}
	for it := 0; it < iters; it++ {
		tree := randTree(rng)
		stream := randStream(rng, tree, 12+rng.Intn(20))
		if err := core.Verify(stream, fullInit(tree), core.HashKernel{}, allFactories()...); err != nil {
			t.Fatalf("iteration %d: %v", it, err)
		}
	}
}

// TestAnalyzersAgreeOnDeps spot-checks that the four analyzers produce
// orderings that are mutually consistent: each one's reported DAG closure
// must contain the exact dependences (checked in Verify) — here we
// additionally require that no analyzer orders two tasks that the exact
// analysis proves independent *in both directions* over a write-heavy
// stream, i.e. analyzers do not serialize obviously-parallel work.
func TestAnalyzersAgreeOnDeps(t *testing.T) {
	tree, p, _ := graphTree()
	up, _ := tree.Fields.Lookup("up")
	s := core.NewStream(tree)
	// Three disjoint writes: must remain parallel under every analyzer.
	for i := 0; i < 3; i++ {
		s.Launch("w", core.Req{Region: p.Subregions[i], Field: up, Priv: privilege.Writes()})
	}
	for _, fac := range allFactories() {
		an := fac.New(tree)
		var got [][]int
		for _, task := range s.Tasks {
			got = append(got, an.Analyze(task).Deps)
		}
		c := core.NewClosure(got)
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				if a != b && c.Reaches(a, b) {
					t.Errorf("%s: serialized disjoint writes %d -> %d", fac.Name, a, b)
				}
			}
		}
	}
}
