package crosscheck

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"visibility/internal/core"
	"visibility/internal/field"
	"visibility/internal/privilege"
	"visibility/internal/raycast"
	"visibility/internal/region"
)

// renderRun replays stream through a fresh analyzer from fac and serializes
// everything it produces — dependences, every plan entry, and (for ray
// casting) the surviving equivalence-set spaces — into one string, so two
// runs can be compared byte for byte.
func renderRun(fac core.Factory, tree *region.Tree, stream *core.Stream) string {
	an := fac.New(tree)
	var b strings.Builder
	for _, task := range stream.Tasks {
		res := an.Analyze(task)
		fmt.Fprintf(&b, "task %d deps %v\n", task.ID, res.Deps)
		for ri, plan := range res.Plans {
			fmt.Fprintf(&b, "  plan %d:", ri)
			for _, v := range plan {
				fmt.Fprintf(&b, " %d.%d/%v@%s", v.Task, v.Req, v.Priv, v.Pts.Key())
			}
			b.WriteString("\n")
		}
	}
	if rc, ok := an.(*raycast.RayCast); ok {
		for f := 0; f < tree.Fields.Len(); f++ {
			for _, sp := range rc.SetSpaces(field.ID(f)) {
				fmt.Fprintf(&b, "set %d %s\n", f, sp.Key())
			}
		}
	}
	return b.String()
}

// TestDeterministicDependenceOutput replays the same stream twice through
// fresh analyzer instances and requires byte-identical output. Analyzer
// state lives in Go maps whose iteration order varies between instances
// even within one process, so any map-order dependence in deps, plans, or
// equivalence-set reporting shows up as a diff here.
func TestDeterministicDependenceOutput(t *testing.T) {
	type scenario struct {
		name   string
		tree   *region.Tree
		stream *core.Stream
	}
	var scenarios []scenario
	tree, p, g := graphTree()
	scenarios = append(scenarios, scenario{"figure5", tree, figure5Stream(tree, p, g)})
	for _, seed := range []int64{1, 42, 20260806} {
		rng := rand.New(rand.NewSource(seed))
		tr := randTree(rng)
		scenarios = append(scenarios, scenario{fmt.Sprintf("rand%d", seed), tr, randStream(rng, tr, 30)})
	}

	for _, sc := range scenarios {
		for _, fac := range allFactories() {
			first := renderRun(fac, sc.tree, sc.stream)
			second := renderRun(fac, sc.tree, sc.stream)
			if first != second {
				t.Errorf("%s/%s: two runs of the same stream differ\nfirst:\n%s\nsecond:\n%s",
					sc.name, fac.Name, first, second)
			}
		}
	}
}

// fuzzStream decodes a task stream over the Figure 1 graph tree from fuzz
// bytes: each three-byte group selects a region, a field, and a privilege
// for a single-requirement task (single requirements trivially satisfy the
// §4 restriction on a task's own requirements).
func fuzzStream(tree *region.Tree, data []byte) *core.Stream {
	var regions []*region.Region
	for i := 0; i < tree.NumRegions(); i++ {
		if r := tree.Region(i); !r.Space.IsEmpty() {
			regions = append(regions, r)
		}
	}
	ops := []privilege.ReduceOp{privilege.OpSum, privilege.OpProd, privilege.OpMin, privilege.OpMax}
	s := core.NewStream(tree)
	for len(data) >= 3 && len(s.Tasks) < 16 {
		r := regions[int(data[0])%len(regions)]
		f := field.ID(int(data[1]) % tree.Fields.Len())
		var priv privilege.Privilege
		switch data[2] % 6 {
		case 0:
			priv = privilege.Reads()
		case 1, 2:
			priv = privilege.Writes()
		default:
			priv = privilege.Reduces(ops[int(data[2]/6)%len(ops)])
		}
		s.Launch("fz", core.Req{Region: r, Field: f, Priv: priv})
		data = data[3:]
	}
	return s
}

// FuzzPainterVsExact cross-checks every analyzer's reported dependences
// against the exact O(n²) analysis on small fuzz-derived streams: each
// analyzer's transitive closure must contain every exact dependence.
func FuzzPainterVsExact(f *testing.F) {
	f.Add([]byte{0, 0, 1})                         // one write on the root
	f.Add([]byte{1, 0, 1, 4, 0, 3, 2, 1, 0})       // write, reduce, read mix
	f.Add([]byte{1, 0, 1, 2, 0, 1, 3, 0, 1})       // disjoint writes
	f.Add([]byte{4, 1, 3, 5, 1, 9, 6, 1, 3})       // aliased ghost reductions
	f.Add([]byte{0, 0, 2, 0, 1, 2, 0, 0, 0, 0, 1}) // root writes then read
	f.Fuzz(func(t *testing.T, data []byte) {
		tree, _, _ := graphTree()
		s := fuzzStream(tree, data)
		if len(s.Tasks) == 0 {
			return
		}
		exact := core.ExactDeps(s.Tasks)
		for _, fac := range allFactories() {
			an := fac.New(tree)
			var got [][]int
			for _, task := range s.Tasks {
				got = append(got, an.Analyze(task).Deps)
			}
			if err := core.CheckSound(got, exact); err != nil {
				t.Errorf("%s: %v", fac.Name, err)
			}
		}
	})
}
