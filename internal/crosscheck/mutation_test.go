package crosscheck

import (
	"testing"

	"visibility/internal/core"
	"visibility/internal/index"
	"visibility/internal/raycast"
	"visibility/internal/region"
)

// Mutation meta-tests: the verification harness must catch an analyzer
// that is correct except for one subtle corruption. If any of these pass
// verification, the test suite's safety net has a hole.

// mutant wraps a correct analyzer and corrupts its output once.
type mutant struct {
	core.Analyzer
	corrupt func(t *core.Task, res *core.Result)
	fired   bool
}

func (m *mutant) Analyze(t *core.Task) *core.Result {
	res := m.Analyzer.Analyze(t)
	if m.fired {
		return res
	}
	cp := &core.Result{Deps: append([]int{}, res.Deps...), Plans: append([][]core.Visible{}, res.Plans...)}
	m.corrupt(t, cp)
	return cp
}

func mutantFactory(name string, corrupt func(m *mutant, t *core.Task, res *core.Result)) core.Factory {
	return core.Factory{
		Name: name,
		New: func(tr *region.Tree) core.Analyzer {
			m := &mutant{Analyzer: raycast.New(tr, core.Options{})}
			m.corrupt = func(t *core.Task, res *core.Result) { corrupt(m, t, res) }
			return m
		},
	}
}

func expectVerifyFailure(t *testing.T, name string, fac core.Factory) {
	t.Helper()
	defer func() {
		// StrictPlans violations surface as panics; dependence or value
		// violations as errors. Either counts as "caught".
		_ = recover()
	}()
	tree, p, g := graphTree()
	s := figure5Stream(tree, p, g)
	err := core.Verify(s, fullInit(tree), core.HashKernel{}, fac)
	if err == nil {
		t.Errorf("%s: verification failed to catch the corruption", name)
	}
}

func TestVerifierCatchesDroppedDependence(t *testing.T) {
	expectVerifyFailure(t, "drop-dep", mutantFactory("drop-dep", func(m *mutant, t *core.Task, res *core.Result) {
		// Drop every dependence of a mid-stream task: its exact
		// interferences can no longer be transitively covered.
		if t.ID == 6 && len(res.Deps) > 0 {
			res.Deps = nil
			m.fired = true
		}
	}))
}

func TestVerifierCatchesCorruptedPlanProducer(t *testing.T) {
	expectVerifyFailure(t, "wrong-producer", mutantFactory("wrong-producer", func(m *mutant, t *core.Task, res *core.Result) {
		for ri := range res.Plans {
			plan := res.Plans[ri]
			for vi := range plan {
				if plan[vi].Task >= 1 {
					// Point one plan entry at an older producer.
					mutated := make([]core.Visible, len(plan))
					copy(mutated, plan)
					mutated[vi].Task = mutated[vi].Task - 1
					res.Plans[ri] = mutated
					m.fired = true
					return
				}
			}
		}
	}))
}

func TestVerifierCatchesShrunkPlanEntry(t *testing.T) {
	expectVerifyFailure(t, "shrunk-entry", mutantFactory("shrunk-entry", func(m *mutant, t *core.Task, res *core.Result) {
		for ri := range res.Plans {
			plan := res.Plans[ri]
			for vi := range plan {
				if plan[vi].Priv.IsWrite() && plan[vi].Pts.Volume() > 1 {
					// Shrink a write entry: leaves a materialization hole.
					mutated := make([]core.Visible, len(plan))
					copy(mutated, plan)
					b := mutated[vi].Pts.Bounds()
					b.Hi.C[0] = b.Lo.C[0]
					mutated[vi].Pts = mutated[vi].Pts.Intersect(index.FromRect(b))
					res.Plans[ri] = mutated
					m.fired = true
					return
				}
			}
		}
	}))
}
