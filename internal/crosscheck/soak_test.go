package crosscheck

import (
	"math/rand"
	"testing"

	"visibility/internal/core"
	"visibility/internal/trace"
)

// TestSoakRandomStreams is the long-form randomized cross-validation:
// many random trees and long task streams through every analyzer, plus
// trace-wrapped variants replaying repeated stream windows. Skipped in
// -short mode.
func TestSoakRandomStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(7171))
	for it := 0; it < 120; it++ {
		tree := randTree(rng)
		stream := randStream(rng, tree, 20+rng.Intn(40))
		if err := core.Verify(stream, fullInit(tree), core.HashKernel{}, allFactories()...); err != nil {
			t.Fatalf("soak iteration %d: %v", it, err)
		}
	}
}

// TestSoakTracedLoops validates trace replay across every analyzer on
// repeated random loop bodies: values must match the sequential
// interpreter and dependence orderings must stay sound.
func TestSoakTracedLoops(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(99221))
	for it := 0; it < 25; it++ {
		tree := randTree(rng)
		// A fixed random loop body, repeated.
		body := randStream(rng, tree, 6+rng.Intn(8))
		if len(body.Tasks) == 0 {
			continue
		}
		for _, fac := range allFactories() {
			tr := trace.New(fac.New(tree), core.Options{})
			eng := core.NewEngine(tree, tr, fullInit(tree))
			eng.RecordInputs = true
			eng.StrictPlans = true
			seq := core.NewSeq(tree, fullInit(tree))

			stream := core.NewStream(tree)
			var got [][]int
			for rep := 0; rep < 6; rep++ {
				if rep > 0 {
					tr.Begin(1)
				}
				for _, proto := range body.Tasks {
					task := stream.Launch(proto.Name, proto.Reqs...)
					seq.Run(task, core.HashKernel{})
					res := eng.Launch(task, core.HashKernel{})
					got = append(got, res.Deps)
				}
				if rep > 0 {
					tr.End()
				}
			}
			// Values match the sequential interpreter.
			for id, want := range seq.Inputs {
				have := eng.Inputs[id]
				for ri := range want {
					if want[ri] != nil && !want[ri].Equal(have[ri]) {
						t.Fatalf("soak %d %s: task %d req %d diverged:\n%s",
							it, fac.Name, id, ri, want[ri].Diff(have[ri]))
					}
				}
			}
			// Orderings sound.
			if err := core.CheckSound(got, core.ExactDeps(stream.Tasks)); err != nil {
				t.Fatalf("soak %d %s: %v", it, fac.Name, err)
			}
		}
	}
}
