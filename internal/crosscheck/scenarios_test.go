package crosscheck

import (
	"testing"

	"visibility/internal/core"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/index"
	"visibility/internal/privilege"
	"visibility/internal/region"
	"visibility/internal/warnock"
)

// Targeted scenarios that stress specific algorithm mechanisms beyond the
// random streams: deep nesting, root-region writes, partition migration,
// K-d fallback, and long histories of mixed privileges.

func verifyAll(t *testing.T, s *core.Stream) {
	t.Helper()
	if err := core.Verify(s, fullInit(s.Tree), core.HashKernel{}, allFactories()...); err != nil {
		t.Fatal(err)
	}
}

// TestDeepNesting builds a three-level region tree and runs tasks at every
// level, including interleaved coarse and fine accesses that force the
// painter to hoist child histories into its own node's views.
func TestDeepNesting(t *testing.T) {
	fs := field.NewSpace()
	fs.Add("v")
	tree := region.NewTree("A", index.FromRect(geometry.R1(0, 63)), fs)
	top := tree.Root.Partition("T", []index.Space{
		index.FromRect(geometry.R1(0, 31)),
		index.FromRect(geometry.R1(32, 63)),
	})
	var leaves []*region.Region
	for _, sub := range top.Subregions {
		b := sub.Space.Bounds()
		mid := sub.Partition("M", []index.Space{
			index.FromRect(geometry.R1(b.Lo.C[0], b.Lo.C[0]+15)),
			index.FromRect(geometry.R1(b.Lo.C[0]+16, b.Hi.C[0])),
		})
		for _, m := range mid.Subregions {
			mb := m.Space.Bounds()
			bot := m.Partition("B", []index.Space{
				index.FromRect(geometry.R1(mb.Lo.C[0], mb.Lo.C[0]+7)),
				index.FromRect(geometry.R1(mb.Lo.C[0]+8, mb.Hi.C[0])),
			})
			leaves = append(leaves, bot.Subregions...)
		}
	}

	s := core.NewStream(tree)
	w := func(r *region.Region) {
		s.Launch("w", core.Req{Region: r, Field: 0, Priv: privilege.Writes()})
	}
	rd := func(r *region.Region) {
		s.Launch("r", core.Req{Region: r, Field: 0, Priv: privilege.Reads()})
	}
	// Fine writes, coarse read, coarse write, fine reads, root ops.
	for _, l := range leaves {
		w(l)
	}
	rd(top.Subregions[0])
	w(top.Subregions[1])
	for _, l := range leaves {
		rd(l)
	}
	w(tree.Root)
	rd(leaves[3])
	for _, l := range leaves {
		w(l)
	}
	rd(tree.Root)
	verifyAll(t, s)
}

// TestRootWritesOccludeEverything interleaves piece-level churn with full
// root writes — the dominating-write fast path and the painter's
// whole-node pruning.
func TestRootWritesOccludeEverything(t *testing.T) {
	tree, p, g := graphTree()
	up, _ := tree.Fields.Lookup("up")
	s := core.NewStream(tree)
	for round := 0; round < 3; round++ {
		for i := 0; i < 3; i++ {
			s.Launch("w", core.Req{Region: p.Subregions[i], Field: up, Priv: privilege.Writes()})
			s.Launch("red", core.Req{Region: g.Subregions[i], Field: up, Priv: privilege.Reduces(privilege.OpSum)})
		}
		s.Launch("wipe", core.Req{Region: tree.Root, Field: up, Priv: privilege.Writes()})
	}
	s.Launch("check", core.Req{Region: tree.Root, Field: up, Priv: privilege.Reads()})
	verifyAll(t, s)
}

// TestPartitionMigrationStream switches between two disjoint-complete
// partitions mid-stream, forcing the ray-casting analyzer to re-bucket.
func TestPartitionMigrationStream(t *testing.T) {
	fs := field.NewSpace()
	fs.Add("v")
	tree := region.NewTree("A", index.FromRect(geometry.R1(0, 63)), fs)
	fine := make([]index.Space, 8)
	for i := range fine {
		fine[i] = index.FromRect(geometry.R1(int64(i)*8, int64(i+1)*8-1))
	}
	coarse := []index.Space{
		index.FromRect(geometry.R1(0, 31)),
		index.FromRect(geometry.R1(32, 63)),
	}
	pf := tree.Root.Partition("fine", fine)
	pc := tree.Root.Partition("coarse", coarse)

	s := core.NewStream(tree)
	for round := 0; round < 3; round++ {
		for i := 0; i < 8; i++ {
			s.Launch("wf", core.Req{Region: pf.Subregions[i], Field: 0, Priv: privilege.Writes()})
		}
		// Sustained use of the coarse partition (longer than the
		// migration threshold) with reads in between.
		for k := 0; k < 12; k++ {
			s.Launch("rc", core.Req{Region: pc.Subregions[k%2], Field: 0, Priv: privilege.Reads()})
			s.Launch("wc", core.Req{Region: pc.Subregions[k%2], Field: 0, Priv: privilege.Writes()})
		}
	}
	verifyAll(t, s)
}

// TestKDFallbackStream runs a full mixed stream on a tree with no
// disjoint-complete partition at all.
func TestKDFallbackStream(t *testing.T) {
	fs := field.NewSpace()
	fs.Add("v")
	fs.Add("w")
	tree := region.NewTree("A", index.FromRect(geometry.R2(0, 0, 15, 15)), fs)
	q := tree.Root.Partition("Q", []index.Space{
		index.FromRect(geometry.R2(0, 0, 9, 9)),
		index.FromRect(geometry.R2(6, 6, 15, 15)),
		index.FromRect(geometry.R2(0, 10, 5, 15)),
	})
	for _, p := range tree.Root.Partitions {
		if p.DisjointComplete() {
			t.Fatal("fixture must have no disjoint-complete partition")
		}
	}
	s := core.NewStream(tree)
	for round := 0; round < 4; round++ {
		for i := 0; i < 3; i++ {
			s.Launch("w", core.Req{Region: q.Subregions[i], Field: 0, Priv: privilege.Writes()})
		}
		s.Launch("sum", core.Req{Region: q.Subregions[(round+1)%3], Field: 0, Priv: privilege.Reduces(privilege.OpSum)})
		s.Launch("r", core.Req{Region: tree.Root, Field: 0, Priv: privilege.Reads()})
		s.Launch("w2", core.Req{Region: q.Subregions[round%3], Field: 1, Priv: privilege.Writes()})
	}
	verifyAll(t, s)
}

// TestMixedReductionOperators alternates sum/min/max/prod reductions over
// aliased regions with occasional writes and reads — every operator switch
// is an interference boundary.
func TestMixedReductionOperators(t *testing.T) {
	tree, p, g := graphTree()
	up, _ := tree.Fields.Lookup("up")
	ops := []privilege.ReduceOp{privilege.OpSum, privilege.OpMin, privilege.OpMax, privilege.OpProd}
	s := core.NewStream(tree)
	for round, op := range ops {
		for i := 0; i < 3; i++ {
			s.Launch("red", core.Req{Region: g.Subregions[i], Field: up, Priv: privilege.Reduces(op)})
		}
		s.Launch("r", core.Req{Region: p.Subregions[round%3], Field: up, Priv: privilege.Reads()})
	}
	s.Launch("final", core.Req{Region: tree.Root, Field: up, Priv: privilege.Reads()})
	verifyAll(t, s)
}

// TestReadOnlyStream never mutates: everything must be parallel and all
// materializations must be the initial contents.
func TestReadOnlyStream(t *testing.T) {
	tree, p, g := graphTree()
	up, _ := tree.Fields.Lookup("up")
	s := core.NewStream(tree)
	for round := 0; round < 3; round++ {
		for i := 0; i < 3; i++ {
			s.Launch("r1", core.Req{Region: p.Subregions[i], Field: up, Priv: privilege.Reads()})
			s.Launch("r2", core.Req{Region: g.Subregions[i], Field: up, Priv: privilege.Reads()})
		}
	}
	verifyAll(t, s)

	// And every analyzer must find zero dependences.
	for _, fac := range allFactories() {
		an := fac.New(tree)
		for _, task := range s.Tasks {
			if deps := an.Analyze(task).Deps; len(deps) != 0 {
				t.Errorf("%s: read-only task %v got deps %v", fac.Name, task, deps)
			}
		}
	}
}

// TestSameTaskMultipleReqsSameField exercises tasks holding two
// requirements on the same field (allowed when both read or both reduce
// with one operator, §4), including overlapping ones.
func TestSameTaskMultipleReqsSameField(t *testing.T) {
	tree, p, g := graphTree()
	up, _ := tree.Fields.Lookup("up")
	s := core.NewStream(tree)
	for i := 0; i < 3; i++ {
		s.Launch("w", core.Req{Region: p.Subregions[i], Field: up, Priv: privilege.Writes()})
	}
	// Overlapping same-op reductions within one task.
	s.Launch("redred",
		core.Req{Region: g.Subregions[0], Field: up, Priv: privilege.Reduces(privilege.OpSum)},
		core.Req{Region: g.Subregions[1], Field: up, Priv: privilege.Reduces(privilege.OpSum)})
	// Overlapping reads within one task.
	s.Launch("rr",
		core.Req{Region: p.Subregions[1], Field: up, Priv: privilege.Reads()},
		core.Req{Region: g.Subregions[0], Field: up, Priv: privilege.Reads()})
	verifyAll(t, s)
}

// TestWarnockMemoAblationEquivalence checks the DisableMemo knob changes
// only cost, never results.
func TestWarnockMemoAblationEquivalence(t *testing.T) {
	tree, p, g := graphTree()
	s := core.NewStream(tree)
	for iter := 0; iter < 4; iter++ {
		for i := 0; i < 3; i++ {
			s.Launch("t1",
				core.Req{Region: p.Subregions[i], Field: 0, Priv: privilege.Writes()},
				core.Req{Region: g.Subregions[i], Field: 1, Priv: privilege.Reduces(privilege.OpSum)})
		}
	}
	err := core.Verify(s, fullInit(tree), core.HashKernel{},
		core.Factory{Name: "warnock-nomemo", New: func(tr *region.Tree) core.Analyzer {
			w := warnock.New(tr, core.Options{})
			w.DisableMemo = true
			return w
		}})
	if err != nil {
		t.Fatal(err)
	}
}
