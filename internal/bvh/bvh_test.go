package bvh

import (
	"math/rand"
	"sort"
	"testing"

	"visibility/internal/geometry"
	"visibility/internal/index"
)

func collect(query func(visit func(id int)) int) ([]int, int) {
	var ids []int
	cost := query(func(id int) { ids = append(ids, id) })
	sort.Ints(ids)
	return ids, cost
}

func TestBVHQueryExact(t *testing.T) {
	items := []Input{
		{Box: geometry.R2(0, 0, 3, 3), ID: 0},
		{Box: geometry.R2(4, 0, 7, 3), ID: 1},
		{Box: geometry.R2(0, 4, 3, 7), ID: 2},
		{Box: geometry.R2(4, 4, 7, 7), ID: 3},
	}
	tree := Build(items)
	if tree.Len() != 4 {
		t.Fatalf("Len = %d", tree.Len())
	}
	ids, _ := collect(func(v func(int)) int { return tree.Query(geometry.R2(1, 1, 5, 2), v) })
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Errorf("Query = %v, want [0 1]", ids)
	}
	ids, _ = collect(func(v func(int)) int { return tree.Query(geometry.R2(9, 9, 10, 10), v) })
	if len(ids) != 0 {
		t.Errorf("miss Query = %v", ids)
	}
}

func TestBVHEmpty(t *testing.T) {
	tree := Build(nil)
	if tree.Len() != 0 {
		t.Error("empty tree Len != 0")
	}
	if cost := tree.Query(geometry.R1(0, 1), func(int) { t.Error("visited") }); cost != 0 {
		t.Error("empty tree query should cost 0")
	}
}

func TestBVHAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		items := make([]Input, n)
		for i := range items {
			lo := geometry.Pt2(rng.Int63n(50), rng.Int63n(50))
			items[i] = Input{Box: geometry.Rect{
				Dim: 2, Lo: lo,
				Hi: geometry.Pt2(lo.C[0]+rng.Int63n(10), lo.C[1]+rng.Int63n(10)),
			}, ID: i}
		}
		tree := Build(items)
		for q := 0; q < 20; q++ {
			lo := geometry.Pt2(rng.Int63n(60), rng.Int63n(60))
			box := geometry.Rect{Dim: 2, Lo: lo, Hi: geometry.Pt2(lo.C[0]+rng.Int63n(20), lo.C[1]+rng.Int63n(20))}
			got, _ := collect(func(v func(int)) int { return tree.Query(box, v) })
			var want []int
			for _, it := range items {
				if it.Box.Overlaps(box) {
					want = append(want, it.ID)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: Query(%v) = %v, want %v", trial, box, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d: Query(%v) = %v, want %v", trial, box, got, want)
				}
			}
		}
	}
}

func TestBVHQuerySpaceDedups(t *testing.T) {
	items := []Input{{Box: geometry.R1(0, 9), ID: 7}}
	tree := Build(items)
	sp := index.FromRects(1, geometry.R1(0, 2), geometry.R1(5, 6))
	count := 0
	tree.QuerySpace(sp, func(id int) { count++ })
	if count != 1 {
		t.Errorf("item visited %d times, want 1", count)
	}
}

func TestBVHLogarithmicTraversal(t *testing.T) {
	// Point query in a large balanced tree should visit O(log n) nodes.
	n := 1024
	items := make([]Input, n)
	for i := range items {
		items[i] = Input{Box: geometry.R1(int64(i)*10, int64(i)*10+9), ID: i}
	}
	tree := Build(items)
	_, cost := collect(func(v func(int)) int {
		return tree.Query(geometry.R1(5000, 5005), v)
	})
	if cost > 60 { // 2*log2(1024)+slack
		t.Errorf("point query visited %d nodes; expected logarithmic traversal", cost)
	}
}

func TestKDInsertQueryRemove(t *testing.T) {
	kd := NewKD(geometry.R2(0, 0, 63, 63), 16)
	if kd.NumCells() < 8 {
		t.Fatalf("NumCells = %d", kd.NumCells())
	}
	kd.Insert(1, geometry.R2(0, 0, 10, 10))
	kd.Insert(2, geometry.R2(40, 40, 50, 50))
	kd.Insert(3, geometry.R2(0, 0, 63, 63)) // spans many cells

	ids, _ := collect(func(v func(int)) int { return kd.Query(geometry.R2(5, 5, 6, 6), v) })
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Errorf("Query = %v, want [1 3]", ids)
	}

	kd.Remove(3)
	ids, _ = collect(func(v func(int)) int { return kd.Query(geometry.R2(5, 5, 6, 6), v) })
	if len(ids) != 1 || ids[0] != 1 {
		t.Errorf("after Remove: Query = %v, want [1]", ids)
	}
	kd.Remove(99) // unknown id is a no-op
	ids, _ = collect(func(v func(int)) int { return kd.QuerySpace(index.FromRect(geometry.R2(45, 45, 46, 46)), v) })
	if len(ids) != 1 || ids[0] != 2 {
		t.Errorf("QuerySpace = %v, want [2]", ids)
	}
}

func TestKDAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	kd := NewKD(geometry.R2(0, 0, 99, 99), 32)
	boxes := map[int]geometry.Rect{}
	for i := 0; i < 60; i++ {
		lo := geometry.Pt2(rng.Int63n(90), rng.Int63n(90))
		box := geometry.Rect{Dim: 2, Lo: lo, Hi: geometry.Pt2(lo.C[0]+rng.Int63n(10), lo.C[1]+rng.Int63n(10))}
		kd.Insert(i, box)
		boxes[i] = box
	}
	// Remove a third of them.
	for i := 0; i < 60; i += 3 {
		kd.Remove(i)
		delete(boxes, i)
	}
	for q := 0; q < 30; q++ {
		lo := geometry.Pt2(rng.Int63n(95), rng.Int63n(95))
		box := geometry.Rect{Dim: 2, Lo: lo, Hi: geometry.Pt2(lo.C[0]+rng.Int63n(15), lo.C[1]+rng.Int63n(15))}
		got, _ := collect(func(v func(int)) int { return kd.Query(box, v) })
		var want []int
		for id, b := range boxes {
			if b.Overlaps(box) {
				want = append(want, id)
			}
		}
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("Query(%v) = %v, want %v", box, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Query(%v) = %v, want %v", box, got, want)
			}
		}
	}
}
