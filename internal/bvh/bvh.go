// Package bvh provides spatial acceleration structures: a static bounding
// volume hierarchy over rectangles (used by ray casting to locate the
// disjoint-complete partition pieces a region overlaps, §7.1) and a
// dynamic K-d-tree container for items with bounding boxes (the fallback
// when no disjoint-complete partition exists).
package bvh

import (
	"sort"

	"visibility/internal/geometry"
	"visibility/internal/index"
)

// Input is one item to index: a bounding box and a caller-defined ID.
type Input struct {
	Box geometry.Rect
	ID  int
}

// Tree is a static BVH built by median splits over box centers.
type Tree struct {
	nodes []node
}

type node struct {
	box         geometry.Rect
	left, right int // child indices; -1 for leaves
	id          int // item ID at leaves
}

// Build constructs a BVH over items. Empty boxes are permitted but never
// matched by queries. Build copies the input slice.
func Build(items []Input) *Tree {
	t := &Tree{}
	if len(items) == 0 {
		return t
	}
	work := make([]Input, len(items))
	copy(work, items)
	t.build(work)
	return t
}

func (t *Tree) build(items []Input) int {
	if len(items) == 1 {
		t.nodes = append(t.nodes, node{box: items[0].Box, left: -1, right: -1, id: items[0].ID})
		return len(t.nodes) - 1
	}
	box := items[0].Box
	for _, it := range items[1:] {
		box = box.Union(it.Box)
	}
	// Split on the longest axis by center.
	axis, span := 0, int64(-1)
	for a := 0; a < box.Dim; a++ {
		if s := box.Hi.C[a] - box.Lo.C[a]; s > span {
			span, axis = s, a
		}
	}
	sort.Slice(items, func(i, j int) bool {
		ci := items[i].Box.Lo.C[axis] + items[i].Box.Hi.C[axis]
		cj := items[j].Box.Lo.C[axis] + items[j].Box.Hi.C[axis]
		if ci != cj {
			return ci < cj
		}
		return items[i].ID < items[j].ID
	})
	mid := len(items) / 2
	idx := len(t.nodes)
	t.nodes = append(t.nodes, node{box: box})
	l := t.build(items[:mid])
	r := t.build(items[mid:])
	t.nodes[idx].left = l
	t.nodes[idx].right = r
	t.nodes[idx].id = -1
	return idx
}

// Len returns the number of indexed items.
func (t *Tree) Len() int {
	n := 0
	for _, nd := range t.nodes {
		if nd.left == -1 {
			n++
		}
	}
	return n
}

// Query calls visit for every item whose box overlaps box and returns the
// number of tree nodes visited (the traversal cost).
func (t *Tree) Query(box geometry.Rect, visit func(id int)) int {
	if len(t.nodes) == 0 {
		return 0
	}
	return t.query(0, box, visit)
}

func (t *Tree) query(i int, box geometry.Rect, visit func(id int)) int {
	nd := &t.nodes[i]
	if !nd.box.Overlaps(box) {
		return 1
	}
	if nd.left == -1 {
		visit(nd.id)
		return 1
	}
	return 1 + t.query(nd.left, box, visit) + t.query(nd.right, box, visit)
}

// QuerySpace calls visit for every item whose box overlaps any rectangle of
// sp, at most once per item, and returns nodes visited.
func (t *Tree) QuerySpace(sp index.Space, visit func(id int)) int {
	seen := make(map[int]bool)
	cost := 0
	for _, r := range sp.Rects() {
		cost += t.Query(r, func(id int) {
			if !seen[id] {
				seen[id] = true
				visit(id)
			}
		})
	}
	return cost
}

// KD is a dynamic container over a fixed spatial decomposition: the root
// bounds are recursively split into cells, and items are registered in
// every cell their bounding box overlaps. Queries visit only cells
// overlapping the query box. Used by ray casting when no disjoint-complete
// partition is available to define buckets (§7.1).
type KD struct {
	cells     []geometry.Rect
	items     map[int][]int // cell → item IDs
	placement map[int][]int // item ID → cells
	boxes     map[int]geometry.Rect
}

// NewKD builds a K-d decomposition of bounds with approximately targetCells
// leaf cells.
func NewKD(bounds geometry.Rect, targetCells int) *KD {
	kd := &KD{
		items:     make(map[int][]int),
		placement: make(map[int][]int),
		boxes:     make(map[int]geometry.Rect),
	}
	var split func(r geometry.Rect, want int)
	split = func(r geometry.Rect, want int) {
		if want <= 1 || r.Volume() <= 1 {
			kd.cells = append(kd.cells, r)
			return
		}
		// Split the longest axis at the midpoint.
		axis, span := 0, int64(-1)
		for a := 0; a < r.Dim; a++ {
			if s := r.Hi.C[a] - r.Lo.C[a]; s > span {
				span, axis = s, a
			}
		}
		if span == 0 {
			kd.cells = append(kd.cells, r)
			return
		}
		mid := (r.Lo.C[axis] + r.Hi.C[axis]) / 2
		lo, hi := r, r
		lo.Hi.C[axis] = mid
		hi.Lo.C[axis] = mid + 1
		split(lo, want/2)
		split(hi, want-want/2)
	}
	split(bounds, targetCells)
	return kd
}

// NumCells returns the number of leaf cells.
func (kd *KD) NumCells() int { return len(kd.cells) }

// Insert registers item id with bounding box box.
func (kd *KD) Insert(id int, box geometry.Rect) {
	kd.boxes[id] = box
	for ci, cell := range kd.cells {
		if cell.Overlaps(box) {
			kd.items[ci] = append(kd.items[ci], id)
			kd.placement[id] = append(kd.placement[id], ci)
		}
	}
}

// Remove deregisters item id. Removing an unknown id is a no-op.
func (kd *KD) Remove(id int) {
	for _, ci := range kd.placement[id] {
		list := kd.items[ci]
		for i, x := range list {
			if x == id {
				list[i] = list[len(list)-1]
				kd.items[ci] = list[:len(list)-1]
				break
			}
		}
	}
	delete(kd.placement, id)
	delete(kd.boxes, id)
}

// Query calls visit once for each item whose registered box overlaps box,
// and returns the number of cells examined.
func (kd *KD) Query(box geometry.Rect, visit func(id int)) int {
	seen := make(map[int]bool)
	cost := 0
	for ci, cell := range kd.cells {
		if !cell.Overlaps(box) {
			continue
		}
		cost++
		for _, id := range kd.items[ci] {
			if seen[id] {
				continue
			}
			if kd.boxes[id].Overlaps(box) {
				seen[id] = true
				visit(id)
			}
		}
	}
	return cost
}

// QuerySpace calls visit once per item overlapping any rectangle of sp.
func (kd *KD) QuerySpace(sp index.Space, visit func(id int)) int {
	seen := make(map[int]bool)
	cost := 0
	for _, r := range sp.Rects() {
		cost += kd.Query(r, func(id int) {
			if !seen[id] {
				seen[id] = true
				visit(id)
			}
		})
	}
	return cost
}
