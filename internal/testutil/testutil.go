// Package testutil provides shared fixtures for the analyzer test suites:
// the paper's Figure 1/2 graph setup, its Figure 5 task stream, and common
// invariant checks.
package testutil

import (
	"fmt"

	"visibility/internal/core"
	"visibility/internal/data"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/index"
	"visibility/internal/privilege"
	"visibility/internal/region"
)

// GraphTree builds the Figure 1/2 setup: an 18-node ring region N with
// fields up and down, a disjoint-complete primary partition P into three
// blocks of six, and an aliased ghost partition G of width-4 halos.
func GraphTree() (*region.Tree, *region.Partition, *region.Partition) {
	fs := field.NewSpace()
	fs.Add("up")
	fs.Add("down")
	tree := region.NewTree("N", index.FromRect(geometry.R1(0, 17)), fs)
	p := tree.Root.Partition("P", []index.Space{
		index.FromRect(geometry.R1(0, 5)),
		index.FromRect(geometry.R1(6, 11)),
		index.FromRect(geometry.R1(12, 17)),
	})
	g := tree.Root.Partition("G", []index.Space{
		index.FromRects(1, geometry.R1(14, 17), geometry.R1(6, 9)),
		index.FromRects(1, geometry.R1(2, 5), geometry.R1(12, 15)),
		index.FromRects(1, geometry.R1(8, 11), geometry.R1(0, 3)),
	})
	return tree, p, g
}

// LaunchT1 launches one t1 task of Figure 1 (read-write P[i].up, reduce+
// G[i].down).
func LaunchT1(s *core.Stream, p, g *region.Partition, i int) *core.Task {
	tree := s.Tree
	up, _ := tree.Fields.Lookup("up")
	down, _ := tree.Fields.Lookup("down")
	return s.Launch("t1",
		core.Req{Region: p.Subregions[i], Field: up, Priv: privilege.Writes()},
		core.Req{Region: g.Subregions[i], Field: down, Priv: privilege.Reduces(privilege.OpSum)})
}

// LaunchT2 launches one t2 task of Figure 1 (read-write P[i].down, reduce+
// G[i].up).
func LaunchT2(s *core.Stream, p, g *region.Partition, i int) *core.Task {
	tree := s.Tree
	up, _ := tree.Fields.Lookup("up")
	down, _ := tree.Fields.Lookup("down")
	return s.Launch("t2",
		core.Req{Region: p.Subregions[i], Field: down, Priv: privilege.Writes()},
		core.Req{Region: g.Subregions[i], Field: up, Priv: privilege.Reduces(privilege.OpSum)})
}

// Figure5 launches the nine tasks of Figure 5 into s and returns them.
func Figure5(s *core.Stream, p, g *region.Partition) []*core.Task {
	var out []*core.Task
	for i := 0; i < 3; i++ {
		out = append(out, LaunchT1(s, p, g, i))
	}
	for i := 0; i < 3; i++ {
		out = append(out, LaunchT2(s, p, g, i))
	}
	for i := 0; i < 3; i++ {
		out = append(out, LaunchT1(s, p, g, i))
	}
	return out
}

// FullInit returns initial stores covering the whole root region for every
// field, with distinct deterministic values.
func FullInit(tree *region.Tree) map[field.ID]*data.Store {
	init := make(map[field.ID]*data.Store)
	for f := 0; f < tree.Fields.Len(); f++ {
		st := data.NewStore(tree.Root.Space.Dim())
		tree.Root.Space.Each(func(p geometry.Point) bool {
			st.Set(p, float64(int64(f+1)*1000)+float64(p.C[0])+2*float64(p.C[1]))
			return true
		})
		init[field.ID(f)] = st
	}
	return init
}

// CheckPartitionInvariant verifies that spaces are pairwise disjoint and
// exactly cover root — the fundamental equivalence-set invariant of §6.
func CheckPartitionInvariant(spaces []index.Space, root index.Space) error {
	union := index.Empty(root.Dim())
	for i, a := range spaces {
		if a.IsEmpty() {
			return fmt.Errorf("equivalence set %d is empty", i)
		}
		for j := i + 1; j < len(spaces); j++ {
			if a.Overlaps(spaces[j]) {
				return fmt.Errorf("equivalence sets %d and %d overlap: %v vs %v", i, j, a, spaces[j])
			}
		}
		union = union.Union(a)
	}
	if !union.Equal(root) {
		return fmt.Errorf("equivalence sets do not cover the root: %v vs %v", union, root)
	}
	return nil
}
