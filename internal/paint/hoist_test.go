package paint_test

import (
	"testing"

	"visibility/internal/core"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/index"
	"visibility/internal/paint"
	"visibility/internal/privilege"
	"visibility/internal/region"
	"visibility/internal/testutil"
)

// TestNoViewForDisjointSiblings: tasks on disjoint subregions of one
// partition never force composite views.
func TestNoViewForDisjointSiblings(t *testing.T) {
	fs := field.NewSpace()
	fs.Add("v")
	tree := region.NewTree("A", index.FromRect(geometry.R1(0, 29)), fs)
	p := tree.Root.Partition("P", []index.Space{
		index.FromRect(geometry.R1(0, 9)),
		index.FromRect(geometry.R1(10, 19)),
		index.FromRect(geometry.R1(20, 29)),
	})
	pa := paint.NewPainter(tree, core.Options{})
	s := core.NewStream(tree)
	for round := 0; round < 4; round++ {
		for i := 0; i < 3; i++ {
			pa.Analyze(s.Launch("w", core.Req{Region: p.Subregions[i], Field: 0, Priv: privilege.Writes()}))
		}
	}
	if pa.Stats().ViewsCreated != 0 {
		t.Errorf("disjoint writes created %d views, want 0", pa.Stats().ViewsCreated)
	}
}

// TestSummarySkipsNonInterfering: same-operator reductions through an
// aliased partition do not hoist one another's histories, but a different
// operator does.
func TestSummarySkipsNonInterfering(t *testing.T) {
	tree, _, g := testutil.GraphTree()
	pa := paint.NewPainter(tree, core.Options{})
	s := core.NewStream(tree)
	for i := 0; i < 3; i++ {
		pa.Analyze(s.Launch("red", core.Req{Region: g.Subregions[i], Field: 0, Priv: privilege.Reduces(privilege.OpSum)}))
	}
	if pa.Stats().ViewsCreated != 0 {
		t.Fatalf("same-op reductions created %d views, want 0", pa.Stats().ViewsCreated)
	}
	// A min-reduction interferes with the recorded sum-reductions.
	pa.Analyze(s.Launch("min", core.Req{Region: g.Subregions[0], Field: 0, Priv: privilege.Reduces(privilege.OpMin)}))
	if pa.Stats().ViewsCreated == 0 {
		t.Error("different-op reduction should have hoisted a view")
	}
}

// TestRootTaskHoistsEverything: a task on the root region snapshots every
// open interfering subtree.
func TestRootTaskHoistsEverything(t *testing.T) {
	tree, p, g := testutil.GraphTree()
	pa := paint.NewPainter(tree, core.Options{})
	s := core.NewStream(tree)
	for i := 0; i < 3; i++ {
		pa.Analyze(s.Launch("w", core.Req{Region: p.Subregions[i], Field: 0, Priv: privilege.Writes()}))
		pa.Analyze(s.Launch("r", core.Req{Region: g.Subregions[i], Field: 0, Priv: privilege.Reads()}))
	}
	before := pa.Stats().ViewsCreated
	res := pa.Analyze(s.Launch("root", core.Req{Region: tree.Root, Field: 0, Priv: privilege.Writes()}))
	// The P subtree was already hoisted by the interleaved ghost reads;
	// the root write must hoist the still-open G subtree (the reads).
	if pa.Stats().ViewsCreated-before != 1 {
		t.Errorf("root write created %d views, want 1 (the open read subtree)", pa.Stats().ViewsCreated-before)
	}
	// And the root write depends on all six prior tasks.
	if len(res.Deps) != 6 {
		t.Errorf("root write deps = %v, want all six tasks", res.Deps)
	}
}

// TestWriteClearsLeafHistory: repeated writes to one region keep its
// history at length one.
func TestWriteClearsLeafHistory(t *testing.T) {
	tree, p, _ := testutil.GraphTree()
	pa := paint.NewPainter(tree, core.Options{})
	s := core.NewStream(tree)
	for i := 0; i < 10; i++ {
		pa.Analyze(s.Launch("w", core.Req{Region: p.Subregions[0], Field: 0, Priv: privilege.Writes()}))
	}
	// Each write after the first prunes exactly the previous one.
	if got := pa.Stats().ItemsPruned; got != 9 {
		t.Errorf("ItemsPruned = %d, want 9", got)
	}
	// Dependences stay single-edge: each write depends only on its
	// predecessor.
	res := pa.Analyze(s.Launch("w", core.Req{Region: p.Subregions[0], Field: 0, Priv: privilege.Writes()}))
	if len(res.Deps) != 1 || res.Deps[0] != 9 {
		t.Errorf("deps = %v, want [9]", res.Deps)
	}
}

// TestNaivePainterNeverPrunes: the executable specification keeps the full
// history forever, and its dependence lists grow accordingly.
func TestNaivePainterNeverPrunes(t *testing.T) {
	tree, p, _ := testutil.GraphTree()
	na := paint.NewNaive(tree, core.Options{})
	s := core.NewStream(tree)
	var last *core.Result
	for i := 0; i < 8; i++ {
		last = na.Analyze(s.Launch("w", core.Req{Region: p.Subregions[0], Field: 0, Priv: privilege.Writes()}))
	}
	// The naive painter reports a dependence on every prior conflicting
	// task, not just the latest.
	if len(last.Deps) != 7 {
		t.Errorf("naive deps = %v, want all 7 predecessors", last.Deps)
	}
	if na.Stats().ItemsPruned != 0 {
		t.Error("naive painter must not prune")
	}
}
