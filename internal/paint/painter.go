package paint

import (
	"sort"

	"visibility/internal/core"
	"visibility/internal/field"
	"visibility/internal/index"
	"visibility/internal/privilege"
	"visibility/internal/region"
)

// Painter is the optimized painter's algorithm (§5.1). Histories are stored
// at region-tree nodes (both region and partition nodes carry histories)
// such that the history relevant to a region R is the concatenation of the
// histories along the path from the root to R. When a task launches on R,
// any open subtree hanging off R's path whose recorded privileges interfere
// is snapshotted into a composite view appended to the common ancestor's
// history, preserving the relative order of interfering operations.
type Painter struct {
	tree *region.Tree
	opts core.Options
	// state holds the per-field paint histories, mutated by every Analyze
	// with no lock: the analyzer runs on exactly one goroutine (the
	// submit side, §3.2).
	//
	// confined to analyzer
	state map[field.ID]*fieldState
	// confined to analyzer
	stats core.Stats
	// confined to analyzer
	partCache map[int]*region.Partition
	// nextToken issues unique composite-view ids for replication tracking.
	//
	// confined to analyzer
	nextToken int64

	// DisablePruning turns off occlusion pruning (deleting history items
	// fully covered by later writes, §5.1) — an ablation knob for
	// benchmarking; histories then grow for the life of the program.
	DisablePruning bool
}

// NewPainter creates an optimized painter for tree.
func NewPainter(tree *region.Tree, opts core.Options) *Painter {
	return &Painter{tree: tree, opts: opts.Normalize(), state: make(map[field.ID]*fieldState)}
}

// Name implements core.Analyzer.
func (pa *Painter) Name() string { return "paint" }

// Stats implements core.Analyzer.
//
// confined to analyzer
func (pa *Painter) Stats() *core.Stats { return &pa.stats }

// nodeKey identifies a region or partition node of the tree.
type nodeKey struct {
	part bool
	id   int
}

func regionKey(r *region.Region) nodeKey  { return nodeKey{part: false, id: r.ID} }
func partKey(p *region.Partition) nodeKey { return nodeKey{part: true, id: p.ID} }

// item is one element of a node history: a recorded entry or a composite
// view.
type item struct {
	entry core.Entry // valid when view == nil
	view  *view
}

// view is a composite view: an immutable snapshot of a subtree's histories
// in path-preorder order (§5.1). Nested views remain nested and are
// traversed in place.
type view struct {
	items      []item
	pts        index.Space // union of all recorded points
	writeCover index.Space // union of write-covered points (for occlusion)
	summary    *privilege.Summary
	count      int   // total entries including nested views
	id         int64 // replication token (views replicate on demand, §5.1)
	home       int   // owner of the node the view was appended to
}

// nodeState is the per-field analysis state at one tree node.
type nodeState struct {
	hist    []item
	open    bool // some history exists in this node's subtree
	summary *privilege.Summary
}

type fieldState struct {
	nodes map[nodeKey]*nodeState
}

func (pa *Painter) fieldFor(f field.ID) *fieldState {
	fs, ok := pa.state[f]
	if !ok {
		fs = &fieldState{nodes: make(map[nodeKey]*nodeState)}
		// Seed the root with the initial full write (§5).
		root := fs.node(regionKey(pa.tree.Root))
		root.hist = append(root.hist, item{entry: core.SeedEntry(pa.tree.Root.Space)})
		root.open = true
		root.summary.Add(privilege.Writes())
		pa.state[f] = fs
	}
	return fs
}

func (fs *fieldState) node(k nodeKey) *nodeState {
	ns, ok := fs.nodes[k]
	if !ok {
		ns = &nodeState{summary: privilege.NewSummary()}
		fs.nodes[k] = ns
	}
	return ns
}

// pathOf returns the alternating region/partition node keys from the root
// down to r, together with each node's space.
func (pa *Painter) pathOf(r *region.Region) []pathStep {
	span := pa.opts.Spans.Begin("paint.traverse", "analysis")
	defer span.End()
	regions := r.Path()
	steps := make([]pathStep, 0, 2*len(regions))
	for i, reg := range regions {
		if i > 0 {
			p := reg.Parent
			steps = append(steps, pathStep{key: partKey(p), space: p.Space(), part: p})
		}
		steps = append(steps, pathStep{key: regionKey(reg), space: reg.Space, region: reg})
	}
	return steps
}

type pathStep struct {
	key    nodeKey
	space  index.Space
	region *region.Region    // set for region steps
	part   *region.Partition // set for partition steps
}

// Analyze implements core.Analyzer.
//
// confined to analyzer
func (pa *Painter) Analyze(t *core.Task) *core.Result {
	span := pa.opts.Spans.Begin("paint.analyze", "analysis")
	defer span.End()
	pa.stats.Launches++
	var deps []int
	plans := make([][]core.Visible, len(t.Reqs))

	for ri, req := range t.Reqs {
		if req.Region.Space.IsEmpty() {
			// No points: nothing can interfere, nothing materializes, and
			// hoisting for an empty requirement moves nothing. Common under
			// sharding, where a requirement's restriction to most atoms is
			// empty, and for clipped boundary halos.
			continue
		}
		fs := pa.fieldFor(req.Field)
		path := pa.pathOf(req.Region)

		// Step 1 (§5.1): hoist interfering open off-path subtrees into
		// composite views at their common ancestor with R.
		hoist := pa.opts.Spans.Begin("paint.hoist", "analysis")
		for _, step := range path {
			pa.hoistChildren(fs, step, req)
		}
		hoist.End()

		// Step 2: materialize by traversing the path history in order.
		// Interference testing against every (possibly nested) entry is
		// the painter's per-launch cost, which grows with the machine as
		// composite views accumulate children (§8.2); it is charged where
		// the history lives.
		scan := pa.opts.Spans.Begin("paint.scan", "analysis")
		var plan []core.Visible
		for _, step := range path {
			ns := fs.node(step.key)
			if len(ns.hist) == 0 {
				continue
			}
			before := pa.stats.EntriesScanned
			deps, plan = pa.scanItems(ns.hist, req, t.ID, ri, deps, plan)
			pa.opts.Probe.Touch(core.LocalOwner, pa.stats.EntriesScanned-before+1)
		}
		scan.End()
		if req.Priv.IsReduce() {
			plan = nil
		}
		// Path order concatenates per-node histories, so entries from
		// hoisted views can interleave out of program order. That is legal
		// for non-interfering operations in exact arithmetic, but two
		// same-op reductions over the same points applied in a different
		// order than the sequential interpreter differ in the last ulp for
		// float sum/product. Restoring global program order (stable on
		// task, then requirement) keeps interfering pairs where the history
		// already put them and makes materialization byte-exact.
		sort.SliceStable(plan, func(i, j int) bool {
			if plan[i].Task != plan[j].Task {
				return plan[i].Task < plan[j].Task
			}
			return plan[i].Req < plan[j].Req
		})
		plans[ri] = plan
	}

	// commit: record this task's operations at its regions and prune
	// occluded items.
	for ri, req := range t.Reqs {
		if req.Region.Space.IsEmpty() {
			continue
		}
		fs := pa.fieldFor(req.Field)
		path := pa.pathOf(req.Region)
		leaf := fs.node(regionKey(req.Region))
		if req.Priv.IsWrite() && !pa.DisablePruning {
			// A full write of this region occludes everything recorded
			// here: all prior items at this node have points within the
			// region's space.
			pa.stats.ItemsPruned += int64(len(leaf.hist))
			leaf.hist = leaf.hist[:0]
		}
		leaf.hist = append(leaf.hist, item{entry: core.Entry{
			Task: t.ID, Req: ri, Priv: req.Priv, Pts: req.Region.Space,
		}})
		pa.opts.Probe.Touch(pa.opts.Owner(req.Region.Space), 1)
		for _, step := range path {
			ns := fs.node(step.key)
			ns.open = true
			ns.summary.Add(req.Priv)
		}
	}

	return &core.Result{Deps: core.DedupDeps(deps), Plans: plans}
}

// hoistChildren snapshots every open, overlapping, interfering child
// subtree of the path node `step` (excluding the child that continues the
// path) into a composite view appended to step's history.
func (pa *Painter) hoistChildren(fs *fieldState, step pathStep, req core.Req) {
	appendView := func(childKey nodeKey, childSpace index.Space) {
		cs := fs.node(childKey)
		if !cs.open {
			return
		}
		if !cs.summary.Interferes(req.Priv) {
			return
		}
		pa.stats.OverlapTests++
		if !childSpace.Overlaps(req.Region.Space) {
			return
		}
		pa.nextToken++
		v := &view{
			pts:        index.Empty(childSpace.Dim()),
			writeCover: index.Empty(childSpace.Dim()),
			summary:    privilege.NewSummary(),
			id:         pa.nextToken,
			home:       pa.opts.Owner(step.space),
		}
		pa.snapshot(fs, childKey, childSpace, v)
		if len(v.items) == 0 {
			return
		}
		pa.stats.ViewsCreated++
		ns := fs.node(step.key)
		// Occlusion pruning: the new view hides older items it fully
		// overwrites.
		ns.hist = pa.prune(ns.hist, v.writeCover)
		ns.hist = append(ns.hist, item{view: v})
		ns.open = true
		ns.summary.AddAll(v.summary)
		pa.opts.Probe.Touch(pa.opts.Owner(step.space), int64(v.count))
	}

	if step.region != nil {
		for _, p := range step.region.Partitions {
			onPath := req.Region != step.region && containsRegion(p, req.Region)
			if onPath {
				continue
			}
			appendView(partKey(p), p.Space())
		}
	} else {
		for _, sub := range step.part.Subregions {
			if sub == req.Region || sub.IsAncestorOf(req.Region) {
				continue
			}
			appendView(regionKey(sub), sub.Space)
		}
	}
}

// containsRegion reports whether r lies in partition p's subtree.
func containsRegion(p *region.Partition, r *region.Region) bool {
	for cur := r; cur != nil; {
		if cur.Parent == p {
			return true
		}
		if cur.Parent == nil {
			return false
		}
		cur = cur.Parent.Parent
	}
	return false
}

// snapshot moves the histories of the subtree rooted at key into v
// (preorder), closing the subtree. Nodes never touched by a commit have no
// state and no descendants with state, so they terminate the recursion.
func (pa *Painter) snapshot(fs *fieldState, key nodeKey, space index.Space, v *view) {
	ns, ok := fs.nodes[key]
	if !ok || !ns.open {
		return
	}
	if len(ns.hist) > 0 {
		for _, it := range ns.hist {
			v.items = append(v.items, it)
			if it.view != nil {
				v.pts = v.pts.Union(it.view.pts)
				v.writeCover = v.writeCover.Union(it.view.writeCover)
				v.summary.AddAll(it.view.summary)
				v.count += it.view.count
				pa.stats.ViewEntries += int64(it.view.count)
			} else {
				v.pts = v.pts.Union(it.entry.Pts)
				if it.entry.Priv.IsWrite() {
					v.writeCover = v.writeCover.Union(it.entry.Pts)
				}
				v.summary.Add(it.entry.Priv)
				v.count++
				pa.stats.ViewEntries++
			}
		}
		pa.opts.Probe.Touch(pa.opts.Owner(space), int64(len(ns.hist)))
		ns.hist = nil
	}
	ns.open = false
	ns.summary.Reset()

	// Recurse into children.
	if !key.part {
		r := pa.tree.Region(key.id)
		for _, p := range r.Partitions {
			pa.snapshot(fs, partKey(p), p.Space(), v)
		}
	} else {
		p := pa.partitionByID(key.id)
		for _, sub := range p.Subregions {
			pa.snapshot(fs, regionKey(sub), sub.Space, v)
		}
	}
}

func (pa *Painter) partitionByID(id int) *region.Partition {
	// Partitions are reachable from their parent regions; scan the tree's
	// regions once and cache.
	if pa.partCache == nil {
		pa.partCache = make(map[int]*region.Partition)
	}
	if p, ok := pa.partCache[id]; ok {
		return p
	}
	for i := 0; i < pa.tree.NumRegions(); i++ {
		for _, p := range pa.tree.Region(i).Partitions {
			pa.partCache[p.ID] = p
		}
	}
	return pa.partCache[id]
}

// scanItems traverses history items in order, expanding composite views,
// collecting dependences and plan entries for req. dst and ri identify the
// launch and requirement being materialized.
func (pa *Painter) scanItems(items []item, req core.Req, dst, ri int, deps []int, plan []core.Visible) ([]int, []core.Visible) {
	for _, it := range items {
		if it.view != nil {
			pa.stats.OverlapTests++
			// Composite views are immutable and replicate on demand: the
			// first traversal by each analyzing node fetches the whole
			// view from its home; later traversals are cached locally.
			pa.opts.Probe.Fetch(it.view.home, it.view.id, int64(it.view.count))
			if !it.view.pts.Overlaps(req.Region.Space) {
				continue
			}
			deps, plan = pa.scanItems(it.view.items, req, dst, ri, deps, plan)
			continue
		}
		e := it.entry
		pa.stats.EntriesScanned++
		pa.stats.OverlapTests++
		inter := e.Pts.Intersect(req.Region.Space)
		if inter.IsEmpty() {
			continue
		}
		if privilege.Interferes(e.Priv, req.Priv) {
			deps = append(deps, e.Task)
			pa.stats.DepsReported++
			if pa.opts.Prov != nil && e.Task != core.InitialTask {
				pa.opts.Prov.AddReason(core.EdgeReason{
					Src: e.Task, Dst: dst, Kind: core.ReasonRegion, Analyzer: "paint",
					SrcReq: e.Req, DstReq: ri, Field: req.Field,
					SrcPriv: e.Priv, DstPriv: req.Priv, Overlap: inter.Bounds(), Trace: -1,
				})
			}
		}
		if !req.Priv.IsReduce() && e.Priv.Mutates() {
			plan = append(plan, core.Visible{Task: e.Task, Req: e.Req, Priv: e.Priv, Pts: inter})
		}
	}
	return deps, plan
}

// prune removes items whose recorded points are entirely covered by cover
// (they can no longer be visible).
func (pa *Painter) prune(items []item, cover index.Space) []item {
	if cover.IsEmpty() || pa.DisablePruning {
		return items
	}
	span := pa.opts.Spans.Begin("paint.prune", "analysis")
	defer span.End()
	out := items[:0]
	for _, it := range items {
		var pts index.Space
		if it.view != nil {
			pts = it.view.pts
		} else {
			pts = it.entry.Pts
		}
		pa.stats.OverlapTests++
		if cover.Covers(pts) {
			pa.stats.ItemsPruned++
			continue
		}
		out = append(out, it)
	}
	return out
}
