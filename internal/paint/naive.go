// Package paint implements the painter's algorithm for content-based
// coherence (paper §5): state is a history of privilege-region pairs in
// program order, and materializing a region replays the history from oldest
// to newest, overwriting on writes and folding on reductions.
//
// Two variants are provided. Naive is the direct transcription of Figure 7
// and serves as the executable specification. Painter is the optimized
// variant of §5.1: histories are sharded across the region tree so the
// history relevant to a region lies along its root path, with composite
// views snapshotting subtrees whose recorded tasks must precede a new
// launch, plus open/closed tracking, privilege summaries, and occlusion
// pruning.
package paint

import (
	"visibility/internal/core"
	"visibility/internal/field"
	"visibility/internal/privilege"
	"visibility/internal/region"
)

// Naive is the unoptimized painter's algorithm of Figure 7: one flat
// history per field, scanned in full for every launch.
type Naive struct {
	tree *region.Tree
	opts core.Options
	// hist is the per-field paint history, appended by every Analyze with
	// no lock: the analyzer runs on exactly one goroutine.
	//
	// confined to analyzer
	hist map[field.ID][]core.Entry
	// confined to analyzer
	stats core.Stats
}

// NewNaive creates a naive painter for tree.
func NewNaive(tree *region.Tree, opts core.Options) *Naive {
	return &Naive{tree: tree, opts: opts.Normalize(), hist: make(map[field.ID][]core.Entry)}
}

// Name implements core.Analyzer.
func (n *Naive) Name() string { return "paint-naive" }

// Stats implements core.Analyzer.
//
// confined to analyzer
func (n *Naive) Stats() *core.Stats { return &n.stats }

func (n *Naive) histFor(f field.ID) []core.Entry {
	h, ok := n.hist[f]
	if !ok {
		h = []core.Entry{core.SeedEntry(n.tree.Root.Space)}
		n.hist[f] = h
	}
	return h
}

// Analyze implements core.Analyzer.
//
// confined to analyzer
func (n *Naive) Analyze(t *Task) *core.Result {
	span := n.opts.Spans.Begin("paint-naive.analyze", "analysis")
	defer span.End()
	n.stats.Launches++
	var deps []int
	plans := make([][]core.Visible, len(t.Reqs))

	// materialize: replay the full history against each requirement.
	for ri, req := range t.Reqs {
		if req.Region.Space.IsEmpty() {
			// No points: every intersection below would be empty, so skip
			// the scan (and don't charge the cost model for it).
			continue
		}
		h := n.histFor(req.Field)
		var plan []core.Visible
		for _, e := range h {
			n.stats.EntriesScanned++
			n.stats.OverlapTests++
			inter := e.Pts.Intersect(req.Region.Space)
			if inter.IsEmpty() {
				continue
			}
			if privilege.Interferes(e.Priv, req.Priv) {
				deps = append(deps, e.Task)
				n.stats.DepsReported++
				if n.opts.Prov != nil && e.Task != core.InitialTask {
					n.opts.Prov.AddReason(core.EdgeReason{
						Src: e.Task, Dst: t.ID, Kind: core.ReasonRegion, Analyzer: "paint-naive",
						SrcReq: e.Req, DstReq: ri, Field: req.Field,
						SrcPriv: e.Priv, DstPriv: req.Priv, Overlap: inter.Bounds(), Trace: -1,
					})
				}
			}
			if !req.Priv.IsReduce() && e.Priv.Mutates() {
				plan = append(plan, core.Visible{Task: e.Task, Req: e.Req, Priv: e.Priv, Pts: inter})
			}
		}
		n.opts.Probe.Touch(n.opts.Owner(n.tree.Root.Space), int64(len(h)))
		plans[ri] = plan
	}

	// commit: append this task's operations to the history.
	for ri, req := range t.Reqs {
		if req.Region.Space.IsEmpty() {
			continue
		}
		n.hist[req.Field] = append(n.histFor(req.Field),
			core.Entry{Task: t.ID, Req: ri, Priv: req.Priv, Pts: req.Region.Space})
	}

	return &core.Result{Deps: core.DedupDeps(deps), Plans: plans}
}

// Task is re-exported for brevity inside this package.
type Task = core.Task
