package paint_test

import (
	"testing"

	"visibility/internal/core"
	"visibility/internal/paint"
	"visibility/internal/testutil"
)

// TestFigure8CompositeViews reproduces the composite-view evolution of
// Figure 8 on the Figure 5 task stream. Tasks t0-t2 record directly into
// the primary partition's subregion histories (no views); t3, the first
// ghost-partition reduction, forces a composite view of the written subtree
// per touched field; t4 and t5 use the same reduction operator and add no
// views; t6, the first write of the second iteration, snapshots the
// ghost subtree.
func TestFigure8CompositeViews(t *testing.T) {
	tree, p, g := testutil.GraphTree()
	s := core.NewStream(tree)
	tasks := testutil.Figure5(s, p, g)

	pa := paint.NewPainter(tree, core.Options{})
	// Cumulative composite views expected after each task. Each phase
	// boundary creates one view per field touched across the boundary
	// (up and down are symmetric, so counts double Figure 8's
	// one-field illustration).
	wantViews := []int64{0, 0, 0, 2, 2, 2, 4, 4, 4}
	for i, task := range tasks {
		pa.Analyze(task)
		if got := pa.Stats().ViewsCreated; got != wantViews[i] {
			t.Errorf("after t%d: ViewsCreated = %d, want %d", i, got, wantViews[i])
		}
	}

	// Further iterations of the loop keep creating exactly two views per
	// phase boundary (the prior phase's subtree) — no unbounded growth per
	// launch.
	before := pa.Stats().ViewsCreated
	for i := 0; i < 3; i++ {
		pa.Analyze(testutil.LaunchT2(s, p, g, i))
	}
	afterT2 := pa.Stats().ViewsCreated
	if afterT2-before != 2 {
		t.Errorf("second t2 phase created %d views, want 2", afterT2-before)
	}
}

// TestPainterOcclusionPruning verifies that a full write of a region
// discards that region's accumulated history items.
func TestPainterOcclusionPruning(t *testing.T) {
	tree, p, g := testutil.GraphTree()
	s := core.NewStream(tree)
	pa := paint.NewPainter(tree, core.Options{})

	// Three loop iterations: without pruning, each subregion's history
	// would accumulate one write per iteration.
	for iter := 0; iter < 3; iter++ {
		for i := 0; i < 3; i++ {
			pa.Analyze(testutil.LaunchT1(s, p, g, i))
		}
		for i := 0; i < 3; i++ {
			pa.Analyze(testutil.LaunchT2(s, p, g, i))
		}
	}
	if pa.Stats().ItemsPruned == 0 {
		t.Error("expected occlusion pruning over repeated writes")
	}
}

// TestNaiveAndPainterAgree runs both painter variants over the Figure 5
// stream and checks they report ordering-equivalent dependences and that
// the optimized variant scans far fewer entries on a long stream.
func TestNaiveAndPainterAgree(t *testing.T) {
	tree, p, g := testutil.GraphTree()
	s := core.NewStream(tree)
	na := paint.NewNaive(tree, core.Options{})
	pa := paint.NewPainter(tree, core.Options{})

	var naiveDeps, paintDeps [][]int
	for iter := 0; iter < 6; iter++ {
		for i := 0; i < 3; i++ {
			task := testutil.LaunchT1(s, p, g, i)
			naiveDeps = append(naiveDeps, na.Analyze(task).Deps)
			paintDeps = append(paintDeps, pa.Analyze(task).Deps)
		}
		for i := 0; i < 3; i++ {
			task := testutil.LaunchT2(s, p, g, i)
			naiveDeps = append(naiveDeps, na.Analyze(task).Deps)
			paintDeps = append(paintDeps, pa.Analyze(task).Deps)
		}
	}
	exact := core.ExactDeps(s.Tasks)
	if err := core.CheckSound(naiveDeps, exact); err != nil {
		t.Errorf("naive: %v", err)
	}
	if err := core.CheckSound(paintDeps, exact); err != nil {
		t.Errorf("painter: %v", err)
	}
	// The naive painter's scan cost grows quadratically with the stream;
	// the region-tree variant prunes occluded history and must scan fewer
	// entries.
	if pa.Stats().EntriesScanned >= na.Stats().EntriesScanned {
		t.Errorf("optimized painter scanned %d entries, naive %d — expected a reduction",
			pa.Stats().EntriesScanned, na.Stats().EntriesScanned)
	}
}
