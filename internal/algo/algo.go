// Package algo is the registry of coherence algorithms, mapping the names
// used by the experiment harness and CLI ("paint", "warnock", "raycast",
// and the reference "paint-naive") to constructors.
package algo

import (
	"fmt"
	"sort"

	"visibility/internal/core"
	"visibility/internal/paint"
	"visibility/internal/raycast"
	"visibility/internal/region"
	"visibility/internal/warnock"
)

// New is the constructor shape shared by all algorithms.
type New func(tree *region.Tree, opts core.Options) core.Analyzer

var registry = map[string]New{
	"paint-naive": func(t *region.Tree, o core.Options) core.Analyzer { return paint.NewNaive(t, o) },
	"paint":       func(t *region.Tree, o core.Options) core.Analyzer { return paint.NewPainter(t, o) },
	"warnock":     func(t *region.Tree, o core.Options) core.Analyzer { return warnock.New(t, o) },
	"raycast":     func(t *region.Tree, o core.Options) core.Analyzer { return raycast.New(t, o) },
}

// Lookup returns the constructor for name.
func Lookup(name string) (New, error) {
	n, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("algo: unknown algorithm %q (have %v)", name, Names())
	}
	return n, nil
}

// Names returns the registered algorithm names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
