package algo_test

import (
	"testing"

	"visibility/internal/algo"
	"visibility/internal/core"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/index"
	"visibility/internal/region"
)

func TestNamesAndLookup(t *testing.T) {
	names := algo.Names()
	want := []string{"paint", "paint-naive", "raycast", "warnock"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}

	fs := field.NewSpace()
	fs.Add("v")
	tree := region.NewTree("A", index.FromRect(geometry.R1(0, 9)), fs)
	for _, name := range names {
		newAn, err := algo.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		an := newAn(tree, core.Options{})
		if an == nil {
			t.Fatalf("constructor for %s returned nil", name)
		}
		// The reported name matches the registry key.
		if an.Name() != name {
			t.Errorf("analyzer %q reports name %q", name, an.Name())
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := algo.Lookup("zbuffer"); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}
