// Package cluster simulates a distributed-memory machine in virtual time,
// substituting for the Piz Daint system of the paper's evaluation (§8).
//
// The simulation is a deterministic virtual-time scheduler rather than a
// cycle-accurate model: each node serializes the work submitted to it in
// submission order (a work queue), messages between nodes cost latency plus
// size over bandwidth, and arbitrary dependence edges order work items
// across nodes. The coherence analyses run for real — their actual data
// structure operation counts and state-ownership touches are converted into
// work items and messages by the dist package — so sequential bottlenecks
// and data-structure blowups appear in the virtual makespan exactly where
// the real algorithms produce them.
package cluster

import "fmt"

// Time is virtual seconds.
type Time = float64

// Ref identifies a scheduled operation; its completion can gate later
// operations.
type Ref int

// NoRef is the absent operation reference.
const NoRef Ref = -1

// Config describes the simulated machine.
type Config struct {
	Nodes int
	// MessageLatency is the one-way wire latency per message in seconds.
	MessageLatency Time
	// Bandwidth is bytes per second on each link.
	Bandwidth float64
	// SendOverhead is CPU time a node spends to emit one message.
	SendOverhead Time
	// ReceiveOverhead is CPU time a node spends to absorb one message.
	ReceiveOverhead Time
}

// DefaultConfig returns a machine resembling a GPU-node supercomputer
// interconnect of the paper's era (microsecond-scale latency, tens of
// GB/s links).
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:           nodes,
		MessageLatency:  2e-6,
		Bandwidth:       1e10,
		SendOverhead:    4e-7,
		ReceiveOverhead: 4e-7,
	}
}

// proc is one simulated processor: a capacity-1 resource scheduling work
// into the earliest gap after each item's dependences are ready
// (backfilling). This models an out-of-order runtime: ready work is never
// blocked behind work that is still waiting on remote results, but a
// saturated processor still serializes everything offered to it.
type proc struct {
	intervals []ival // busy intervals: sorted, disjoint, coalesced
	busy      Time
}

type ival struct{ start, end Time }

// place reserves dur seconds at the earliest time >= ready with a free gap
// and returns the start time.
func (p *proc) place(ready, dur Time) Time {
	if dur <= 0 {
		return ready
	}
	// First interval that ends after ready: earlier intervals are
	// irrelevant.
	lo, hi := 0, len(p.intervals)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.intervals[mid].end <= ready {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	t := ready
	i := lo
	for ; i < len(p.intervals); i++ {
		iv := p.intervals[i]
		if t+dur <= iv.start {
			break // fits in the gap before interval i
		}
		if iv.end > t {
			t = iv.end
		}
	}
	p.busy += dur
	// Insert [t, t+dur) at position i, coalescing with neighbors.
	end := t + dur
	mergePrev := i > 0 && p.intervals[i-1].end == t
	mergeNext := i < len(p.intervals) && p.intervals[i].start == end
	switch {
	case mergePrev && mergeNext:
		p.intervals[i-1].end = p.intervals[i].end
		p.intervals = append(p.intervals[:i], p.intervals[i+1:]...)
	case mergePrev:
		p.intervals[i-1].end = end
	case mergeNext:
		p.intervals[i].start = t
	default:
		p.intervals = append(p.intervals, ival{})
		copy(p.intervals[i+1:], p.intervals[i:])
		p.intervals[i] = ival{start: t, end: end}
	}
	return t
}

// Machine is a virtual-time machine. Each node has two independent
// processors, as Legion nodes do: an execution processor (the GPU) that
// runs task kernels, and a utility processor that runs the dependence and
// coherence analyses and processes messages. It is not safe for concurrent
// use.
type Machine struct {
	cfg Config

	exec []proc
	util []proc
	done []Time // completion time per op

	messages int64
	bytes    int64
}

// New creates a machine.
func New(cfg Config) *Machine {
	if cfg.Nodes < 1 {
		panic("cluster: need at least one node")
	}
	return &Machine{
		cfg:  cfg,
		exec: make([]proc, cfg.Nodes),
		util: make([]proc, cfg.Nodes),
	}
}

// Nodes returns the node count.
func (m *Machine) Nodes() int { return m.cfg.Nodes }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

func (m *Machine) depsReady(deps []Ref) Time {
	var t Time
	for _, d := range deps {
		if d == NoRef {
			continue
		}
		if dt := m.done[d]; dt > t {
			t = dt
		}
	}
	return t
}

func (m *Machine) checkNode(node int) {
	if node < 0 || node >= m.cfg.Nodes {
		panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", node, m.cfg.Nodes))
	}
}

func (m *Machine) schedule(p *proc, dur Time, deps []Ref) Ref {
	start := p.place(m.depsReady(deps), dur)
	m.done = append(m.done, start+dur)
	return Ref(len(m.done) - 1)
}

// Exec schedules dur seconds of kernel work on node's execution processor,
// starting at the earliest free slot after all deps are complete.
func (m *Machine) Exec(node int, dur Time, deps ...Ref) Ref {
	m.checkNode(node)
	return m.schedule(&m.exec[node], dur, deps)
}

// Util schedules dur seconds of runtime (analysis) work on node's utility
// processor.
func (m *Machine) Util(node int, dur Time, deps ...Ref) Ref {
	m.checkNode(node)
	return m.schedule(&m.util[node], dur, deps)
}

// Message schedules a message of size bytes from one node to another,
// available for dependents at delivery time. Send and receive overheads
// occupy the respective utility processors; the wire time occupies
// neither. A message to self costs only the overheads.
func (m *Machine) Message(from, to int, bytes int64, deps ...Ref) Ref {
	m.checkNode(from)
	m.checkNode(to)
	sent := m.Util(from, m.cfg.SendOverhead, deps...)
	m.messages++
	m.bytes += bytes
	wire := Time(0)
	if from != to {
		wire = m.cfg.MessageLatency + float64(bytes)/m.cfg.Bandwidth
	}
	// Receive processing occupies the destination's utility processor
	// after the wire delivers.
	return m.schedule(&m.util[to], m.cfg.ReceiveOverhead, []Ref{m.afterTime(m.done[sent] + wire)})
}

// afterTime returns a pseudo-op completing at t.
func (m *Machine) afterTime(t Time) Ref {
	m.done = append(m.done, t)
	return Ref(len(m.done) - 1)
}

// AfterAll returns a zero-cost operation completing when all deps have.
func (m *Machine) AfterAll(deps ...Ref) Ref {
	m.done = append(m.done, m.depsReady(deps))
	return Ref(len(m.done) - 1)
}

// TimeOf returns the completion time of r.
func (m *Machine) TimeOf(r Ref) Time {
	if r == NoRef {
		return 0
	}
	return m.done[r]
}

// Makespan returns the completion time of the entire schedule so far.
func (m *Machine) Makespan() Time {
	var t Time
	for _, d := range m.done {
		if d > t {
			t = d
		}
	}
	return t
}

// NodeBusy returns the cumulative busy time of node's execution processor.
func (m *Machine) NodeBusy(node int) Time {
	m.checkNode(node)
	return m.exec[node].busy
}

// UtilBusy returns the cumulative busy time of node's utility processor.
func (m *Machine) UtilBusy(node int) Time {
	m.checkNode(node)
	return m.util[node].busy
}

// Messages returns the number of messages and total bytes sent.
func (m *Machine) Messages() (int64, int64) { return m.messages, m.bytes }

// Ops returns the number of scheduled operations.
func (m *Machine) Ops() int { return len(m.done) }
