// Package cluster simulates a distributed-memory machine in virtual time,
// substituting for the Piz Daint system of the paper's evaluation (§8).
//
// The simulation is a deterministic virtual-time scheduler rather than a
// cycle-accurate model: each node serializes the work submitted to it in
// submission order (a work queue), messages between nodes cost latency plus
// size over bandwidth, and arbitrary dependence edges order work items
// across nodes. The coherence analyses run for real — their actual data
// structure operation counts and state-ownership touches are converted into
// work items and messages by the dist package — so sequential bottlenecks
// and data-structure blowups appear in the virtual makespan exactly where
// the real algorithms produce them.
package cluster

import (
	"fmt"
	"math"

	"visibility/internal/fault"
	"visibility/internal/obs"
)

// Time is virtual seconds.
type Time = float64

// Ref identifies a scheduled operation; its completion can gate later
// operations.
type Ref int

// NoRef is the absent operation reference.
const NoRef Ref = -1

// Config describes the simulated machine.
type Config struct {
	Nodes int
	// MessageLatency is the one-way wire latency per message in seconds.
	MessageLatency Time
	// Bandwidth is bytes per second on each link.
	Bandwidth float64
	// SendOverhead is CPU time a node spends to emit one message.
	SendOverhead Time
	// ReceiveOverhead is CPU time a node spends to absorb one message.
	ReceiveOverhead Time
	// Metrics is the registry the machine publishes message counters
	// into; nil gets a private registry.
	Metrics *obs.Registry
	// Faults is the deterministic fault-injection plane for the transport
	// sites (message drop/delay/duplication/reorder). Nil disables them.
	Faults *fault.Injector
}

// DefaultConfig returns a machine resembling a GPU-node supercomputer
// interconnect of the paper's era (microsecond-scale latency, tens of
// GB/s links).
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:           nodes,
		MessageLatency:  2e-6,
		Bandwidth:       1e10,
		SendOverhead:    4e-7,
		ReceiveOverhead: 4e-7,
	}
}

// proc is one simulated processor: a capacity-1 resource scheduling work
// into the earliest gap after each item's dependences are ready
// (backfilling). This models an out-of-order runtime: ready work is never
// blocked behind work that is still waiting on remote results, but a
// saturated processor still serializes everything offered to it.
type proc struct {
	intervals []ival // busy intervals: sorted, disjoint, coalesced
	busy      Time
}

type ival struct{ start, end Time }

// place reserves dur seconds at the earliest time >= ready with a free gap
// and returns the start time.
func (p *proc) place(ready, dur Time) Time {
	if dur <= 0 {
		return ready
	}
	// First interval that ends after ready: earlier intervals are
	// irrelevant.
	lo, hi := 0, len(p.intervals)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.intervals[mid].end <= ready {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	t := ready
	i := lo
	for ; i < len(p.intervals); i++ {
		iv := p.intervals[i]
		if t+dur <= iv.start {
			break // fits in the gap before interval i
		}
		if iv.end > t {
			t = iv.end
		}
	}
	p.busy += dur
	// Insert [t, t+dur) at position i, coalescing with neighbors.
	end := t + dur
	mergePrev := i > 0 && p.intervals[i-1].end == t
	mergeNext := i < len(p.intervals) && p.intervals[i].start == end
	switch {
	case mergePrev && mergeNext:
		p.intervals[i-1].end = p.intervals[i].end
		p.intervals = append(p.intervals[:i], p.intervals[i+1:]...)
	case mergePrev:
		p.intervals[i-1].end = end
	case mergeNext:
		p.intervals[i].start = t
	default:
		p.intervals = append(p.intervals, ival{})
		copy(p.intervals[i+1:], p.intervals[i:])
		p.intervals[i] = ival{start: t, end: end}
	}
	return t
}

// Machine is a virtual-time machine. Each node has two independent
// processors, as Legion nodes do: an execution processor (the GPU) that
// runs task kernels, and a utility processor that runs the dependence and
// coherence analyses and processes messages. It is not safe for concurrent
// use.
type Machine struct {
	cfg Config

	// The simulation tables are advanced by each Exec/Util/Message call
	// with no lock: the machine is driven by one goroutine (the dist
	// driver, itself confined to the analysis goroutine).
	//
	// confined to cluster-sim
	exec []proc
	// confined to cluster-sim
	util []proc
	// done is the completion time per op.
	//
	// confined to cluster-sim
	done []Time

	// Message tallies live on the obs registry; Messages() reads them
	// back, so existing callers see the same numbers.
	metrics  *obs.Registry
	messages *obs.Counter
	bytes    *obs.Counter
	msgSize  *obs.Histogram

	// Per-site transport fault tallies (always registered; they stay zero
	// without an active fault plan).
	faultDropped   *obs.Counter
	faultDelayed   *obs.Counter
	faultDuped     *obs.Counter
	faultReordered *obs.Counter

	// rec, when non-nil, journals every scheduled slice and message for
	// trace export (EnableTracing).
	rec *traceRec
}

// traceRec is the virtual-time journal behind ExportTrace.
type traceRec struct {
	ops   []opRecord
	refOp map[Ref]int // scheduling Ref -> index into ops
	msgs  []msgRecord
}

// opRecord is one scheduled slice of processor time.
type opRecord struct {
	node  int
	util  bool // utility processor (vs execution)
	name  string
	start Time
	dur   Time
}

// msgRecord is one cross-node (or self) message: the refs of its send and
// receive slices.
type msgRecord struct {
	bytes      int64
	send, recv Ref
}

// New creates a machine.
func New(cfg Config) *Machine {
	if cfg.Nodes < 1 {
		panic("cluster: need at least one node")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Machine{
		cfg:      cfg,
		exec:     make([]proc, cfg.Nodes),
		util:     make([]proc, cfg.Nodes),
		metrics:  reg,
		messages: reg.NewCounter("cluster/messages"),
		bytes:    reg.NewCounter("cluster/message_bytes"),
		msgSize:  reg.NewHistogram("cluster/message_size", 64, 256, 1024, 4096, 16384, 65536, 1<<20),

		faultDropped:   reg.NewCounter("cluster/faults/dropped"),
		faultDelayed:   reg.NewCounter("cluster/faults/delayed"),
		faultDuped:     reg.NewCounter("cluster/faults/duplicated"),
		faultReordered: reg.NewCounter("cluster/faults/reordered"),
	}
}

// Metrics returns the machine's metrics registry.
func (m *Machine) Metrics() *obs.Registry { return m.metrics }

// EnableTracing starts journaling every scheduled slice and message for
// ExportTrace. Enable it before scheduling anything; work submitted
// earlier is absent from the export.
func (m *Machine) EnableTracing() {
	if m.rec == nil {
		m.rec = &traceRec{refOp: make(map[Ref]int)}
	}
}

// Nodes returns the node count.
func (m *Machine) Nodes() int { return m.cfg.Nodes }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

func (m *Machine) depsReady(deps []Ref) Time {
	var t Time
	for _, d := range deps {
		if d == NoRef {
			continue
		}
		if dt := m.done[d]; dt > t {
			t = dt
		}
	}
	return t
}

func (m *Machine) checkNode(node int) {
	if node < 0 || node >= m.cfg.Nodes {
		panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", node, m.cfg.Nodes))
	}
}

func (m *Machine) schedule(node int, util bool, name string, dur Time, deps []Ref) Ref {
	p := &m.exec[node]
	if util {
		p = &m.util[node]
	}
	start := p.place(m.depsReady(deps), dur)
	m.done = append(m.done, start+dur)
	ref := Ref(len(m.done) - 1)
	if m.rec != nil {
		m.rec.refOp[ref] = len(m.rec.ops)
		m.rec.ops = append(m.rec.ops, opRecord{node: node, util: util, name: name, start: start, dur: dur})
	}
	return ref
}

// Exec schedules dur seconds of kernel work on node's execution processor,
// starting at the earliest free slot after all deps are complete.
//
// confined to cluster-sim
func (m *Machine) Exec(node int, dur Time, deps ...Ref) Ref {
	return m.ExecNamed(node, "exec", dur, deps...)
}

// ExecNamed is Exec with a label for the exported trace.
//
// confined to cluster-sim
func (m *Machine) ExecNamed(node int, name string, dur Time, deps ...Ref) Ref {
	m.checkNode(node)
	return m.schedule(node, false, name, dur, deps)
}

// Util schedules dur seconds of runtime (analysis) work on node's utility
// processor.
//
// confined to cluster-sim
func (m *Machine) Util(node int, dur Time, deps ...Ref) Ref {
	return m.UtilNamed(node, "util", dur, deps...)
}

// UtilNamed is Util with a label for the exported trace.
//
// confined to cluster-sim
func (m *Machine) UtilNamed(node int, name string, dur Time, deps ...Ref) Ref {
	m.checkNode(node)
	return m.schedule(node, true, name, dur, deps)
}

// Message schedules a message of size bytes from one node to another,
// available for dependents at delivery time. Send and receive overheads
// occupy the respective utility processors; the wire time occupies
// neither. A message to self costs only the overheads.
//
// confined to cluster-sim
func (m *Machine) Message(from, to int, bytes int64, deps ...Ref) Ref {
	m.checkNode(from)
	m.checkNode(to)
	sent := m.UtilNamed(from, "send", m.cfg.SendOverhead, deps...)
	m.messages.Inc()
	m.bytes.Add(bytes)
	m.msgSize.Observe(bytes)
	wire := Time(0)
	if from != to {
		wire = m.cfg.MessageLatency + float64(bytes)/m.cfg.Bandwidth
	}
	// Fault plane. Sites are evaluated in a fixed order with the
	// destination node as argument; each draws from its own stream, so a
	// plan's transport faults are a function of the message sequence alone.
	deliverAfter := sent
	extra := Time(0)
	dup := false
	if f := m.cfg.Faults; f != nil {
		if fired, v := f.FireValue(fault.MsgDrop, int64(to)); fired {
			// A lost message cannot simply vanish — dependents would never
			// become ready — so model the loss as the runtime would resolve
			// it: the sender retransmits after a timeout, paying a second
			// send overhead, and delivery slips by the whole round.
			m.faultDropped.Inc()
			timeout := m.cfg.MessageLatency * Time(8+v%56)
			deliverAfter = m.UtilNamed(from, "resend", m.cfg.SendOverhead, m.afterTime(m.done[sent]+timeout))
		}
		if fired, v := f.FireValue(fault.MsgDelay, int64(to)); fired {
			m.faultDelayed.Inc()
			extra += m.cfg.MessageLatency * Time(1+v%16)
		}
		if fired, v := f.FireValue(fault.MsgReorder, int64(to)); fired {
			// Held long enough that later traffic on the same link overtakes.
			m.faultReordered.Inc()
			extra += m.cfg.MessageLatency * Time(16+v%64)
		}
		dup, _ = f.FireValue(fault.MsgDup, int64(to))
	}
	// Receive processing occupies the destination's utility processor
	// after the wire delivers.
	recv := m.schedule(to, true, "recv", m.cfg.ReceiveOverhead, []Ref{m.afterTime(m.done[deliverAfter] + wire + extra)})
	if dup {
		// The duplicate receive burns destination utility time but gates
		// nothing: duplicated runtime messages are idempotent.
		m.faultDuped.Inc()
		m.schedule(to, true, "recv-dup", m.cfg.ReceiveOverhead, []Ref{m.afterTime(m.done[deliverAfter] + wire + extra)})
	}
	if m.rec != nil {
		m.rec.msgs = append(m.rec.msgs, msgRecord{bytes: bytes, send: sent, recv: recv})
	}
	return recv
}

// afterTime returns a pseudo-op completing at t.
func (m *Machine) afterTime(t Time) Ref {
	m.done = append(m.done, t)
	return Ref(len(m.done) - 1)
}

// AfterAll returns a zero-cost operation completing when all deps have.
//
// confined to cluster-sim
func (m *Machine) AfterAll(deps ...Ref) Ref {
	m.done = append(m.done, m.depsReady(deps))
	return Ref(len(m.done) - 1)
}

// TimeOf returns the completion time of r.
//
// confined to cluster-sim
func (m *Machine) TimeOf(r Ref) Time {
	if r == NoRef {
		return 0
	}
	return m.done[r]
}

// Makespan returns the completion time of the entire schedule so far.
//
// confined to cluster-sim
func (m *Machine) Makespan() Time {
	var t Time
	for _, d := range m.done {
		if d > t {
			t = d
		}
	}
	return t
}

// NodeBusy returns the cumulative busy time of node's execution processor.
//
// confined to cluster-sim
func (m *Machine) NodeBusy(node int) Time {
	m.checkNode(node)
	return m.exec[node].busy
}

// UtilBusy returns the cumulative busy time of node's utility processor.
//
// confined to cluster-sim
func (m *Machine) UtilBusy(node int) Time {
	m.checkNode(node)
	return m.util[node].busy
}

// Messages returns the number of messages and total bytes sent (thin
// reads over the registry counters).
func (m *Machine) Messages() (int64, int64) { return m.messages.Load(), m.bytes.Load() }

// Ops returns the number of scheduled operations.
func (m *Machine) Ops() int { return len(m.done) }

// virtualNs converts virtual seconds to integer nanoseconds, the
// timestamp unit of the trace exporter. Rounding through math.Round makes
// the mapping deterministic for identical schedules.
func virtualNs(t Time) int64 { return int64(math.Round(t * 1e9)) }

// Exported thread ids within each node's process: execution processor
// (the GPU) and utility processor (analysis + message handling).
const (
	ExecTID = 0
	UtilTID = 1
)

// ExportTrace emits the journaled virtual-time schedule as Chrome
// trace events: one process per simulated node with an exec and a util
// track, every scheduled slice as a duration event, and every message as
// a flow arrow from its send slice to its receive slice. EnableTracing
// must have been called before the work was scheduled; otherwise the
// export is empty.
func (m *Machine) ExportTrace(tw *obs.TraceWriter) {
	for n := 0; n < m.cfg.Nodes; n++ {
		tw.ProcessName(n, fmt.Sprintf("node %d", n))
		tw.ThreadName(n, ExecTID, "exec (gpu)")
		tw.ThreadName(n, UtilTID, "util (analysis)")
	}
	if m.rec == nil {
		return
	}
	for _, op := range m.rec.ops {
		tid, cat := ExecTID, "task"
		if op.util {
			tid, cat = UtilTID, "runtime"
		}
		tw.Duration(op.node, tid, op.name, cat, virtualNs(op.start), virtualNs(op.dur), nil)
	}
	for i, msg := range m.rec.msgs {
		id := int64(i + 1)
		send := m.rec.ops[m.rec.refOp[msg.send]]
		recv := m.rec.ops[m.rec.refOp[msg.recv]]
		name := fmt.Sprintf("msg %dB", msg.bytes)
		tw.FlowStart(id, send.node, UtilTID, name, "message", virtualNs(send.start))
		tw.FlowEnd(id, recv.node, UtilTID, name, "message", virtualNs(recv.start))
	}
}
