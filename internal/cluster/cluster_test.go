package cluster

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b Time) bool { return math.Abs(a-b) < 1e-12 }

func cfg(nodes int) Config {
	return Config{Nodes: nodes, MessageLatency: 1e-6, Bandwidth: 1e9, SendOverhead: 1e-7, ReceiveOverhead: 2e-7}
}

func TestExecSerializesPerNode(t *testing.T) {
	m := New(cfg(2))
	a := m.Exec(0, 1.0)
	b := m.Exec(0, 2.0)
	c := m.Exec(1, 0.5)
	if !approx(m.TimeOf(a), 1.0) {
		t.Errorf("a done at %v", m.TimeOf(a))
	}
	if !approx(m.TimeOf(b), 3.0) {
		t.Errorf("b should queue behind a: %v", m.TimeOf(b))
	}
	if !approx(m.TimeOf(c), 0.5) {
		t.Errorf("c on another node should run immediately: %v", m.TimeOf(c))
	}
	if !approx(m.Makespan(), 3.0) {
		t.Errorf("makespan = %v", m.Makespan())
	}
	if !approx(m.NodeBusy(0), 3.0) || !approx(m.NodeBusy(1), 0.5) {
		t.Error("busy accounting wrong")
	}
}

func TestDependenciesDelayStart(t *testing.T) {
	m := New(cfg(2))
	a := m.Exec(0, 1.0)
	b := m.Exec(1, 1.0, a) // waits for a
	if !approx(m.TimeOf(b), 2.0) {
		t.Errorf("b = %v, want 2.0", m.TimeOf(b))
	}
	// Backfill: independent work slots into the gap before b.
	c := m.Exec(1, 1.0)
	if !approx(m.TimeOf(c), 1.0) {
		t.Errorf("c = %v, want 1.0 (backfilled)", m.TimeOf(c))
	}
	// No gap remains: the next item queues after b.
	d := m.Exec(1, 1.0)
	if !approx(m.TimeOf(d), 3.0) {
		t.Errorf("d = %v, want 3.0", m.TimeOf(d))
	}
	// An item too large for the remaining gap goes to the end.
	e := m.Exec(1, 0.5, a) // ready at 1.0, but [1,3] is busy
	if !approx(m.TimeOf(e), 3.5) {
		t.Errorf("e = %v, want 3.5", m.TimeOf(e))
	}
}

func TestBackfillSmallGap(t *testing.T) {
	m := New(cfg(1))
	gate := m.Exec(0, 0) // completes at 0
	long := m.Exec(0, 2.0, m.afterTime(1.0))
	_ = gate
	if !approx(m.TimeOf(long), 3.0) {
		t.Fatalf("long = %v", m.TimeOf(long))
	}
	small := m.Exec(0, 0.5)
	if !approx(m.TimeOf(small), 0.5) {
		t.Errorf("small = %v, want 0.5 (fits the [0,1) gap)", m.TimeOf(small))
	}
	second := m.Exec(0, 0.75)
	if !approx(m.TimeOf(second), 3.75) {
		t.Errorf("second = %v, want 3.75 (gap too small)", m.TimeOf(second))
	}
}

func TestMessageTiming(t *testing.T) {
	m := New(cfg(2))
	r := m.Message(0, 1, 1000)
	// send overhead 1e-7, wire 1e-6 + 1000/1e9 = 1e-6+1e-6, recv 2e-7
	want := 1e-7 + 1e-6 + 1e-6 + 2e-7
	if !approx(m.TimeOf(r), want) {
		t.Errorf("message delivered at %v, want %v", m.TimeOf(r), want)
	}
	msgs, bytes := m.Messages()
	if msgs != 1 || bytes != 1000 {
		t.Errorf("messages = %d, bytes = %d", msgs, bytes)
	}
}

func TestMessageToSelfSkipsWire(t *testing.T) {
	m := New(cfg(2))
	r := m.Message(1, 1, 1<<20)
	want := 1e-7 + 2e-7
	if !approx(m.TimeOf(r), want) {
		t.Errorf("self message at %v, want %v", m.TimeOf(r), want)
	}
}

func TestReceiveQueuesOnBusyUtility(t *testing.T) {
	m := New(cfg(2))
	m.Util(1, 5.0) // node 1's utility processor busy until t=5
	r := m.Message(0, 1, 0)
	// Arrival is early, but receive processing waits for the utility
	// processor.
	if !approx(m.TimeOf(r), 5.0+2e-7) {
		t.Errorf("receive completed at %v, want %v", m.TimeOf(r), 5.0+2e-7)
	}
}

func TestExecAndUtilAreIndependent(t *testing.T) {
	// Kernel work on the execution processor does not delay analysis work
	// on the utility processor of the same node, and vice versa.
	m := New(cfg(1))
	m.Exec(0, 10.0)
	u := m.Util(0, 1.0)
	if !approx(m.TimeOf(u), 1.0) {
		t.Errorf("util work delayed by exec work: %v", m.TimeOf(u))
	}
	e := m.Exec(0, 1.0)
	if !approx(m.TimeOf(e), 11.0) {
		t.Errorf("exec should queue behind exec: %v", m.TimeOf(e))
	}
	if !approx(m.UtilBusy(0), 1.0) || !approx(m.NodeBusy(0), 11.0) {
		t.Error("busy accounting wrong")
	}
}

func TestAfterAll(t *testing.T) {
	m := New(cfg(2))
	a := m.Exec(0, 1.0)
	b := m.Exec(1, 3.0)
	j := m.AfterAll(a, b)
	if !approx(m.TimeOf(j), 3.0) {
		t.Errorf("AfterAll = %v, want 3.0", m.TimeOf(j))
	}
	if !approx(m.TimeOf(m.AfterAll()), 0) {
		t.Error("empty AfterAll should complete at 0")
	}
	if !approx(m.TimeOf(NoRef), 0) {
		t.Error("NoRef completes at 0")
	}
}

func TestSequentialBottleneckEmerges(t *testing.T) {
	// N independent work items funneled through node 0 take N times as
	// long as the same items spread over N nodes — the non-DCR funnel.
	n := 16
	funnel := New(cfg(n))
	spread := New(cfg(n))
	for i := 0; i < n; i++ {
		funnel.Exec(0, 1.0)
		spread.Exec(i, 1.0)
	}
	if !approx(funnel.Makespan(), float64(n)) {
		t.Errorf("funnel makespan = %v", funnel.Makespan())
	}
	if !approx(spread.Makespan(), 1.0) {
		t.Errorf("spread makespan = %v", spread.Makespan())
	}
}

func TestPanicsOnBadNode(t *testing.T) {
	m := New(cfg(1))
	for _, f := range []func(){
		func() { m.Exec(1, 1) },
		func() { m.Exec(-1, 1) },
		func() { m.Message(0, 3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNewPanicsWithoutNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{Nodes: 0})
}

// TestPlacePropertyNoOverlap schedules many random items and verifies the
// reported completion times are consistent with a capacity-1 processor:
// total busy time never exceeds the makespan and every op takes exactly
// its duration after its dependences.
func TestPlacePropertyNoOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := New(cfg(1))
	type op struct {
		ref  Ref
		dur  Time
		deps []Ref
	}
	var ops []op
	for i := 0; i < 300; i++ {
		var deps []Ref
		for k := 0; k < rng.Intn(3) && len(ops) > 0; k++ {
			deps = append(deps, ops[rng.Intn(len(ops))].ref)
		}
		dur := Time(rng.Intn(10)) / 10
		ref := m.Exec(0, dur, deps...)
		ops = append(ops, op{ref: ref, dur: dur, deps: deps})
	}
	if m.NodeBusy(0) > m.Makespan()+1e-9 {
		t.Fatalf("busy %v exceeds makespan %v on one processor", m.NodeBusy(0), m.Makespan())
	}
	for _, o := range ops {
		end := m.TimeOf(o.ref)
		for _, d := range o.deps {
			if m.TimeOf(d) > end-o.dur+1e-9 {
				t.Fatalf("op finished at %v but dep finished at %v (dur %v)", end, m.TimeOf(d), o.dur)
			}
		}
	}
}

// TestZeroDurationOpsAreFree verifies zero-duration work never occupies
// the processor.
func TestZeroDurationOpsAreFree(t *testing.T) {
	m := New(cfg(1))
	for i := 0; i < 100; i++ {
		m.Exec(0, 0)
	}
	if m.Makespan() != 0 || m.NodeBusy(0) != 0 {
		t.Errorf("zero-duration ops consumed time: makespan=%v busy=%v", m.Makespan(), m.NodeBusy(0))
	}
}
