// Package dist drives a coherence analyzer over a simulated
// distributed-memory machine (paper §8): it decides where each launch's
// dependence/coherence analysis executes, converts the analyzer's
// state-ownership touches into simulated work and messages, routes the
// materialization plan's data movement over the network, and schedules
// task execution behind its dependences.
//
// Without dynamic control replication (DCR), every launch is analyzed on
// node 0 — the single top-level task of the implicitly-parallel program —
// which becomes a sequential bottleneck at scale. With DCR, launches are
// analyzed on the shard (node) that will execute them, distributing the
// analysis exactly as Legion's control replication does (§8, [4]).
package dist

import (
	"fmt"

	"visibility/internal/bvh"
	"visibility/internal/cluster"
	"visibility/internal/core"
	"visibility/internal/fault"
	"visibility/internal/geometry"
	"visibility/internal/index"
	"visibility/internal/obs"
	flightrec "visibility/internal/obs/recorder"
	"visibility/internal/region"
)

// futureBytes is the wire size of one future value.
const futureBytes = 64

// Config tunes the analysis cost model.
type Config struct {
	// DCR shards analysis across nodes when true; otherwise all analysis
	// funnels through node 0.
	DCR bool
	// OpCost is seconds of CPU per analysis op unit (one history entry
	// scan, overlap test, or state mutation as reported by probes).
	OpCost cluster.Time
	// VisitCost is seconds per traversal step through replicated
	// acceleration structures — pointer chases, far cheaper than OpCost.
	VisitCost cluster.Time
	// LaunchOverhead is the fixed cost of processing one task launch on
	// its analysis node.
	LaunchOverhead cluster.Time
	// ControlBytes is the size of a control message touching remote
	// analysis state.
	ControlBytes int64
	// BytesPerPoint scales a materialization plan entry's index-space
	// volume to bytes moved. Apps using scaled-down index spaces set this
	// to (model bytes per region) / (index-space volume).
	BytesPerPoint float64
	// Metrics is the registry the driver and its analyzer publish into;
	// nil gets a private registry (reachable via Driver.Metrics).
	Metrics *obs.Registry
	// Spans, when non-nil, receives wall-clock begin/end records for the
	// phases of each per-launch analysis.
	Spans *obs.Buffer
	// Recorder, when non-nil, journals coarse analyzer events (set
	// splits/coalesces) into the flight-recorder ring.
	Recorder *flightrec.Recorder
	// Faults, when non-nil, arms the analyzer-side fault-injection sites
	// (forced equivalence-set splits and migrations) for the driven
	// analysis; transport faults are armed on the Machine's own Config.
	Faults *fault.Injector
	// Prov, when non-nil, collects dependence provenance (EdgeReasons)
	// from the driven analyzer alongside the simulated execution.
	Prov *core.Provenance
}

// DefaultConfig returns cost-model constants calibrated so that a
// single-node launch costs O(10µs) of analysis, resembling untraced Legion.
func DefaultConfig(dcr bool) Config {
	return Config{
		DCR:            dcr,
		OpCost:         1.2e-6,
		VisitCost:      5e-8,
		LaunchOverhead: 8e-6,
		ControlBytes:   256,
		BytesPerPoint:  8,
	}
}

// Driver runs launches through an analyzer onto a machine.
type Driver struct {
	m *cluster.Machine
	// an is the driven dependence analyzer; Launch runs it in program
	// order on the driving goroutine (§3.2).
	//
	// confined to analyzer
	an  core.Analyzer
	cfg Config

	// confined to analyzer
	probe *recorder
	// confined to analyzer
	taskDone map[int]cluster.Ref
	// confined to analyzer
	taskNode map[int]int
	owner    core.OwnerFunc
	// confined to analyzer
	all []cluster.Ref

	metrics  *obs.Registry
	localOps *obs.Histogram // per-launch analysis ops on the analyzing node
	remotes  *obs.Counter   // remote-owner round trips issued

	// lastAnalysis orders each shard's analysis in program order: a
	// dynamic dependence analysis observes launches sequentially (§3.2).
	//
	// confined to analyzer
	lastAnalysis map[int]cluster.Ref
}

// visitOwner marks traversal work (Probe.Visit) in the touch sequence.
const visitOwner = -2

// recorder implements core.Probe, buffering the touches of one Analyze.
type recorder struct {
	touches      []touch
	analysisNode int
	cached       map[fetchKey]bool
}

type touch struct {
	owner int
	ops   int64
}

func (r *recorder) add(owner int, ops int64) {
	// Coalesce consecutive touches to the same owner: they are one visit.
	if n := len(r.touches); n > 0 && r.touches[n-1].owner == owner {
		r.touches[n-1].ops += ops
		return
	}
	r.touches = append(r.touches, touch{owner, ops})
}

// Touch implements core.Probe.
func (r *recorder) Touch(owner int, ops int64) { r.add(owner, ops) }

// Visit implements core.Probe.
func (r *recorder) Visit(ops int64) { r.add(visitOwner, ops) }

// Fetch implements core.Probe. The driver resolves whether the analyzing
// node has already cached this token: a first fetch is a remote touch that
// transfers the state, a repeat is a local visit.
func (r *recorder) Fetch(owner int, token int64, ops int64) {
	key := fetchKey{node: r.analysisNode, token: token}
	if r.cached[key] {
		r.add(visitOwner, 1)
		return
	}
	r.cached[key] = true
	if owner == r.analysisNode || owner == core.LocalOwner {
		r.add(r.analysisNode, ops)
		return
	}
	r.add(owner, ops)
}

type fetchKey struct {
	node  int
	token int64
}

// NewAnalyzerFunc constructs an analyzer given instrumentation options;
// each algorithm's New matches it.
type NewAnalyzerFunc func(tree *region.Tree, opts core.Options) core.Analyzer

// New creates a Driver: it builds the analyzer with a probe attached and
// with state ownership assigned by owner. The analyzer's operation
// counters are published on the driver's metrics registry (cfg.Metrics,
// or a private one) under "analyzer/".
//
// confined to analyzer
func New(m *cluster.Machine, tree *region.Tree, newAnalyzer NewAnalyzerFunc, owner core.OwnerFunc, cfg Config) *Driver {
	d := &Driver{
		m:            m,
		cfg:          cfg,
		probe:        &recorder{cached: make(map[fetchKey]bool)},
		taskDone:     make(map[int]cluster.Ref),
		taskNode:     make(map[int]int),
		owner:        owner,
		lastAnalysis: make(map[int]cluster.Ref),
	}
	opts := core.Options{Probe: d.probe, Owner: owner, Metrics: cfg.Metrics, Spans: cfg.Spans, Recorder: cfg.Recorder, Faults: cfg.Faults, Prov: cfg.Prov}.Normalize()
	d.metrics = opts.Metrics
	d.localOps = d.metrics.NewHistogram("dist/launch_local_ops", 4, 16, 64, 256, 1024, 4096)
	d.remotes = d.metrics.NewCounter("dist/remote_roundtrips")
	d.an = newAnalyzer(tree, opts)
	d.an.Stats().RegisterMetrics(d.metrics, "analyzer")
	return d
}

// Analyzer returns the driven analyzer (for stats inspection).
//
// confined to analyzer
func (d *Driver) Analyzer() core.Analyzer { return d.an }

// Metrics returns the driver's metrics registry: the analyzer's counters,
// the machine's message tallies when it shares the registry, and the
// driver's own launch-cost instruments.
func (d *Driver) Metrics() *obs.Registry { return d.metrics }

// Launch analyzes t and schedules its execution on execNode for dur
// seconds of virtual time. It returns the completion reference.
//
// confined to analyzer
func (d *Driver) Launch(t *core.Task, execNode int, dur cluster.Time) cluster.Ref {
	analysisNode := 0
	if d.cfg.DCR {
		analysisNode = execNode
	}

	d.probe.touches = d.probe.touches[:0]
	d.probe.analysisNode = analysisNode
	res := d.an.Analyze(t)

	// Analysis: fixed launch overhead, then the recorded state touches in
	// order, all on utility processors. Remote-owned state costs a control
	// round trip and queues its work on the owner's utility processor.
	prev, ok := d.lastAnalysis[analysisNode]
	if !ok {
		prev = cluster.NoRef
	}
	// Local work (launch overhead, local state, traversal) runs serially;
	// remote-owned state is touched by one batched request per owner, all
	// issued in parallel after the local work, as Legion's analysis
	// broadcasts requests and gathers responses.
	var local cluster.Time = d.cfg.LaunchOverhead
	var localUnits int64
	remoteOps := make(map[int]int64)
	var remoteOrder []int
	for _, tc := range d.probe.touches {
		switch {
		case tc.owner == visitOwner:
			local += cluster.Time(tc.ops) * d.cfg.VisitCost
			localUnits += tc.ops
		case tc.owner == core.LocalOwner || tc.owner == analysisNode:
			local += cluster.Time(tc.ops) * d.cfg.OpCost
			localUnits += tc.ops
		default:
			if _, seen := remoteOps[tc.owner]; !seen {
				remoteOrder = append(remoteOrder, tc.owner)
			}
			remoteOps[tc.owner] += tc.ops
		}
	}
	d.localOps.Observe(localUnits)
	d.remotes.Add(int64(len(remoteOrder)))
	chain := d.m.UtilNamed(analysisNode, "analyze "+t.String(), local, prev)
	if len(remoteOrder) > 0 {
		gather := make([]cluster.Ref, 0, len(remoteOrder))
		for _, owner := range remoteOrder {
			req := d.m.Message(analysisNode, owner, d.cfg.ControlBytes, chain)
			remote := d.m.UtilNamed(owner, fmt.Sprintf("touch %s", t), cluster.Time(remoteOps[owner])*d.cfg.OpCost, req)
			gather = append(gather, d.m.Message(owner, analysisNode, d.cfg.ControlBytes, remote))
		}
		chain = d.m.AfterAll(gather...)
	}
	d.lastAnalysis[analysisNode] = chain

	// Gather preconditions: completion of dependences, delivery of the
	// data each plan entry materializes, and any consumed futures (small
	// messages from their producers' nodes).
	pres := []cluster.Ref{chain}
	for _, dep := range res.Deps {
		if r, ok := d.taskDone[dep]; ok {
			pres = append(pres, r)
		}
	}
	for _, fd := range t.FutureDeps {
		r, ok := d.taskDone[fd]
		if !ok {
			continue
		}
		src := d.taskNode[fd]
		if src == execNode {
			pres = append(pres, r)
			continue
		}
		pres = append(pres, d.m.Message(src, execNode, futureBytes, r))
	}
	for _, plan := range res.Plans {
		for _, v := range plan {
			src, after := d.producer(v)
			if src == execNode {
				continue
			}
			bytes := int64(float64(v.Pts.Volume()) * d.cfg.BytesPerPoint)
			pres = append(pres, d.m.Message(src, execNode, bytes, after))
		}
	}

	done := d.m.ExecNamed(execNode, t.String(), dur, pres...)
	d.taskDone[t.ID] = done
	d.taskNode[t.ID] = execNode
	d.all = append(d.all, done)
	return done
}

// producer returns the node holding a plan entry's data and the reference
// after which it is available.
func (d *Driver) producer(v core.Visible) (int, cluster.Ref) {
	if v.Task == core.InitialTask {
		return d.owner(v.Pts), cluster.NoRef
	}
	return d.taskNode[v.Task], d.taskDone[v.Task]
}

// Barrier returns the virtual time at which every launch so far has
// completed — an execution fence, used to delimit the initialization and
// steady-state measurement phases.
//
// confined to analyzer
func (d *Driver) Barrier() cluster.Time {
	return d.m.TimeOf(d.m.AfterAll(d.all...))
}

// OwnerByPartition returns an OwnerFunc assigning state to the node owning
// the first subregion of p it overlaps (subregion index modulo the machine
// size), with node 0 owning anything outside p — the usual
// "analysis state lives with the primary partition" placement.
func OwnerByPartition(p *region.Partition, nodes int) core.OwnerFunc {
	var inputs []bvh.Input
	for i, sub := range p.Subregions {
		for _, r := range sub.Space.Rects() {
			inputs = append(inputs, bvh.Input{Box: r, ID: i})
		}
	}
	tree := bvh.Build(inputs)
	subs := p.Subregions
	return func(sp index.Space) int {
		if sp.IsEmpty() {
			return 0
		}
		// Use the first point of the space to pick a unique owner.
		lo := sp.Bounds().Lo
		probe := geometry.PointRect(lo, sp.Dim())
		best := -1
		tree.Query(probe, func(i int) {
			if subs[i].Space.Contains(lo) && (best == -1 || i < best) {
				best = i
			}
		})
		if best == -1 {
			return 0
		}
		return best % nodes
	}
}
