package dist

import (
	"math/rand"

	"visibility/internal/core"
)

// Mapper decides which node executes a task, given the application's
// owner hint (the node owning the task's primary piece) — the decision
// Legion delegates to its mapper interface. Mapping does not affect
// correctness, only where data must move.
type Mapper interface {
	Place(t *core.Task, ownerHint, nodes int) int
}

// OwnerMapper follows the owner-computes hint: tasks run where their
// primary data lives. This is the mapping the paper's experiments use.
type OwnerMapper struct{}

// Place implements Mapper.
func (OwnerMapper) Place(_ *core.Task, ownerHint, nodes int) int { return ownerHint % nodes }

// RoundRobinMapper ignores locality and deals tasks out in order — a
// load-balanced but locality-oblivious mapping.
type RoundRobinMapper struct{ next int }

// Place implements Mapper.
func (m *RoundRobinMapper) Place(_ *core.Task, _, nodes int) int {
	n := m.next % nodes
	m.next++
	return n
}

// RandomMapper places tasks uniformly at random (deterministically
// seeded) — the locality worst case.
type RandomMapper struct{ rng *rand.Rand }

// NewRandomMapper creates a deterministic random mapper.
func NewRandomMapper(seed int64) *RandomMapper {
	return &RandomMapper{rng: rand.New(rand.NewSource(seed))}
}

// Place implements Mapper.
func (m *RandomMapper) Place(_ *core.Task, _, nodes int) int { return m.rng.Intn(nodes) }
