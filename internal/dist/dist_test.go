package dist_test

import (
	"testing"

	"visibility/internal/algo"
	"visibility/internal/cluster"
	"visibility/internal/core"
	"visibility/internal/dist"
	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/index"
	"visibility/internal/privilege"
	"visibility/internal/region"
)

func lineSetup(nodes int) (*region.Tree, *region.Partition) {
	fs := field.NewSpace()
	fs.Add("v")
	n := int64(nodes)
	tree := region.NewTree("A", index.FromRect(geometry.R1(0, 100*n-1)), fs)
	pieces := make([]index.Space, nodes)
	for i := int64(0); i < n; i++ {
		pieces[i] = index.FromRect(geometry.R1(i*100, (i+1)*100-1))
	}
	return tree, tree.Root.Partition("P", pieces)
}

func newDriver(t *testing.T, nodes int, dcr bool) (*dist.Driver, *cluster.Machine, *region.Tree, *region.Partition) {
	t.Helper()
	tree, p := lineSetup(nodes)
	m := cluster.New(cluster.DefaultConfig(nodes))
	newAn, err := algo.Lookup("raycast")
	if err != nil {
		t.Fatal(err)
	}
	owner := dist.OwnerByPartition(p, nodes)
	d := dist.New(m, tree, dist.NewAnalyzerFunc(newAn), owner, dist.DefaultConfig(dcr))
	return d, m, tree, p
}

func TestIndependentTasksOverlapInTime(t *testing.T) {
	d, m, tree, p := newDriver(t, 4, true)
	s := core.NewStream(tree)
	for i := 0; i < 4; i++ {
		d.Launch(s.Launch("w", core.Req{Region: p.Subregions[i], Field: 0, Priv: privilege.Writes()}), i, 1.0)
	}
	total := d.Barrier()
	// Four 1-second tasks on four nodes: far less than 4 seconds.
	if total > 1.5 {
		t.Errorf("independent tasks took %v, expected ~1s", total)
	}
	if m.NodeBusy(0) != 1.0 || m.NodeBusy(3) != 1.0 {
		t.Error("each node should have executed one task")
	}
}

func TestDependentTasksSerialize(t *testing.T) {
	d, _, tree, p := newDriver(t, 2, true)
	s := core.NewStream(tree)
	d.Launch(s.Launch("w", core.Req{Region: p.Subregions[0], Field: 0, Priv: privilege.Writes()}), 0, 1.0)
	// The read on node 1 needs the write's data: must finish after t=2.
	d.Launch(s.Launch("r", core.Req{Region: p.Subregions[0], Field: 0, Priv: privilege.Reads()}), 1, 1.0)
	total := d.Barrier()
	if total < 2.0 {
		t.Errorf("dependent tasks overlapped: %v", total)
	}
}

func TestDataMovesOverNetwork(t *testing.T) {
	d, m, tree, p := newDriver(t, 2, true)
	s := core.NewStream(tree)
	d.Launch(s.Launch("w", core.Req{Region: p.Subregions[0], Field: 0, Priv: privilege.Writes()}), 0, 0.001)
	before, bytesBefore := m.Messages()
	d.Launch(s.Launch("r", core.Req{Region: p.Subregions[0], Field: 0, Priv: privilege.Reads()}), 1, 0.001)
	after, bytesAfter := m.Messages()
	if after <= before {
		t.Error("remote read should have sent messages")
	}
	// 100 points at the default 8 bytes/point.
	if bytesAfter-bytesBefore < 800 {
		t.Errorf("expected >= 800 data bytes, got %d", bytesAfter-bytesBefore)
	}
}

func TestNoDCRFunnelsAnalysis(t *testing.T) {
	// The same independent workload takes longer without DCR at scale,
	// because all analysis queues on node 0.
	iterTime := func(dcr bool, nodes int) float64 {
		d, _, tree, p := newDriver(t, nodes, dcr)
		s := core.NewStream(tree)
		for iter := 0; iter < 3; iter++ {
			for i := 0; i < nodes; i++ {
				d.Launch(s.Launch("w", core.Req{Region: p.Subregions[i], Field: 0, Priv: privilege.Writes()}), i, 0.0001)
			}
		}
		return d.Barrier()
	}
	withDCR := iterTime(true, 64)
	without := iterTime(false, 64)
	if without <= withDCR {
		t.Errorf("no-DCR (%v) should be slower than DCR (%v) at 64 nodes", without, withDCR)
	}
}

func TestOwnerByPartition(t *testing.T) {
	tree, p := lineSetup(4)
	owner := dist.OwnerByPartition(p, 4)
	if got := owner(p.Subregions[2].Space); got != 2 {
		t.Errorf("owner of piece 2 = %d", got)
	}
	// A space spanning pieces is owned by the piece holding its first
	// point.
	span := index.FromRect(geometry.R1(150, 250))
	if got := owner(span); got != 1 {
		t.Errorf("owner of spanning space = %d, want 1", got)
	}
	if got := owner(index.Empty(1)); got != 0 {
		t.Errorf("owner of empty = %d, want 0", got)
	}
	_ = tree
}

func TestOwnerByPartitionModuloNodes(t *testing.T) {
	// More pieces than nodes wraps owners around.
	tree, p := lineSetup(8)
	_ = tree
	owner := dist.OwnerByPartition(p, 4)
	if got := owner(p.Subregions[5].Space); got != 1 {
		t.Errorf("owner of piece 5 on 4 nodes = %d, want 1", got)
	}
}

func TestBarrierMonotone(t *testing.T) {
	d, _, tree, p := newDriver(t, 2, false)
	s := core.NewStream(tree)
	if d.Barrier() != 0 {
		t.Error("empty barrier should be 0")
	}
	d.Launch(s.Launch("w", core.Req{Region: p.Subregions[0], Field: 0, Priv: privilege.Writes()}), 0, 0.5)
	b1 := d.Barrier()
	d.Launch(s.Launch("w2", core.Req{Region: p.Subregions[0], Field: 0, Priv: privilege.Writes()}), 0, 0.5)
	b2 := d.Barrier()
	if !(b1 >= 0.5 && b2 >= b1+0.5) {
		t.Errorf("barriers not monotone: %v, %v", b1, b2)
	}
}

// TestFetchDedupAcrossIterations verifies on-demand replication: the first
// iteration of a warnock-analyzed loop sends far more messages than later
// iterations, whose lookups hit per-node caches and memoized sets.
func TestFetchDedupAcrossIterations(t *testing.T) {
	tree, p := lineSetup(16)
	m := cluster.New(cluster.DefaultConfig(16))
	newAn, _ := algo.Lookup("warnock")
	owner := dist.OwnerByPartition(p, 16)
	d := dist.New(m, tree, dist.NewAnalyzerFunc(newAn), owner, dist.DefaultConfig(true))
	s := core.NewStream(tree)

	iterMsgs := func() int64 {
		before, _ := m.Messages()
		for i := 0; i < 16; i++ {
			d.Launch(s.Launch("w", core.Req{Region: p.Subregions[i], Field: 0, Priv: privilege.Writes()}), i, 0.001)
		}
		after, _ := m.Messages()
		return after - before
	}
	first := iterMsgs()
	iterMsgs()
	third := iterMsgs()
	if third >= first {
		t.Errorf("steady-state messages (%d) should be below first-iteration messages (%d)", third, first)
	}
}

func TestMappers(t *testing.T) {
	var rr dist.RoundRobinMapper
	got := []int{}
	for i := 0; i < 5; i++ {
		got = append(got, rr.Place(nil, 9, 3))
	}
	want := []int{0, 1, 2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin = %v, want %v", got, want)
		}
	}
	if (dist.OwnerMapper{}).Place(nil, 7, 4) != 3 {
		t.Error("owner mapper should follow the hint modulo nodes")
	}
	rm := dist.NewRandomMapper(42)
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		n := rm.Place(nil, 0, 4)
		if n < 0 || n >= 4 {
			t.Fatalf("random mapper out of range: %d", n)
		}
		seen[n] = true
	}
	if len(seen) < 2 {
		t.Error("random mapper not spreading")
	}
	// Determinism across instances with the same seed.
	a, b := dist.NewRandomMapper(7), dist.NewRandomMapper(7)
	for i := 0; i < 10; i++ {
		if a.Place(nil, 0, 8) != b.Place(nil, 0, 8) {
			t.Fatal("random mapper not deterministic by seed")
		}
	}
}
