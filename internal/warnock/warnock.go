// Package warnock implements Warnock's algorithm for content-based
// coherence (paper §6): the state is a set of equivalence sets — pairs of a
// point set and a history — maintaining the invariant that every operation
// in an equivalence set's history is relevant to every point of the set.
// Launching a task on a region refines any partially-overlapping
// equivalence sets into inside/outside halves (Figure 9), so equivalence
// sets only ever get smaller.
//
// The history of refinements forms a search tree that acts as a bounding
// volume hierarchy (§6.1): lookups descend from the root through refined
// nodes to the current leaves, and per-region results are memoized so
// repeated uses of the same region restart the search at the memoized
// nodes rather than the root.
package warnock

import (
	"visibility/internal/core"
	"visibility/internal/fault"
	"visibility/internal/field"
	"visibility/internal/index"
	"visibility/internal/obs/recorder"
	"visibility/internal/privilege"
	"visibility/internal/region"
)

// Warnock is the equivalence-set coherence analyzer of §6.
type Warnock struct {
	tree *region.Tree
	opts core.Options
	// state holds the per-field refinement trees and memo tables, mutated
	// by every Analyze with no lock: the analyzer runs on exactly one
	// goroutine (the submit side, §3.2).
	//
	// confined to analyzer
	state map[field.ID]*fieldState
	// confined to analyzer
	stats core.Stats

	// nextToken issues unique ids for refinement-tree nodes across fields.
	//
	// confined to analyzer
	nextToken int64

	// DisableMemo turns off the per-region memoization of constituent
	// equivalence sets (§6.1), so every lookup descends from the root —
	// an ablation knob for benchmarking the optimization.
	DisableMemo bool
}

// New creates a Warnock analyzer for tree.
func New(tree *region.Tree, opts core.Options) *Warnock {
	return &Warnock{tree: tree, opts: opts.Normalize(), state: make(map[field.ID]*fieldState)}
}

// Name implements core.Analyzer.
func (w *Warnock) Name() string { return "warnock" }

// Stats implements core.Analyzer.
//
// confined to analyzer
func (w *Warnock) Stats() *core.Stats { return &w.stats }

// EquivalenceSets returns the number of live (leaf) equivalence sets for
// field f, for tests and the experiment harness.
//
// confined to analyzer
func (w *Warnock) EquivalenceSets(f field.ID) int {
	fs, ok := w.state[f]
	if !ok {
		return 1 // the initial, untouched root set
	}
	n := 0
	var walk func(*bnode)
	walk = func(b *bnode) {
		if b.set != nil {
			n++
			return
		}
		for _, c := range b.children {
			walk(c)
		}
	}
	walk(fs.root)
	return n
}

// SetSpaces returns the point sets of the live equivalence sets for field
// f, for invariant checks in tests.
//
// confined to analyzer
func (w *Warnock) SetSpaces(f field.ID) []index.Space {
	fs, ok := w.state[f]
	if !ok {
		return []index.Space{w.tree.Root.Space}
	}
	var out []index.Space
	var walk func(*bnode)
	walk = func(b *bnode) {
		if b.set != nil {
			out = append(out, b.set.pts)
			return
		}
		for _, c := range b.children {
			walk(c)
		}
	}
	walk(fs.root)
	return out
}

// eqset is one equivalence set: a point set and the history of operations
// relevant to every point of it.
type eqset struct {
	pts  index.Space
	hist []core.Entry
}

// bnode is a node of the refinement BVH. Leaves hold live equivalence sets;
// interior nodes record past refinements and are immutable once refined,
// which is what makes them safe to replicate across the machine (§6.1).
// Replication is on demand and per node: the first traversal through a
// freshly-refined interior node by each analyzing node must fetch it from
// its owner before it is cached locally — the construction/distribution
// cost that dominates Warnock's initialization at scale (§8.1). Fetches are
// reported through Probe.Fetch keyed by the node's id.
type bnode struct {
	pts      index.Space
	set      *eqset // non-nil exactly at leaves
	children []*bnode
	owner    int
	id       int64
}

type fieldState struct {
	root *bnode
	memo map[int][]*bnode // region ID → nodes covering it at last lookup
}

func (w *Warnock) fieldFor(f field.ID) *fieldState {
	fs, ok := w.state[f]
	if !ok {
		root := w.tree.Root.Space
		w.nextToken++
		fs = &fieldState{
			root: &bnode{
				pts:   root,
				set:   &eqset{pts: root, hist: []core.Entry{core.SeedEntry(root)}},
				owner: w.opts.Owner(root),
				id:    w.nextToken,
			},
			memo: make(map[int][]*bnode),
		}
		w.state[f] = fs
	}
	return fs
}

// lookup returns the leaf nodes whose sets overlap sp, descending from the
// memoized nodes for the region (or the root on first use).
func (w *Warnock) lookup(fs *fieldState, regionID int, sp index.Space) []*bnode {
	span := w.opts.Spans.Begin("warnock.bvh_query", "analysis")
	defer span.End()
	start, ok := fs.memo[regionID]
	if !ok || w.DisableMemo {
		start = []*bnode{fs.root}
	}
	var leaves []*bnode
	var descend func(*bnode)
	descend = func(b *bnode) {
		w.stats.BVHVisited++
		// Testing a node costs work proportional to its rectangle
		// complexity: the residual spaces produced by piece-by-piece
		// refinement fragment into more and more rectangles, which is
		// what makes constructing and searching the refinement tree
		// superlinear during initialization (§8.1).
		ops := int64(b.pts.NumRects())
		if b.set == nil {
			// Interior nodes are replicated on demand per analyzing
			// node; the probe decides whether this is a first fetch.
			w.opts.Probe.Fetch(b.owner, b.id, ops)
		} else {
			w.opts.Probe.Visit(ops)
		}
		w.stats.OverlapTests++
		if !b.pts.Overlaps(sp) {
			return
		}
		if b.set != nil {
			leaves = append(leaves, b)
			return
		}
		for _, c := range b.children {
			descend(c)
		}
	}
	for _, b := range start {
		descend(b)
	}
	fs.memo[regionID] = leaves
	return leaves
}

// privRuns counts maximal runs of identical privileges in a history — the
// epochs a scan actually tests for interference.
func privRuns(hist []core.Entry) int64 {
	var runs int64
	for i, e := range hist {
		if i == 0 || !e.Priv.Same(hist[i-1].Priv) {
			runs++
		}
	}
	return runs
}

// refine splits every equivalence set partially overlapping sp into
// inside/outside halves (Figure 9, refine), then returns the leaves fully
// inside sp.
func (w *Warnock) refine(fs *fieldState, regionID int, sp index.Space) []*bnode {
	span := w.opts.Spans.Begin("warnock.refine", "analysis")
	defer span.End()
	leaves := w.lookup(fs, regionID, sp)
	var inside []*bnode
	for _, b := range leaves {
		w.stats.SetsVisited++
		s := b.set
		w.opts.Probe.Touch(w.opts.Owner(s.pts), 1)
		w.stats.OverlapTests++
		if sp.Covers(s.pts) {
			// Fault plane: force a refinement the analysis did not need.
			// Both fragments carry the full history, so the split is
			// semantics-preserving — it only breaks code that secretly
			// depends on covered sets staying whole.
			if vol := s.pts.Volume(); vol > 1 {
				if fired, v := w.opts.Faults.FireValue(fault.EqSplit, vol); fired {
					fp, rp := s.pts.SplitAt(1 + int64(v%uint64(vol-1)))
					w.nextToken++
					inLeaf := &bnode{pts: fp, set: &eqset{pts: fp, hist: append([]core.Entry(nil), s.hist...)}, owner: w.opts.Owner(fp), id: w.nextToken}
					w.nextToken++
					outLeaf := &bnode{pts: rp, set: &eqset{pts: rp, hist: s.hist}, owner: w.opts.Owner(rp), id: w.nextToken}
					b.set = nil
					b.children = []*bnode{inLeaf, outLeaf}
					w.nextToken++
					b.id = w.nextToken
					w.stats.SetsCreated += 2
					w.opts.Recorder.Log(recorder.KindEqSplit, 2, int64(len(s.hist)))
					inside = append(inside, inLeaf, outLeaf)
					continue
				}
			}
			inside = append(inside, b)
			continue
		}
		in := s.pts.Intersect(sp)
		out := s.pts.Subtract(sp)
		// Lookup guarantees overlap, and non-containment guarantees a
		// remainder, so both halves are non-empty.
		w.nextToken++
		inLeaf := &bnode{pts: in, set: &eqset{pts: in, hist: append([]core.Entry(nil), s.hist...)}, owner: w.opts.Owner(in), id: w.nextToken}
		w.nextToken++
		outLeaf := &bnode{pts: out, set: &eqset{pts: out, hist: s.hist}, owner: w.opts.Owner(out), id: w.nextToken}
		b.set = nil
		b.children = []*bnode{inLeaf, outLeaf}
		// Refinement replaces this node's metadata: caches of the old
		// version are invalid, so it gets a fresh replication token and
		// every analyzing node must fetch it again (§6.1's immutability
		// begins only after the refinement).
		w.nextToken++
		b.id = w.nextToken
		w.stats.SetsCreated += 2
		w.opts.Recorder.Log(recorder.KindEqSplit, 2, int64(len(s.hist)))
		w.opts.Probe.Touch(w.opts.Owner(s.pts), 2)
		inside = append(inside, inLeaf)
	}
	// The memo currently holds pre-refinement leaves; refresh it to the
	// new leaves overlapping the region.
	refreshed := make([]*bnode, 0, len(inside))
	for _, b := range leaves {
		if b.set != nil {
			refreshed = append(refreshed, b)
		} else {
			for _, c := range b.children {
				if c.pts.Overlaps(sp) {
					refreshed = append(refreshed, c)
				}
			}
		}
	}
	fs.memo[regionID] = refreshed
	return inside
}

// Analyze implements core.Analyzer.
//
// confined to analyzer
func (w *Warnock) Analyze(t *core.Task) *core.Result {
	span := w.opts.Spans.Begin("warnock.analyze", "analysis")
	defer span.End()
	w.stats.Launches++
	var deps []int
	plans := make([][]core.Visible, len(t.Reqs))

	// materialize: refine, then paint each constituent equivalence set.
	insides := make([][]*bnode, len(t.Reqs))
	for ri, req := range t.Reqs {
		if req.Region.Space.IsEmpty() {
			// No points: nothing can interfere and nothing materializes.
			// Common under sharding, where a requirement's restriction to
			// most atoms is empty, and for clipped boundary halos.
			continue
		}
		fs := w.fieldFor(req.Field)
		inside := w.refine(fs, req.Region.ID, req.Region.Space)
		insides[ri] = inside
		var plan []core.Visible
		for _, b := range inside {
			s := b.set
			// Consecutive entries with one privilege form an epoch (e.g.
			// N same-operator reductions): interference is decided once
			// per epoch, as in Legion's user lists, so the charged work
			// is the number of privilege runs, not entries.
			w.opts.Probe.Touch(w.opts.Owner(s.pts), privRuns(s.hist))
			for _, e := range s.hist {
				w.stats.EntriesScanned++
				// Every entry is relevant to the whole set: no spatial
				// test is needed, only privilege interference.
				if privilege.Interferes(e.Priv, req.Priv) {
					deps = append(deps, e.Task)
					w.stats.DepsReported++
					if w.opts.Prov != nil && e.Task != core.InitialTask {
						w.opts.Prov.AddReason(core.EdgeReason{
							Src: e.Task, Dst: t.ID, Kind: core.ReasonRegion, Analyzer: "warnock",
							SrcReq: e.Req, DstReq: ri, Field: req.Field,
							SrcPriv: e.Priv, DstPriv: req.Priv, Overlap: s.pts.Bounds(), Trace: -1,
						})
					}
				}
				if !req.Priv.IsReduce() && e.Priv.Mutates() {
					plan = append(plan, core.Visible{Task: e.Task, Req: e.Req, Priv: e.Priv, Pts: s.pts})
				}
			}
		}
		if req.Priv.IsReduce() {
			plan = nil
		}
		plans[ri] = plan
	}

	// commit: record the operation in each constituent set; writes clear
	// the prior history (Figure 9 lines 30-31).
	for ri, req := range t.Reqs {
		if req.Region.Space.IsEmpty() {
			continue
		}
		fs := w.fieldFor(req.Field)
		// Reuse the constituent sets found during materialize; another
		// requirement of this task may have refined them since (same
		// field, overlapping region), in which case look up again.
		inside := insides[ri]
		for _, b := range inside {
			if b.set == nil {
				inside = w.refine(fs, req.Region.ID, req.Region.Space)
				break
			}
		}
		for _, b := range inside {
			s := b.set
			e := core.Entry{Task: t.ID, Req: ri, Priv: req.Priv, Pts: s.pts}
			if req.Priv.IsWrite() {
				s.hist = append(s.hist[:0:0], e)
			} else {
				s.hist = append(s.hist, e)
			}
			w.opts.Probe.Touch(w.opts.Owner(s.pts), 1)
		}
	}

	return &core.Result{Deps: core.DedupDeps(deps), Plans: plans}
}
