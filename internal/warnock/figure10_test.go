package warnock_test

import (
	"testing"

	"visibility/internal/core"
	"visibility/internal/testutil"
	"visibility/internal/warnock"
)

// TestFigure10Refinement reproduces the equivalence-set refinement tree of
// Figure 10 for the up field over the Figure 5 task launches on the ring
// of 18 nodes: the primary writes discover the three P pieces, and the
// aliased ghost reductions refine them down to the nine maximal sets with
// uniform history.
func TestFigure10Refinement(t *testing.T) {
	tree, p, g := testutil.GraphTree()
	up, _ := tree.Fields.Lookup("up")
	s := core.NewStream(tree)
	w := warnock.New(tree, core.Options{})

	if got := w.EquivalenceSets(up); got != 1 {
		t.Fatalf("initial equivalence sets = %d, want 1", got)
	}

	// Expected up-field set counts after each of t0..t8 (see Figure 10):
	// t0 splits N into P[0] and the rest; t1 splits the rest into P[1] and
	// P[2]; t2 matches P[2] exactly; the ghost reductions t3-t5 cut each
	// P piece at the halo boundaries, reaching the nine 2-element bands;
	// the second t1 phase re-uses the same regions and refines nothing.
	want := []int{2, 3, 3, 5, 7, 9, 9, 9, 9}
	for i, task := range testutil.Figure5(s, p, g) {
		w.Analyze(task)
		if got := w.EquivalenceSets(up); got != want[i] {
			t.Errorf("after t%d: equivalence sets = %d, want %d", i, got, want[i])
		}
	}

	// Warnock never coalesces: many further iterations leave the
	// refinement exactly where it is.
	for iter := 0; iter < 5; iter++ {
		for i := 0; i < 3; i++ {
			w.Analyze(testutil.LaunchT1(s, p, g, i))
		}
		for i := 0; i < 3; i++ {
			w.Analyze(testutil.LaunchT2(s, p, g, i))
		}
	}
	if got := w.EquivalenceSets(up); got != 9 {
		t.Errorf("steady state equivalence sets = %d, want 9", got)
	}
	if w.Stats().SetsCoalesced != 0 {
		t.Error("Warnock's algorithm must never coalesce sets")
	}
}

// TestEquivalenceSetInvariant checks the fundamental §6 invariant on every
// step of a mixed stream: live sets are pairwise disjoint and cover the
// root.
func TestEquivalenceSetInvariant(t *testing.T) {
	tree, p, g := testutil.GraphTree()
	s := core.NewStream(tree)
	w := warnock.New(tree, core.Options{})
	var launches []*core.Task
	launches = append(launches, testutil.Figure5(s, p, g)...)
	for i := 0; i < 3; i++ {
		launches = append(launches, testutil.LaunchT2(s, p, g, i))
	}
	for _, task := range launches {
		w.Analyze(task)
		for f := 0; f < tree.Fields.Len(); f++ {
			if err := testutil.CheckPartitionInvariant(w.SetSpaces(0), tree.Root.Space); err != nil {
				t.Fatalf("after %v: %v", task, err)
			}
		}
	}
}

// TestMemoization verifies that repeated uses of a region restart the
// equivalence-set search at the memoized leaves instead of the root: the
// per-launch BVH traversal cost must drop after the first iteration.
func TestMemoization(t *testing.T) {
	tree, p, g := testutil.GraphTree()
	s := core.NewStream(tree)
	w := warnock.New(tree, core.Options{})

	iterCost := func() int64 {
		before := w.Stats().BVHVisited
		for i := 0; i < 3; i++ {
			w.Analyze(testutil.LaunchT1(s, p, g, i))
		}
		for i := 0; i < 3; i++ {
			w.Analyze(testutil.LaunchT2(s, p, g, i))
		}
		return w.Stats().BVHVisited - before
	}
	first := iterCost()
	second := iterCost()
	third := iterCost()
	fourth := iterCost()
	if second > first {
		t.Errorf("BVH cost grew after warmup: first=%d second=%d", first, second)
	}
	if third > second || fourth != third {
		t.Errorf("BVH cost not converging: %d %d %d %d", first, second, third, fourth)
	}
}
