package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"visibility/internal/geometry"
)

func TestEmpty(t *testing.T) {
	e := Empty(2)
	if !e.IsEmpty() || e.Volume() != 0 || e.Dim() != 2 {
		t.Errorf("Empty(2) = %v", e)
	}
	if e.Contains(geometry.Pt2(0, 0)) {
		t.Error("empty space contains nothing")
	}
	if !e.Bounds().Empty() {
		t.Error("empty space has empty bounds")
	}
}

func TestFromRectsMergesOverlaps(t *testing.T) {
	s := FromRects(1, geometry.R1(0, 5), geometry.R1(3, 9), geometry.R1(10, 12))
	// [0,5] ∪ [3,9] ∪ [10,12] = [0,12]: adjacent intervals merge too.
	if s.NumRects() != 1 || s.Volume() != 13 {
		t.Errorf("got %v, want single rect [0..12]", s)
	}
}

func TestCanonical2D(t *testing.T) {
	// Two ways to build the same L-shape must produce identical structure.
	a := FromRects(2, geometry.R2(0, 0, 9, 4), geometry.R2(0, 5, 4, 9))
	b := FromRects(2, geometry.R2(0, 0, 4, 9), geometry.R2(5, 0, 9, 4))
	if !a.Equal(b) {
		t.Errorf("canonical forms differ:\n a=%v\n b=%v", a, b)
	}
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	if a.Volume() != 75 {
		t.Errorf("volume = %d, want 75", a.Volume())
	}
}

func TestBandMerging(t *testing.T) {
	// Two stacked rects with the same x-extent should merge into one band.
	s := FromRects(2, geometry.R2(0, 0, 4, 2), geometry.R2(0, 3, 4, 7))
	if s.NumRects() != 1 {
		t.Errorf("expected 1 rect after band merge, got %v", s)
	}
}

func TestIntersect(t *testing.T) {
	a := FromRect(geometry.R2(0, 0, 5, 5))
	b := FromRects(2, geometry.R2(4, 4, 8, 8), geometry.R2(0, 0, 1, 1))
	got := a.Intersect(b)
	want := FromRects(2, geometry.R2(4, 4, 5, 5), geometry.R2(0, 0, 1, 1))
	if !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
}

func TestSubtract(t *testing.T) {
	a := FromRect(geometry.R2(0, 0, 9, 9))
	b := FromRect(geometry.R2(3, 3, 6, 6))
	got := a.Subtract(b)
	if got.Volume() != 100-16 {
		t.Errorf("Subtract volume = %d, want 84", got.Volume())
	}
	if got.Overlaps(b) {
		t.Error("difference overlaps subtrahend")
	}
	if !got.Union(b.Intersect(a)).Equal(a) {
		t.Error("X\\Y ∪ (X∩Y) != X")
	}
}

func TestCoversAndOverlaps(t *testing.T) {
	a := FromRect(geometry.R1(0, 99))
	b := FromRects(1, geometry.R1(5, 10), geometry.R1(50, 60))
	if !a.Covers(b) {
		t.Error("a should cover b")
	}
	if b.Covers(a) {
		t.Error("b should not cover a")
	}
	if !a.Covers(a) || !a.Covers(Empty(1)) {
		t.Error("covers should be reflexive and hold for empty")
	}
	if Empty(1).Covers(b) {
		t.Error("empty covers nothing non-empty")
	}
	if !a.Overlaps(b) || b.Overlaps(Empty(1)) {
		t.Error("overlap misbehavior")
	}
}

func TestEach(t *testing.T) {
	s := FromRects(1, geometry.R1(0, 2), geometry.R1(10, 11))
	var got []int64
	s.Each(func(p geometry.Point) bool {
		got = append(got, p.C[0])
		return true
	})
	want := []int64{0, 1, 2, 10, 11}
	if len(got) != len(want) {
		t.Fatalf("Each visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Each visited %v, want %v", got, want)
		}
	}
}

func TestFromPoints(t *testing.T) {
	s := FromPoints(1, geometry.Pt1(3), geometry.Pt1(1), geometry.Pt1(2), geometry.Pt1(7))
	if s.Volume() != 4 || s.NumRects() != 2 {
		t.Errorf("FromPoints = %v, want [1..3] and [7..7]", s)
	}
}

// brute is a reference point-set implementation for property tests.
type brute map[geometry.Point]bool

func bruteOf(s Space) brute {
	m := brute{}
	s.Each(func(p geometry.Point) bool { m[p] = true; return true })
	return m
}

func randSpace(rng *rand.Rand, dim int) Space {
	n := rng.Intn(4)
	rs := make([]geometry.Rect, 0, n)
	for i := 0; i < n; i++ {
		r := geometry.Rect{Dim: dim}
		for a := 0; a < dim; a++ {
			lo := int64(rng.Intn(12))
			r.Lo.C[a] = lo
			r.Hi.C[a] = lo + int64(rng.Intn(6))
		}
		rs = append(rs, r)
	}
	return FromRects(dim, rs...)
}

func TestSetAlgebraProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for dim := 1; dim <= 3; dim++ {
		dim := dim
		f := func() bool {
			x := randSpace(rng, dim)
			y := randSpace(rng, dim)
			bx, by := bruteOf(x), bruteOf(y)

			inter := bruteOf(x.Intersect(y))
			diff := bruteOf(x.Subtract(y))
			uni := bruteOf(x.Union(y))

			for p := range bx {
				if by[p] != inter[p] {
					return false
				}
				if !by[p] != diff[p] {
					return false
				}
				if !uni[p] {
					return false
				}
			}
			for p := range by {
				if !uni[p] {
					return false
				}
			}
			// No extraneous points.
			for p := range inter {
				if !bx[p] || !by[p] {
					return false
				}
			}
			for p := range diff {
				if !bx[p] || by[p] {
					return false
				}
			}
			for p := range uni {
				if !bx[p] && !by[p] {
					return false
				}
			}
			// Structural laws.
			if !x.Subtract(y).Union(x.Intersect(y)).Equal(x) {
				return false
			}
			if x.Overlaps(y) != !x.Intersect(y).IsEmpty() {
				return false
			}
			if x.Covers(y) != y.Subtract(x).IsEmpty() {
				return false
			}
			// Volume consistency.
			if x.Volume() != int64(len(bx)) {
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("dim %d: %v", dim, err)
		}
	}
}

// Property: canonical form is unique — building the same set from its own
// fragments reproduces identical structure.
func TestCanonicalUniqueness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for dim := 1; dim <= 3; dim++ {
		dim := dim
		f := func() bool {
			x := randSpace(rng, dim)
			y := randSpace(rng, dim)
			// x = (x\y) ∪ (x∩y), rebuilt from pieces.
			rebuilt := x.Subtract(y).Union(x.Intersect(y))
			return rebuilt.Equal(x) && rebuilt.Key() == x.Key()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("dim %d: %v", dim, err)
		}
	}
}

func TestKeyDistinguishes(t *testing.T) {
	a := FromRect(geometry.R1(0, 5))
	b := FromRect(geometry.R1(0, 6))
	if a.Key() == b.Key() {
		t.Error("different spaces share a key")
	}
}

func TestDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dim mismatch")
		}
	}()
	FromRects(2, geometry.R1(0, 1))
}

func BenchmarkIntersect2D(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]Space, 64)
	for i := range xs {
		xs[i] = randSpace(rng, 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = xs[i%64].Intersect(xs[(i+1)%64])
	}
}

func BenchmarkSubtract2D(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]Space, 64)
	for i := range xs {
		xs[i] = randSpace(rng, 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = xs[i%64].Subtract(xs[(i+1)%64])
	}
}

func Test3DSpaces(t *testing.T) {
	a := FromRect(geometry.R3(0, 0, 0, 3, 3, 3))
	b := FromRect(geometry.R3(2, 2, 2, 5, 5, 5))
	inter := a.Intersect(b)
	if inter.Volume() != 8 {
		t.Errorf("3-D intersect volume = %d", inter.Volume())
	}
	diff := a.Subtract(b)
	if diff.Volume() != 64-8 {
		t.Errorf("3-D subtract volume = %d", diff.Volume())
	}
	if !diff.Union(inter).Equal(a) {
		t.Error("3-D partition law failed")
	}
	if a.Bounds().Dim != 3 {
		t.Error("3-D bounds dim wrong")
	}
}
