package index

import (
	"testing"

	"visibility/internal/geometry"
)

// decodeSpaces builds two index spaces from fuzz bytes: a compact,
// deterministic decoder so the fuzzer explores rect-list structure.
func decodeSpaces(data []byte, dim int) (Space, Space) {
	take := func() int64 {
		if len(data) == 0 {
			return 0
		}
		v := int64(data[0] % 16)
		data = data[1:]
		return v
	}
	build := func() Space {
		n := int(take() % 4)
		rs := make([]geometry.Rect, 0, n)
		for i := 0; i < n; i++ {
			r := geometry.Rect{Dim: dim}
			for a := 0; a < dim; a++ {
				lo := take()
				r.Lo.C[a] = lo
				r.Hi.C[a] = lo + take()%5
			}
			rs = append(rs, r)
		}
		return FromRects(dim, rs...)
	}
	return build(), build()
}

// FuzzSetAlgebra checks the core algebraic laws on fuzzer-generated
// spaces, in 1-D and 2-D.
func FuzzSetAlgebra(f *testing.F) {
	f.Add([]byte{2, 0, 3, 5, 2, 1, 4, 4, 6, 2})
	f.Add([]byte{})
	f.Add([]byte{3, 1, 1, 1, 1, 2, 2, 9, 9, 1, 0, 0, 15, 15})
	f.Fuzz(func(t *testing.T, data []byte) {
		for dim := 1; dim <= 2; dim++ {
			x, y := decodeSpaces(data, dim)

			inter := x.Intersect(y)
			diff := x.Subtract(y)
			uni := x.Union(y)

			// Partition law: X = (X\Y) ⊎ (X∩Y).
			if diff.Overlaps(inter) {
				t.Fatalf("dim %d: X\\Y overlaps X∩Y: %v %v", dim, x, y)
			}
			if !diff.Union(inter).Equal(x) {
				t.Fatalf("dim %d: (X\\Y)∪(X∩Y) != X: %v %v", dim, x, y)
			}
			// Volume arithmetic.
			if diff.Volume()+inter.Volume() != x.Volume() {
				t.Fatalf("dim %d: volume mismatch: %v %v", dim, x, y)
			}
			if uni.Volume() != x.Volume()+y.Volume()-inter.Volume() {
				t.Fatalf("dim %d: inclusion-exclusion failed: %v %v", dim, x, y)
			}
			// Symmetry and consistency.
			if !inter.Equal(y.Intersect(x)) {
				t.Fatalf("dim %d: intersect not symmetric", dim)
			}
			if x.Overlaps(y) != !inter.IsEmpty() {
				t.Fatalf("dim %d: Overlaps inconsistent with Intersect", dim)
			}
			if x.Covers(y) != y.Subtract(x).IsEmpty() {
				t.Fatalf("dim %d: Covers inconsistent with Subtract", dim)
			}
			// Canonical-form uniqueness: rebuilding from fragments gives
			// identical structure and key.
			rebuilt := diff.Union(inter)
			if rebuilt.Key() != x.Key() {
				t.Fatalf("dim %d: canonical keys differ after rebuild", dim)
			}
			// Union is idempotent and absorbs.
			if !uni.Union(x).Equal(uni) {
				t.Fatalf("dim %d: union not absorbing", dim)
			}
		}
	})
}

// FuzzContainsAgainstRects cross-checks point membership against the raw
// rectangle decomposition.
func FuzzContainsAgainstRects(f *testing.F) {
	f.Add([]byte{2, 1, 3, 6, 2}, int64(4), int64(0))
	f.Fuzz(func(t *testing.T, data []byte, px, py int64) {
		if px < 0 || px > 32 || py < 0 || py > 32 {
			return
		}
		x, _ := decodeSpaces(data, 2)
		p := geometry.Pt2(px, py)
		want := false
		for _, r := range x.Rects() {
			if r.Contains(p) {
				want = true
			}
		}
		if got := x.Contains(p); got != want {
			t.Fatalf("Contains(%v) = %v, rects say %v (%v)", p, got, want, x)
		}
	})
}
