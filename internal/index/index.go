// Package index implements sparse index spaces: sets of n-dimensional
// integer points stored as canonical lists of disjoint rectangles.
//
// Index spaces are the substrate for content-based coherence (paper §1,
// §3.2): a region names a set of points, regions may alias arbitrarily, and
// the analyses must decide emptiness of intersections, compute differences,
// and overlay updates (the ⊕ operator of §5). All of those are provided
// here as immutable-value operations.
//
// Canonical form: rectangles are decomposed into bands along the highest
// axis (splitting at every distinct boundary), each band's lower-dimensional
// cross-section is canonicalized recursively, and adjacent bands with
// identical cross-sections are re-merged. Two spaces contain the same points
// if and only if their canonical rectangle lists are identical, so Equal is
// a cheap structural comparison.
package index

import (
	"fmt"
	"sort"
	"strings"

	"visibility/internal/geometry"
)

// Space is an immutable sparse set of points. The zero value is the empty
// 0-dimensional space; use Empty for a typed empty space.
type Space struct {
	dim   int
	rects []geometry.Rect // canonical: disjoint, sorted, band-decomposed
}

// Empty returns the empty space of the given dimension.
func Empty(dim int) Space { return Space{dim: dim} }

// FromRect returns the space containing exactly the points of r.
func FromRect(r geometry.Rect) Space {
	if r.Empty() {
		return Space{dim: r.Dim}
	}
	return Space{dim: r.Dim, rects: []geometry.Rect{r}}
}

// FromRects returns the space containing the union of the given rectangles,
// which may overlap. All rectangles must share the given dimension.
func FromRects(dim int, rs ...geometry.Rect) Space {
	in := make([]geometry.Rect, 0, len(rs))
	for _, r := range rs {
		if r.Dim != dim {
			panic(fmt.Sprintf("index: rect dim %d != space dim %d", r.Dim, dim))
		}
		if !r.Empty() {
			in = append(in, r)
		}
	}
	return Space{dim: dim, rects: canon(in, dim)}
}

// FromPoints returns the space containing exactly the given points.
func FromPoints(dim int, ps ...geometry.Point) Space {
	rs := make([]geometry.Rect, len(ps))
	for i, p := range ps {
		rs[i] = geometry.PointRect(p, dim)
	}
	return FromRects(dim, rs...)
}

// Dim returns the dimensionality of the space.
func (s Space) Dim() int { return s.dim }

// IsEmpty reports whether the space contains no points.
func (s Space) IsEmpty() bool { return len(s.rects) == 0 }

// NumRects returns the number of rectangles in the canonical decomposition.
func (s Space) NumRects() int { return len(s.rects) }

// Rects returns the canonical rectangle decomposition. The returned slice
// must not be modified.
func (s Space) Rects() []geometry.Rect { return s.rects }

// Volume returns the number of points in the space.
func (s Space) Volume() int64 {
	var v int64
	for _, r := range s.rects {
		v += r.Volume()
	}
	return v
}

// Bounds returns the bounding rectangle of the space (empty if the space is
// empty).
func (s Space) Bounds() geometry.Rect {
	if len(s.rects) == 0 {
		return geometry.Rect{Dim: s.dim, Lo: geometry.Pt1(1), Hi: geometry.Pt1(0)}
	}
	b := s.rects[0]
	for _, r := range s.rects[1:] {
		b = b.Union(r)
	}
	return b
}

// Contains reports whether p is in the space.
func (s Space) Contains(p geometry.Point) bool {
	for _, r := range s.rects {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// Overlaps reports whether s and o share at least one point. This is the
// hot-path emptiness test of content-based dependence analysis (§3.2) and
// short-circuits without building the intersection.
func (s Space) Overlaps(o Space) bool {
	for _, a := range s.rects {
		for _, b := range o.rects {
			if a.Overlaps(b) {
				return true
			}
		}
	}
	return false
}

// Intersect returns the set of points in both s and o (the X/Y operator of
// §5 applied to domains).
func (s Space) Intersect(o Space) Space {
	var out []geometry.Rect
	for _, a := range s.rects {
		for _, b := range o.rects {
			if inter := a.Intersect(b); !inter.Empty() {
				out = append(out, inter)
			}
		}
	}
	return Space{dim: s.dim, rects: canon(out, s.dim)}
}

// Subtract returns the set of points in s but not in o (the X\Y operator of
// §5 applied to domains).
func (s Space) Subtract(o Space) Space {
	cur := s.rects
	for _, b := range o.rects {
		var next []geometry.Rect
		for _, a := range cur {
			next = a.Subtract(b, next)
		}
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	return Space{dim: s.dim, rects: canon(cur, s.dim)}
}

// Union returns the set of points in s or o.
func (s Space) Union(o Space) Space {
	if s.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return s
	}
	all := make([]geometry.Rect, 0, len(s.rects)+len(o.rects))
	all = append(all, s.rects...)
	all = append(all, o.rects...)
	return Space{dim: s.dim, rects: canon(all, s.dim)}
}

// Covers reports whether every point of o is in s.
func (s Space) Covers(o Space) bool {
	if o.IsEmpty() {
		return true
	}
	if s.IsEmpty() {
		return false
	}
	return o.Subtract(s).IsEmpty()
}

// Equal reports whether s and o contain exactly the same points.
func (s Space) Equal(o Space) bool {
	if s.dim != o.dim || len(s.rects) != len(o.rects) {
		return false
	}
	for i := range s.rects {
		if !s.rects[i].Equal(o.rects[i]) {
			return false
		}
	}
	return true
}

// Each calls f for every point of the space; iteration stops early if f
// returns false. Within the canonical form, rectangles are visited in band
// order and each rectangle in row-major order.
func (s Space) Each(f func(geometry.Point) bool) {
	for _, r := range s.rects {
		if !r.Each(f) {
			return
		}
	}
}

// SplitAt partitions s into its first n points (in Each order) and the
// remainder. n is clamped to [0, Volume()], so one side may be empty at
// the extremes. The fault plane uses it to force equivalence-set splits
// at deterministic positions.
func (s Space) SplitAt(n int64) (Space, Space) {
	if n <= 0 {
		return Empty(s.dim), s
	}
	var head []geometry.Point
	s.Each(func(p geometry.Point) bool {
		head = append(head, p)
		return int64(len(head)) < n
	})
	h := FromPoints(s.dim, head...)
	return h, s.Subtract(h)
}

// Key returns a compact string uniquely identifying the point set; equal
// spaces (by Equal) have equal keys. Useful as a map key for memoization.
func (s Space) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "d%d", s.dim)
	for _, r := range s.rects {
		b.WriteByte(';')
		for a := 0; a < s.dim; a++ {
			fmt.Fprintf(&b, "%d,%d,", r.Lo.C[a], r.Hi.C[a])
		}
	}
	return b.String()
}

// String formats the space for debugging.
func (s Space) String() string {
	if s.IsEmpty() {
		return fmt.Sprintf("{empty d%d}", s.dim)
	}
	parts := make([]string, len(s.rects))
	for i, r := range s.rects {
		parts[i] = r.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// canon converts an arbitrary (possibly overlapping) rectangle list into the
// canonical band decomposition described in the package comment.
func canon(rs []geometry.Rect, dim int) []geometry.Rect {
	if len(rs) == 0 {
		return nil
	}
	if dim == 1 {
		return canon1(rs)
	}
	axis := dim - 1

	// Collect distinct band boundaries along the highest axis.
	bounds := make([]int64, 0, 2*len(rs))
	for _, r := range rs {
		bounds = append(bounds, r.Lo.C[axis], r.Hi.C[axis]+1)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	bounds = dedup64(bounds)

	type band struct {
		lo, hi int64           // inclusive range on axis
		cross  []geometry.Rect // canonical (dim-1) cross-section
	}
	var bands []band
	for bi := 0; bi+1 < len(bounds); bi++ {
		lo, hi := bounds[bi], bounds[bi+1]-1
		var cross []geometry.Rect
		for _, r := range rs {
			if r.Lo.C[axis] <= lo && hi <= r.Hi.C[axis] {
				// Project r to dim-1 by dropping the highest axis.
				p := r
				p.Dim = dim - 1
				p.Lo.C[axis] = 0
				p.Hi.C[axis] = 0
				cross = append(cross, p)
			}
		}
		if len(cross) == 0 {
			continue
		}
		cross = canon(cross, dim-1)
		// Merge with previous band when contiguous and identical.
		if n := len(bands); n > 0 && bands[n-1].hi+1 == lo && sameRects(bands[n-1].cross, cross) {
			bands[n-1].hi = hi
			continue
		}
		bands = append(bands, band{lo: lo, hi: hi, cross: cross})
	}

	var out []geometry.Rect
	for _, b := range bands {
		for _, c := range b.cross {
			r := c
			r.Dim = dim
			r.Lo.C[axis] = b.lo
			r.Hi.C[axis] = b.hi
			out = append(out, r)
		}
	}
	return out
}

// canon1 merges 1-D intervals into a sorted list of disjoint,
// non-adjacent intervals.
func canon1(rs []geometry.Rect) []geometry.Rect {
	sorted := make([]geometry.Rect, len(rs))
	copy(sorted, rs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo.C[0] < sorted[j].Lo.C[0] })
	var out []geometry.Rect
	for _, r := range sorted {
		if n := len(out); n > 0 && r.Lo.C[0] <= out[n-1].Hi.C[0]+1 {
			if r.Hi.C[0] > out[n-1].Hi.C[0] {
				out[n-1].Hi.C[0] = r.Hi.C[0]
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

func sameRects(a, b []geometry.Rect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func dedup64(xs []int64) []int64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
