// Package field provides field spaces and field masks.
//
// A region stores multiple named fields (e.g. Node.up and Node.down in the
// paper's Figure 1), and the coherence analyses run independently per field:
// two tasks touching different fields of the same points never interfere.
// Field masks are compact bitsets used to route requirements to the
// per-field analysis state.
package field

import (
	"fmt"
	"math/bits"
)

// ID identifies a field within a Space. IDs are dense small integers
// assigned in creation order.
type ID int

// MaxFields is the maximum number of fields in one field space, bounded so
// that a Mask fits in one machine word.
const MaxFields = 64

// Space is a collection of named fields, analogous to a Legion field space.
type Space struct {
	names  []string
	byName map[string]ID
}

// NewSpace creates an empty field space.
func NewSpace() *Space {
	return &Space{byName: make(map[string]ID)}
}

// Add creates a new field with the given name and returns its ID. Adding a
// duplicate name or exceeding MaxFields panics: field layout is a static
// program property, so these are programming errors.
func (s *Space) Add(name string) ID {
	if _, dup := s.byName[name]; dup {
		panic(fmt.Sprintf("field: duplicate field %q", name))
	}
	if len(s.names) >= MaxFields {
		panic("field: too many fields")
	}
	id := ID(len(s.names))
	s.names = append(s.names, name)
	s.byName[name] = id
	return id
}

// Lookup returns the ID for name; ok is false if the field does not exist.
func (s *Space) Lookup(name string) (ID, bool) {
	id, ok := s.byName[name]
	return id, ok
}

// Name returns the name of field id.
func (s *Space) Name(id ID) string { return s.names[id] }

// Len returns the number of fields.
func (s *Space) Len() int { return len(s.names) }

// All returns a mask containing every field in the space.
func (s *Space) All() Mask {
	if len(s.names) == MaxFields {
		return Mask(^uint64(0))
	}
	return Mask(uint64(1)<<uint(len(s.names)) - 1)
}

// Mask is a set of field IDs.
type Mask uint64

// MaskOf returns the mask containing the given fields.
func MaskOf(ids ...ID) Mask {
	var m Mask
	for _, id := range ids {
		m |= 1 << uint(id)
	}
	return m
}

// Has reports whether the mask contains id.
func (m Mask) Has(id ID) bool { return m&(1<<uint(id)) != 0 }

// With returns the mask with id added.
func (m Mask) With(id ID) Mask { return m | 1<<uint(id) }

// Without returns the mask with id removed.
func (m Mask) Without(id ID) Mask { return m &^ (1 << uint(id)) }

// Intersect returns the fields present in both masks.
func (m Mask) Intersect(o Mask) Mask { return m & o }

// Union returns the fields present in either mask.
func (m Mask) Union(o Mask) Mask { return m | o }

// IsEmpty reports whether the mask has no fields.
func (m Mask) IsEmpty() bool { return m == 0 }

// Count returns the number of fields in the mask.
func (m Mask) Count() int { return bits.OnesCount64(uint64(m)) }

// Each calls f for every field in the mask in increasing ID order.
func (m Mask) Each(f func(ID)) {
	for m != 0 {
		id := ID(bits.TrailingZeros64(uint64(m)))
		f(id)
		m = m.Without(id)
	}
}
