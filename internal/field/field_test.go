package field

import "testing"

func TestSpaceAddLookup(t *testing.T) {
	s := NewSpace()
	up := s.Add("up")
	down := s.Add("down")
	if up == down {
		t.Fatal("distinct fields share an ID")
	}
	if got, ok := s.Lookup("up"); !ok || got != up {
		t.Errorf("Lookup(up) = %v, %v", got, ok)
	}
	if _, ok := s.Lookup("sideways"); ok {
		t.Error("Lookup of missing field succeeded")
	}
	if s.Name(down) != "down" {
		t.Errorf("Name(down) = %q", s.Name(down))
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSpaceDuplicatePanics(t *testing.T) {
	s := NewSpace()
	s.Add("x")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate field")
		}
	}()
	s.Add("x")
}

func TestSpaceTooManyPanics(t *testing.T) {
	s := NewSpace()
	for i := 0; i < MaxFields; i++ {
		s.Add(string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic past MaxFields")
		}
	}()
	s.Add("overflow")
}

func TestSpaceAll(t *testing.T) {
	s := NewSpace()
	a := s.Add("a")
	b := s.Add("b")
	all := s.All()
	if !all.Has(a) || !all.Has(b) || all.Count() != 2 {
		t.Errorf("All = %b", all)
	}
}

func TestMaskOps(t *testing.T) {
	m := MaskOf(0, 3, 5)
	if !m.Has(0) || !m.Has(3) || !m.Has(5) || m.Has(1) {
		t.Errorf("MaskOf membership wrong: %b", m)
	}
	if m.Count() != 3 {
		t.Errorf("Count = %d", m.Count())
	}
	if m.Without(3).Has(3) {
		t.Error("Without failed")
	}
	if !m.With(7).Has(7) {
		t.Error("With failed")
	}
	if got := m.Intersect(MaskOf(3, 5, 9)); got != MaskOf(3, 5) {
		t.Errorf("Intersect = %b", got)
	}
	if got := MaskOf(1).Union(MaskOf(2)); got != MaskOf(1, 2) {
		t.Errorf("Union = %b", got)
	}
	if !Mask(0).IsEmpty() || m.IsEmpty() {
		t.Error("IsEmpty wrong")
	}
}

func TestMaskEachOrder(t *testing.T) {
	var got []ID
	MaskOf(5, 1, 9).Each(func(id ID) { got = append(got, id) })
	want := []ID{1, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("Each = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Each = %v, want %v", got, want)
		}
	}
}
