package region

import (
	"fmt"
	"io"
	"strings"
)

// Print writes an ASCII rendition of the region tree in the style of the
// paper's Figure 2(c): regions at even depths, partition triangles at odd
// depths, annotated with disjointness/completeness and index-space
// summaries.
func (t *Tree) Print(w io.Writer) error {
	var walk func(r *Region, indent int) error
	walk = func(r *Region, indent int) error {
		pad := strings.Repeat("  ", indent)
		vol := r.Space.Volume()
		if _, err := fmt.Fprintf(w, "%s%s  %v (|%d|)\n", pad, r.Name, r.Space.Bounds(), vol); err != nil {
			return err
		}
		for _, p := range r.Partitions {
			kind := "aliased"
			if p.Disjoint {
				kind = "disjoint"
			}
			completeness := "incomplete"
			if p.Complete {
				completeness = "complete"
			}
			if _, err := fmt.Fprintf(w, "%s  △ %s (%s, %s) ×%d\n",
				pad, p.Name, kind, completeness, len(p.Subregions)); err != nil {
				return err
			}
			for _, sub := range p.Subregions {
				if err := walk(sub, indent+2); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(t.Root, 0)
}
