package region

import (
	"strings"
	"testing"

	"visibility/internal/field"
	"visibility/internal/geometry"
	"visibility/internal/index"
)

func newNodeTree(t *testing.T) (*Tree, *Partition, *Partition) {
	t.Helper()
	fs := field.NewSpace()
	fs.Add("up")
	fs.Add("down")
	tree := NewTree("N", index.FromRect(geometry.R1(0, 11)), fs)

	// Primary: disjoint, complete blocks of 4.
	primary := tree.Root.Partition("P", []index.Space{
		index.FromRect(geometry.R1(0, 3)),
		index.FromRect(geometry.R1(4, 7)),
		index.FromRect(geometry.R1(8, 11)),
	})
	// Ghost: aliased halos of width 3 on a ring (as in Fig. 2(b), some
	// elements belong to more than one ghost subregion).
	ghost := tree.Root.Partition("G", []index.Space{
		index.FromRects(1, geometry.R1(4, 6), geometry.R1(9, 11)),
		index.FromRects(1, geometry.R1(1, 3), geometry.R1(8, 10)),
		index.FromRects(1, geometry.R1(0, 2), geometry.R1(5, 7)),
	})
	return tree, primary, ghost
}

func TestPartitionProperties(t *testing.T) {
	_, primary, ghost := newNodeTree(t)
	if !primary.Disjoint || !primary.Complete || !primary.DisjointComplete() {
		t.Errorf("primary should be disjoint+complete: %v", primary)
	}
	if ghost.Disjoint {
		t.Errorf("ghost should be aliased: %v", ghost)
	}
	if !ghost.Complete {
		// G covers 0..11 here by construction; verify the computed value
		// matches the actual contents rather than assuming.
		union := index.Empty(1)
		for _, s := range ghost.Subregions {
			union = union.Union(s.Space)
		}
		if union.Equal(index.FromRect(geometry.R1(0, 11))) {
			t.Errorf("ghost covers the root but Complete=false")
		}
	}
}

func TestIncompletePartition(t *testing.T) {
	fs := field.NewSpace()
	fs.Add("v")
	tree := NewTree("A", index.FromRect(geometry.R1(0, 9)), fs)
	p := tree.Root.Partition("Q", []index.Space{
		index.FromRect(geometry.R1(0, 3)),
		index.FromRect(geometry.R1(6, 9)),
	})
	if !p.Disjoint {
		t.Error("Q should be disjoint")
	}
	if p.Complete {
		t.Error("Q should be incomplete (4..5 uncovered)")
	}
}

func TestPathAndAncestry(t *testing.T) {
	tree, primary, _ := newNodeTree(t)
	p1 := primary.Subregions[1]

	path := p1.Path()
	if len(path) != 2 || path[0] != tree.Root || path[1] != p1 {
		t.Errorf("Path = %v", path)
	}
	if !tree.Root.IsAncestorOf(p1) {
		t.Error("root should be ancestor of P[1]")
	}
	if p1.IsAncestorOf(tree.Root) {
		t.Error("P[1] is not ancestor of root")
	}
	if p1.IsAncestorOf(p1) {
		t.Error("ancestry is strict")
	}
	if p1.ParentRegion() != tree.Root {
		t.Error("ParentRegion wrong")
	}
	if !tree.Root.IsRoot() || p1.IsRoot() {
		t.Error("IsRoot wrong")
	}
	if p1.Depth() != 2 || tree.Root.Depth() != 0 {
		t.Errorf("depths: root=%d p1=%d", tree.Root.Depth(), p1.Depth())
	}

	// Nested partition.
	nested := p1.Partition("PP", []index.Space{
		index.FromRect(geometry.R1(4, 5)),
		index.FromRect(geometry.R1(6, 7)),
	})
	leaf := nested.Subregions[0]
	if got := leaf.Path(); len(got) != 3 || got[1] != p1 {
		t.Errorf("nested Path = %v", got)
	}
	if leaf.Depth() != 4 {
		t.Errorf("nested depth = %d", leaf.Depth())
	}
	if !tree.Root.IsAncestorOf(leaf) || !p1.IsAncestorOf(leaf) {
		t.Error("nested ancestry wrong")
	}
}

func TestMayOverlap(t *testing.T) {
	_, primary, ghost := newNodeTree(t)
	// P[0]=0..3 overlaps G[1]={2..3,8..9}.
	if !primary.Subregions[0].MayOverlap(ghost.Subregions[1]) {
		t.Error("P[0] should overlap G[1]")
	}
	// P[0]=0..3 does not overlap G[0]={4..5,10..11}.
	if primary.Subregions[0].MayOverlap(ghost.Subregions[0]) {
		t.Error("P[0] should not overlap G[0]")
	}
	// Disjoint primary pieces never overlap.
	if primary.Subregions[0].MayOverlap(primary.Subregions[1]) {
		t.Error("disjoint siblings overlap")
	}
}

func TestRegionLookupAndCounts(t *testing.T) {
	tree, primary, ghost := newNodeTree(t)
	if tree.NumRegions() != 7 { // root + 3 + 3
		t.Errorf("NumRegions = %d", tree.NumRegions())
	}
	if tree.NumPartitions() != 2 {
		t.Errorf("NumPartitions = %d", tree.NumPartitions())
	}
	if tree.Region(primary.Subregions[2].ID) != primary.Subregions[2] {
		t.Error("Region lookup by ID failed")
	}
	if tree.Region(ghost.Subregions[0].ID) != ghost.Subregions[0] {
		t.Error("Region lookup by ID failed")
	}
	if tree.Root.Partitions[0] != primary || tree.Root.Partitions[1] != ghost {
		t.Error("partition order wrong")
	}
}

func TestPartitionOutOfBoundsPanics(t *testing.T) {
	fs := field.NewSpace()
	fs.Add("v")
	tree := NewTree("A", index.FromRect(geometry.R1(0, 9)), fs)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-bounds piece")
		}
	}()
	tree.Root.Partition("bad", []index.Space{index.FromRect(geometry.R1(5, 15))})
}

func TestEmptyPieceAllowed(t *testing.T) {
	fs := field.NewSpace()
	fs.Add("v")
	tree := NewTree("A", index.FromRect(geometry.R1(0, 9)), fs)
	p := tree.Root.Partition("sparse", []index.Space{
		index.Empty(1),
		index.FromRect(geometry.R1(0, 9)),
	})
	if !p.Disjoint || !p.Complete {
		t.Errorf("empty piece should not break disjoint/complete: %v", p)
	}
}

func TestPartitionAt(t *testing.T) {
	tree, primary, ghost := newNodeTree(t)
	if tree.PartitionAt(0) != primary || tree.PartitionAt(1) != ghost {
		t.Error("PartitionAt order should be creation order")
	}
}

func TestPartitionSpace(t *testing.T) {
	_, primary, ghost := newNodeTree(t)
	if !primary.Space().Equal(index.FromRect(geometry.R1(0, 11))) {
		t.Errorf("primary space = %v", primary.Space())
	}
	if ghost.Space().IsEmpty() {
		t.Error("ghost space empty")
	}
}

func TestTreePrint(t *testing.T) {
	tree, _, _ := newNodeTree(t)
	var b strings.Builder
	if err := tree.Print(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"N  [0..11] (|12|)", "△ P (disjoint, complete) ×3", "△ G (aliased", "P[2]", "G[0]"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q:\n%s", want, out)
		}
	}
}

func TestStringers(t *testing.T) {
	tree, primary, ghost := newNodeTree(t)
	if !strings.Contains(primary.String(), "disjoint,complete") {
		t.Errorf("primary String = %q", primary.String())
	}
	if !strings.Contains(ghost.String(), "aliased") {
		t.Errorf("ghost String = %q", ghost.String())
	}
	if !strings.Contains(tree.Root.String(), "N") {
		t.Errorf("region String = %q", tree.Root.String())
	}
}
