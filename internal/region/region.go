// Package region implements region trees: hierarchies of logical regions
// and partitions as in Legion (paper §2, Figure 2).
//
// A region names a set of points (its index space) in a field space shared
// by the whole tree. A partition of a region is an array of subregions;
// partitions may be disjoint or aliased, and complete or incomplete, and a
// region may have any number of partitions, which is exactly what
// name-based systems forbid and content-based coherence supports.
package region

import (
	"fmt"

	"visibility/internal/field"
	"visibility/internal/index"
)

// Tree is a region tree: a root region, its partitions, their subregions,
// and so on, all sharing one field space.
type Tree struct {
	Root   *Region
	Fields *field.Space

	regions    []*Region
	partitions []*Partition
}

// Region is a node in the region tree naming a set of points.
type Region struct {
	ID    int
	Name  string
	Space index.Space

	// Parent is the partition this region is a subregion of; nil for the
	// root. Index is this region's position within Parent.
	Parent *Partition
	Index  int

	// Partitions are the partitions of this region, in creation order.
	Partitions []*Partition

	tree  *Tree
	depth int
}

// Partition is an array of subregions of a parent region.
type Partition struct {
	ID         int
	Name       string
	Parent     *Region
	Subregions []*Region

	// Disjoint reports that no two subregions share a point; Complete
	// reports that the subregions cover the parent. Both are computed at
	// creation (content-based systems can decide these properties exactly).
	Disjoint bool
	Complete bool

	space index.Space // union of subregion spaces
}

// Space returns the union of the partition's subregion spaces.
func (p *Partition) Space() index.Space { return p.space }

// NewTree creates a region tree whose root region holds space with the
// given field space.
func NewTree(name string, space index.Space, fields *field.Space) *Tree {
	t := &Tree{Fields: fields}
	t.Root = &Region{ID: 0, Name: name, Space: space, tree: t, depth: 0}
	t.regions = []*Region{t.Root}
	return t
}

// NumRegions returns the number of regions ever created in the tree.
func (t *Tree) NumRegions() int { return len(t.regions) }

// NumPartitions returns the number of partitions ever created in the tree.
func (t *Tree) NumPartitions() int { return len(t.partitions) }

// Region returns the region with the given ID.
func (t *Tree) Region(id int) *Region { return t.regions[id] }

// PartitionAt returns the i-th partition in creation order.
func (t *Tree) PartitionAt(i int) *Partition { return t.partitions[i] }

// Partition creates a partition of r named name with one subregion per
// element of pieces. Pieces must be subsets of r's space; empty pieces are
// allowed (they simply never interfere). Disjointness and completeness are
// computed exactly from the contents.
func (r *Region) Partition(name string, pieces []index.Space) *Partition {
	t := r.tree
	p := &Partition{
		ID:       len(t.partitions),
		Name:     name,
		Parent:   r,
		Disjoint: true,
	}
	covered := index.Empty(r.Space.Dim())
	for i, pc := range pieces {
		if !r.Space.Covers(pc) {
			panic(fmt.Sprintf("region: piece %d of %s is not a subset of %s", i, name, r.Name))
		}
		if p.Disjoint && covered.Overlaps(pc) {
			p.Disjoint = false
		}
		covered = covered.Union(pc)
		sub := &Region{
			ID:     len(t.regions),
			Name:   fmt.Sprintf("%s[%d]", name, i),
			Space:  pc,
			Parent: p,
			Index:  i,
			tree:   t,
			depth:  r.depth + 2, // partition node sits between
		}
		t.regions = append(t.regions, sub)
		p.Subregions = append(p.Subregions, sub)
	}
	p.Complete = covered.Equal(r.Space)
	p.space = covered
	t.partitions = append(t.partitions, p)
	r.Partitions = append(r.Partitions, p)
	return p
}

// Tree returns the tree this region belongs to.
func (r *Region) Tree() *Tree { return r.tree }

// Depth returns the region's depth in the tree counting both region and
// partition levels (root = 0, a subregion of a root partition = 2).
func (r *Region) Depth() int { return r.depth }

// IsRoot reports whether r is the tree's root region.
func (r *Region) IsRoot() bool { return r.Parent == nil }

// ParentRegion returns the region above r (the parent partition's parent),
// or nil for the root.
func (r *Region) ParentRegion() *Region {
	if r.Parent == nil {
		return nil
	}
	return r.Parent.Parent
}

// Path returns the regions from the root down to r, inclusive.
func (r *Region) Path() []*Region {
	var rev []*Region
	for cur := r; cur != nil; cur = cur.ParentRegion() {
		rev = append(rev, cur)
	}
	out := make([]*Region, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// IsAncestorOf reports whether r is a strict ancestor region of o.
func (r *Region) IsAncestorOf(o *Region) bool {
	for cur := o.ParentRegion(); cur != nil; cur = cur.ParentRegion() {
		if cur == r {
			return true
		}
	}
	return false
}

// MayOverlap reports whether r and o can share points. For regions in the
// same tree this is an exact content-based test.
func (r *Region) MayOverlap(o *Region) bool {
	return r.Space.Overlaps(o.Space)
}

func (r *Region) String() string {
	return fmt.Sprintf("%s%v", r.Name, r.Space.Bounds())
}

// DisjointComplete reports whether the partition is both disjoint and
// complete; such partitions define natural bounding volume hierarchies for
// the ray-casting algorithm (§7.1).
func (p *Partition) DisjointComplete() bool { return p.Disjoint && p.Complete }

func (p *Partition) String() string {
	kind := "aliased"
	if p.Disjoint {
		kind = "disjoint"
	}
	if p.Complete {
		kind += ",complete"
	} else {
		kind += ",incomplete"
	}
	return fmt.Sprintf("%s(%s)×%d", p.Name, kind, len(p.Subregions))
}
