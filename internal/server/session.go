package server

import (
	"fmt"
	"sync"
	"time"

	"visibility"
	"visibility/internal/fault"
	"visibility/internal/obs"
	"visibility/internal/obs/recorder"
	"visibility/internal/wire"
)

// session owns one tenant's runtime. The Runtime's single-goroutine rule
// is enforced structurally: every operation that touches rt or env is a
// job, and all jobs run on the session's one worker goroutine, in FIFO
// order — so a snapshot requested after a batch observes the batch
// (read-after-launch coherence), and two tenants never contend.
type session struct {
	id        string
	srv       *Server
	algorithm string
	tracing   bool
	autotrace bool
	shards    int
	created   time.Time
	seq       int64 // numeric id journaled in flight-recorder events

	// rt and env are touched only by the worker goroutine (and by the
	// creating goroutine before the worker starts — createSession's
	// factory callbacks run in the worker's domain by handoff).
	//
	// confined to session-worker
	rt *visibility.Runtime
	// confined to session-worker
	env *wire.Env

	// metrics and spans are this session's private observability surface;
	// instrument reads are atomic, but computed metrics (analyzer stats)
	// are only safe to snapshot from the worker.
	metrics *obs.Registry
	spans   *obs.Buffer

	jobs chan job
	done chan struct{} // closed when the worker exits

	mu       sync.Mutex
	closing  bool      // guarded by mu
	failure  error     // guarded by mu; latched first worker failure
	lastUsed time.Time // guarded by mu
	dumpPath string    // guarded by mu; recorder dump written on failure
}

// job is one unit of worker-goroutine work; sync callers wait on done.
// tc, when valid, is the request trace context the job runs under: the
// worker records the queue wait as a child span and installs tc on the
// session span buffer so analysis spans parent under the HTTP span.
type job struct {
	// fn is the job body; it executes only on the session worker
	// goroutine, inside run's recover envelope.
	//
	// confined to session-worker
	fn   func()
	done chan struct{} // nil for fire-and-forget jobs
	tc   obs.TraceContext
	enq  int64 // enqueue time on the session span clock
}

var (
	errSessionBusy    = fmt.Errorf("session queue full")
	errSessionClosing = fmt.Errorf("session is closing")
)

// newSession builds a session around an existing runtime and environment
// (created by the caller; ownership transfers to the worker goroutine the
// moment run starts).
func (srv *Server) newSession(id, algorithm string, tracing, autotrace bool, shards int, rt *visibility.Runtime, env *wire.Env, metrics *obs.Registry, spans *obs.Buffer) *session {
	s := &session{
		id:        id,
		srv:       srv,
		algorithm: algorithm,
		tracing:   tracing,
		autotrace: autotrace,
		shards:    shards,
		created:   time.Now(),
		rt:        rt,
		env:       env,
		metrics:   metrics,
		spans:     spans,
		jobs:      make(chan job, srv.cfg.MaxQueue),
		done:      make(chan struct{}),
		lastUsed:  time.Now(),
	}
	go s.run()
	return s
}

// run is the worker loop: it drains jobs until the channel closes, then
// releases the runtime. Every accepted job runs exactly once, even during
// close, so sync callers never hang.
//
// confined to session-worker
func (s *session) run() {
	defer close(s.done)
	for j := range s.jobs {
		if j.tc.Valid() {
			// The time since enqueue is the queue-wait child of the HTTP
			// span; the job's own spans (analysis phases) parent directly
			// under the HTTP span via the installed context.
			s.spans.Record("queue.wait", "queue", j.enq, s.spans.Now(), j.tc)
			s.spans.SetContext(j.tc)
		}
		s.srv.rec.Log(recorder.KindJobStart, s.seq, 0)
		s.exec(func() {
			// Fault plane: an injected crash mid-job takes exactly the path
			// a real kernel panic would — recovered by exec, latched as the
			// session failure.
			s.srv.cfg.Faults.Crash(fault.WorkerPanic, s.seq)
			j.fn()
		})
		s.srv.rec.Log(recorder.KindJobDone, s.seq, 0)
		if j.tc.Valid() {
			s.spans.SetContext(obs.TraceContext{})
		}
		if j.done != nil {
			close(j.done)
		}
		s.srv.jobDone()
	}
	s.exec(func() { s.rt.Close() })
}

// exec runs one job, converting a panic into a latched session failure —
// one tenant's malformed computation must not take the process down.
func (s *session) exec(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			s.latchFailure(fmt.Errorf("session worker: %v", r))
		}
	}()
	fn()
}

// enqueue admits one job to the session queue. The closing flag and the
// send share the mutex with beginClose, so a send can never race the
// close of the channel.
func (s *session) enqueue(j job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return errSessionClosing
	}
	j.enq = s.spans.Now()
	select {
	case s.jobs <- j:
		s.lastUsed = time.Now()
		return nil
	default:
		return errSessionBusy
	}
}

// beginClose initiates shutdown: exactly one caller closes the channel,
// under the same mutex enqueue sends under.
func (s *session) beginClose() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return false
	}
	s.closing = true
	close(s.jobs)
	return true
}

// latchedFailure returns the first worker failure, if any.
func (s *session) latchedFailure() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failure
}

// latchFailure records err as the session failure if none is latched yet;
// the first latch triggers the server's failure reaction (flight-recorder
// event and, when configured, a dump to disk).
func (s *session) latchFailure(err error) {
	s.mu.Lock()
	first := s.failure == nil
	if first {
		s.failure = err
	}
	s.mu.Unlock()
	if first {
		s.srv.sessionFailed(s)
	}
}

// setDumpPath records where the failure-triggered recorder dump landed.
func (s *session) setDumpPath(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dumpPath == "" {
		s.dumpPath = path
	}
}

// recorderDump returns the failure dump path, if one was written.
func (s *session) recorderDump() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dumpPath
}

// idleSince reports the last accepted request time and the current queue
// depth, for the janitor.
func (s *session) idleSince() (time.Time, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastUsed, len(s.jobs)
}
