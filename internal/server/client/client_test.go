package client

import (
	"testing"
	"time"
)

// TestRetryDelayJitterBounds pins the backpressure contract: every retry
// waits at least the advertised delay, never more than 1.5x of it, and
// delays actually vary — synchronized clients must not re-collide on the
// server at exact Retry-After boundaries.
func TestRetryDelayJitterBounds(t *testing.T) {
	const base = 100 * time.Millisecond
	distinct := make(map[time.Duration]bool)
	for i := 0; i < 200; i++ {
		d := retryDelay(base)
		if d < base || d > base+base/2 {
			t.Fatalf("retryDelay(%v) = %v outside [%v, %v]", base, d, base, base+base/2)
		}
		distinct[d] = true
	}
	if len(distinct) < 2 {
		t.Errorf("200 draws produced %d distinct delays — jitter missing", len(distinct))
	}
	if got := retryDelay(0); got != 0 {
		t.Errorf("retryDelay(0) = %v, want 0", got)
	}
}
