// Package client is the Go client for the visserve analysis service: it
// speaks the wire format over HTTP, honors the server's backpressure
// contract (429 + Retry-After is retried with the advertised delay plus
// bounded random jitter, up to a bounded attempt budget), and mirrors
// the session lifecycle — create, submit, query, checkpoint, restore,
// close. Each request carries a W3C traceparent header, so server-side
// spans join the client's trace.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"visibility"
	"visibility/internal/obs"
	"visibility/internal/wire"
)

// Client talks to one visserve instance.
type Client struct {
	base string
	hc   *http.Client
	// MaxRetries bounds 429 retries per request (default 20).
	MaxRetries int
	// RetryWait overrides the server's Retry-After delay when set —
	// tests and load harnesses use a short wait. Jitter still applies.
	RetryWait time.Duration
	// Spans, when non-nil, records one "client.<method> <path>" span per
	// request; its trace context is what the traceparent header carries,
	// so a merged export parents the server's HTTP span under it.
	Spans *obs.Buffer
}

// retryDelay spreads retries over [base, 1.5*base]: synchronized 429
// retries from many clients would otherwise re-collide on the server at
// Retry-After boundaries (thundering herd). The global math/rand source
// is goroutine-safe.
func retryDelay(base time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	return base + time.Duration(rand.Int63n(int64(base)/2+1))
}

// New creates a client for the server at base (e.g.
// "http://127.0.0.1:8080").
func New(base string) *Client {
	return &Client{base: base, hc: &http.Client{}, MaxRetries: 20}
}

// SessionConfig selects the per-session runtime configuration.
type SessionConfig struct {
	Algorithm string `json:"algorithm,omitempty"`
	Tracing   bool   `json:"tracing,omitempty"`
	// Autotrace enables automatic trace memoization for the session: the
	// server detects repeating launch patterns and replays them without
	// re-analysis. Mutually exclusive with Tracing.
	Autotrace bool `json:"autotrace,omitempty"`
	// Shards, when positive, runs the session's analysis through the shard
	// layer with this many parallel shards; results are byte-identical to
	// the unsharded session. Composes with Tracing and Autotrace.
	Shards int `json:"shards,omitempty"`
}

// Session is a handle to one server-side session.
type Session struct {
	c  *Client
	ID string
}

// StatusError is a non-2xx response, with the server's error body.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Code, e.Message)
}

// do issues one request, retrying 429s per the Retry-After header (plus
// jitter), and decodes a JSON body into out when out is non-nil. body,
// when non-nil, is re-readable (bytes.Reader) so retries can rewind it.
// The whole call — retries included — is covered by one client span, and
// every attempt carries its traceparent.
func (c *Client) do(method, path string, body []byte, out any) error {
	sp, tc := c.Spans.BeginSpan("client."+method+" "+path, "client", obs.TraceContext{})
	defer sp.End()
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, c.base+path, rd)
		if err != nil {
			return err
		}
		req.Header.Set("traceparent", tc.Traceparent())
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < c.MaxRetries {
			wait := c.RetryWait
			if wait == 0 {
				secs, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
				if secs < 1 {
					secs = 1
				}
				wait = time.Duration(secs) * time.Second
			}
			time.Sleep(retryDelay(wait))
			continue
		}
		if resp.StatusCode >= 300 {
			var eb struct {
				Error string `json:"error"`
			}
			if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
				return &StatusError{Code: resp.StatusCode, Message: eb.Error}
			}
			return &StatusError{Code: resp.StatusCode, Message: string(data)}
		}
		if out == nil {
			return nil
		}
		switch dst := out.(type) {
		case *[]byte:
			*dst = data
			return nil
		default:
			return json.Unmarshal(data, out)
		}
	}
}

// CreateSession creates a session with the given runtime configuration.
func (c *Client) CreateSession(cfg SessionConfig) (*Session, error) {
	body, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	var resp struct {
		ID string `json:"id"`
	}
	if err := c.do("POST", "/v1/sessions", body, &resp); err != nil {
		return nil, err
	}
	return &Session{c: c, ID: resp.ID}, nil
}

// Session returns a handle to an existing server-side session by id
// (no server round-trip; a bad id surfaces as a 404 on first use).
func (c *Client) Session(id string) *Session {
	return &Session{c: c, ID: id}
}

// Restore creates a session seeded from a checkpoint.
func (c *Client) Restore(checkpoint []byte, cfg SessionConfig) (*Session, error) {
	path := "/v1/sessions/restore?algorithm=" + cfg.Algorithm
	if cfg.Tracing {
		path += "&tracing=true"
	}
	if cfg.Autotrace {
		path += "&autotrace=true"
	}
	if cfg.Shards > 0 {
		path += "&shards=" + strconv.Itoa(cfg.Shards)
	}
	var resp struct {
		ID string `json:"id"`
	}
	if err := c.do("POST", path, checkpoint, &resp); err != nil {
		return nil, err
	}
	return &Session{c: c, ID: resp.ID}, nil
}

// SessionInfo is the server's description of one live session.
type SessionInfo struct {
	ID        string `json:"id"`
	Algorithm string `json:"algorithm"`
	Tracing   bool   `json:"tracing"`
	Autotrace bool   `json:"autotrace"`
	Shards    int    `json:"shards,omitempty"`
	Queued    int    `json:"queued"`
	Failed    string `json:"failed,omitempty"`
}

// Sessions lists the live sessions, sorted by id.
func (c *Client) Sessions() ([]SessionInfo, error) {
	var resp struct {
		Sessions []SessionInfo `json:"sessions"`
	}
	if err := c.do("GET", "/v1/sessions", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Sessions, nil
}

// SpanWindow is one session's recorded span ring.
type SpanWindow struct {
	Spans   []obs.Span `json:"spans"`
	Dropped int64      `json:"dropped"`
}

// DebugSpans returns every live session's span window, keyed by session
// id.
func (c *Client) DebugSpans() (map[string]SpanWindow, error) {
	var out map[string]SpanWindow
	if err := c.do("GET", "/debug/spans", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Metrics returns the merged server + per-session metrics snapshot.
func (c *Client) Metrics() (map[string]json.RawMessage, error) {
	var out map[string]json.RawMessage
	if err := c.do("GET", "/metrics", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// DebugTrace downloads the server's merged Chrome trace-event export
// (HTTP spans + every session's queue/analysis spans, one time axis).
func (c *Client) DebugTrace() ([]byte, error) {
	var raw []byte
	if err := c.do("GET", "/debug/trace", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// RecorderEvent is one flight-recorder event as exposed over the wire.
type RecorderEvent struct {
	T    int64  `json:"t_ns"`
	Kind string `json:"kind"`
	A    int64  `json:"a"`
	B    int64  `json:"b"`
}

// DebugRecorder returns the newest n flight-recorder events (n<=0 uses
// the server default window).
func (c *Client) DebugRecorder(n int) ([]RecorderEvent, error) {
	path := "/debug/recorder"
	if n > 0 {
		path += "?n=" + strconv.Itoa(n)
	}
	var resp struct {
		Events []RecorderEvent `json:"events"`
	}
	if err := c.do("GET", path, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Events, nil
}

// Submit sends one workload to the session; the server queues it on the
// session's worker (202), retried through backpressure.
func (s *Session) Submit(wl *wire.Workload) error {
	var buf bytes.Buffer
	if err := wire.Encode(&buf, wl); err != nil {
		return err
	}
	return s.c.do("POST", "/v1/sessions/"+s.ID+"/workloads", buf.Bytes(), nil)
}

// Snapshot reads the coherent contents of region/field: rows of
// (coordinates..., value), in deterministic point order.
func (s *Session) Snapshot(region, field string) ([][]float64, error) {
	var resp struct {
		Points [][]float64 `json:"points"`
	}
	err := s.c.do("GET", "/v1/sessions/"+s.ID+"/snapshot?region="+region+"&field="+field, nil, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Points, nil
}

// Dependences returns the discovered dependence graph for the tree of
// the named region.
func (s *Session) Dependences(region string) ([]visibility.TaskInfo, error) {
	var resp struct {
		Tasks []visibility.TaskInfo `json:"tasks"`
	}
	if err := s.c.do("GET", "/v1/sessions/"+s.ID+"/graph?region="+region, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Tasks, nil
}

// ExplainResult is the server's provenance answer for one task: the
// resolved region, the task's incoming edges, and — when the query named
// a source task — the O(1) mustPrecede verdict for that (src, task) pair.
type ExplainResult struct {
	Region      string                  `json:"region"`
	Explain     *visibility.TaskExplain `json:"explain"`
	Src         int                     `json:"src"`
	MustPrecede bool                    `json:"mustPrecede"`
}

// Explain returns the provenance of every incoming dependence edge of
// the given task. An empty region selects the server's default (first
// root region, sorted by name).
func (s *Session) Explain(region string, task int) (*ExplainResult, error) {
	path := "/v1/sessions/" + s.ID + "/explain?task=" + strconv.Itoa(task)
	if region != "" {
		path += "&region=" + region
	}
	var out ExplainResult
	if err := s.c.do("GET", path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Why returns the provenance edges from src into dst plus whether src
// must precede dst in every legal execution. An empty region selects the
// server's default root region.
func (s *Session) Why(region string, src, dst int) (*ExplainResult, error) {
	path := "/v1/sessions/" + s.ID + "/explain?task=" + strconv.Itoa(dst) + "&src=" + strconv.Itoa(src)
	if region != "" {
		path += "&region=" + region
	}
	var out ExplainResult
	if err := s.c.do("GET", path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CritPath returns the weighted critical-path profile of the session's
// dependence graph; k bounds the bottleneck attribution (k<=0 uses the
// server default). An empty region selects the server's default root
// region.
func (s *Session) CritPath(region string, k int) (*visibility.CritSummary, error) {
	path := "/v1/sessions/" + s.ID + "/critpath"
	sep := "?"
	if region != "" {
		path += sep + "region=" + region
		sep = "&"
	}
	if k > 0 {
		path += sep + "k=" + strconv.Itoa(k)
	}
	var resp struct {
		CritPath *visibility.CritSummary `json:"critpath"`
	}
	if err := s.c.do("GET", path, nil, &resp); err != nil {
		return nil, err
	}
	return resp.CritPath, nil
}

// CritDOT returns the dependence graph in Graphviz format with the
// weighted critical path highlighted and time-annotated.
func (s *Session) CritDOT(region string) (string, error) {
	path := "/v1/sessions/" + s.ID + "/critpath?format=dot"
	if region != "" {
		path += "&region=" + region
	}
	var raw []byte
	if err := s.c.do("GET", path, nil, &raw); err != nil {
		return "", err
	}
	return string(raw), nil
}

// DebugCritPath sweeps every live session and returns per-session,
// per-root-region critical-path summaries (k<=0 uses the server
// default).
func (c *Client) DebugCritPath(k int) (map[string]map[string]visibility.CritSummary, error) {
	path := "/debug/critpath"
	if k > 0 {
		path += "?k=" + strconv.Itoa(k)
	}
	var resp struct {
		Sessions map[string]map[string]visibility.CritSummary `json:"sessions"`
	}
	if err := c.do("GET", path, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Sessions, nil
}

// PromMetrics returns the server's Prometheus text exposition
// (?format=prom on /metrics).
func (c *Client) PromMetrics() ([]byte, error) {
	var raw []byte
	if err := c.do("GET", "/metrics?format=prom", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// DOT returns the dependence graph in Graphviz format.
func (s *Session) DOT(region string) (string, error) {
	var raw []byte
	if err := s.c.do("GET", "/v1/sessions/"+s.ID+"/dot?region="+region, nil, &raw); err != nil {
		return "", err
	}
	return string(raw), nil
}

// Checkpoint downloads the session's checkpoint.
func (s *Session) Checkpoint() ([]byte, error) {
	var raw []byte
	if err := s.c.do("GET", "/v1/sessions/"+s.ID+"/checkpoint", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// Metrics returns the session's metrics snapshot.
func (s *Session) Metrics() (obs.Snapshot, error) {
	var snap obs.Snapshot
	if err := s.c.do("GET", "/v1/sessions/"+s.ID+"/metrics", nil, &snap); err != nil {
		return nil, err
	}
	return snap, nil
}

// Spans returns the session's recorded analysis spans.
func (s *Session) Spans() ([]obs.Span, error) {
	var resp struct {
		Spans []obs.Span `json:"spans"`
	}
	if err := s.c.do("GET", "/v1/sessions/"+s.ID+"/spans", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Spans, nil
}

// Close deletes the session; the server drains its queue and releases
// the runtime before returning.
func (s *Session) Close() error {
	return s.c.do("DELETE", "/v1/sessions/"+s.ID, nil, nil)
}
