// Package client is the Go client for the visserve analysis service: it
// speaks the wire format over HTTP, honors the server's backpressure
// contract (429 + Retry-After is retried with the advertised delay, up to
// a bounded attempt budget), and mirrors the session lifecycle — create,
// submit, query, checkpoint, restore, close.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"visibility"
	"visibility/internal/obs"
	"visibility/internal/wire"
)

// Client talks to one visserve instance.
type Client struct {
	base string
	hc   *http.Client
	// MaxRetries bounds 429 retries per request (default 20).
	MaxRetries int
	// RetryWait overrides the server's Retry-After delay when set —
	// tests and load harnesses use a short wait.
	RetryWait time.Duration
}

// New creates a client for the server at base (e.g.
// "http://127.0.0.1:8080").
func New(base string) *Client {
	return &Client{base: base, hc: &http.Client{}, MaxRetries: 20}
}

// SessionConfig selects the per-session runtime configuration.
type SessionConfig struct {
	Algorithm string `json:"algorithm,omitempty"`
	Tracing   bool   `json:"tracing,omitempty"`
}

// Session is a handle to one server-side session.
type Session struct {
	c  *Client
	ID string
}

// StatusError is a non-2xx response, with the server's error body.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Code, e.Message)
}

// do issues one request, retrying 429s per the Retry-After header, and
// decodes a JSON body into out when out is non-nil. body, when non-nil,
// is re-readable (bytes.Reader) so retries can rewind it.
func (c *Client) do(method, path string, body []byte, out any) error {
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, c.base+path, rd)
		if err != nil {
			return err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < c.MaxRetries {
			wait := c.RetryWait
			if wait == 0 {
				secs, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
				if secs < 1 {
					secs = 1
				}
				wait = time.Duration(secs) * time.Second
			}
			time.Sleep(wait)
			continue
		}
		if resp.StatusCode >= 300 {
			var eb struct {
				Error string `json:"error"`
			}
			if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
				return &StatusError{Code: resp.StatusCode, Message: eb.Error}
			}
			return &StatusError{Code: resp.StatusCode, Message: string(data)}
		}
		if out == nil {
			return nil
		}
		switch dst := out.(type) {
		case *[]byte:
			*dst = data
			return nil
		default:
			return json.Unmarshal(data, out)
		}
	}
}

// CreateSession creates a session with the given runtime configuration.
func (c *Client) CreateSession(cfg SessionConfig) (*Session, error) {
	body, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	var resp struct {
		ID string `json:"id"`
	}
	if err := c.do("POST", "/v1/sessions", body, &resp); err != nil {
		return nil, err
	}
	return &Session{c: c, ID: resp.ID}, nil
}

// Restore creates a session seeded from a checkpoint.
func (c *Client) Restore(checkpoint []byte, cfg SessionConfig) (*Session, error) {
	path := "/v1/sessions/restore?algorithm=" + cfg.Algorithm
	if cfg.Tracing {
		path += "&tracing=true"
	}
	var resp struct {
		ID string `json:"id"`
	}
	if err := c.do("POST", path, checkpoint, &resp); err != nil {
		return nil, err
	}
	return &Session{c: c, ID: resp.ID}, nil
}

// Metrics returns the merged server + per-session metrics snapshot.
func (c *Client) Metrics() (map[string]json.RawMessage, error) {
	var out map[string]json.RawMessage
	if err := c.do("GET", "/metrics", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Submit sends one workload to the session; the server queues it on the
// session's worker (202), retried through backpressure.
func (s *Session) Submit(wl *wire.Workload) error {
	var buf bytes.Buffer
	if err := wire.Encode(&buf, wl); err != nil {
		return err
	}
	return s.c.do("POST", "/v1/sessions/"+s.ID+"/workloads", buf.Bytes(), nil)
}

// Snapshot reads the coherent contents of region/field: rows of
// (coordinates..., value), in deterministic point order.
func (s *Session) Snapshot(region, field string) ([][]float64, error) {
	var resp struct {
		Points [][]float64 `json:"points"`
	}
	err := s.c.do("GET", "/v1/sessions/"+s.ID+"/snapshot?region="+region+"&field="+field, nil, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Points, nil
}

// Dependences returns the discovered dependence graph for the tree of
// the named region.
func (s *Session) Dependences(region string) ([]visibility.TaskInfo, error) {
	var resp struct {
		Tasks []visibility.TaskInfo `json:"tasks"`
	}
	if err := s.c.do("GET", "/v1/sessions/"+s.ID+"/graph?region="+region, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Tasks, nil
}

// DOT returns the dependence graph in Graphviz format.
func (s *Session) DOT(region string) (string, error) {
	var raw []byte
	if err := s.c.do("GET", "/v1/sessions/"+s.ID+"/dot?region="+region, nil, &raw); err != nil {
		return "", err
	}
	return string(raw), nil
}

// Checkpoint downloads the session's checkpoint.
func (s *Session) Checkpoint() ([]byte, error) {
	var raw []byte
	if err := s.c.do("GET", "/v1/sessions/"+s.ID+"/checkpoint", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// Metrics returns the session's metrics snapshot.
func (s *Session) Metrics() (obs.Snapshot, error) {
	var snap obs.Snapshot
	if err := s.c.do("GET", "/v1/sessions/"+s.ID+"/metrics", nil, &snap); err != nil {
		return nil, err
	}
	return snap, nil
}

// Spans returns the session's recorded analysis spans.
func (s *Session) Spans() ([]obs.Span, error) {
	var resp struct {
		Spans []obs.Span `json:"spans"`
	}
	if err := s.c.do("GET", "/v1/sessions/"+s.ID+"/spans", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Spans, nil
}

// Close deletes the session; the server drains its queue and releases
// the runtime before returning.
func (s *Session) Close() error {
	return s.c.do("DELETE", "/v1/sessions/"+s.ID, nil, nil)
}
