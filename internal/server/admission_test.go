package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"visibility/internal/wire"
)

func createSessionHTTP(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Post(url+"/v1/sessions", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session: status %d", resp.StatusCode)
	}
	var body struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.ID
}

func postWorkload(t *testing.T, url, id string, wl *wire.Workload) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := wire.Encode(&buf, wl); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sessions/"+id+"/workloads", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestBackpressureSessionQueue fills one session's bounded queue behind a
// deliberately blocked worker and checks overload surfaces as 429 +
// Retry-After — and that nothing leaks once the queue drains: in-flight
// and session counts return to zero, and the worker goroutines exit.
func TestBackpressureSessionQueue(t *testing.T) {
	baseline := runtime.NumGoroutine()

	srv := New(Config{MaxQueue: 2, MaxInFlight: 64, IdleTimeout: -1})
	hs := httptest.NewServer(srv.Handler())
	id := createSessionHTTP(t, hs.URL)
	s := srv.session(id)
	if s == nil {
		t.Fatal("session not found internally")
	}

	// Park the worker on a job we control.
	release := make(chan struct{})
	started := make(chan struct{})
	if err := srv.submit(s, job{fn: func() { close(started); <-release }}); err != nil {
		t.Fatal(err)
	}
	<-started

	// Fill the queue to its cap.
	for i := 0; i < srv.cfg.MaxQueue; i++ {
		if err := srv.submit(s, job{fn: func() {}}); err != nil {
			t.Fatalf("queue slot %d refused: %v", i, err)
		}
	}

	// The next submission over HTTP must be rejected with the
	// backpressure contract, not buffered.
	resp := postWorkload(t, hs.URL, id, wire.ExampleQuickstart())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	resp.Body.Close()
	if got := srv.metrics.NewCounter("server/admission/rejected").Load(); got == 0 {
		t.Fatal("admission rejection not counted")
	}

	// Release the worker; the queue drains and the same workload is now
	// admitted.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for srv.InFlight() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight jobs never drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp = postWorkload(t, hs.URL, id, wire.ExampleQuickstart())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-drain submit: status %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()

	// Tear down: DELETE waits for the worker, then the process is clean.
	req, _ := http.NewRequest("DELETE", hs.URL+"/v1/sessions/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	if n := srv.SessionCount(); n != 0 {
		t.Fatalf("%d sessions after delete", n)
	}
	if n := srv.InFlight(); n != 0 {
		t.Fatalf("%d jobs in flight after delete", n)
	}
	if err := srv.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	hs.Close()
	http.DefaultClient.CloseIdleConnections()

	// No goroutine leak: the worker, janitor, and runtime pools are gone.
	deadline = time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestBackpressureGlobal exhausts the global in-flight cap across two
// sessions: the second tenant is throttled by the process-wide bound even
// though its own queue is empty.
func TestBackpressureGlobal(t *testing.T) {
	srv := New(Config{MaxQueue: 8, MaxInFlight: 1, IdleTimeout: -1})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer func() {
		if err := srv.Shutdown(t.Context()); err != nil {
			t.Error(err)
		}
	}()

	idA := createSessionHTTP(t, hs.URL)
	idB := createSessionHTTP(t, hs.URL)
	a := srv.session(idA)

	release := make(chan struct{})
	started := make(chan struct{})
	if err := srv.submit(a, job{fn: func() { close(started); <-release }}); err != nil {
		t.Fatal(err)
	}
	<-started
	defer close(release)

	// Session B has a free queue, but the global cap is spent.
	resp := postWorkload(t, hs.URL, idB, wire.ExampleQuickstart())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("global overload: status %d, want 429", resp.StatusCode)
	}
}

// TestSessionLimit bounds concurrent sessions.
func TestSessionLimit(t *testing.T) {
	srv := New(Config{MaxSessions: 2, IdleTimeout: -1})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer func() {
		if err := srv.Shutdown(t.Context()); err != nil {
			t.Error(err)
		}
	}()

	createSessionHTTP(t, hs.URL)
	createSessionHTTP(t, hs.URL)
	resp, err := http.Post(hs.URL+"/v1/sessions", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit create: status %d, want 429", resp.StatusCode)
	}
}

// TestMetricsEndpointShape checks /metrics merges the server registry
// with per-session registries and stays parseable JSON.
func TestMetricsEndpointShape(t *testing.T) {
	srv := New(Config{IdleTimeout: -1})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer func() {
		if err := srv.Shutdown(t.Context()); err != nil {
			t.Error(err)
		}
	}()

	id := createSessionHTTP(t, hs.URL)
	resp := postWorkload(t, hs.URL, id, wire.ExampleQuickstart())
	resp.Body.Close()

	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var body struct {
		Server   map[string]int64            `json:"server"`
		Sessions map[string]map[string]int64 `json:"sessions"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&body); err != nil {
		t.Fatalf("/metrics is not parseable: %v", err)
	}
	if body.Server["server/http/workloads/requests"] == 0 {
		t.Errorf("endpoint request counter missing: %v", body.Server)
	}
	if body.Server["server/http/workloads/latency_us/count"] == 0 {
		t.Errorf("endpoint latency histogram missing: %v", body.Server)
	}
	if _, ok := body.Sessions[id]; !ok {
		t.Errorf("session %s missing from /metrics", id)
	}
	if body.Sessions[id]["sched/cache/misses"]+body.Sessions[id]["sched/cache/hits"] == 0 {
		t.Errorf("session registry missing scheduler counters: %v", body.Sessions[id])
	}
}
