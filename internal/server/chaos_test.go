package server_test

import (
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"visibility/internal/fault"
	"visibility/internal/server"
	"visibility/internal/server/client"
	"visibility/internal/wire"
)

// tenantRows runs n sequentially created sessions through the same
// workload and returns each tenant's snapshot of N/up as marshaled JSON
// (sequential creation pins session seq numbers 1..n, which is what lets
// a fault plan target one tenant deterministically). A nil error slot
// means the tenant completed; the caller decides which errors are
// expected.
func tenantRows(t *testing.T, c *client.Client, n int) ([][]byte, []*client.Session, []error) {
	t.Helper()
	wl := wire.ExampleGraphsim(3)
	rows := make([][]byte, n)
	sessions := make([]*client.Session, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		sess, err := c.CreateSession(client.SessionConfig{})
		if err != nil {
			t.Fatalf("creating session %d: %v", i, err)
		}
		sessions[i] = sess
		if err := sess.Submit(wl); err != nil {
			errs[i] = err
			continue
		}
		got, err := sess.Snapshot("N", "up")
		if err != nil {
			errs[i] = err
			continue
		}
		rows[i], err = json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
	}
	return rows, sessions, errs
}

// TestChaosWorkerKillIsolation kills one tenant's worker mid-stream with
// a targeted fault plan (server.worker.panic pinned to session seq 5 via
// arg=) and requires blast-radius isolation: the victim latches 409, the
// other seven tenants' snapshots are byte-identical to a fault-free run,
// and shutdown leaves no goroutines behind.
func TestChaosWorkerKillIsolation(t *testing.T) {
	baseline := runtime.NumGoroutine()

	const tenants = 8
	const victim = 5 // session seq, 1-based

	// Fault-free baseline.
	_, c0, shutdown0 := newTestServer(t, server.Config{})
	want, sessions, errs := tenantRows(t, c0, tenants)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fault-free tenant %d: %v", i, err)
		}
	}
	for _, s := range sessions {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	shutdown0()

	// Same workloads with the victim's first job crashed.
	inj, err := fault.NewFromString("seed=1;server.worker.panic=every=1,max=1,arg=5")
	if err != nil {
		t.Fatal(err)
	}
	srv, c, shutdown := newTestServer(t, server.Config{Faults: inj})
	got, sessions, errs := tenantRows(t, c, tenants)

	for i := 0; i < tenants; i++ {
		seq := i + 1
		if seq == victim {
			continue
		}
		if errs[i] != nil {
			t.Fatalf("tenant seq %d caught in victim's blast radius: %v", seq, errs[i])
		}
		if string(got[i]) != string(want[i]) {
			t.Fatalf("tenant seq %d snapshot diverges from fault-free run\nfaulted:   %s\nfault-free: %s", seq, got[i], want[i])
		}
	}
	if n := inj.Fires(fault.WorkerPanic); n != 1 {
		t.Fatalf("worker panic fired %d times, want exactly 1", n)
	}

	// The victim's crashed job never applied its workload, and the crash is
	// latched: the next submission must be refused with 409, not retried
	// into a half-built session.
	if err := sessions[victim-1].Submit(wire.ExampleQuickstart()); err == nil {
		t.Fatal("failed session accepted another workload")
	} else if se, ok := err.(*client.StatusError); !ok || se.Code != 409 {
		t.Fatalf("failed-session submit error = %v, want 409", err)
	}

	for _, s := range sessions {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if n := srv.SessionCount(); n != 0 {
		t.Fatalf("%d sessions remain after close", n)
	}
	if n := srv.InFlight(); n != 0 {
		t.Fatalf("%d jobs in flight after close", n)
	}
	shutdown()

	// Leak ledger: the victim's worker goroutine died by panic recovery,
	// not by leaking; everything unwinds.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosAdmissionBurst arms the synthetic admission-pressure site on a
// deterministic schedule and checks the overload contract end to end:
// scheduled requests bounce with 429, the rejection is counted, nothing
// is admitted half-way (no in-flight leak), and once the burst schedule
// is exhausted every request succeeds again.
func TestChaosAdmissionBurst(t *testing.T) {
	inj, err := fault.NewFromString("seed=2;server.admit.burst=every=2,max=3")
	if err != nil {
		t.Fatal(err)
	}
	srv, c, shutdown := newTestServer(t, server.Config{Faults: inj})
	defer shutdown()
	c.MaxRetries = 0 // surface every 429 instead of retrying through it

	sess, err := c.CreateSession(client.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Submission 1 declares the quickstart regions; later submissions are
	// task-only batches so a replay of the same stream stays well-formed.
	batch := &wire.Workload{
		Version: wire.Version,
		Tasks: []wire.TaskDecl{{
			Name: "poke",
			Accesses: []wire.AccessDecl{{
				Region: "blocks[0]", Field: "val", Privilege: "write",
				Kernel: &wire.FuncSpec{Name: "fill", Args: map[string]float64{"value": 2}},
			}},
		}},
	}

	// every=2,max=3 rejects admissions 2, 4 and 6; all others pass.
	var got []int
	for i := 1; i <= 8; i++ {
		wl := batch
		if i == 1 {
			wl = wire.ExampleQuickstart()
		}
		err := sess.Submit(wl)
		switch se, ok := err.(*client.StatusError); {
		case err == nil:
		case ok && se.Code == 429:
			got = append(got, i)
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
		if n := srv.InFlight(); n < 0 {
			t.Fatalf("in-flight went negative after submit %d", i)
		}
	}
	if len(got) != 3 || got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Fatalf("burst rejected admissions %v, want [2 4 6]", got)
	}

	// The burst schedule is spent: a snapshot (sync admission) works, and
	// the session is healthy — nothing was half-admitted.
	if _, err := sess.Snapshot("cells", "val"); err != nil {
		t.Fatalf("post-burst snapshot: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.InFlight() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight jobs never drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}
