package server_test

import (
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"visibility"
	"visibility/internal/server"
	"visibility/internal/server/client"
	"visibility/internal/wire"
)

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *client.Client, func()) {
	t.Helper()
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = -1 // no surprise expiry mid-test
	}
	srv := server.New(cfg)
	hs := httptest.NewServer(srv.Handler())
	c := client.New(hs.URL)
	c.RetryWait = 10 * time.Millisecond
	return srv, c, func() {
		if err := srv.Shutdown(t.Context()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		hs.Close()
	}
}

// localRows reads region/field from an in-process runtime in the same
// rows-of-(coords..., value) shape the HTTP snapshot endpoint serves.
func localRows(rt *visibility.Runtime, reg *visibility.Region, field string) [][]float64 {
	dim := reg.Space().Dim()
	var rows [][]float64
	rt.Read(reg, field).Each(func(p visibility.Point, v float64) {
		row := make([]float64, 0, dim+1)
		for a := 0; a < dim; a++ {
			row = append(row, float64(p.C[a]))
		}
		rows = append(rows, append(row, v))
	})
	return rows
}

// TestE2EGraphsim replays the Figure 1 workload over HTTP and requires
// the served snapshot to equal an in-process application of the same
// workload, value for value — the acceptance bar for the wire+server
// stack.
func TestE2EGraphsim(t *testing.T) {
	_, c, shutdown := newTestServer(t, server.Config{})
	defer shutdown()

	wl := wire.ExampleGraphsim(10)
	sess, err := c.CreateSession(client.SessionConfig{Algorithm: "raycast"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(wl); err != nil {
		t.Fatal(err)
	}

	rt := visibility.New(visibility.Config{})
	defer rt.Close()
	env := wire.NewEnv(rt)
	if _, err := env.Apply(wl); err != nil {
		t.Fatal(err)
	}

	for _, field := range []string{"up", "down"} {
		got, err := sess.Snapshot("N", field)
		if err != nil {
			t.Fatal(err)
		}
		want := localRows(rt, env.Region("N"), field)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("field %s: served snapshot diverges from in-process\nserved:   %v\nin-proc:  %v", field, got, want)
		}
	}

	// The dependence graph is served and matches the in-process one.
	got, err := sess.Dependences("N")
	if err != nil {
		t.Fatal(err)
	}
	want := rt.Dependences(env.Region("N"))
	// The served session has two extra inline-read tasks from the
	// snapshot queries above; the common prefix must agree exactly.
	if len(got) < len(want) {
		t.Fatalf("served graph has %d tasks, in-process %d", len(got), len(want))
	}
	if !reflect.DeepEqual(got[:len(want)], want) {
		t.Fatalf("dependence graphs diverge:\nserved:  %+v\nlocal:   %+v", got[:len(want)], want)
	}

	dot, err := sess.DOT("N")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "t1") {
		t.Fatalf("DOT output looks wrong:\n%s", dot)
	}

	// Session observability: analyzer counters and analysis spans are
	// populated and namespaced per session.
	snap, err := sess.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap["analyzer/N/launches"] == 0 {
		t.Errorf("session metrics missing analyzer launches: %v", snap)
	}
	spans, err := sess.Spans()
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Error("no analysis spans recorded for the session")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestE2ECheckpointRestore round-trips a session over the HTTP
// checkpoint/restore pair and keeps computing on the restored state.
func TestE2ECheckpointRestore(t *testing.T) {
	_, c, shutdown := newTestServer(t, server.Config{})
	defer shutdown()

	sess, err := c.CreateSession(client.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(wire.ExampleQuickstart()); err != nil {
		t.Fatal(err)
	}
	before, err := sess.Snapshot("cells", "val")
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := sess.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	restored, err := c.Restore(ckpt, client.SessionConfig{Algorithm: "warnock"})
	if err != nil {
		t.Fatal(err)
	}
	after, err := restored.Snapshot("cells", "val")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("restored snapshot diverges from checkpointed one")
	}

	// The restored session accepts batches against restored regions.
	batch := &wire.Workload{
		Version: wire.Version,
		Tasks: []wire.TaskDecl{{
			Name: "post-restore",
			Accesses: []wire.AccessDecl{{
				Region: "blocks[1]", Field: "val", Privilege: "write",
				Kernel: &wire.FuncSpec{Name: "fill", Args: map[string]float64{"value": -1}},
			}},
		}},
	}
	if err := restored.Submit(batch); err != nil {
		t.Fatal(err)
	}
	rows, err := restored.Snapshot("cells", "val")
	if err != nil {
		t.Fatal(err)
	}
	if rows[30][1] != -1 {
		t.Fatalf("post-restore write not visible: row %v", rows[30])
	}
	if err := restored.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSessions runs 8 tenants concurrently (the -race bar from
// the issue): every session must compute the identical deterministic
// result, and the per-session metrics registries must stay disjoint —
// each one sees exactly its own launches.
func TestConcurrentSessions(t *testing.T) {
	srv, c, shutdown := newTestServer(t, server.Config{})
	defer shutdown()

	const sessions = 8
	wl := wire.ExampleGraphsim(3)

	type result struct {
		rows     [][]float64
		launches int64
		err      error
	}
	results := make([]result, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := &results[i]
			sess, err := c.CreateSession(client.SessionConfig{})
			if err != nil {
				res.err = err
				return
			}
			defer func() {
				if err := sess.Close(); err != nil && res.err == nil {
					res.err = err
				}
			}()
			if res.err = sess.Submit(wl); res.err != nil {
				return
			}
			if res.rows, res.err = sess.Snapshot("N", "up"); res.err != nil {
				return
			}
			snap, err := sess.Metrics()
			if err != nil {
				res.err = err
				return
			}
			res.launches = snap["analyzer/N/launches"]
		}(i)
	}
	wg.Wait()

	for i, res := range results {
		if res.err != nil {
			t.Fatalf("session %d: %v", i, res.err)
		}
		if !reflect.DeepEqual(res.rows, results[0].rows) {
			t.Fatalf("session %d computed a different snapshot than session 0", i)
		}
		// Registries are disjoint: every session saw exactly the same
		// number of launches (its own workload plus its own snapshot
		// read), not a shared accumulating counter.
		if res.launches != results[0].launches {
			t.Fatalf("session %d saw %d launches, session 0 saw %d — registries leak across sessions",
				i, res.launches, results[0].launches)
		}
	}
	if results[0].launches == 0 {
		t.Fatal("sessions recorded zero launches")
	}
	if n := srv.SessionCount(); n != 0 {
		t.Fatalf("after closing all sessions, %d remain", n)
	}
	if n := srv.InFlight(); n != 0 {
		t.Fatalf("after closing all sessions, %d jobs in flight", n)
	}
}

// TestIdleExpiry checks the janitor reclaims abandoned sessions.
func TestIdleExpiry(t *testing.T) {
	srv, c, shutdown := newTestServer(t, server.Config{IdleTimeout: 50 * time.Millisecond})
	defer shutdown()
	if _, err := c.CreateSession(client.SessionConfig{}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.SessionCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDrain checks graceful shutdown: queued work completes, the session
// count reaches zero, and new work is refused with 503.
func TestDrain(t *testing.T) {
	srv := server.New(server.Config{IdleTimeout: -1})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := client.New(hs.URL)

	sess, err := c.CreateSession(client.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		wl := wire.ExampleGraphsim(2)
		wl.Regions[0].Name = fmt.Sprintf("N%d", i)
		for ti := range wl.Tasks {
			for ai := range wl.Tasks[ti].Accesses {
				a := &wl.Tasks[ti].Accesses[ai]
				a.Region = strings.Replace(a.Region, "P[", fmt.Sprintf("P%d[", i), 1)
				a.Region = strings.Replace(a.Region, "G[", fmt.Sprintf("G%d[", i), 1)
			}
		}
		for pi := range wl.Regions[0].Partitions {
			p := &wl.Regions[0].Partitions[pi]
			p.Name = fmt.Sprintf("%s%d", p.Name, i)
			if p.Source != "" {
				p.Source += fmt.Sprint(i)
			}
			if p.Left != "" {
				p.Left += fmt.Sprint(i)
				p.Right += fmt.Sprint(i)
			}
		}
		if err := sess.Submit(wl); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	if n := srv.SessionCount(); n != 0 {
		t.Fatalf("after drain, %d sessions remain", n)
	}
	if n := srv.InFlight(); n != 0 {
		t.Fatalf("after drain, %d jobs in flight", n)
	}
	if _, err := c.CreateSession(client.SessionConfig{}); err == nil {
		t.Fatal("draining server accepted a new session")
	} else if se, ok := err.(*client.StatusError); !ok || se.Code != 503 {
		t.Fatalf("draining create error = %v, want 503", err)
	}
}

// TestBadWorkloadRejected checks strict decoding surfaces as 400 and a
// batch failure latches the session as failed (409 on the next submit).
func TestBadWorkloadRejected(t *testing.T) {
	_, c, shutdown := newTestServer(t, server.Config{})
	defer shutdown()
	sess, err := c.CreateSession(client.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := sess.Close(); err != nil {
			t.Error(err)
		}
	}()

	bad := &wire.Workload{Version: 99}
	if err := sess.Submit(bad); err == nil {
		t.Fatal("server accepted an unsupported version")
	} else if se, ok := err.(*client.StatusError); !ok || se.Code != 400 {
		t.Fatalf("bad workload error = %v, want 400", err)
	}

	// Unknown algorithm at session creation is a 400, not a panic.
	if _, err := c.CreateSession(client.SessionConfig{Algorithm: "zbuffer"}); err == nil {
		t.Fatal("server accepted an unknown algorithm")
	} else if se, ok := err.(*client.StatusError); !ok || se.Code != 400 {
		t.Fatalf("unknown algorithm error = %v, want 400", err)
	}

	// Unknown region in a snapshot query is 404.
	if _, err := sess.Snapshot("nope", "v"); err == nil {
		t.Fatal("snapshot of unknown region succeeded")
	} else if se, ok := err.(*client.StatusError); !ok || se.Code != 404 {
		t.Fatalf("unknown region error = %v, want 404", err)
	}
}
