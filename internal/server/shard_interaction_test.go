package server_test

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"

	"visibility/internal/server"
	"visibility/internal/server/client"
	"visibility/internal/wire"
)

// fetchSessionArtifacts starts a fresh server, creates one session with
// the given config, drives the graphsim workload through it, and returns
// the raw bytes of the provenance-bearing endpoints. Fresh servers number
// sessions identically, so artifacts from two calls compare byte-for-byte.
func fetchSessionArtifacts(t *testing.T, cfg client.SessionConfig) map[string][]byte {
	t.Helper()
	srv := server.New(server.Config{IdleTimeout: -1})
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		if err := srv.Shutdown(t.Context()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		hs.Close()
	}()
	c := client.New(hs.URL)
	c.RetryWait = 10 * time.Millisecond
	sess, err := c.CreateSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(wire.ExampleGraphsim(4)); err != nil {
		t.Fatal(err)
	}
	paths := []string{
		"/v1/sessions/" + sess.ID + "/explain?task=5",
		"/v1/sessions/" + sess.ID + "/explain?task=7&src=1",
		"/v1/sessions/" + sess.ID + "/critpath?k=3",
		"/v1/sessions/" + sess.ID + "/critpath?format=dot",
	}
	out := map[string][]byte{}
	for _, p := range paths {
		out[p] = rawGET(t, hs.URL+p)
	}
	return out
}

// TestShardSessionMatchesUnsharded is the server-level shard-equivalence
// gate: a sharded session must serve byte-identical provenance and
// critical-path answers to its unsharded twin over HTTP — with provenance
// alone and composed with automatic trace memoization (where replayed
// launches skip the shard fan-out entirely and replay provenance must
// name the base analyzer, not the sharded composition).
func TestShardSessionMatchesUnsharded(t *testing.T) {
	cases := []struct {
		name          string
		base, sharded client.SessionConfig
	}{
		{
			name:    "provenance",
			base:    client.SessionConfig{Algorithm: "raycast"},
			sharded: client.SessionConfig{Algorithm: "raycast", Shards: 4},
		},
		{
			name:    "autotrace",
			base:    client.SessionConfig{Algorithm: "raycast", Autotrace: true},
			sharded: client.SessionConfig{Algorithm: "raycast", Autotrace: true, Shards: 4},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := fetchSessionArtifacts(t, tc.base)
			got := fetchSessionArtifacts(t, tc.sharded)
			for p, body := range want {
				if !bytes.Equal(body, got[p]) {
					t.Errorf("%s differs between unsharded and sharded sessions:\nunsharded:\n%s\nsharded:\n%s", p, body, got[p])
				}
			}
		})
	}
}

// TestShardSessionDescribed pins the shard count through the session
// API: create, list, and restore all carry it.
func TestShardSessionDescribed(t *testing.T) {
	srv := server.New(server.Config{IdleTimeout: -1})
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		if err := srv.Shutdown(t.Context()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		hs.Close()
	}()
	c := client.New(hs.URL)
	c.RetryWait = 10 * time.Millisecond
	sess, err := c.CreateSession(client.SessionConfig{Algorithm: "raycast", Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(wire.ExampleGraphsim(2)); err != nil {
		t.Fatal(err)
	}
	infos, err := c.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Shards != 3 {
		t.Fatalf("session list = %+v, want one session with 3 shards", infos)
	}

	ckpt, err := sess.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := c.Restore(ckpt, client.SessionConfig{Algorithm: "raycast", Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	infos, err = c.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, info := range infos {
		if info.ID == restored.ID {
			found = true
			if info.Shards != 5 {
				t.Errorf("restored session has %d shards, want 5", info.Shards)
			}
		}
	}
	if !found {
		t.Fatalf("restored session %s not listed: %+v", restored.ID, infos)
	}

	if _, err := c.CreateSession(client.SessionConfig{Algorithm: "raycast", Shards: -1}); err == nil {
		t.Fatal("negative shard count accepted")
	}
}
