package server_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"visibility/internal/server"
	"visibility/internal/server/client"
	"visibility/internal/wire"
)

// explainServer starts a fresh server with one graphsim session and
// returns the base URL, a client, the session, and the shutdown func.
// Fresh servers number sessions identically, so two calls produce
// sessions with the same id and paths compare byte-for-byte.
func explainServer(t *testing.T) (string, *client.Client, *client.Session, func()) {
	t.Helper()
	srv := server.New(server.Config{IdleTimeout: -1})
	hs := httptest.NewServer(srv.Handler())
	c := client.New(hs.URL)
	c.RetryWait = 10 * time.Millisecond
	sess, err := c.CreateSession(client.SessionConfig{Algorithm: "raycast"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(wire.ExampleGraphsim(4)); err != nil {
		t.Fatal(err)
	}
	return hs.URL, c, sess, func() {
		if err := srv.Shutdown(t.Context()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		hs.Close()
	}
}

func rawGET(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// TestExplainByteIdentical is the determinism acceptance gate for the
// explain engine: two fresh servers run the same workload, and the raw
// response bytes of /explain, /critpath, and the DOT rendering must be
// identical — no wall-clock, map order, or pointer identity anywhere in
// the output.
func TestExplainByteIdentical(t *testing.T) {
	fetch := func() map[string][]byte {
		base, _, sess, shutdown := explainServer(t)
		defer shutdown()
		paths := []string{
			"/v1/sessions/" + sess.ID + "/explain?task=5",
			"/v1/sessions/" + sess.ID + "/explain?task=7&src=1",
			"/v1/sessions/" + sess.ID + "/critpath?k=3",
			"/v1/sessions/" + sess.ID + "/critpath?format=dot",
			"/debug/critpath",
		}
		out := map[string][]byte{}
		for _, p := range paths {
			out[p] = rawGET(t, base+p)
		}
		return out
	}
	a, b := fetch(), fetch()
	for p, body := range a {
		if !bytes.Equal(body, b[p]) {
			t.Errorf("%s differs across identical runs:\nrun 1:\n%s\nrun 2:\n%s", p, body, b[p])
		}
	}
}

// TestExplainEdges checks the provenance content itself: every task in
// the graphsim stream explains each of its dependence edges with a
// non-empty reason, and a direct producer is reported as mustPrecede.
func TestExplainEdges(t *testing.T) {
	_, _, sess, shutdown := explainServer(t)
	defer shutdown()

	tasks, err := sess.Dependences("N")
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) == 0 {
		t.Fatal("no tasks")
	}
	explained := 0
	for _, ti := range tasks {
		ex, err := sess.Explain("N", ti.ID)
		if err != nil {
			t.Fatalf("explain task %d: %v", ti.ID, err)
		}
		if ex.Explain == nil {
			t.Fatalf("task %d: no explain body", ti.ID)
		}
		bySrc := map[int]bool{}
		for _, e := range ex.Explain.Edges {
			if e.Kind == "" {
				t.Errorf("task %d: edge from %d has empty kind", ti.ID, e.Src)
			}
			if e.Kind == "region" && (e.Analyzer == "" || e.Overlap == "") {
				t.Errorf("task %d: region edge from %d missing analyzer/overlap: %+v", ti.ID, e.Src, e)
			}
			bySrc[e.Src] = true
		}
		for _, d := range ti.Deps {
			if d < 0 {
				continue
			}
			if !bySrc[d] {
				t.Errorf("task %d: dependence on %d has no provenance edge", ti.ID, d)
			}
			explained++
			why, err := sess.Why("N", d, ti.ID)
			if err != nil {
				t.Fatalf("why %d %d: %v", d, ti.ID, err)
			}
			if !why.MustPrecede {
				t.Errorf("direct producer %d of %d not reported as mustPrecede", d, ti.ID)
			}
		}
	}
	if explained == 0 {
		t.Fatal("graphsim produced no dependence edges to explain; the test checked nothing")
	}
}

// TestCritPathEndpoint sanity-checks the served profile against the
// graph it summarizes.
func TestCritPathEndpoint(t *testing.T) {
	_, c, sess, shutdown := explainServer(t)
	defer shutdown()

	sum, err := sess.CritPath("N", 3)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Tasks == 0 || sum.Length <= 0 || sum.Work < sum.Length {
		t.Fatalf("implausible summary: %+v", sum)
	}
	if len(sum.Path) == 0 {
		t.Fatal("empty critical path")
	}
	if len(sum.Top) > 3 {
		t.Errorf("k=3 returned %d contributors", len(sum.Top))
	}
	var pathSum float64
	for _, step := range sum.Path {
		pathSum += step.Weight
	}
	if pathSum != sum.Length {
		t.Errorf("path weights sum to %v, makespan is %v", pathSum, sum.Length)
	}
	dot, err := sess.CritDOT("N")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, "color=red") {
		t.Error("critical-path DOT has no highlighted nodes")
	}

	// The fleet-wide debug sweep covers this session and agrees with the
	// per-session endpoint on the headline numbers.
	all, err := c.DebugCritPath(3)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := all[sess.ID]["N"]
	if !ok {
		t.Fatalf("/debug/critpath missing session %s region N: %v", sess.ID, all)
	}
	if got.Tasks != sum.Tasks || got.Length != sum.Length {
		t.Errorf("/debug/critpath (%d tasks, length %v) disagrees with /critpath (%d tasks, length %v)",
			got.Tasks, got.Length, sum.Tasks, sum.Length)
	}
}

// TestPromMetricsFormat checks the ?format=prom exposition: parseable
// line shape, deterministic across immediate repeated scrapes of an idle
// server, session samples labeled.
func TestPromMetricsFormat(t *testing.T) {
	base, _, sess, shutdown := explainServer(t)
	defer shutdown()

	body := rawGET(t, base+"/metrics?format=prom")
	text := string(body)
	if !strings.Contains(text, "# TYPE ") {
		t.Fatalf("no TYPE lines in exposition:\n%s", text)
	}
	if !strings.Contains(text, `session="`+sess.ID+`"`) {
		t.Errorf("no samples labeled for session %s", sess.ID)
	}
	if !strings.Contains(text, "_total") {
		t.Error("no counter samples with _total suffix")
	}
	if !strings.Contains(text, `le="+Inf"`) {
		t.Error("no histogram +Inf bucket")
	}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, " ") != 1 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}
