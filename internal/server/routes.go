package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"visibility"
	"visibility/internal/obs"
	"visibility/internal/wire"
)

// latencyBounds are the per-endpoint latency histogram buckets, in
// microseconds.
var latencyBounds = []int64{100, 1_000, 10_000, 100_000, 1_000_000}

// routes mounts every endpoint, each wrapped with request counting and a
// latency histogram under "server/http/<name>/".
func (srv *Server) routes() {
	handle := func(pattern, name string, h http.HandlerFunc) {
		requests := srv.metrics.NewCounter("server/http/" + name + "/requests")
		latency := srv.metrics.NewHistogram("server/http/"+name+"/latency_us", latencyBounds...)
		srv.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			requests.Inc()
			h(w, r)
			latency.Observe(time.Since(start).Microseconds())
		})
	}
	handle("POST /v1/sessions", "sessions_create", srv.handleCreateSession)
	handle("GET /v1/sessions", "sessions_list", srv.handleListSessions)
	handle("POST /v1/sessions/restore", "sessions_restore", srv.handleRestore)
	handle("DELETE /v1/sessions/{id}", "sessions_delete", srv.handleDeleteSession)
	handle("POST /v1/sessions/{id}/workloads", "workloads", srv.handleWorkloads)
	handle("GET /v1/sessions/{id}/snapshot", "snapshot", srv.handleSnapshot)
	handle("GET /v1/sessions/{id}/graph", "graph", srv.handleGraph)
	handle("GET /v1/sessions/{id}/dot", "dot", srv.handleDOT)
	handle("GET /v1/sessions/{id}/checkpoint", "checkpoint", srv.handleCheckpoint)
	handle("GET /v1/sessions/{id}/metrics", "session_metrics", srv.handleSessionMetrics)
	handle("GET /v1/sessions/{id}/spans", "session_spans", srv.handleSessionSpans)
	handle("GET /metrics", "metrics", srv.handleMetrics)
	handle("GET /debug/spans", "debug_spans", srv.handleDebugSpans)
	handle("GET /healthz", "healthz", srv.handleHealthz)
}

// --- response plumbing --------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing useful left to do.
		_ = err
	}
}

type errorBody struct {
	Error string `json:"error"`
}

// fail maps service errors to HTTP statuses: overload is 429 with
// Retry-After (the backpressure contract), draining is 503, a closing
// session conflicts, anything else is the caller's fault.
func (srv *Server) fail(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch err {
	case errOverload, errSessionBusy, errTooManySessions:
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
	case errDraining:
		w.Header().Set("Retry-After", "5")
		status = http.StatusServiceUnavailable
	case errSessionClosing:
		status = http.StatusConflict
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func notFound(w http.ResponseWriter, what string) {
	writeJSON(w, http.StatusNotFound, errorBody{Error: what + " not found"})
}

// lookup finds the session from the path or writes a 404.
func (srv *Server) lookup(w http.ResponseWriter, r *http.Request) *session {
	s := srv.session(r.PathValue("id"))
	if s == nil {
		notFound(w, "session "+r.PathValue("id"))
	}
	return s
}

// --- session lifecycle endpoints ----------------------------------------

type sessionConfigBody struct {
	Algorithm string `json:"algorithm,omitempty"`
	Tracing   bool   `json:"tracing,omitempty"`
}

type sessionBody struct {
	ID        string `json:"id"`
	Algorithm string `json:"algorithm"`
	Tracing   bool   `json:"tracing"`
	Queued    int    `json:"queued"`
	Failed    string `json:"failed,omitempty"`
}

func (s *session) describe() sessionBody {
	_, queued := s.idleSince()
	body := sessionBody{ID: s.id, Algorithm: s.algorithm, Tracing: s.tracing, Queued: queued}
	if err := s.latchedFailure(); err != nil {
		body.Failed = err.Error()
	}
	return body
}

func (srv *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var cfg sessionConfigBody
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil && err.Error() != "EOF" {
		srv.fail(w, fmt.Errorf("decoding session config: %v", err))
		return
	}
	s, err := srv.createSession(cfg.Algorithm, cfg.Tracing, func(c visibility.Config) (*visibility.Runtime, *wire.Env, error) {
		rt := visibility.New(c)
		return rt, wire.NewEnv(rt), nil
	})
	if err != nil {
		srv.fail(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.describe())
}

func (srv *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	s, err := srv.createSession(q.Get("algorithm"), q.Get("tracing") == "true",
		func(c visibility.Config) (*visibility.Runtime, *wire.Env, error) {
			rt, roots, err := visibility.Restore(r.Body, c)
			if err != nil {
				return nil, nil, err
			}
			env, err := wire.EnvFromRestore(rt, roots)
			if err != nil {
				rt.Close()
				return nil, nil, err
			}
			return rt, env, nil
		})
	if err != nil {
		srv.fail(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.describe())
}

func (srv *Server) handleListSessions(w http.ResponseWriter, _ *http.Request) {
	list := srv.sessionList()
	out := make([]sessionBody, 0, len(list))
	for _, s := range list {
		out = append(out, s.describe())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

func (srv *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	s := srv.lookup(w, r)
	if s == nil {
		return
	}
	srv.closeSession(s, true)
	w.WriteHeader(http.StatusNoContent)
}

// --- workload submission ------------------------------------------------

func (srv *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	s := srv.lookup(w, r)
	if s == nil {
		return
	}
	if err := s.latchedFailure(); err != nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: "session failed: " + err.Error()})
		return
	}
	wl, err := wire.Decode(r.Body)
	if err != nil {
		srv.fail(w, err)
		return
	}
	if err := srv.submit(s, job{fn: func() {
		if _, err := s.env.Apply(wl); err != nil {
			s.latchFailure(err)
		}
	}}); err != nil {
		srv.fail(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]int{
		"regions": len(wl.Regions),
		"tasks":   len(wl.Tasks),
	})
}

// --- query endpoints (sync jobs: FIFO behind submitted batches) ---------

// regionParam resolves the ?region= query on the worker goroutine.
func regionParam(s *session, r *http.Request) (string, func() *visibility.Region) {
	name := r.URL.Query().Get("region")
	return name, func() *visibility.Region { return s.env.Region(name) }
}

func (srv *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s := srv.lookup(w, r)
	if s == nil {
		return
	}
	name, resolve := regionParam(s, r)
	field := r.URL.Query().Get("field")
	var (
		rows    [][]float64
		missing string
	)
	err := srv.doSync(s, func() {
		reg := resolve()
		if reg == nil {
			missing = "region " + name
			return
		}
		if !reg.HasField(field) {
			missing = fmt.Sprintf("field %q of region %s", field, name)
			return
		}
		dim := reg.Space().Dim()
		s.rt.Read(reg, field).Each(func(p visibility.Point, v float64) {
			row := make([]float64, 0, dim+1)
			for a := 0; a < dim; a++ {
				row = append(row, float64(p.C[a]))
			}
			rows = append(rows, append(row, v))
		})
	})
	if err != nil {
		srv.fail(w, err)
		return
	}
	if missing != "" {
		notFound(w, missing)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"region": name, "field": field, "points": rows})
}

func (srv *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	s := srv.lookup(w, r)
	if s == nil {
		return
	}
	name, resolve := regionParam(s, r)
	var (
		tasks   []visibility.TaskInfo
		missing string
	)
	err := srv.doSync(s, func() {
		reg := resolve()
		if reg == nil {
			missing = "region " + name
			return
		}
		tasks = s.rt.Dependences(reg)
	})
	if err != nil {
		srv.fail(w, err)
		return
	}
	if missing != "" {
		notFound(w, missing)
		return
	}
	if tasks == nil {
		tasks = []visibility.TaskInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"region": name, "tasks": tasks})
}

func (srv *Server) handleDOT(w http.ResponseWriter, r *http.Request) {
	s := srv.lookup(w, r)
	if s == nil {
		return
	}
	name, resolve := regionParam(s, r)
	var (
		buf     bytes.Buffer
		missing string
		dotErr  error
	)
	err := srv.doSync(s, func() {
		reg := resolve()
		if reg == nil {
			missing = "region " + name
			return
		}
		dotErr = s.rt.WriteDOT(reg, &buf)
	})
	if err != nil {
		srv.fail(w, err)
		return
	}
	if missing != "" {
		notFound(w, missing)
		return
	}
	if dotErr != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: dotErr.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	if _, err := w.Write(buf.Bytes()); err != nil {
		_ = err // client went away mid-body
	}
}

func (srv *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	s := srv.lookup(w, r)
	if s == nil {
		return
	}
	var (
		buf     bytes.Buffer
		ckptErr error
	)
	err := srv.doSync(s, func() { ckptErr = s.rt.Checkpoint(&buf) })
	if err != nil {
		srv.fail(w, err)
		return
	}
	if ckptErr != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: ckptErr.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(buf.Bytes()); err != nil {
		_ = err // client went away mid-body
	}
}

// --- observability endpoints --------------------------------------------

// sessionMetricsSnapshot captures a session's registry on its worker —
// computed metrics read live analyzer state, which only the worker may
// touch.
func (srv *Server) sessionMetricsSnapshot(s *session) (obs.Snapshot, error) {
	var snap obs.Snapshot
	if err := srv.doSync(s, func() { snap = s.metrics.Snapshot() }); err != nil {
		return nil, err
	}
	return snap, nil
}

func (srv *Server) handleSessionMetrics(w http.ResponseWriter, r *http.Request) {
	s := srv.lookup(w, r)
	if s == nil {
		return
	}
	snap, err := srv.sessionMetricsSnapshot(s)
	if err != nil {
		srv.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleMetrics merges the server registry with every session's registry
// (namespaced by session id). A session too busy to snapshot reports
// "unavailable" rather than stalling the endpoint.
func (srv *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	out := map[string]any{"server": srv.metrics.Snapshot()}
	sessions := map[string]any{}
	for _, s := range srv.sessionList() {
		if snap, err := srv.sessionMetricsSnapshot(s); err != nil {
			sessions[s.id] = map[string]string{"unavailable": err.Error()}
		} else {
			sessions[s.id] = snap
		}
	}
	out["sessions"] = sessions
	writeJSON(w, http.StatusOK, out)
}

type spansBody struct {
	Spans   []obs.Span `json:"spans"`
	Dropped int64      `json:"dropped"`
}

func (s *session) spansSnapshot() spansBody {
	spans := s.spans.Snapshot()
	if spans == nil {
		spans = []obs.Span{}
	}
	return spansBody{Spans: spans, Dropped: s.spans.Dropped()}
}

func (srv *Server) handleSessionSpans(w http.ResponseWriter, r *http.Request) {
	s := srv.lookup(w, r)
	if s == nil {
		return
	}
	writeJSON(w, http.StatusOK, s.spansSnapshot())
}

func (srv *Server) handleDebugSpans(w http.ResponseWriter, _ *http.Request) {
	out := map[string]spansBody{}
	for _, s := range srv.sessionList() {
		out[s.id] = s.spansSnapshot()
	}
	writeJSON(w, http.StatusOK, out)
}

func (srv *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"sessions": srv.SessionCount(),
		"inflight": srv.InFlight(),
	})
}
