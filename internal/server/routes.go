package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"visibility"
	"visibility/internal/obs"
	"visibility/internal/obs/recorder"
	"visibility/internal/wire"
)

// latencyBounds are the per-endpoint latency histogram buckets, in
// microseconds.
var latencyBounds = []int64{100, 1_000, 10_000, 100_000, 1_000_000}

// traceKey carries the request's span context through context.Context.
type traceKey struct{}

// traceContext returns the trace context of the HTTP span covering r
// (zero when the request bypassed the instrumented mux).
func traceContext(r *http.Request) obs.TraceContext {
	tc, _ := r.Context().Value(traceKey{}).(obs.TraceContext)
	return tc
}

// routes mounts every endpoint, each wrapped with request counting, a
// latency histogram under "server/http/<name>/", and an "http.<name>"
// span on the server buffer. The span joins the trace in the request's
// W3C traceparent header when present (so client and server spans share
// a trace ID) and starts a fresh trace otherwise; handlers propagate it
// to worker jobs via the request context.
func (srv *Server) routes() {
	handle := func(pattern, name string, h http.HandlerFunc) {
		requests := srv.metrics.NewCounter("server/http/" + name + "/requests")
		latency := srv.metrics.NewHistogram("server/http/"+name+"/latency_us", latencyBounds...)
		srv.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			requests.Inc()
			parent, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
			sp, tc := srv.spans.BeginSpan("http."+name, "http", parent)
			h(w, r.WithContext(context.WithValue(r.Context(), traceKey{}, tc)))
			sp.End()
			latency.Observe(time.Since(start).Microseconds())
		})
	}
	handle("POST /v1/sessions", "sessions_create", srv.handleCreateSession)
	handle("GET /v1/sessions", "sessions_list", srv.handleListSessions)
	handle("POST /v1/sessions/restore", "sessions_restore", srv.handleRestore)
	handle("DELETE /v1/sessions/{id}", "sessions_delete", srv.handleDeleteSession)
	handle("POST /v1/sessions/{id}/workloads", "workloads", srv.handleWorkloads)
	handle("GET /v1/sessions/{id}/snapshot", "snapshot", srv.handleSnapshot)
	handle("GET /v1/sessions/{id}/graph", "graph", srv.handleGraph)
	handle("GET /v1/sessions/{id}/explain", "explain", srv.handleExplain)
	handle("GET /v1/sessions/{id}/critpath", "critpath", srv.handleCritPath)
	handle("GET /v1/sessions/{id}/dot", "dot", srv.handleDOT)
	handle("GET /v1/sessions/{id}/checkpoint", "checkpoint", srv.handleCheckpoint)
	handle("GET /v1/sessions/{id}/metrics", "session_metrics", srv.handleSessionMetrics)
	handle("GET /v1/sessions/{id}/spans", "session_spans", srv.handleSessionSpans)
	handle("GET /metrics", "metrics", srv.handleMetrics)
	handle("GET /debug/spans", "debug_spans", srv.handleDebugSpans)
	handle("GET /debug/trace", "debug_trace", srv.handleDebugTrace)
	handle("GET /debug/recorder", "debug_recorder", srv.handleDebugRecorder)
	handle("GET /debug/critpath", "debug_critpath", srv.handleDebugCritPath)
	handle("GET /healthz", "healthz", srv.handleHealthz)
	if srv.cfg.EnablePprof {
		// Raw mounts: profiling endpoints stay out of the metrics/tracing
		// wrapper so profiling the server does not perturb its own spans.
		srv.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		srv.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		srv.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		srv.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		srv.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// --- response plumbing --------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing useful left to do.
		_ = err
	}
}

type errorBody struct {
	Error string `json:"error"`
}

// fail maps service errors to HTTP statuses: overload is 429 with
// Retry-After (the backpressure contract), draining is 503, a closing
// session conflicts, anything else is the caller's fault.
func (srv *Server) fail(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch err {
	case errOverload, errSessionBusy, errTooManySessions:
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
	case errDraining:
		w.Header().Set("Retry-After", "5")
		status = http.StatusServiceUnavailable
	case errSessionClosing:
		status = http.StatusConflict
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// eventBody is one flight-recorder event on the wire.
type eventBody struct {
	T    int64  `json:"t_ns"`
	Kind string `json:"kind"`
	A    int64  `json:"a"`
	B    int64  `json:"b"`
}

// recorderTail returns the newest n journaled events, oldest first.
func (srv *Server) recorderTail(n int) []eventBody {
	events := srv.rec.Snapshot()
	if len(events) > n {
		events = events[len(events)-n:]
	}
	out := make([]eventBody, len(events))
	for i, e := range events {
		out[i] = eventBody{T: e.T, Kind: e.Kind.String(), A: e.A, B: e.B}
	}
	return out
}

// failConflict writes the 409 for a failed session, attaching the flight
// recorder's recent window (and the on-disk dump path, when one was
// written) so the client sees what the runtime was doing when it died.
func (srv *Server) failConflict(w http.ResponseWriter, s *session, err error) {
	body := map[string]any{
		"error":    "session failed: " + err.Error(),
		"recorder": srv.recorderTail(64),
	}
	if path := s.recorderDump(); path != "" {
		body["recorder_dump"] = path
	}
	writeJSON(w, http.StatusConflict, body)
}

func notFound(w http.ResponseWriter, what string) {
	writeJSON(w, http.StatusNotFound, errorBody{Error: what + " not found"})
}

// lookup finds the session from the path or writes a 404.
func (srv *Server) lookup(w http.ResponseWriter, r *http.Request) *session {
	s := srv.session(r.PathValue("id"))
	if s == nil {
		notFound(w, "session "+r.PathValue("id"))
	}
	return s
}

// --- session lifecycle endpoints ----------------------------------------

type sessionConfigBody struct {
	Algorithm string `json:"algorithm,omitempty"`
	Tracing   bool   `json:"tracing,omitempty"`
	Autotrace bool   `json:"autotrace,omitempty"`
	Shards    int    `json:"shards,omitempty"`
}

type sessionBody struct {
	ID        string `json:"id"`
	Algorithm string `json:"algorithm"`
	Tracing   bool   `json:"tracing"`
	Autotrace bool   `json:"autotrace"`
	Shards    int    `json:"shards,omitempty"`
	Queued    int    `json:"queued"`
	Failed    string `json:"failed,omitempty"`
}

func (s *session) describe() sessionBody {
	_, queued := s.idleSince()
	body := sessionBody{ID: s.id, Algorithm: s.algorithm, Tracing: s.tracing, Autotrace: s.autotrace, Shards: s.shards, Queued: queued}
	if err := s.latchedFailure(); err != nil {
		body.Failed = err.Error()
	}
	return body
}

func (srv *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var cfg sessionConfigBody
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil && err.Error() != "EOF" {
		srv.fail(w, fmt.Errorf("decoding session config: %v", err))
		return
	}
	s, err := srv.createSession(cfg.Algorithm, cfg.Tracing, cfg.Autotrace, cfg.Shards, func(c visibility.Config) (*visibility.Runtime, *wire.Env, error) {
		rt := visibility.New(c)
		return rt, wire.NewEnv(rt), nil
	})
	if err != nil {
		srv.fail(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.describe())
}

func (srv *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	shards := 0
	if v := q.Get("shards"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			srv.fail(w, fmt.Errorf("bad shards %q: %v", v, err))
			return
		}
		shards = n
	}
	s, err := srv.createSession(q.Get("algorithm"), q.Get("tracing") == "true", q.Get("autotrace") == "true", shards,
		func(c visibility.Config) (*visibility.Runtime, *wire.Env, error) {
			rt, roots, err := visibility.Restore(r.Body, c)
			if err != nil {
				return nil, nil, err
			}
			env, err := wire.EnvFromRestore(rt, roots)
			if err != nil {
				rt.Close()
				return nil, nil, err
			}
			return rt, env, nil
		})
	if err != nil {
		srv.fail(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.describe())
}

func (srv *Server) handleListSessions(w http.ResponseWriter, _ *http.Request) {
	list := srv.sessionList()
	out := make([]sessionBody, 0, len(list))
	for _, s := range list {
		out = append(out, s.describe())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

func (srv *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	s := srv.lookup(w, r)
	if s == nil {
		return
	}
	srv.closeSession(s, true)
	w.WriteHeader(http.StatusNoContent)
}

// --- workload submission ------------------------------------------------

func (srv *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	s := srv.lookup(w, r)
	if s == nil {
		return
	}
	if err := s.latchedFailure(); err != nil {
		srv.failConflict(w, s, err)
		return
	}
	wl, err := wire.Decode(r.Body)
	if err != nil {
		srv.fail(w, err)
		return
	}
	if err := srv.submit(s, job{tc: traceContext(r), fn: func() {
		if _, err := s.env.Apply(wl); err != nil {
			s.latchFailure(err)
		}
	}}); err != nil {
		srv.fail(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]int{
		"regions": len(wl.Regions),
		"tasks":   len(wl.Tasks),
	})
}

// --- query endpoints (sync jobs: FIFO behind submitted batches) ---------

// regionParam extracts the ?region= query. The name is resolved against
// the session environment inside each handler's sync job, never on the
// HTTP goroutine: the environment belongs to the session worker.
func regionParam(r *http.Request) string {
	return r.URL.Query().Get("region")
}

func (srv *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s := srv.lookup(w, r)
	if s == nil {
		return
	}
	name := regionParam(r)
	field := r.URL.Query().Get("field")
	var (
		rows    [][]float64
		missing string
	)
	err := srv.doSync(s, traceContext(r), func() {
		reg := s.env.Region(name)
		if reg == nil {
			missing = "region " + name
			return
		}
		if !reg.HasField(field) {
			missing = fmt.Sprintf("field %q of region %s", field, name)
			return
		}
		dim := reg.Space().Dim()
		s.rt.Read(reg, field).Each(func(p visibility.Point, v float64) {
			row := make([]float64, 0, dim+1)
			for a := 0; a < dim; a++ {
				row = append(row, float64(p.C[a]))
			}
			rows = append(rows, append(row, v))
		})
	})
	if err != nil {
		srv.fail(w, err)
		return
	}
	if missing != "" {
		notFound(w, missing)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"region": name, "field": field, "points": rows})
}

func (srv *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	s := srv.lookup(w, r)
	if s == nil {
		return
	}
	name := regionParam(r)
	var (
		tasks   []visibility.TaskInfo
		missing string
	)
	err := srv.doSync(s, traceContext(r), func() {
		reg := s.env.Region(name)
		if reg == nil {
			missing = "region " + name
			return
		}
		tasks = s.rt.Dependences(reg)
	})
	if err != nil {
		srv.fail(w, err)
		return
	}
	if missing != "" {
		notFound(w, missing)
		return
	}
	if tasks == nil {
		tasks = []visibility.TaskInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"region": name, "tasks": tasks})
}

// envRegion resolves the ?region= value against the session environment,
// defaulting to the lexicographically first root region when the query is
// empty. Must run inside a sync job: the environment belongs to the
// session worker.
func envRegion(s *session, name string) *visibility.Region {
	if name != "" {
		return s.env.Region(name)
	}
	names := make([]string, 0, 4)
	for _, reg := range s.env.Regions() {
		names = append(names, reg.Name())
	}
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names)
	return s.env.Region(names[0])
}

// handleExplain serves dependence provenance: ?task=N returns the
// EdgeReason of every incoming edge of task N; an optional &src=A
// restricts the edges to producer A and adds an O(1) mustPrecede verdict
// (label-based, no graph walk). ?region= selects the root region tree
// (default: first region, sorted by name).
func (srv *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s := srv.lookup(w, r)
	if s == nil {
		return
	}
	task, err := strconv.Atoi(r.URL.Query().Get("task"))
	if err != nil || task < 0 {
		srv.fail(w, fmt.Errorf("invalid task %q", r.URL.Query().Get("task")))
		return
	}
	src := -1
	if q := r.URL.Query().Get("src"); q != "" {
		if src, err = strconv.Atoi(q); err != nil || src < 0 {
			srv.fail(w, fmt.Errorf("invalid src %q", q))
			return
		}
	}
	name := regionParam(r)
	var (
		ex          *visibility.TaskExplain
		mustPrecede bool
		regionName  string
		missing     string
	)
	err = srv.doSync(s, traceContext(r), func() {
		reg := envRegion(s, name)
		if reg == nil {
			missing = "region " + name
			return
		}
		regionName = reg.Name()
		ex = s.rt.Explain(reg, task)
		if ex != nil && src >= 0 {
			edges := ex.Edges[:0]
			for _, e := range ex.Edges {
				if e.Src == src {
					edges = append(edges, e)
				}
			}
			ex.Edges = edges
			mustPrecede = s.rt.MustPrecede(reg, src, task)
		}
	})
	if err != nil {
		srv.fail(w, err)
		return
	}
	if missing != "" {
		notFound(w, missing)
		return
	}
	if ex == nil {
		notFound(w, fmt.Sprintf("task %d", task))
		return
	}
	srv.rec.Log(recorder.KindExplainQuery, int64(task), int64(len(ex.Edges)))
	body := map[string]any{"region": regionName, "explain": ex}
	if src >= 0 {
		body["src"] = src
		body["mustPrecede"] = mustPrecede
	}
	writeJSON(w, http.StatusOK, body)
}

// handleCritPath serves the weighted critical-path profile of one session
// tree: ?k= bounds the bottleneck attribution (default 5), ?format=dot
// renders the DAG with the critical path highlighted instead of JSON.
func (srv *Server) handleCritPath(w http.ResponseWriter, r *http.Request) {
	s := srv.lookup(w, r)
	if s == nil {
		return
	}
	k := 5
	if q := r.URL.Query().Get("k"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			srv.fail(w, fmt.Errorf("invalid k %q", q))
			return
		}
		k = v
	}
	dot := r.URL.Query().Get("format") == "dot"
	name := regionParam(r)
	var (
		sum        *visibility.CritSummary
		buf        bytes.Buffer
		dotErr     error
		regionName string
		missing    string
	)
	err := srv.doSync(s, traceContext(r), func() {
		reg := envRegion(s, name)
		if reg == nil {
			missing = "region " + name
			return
		}
		regionName = reg.Name()
		if dot {
			dotErr = s.rt.WriteDOTCrit(reg, &buf)
			return
		}
		sum = s.rt.CriticalPath(reg, k)
	})
	if err != nil {
		srv.fail(w, err)
		return
	}
	if missing != "" {
		notFound(w, missing)
		return
	}
	if dot {
		if dotErr != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: dotErr.Error()})
			return
		}
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		if _, err := w.Write(buf.Bytes()); err != nil {
			_ = err // client went away mid-body
		}
		return
	}
	if sum == nil {
		notFound(w, "critical path (nothing launched)")
		return
	}
	srv.rec.Log(recorder.KindCritPath, int64(len(sum.Path)), int64(sum.Length))
	writeJSON(w, http.StatusOK, map[string]any{"region": regionName, "critpath": sum})
}

func (srv *Server) handleDOT(w http.ResponseWriter, r *http.Request) {
	s := srv.lookup(w, r)
	if s == nil {
		return
	}
	name := regionParam(r)
	var (
		buf     bytes.Buffer
		missing string
		dotErr  error
	)
	err := srv.doSync(s, traceContext(r), func() {
		reg := s.env.Region(name)
		if reg == nil {
			missing = "region " + name
			return
		}
		dotErr = s.rt.WriteDOT(reg, &buf)
	})
	if err != nil {
		srv.fail(w, err)
		return
	}
	if missing != "" {
		notFound(w, missing)
		return
	}
	if dotErr != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: dotErr.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	if _, err := w.Write(buf.Bytes()); err != nil {
		_ = err // client went away mid-body
	}
}

func (srv *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	s := srv.lookup(w, r)
	if s == nil {
		return
	}
	var (
		buf     bytes.Buffer
		ckptErr error
	)
	err := srv.doSync(s, traceContext(r), func() { ckptErr = s.rt.Checkpoint(&buf) })
	if err != nil {
		srv.fail(w, err)
		return
	}
	if ckptErr != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: ckptErr.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(buf.Bytes()); err != nil {
		_ = err // client went away mid-body
	}
}

// --- observability endpoints --------------------------------------------

// sessionMetricsSnapshot captures a session's registry on its worker —
// computed metrics read live analyzer state, which only the worker may
// touch.
func (srv *Server) sessionMetricsSnapshot(s *session, tc obs.TraceContext) (obs.Snapshot, error) {
	var snap obs.Snapshot
	if err := srv.doSync(s, tc, func() { snap = s.metrics.Snapshot() }); err != nil {
		return nil, err
	}
	return snap, nil
}

func (srv *Server) handleSessionMetrics(w http.ResponseWriter, r *http.Request) {
	s := srv.lookup(w, r)
	if s == nil {
		return
	}
	snap, err := srv.sessionMetricsSnapshot(s, traceContext(r))
	if err != nil {
		srv.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleMetrics merges the server registry with every session's registry
// (namespaced by session id). A session too busy to snapshot reports
// "unavailable" rather than stalling the endpoint. ?format=prom switches
// to the Prometheus text exposition: server metrics unlabeled, session
// metrics labeled {session="<id>"}, names sorted within each block.
func (srv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		srv.handleMetricsProm(w, r)
		return
	}
	out := map[string]any{"server": srv.metrics.Snapshot()}
	sessions := map[string]any{}
	for _, s := range srv.sessionList() {
		if snap, err := srv.sessionMetricsSnapshot(s, traceContext(r)); err != nil {
			sessions[s.id] = map[string]string{"unavailable": err.Error()}
		} else {
			sessions[s.id] = snap
		}
	}
	out["sessions"] = sessions
	writeJSON(w, http.StatusOK, out)
}

func (srv *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := obs.WriteProm(w, srv.metrics.Typed(), nil); err != nil {
		return // client went away mid-body
	}
	list := srv.sessionList()
	sort.Slice(list, func(i, j int) bool { return list[i].id < list[j].id })
	for _, s := range list {
		var rows []obs.TypedMetric
		if err := srv.doSync(s, traceContext(r), func() { rows = s.metrics.Typed() }); err != nil {
			continue // busy session: omit rather than stall the scrape
		}
		if err := obs.WriteProm(w, rows, map[string]string{"session": s.id}); err != nil {
			return
		}
	}
}

type spansBody struct {
	Spans   []obs.Span `json:"spans"`
	Dropped int64      `json:"dropped"`
}

func (s *session) spansSnapshot() spansBody {
	spans := s.spans.Snapshot()
	if spans == nil {
		spans = []obs.Span{}
	}
	return spansBody{Spans: spans, Dropped: s.spans.Dropped()}
}

func (srv *Server) handleSessionSpans(w http.ResponseWriter, r *http.Request) {
	s := srv.lookup(w, r)
	if s == nil {
		return
	}
	writeJSON(w, http.StatusOK, s.spansSnapshot())
}

func (srv *Server) handleDebugSpans(w http.ResponseWriter, _ *http.Request) {
	out := map[string]spansBody{}
	for _, s := range srv.sessionList() {
		out[s.id] = s.spansSnapshot()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDebugTrace exports one merged Perfetto-loadable trace: the
// server's HTTP spans on process 0 and each live session's spans
// (queue waits and analysis phases) on their own process track. All
// buffers share the server clock, and traced spans carry their
// trace/span/parent IDs in args, so the viewer shows each request as a
// parented tree spanning both tracks.
func (srv *Server) handleDebugTrace(w http.ResponseWriter, _ *http.Request) {
	tw := obs.NewTraceWriter()
	tw.ProcessName(0, "visserve http")
	tw.Spans(0, 0, srv.spans.Snapshot())
	list := srv.sessionList()
	sort.Slice(list, func(i, j int) bool { return list[i].id < list[j].id })
	for i, s := range list {
		tw.ProcessName(i+1, "session "+s.id+" ("+s.algorithm+")")
		tw.Spans(i+1, 0, s.spans.Snapshot())
	}
	w.Header().Set("Content-Type", "application/json")
	if err := tw.Write(w); err != nil {
		_ = err // client went away mid-body
	}
}

// handleDebugRecorder exposes the flight recorder's last-N-events window
// (?n=, default 256).
func (srv *Server) handleDebugRecorder(w http.ResponseWriter, r *http.Request) {
	n := 256
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			srv.fail(w, fmt.Errorf("invalid n %q", q))
			return
		}
		n = v
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"events":  srv.recorderTail(n),
		"total":   srv.rec.Len(),
		"dropped": srv.rec.Dropped(),
	})
}

// handleDebugCritPath sweeps every live session and reports the weighted
// critical-path summary of each root region tree (?k= bounds bottleneck
// attribution, default 3). Sessions too busy to query are skipped.
func (srv *Server) handleDebugCritPath(w http.ResponseWriter, r *http.Request) {
	k := 3
	if q := r.URL.Query().Get("k"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			srv.fail(w, fmt.Errorf("invalid k %q", q))
			return
		}
		k = v
	}
	list := srv.sessionList()
	sort.Slice(list, func(i, j int) bool { return list[i].id < list[j].id })
	sessions := map[string]any{}
	for _, s := range list {
		byRegion := map[string]*visibility.CritSummary{}
		err := srv.doSync(s, traceContext(r), func() {
			regs := s.env.Regions()
			sort.Slice(regs, func(i, j int) bool { return regs[i].Name() < regs[j].Name() })
			for _, reg := range regs {
				if sum := s.rt.CriticalPath(reg, k); sum != nil {
					byRegion[reg.Name()] = sum
				}
			}
		})
		if err != nil {
			continue // busy session: omit rather than stall the sweep
		}
		sessions[s.id] = byRegion
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": sessions})
}

func (srv *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"sessions": srv.SessionCount(),
		"inflight": srv.InFlight(),
	})
}
