package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"visibility/internal/obs"
	"visibility/internal/obs/recorder"
	"visibility/internal/server"
	"visibility/internal/server/client"
	"visibility/internal/wire"
)

// traceDoc mirrors the Chrome trace-event export for assertions.
type traceDoc struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		Pid  int               `json:"pid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
}

// TestTracePropagation drives one request trace end to end: the client
// mints the root span, the server's HTTP span joins it via the
// traceparent header, the queue wait and the analysis phases parent
// under the HTTP span, and the merged /debug/trace export shows the
// whole tree under one trace ID.
func TestTracePropagation(t *testing.T) {
	_, c, shutdown := newTestServer(t, server.Config{})
	defer shutdown()
	c.Spans = obs.NewBuffer(256)

	sess, err := c.CreateSession(client.SessionConfig{Algorithm: "raycast"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(wire.ExampleQuickstart()); err != nil {
		t.Fatal(err)
	}
	// The snapshot is a sync job, so by now the workload batch has been
	// analyzed and its spans recorded.
	if _, err := sess.Snapshot("cells", "val"); err != nil {
		t.Fatal(err)
	}

	// The client recorded a root span for the workloads POST.
	var clientTrace string
	for _, sp := range c.Spans.Snapshot() {
		if strings.Contains(sp.Name, "/workloads") {
			clientTrace = sp.Trace
		}
	}
	if clientTrace == "" {
		t.Fatalf("client recorded no workloads span: %+v", c.Spans.Snapshot())
	}

	// The session's analysis spans carry the client's trace ID: the
	// context crossed HTTP, the queue, and into the analyzer.
	spans, err := sess.Spans()
	if err != nil {
		t.Fatal(err)
	}
	var analysisTraced, queueWait bool
	for _, sp := range spans {
		if sp.Cat == "analysis" && sp.Trace == clientTrace {
			analysisTraced = true
		}
		if sp.Name == "queue.wait" {
			queueWait = true
			if sp.Trace == "" || sp.Parent == "" {
				t.Errorf("queue.wait span not parented: %+v", sp)
			}
		}
	}
	if !analysisTraced {
		t.Errorf("no analysis span carries the client trace %s", clientTrace)
	}
	if !queueWait {
		t.Error("no queue.wait span recorded")
	}

	// The merged export parents analysis spans under the HTTP span.
	raw, err := c.DebugTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("/debug/trace is not valid JSON: %v", err)
	}
	var httpSpan string
	for _, ev := range doc.TraceEvents {
		if ev.Name == "http.workloads" && ev.Args["trace"] == clientTrace {
			httpSpan = ev.Args["span"]
		}
	}
	if httpSpan == "" {
		t.Fatal("merged export has no http.workloads span for the client trace")
	}
	var children, queueChildren int
	for _, ev := range doc.TraceEvents {
		if ev.Args["parent"] != httpSpan {
			continue
		}
		if ev.Cat == "analysis" {
			children++
		}
		if ev.Name == "queue.wait" {
			queueChildren++
		}
	}
	if children == 0 {
		t.Error("http.workloads span has no analysis children in the export")
	}
	if queueChildren != 1 {
		t.Errorf("http.workloads span has %d queue.wait children, want 1", queueChildren)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerFailureRecorderDump injects a worker failure (declaring the
// same region twice) and checks the flight-recorder contract: the
// failure is journaled, the window is dumped to RecorderDir, the next
// submit's 409 body carries the recent events and the dump path, and the
// dump file parses back.
func TestWorkerFailureRecorderDump(t *testing.T) {
	dir := t.TempDir()
	srv := server.New(server.Config{IdleTimeout: -1, RecorderDir: dir})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer func() {
		if err := srv.Shutdown(t.Context()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	c := client.New(hs.URL)
	c.RetryWait = 10 * time.Millisecond

	sess, err := c.CreateSession(client.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(wire.ExampleQuickstart()); err != nil {
		t.Fatal(err)
	}
	// Same workload again: Apply rejects the duplicate region declaration
	// on the worker, latching the session failure.
	if err := sess.Submit(wire.ExampleQuickstart()); err != nil {
		t.Fatal(err)
	}

	// The failure lands asynchronously; the journal shows it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		events, err := c.DebugRecorder(0)
		if err != nil {
			t.Fatal(err)
		}
		var failed bool
		for _, e := range events {
			if e.Kind == "worker_fail" {
				failed = true
			}
		}
		if failed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker_fail never journaled; events: %+v", events)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The next submit is refused with 409 carrying the recorder window
	// and the on-disk dump path.
	var buf bytes.Buffer
	if err := wire.Encode(&buf, wire.ExampleQuickstart()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+"/v1/sessions/"+sess.ID+"/workloads", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Error(err)
		}
	}()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("submit to failed session returned %d, want 409", resp.StatusCode)
	}
	var body struct {
		Error    string `json:"error"`
		Recorder []struct {
			Kind string `json:"kind"`
		} `json:"recorder"`
		RecorderDump string `json:"recorder_dump"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.Error, "already declared") {
		t.Errorf("409 error = %q, want the duplicate-declaration failure", body.Error)
	}
	if len(body.Recorder) == 0 {
		t.Error("409 body carries no recorder events")
	}
	if body.RecorderDump == "" {
		t.Fatal("409 body carries no recorder dump path")
	}

	// The dump parses and holds the events leading up to the failure.
	f, err := os.Open(body.RecorderDump)
	if err != nil {
		t.Fatal(err)
	}
	events, _, err := recorder.ReadDump(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[recorder.Kind]int)
	for _, e := range events {
		kinds[e.Kind]++
	}
	if kinds[recorder.KindWorkerFail] == 0 {
		t.Errorf("dump has no worker_fail event; kinds: %v", kinds)
	}
	if kinds[recorder.KindTaskLaunch] == 0 {
		t.Errorf("dump has no task_launch events from the first batch; kinds: %v", kinds)
	}
}
