package server_test

import (
	"reflect"
	"testing"

	"visibility"
	"visibility/internal/server"
	"visibility/internal/server/client"
	"visibility/internal/wire"
)

// TestE2EAutotraceSession runs the Figure 1 workload in a session with
// automatic tracing enabled and requires the served snapshots to equal
// an untraced in-process run value for value — the crosscheck that
// autotracing changes performance, never results.
func TestE2EAutotraceSession(t *testing.T) {
	_, c, shutdown := newTestServer(t, server.Config{})
	defer shutdown()

	wl := wire.ExampleGraphsim(12)
	sess, err := c.CreateSession(client.SessionConfig{Algorithm: "raycast", Autotrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(wl); err != nil {
		t.Fatal(err)
	}

	rt := visibility.New(visibility.Config{})
	defer rt.Close()
	env := wire.NewEnv(rt)
	if _, err := env.Apply(wl); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"up", "down"} {
		got, err := sess.Snapshot("N", field)
		if err != nil {
			t.Fatal(err)
		}
		want := localRows(rt, env.Region("N"), field)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("field %s: autotraced snapshot diverges from untraced in-process run", field)
		}
	}

	// The session's metrics surface proves tracing actually engaged.
	snap, err := sess.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap["autotrace/candidates"] == 0 {
		t.Errorf("no autotrace candidate committed: %v", snap)
	}
	if snap["trace/replayed"] == 0 {
		t.Errorf("no launches replayed: %v", snap)
	}

	// The sessions listing reports the mode.
	infos, err := c.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, info := range infos {
		if info.ID == sess.ID {
			found = true
			if !info.Autotrace || info.Tracing {
				t.Errorf("session info = %+v, want autotrace on, tracing off", info)
			}
		}
	}
	if !found {
		t.Fatalf("session %s missing from listing", sess.ID)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAutotraceTracingExclusive checks the server rejects a session
// asking for both bracketed and automatic tracing.
func TestAutotraceTracingExclusive(t *testing.T) {
	_, c, shutdown := newTestServer(t, server.Config{})
	defer shutdown()
	if _, err := c.CreateSession(client.SessionConfig{Tracing: true, Autotrace: true}); err == nil {
		t.Fatal("tracing+autotrace session was accepted")
	}
}

// TestAutotraceRestoreQuery checks the restore path's autotrace opt-in.
func TestAutotraceRestoreQuery(t *testing.T) {
	_, c, shutdown := newTestServer(t, server.Config{})
	defer shutdown()
	sess, err := c.CreateSession(client.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(wire.ExampleGraphsim(2)); err != nil {
		t.Fatal(err)
	}
	ckpt, err := sess.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := c.Restore(ckpt, client.SessionConfig{Autotrace: true})
	if err != nil {
		t.Fatal(err)
	}
	infos, err := c.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if info.ID == restored.ID && !info.Autotrace {
			t.Errorf("restored session lost the autotrace flag: %+v", info)
		}
	}
}
