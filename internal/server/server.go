// Package server is the network-facing multi-tenant analysis service:
// each session owns a visibility.Runtime (with its own coherence
// algorithm, tracing setting, and observability registry) driven by a
// single worker goroutine, and clients speak the wire format over HTTP.
//
// Admission control is two-level and bounded everywhere: a global
// in-flight job cap protects the process, a per-session queue cap
// protects the FIFO worker, and both overflows surface as 429 with a
// Retry-After header rather than unbounded buffering. Sessions expire
// when idle, close on demand, and drain gracefully on shutdown — the
// session count returns to zero, taking every worker goroutine with it.
package server

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"visibility"
	"visibility/internal/algo"
	"visibility/internal/fault"
	"visibility/internal/obs"
	"visibility/internal/obs/recorder"
	"visibility/internal/wire"
)

// Config bounds the service. The zero value gets serving defaults.
type Config struct {
	// MaxSessions caps concurrently live sessions (default 64).
	MaxSessions int
	// MaxQueue caps each session's pending jobs (default 32).
	MaxQueue int
	// MaxInFlight caps pending jobs across all sessions (default 256).
	MaxInFlight int
	// IdleTimeout expires sessions with no accepted requests for this
	// long (default 5m; negative disables expiry).
	IdleTimeout time.Duration
	// Workers is the per-session runtime worker count (0 = GOMAXPROCS).
	Workers int
	// SpanCap is each session's span ring capacity (default 4096).
	SpanCap int
	// RecorderCap is the flight-recorder ring capacity (default 16384).
	RecorderCap int
	// RecorderDir, when non-empty, is where the flight recorder dumps its
	// window on a worker failure; the dump path is reported in the 409
	// body and the session description.
	RecorderDir string
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Faults, when non-nil, arms the deterministic fault-injection plane
	// across the service: worker panics and admission rejections at the
	// serving layer, plus every runtime site (analyzer splits, cache
	// bypasses, checkpoint corruption) in the sessions it creates. Fires
	// are journaled to the server's flight recorder.
	Faults *fault.Injector
}

func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 32
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 256
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.SpanCap == 0 {
		c.SpanCap = 4096
	}
	if c.RecorderCap == 0 {
		c.RecorderCap = 16384
	}
	return c
}

// Server is the multi-tenant analysis service. Create with New, mount
// Handler on an http.Server, and call Shutdown to drain.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	metrics *obs.Registry // server-level: http counters + endpoint latency

	// clock is the process-wide monotonic clock shared by the server span
	// buffer, every session span buffer, and the flight recorder, so their
	// timestamps merge onto one axis in the exported trace.
	clock func() int64
	spans *obs.Buffer        // server-level: one span per HTTP request
	rec   *recorder.Recorder // process-wide flight recorder

	active   *obs.Gauge
	rejected *obs.Counter

	mu       sync.Mutex
	sessions map[string]*session // guarded by mu
	nextID   int                 // guarded by mu
	inflight int                 // guarded by mu; jobs accepted, not yet run
	draining bool                // guarded by mu

	janitorStop chan struct{}
	janitorDone chan struct{}

	dumpSeq atomic.Int64 // recorder dump file sequence
}

// New creates a server and starts its idle-session janitor.
func New(cfg Config) *Server {
	base := time.Now()
	clock := func() int64 { return time.Since(base).Nanoseconds() }
	srv := &Server{
		cfg:         cfg.withDefaults(),
		mux:         http.NewServeMux(),
		metrics:     obs.NewRegistry(),
		clock:       clock,
		sessions:    make(map[string]*session),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	srv.spans = obs.NewBufferClock(srv.cfg.SpanCap, clock)
	srv.rec = recorder.NewClock(srv.cfg.RecorderCap, clock)
	srv.cfg.Faults.SetRecorder(srv.rec)
	srv.active = srv.metrics.NewGauge("server/sessions/active")
	srv.rejected = srv.metrics.NewCounter("server/admission/rejected")
	srv.routes()
	go srv.janitor()
	return srv
}

// Handler returns the HTTP handler serving the full API.
func (srv *Server) Handler() http.Handler { return srv.mux }

// Metrics returns the server-level registry (session registries are
// separate by design).
func (srv *Server) Metrics() *obs.Registry { return srv.metrics }

// Recorder returns the process-wide flight recorder.
func (srv *Server) Recorder() *recorder.Recorder { return srv.rec }

// DumpRecorder writes the flight-recorder window to a fresh file in dir
// and returns its path.
func (srv *Server) DumpRecorder(dir string) (string, error) {
	path := filepath.Join(dir, fmt.Sprintf("visserve-recorder-%d-%d.bin", os.Getpid(), srv.dumpSeq.Add(1)))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := srv.rec.Dump(f); err != nil {
		_ = f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return path, nil
}

// sessionFailed reacts to a session latching its first failure: the
// event is journaled, and when RecorderDir is set the recorder window is
// dumped to disk so the state leading up to the failure survives the
// session. The dump path is stored on the session for the 409 body.
func (srv *Server) sessionFailed(s *session) {
	srv.rec.Log(recorder.KindWorkerFail, s.seq, 0)
	if srv.cfg.RecorderDir == "" {
		return
	}
	path, err := srv.DumpRecorder(srv.cfg.RecorderDir)
	if err != nil {
		srv.metrics.NewCounter("server/recorder/dump_errors").Inc()
		return
	}
	s.setDumpPath(path)
}

// SessionCount returns the number of live sessions.
func (srv *Server) SessionCount() int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return len(srv.sessions)
}

// InFlight returns the number of accepted-but-unfinished jobs.
func (srv *Server) InFlight() int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.inflight
}

// --- session lifecycle --------------------------------------------------

var errTooManySessions = fmt.Errorf("session limit reached")

// createSession builds a new session. restore, when non-nil, is applied
// to seed the runtime from a checkpoint before the worker starts.
//
// The seed callback constructs the runtime the worker will own: it runs
// before the worker goroutine exists, so it holds the ownership that the
// worker inherits the moment run starts.
//
//confined:callbacks session-worker
func (srv *Server) createSession(algorithm string, tracing, autotrace bool, shards int, seed func(cfg visibility.Config) (*visibility.Runtime, *wire.Env, error)) (*session, error) {
	if algorithm == "" {
		algorithm = "raycast"
	}
	if _, err := algo.Lookup(algorithm); err != nil {
		return nil, fmt.Errorf("unknown algorithm %q (have %v)", algorithm, algo.Names())
	}
	if tracing && autotrace {
		return nil, fmt.Errorf("tracing and autotrace are mutually exclusive")
	}
	if shards < 0 {
		return nil, fmt.Errorf("invalid shard count %d", shards)
	}
	metrics := obs.NewRegistry()
	// The session buffer shares the server clock so HTTP, queue-wait, and
	// analysis spans land on one time axis in the merged export.
	spans := obs.NewBufferClock(srv.cfg.SpanCap, srv.clock)
	cfg := visibility.Config{
		Algorithm: algorithm,
		Tracing:   tracing,
		AutoTrace: autotrace,
		Shards:    shards,
		Workers:   srv.cfg.Workers,
		Metrics:   metrics,
		Spans:     spans,
		Recorder:  srv.rec,
		Faults:    srv.cfg.Faults,
		// Provenance stays on for every session: the explain and critical-
		// path endpoints must answer for any workload after the fact, and
		// the capture cost is bounded by the same <3% obs gate as the rest
		// of the always-on instrumentation.
		Provenance: true,
	}
	rt, env, err := seed(cfg)
	if err != nil {
		return nil, err
	}

	srv.mu.Lock()
	if srv.draining {
		srv.mu.Unlock()
		rt.Close()
		return nil, errDraining
	}
	if len(srv.sessions) >= srv.cfg.MaxSessions {
		srv.mu.Unlock()
		rt.Close()
		return nil, errTooManySessions
	}
	srv.nextID++
	id := fmt.Sprintf("s%06d", srv.nextID)
	s := srv.newSession(id, algorithm, tracing, autotrace, shards, rt, env, metrics, spans)
	s.seq = int64(srv.nextID)
	srv.sessions[id] = s
	srv.active.Set(int64(len(srv.sessions)))
	srv.mu.Unlock()
	srv.rec.Log(recorder.KindSessionOpen, s.seq, 0)
	return s, nil
}

// session returns the live session with the given id, or nil.
func (srv *Server) session(id string) *session {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.sessions[id]
}

// sessionList returns the live sessions (order unspecified).
func (srv *Server) sessionList() []*session {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	out := make([]*session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		out = append(out, s)
	}
	// Deterministic order: janitor expiry and metrics merging walk this
	// list, and the recorder events they emit are compared across runs.
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// closeSession removes s from the table and shuts down its worker; when
// wait is true it blocks until the worker has released the runtime.
func (srv *Server) closeSession(s *session, wait bool) {
	if s.beginClose() {
		srv.mu.Lock()
		delete(srv.sessions, s.id)
		srv.active.Set(int64(len(srv.sessions)))
		srv.mu.Unlock()
		srv.rec.Log(recorder.KindSessionClose, s.seq, 0)
	}
	if wait {
		<-s.done
	}
}

// --- admission ----------------------------------------------------------

var (
	errDraining = fmt.Errorf("server is draining")
	errOverload = fmt.Errorf("server in-flight limit reached")
)

// admit reserves one global in-flight slot; the caller must release it
// via jobDone (normally the worker does, after running the job) or
// unadmit (when the per-session enqueue fails).
func (srv *Server) admit() error {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if srv.draining {
		return errDraining
	}
	if srv.inflight >= srv.cfg.MaxInFlight {
		return errOverload
	}
	srv.inflight++
	return nil
}

func (srv *Server) jobDone() {
	srv.mu.Lock()
	srv.inflight--
	srv.mu.Unlock()
}

func (srv *Server) unadmit() { srv.jobDone() }

// Admission reject reason codes journaled in KindAdmitReject's B field.
const (
	rejectGlobalCap   = 1
	rejectSessionCap  = 2
	rejectSessionGone = 3
)

// submit admits a job globally, then to the session queue.
func (srv *Server) submit(s *session, j job) error {
	// Fault plane: an AdmitBurst fire rejects as if the global in-flight
	// cap were hit, simulating overload pressure against this session.
	if srv.cfg.Faults.Fire(fault.AdmitBurst, s.seq) {
		srv.rejected.Inc()
		srv.rec.Log(recorder.KindAdmitReject, s.seq, rejectGlobalCap)
		return errOverload
	}
	if err := srv.admit(); err != nil {
		srv.rejected.Inc()
		srv.rec.Log(recorder.KindAdmitReject, s.seq, rejectGlobalCap)
		return err
	}
	if err := s.enqueue(j); err != nil {
		srv.unadmit()
		if err == errSessionBusy {
			srv.rejected.Inc()
			srv.rec.Log(recorder.KindAdmitReject, s.seq, rejectSessionCap)
		} else {
			srv.rec.Log(recorder.KindAdmitReject, s.seq, rejectSessionGone)
		}
		return err
	}
	return nil
}

// doSync runs fn on the session worker and waits, through full admission.
// tc, when valid, parents the queue-wait and analysis spans the job emits.
//
//confined:callbacks session-worker
func (srv *Server) doSync(s *session, tc obs.TraceContext, fn func()) error {
	j := job{fn: fn, done: make(chan struct{}), tc: tc}
	if err := srv.submit(s, j); err != nil {
		return err
	}
	<-j.done
	return nil
}

// --- janitor and shutdown -----------------------------------------------

// janitor expires sessions that have been idle (no accepted requests,
// empty queue) longer than IdleTimeout.
func (srv *Server) janitor() {
	defer close(srv.janitorDone)
	if srv.cfg.IdleTimeout < 0 {
		<-srv.janitorStop
		return
	}
	tick := srv.cfg.IdleTimeout / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	expired := srv.metrics.NewCounter("server/sessions/expired")
	for {
		select {
		case <-srv.janitorStop:
			return
		case <-t.C:
			cutoff := time.Now().Add(-srv.cfg.IdleTimeout)
			for _, s := range srv.sessionList() {
				last, queued := s.idleSince()
				if queued == 0 && last.Before(cutoff) {
					srv.closeSession(s, false)
					expired.Inc()
				}
			}
		}
	}
}

// Shutdown drains the service: new sessions and submissions are refused
// (503), every live session finishes its queued work and releases its
// runtime, and the janitor stops. After Shutdown the session count is
// zero and no worker goroutines remain. The context bounds the wait for
// in-flight work.
func (srv *Server) Shutdown(ctx context.Context) error {
	srv.mu.Lock()
	already := srv.draining
	srv.draining = true
	srv.mu.Unlock()
	if !already {
		close(srv.janitorStop)
	}
	<-srv.janitorDone

	for _, s := range srv.sessionList() {
		if s.beginClose() {
			srv.mu.Lock()
			delete(srv.sessions, s.id)
			srv.active.Set(int64(len(srv.sessions)))
			srv.mu.Unlock()
		}
		select {
		case <-s.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}
