package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	_ "visibility/internal/apps/stencil"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sampleRecord is a hand-pinned two-cell record used by the encoding and
// diff tests; field values are arbitrary but stable.
func sampleRecord() *Record {
	return &Record{
		Meta: Meta{
			Schema: Schema, Commit: "abc1234", GoVersion: "go1.24.0",
			GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 8,
			Reps: 3, Iters: 3, MaxNodes: 2, Apps: []string{"stencil"},
		},
		Cells: []Cell{
			{
				App: "stencil", System: "raycast_nodcr", Nodes: 1, Launches: 500,
				WallSeconds: 0.025, LaunchesPerSec: 20000,
				InitTime: 0.012, IterTime: 0.004, ThroughputPerNode: 250000,
				AllocsPerLaunch: 41.5, BytesPerLaunch: 3072,
				AnalysisP50Ns: 1500, AnalysisP95Ns: 4200, AnalysisP99Ns: 9000,
			},
			{
				App: "stencil", System: "raycast_dcr", Nodes: 2, Launches: 1000,
				WallSeconds: 0.05, LaunchesPerSec: 20000,
				InitTime: 0.013, IterTime: 0.0041, ThroughputPerNode: 245000,
				AllocsPerLaunch: 42, BytesPerLaunch: 3100,
				AnalysisP50Ns: 1600, AnalysisP95Ns: 4400, AnalysisP99Ns: 9100,
			},
		},
	}
}

// TestGoldenRoundTrip pins the VISBENCH1 wire format: the golden file
// decodes, re-encodes byte-identically, and Encode is idempotent on the
// decoded record — so committed BENCH_*.json files diff cleanly and the
// schema cannot drift silently.
func TestGoldenRoundTrip(t *testing.T) {
	golden := filepath.Join("testdata", "golden_visbench1.json")
	if *update {
		if err := WriteFile(golden, sampleRecord()); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := rec.Encode(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("decode->encode is not byte-identical to the golden file:\ngot:\n%s\nwant:\n%s", got.Bytes(), want)
	}
	// Encoding the in-memory sample (whose cells are deliberately out of
	// canonical order) must also match: Encode sorts.
	var fresh bytes.Buffer
	if err := sampleRecord().Encode(&fresh); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh.Bytes(), want) {
		t.Errorf("fresh encode differs from golden file:\ngot:\n%s", fresh.Bytes())
	}
}

func TestDecodeRejectsBadRecords(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"wrong schema", `{"meta":{"schema":"VISBENCH9"},"cells":[]}`, "unsupported schema"},
		{"missing schema", `{"meta":{},"cells":[]}`, "unsupported schema"},
		{"unknown field", `{"meta":{"schema":"VISBENCH1"},"cells":[],"extra":1}`, "unknown field"},
		{"not json", `nope`, "decoding record"},
	}
	for _, tc := range cases {
		_, err := Decode(strings.NewReader(tc.body))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestEncodeRefusesForeignSchema(t *testing.T) {
	r := sampleRecord()
	r.Meta.Schema = "VISBENCH9"
	if err := r.Encode(&bytes.Buffer{}); err == nil {
		t.Error("encoding a foreign schema did not fail")
	}
	// An empty schema is filled in with the pinned one.
	r.Meta.Schema = ""
	if err := r.Encode(&bytes.Buffer{}); err != nil {
		t.Errorf("encoding with empty schema: %v", err)
	}
	if r.Meta.Schema != Schema {
		t.Errorf("Encode left schema %q, want %s", r.Meta.Schema, Schema)
	}
}

// TestCollectSmall runs a real (tiny) collection and checks every cell
// is measured: wall time, throughput, allocation, and latency fields are
// populated, cells are canonically ordered, and the file round-trips.
func TestCollectSmall(t *testing.T) {
	rec, err := Collect(Options{Apps: []string{"stencil"}, MaxNodes: 2, Iters: 1, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 5 paper configs x 2 node counts.
	if len(rec.Cells) != 10 {
		t.Fatalf("got %d cells, want 10", len(rec.Cells))
	}
	if rec.Meta.Schema != Schema || rec.Meta.Reps != 2 || rec.Meta.GoVersion == "" || rec.Meta.GOMAXPROCS < 1 {
		t.Errorf("bad meta: %+v", rec.Meta)
	}
	for i, c := range rec.Cells {
		if c.Launches == 0 || c.WallSeconds <= 0 || c.LaunchesPerSec <= 0 {
			t.Errorf("cell %s: unmeasured throughput: %+v", c.Key(), c)
		}
		if c.AllocsPerLaunch <= 0 || c.BytesPerLaunch <= 0 {
			t.Errorf("cell %s: unmeasured allocations: %+v", c.Key(), c)
		}
		if c.AnalysisP95Ns <= 0 || c.AnalysisP99Ns < c.AnalysisP95Ns || c.AnalysisP95Ns < c.AnalysisP50Ns {
			t.Errorf("cell %s: implausible latency quantiles p50=%d p95=%d p99=%d",
				c.Key(), c.AnalysisP50Ns, c.AnalysisP95Ns, c.AnalysisP99Ns)
		}
		if c.InitTime <= 0 || c.IterTime <= 0 {
			t.Errorf("cell %s: missing virtual-time metrics: %+v", c.Key(), c)
		}
		if i > 0 {
			prev := rec.Cells[i-1]
			if prev.App > c.App || (prev.App == c.App && prev.System > c.System) ||
				(prev.App == c.App && prev.System == c.System && prev.Nodes >= c.Nodes) {
				t.Errorf("cells not in canonical order at %d: %s then %s", i, prev.Key(), c.Key())
			}
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteFile(path, rec); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := rec.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := back.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("collected record does not round-trip byte-identically")
	}
}

// TestCollectAutoTrace checks the -autotrace collection shape: every
// configuration gains a "_auto" sibling cell, measured and canonically
// ordered, with no change to the record schema.
func TestCollectAutoTrace(t *testing.T) {
	rec, err := Collect(Options{Apps: []string{"stencil"}, MaxNodes: 2, Iters: 1, AutoIters: 5, AutoTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	// 5 paper configs x 2 node counts, doubled by the _auto siblings.
	if len(rec.Cells) != 20 {
		t.Fatalf("got %d cells, want 20", len(rec.Cells))
	}
	autos := 0
	for _, c := range rec.Cells {
		if !strings.HasSuffix(c.System, "_auto") {
			continue
		}
		autos++
		if c.Launches == 0 || c.WallSeconds <= 0 || c.LaunchesPerSec <= 0 {
			t.Errorf("cell %s: unmeasured throughput: %+v", c.Key(), c)
		}
	}
	if autos != 10 {
		t.Errorf("got %d _auto cells, want 10", autos)
	}
}

func TestCollectUnknownApp(t *testing.T) {
	if _, err := Collect(Options{Apps: []string{"zmachine"}, MaxNodes: 1}); err == nil {
		t.Error("collecting an unregistered app did not fail")
	}
}

// TestCollectProfiles checks -profile-out capture: one CPU and one heap
// profile per cell, each a non-empty pprof file.
func TestCollectProfiles(t *testing.T) {
	dir := t.TempDir()
	rec, err := Collect(Options{Apps: []string{"stencil"}, MaxNodes: 1, Iters: 1, ProfileDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rec.Cells {
		for _, kind := range []string{"cpu", "heap"} {
			path := filepath.Join(dir, c.App+"_"+c.System+"_n1."+kind+".pprof")
			st, err := os.Stat(path)
			if err != nil {
				t.Errorf("missing %s profile: %v", kind, err)
				continue
			}
			if st.Size() == 0 {
				t.Errorf("%s: empty %s profile", path, kind)
			}
		}
	}
}
