package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"visibility/internal/apps"
	"visibility/internal/harness"
	"visibility/internal/obs"
)

// Options configures one benchmark collection.
type Options struct {
	// Apps are the application names to measure (resolved through the
	// apps registry; the caller's blank imports decide what is
	// registered).
	Apps []string
	// MaxNodes bounds the power-of-two machine-size sweep.
	MaxNodes int
	// Iters is the number of steady-state iterations timed per run
	// (0 = harness default of 3).
	Iters int
	// Reps repeats every cell and aggregates min-of-reps (best
	// throughput, fewest allocations, lowest latency) — the repetition
	// discipline that makes wall-clock numbers comparable across runs.
	// 0 or 1 measures once.
	Reps int
	// Commit identifies the measured code in the record's metadata
	// (empty = "unknown").
	Commit string
	// ProfileDir, when non-empty, receives per-cell pprof profiles:
	// <app>_<system>_n<nodes>.cpu.pprof covering the cell's repetitions
	// and a matching .heap.pprof taken after them, for offline hot-path
	// attribution with `go tool pprof`.
	ProfileDir string
	// SpanCapacity bounds the per-run span ring the latency quantiles
	// are computed from (0 = a default that comfortably holds the
	// default sweeps). If a run records more analysis spans than this,
	// the quantiles cover the most recent SpanCapacity spans.
	SpanCapacity int
	// AutoTrace additionally measures every configuration with automatic
	// trace memoization enabled, as "<system>_auto" cells. The record
	// schema is unchanged — the system-name suffix is the only visible
	// difference.
	AutoTrace bool
	// AutoIters overrides Iters for the autotraced cells (0 = 30):
	// replay throughput is a steady-state property, so autotraced cells
	// time a longer window to keep the single recording iteration from
	// dominating the measurement.
	AutoIters int
	// Shards additionally measures every configuration with the shard
	// layer at each listed shard count, as "<system>_shard<N>" cells. A
	// value of 1 measures the shard layer's single-atom overhead against
	// the direct baseline; values above 1 measure parallel analysis.
	Shards []int
}

// Collect measures every cell of the configured sweep and returns the
// assembled record. Cells run serially — never in parallel — because the
// wall-clock measurements (time, ReadMemStats allocation deltas, CPU
// profiles) are process-global and concurrent cells would pollute each
// other; a collection is a measurement session, not a throughput race.
func Collect(opts Options) (*Record, error) {
	reps := opts.Reps
	if reps < 1 {
		reps = 1
	}
	spanCap := opts.SpanCapacity
	if spanCap <= 0 {
		spanCap = 1 << 17
	}
	commit := opts.Commit
	if commit == "" {
		commit = "unknown"
	}
	if opts.ProfileDir != "" {
		if err := os.MkdirAll(opts.ProfileDir, 0o755); err != nil {
			return nil, fmt.Errorf("bench: profile dir: %w", err)
		}
	}
	appNames := append([]string(nil), opts.Apps...)
	sort.Strings(appNames)

	rec := &Record{Meta: Meta{
		Schema:     Schema,
		Commit:     commit,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Reps:       reps,
		Iters:      opts.Iters,
		MaxNodes:   opts.MaxNodes,
		Apps:       appNames,
	}}

	for _, name := range appNames {
		builder, ok := apps.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown app %q (have %v)", name, apps.Names())
		}
		for _, cfg := range harness.PaperConfigs() {
			for _, nodes := range harness.NodeSweep(opts.MaxNodes) {
				cell, err := measureCell(builder, name, cfg.Algorithm, cfg.DCR, false, 0, nodes, opts.Iters, reps, spanCap, opts.ProfileDir)
				if err != nil {
					return nil, err
				}
				rec.Cells = append(rec.Cells, cell)
				if opts.AutoTrace {
					autoIters := opts.AutoIters
					if autoIters <= 0 {
						autoIters = 30
					}
					cell, err := measureCell(builder, name, cfg.Algorithm, cfg.DCR, true, 0, nodes, autoIters, reps, spanCap, opts.ProfileDir)
					if err != nil {
						return nil, err
					}
					rec.Cells = append(rec.Cells, cell)
				}
				for _, shards := range opts.Shards {
					if shards < 1 {
						return nil, fmt.Errorf("bench: invalid shard count %d", shards)
					}
					cell, err := measureCell(builder, name, cfg.Algorithm, cfg.DCR, false, shards, nodes, opts.Iters, reps, spanCap, opts.ProfileDir)
					if err != nil {
						return nil, err
					}
					rec.Cells = append(rec.Cells, cell)
				}
			}
		}
	}
	rec.Sort()
	return rec, nil
}

// measureCell runs one cell reps times and folds the repetitions
// min-of-reps: fastest wall time (hence best launches/sec), fewest
// allocations per launch, lowest latency quantiles. The virtual-time
// metrics are deterministic and identical across reps, so they are taken
// from the last run.
func measureCell(builder apps.Builder, app, algorithm string, dcr, auto bool, shards, nodes, iters, reps, spanCap int, profileDir string) (Cell, error) {
	system := harness.SystemName(algorithm, dcr)
	if auto {
		system = harness.AutoSystemName(algorithm, dcr)
	}
	system = harness.ShardSystemName(system, shards)
	cell := Cell{App: app, System: system, Nodes: nodes}

	var cpuFile *os.File
	if profileDir != "" {
		base := filepath.Join(profileDir, fmt.Sprintf("%s_%s_n%d", app, cell.System, nodes))
		f, err := os.Create(base + ".cpu.pprof")
		if err != nil {
			return cell, fmt.Errorf("bench: cpu profile: %w", err)
		}
		cpuFile = f
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return cell, fmt.Errorf("bench: cpu profile: %w", err)
		}
	}

	for rep := 0; rep < reps; rep++ {
		spans := obs.NewBuffer(spanCap)
		// Settle the heap so the allocation delta belongs to this run,
		// not to garbage carried over from the previous cell.
		runtime.GC()
		before := obs.ReadAllocs()
		start := time.Now()
		r, err := harness.Run(harness.Config{
			App: builder, AppName: app,
			Algorithm: algorithm, DCR: dcr, AutoTrace: auto, Shards: shards,
			Nodes: nodes, MeasureIters: iters,
			Spans: spans,
		})
		wall := time.Since(start).Seconds()
		allocs, bytes := obs.ReadAllocs().Since(before)
		if err != nil {
			_ = stopCellProfile(cpuFile, "") // the run error is primary
			return cell, err
		}

		qs := obs.Quantiles(obs.SpanDurations(spans.Snapshot(), "analysis"), 0.50, 0.95, 0.99)
		launchesPerSec := 0.0
		if wall > 0 {
			launchesPerSec = float64(r.Launches) / wall
		}
		perLaunch := func(v int64) float64 {
			if r.Launches == 0 {
				return 0
			}
			return float64(v) / float64(r.Launches)
		}

		if rep == 0 {
			cell.Launches = r.Launches
			cell.WallSeconds = wall
			cell.LaunchesPerSec = launchesPerSec
			cell.AllocsPerLaunch = perLaunch(allocs)
			cell.BytesPerLaunch = perLaunch(bytes)
			cell.AnalysisP50Ns, cell.AnalysisP95Ns, cell.AnalysisP99Ns = qs[0], qs[1], qs[2]
		} else {
			cell.WallSeconds = min(cell.WallSeconds, wall)
			cell.LaunchesPerSec = max(cell.LaunchesPerSec, launchesPerSec)
			cell.AllocsPerLaunch = min(cell.AllocsPerLaunch, perLaunch(allocs))
			cell.BytesPerLaunch = min(cell.BytesPerLaunch, perLaunch(bytes))
			cell.AnalysisP50Ns = min(cell.AnalysisP50Ns, qs[0])
			cell.AnalysisP95Ns = min(cell.AnalysisP95Ns, qs[1])
			cell.AnalysisP99Ns = min(cell.AnalysisP99Ns, qs[2])
		}
		cell.InitTime = r.InitTime
		cell.IterTime = r.IterTime
		cell.ThroughputPerNode = r.ThroughputPerNode
	}

	heapPath := ""
	if profileDir != "" {
		heapPath = filepath.Join(profileDir, fmt.Sprintf("%s_%s_n%d.heap.pprof", app, cell.System, nodes))
	}
	if err := stopCellProfile(cpuFile, heapPath); err != nil {
		return cell, err
	}
	return cell, nil
}

// stopCellProfile finishes the cell's CPU profile (if one is running)
// and, when heapPath is non-empty, captures a post-GC heap profile.
func stopCellProfile(cpuFile *os.File, heapPath string) error {
	if cpuFile != nil {
		pprof.StopCPUProfile()
		if err := cpuFile.Close(); err != nil {
			return fmt.Errorf("bench: cpu profile: %w", err)
		}
	}
	if heapPath == "" {
		return nil
	}
	f, err := os.Create(heapPath)
	if err != nil {
		return fmt.Errorf("bench: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC() // profile live heap, not collectable garbage
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("bench: heap profile: %w", err)
	}
	return nil
}
