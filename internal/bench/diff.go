package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// Thresholds configures the regression gate. Each threshold is a percent
// and only enforced when positive; zero disables that gate, so a plain
// diff never fails on its own.
type Thresholds struct {
	// MaxRegressPct breaches when a cell's wall-clock launches/sec drops
	// by more than this percent. Wall numbers are machine-dependent, so
	// cross-machine gates should use a generous value here and lean on
	// the two deterministic gates below.
	MaxRegressPct float64
	// MaxAllocGrowthPct breaches when allocs/launch grows by more than
	// this percent. Allocation counts are near-deterministic, so this
	// gate is meaningful across machines.
	MaxAllocGrowthPct float64
	// MaxVirtRegressPct breaches when the virtual-time per-iteration
	// analysis cost grows by more than this percent. Virtual time is a
	// deterministic replay, identical on every machine.
	MaxVirtRegressPct float64
}

// CellDelta compares one cell across two records. Percent deltas are
// new-relative-to-old: positive LaunchesPerSecPct is faster, positive
// AllocsPct is more garbage.
type CellDelta struct {
	Key      string
	Old, New Cell

	LaunchesPerSecPct float64
	AllocsPct         float64
	BytesPct          float64
	P95Pct            float64
	IterTimePct       float64

	// Breaches names the exceeded thresholds, empty when the cell passes.
	Breaches []string
}

// DiffReport is the outcome of comparing two records cell-by-cell over
// their common keys.
type DiffReport struct {
	Deltas []CellDelta
	// MissingInNew lists old cells absent from the new record (a shrunk
	// sweep — reported, not gated); MissingInOld lists new cells with no
	// baseline yet.
	MissingInNew []string
	MissingInOld []string
	// Breached is true when any cell exceeded a threshold.
	Breached bool
}

// pctDelta returns (cur-prev)/prev as a percent; with a zero baseline
// there is no meaningful ratio, so the delta is 0 and never gates.
func pctDelta(cur, prev float64) float64 {
	if prev == 0 {
		return 0
	}
	return (cur - prev) / prev * 100
}

// Diff compares cur against the prev baseline under the given
// thresholds. Cells match by Key; the report lists deltas in the
// canonical cell order of the baseline record.
func Diff(prev, cur *Record, th Thresholds) *DiffReport {
	prev.Sort()
	cur.Sort()
	newByKey := make(map[string]Cell, len(cur.Cells))
	for _, c := range cur.Cells {
		newByKey[c.Key()] = c
	}
	oldKeys := make(map[string]bool, len(prev.Cells))
	rep := &DiffReport{}
	for _, oc := range prev.Cells {
		key := oc.Key()
		oldKeys[key] = true
		nc, ok := newByKey[key]
		if !ok {
			rep.MissingInNew = append(rep.MissingInNew, key)
			continue
		}
		d := CellDelta{
			Key: key, Old: oc, New: nc,
			LaunchesPerSecPct: pctDelta(nc.LaunchesPerSec, oc.LaunchesPerSec),
			AllocsPct:         pctDelta(nc.AllocsPerLaunch, oc.AllocsPerLaunch),
			BytesPct:          pctDelta(nc.BytesPerLaunch, oc.BytesPerLaunch),
			P95Pct:            pctDelta(float64(nc.AnalysisP95Ns), float64(oc.AnalysisP95Ns)),
			IterTimePct:       pctDelta(nc.IterTime, oc.IterTime),
		}
		if th.MaxRegressPct > 0 && d.LaunchesPerSecPct < -th.MaxRegressPct {
			d.Breaches = append(d.Breaches, fmt.Sprintf("launches/sec %.1f%% (limit -%.1f%%)", d.LaunchesPerSecPct, th.MaxRegressPct))
		}
		if th.MaxAllocGrowthPct > 0 && d.AllocsPct > th.MaxAllocGrowthPct {
			d.Breaches = append(d.Breaches, fmt.Sprintf("allocs/launch +%.1f%% (limit +%.1f%%)", d.AllocsPct, th.MaxAllocGrowthPct))
		}
		if th.MaxVirtRegressPct > 0 && d.IterTimePct > th.MaxVirtRegressPct {
			d.Breaches = append(d.Breaches, fmt.Sprintf("virtual iter time +%.1f%% (limit +%.1f%%)", d.IterTimePct, th.MaxVirtRegressPct))
		}
		if len(d.Breaches) > 0 {
			rep.Breached = true
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	for _, nc := range cur.Cells {
		if !oldKeys[nc.Key()] {
			rep.MissingInOld = append(rep.MissingInOld, nc.Key())
		}
	}
	return rep
}

// Variant returns the measurement-variant suffix of a system name — the
// part after the algorithm and DCR tokens: "" for "raycast_dcr", "auto"
// for "raycast_dcr_auto", "shard4" for "paint_nodcr_shard4",
// "auto_shard4" for a composed cell.
func Variant(system string) string {
	for _, tok := range []string{"_nodcr", "_dcr"} {
		if i := strings.Index(system, tok); i >= 0 {
			return strings.TrimPrefix(system[i+len(tok):], "_")
		}
	}
	return ""
}

// VariantAggregate is the launches/sec aggregate (total launches over
// total wall time) for one measurement variant across the compared
// cells, for the baseline and candidate sides.
type VariantAggregate struct {
	Variant   string // "" is the plain cells; "trace", "auto", "shard4", ...
	Cells     int
	Prev, Cur float64
}

// AggregateDeltas returns one launches/sec aggregate per measurement
// variant across the compared cells only. Restricting to common cells
// keeps the numbers meaningful when one record covers a wider sweep;
// aggregating per variant keeps them meaningful when a record mixes
// plain cells with "_auto"/"_shard<N>" cells, whose deliberately
// different regimes (longer replay windows, fan-out overhead) would
// otherwise let sweep composition masquerade as drift. Variants are
// returned in sorted order with the plain variant first.
func (rep *DiffReport) AggregateDeltas() []VariantAggregate {
	type sums struct {
		prevL, prevW, curL, curW float64
		n                        int
	}
	byVariant := make(map[string]*sums)
	for _, d := range rep.Deltas {
		v := Variant(d.New.System)
		s := byVariant[v]
		if s == nil {
			s = &sums{}
			byVariant[v] = s
		}
		s.prevL += float64(d.Old.Launches)
		s.prevW += d.Old.WallSeconds
		s.curL += float64(d.New.Launches)
		s.curW += d.New.WallSeconds
		s.n++
	}
	variants := make([]string, 0, len(byVariant))
	for v := range byVariant {
		variants = append(variants, v)
	}
	sort.Strings(variants) // "" sorts first, so the plain cells lead
	out := make([]VariantAggregate, 0, len(variants))
	for _, v := range variants {
		s := byVariant[v]
		agg := VariantAggregate{Variant: v, Cells: s.n}
		if s.prevW > 0 {
			agg.Prev = s.prevL / s.prevW
		}
		if s.curW > 0 {
			agg.Cur = s.curL / s.curW
		}
		out = append(out, agg)
	}
	return out
}

// WriteTable renders the per-cell delta table plus missing-cell notes
// and the aggregate drift line. Breaching cells are marked with '!' and
// restated under the table so a failing CI log names the exact gates.
func (rep *DiffReport) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	p := &printer{w: tw}
	p.printf("CELL\tLAUNCH/S\tΔ%%\tALLOC/OP\tΔ%%\tBYTES/OP\tΔ%%\tP95µs\tΔ%%\tITER\tΔ%%\t\n")
	for _, d := range rep.Deltas {
		mark := ""
		if len(d.Breaches) > 0 {
			mark = "!"
		}
		p.printf("%s\t%.0f\t%+.1f\t%.1f\t%+.1f\t%.0f\t%+.1f\t%.0f\t%+.1f\t%.3g\t%+.1f\t%s\n",
			d.Key,
			d.New.LaunchesPerSec, d.LaunchesPerSecPct,
			d.New.AllocsPerLaunch, d.AllocsPct,
			d.New.BytesPerLaunch, d.BytesPct,
			float64(d.New.AnalysisP95Ns)/1e3, d.P95Pct,
			d.New.IterTime, d.IterTimePct,
			mark)
	}
	if p.err == nil {
		p.err = tw.Flush()
	}
	p.w = w
	for _, key := range rep.MissingInNew {
		p.printf("missing in new record: %s\n", key)
	}
	for _, key := range rep.MissingInOld {
		p.printf("no baseline for: %s\n", key)
	}
	for _, agg := range rep.AggregateDeltas() {
		label := agg.Variant
		if label == "" {
			label = "plain"
		}
		p.printf("aggregate launches/sec (%s): %.0f -> %.0f (%+.1f%%) over %d common cell(s)\n",
			label, agg.Prev, agg.Cur, pctDelta(agg.Cur, agg.Prev), agg.Cells)
	}
	for _, d := range rep.Deltas {
		for _, b := range d.Breaches {
			p.printf("REGRESSION %s: %s\n", d.Key, b)
		}
	}
	return p.err
}

// printer holds the first write error so report rendering checks once.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}
