package bench

import (
	"strings"
	"testing"
)

// regress returns the sample record with one cell's throughput cut and
// allocations grown by the given factors.
func regress(throughputFactor, allocFactor, iterFactor float64) *Record {
	r := sampleRecord()
	for i := range r.Cells {
		r.Cells[i].LaunchesPerSec *= throughputFactor
		r.Cells[i].AllocsPerLaunch *= allocFactor
		r.Cells[i].IterTime *= iterFactor
	}
	return r
}

func TestDiffSelfIsAllZero(t *testing.T) {
	rep := Diff(sampleRecord(), sampleRecord(), Thresholds{MaxRegressPct: 1, MaxAllocGrowthPct: 1, MaxVirtRegressPct: 1})
	if rep.Breached {
		t.Error("self-diff breached thresholds")
	}
	if len(rep.Deltas) != 2 || len(rep.MissingInNew) != 0 || len(rep.MissingInOld) != 0 {
		t.Fatalf("self-diff shape: %+v", rep)
	}
	for _, d := range rep.Deltas {
		if d.LaunchesPerSecPct != 0 || d.AllocsPct != 0 || d.BytesPct != 0 || d.P95Pct != 0 || d.IterTimePct != 0 {
			t.Errorf("self-diff cell %s has nonzero deltas: %+v", d.Key, d)
		}
	}
	var buf strings.Builder
	if err := rep.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "+0.0") || strings.Contains(out, "REGRESSION") {
		t.Errorf("self-diff table not all-zero:\n%s", out)
	}
}

// TestDiffCatchesThroughputRegression is the gate the CI perf job relies
// on: a synthetic 50% launches/sec loss must breach a 10% threshold.
func TestDiffCatchesThroughputRegression(t *testing.T) {
	rep := Diff(sampleRecord(), regress(0.5, 1, 1), Thresholds{MaxRegressPct: 10})
	if !rep.Breached {
		t.Fatal("50% throughput loss did not breach a 10% gate")
	}
	var buf strings.Builder
	if err := rep.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "REGRESSION") || !strings.Contains(buf.String(), "launches/sec") {
		t.Errorf("table does not name the breached gate:\n%s", buf.String())
	}
	// The same loss passes with the gate disabled (0) or set above 50%.
	if Diff(sampleRecord(), regress(0.5, 1, 1), Thresholds{}).Breached {
		t.Error("disabled gates still breached")
	}
	if Diff(sampleRecord(), regress(0.5, 1, 1), Thresholds{MaxRegressPct: 60}).Breached {
		t.Error("50% loss breached a 60% gate")
	}
}

func TestDiffCatchesAllocAndVirtGrowth(t *testing.T) {
	if !Diff(sampleRecord(), regress(1, 1.5, 1), Thresholds{MaxAllocGrowthPct: 20}).Breached {
		t.Error("50% alloc growth did not breach a 20% gate")
	}
	if !Diff(sampleRecord(), regress(1, 1, 1.3), Thresholds{MaxVirtRegressPct: 10}).Breached {
		t.Error("30% virtual iter-time growth did not breach a 10% gate")
	}
	// Improvements never breach.
	if Diff(sampleRecord(), regress(2, 0.5, 0.5), Thresholds{MaxRegressPct: 1, MaxAllocGrowthPct: 1, MaxVirtRegressPct: 1}).Breached {
		t.Error("an across-the-board improvement breached")
	}
}

func TestDiffMissingCells(t *testing.T) {
	prev, cur := sampleRecord(), sampleRecord()
	// Keep only the first canonical cell, then add one with no baseline.
	cur.Sort()
	cur.Cells = cur.Cells[:1]
	extra := sampleRecord().Cells[0]
	extra.System = "warnock_dcr"
	cur.Cells = append(cur.Cells, extra)
	rep := Diff(prev, cur, Thresholds{})
	if len(rep.MissingInNew) != 1 {
		t.Errorf("MissingInNew = %v, want one entry", rep.MissingInNew)
	}
	if len(rep.MissingInOld) != 1 || !strings.Contains(rep.MissingInOld[0], "warnock_dcr") {
		t.Errorf("MissingInOld = %v, want the warnock cell", rep.MissingInOld)
	}
	if rep.Breached {
		t.Error("missing cells alone must not breach")
	}
}

func TestAggregateLaunchesPerSec(t *testing.T) {
	r := sampleRecord()
	// 1500 launches over 0.075 s = 20000/s.
	if got := r.AggregateLaunchesPerSec(); got < 19999 || got > 20001 {
		t.Errorf("aggregate = %v, want 20000", got)
	}
	if got := (&Record{}).AggregateLaunchesPerSec(); got != 0 {
		t.Errorf("empty record aggregate = %v, want 0", got)
	}
}
