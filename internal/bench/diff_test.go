package bench

import (
	"strings"
	"testing"
)

// regress returns the sample record with one cell's throughput cut and
// allocations grown by the given factors.
func regress(throughputFactor, allocFactor, iterFactor float64) *Record {
	r := sampleRecord()
	for i := range r.Cells {
		r.Cells[i].LaunchesPerSec *= throughputFactor
		r.Cells[i].AllocsPerLaunch *= allocFactor
		r.Cells[i].IterTime *= iterFactor
	}
	return r
}

func TestDiffSelfIsAllZero(t *testing.T) {
	rep := Diff(sampleRecord(), sampleRecord(), Thresholds{MaxRegressPct: 1, MaxAllocGrowthPct: 1, MaxVirtRegressPct: 1})
	if rep.Breached {
		t.Error("self-diff breached thresholds")
	}
	if len(rep.Deltas) != 2 || len(rep.MissingInNew) != 0 || len(rep.MissingInOld) != 0 {
		t.Fatalf("self-diff shape: %+v", rep)
	}
	for _, d := range rep.Deltas {
		if d.LaunchesPerSecPct != 0 || d.AllocsPct != 0 || d.BytesPct != 0 || d.P95Pct != 0 || d.IterTimePct != 0 {
			t.Errorf("self-diff cell %s has nonzero deltas: %+v", d.Key, d)
		}
	}
	var buf strings.Builder
	if err := rep.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "+0.0") || strings.Contains(out, "REGRESSION") {
		t.Errorf("self-diff table not all-zero:\n%s", out)
	}
}

// TestDiffCatchesThroughputRegression is the gate the CI perf job relies
// on: a synthetic 50% launches/sec loss must breach a 10% threshold.
func TestDiffCatchesThroughputRegression(t *testing.T) {
	rep := Diff(sampleRecord(), regress(0.5, 1, 1), Thresholds{MaxRegressPct: 10})
	if !rep.Breached {
		t.Fatal("50% throughput loss did not breach a 10% gate")
	}
	var buf strings.Builder
	if err := rep.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "REGRESSION") || !strings.Contains(buf.String(), "launches/sec") {
		t.Errorf("table does not name the breached gate:\n%s", buf.String())
	}
	// The same loss passes with the gate disabled (0) or set above 50%.
	if Diff(sampleRecord(), regress(0.5, 1, 1), Thresholds{}).Breached {
		t.Error("disabled gates still breached")
	}
	if Diff(sampleRecord(), regress(0.5, 1, 1), Thresholds{MaxRegressPct: 60}).Breached {
		t.Error("50% loss breached a 60% gate")
	}
}

func TestDiffCatchesAllocAndVirtGrowth(t *testing.T) {
	if !Diff(sampleRecord(), regress(1, 1.5, 1), Thresholds{MaxAllocGrowthPct: 20}).Breached {
		t.Error("50% alloc growth did not breach a 20% gate")
	}
	if !Diff(sampleRecord(), regress(1, 1, 1.3), Thresholds{MaxVirtRegressPct: 10}).Breached {
		t.Error("30% virtual iter-time growth did not breach a 10% gate")
	}
	// Improvements never breach.
	if Diff(sampleRecord(), regress(2, 0.5, 0.5), Thresholds{MaxRegressPct: 1, MaxAllocGrowthPct: 1, MaxVirtRegressPct: 1}).Breached {
		t.Error("an across-the-board improvement breached")
	}
}

func TestDiffMissingCells(t *testing.T) {
	prev, cur := sampleRecord(), sampleRecord()
	// Keep only the first canonical cell, then add one with no baseline.
	cur.Sort()
	cur.Cells = cur.Cells[:1]
	extra := sampleRecord().Cells[0]
	extra.System = "warnock_dcr"
	cur.Cells = append(cur.Cells, extra)
	rep := Diff(prev, cur, Thresholds{})
	if len(rep.MissingInNew) != 1 {
		t.Errorf("MissingInNew = %v, want one entry", rep.MissingInNew)
	}
	if len(rep.MissingInOld) != 1 || !strings.Contains(rep.MissingInOld[0], "warnock_dcr") {
		t.Errorf("MissingInOld = %v, want the warnock cell", rep.MissingInOld)
	}
	if rep.Breached {
		t.Error("missing cells alone must not breach")
	}
}

func TestVariant(t *testing.T) {
	cases := map[string]string{
		"raycast_dcr":             "",
		"raycast_nodcr":           "",
		"raycast_dcr_trace":       "trace",
		"warnock_nodcr_auto":      "auto",
		"paint_nodcr_shard4":      "shard4",
		"raycast_dcr_auto_shard4": "auto_shard4",
		"unrecognized":            "",
	}
	for system, want := range cases {
		if got := Variant(system); got != want {
			t.Errorf("Variant(%q) = %q, want %q", system, got, want)
		}
	}
}

// TestAggregatePerVariant pins the aggregate fix: a record mixing plain
// cells with variant cells (here "_shard4", which measures a deliberately
// different regime) must aggregate each variant separately — previously
// one mixed total let a variant's cells drag the plain number, so a
// changed sweep composition could masquerade as drift.
func TestAggregatePerVariant(t *testing.T) {
	mk := func() *Record {
		return &Record{Meta: Meta{Schema: Schema}, Cells: []Cell{
			{App: "circuit", System: "raycast_dcr", Nodes: 4, Launches: 1000, WallSeconds: 0.1},
			{App: "circuit", System: "raycast_dcr_shard4", Nodes: 4, Launches: 8000, WallSeconds: 0.1},
		}}
	}
	rep := Diff(mk(), mk(), Thresholds{})
	aggs := rep.AggregateDeltas()
	if len(aggs) != 2 {
		t.Fatalf("got %d aggregates, want one per variant: %+v", len(aggs), aggs)
	}
	if aggs[0].Variant != "" || aggs[0].Cells != 1 || aggs[0].Prev != 10000 || aggs[0].Cur != 10000 {
		t.Errorf("plain aggregate = %+v, want 10000/s over 1 cell", aggs[0])
	}
	if aggs[1].Variant != "shard4" || aggs[1].Cells != 1 || aggs[1].Prev != 80000 || aggs[1].Cur != 80000 {
		t.Errorf("shard4 aggregate = %+v, want 80000/s over 1 cell", aggs[1])
	}
	var buf strings.Builder
	if err := rep.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "aggregate launches/sec (plain): 10000 -> 10000") ||
		!strings.Contains(out, "aggregate launches/sec (shard4): 80000 -> 80000") {
		t.Errorf("table lacks per-variant aggregate lines:\n%s", out)
	}
}

func TestAggregateLaunchesPerSec(t *testing.T) {
	r := sampleRecord()
	// 1500 launches over 0.075 s = 20000/s.
	if got := r.AggregateLaunchesPerSec(); got < 19999 || got > 20001 {
		t.Errorf("aggregate = %v, want 20000", got)
	}
	if got := (&Record{}).AggregateLaunchesPerSec(); got != 0 {
		t.Errorf("empty record aggregate = %v, want 0", got)
	}
}
