// Package bench defines the pinned VISBENCH1 benchmark-record schema —
// the repo's performance trajectory format — and the collector that
// fills it. A record holds one measurement cell per app × system
// configuration × machine size: wall-clock launch-admission throughput,
// allocations per launch (runtime.ReadMemStats deltas around the
// analysis loop), exact p50/p95/p99 analysis-phase latency from the
// span ring, and the paper's virtual-time metrics (init time,
// per-iteration time, weak-scaling throughput), plus run metadata (go
// version, GOMAXPROCS, commit, repetition count).
//
// Records are committed at the repo root as BENCH_<n>.json, one per
// optimization PR, and compared with cmd/benchdiff: the schema pins
// field names and ordering, Encode sorts cells canonically, and
// re-encoding a decoded record is byte-identical, so records diff
// cleanly under plain text tools and the regression gate never trips on
// formatting noise.
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Schema is the pinned record-format identifier. Any change to the field
// set or semantics of Record requires a new schema string; decoders
// reject records they do not understand rather than misreading them.
const Schema = "VISBENCH1"

// Meta describes how a record was produced. Commit identifies the code;
// the runtime fields identify the machine environment, which wall-clock
// cells are only comparable within.
type Meta struct {
	Schema     string   `json:"schema"`
	Commit     string   `json:"commit"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Reps       int      `json:"reps"`
	Iters      int      `json:"iters"`
	MaxNodes   int      `json:"max_nodes"`
	Apps       []string `json:"apps"`
}

// Cell is one measured experiment cell, min-of-reps aggregated. The
// virtual-time fields (init/iter/throughput) are deterministic replays
// of the paper's metrics and comparable across machines; the wall-clock
// fields (launches/sec, allocs, latency quantiles) measure this
// implementation's real analysis cost on the recording machine.
type Cell struct {
	App      string `json:"app"`
	System   string `json:"system"` // e.g. "raycast_dcr", artifact naming
	Nodes    int    `json:"nodes"`
	Launches int    `json:"launches"`

	WallSeconds    float64 `json:"wall_s"`
	LaunchesPerSec float64 `json:"launches_per_sec"`

	InitTime          float64 `json:"init_time_s"` // virtual, Figures 12-14
	IterTime          float64 `json:"iter_time_s"` // virtual, per steady iteration
	ThroughputPerNode float64 `json:"throughput_per_node"`

	AllocsPerLaunch float64 `json:"allocs_per_launch"`
	BytesPerLaunch  float64 `json:"bytes_per_launch"`

	AnalysisP50Ns int64 `json:"analysis_p50_ns"`
	AnalysisP95Ns int64 `json:"analysis_p95_ns"`
	AnalysisP99Ns int64 `json:"analysis_p99_ns"`
}

// Key identifies the cell for cross-record matching.
func (c Cell) Key() string {
	return fmt.Sprintf("%s/%s/n%d", c.App, c.System, c.Nodes)
}

// Record is one point on the benchmark trajectory.
type Record struct {
	Meta  Meta   `json:"meta"`
	Cells []Cell `json:"cells"`
}

// Sort orders cells canonically (app, system, nodes) so that encoded
// records are deterministic regardless of collection order.
func (r *Record) Sort() {
	sort.Slice(r.Cells, func(i, j int) bool {
		a, b := r.Cells[i], r.Cells[j]
		if a.App != b.App {
			return a.App < b.App
		}
		if a.System != b.System {
			return a.System < b.System
		}
		return a.Nodes < b.Nodes
	})
}

// AggregateLaunchesPerSec is the record-wide launch-admission rate:
// total launches over total wall time across all cells. It is the
// one-number summary dashboards show for trajectory drift.
func (r *Record) AggregateLaunchesPerSec() float64 {
	var launches, wall float64
	for _, c := range r.Cells {
		launches += float64(c.Launches)
		wall += c.WallSeconds
	}
	if wall <= 0 {
		return 0
	}
	return launches / wall
}

// Encode writes the record as indented JSON with a trailing newline.
// Cells are sorted canonically first and struct fields marshal in
// declaration order, so equal records always produce identical bytes.
func (r *Record) Encode(w io.Writer) error {
	if r.Meta.Schema == "" {
		r.Meta.Schema = Schema
	}
	if r.Meta.Schema != Schema {
		return fmt.Errorf("bench: cannot encode schema %q (this build writes %s)", r.Meta.Schema, Schema)
	}
	r.Sort()
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Decode reads a record, rejecting unknown fields and unknown schema
// versions: a record from a future schema fails loudly instead of being
// silently misread as VISBENCH1.
func Decode(rd io.Reader) (*Record, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var r Record
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: decoding record: %w", err)
	}
	if r.Meta.Schema != Schema {
		return nil, fmt.Errorf("bench: unsupported schema %q (want %s)", r.Meta.Schema, Schema)
	}
	return &r, nil
}

// ReadFile decodes the record at path.
func ReadFile(path string) (*Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := Decode(bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// WriteFile encodes the record to path.
func WriteFile(path string, r *Record) error {
	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}
