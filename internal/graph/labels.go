package graph

// Labels answers MustPrecede(a, b) — is a an ancestor of b in the
// dependence DAG? — in O(1) per query with no graph walk, in the spirit
// of DePa's parallelism labels: ordering is resolved by comparing
// per-task labels computed once, not by traversing edges at query time.
// Here the label is each task's level plus a packed ancestor bitset,
// built in one forward pass over the (already topologically ordered)
// launch stream.
type Labels struct {
	levels []int
	// anc[i] is task i's ancestor set (strict: excludes i), packed 64
	// tasks per word.
	anc   [][]uint64
	words int
}

// BuildLabels computes precedence labels for d. Cost is O(V·E/64) time
// and O(V²/64) space — for the session-sized streams the explain engine
// serves, cheap enough to build once and cache per stream length.
func (d *DAG) BuildLabels() *Labels {
	n := len(d.Tasks)
	l := &Labels{levels: d.Levels(), words: (n + 63) / 64}
	l.anc = make([][]uint64, n)
	for i := 0; i < n; i++ {
		row := make([]uint64, l.words)
		for _, p := range d.Deps[i] {
			row[p/64] |= 1 << (uint(p) % 64)
			for w, bits := range l.anc[p] {
				row[w] |= bits
			}
		}
		l.anc[i] = row
	}
	return l
}

// MustPrecede reports whether every legal execution runs a before b:
// a is a (transitive) dependence ancestor of b. A task does not precede
// itself. Out-of-range IDs report false. The level label rejects most
// negative queries without touching the bitset.
func (l *Labels) MustPrecede(a, b int) bool {
	if a < 0 || b < 0 || a >= len(l.levels) || b >= len(l.levels) || a == b {
		return false
	}
	if l.levels[a] >= l.levels[b] {
		return false
	}
	return l.anc[b][a/64]&(1<<(uint(a)%64)) != 0
}

// Level returns task t's level label (longest edge count from a root),
// or -1 when t is out of range.
func (l *Labels) Level(t int) int {
	if t < 0 || t >= len(l.levels) {
		return -1
	}
	return l.levels[t]
}
