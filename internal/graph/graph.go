// Package graph provides analytics over discovered dependence DAGs: level
// structure (the parallelism profile), critical paths, and Graphviz
// export. The inspection CLI and tests use it to answer "how much
// parallelism did the analysis expose?".
package graph

import (
	"fmt"
	"io"

	"visibility/internal/core"
)

// DAG is a dependence graph over a task stream: Deps[i] lists the direct
// predecessors of task i (task IDs equal positions).
type DAG struct {
	Tasks []*core.Task
	Deps  [][]int
}

// FromStream assembles a DAG from analyzer results, merging in future
// edges (which the runtime enforces alongside analyzer dependences).
func FromStream(tasks []*core.Task, deps map[int][]int) *DAG {
	d := &DAG{Tasks: tasks, Deps: make([][]int, len(tasks))}
	for i, t := range tasks {
		merged := append(append([]int{}, deps[t.ID]...), t.FutureDeps...)
		d.Deps[i] = core.DedupDeps(merged)
	}
	return d
}

// Edges returns the total number of dependence edges.
func (d *DAG) Edges() int {
	n := 0
	for _, ds := range d.Deps {
		n += len(ds)
	}
	return n
}

// Levels assigns each task its earliest schedulable level (longest path
// from a root) and returns the per-task levels.
func (d *DAG) Levels() []int {
	levels := make([]int, len(d.Tasks))
	for i := range d.Tasks {
		for _, p := range d.Deps[i] {
			if levels[p]+1 > levels[i] {
				levels[i] = levels[p] + 1
			}
		}
	}
	return levels
}

// Widths returns the number of tasks at each level — the parallelism
// profile of the DAG.
func (d *DAG) Widths() []int {
	levels := d.Levels()
	max := 0
	for _, l := range levels {
		if l > max {
			max = l
		}
	}
	widths := make([]int, max+1)
	for _, l := range levels {
		widths[l]++
	}
	return widths
}

// CriticalPath returns one longest chain of task IDs.
func (d *DAG) CriticalPath() []int {
	levels := d.Levels()
	// Find a task on the deepest level and walk back through a
	// predecessor one level shallower each step.
	end, deepest := -1, -1
	for i, l := range levels {
		if l > deepest {
			deepest, end = l, i
		}
	}
	if end == -1 {
		return nil
	}
	var rev []int
	for cur := end; ; {
		rev = append(rev, cur)
		if levels[cur] == 0 {
			break
		}
		next := -1
		for _, p := range d.Deps[cur] {
			if levels[p] == levels[cur]-1 {
				next = p
				break
			}
		}
		if next == -1 {
			break
		}
		cur = next
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// MaxWidth returns the widest level.
func (d *DAG) MaxWidth() int {
	w := 0
	for _, x := range d.Widths() {
		if x > w {
			w = x
		}
	}
	return w
}

// AverageParallelism returns tasks divided by levels — the speedup an
// infinitely wide machine could extract.
func (d *DAG) AverageParallelism() float64 {
	if len(d.Tasks) == 0 {
		return 0
	}
	return float64(len(d.Tasks)) / float64(len(d.Widths()))
}

// WriteDOT exports the DAG in Graphviz format.
func (d *DAG) WriteDOT(w io.Writer) error {
	pw := &printer{w: w}
	pw.printf("digraph deps {\n")
	pw.printf("  rankdir=TB; node [shape=box, fontsize=10];\n")
	for i, t := range d.Tasks {
		pw.printf("  t%d [label=%q];\n", i, t.String())
	}
	for i, ds := range d.Deps {
		for _, p := range ds {
			pw.printf("  t%d -> t%d;\n", p, i)
		}
	}
	pw.printf("}\n")
	return pw.err
}

// printer accumulates formatted output to an io.Writer, holding the first
// write error so WriteDOT can check once at the end instead of after every
// line.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}
