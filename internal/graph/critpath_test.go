package graph_test

import (
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"visibility/internal/core"
	"visibility/internal/graph"
)

var update = flag.Bool("update", false, "rewrite golden files")

// chain builds a DAG of named tasks with explicit dependence lists
// (deps[i] lists predecessors of task i by position/ID).
func chain(names []string, deps map[int][]int) *graph.DAG {
	tasks := make([]*core.Task, len(names))
	for i, n := range names {
		tasks[i] = &core.Task{ID: i, Name: n}
	}
	return graph.FromStream(tasks, deps)
}

// randomDAG builds a seeded random DAG: every edge points backward, so
// launch order is a topological order, matching the runtime's streams.
func randomDAG(rng *rand.Rand, n int) *graph.DAG {
	names := make([]string, n)
	deps := map[int][]int{}
	for i := 0; i < n; i++ {
		names[i] = "t"
		for p := 0; p < i; p++ {
			if rng.Intn(3) == 0 {
				deps[i] = append(deps[i], p)
			}
		}
	}
	return chain(names, deps)
}

func TestWeightedCriticalPathEmpty(t *testing.T) {
	d := graph.FromStream(nil, nil)
	c := d.WeightedCriticalPath(nil)
	if c.Length != 0 || c.Work != 0 || c.Path != nil {
		t.Errorf("empty DAG critical path = %+v, want zero", c)
	}
	if got := d.LevelSlack(c); got != nil {
		t.Errorf("empty DAG LevelSlack = %v, want nil", got)
	}
	if got := d.TopContributors(c, 5); len(got) != 0 {
		t.Errorf("empty DAG TopContributors = %v, want none", got)
	}
}

func TestWeightedCriticalPathSingleTask(t *testing.T) {
	d := chain([]string{"only"}, nil)
	c := d.WeightedCriticalPath([]float64{7})
	if c.Length != 7 || c.Work != 7 {
		t.Errorf("single task: length %v work %v, want 7, 7", c.Length, c.Work)
	}
	if len(c.Path) != 1 || c.Path[0] != 0 {
		t.Errorf("single task path = %v, want [0]", c.Path)
	}
	if c.Slack[0] != 0 {
		t.Errorf("single task slack = %v, want 0", c.Slack[0])
	}
	// Missing or sub-1 weights clamp to 1: a task still occupies a step.
	c = d.WeightedCriticalPath(nil)
	if c.Length != 1 {
		t.Errorf("unweighted single task length = %v, want 1", c.Length)
	}
}

// TestWeightedCriticalPathDeterministicTies pins the tie-break rule: with
// two equal-weight parallel chains, the critical path follows the
// smallest task IDs, and repeated runs return identical results.
func TestWeightedCriticalPathDeterministicTies(t *testing.T) {
	// Diamond with equal arms: 0 -> {1, 2} -> 3. Both arms tie; the path
	// must take task 1.
	d := chain([]string{"root", "a", "b", "join"}, map[int][]int{
		1: {0}, 2: {0}, 3: {1, 2},
	})
	c := d.WeightedCriticalPath([]float64{1, 5, 5, 1})
	want := []int{0, 1, 3}
	if len(c.Path) != len(want) {
		t.Fatalf("path = %v, want %v", c.Path, want)
	}
	for i := range want {
		if c.Path[i] != want[i] {
			t.Fatalf("path = %v, want %v (ties break to smallest ID)", c.Path, want)
		}
	}
	if c.Length != 7 {
		t.Errorf("length = %v, want 7", c.Length)
	}
}

// TestWeightedCriticalPathProperties cross-checks invariants on seeded
// random DAGs: the path is a real dependence chain whose weights sum to
// the makespan, slack is non-negative and zero along the path, and the
// whole analysis is deterministic across repeated runs.
func TestWeightedCriticalPathProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		d := randomDAG(rng, n)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = float64(1 + rng.Intn(9))
		}
		c := d.WeightedCriticalPath(weights)
		if len(c.Path) == 0 {
			t.Fatalf("trial %d: empty path on %d tasks", trial, n)
		}
		var sum float64
		for _, id := range c.Path {
			sum += c.Weights[id]
			if c.Slack[id] != 0 {
				t.Errorf("trial %d: critical task %d has slack %v", trial, id, c.Slack[id])
			}
		}
		if sum != c.Length {
			t.Errorf("trial %d: path weight %v != makespan %v", trial, sum, c.Length)
		}
		for i := 1; i < len(c.Path); i++ {
			dep := false
			for _, p := range d.Deps[c.Path[i]] {
				if p == c.Path[i-1] {
					dep = true
				}
			}
			if !dep {
				t.Errorf("trial %d: path step %d -> %d is not a dependence",
					trial, c.Path[i-1], c.Path[i])
			}
		}
		for i := 0; i < n; i++ {
			if c.Slack[i] < 0 {
				t.Errorf("trial %d: task %d slack %v < 0", trial, i, c.Slack[i])
			}
			if c.Finish[i] != c.Start[i]+c.Weights[i] {
				t.Errorf("trial %d: task %d finish != start + weight", trial, i)
			}
		}
		// Determinism: a second run over the same inputs is identical.
		c2 := d.WeightedCriticalPath(weights)
		if len(c2.Path) != len(c.Path) {
			t.Fatalf("trial %d: nondeterministic path length", trial)
		}
		for i := range c.Path {
			if c2.Path[i] != c.Path[i] {
				t.Fatalf("trial %d: nondeterministic path: %v vs %v", trial, c.Path, c2.Path)
			}
		}
	}
}

func TestLevelSlack(t *testing.T) {
	// 0 -> 1 -> 3, 0 -> 2 -> 3 with a light second arm: level 1 holds both
	// the critical task 1 (slack 0) and the slack-y task 2, so the level
	// reports the binding minimum, 0.
	d := chain([]string{"r", "heavy", "light", "join"}, map[int][]int{
		1: {0}, 2: {0}, 3: {1, 2},
	})
	c := d.WeightedCriticalPath([]float64{1, 10, 2, 1})
	ls := d.LevelSlack(c)
	if len(ls) != 3 {
		t.Fatalf("LevelSlack = %v, want 3 levels", ls)
	}
	for i, s := range ls {
		if s != 0 {
			t.Errorf("level %d slack = %v, want 0 (critical chain spans every level)", i, s)
		}
	}
}

func TestTopContributors(t *testing.T) {
	d := chain([]string{"a", "b", "c"}, map[int][]int{1: {0}, 2: {1}})
	c := d.WeightedCriticalPath([]float64{2, 8, 10})
	top := d.TopContributors(c, 2)
	if len(top) != 2 {
		t.Fatalf("TopContributors = %v, want 2", top)
	}
	if top[0].Task != 2 || top[1].Task != 1 {
		t.Errorf("contributors = %v, want tasks 2 then 1 (descending weight)", top)
	}
	if got := top[0].Share; got != 0.5 {
		t.Errorf("task 2 share = %v, want 0.5", got)
	}
	// k <= 0 returns the whole path, heaviest first.
	if all := d.TopContributors(c, 0); len(all) != 3 {
		t.Errorf("k=0 returned %d contributors, want 3", len(all))
	}
}

func TestMustPrecedeLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(30)
		d := randomDAG(rng, n)
		l := d.BuildLabels()
		reach := reachability(d)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				want := a != b && reach[b][a]
				if got := l.MustPrecede(a, b); got != want {
					t.Fatalf("trial %d: MustPrecede(%d, %d) = %v, want %v", trial, a, b, got, want)
				}
			}
		}
	}
	// Out-of-range queries are false, not panics.
	d := chain([]string{"x"}, nil)
	l := d.BuildLabels()
	if l.MustPrecede(-1, 0) || l.MustPrecede(0, 5) || l.MustPrecede(0, 0) {
		t.Error("out-of-range or self MustPrecede should be false")
	}
}

// reachability computes the brute-force transitive ancestor sets:
// reach[b][a] reports a as a strict ancestor of b.
func reachability(d *graph.DAG) [][]bool {
	n := len(d.Tasks)
	reach := make([][]bool, n)
	for i := 0; i < n; i++ {
		reach[i] = make([]bool, n)
		for _, p := range d.Deps[i] {
			reach[i][p] = true
			for a := 0; a < n; a++ {
				if reach[p][a] {
					reach[i][a] = true
				}
			}
		}
	}
	return reach
}

// TestWriteDOTGolden pins the byte-exact DOT exports — plain and
// critical-path-highlighted — for a fixed weighted diamond. Run with
// -update to rewrite the golden files after a deliberate format change.
func TestWriteDOTGolden(t *testing.T) {
	d := chain([]string{"init", "sim", "ghost", "out"}, map[int][]int{
		1: {0}, 2: {0}, 3: {1, 2},
	})
	c := d.WeightedCriticalPath([]float64{1, 6, 2, 1})
	cases := []struct {
		golden string
		write  func(b *strings.Builder) error
	}{
		{"figure_plain.dot", func(b *strings.Builder) error { return d.WriteDOT(b) }},
		{"figure_crit.dot", func(b *strings.Builder) error { return d.WriteDOTCrit(b, c) }},
	}
	for _, tc := range cases {
		var b strings.Builder
		if err := tc.write(&b); err != nil {
			t.Fatalf("%s: %v", tc.golden, err)
		}
		path := filepath.Join("testdata", tc.golden)
		if *update {
			if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to create)", tc.golden, err)
		}
		if b.String() != string(want) {
			t.Errorf("%s: output differs from golden:\ngot:\n%s\nwant:\n%s", tc.golden, b.String(), want)
		}
	}
}
