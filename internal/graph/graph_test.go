package graph_test

import (
	"strings"
	"testing"

	"visibility/internal/core"
	"visibility/internal/graph"
	"visibility/internal/privilege"
	"visibility/internal/raycast"
	"visibility/internal/testutil"
)

func figure5DAG(t *testing.T) *graph.DAG {
	t.Helper()
	tree, p, g := testutil.GraphTree()
	an := raycast.New(tree, core.Options{})
	s := core.NewStream(tree)
	deps := make(map[int][]int)
	for _, task := range testutil.Figure5(s, p, g) {
		deps[task.ID] = an.Analyze(task).Deps
	}
	return graph.FromStream(s.Tasks, deps)
}

func TestLevelsAndWidths(t *testing.T) {
	d := figure5DAG(t)
	widths := d.Widths()
	// Figure 5: three phases of three parallel tasks.
	if len(widths) != 3 {
		t.Fatalf("levels = %d, want 3 (widths %v)", len(widths), widths)
	}
	for i, w := range widths {
		if w != 3 {
			t.Errorf("level %d width = %d, want 3", i, w)
		}
	}
	if d.MaxWidth() != 3 {
		t.Errorf("MaxWidth = %d", d.MaxWidth())
	}
	if got := d.AverageParallelism(); got != 3 {
		t.Errorf("AverageParallelism = %v, want 3", got)
	}
}

func TestCriticalPath(t *testing.T) {
	d := figure5DAG(t)
	cp := d.CriticalPath()
	if len(cp) != 3 {
		t.Fatalf("critical path = %v, want length 3", cp)
	}
	levels := d.Levels()
	for i, id := range cp {
		if levels[id] != i {
			t.Errorf("critical path node %d at level %d, want %d", id, levels[id], i)
		}
	}
	// Consecutive nodes are truly dependent.
	for i := 1; i < len(cp); i++ {
		found := false
		for _, p := range d.Deps[cp[i]] {
			if p == cp[i-1] {
				found = true
			}
		}
		if !found {
			t.Errorf("critical path edge %d -> %d is not a dependence", cp[i-1], cp[i])
		}
	}
}

func TestFutureEdgesMerge(t *testing.T) {
	tree, p, _ := testutil.GraphTree()
	s := core.NewStream(tree)
	a := s.Launch("a", core.Req{Region: p.Subregions[0], Field: 0, Priv: privilege.Writes()})
	b := s.Launch("b", core.Req{Region: p.Subregions[1], Field: 0, Priv: privilege.Writes()})
	b.FutureDeps = []int{a.ID}
	d := graph.FromStream(s.Tasks, map[int][]int{})
	if d.Edges() != 1 {
		t.Fatalf("Edges = %d, want the future edge", d.Edges())
	}
	if w := d.Widths(); len(w) != 2 {
		t.Errorf("future edge should serialize: widths = %v", w)
	}
}

func TestEmptyDAG(t *testing.T) {
	d := graph.FromStream(nil, nil)
	if d.CriticalPath() != nil {
		t.Error("empty DAG has no critical path")
	}
	if d.AverageParallelism() != 0 || d.Edges() != 0 {
		t.Error("empty DAG analytics wrong")
	}
}

func TestWriteDOT(t *testing.T) {
	d := figure5DAG(t)
	var b strings.Builder
	if err := d.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph deps", "t0 [label=", "-> t6;", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}
