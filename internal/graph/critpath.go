package graph

import (
	"fmt"
	"io"
	"sort"
)

// Critical is the weighted critical-path analysis of a DAG: per-task
// earliest start/finish times under the given node weights, per-task
// slack against the makespan, and one longest (weighted) chain. All
// quantities are in whatever deterministic unit the weights use —
// virtual analysis operations plus virtual execution time here, never
// wall clock — so the analysis is byte-reproducible across runs.
type Critical struct {
	// Weights holds each task's node weight (≥1) as used by the analysis.
	Weights []float64
	// Start and Finish are each task's earliest start and finish under
	// infinite parallelism: Start[i] = max over preds p of Finish[p].
	Start, Finish []float64
	// Slack is how much each task's finish can slip without growing the
	// makespan; 0 for tasks on a critical path.
	Slack []float64
	// Path is one critical (maximum-weight) chain of task IDs, ascending
	// in execution order. Ties break to the smallest task ID so the path
	// is deterministic.
	Path []int
	// Length is the makespan: the weight of the critical path.
	Length float64
	// Work is the total weight of all tasks; Work/Length is the average
	// parallelism the dependences leave available.
	Work float64
}

// WeightedCriticalPath computes the weighted critical path of d under
// per-task node weights. Weights shorter than the task list are padded
// with 1; entries < 1 are clamped to 1 so an unweighted task still
// occupies a schedulable step. Returns a zero-value Critical for an
// empty DAG.
func (d *DAG) WeightedCriticalPath(weights []float64) *Critical {
	n := len(d.Tasks)
	c := &Critical{
		Weights: make([]float64, n),
		Start:   make([]float64, n),
		Finish:  make([]float64, n),
		Slack:   make([]float64, n),
	}
	if n == 0 {
		return c
	}
	for i := 0; i < n; i++ {
		w := 1.0
		if i < len(weights) && weights[i] > 1 {
			w = weights[i]
		}
		c.Weights[i] = w
		c.Work += w
	}
	// Forward pass: IDs are dense in launch order and every dependence
	// points backward, so position order is already a topological order.
	// critPred[i] is the predecessor that determines Start[i] (smallest ID
	// among maxima, for deterministic walk-back); -1 at roots.
	critPred := make([]int, n)
	for i := 0; i < n; i++ {
		critPred[i] = -1
		for _, p := range d.Deps[i] {
			if c.Finish[p] > c.Start[i] {
				c.Start[i] = c.Finish[p]
				critPred[i] = p
			}
		}
		c.Finish[i] = c.Start[i] + c.Weights[i]
		if c.Finish[i] > c.Length {
			c.Length = c.Finish[i]
		}
	}
	// Backward pass: latest finish each task can have without delaying any
	// successor (or the makespan, for sinks).
	latest := make([]float64, n)
	for i := range latest {
		latest[i] = c.Length
	}
	for i := n - 1; i >= 0; i-- {
		for _, p := range d.Deps[i] {
			if lf := latest[i] - c.Weights[i]; lf < latest[p] {
				latest[p] = lf
			}
		}
		c.Slack[i] = latest[i] - c.Finish[i]
	}
	// Walk one critical chain back from the earliest-finishing maximal
	// sink: smallest ID whose finish equals the makespan.
	end := -1
	for i := 0; i < n; i++ {
		if c.Finish[i] == c.Length {
			end = i
			break
		}
	}
	var rev []int
	for cur := end; cur != -1; cur = critPred[cur] {
		rev = append(rev, cur)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	c.Path = rev
	return c
}

// LevelSlack aggregates slack by level: out[l] is the minimum slack of
// any task on level l — how much room that whole rank of the schedule
// has before it binds the makespan. Levels containing a critical task
// report 0.
func (d *DAG) LevelSlack(c *Critical) []float64 {
	levels := d.Levels()
	max := -1
	for _, l := range levels {
		if l > max {
			max = l
		}
	}
	if max < 0 {
		return nil
	}
	out := make([]float64, max+1)
	seen := make([]bool, max+1)
	for i, l := range levels {
		if !seen[l] || c.Slack[i] < out[l] {
			out[l], seen[l] = c.Slack[i], true
		}
	}
	return out
}

// Contributor attributes critical-path time to one task: its weight and
// the share of the makespan it accounts for.
type Contributor struct {
	Task   int
	Name   string
	Weight float64
	Share  float64 // Weight / Length, in [0,1]
}

// TopContributors returns the k heaviest tasks on the critical path,
// descending by weight (ties to the smaller task ID). k ≤ 0 or k beyond
// the path length returns the whole path's tasks.
func (d *DAG) TopContributors(c *Critical, k int) []Contributor {
	out := make([]Contributor, 0, len(c.Path))
	for _, id := range c.Path {
		con := Contributor{Task: id, Name: d.Tasks[id].Name, Weight: c.Weights[id]}
		if c.Length > 0 {
			con.Share = con.Weight / c.Length
		}
		out = append(out, con)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Task < out[j].Task
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// WriteDOTCrit exports the DAG in Graphviz format with the critical path
// highlighted: critical tasks carry their weight and cumulative finish
// time in the label and are drawn bold red, as are the chain's edges.
// Everything else matches WriteDOT, so diffs against the plain export
// stay readable.
func (d *DAG) WriteDOTCrit(w io.Writer, c *Critical) error {
	onPath := make([]bool, len(d.Tasks))
	next := make([]int, len(d.Tasks)) // successor along the path; -1 off it
	for i := range next {
		next[i] = -1
	}
	for i, id := range c.Path {
		onPath[id] = true
		if i+1 < len(c.Path) {
			next[id] = c.Path[i+1]
		}
	}
	pw := &printer{w: w}
	pw.printf("digraph deps {\n")
	pw.printf("  rankdir=TB; node [shape=box, fontsize=10];\n")
	for i, t := range d.Tasks {
		if onPath[i] {
			pw.printf("  t%d [label=%q, color=red, penwidth=2];\n",
				i, fmt.Sprintf("%s\nw=%.0f fin=%.0f", t.String(), c.Weights[i], c.Finish[i]))
		} else {
			pw.printf("  t%d [label=%q];\n", i, t.String())
		}
	}
	for i, ds := range d.Deps {
		for _, p := range ds {
			if onPath[p] && next[p] == i {
				pw.printf("  t%d -> t%d [color=red, penwidth=2];\n", p, i)
			} else {
				pw.printf("  t%d -> t%d;\n", p, i)
			}
		}
	}
	pw.printf("}\n")
	return pw.err
}
