// Package a seeds errchecklite violations: dropped error returns from the
// package's own API and from fmt.Fprint* to fallible writers.
package a

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

func verify() error        { return errors.New("violation") }
func launch() (int, error) { return 0, nil }
func count() int           { return 0 }
func pair() (int, string)  { return 0, "" }

func dropped() {
	verify() // want `result of verify is dropped`
	launch() // want `result of launch is dropped`
}

func handled() error {
	if err := verify(); err != nil {
		return err
	}
	_, err := launch()
	if err != nil {
		return err
	}
	_ = verify() // explicit opt-out: not flagged
	count()      // no error in the result tuple: not flagged
	pair()       // no error in the result tuple: not flagged
	return nil
}

func writes(w io.Writer, f *os.File) {
	fmt.Fprintf(w, "x")  // want `error from fmt\.Fprintf to a fallible writer is dropped`
	fmt.Fprintln(f, "x") // want `error from fmt\.Fprintln to a fallible writer is dropped`
}

func exemptWriters() string {
	var b strings.Builder
	var buf bytes.Buffer
	fmt.Fprintf(&b, "x")         // *strings.Builder cannot fail
	fmt.Fprintf(&buf, "x")       // *bytes.Buffer cannot fail
	fmt.Fprintln(os.Stdout, "x") // terminal streams are exempt
	fmt.Fprintln(os.Stderr, "x")
	fmt.Println("x") // Print*, not Fprint*: out of scope
	return b.String()
}
