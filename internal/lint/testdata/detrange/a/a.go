// Package a seeds detrange violations: map iteration in what the real
// suite would treat as a hot path.
package a

func sumMap(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map map\[string\]int in a hot path`
		total += v
	}
	return total
}

type table map[int]bool

func namedMapType(t table) int {
	n := 0
	for range t { // want `range over map .*table in a hot path`
		n++
	}
	return n
}

// orderedIteration over slices, strings, and channels is fine.
func orderedIteration(s []int, str string, ch chan int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	for range str {
		total++
	}
	for v := range ch {
		total += v
	}
	return total
}

func cloneSuppressed(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	//vislint:ignore detrange cloning into another map is order-insensitive
	for k, v := range m {
		out[k] = v
	}
	return out
}
