// Package wire stands in for the module's encoding layer: only functions
// that feed an encoder (or are named like one), plus their direct
// same-package callees, have their map ranges flagged — the bytes they
// produce are compared across runs. Code off the encoder paths may range
// maps freely.
package wire

import (
	"encoding/json"
	"sort"
)

type snapshot struct {
	Parts map[string]int
}

// Encode assembles the comparable byte form; it is a seed both by name
// and by calling json.Marshal.
func Encode(s snapshot) []byte {
	var names []string
	for k := range s.Parts { // want `range over map map\[string\]int in encoder-feeding function Encode`
		names = append(names, k)
	}
	sort.Strings(names)
	b, _ := json.Marshal(names)
	return b
}

// helper is a direct callee of MarshalJSON: one level of transitivity
// keeps factored-out assembly honest.
func helper(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map map\[string\]int in encoder-feeding function helper`
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func MarshalJSON(m map[string]int) ([]byte, error) {
	return json.Marshal(helper(m))
}

// display is not on any encoder path: map ranges are fine here.
func display(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
