// Package a seeds confinement fixtures: a worker-owned instance type
// whose fields and type carry "confined to worker" annotations, reached
// correctly from domain roots and incorrectly from outside — plus the
// three escape routes (channel send, package-level store, goroutine
// capture) and the sanctioned literal bindings (func-field stores and
// //confined:callbacks arguments).
package a

// Box is a single-goroutine analysis instance.
//
// confined to worker
type Box struct {
	// n is the instance's mutable state.
	//
	// confined to worker
	n int
}

// Drive owns the instance loop.
//
// confined to worker
func Drive(b *Box) {
	b.n = helper(b) + 1
}

// helper has no domain of its own; it inherits worker from Drive through
// the call graph, so its access is legal.
func helper(b *Box) int { return b.n }

// Start launches the worker goroutine: spawning a rooted function is how
// a domain legitimately begins.
func Start(b *Box) {
	go Drive(b)
}

// Peek reads instance state from some other goroutine's domain.
//
// confined to other
func Peek(b *Box) int {
	return b.n // want `worker-confined field a\.Box\.n accessed from function Peek, which runs in \[other\]`
}

// touch inherits #outside from init through the call graph.
func touch(b *Box) {
	_ = b.n // want `worker-confined field a\.Box\.n accessed from function touch, which runs in \[#outside\]`
}

func init() {
	touch(&Box{n: 1}) // composite literals are constructor-exempt
}

// leaked is a package-level stash; storing a Box here leaves the domain.
var leaked *Box

// Publish stashes the instance globally.
//
// confined to worker
func Publish(b *Box) {
	leaked = b // want `value of worker-confined type a\.Box stored in package-level variable leaked`
}

// Ship hands the instance to another goroutine over a channel.
//
// confined to worker
func Ship(ch chan *Box, b *Box) {
	ch <- b // want `value of worker-confined type a\.Box sent over a channel, leaving its domain`
}

// Fork spawns a goroutine that captures the instance.
//
// confined to worker
func Fork(b *Box) {
	go func() {
		b.n = 2 // want `goroutine closure captures b, a value of worker-confined type a\.Box` `worker-confined field a\.Box\.n accessed from function literal at line \d+, which runs in \[#outside\]`
	}()
}

// Worker drives callbacks on the owning goroutine.
type Worker struct {
	// fn runs on the owner.
	//
	// confined to worker
	fn func()
}

// NewWorker builds a Worker whose callback touches instance state: a
// literal stored into an annotated func field roots in that domain.
func NewWorker(b *Box) *Worker {
	return &Worker{fn: func() { b.n = 3 }}
}

// Rebind swaps the callback; the new literal still runs on the owner.
func Rebind(w *Worker, b *Box) {
	w.fn = func() { b.n = 4 }
}

// Run executes f on the worker goroutine.
//
//confined:callbacks worker
func Run(f func()) { f() }

// Submit hands work to the worker from anywhere: literals passed to a
// callbacks-annotated function root in its domain.
func Submit(b *Box) {
	Run(func() { b.n = 5 })
}

// Drain reads the instance from the shutdown path; the allow directive
// records why the cross-domain read is sound.
//
// confined to other
func Drain(b *Box) int {
	//lint:allow confined shutdown runs after the worker goroutine has exited
	return b.n
}
