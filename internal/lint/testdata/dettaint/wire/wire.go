// Package wire stands in for the module's encoding layer: its directory
// name makes generic encoder calls (json/binary/gob) determinism sinks,
// so map-order accumulation and per-iteration sink emission are caught
// here, and the sorted-keys discipline is pinned as the clean pattern.
package wire

import (
	"encoding/json"
	"sort"
)

// EncodeValues assembles its output by ranging a map: the accumulated
// slice order follows map iteration order.
func EncodeValues(m map[string]int) []byte {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	b, _ := json.Marshal(vals) // want `nondeterministic value \(map-order\) flows into checkpoint/wire encoding`
	return b
}

// EncodeSorted is the sanctioned pattern: collect keys, sort them, then
// walk the sorted slice. Sorting cleanses map-order taint.
func EncodeSorted(m map[string]int) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	b, _ := json.Marshal(out)
	return b
}

// EncodeEach emits one encoding per iteration: every value is
// deterministic, but the emission sequence follows map order.
func EncodeEach(m map[string]int) [][]byte {
	var out [][]byte
	for _, v := range m {
		b, _ := json.Marshal(v) // want `checkpoint/wire encoding emitted inside a range over a map`
		out = append(out, b)
	}
	return out
}

// emitOne performs a sink emission; callers inherit callsSink.
func emitOne(v int) {
	b, _ := json.Marshal(v)
	_ = b
}

// EmitAll reaches the sink transitively from inside a map range.
func EmitAll(m map[string]int) {
	for _, v := range m {
		emitOne(v) // want `a determinism-sink event \(via emitOne\) emitted inside a range over a map`
	}
}
