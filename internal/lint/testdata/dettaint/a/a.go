// Package a seeds dettaint fixtures: every nondeterminism source (wall
// clock, global rand, pointer identity, multi-ready select) flowing into
// an annotated determinism sink, field-level taint precision, the
// interprocedural parameter flows, and a rationale-bearing allow.
package a

import (
	"fmt"
	"math/rand"
	"time"
)

// Emit is the crosscheck-compared output of this fixture.
//
//dettaint:sink
func Emit(s string) {
	_ = s
}

func wallClock() {
	now := time.Now().String()
	Emit(now) // want `nondeterministic value \(wall-clock\) flows into sink Emit`
}

func globalRand() {
	n := rand.Intn(6)
	Emit(fmt.Sprintf("%d", n)) // want `nondeterministic value \(global-rand\) flows into sink Emit`
}

// seededRand draws from a seeded generator: seeded streams are the
// module's deterministic randomness plane and carry no taint.
func seededRand() {
	r := rand.New(rand.NewSource(42))
	Emit(fmt.Sprintf("%d", r.Intn(6)))
}

func pointerIdentity(v *int) {
	Emit(fmt.Sprintf("%p", v)) // want `nondeterministic value \(pointer-identity\) flows into sink Emit`
}

func selectOrder(c1, c2 chan string) {
	var s string
	select {
	case s = <-c1:
	case s = <-c2:
	}
	Emit(s) // want `nondeterministic value \(select-order\) flows into sink Emit`
}

// singleSelect has one ready case: arrival order cannot vary.
func singleSelect(c1 chan string) {
	var s string
	select {
	case s = <-c1:
	}
	Emit(s)
}

// describe returns its argument's taint: param flows ride through
// module-function summaries.
func describe(s string) string { return s + "!" }

func viaHelper() {
	Emit(describe(time.Now().String())) // want `nondeterministic value \(wall-clock\) flows into sink Emit`
}

// forward reaches the sink with its parameter, so tainted arguments are
// reported at forward's call sites.
func forward(s string) { Emit(s) }

func viaForward() {
	forward(time.Now().String()) // want `nondeterministic value \(wall-clock\) flows into argument reaching a determinism sink inside forward`
}

// record carries one tainted and one clean field: reading a sibling of a
// nondeterministic field must stay clean (field-level precision).
type record struct {
	at   string
	name string
}

func stamp(r *record) {
	r.at = time.Now().String()
}

func emitRecord(r *record) {
	Emit(r.name)
	Emit(r.at) // want `nondeterministic value \(wall-clock\) flows into sink Emit`
}

// allowed demonstrates a justified suppression; the rationale is
// mandatory.
func allowed() {
	//lint:allow dettaint fixture exercises the escape hatch, not a real output
	Emit(time.Now().String())
}
