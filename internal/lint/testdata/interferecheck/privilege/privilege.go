// Package privilege is a stand-in for visibility/internal/privilege so
// interferecheck fixtures can exercise the real matching logic (the
// analyzer recognizes any package whose import path ends in "privilege").
package privilege

type Kind int

const (
	Read Kind = iota
	ReadWrite
	Reduce
)

type Privilege struct {
	Kind Kind
}

func Reads() Privilege  { return Privilege{Kind: Read} }
func Writes() Privilege { return Privilege{Kind: ReadWrite} }

// Interferes may compare kinds freely: this package is the one legitimate
// home of the relation.
func Interferes(p, q Privilege) bool {
	return p.Kind != Read || q.Kind != Read
}

func (p Privilege) IsRead() bool { return p.Kind == Read }
