// Package a seeds interferecheck violations: ad-hoc comparisons and
// switches on privilege types outside the privilege package.
package a

import "privilege"

func compareKinds(p, q privilege.Privilege) bool {
	if p.Kind == q.Kind { // want `comparison of privilege\.Kind values outside package privilege`
		return true
	}
	return p.Kind != privilege.Read // want `comparison of privilege\.Kind values outside package privilege`
}

func comparePrivileges(p, q privilege.Privilege) bool {
	return p == q // want `comparison of privilege\.Privilege values outside package privilege`
}

func switchOnKind(p privilege.Privilege) int {
	switch p.Kind { // want `switch on privilege\.Kind outside package privilege`
	case privilege.Read:
		return 0
	default:
		return 1
	}
}

// throughRelation is the sanctioned style: no diagnostics.
func throughRelation(p, q privilege.Privilege) bool {
	if p.IsRead() {
		return false
	}
	return privilege.Interferes(p, q)
}

// otherComparisons of non-privilege types stay silent.
func otherComparisons(a, b int, s string) bool {
	switch s {
	case "x":
		return a == b
	}
	return a != b
}
