// Package a seeds guardedby violations: annotated fields touched without
// their mutex held.
package a

import "sync"

type counter struct {
	mu sync.Mutex

	// guarded by mu
	n int

	hits int // guarded by mu

	free int // unannotated: never reported

	bad int // guarded by lock // want `annotated 'guarded by lock' but counter has no field lock`
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.hits
}

func (c *counter) unlocked() int {
	c.n++ // want `access to counter\.n \(guarded by mu\) without holding c\.mu`
	return c.free
}

func (c *counter) unlockEarly() int {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.hits // want `access to counter\.hits \(guarded by mu\) without holding c\.mu`
}

func (c *counter) branches(b bool) {
	c.mu.Lock()
	if b {
		c.mu.Unlock()
		return
	}
	c.n++ // still held on this path
	c.mu.Unlock()
}

func (c *counter) branchLoses(b bool) {
	if b {
		c.mu.Lock()
	}
	c.n++ // want `access to counter\.n \(guarded by mu\) without holding c\.mu`
}

func (c *counter) inGoroutine() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.hits++ // want `access to counter\.hits \(guarded by mu\) without holding c\.mu`
	}()
	c.n++
}

// bumpLocked is exempt by convention: callers hold the guard.
func (c *counter) bumpLocked() {
	c.n++
}
