// RWMutex cases: RLock grants read access only — reads under RLock are
// legal, writes need the full Lock.
package a

import "sync"

type gauge struct {
	mu sync.RWMutex

	// guarded by mu
	val int
}

func (g *gauge) read() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.val
}

func (g *gauge) write(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.val = v
}

func (g *gauge) writeUnderRead(v int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.val = v // want `write to gauge\.val \(guarded by mu\) while holding only a read lock on g\.mu; use Lock, not RLock`
}

func (g *gauge) incUnderRead() {
	g.mu.RLock()
	g.val++ // want `write to gauge\.val \(guarded by mu\) while holding only a read lock on g\.mu`
	g.mu.RUnlock()
}

func (g *gauge) unlockedRead() int {
	return g.val // want `access to gauge\.val \(guarded by mu\) without holding g\.mu`
}

// upgrade drops the read lock before taking the write lock; both regions
// are legal.
func (g *gauge) upgrade(v int) {
	g.mu.RLock()
	n := g.val
	g.mu.RUnlock()
	g.mu.Lock()
	g.val = n + v
	g.mu.Unlock()
}
