package lint

import (
	"go/token"
	"strings"
	"testing"
)

func pos(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line}
}

// TestAnalyzers runs every analyzer against its seeded-violation fixture
// under testdata/<name>; the fixtures' "// want" comments pin both the
// violations each check must catch and the sanctioned patterns it must
// stay silent on.
func TestAnalyzers(t *testing.T) {
	tests := []struct {
		analyzer *Analyzer
		dir      string
	}{
		{Interferecheck, "testdata/interferecheck"},
		{Guardedby, "testdata/guardedby"},
		{Detrange, "testdata/detrange"},
		{Errchecklite, "testdata/errchecklite"},
	}
	if len(tests) != len(All()) {
		t.Fatalf("fixture table covers %d analyzers, All() has %d", len(tests), len(All()))
	}
	for _, tt := range tests {
		t.Run(tt.analyzer.Name, func(t *testing.T) {
			RunTest(t, tt.analyzer, tt.dir)
		})
	}
}

// TestMatchPolicies pins which packages each scoped analyzer runs on; a
// policy that silently widens or narrows would either spam unrelated
// packages or stop guarding the hot paths.
func TestMatchPolicies(t *testing.T) {
	tests := []struct {
		analyzer *Analyzer
		path     string
		want     bool
	}{
		{Guardedby, "visibility/internal/sched", true},
		{Guardedby, "visibility/internal/event", true},
		{Guardedby, "visibility/internal/cluster", true},
		{Guardedby, "visibility/internal/harness", true},
		{Guardedby, "visibility/internal/fault", true},
		{Guardedby, "visibility/internal/core", false},
		{Detrange, "visibility/internal/paint", true},
		{Detrange, "visibility/internal/warnock", true},
		{Detrange, "visibility/internal/raycast", true},
		{Detrange, "visibility/internal/core", true},
		{Detrange, "visibility/internal/sched", false},
		{Detrange, "visibility", false},
	}
	for _, tt := range tests {
		if got := tt.analyzer.Match(tt.path); got != tt.want {
			t.Errorf("%s.Match(%q) = %v, want %v", tt.analyzer.Name, tt.path, got, tt.want)
		}
	}
	for _, a := range []*Analyzer{Interferecheck, Errchecklite} {
		if a.Match != nil {
			t.Errorf("%s should run module-wide (Match == nil)", a.Name)
		}
	}
}

// TestLoadModule loads this module's privilege package (and an external
// test variant elsewhere) through the real go-list-backed loader, the same
// path cmd/vislint takes.
func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	pkgs, err := Load("../..", "./internal/privilege", "./internal/core")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	byPath := make(map[string]*Package)
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	for _, want := range []string{
		"visibility/internal/privilege",
		"visibility/internal/core",
		"visibility/internal/core_test", // external test package, checked separately
	} {
		p, ok := byPath[want]
		if !ok {
			t.Fatalf("Load returned no package %q (got %v)", want, paths(pkgs))
		}
		if len(p.Files) == 0 || p.Types == nil {
			t.Errorf("package %q loaded without files or type information", want)
		}
	}
	// The test-augmented variant replaces the plain package: privilege has
	// in-package tests, so its entry must include them.
	priv := byPath["visibility/internal/privilege"]
	found := false
	for _, f := range priv.Files {
		if strings.HasSuffix(priv.Fset.Position(f.Pos()).Filename, "privilege_test.go") {
			found = true
		}
	}
	if !found {
		t.Errorf("privilege package was loaded without its in-package test files")
	}
}

func paths(pkgs []*Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.Path)
	}
	return out
}

// TestIgnoreDirective pins the suppression contract: a directive names its
// analyzer and covers its own line plus the next.
func TestIgnoreDirective(t *testing.T) {
	ig := ignores{
		"f.go:10": {"detrange": true},
		"f.go:11": {"detrange": true},
		"g.go:5":  {"all": true},
	}
	tests := []struct {
		d    Diagnostic
		want bool
	}{
		{Diagnostic{Pos: pos("f.go", 10), Analyzer: "detrange"}, true},
		{Diagnostic{Pos: pos("f.go", 11), Analyzer: "detrange"}, true},
		{Diagnostic{Pos: pos("f.go", 12), Analyzer: "detrange"}, false},
		{Diagnostic{Pos: pos("f.go", 10), Analyzer: "guardedby"}, false},
		{Diagnostic{Pos: pos("g.go", 5), Analyzer: "errchecklite"}, true},
	}
	for _, tt := range tests {
		if got := ig.suppressed(tt.d); got != tt.want {
			t.Errorf("suppressed(%s:%d %s) = %v, want %v",
				tt.d.Pos.Filename, tt.d.Pos.Line, tt.d.Analyzer, got, tt.want)
		}
	}
}
