package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func pos(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line}
}

// TestAnalyzers runs every analyzer against its seeded-violation fixture
// under testdata/<name>; the fixtures' "// want" comments pin both the
// violations each check must catch and the sanctioned patterns it must
// stay silent on.
func TestAnalyzers(t *testing.T) {
	tests := []struct {
		analyzer *Analyzer
		dir      string
	}{
		{Interferecheck, "testdata/interferecheck"},
		{Guardedby, "testdata/guardedby"},
		{Detrange, "testdata/detrange"},
		{Errchecklite, "testdata/errchecklite"},
		{Confined, "testdata/confined"},
		{Dettaint, "testdata/dettaint"},
	}
	if len(tests) != len(All()) {
		t.Fatalf("fixture table covers %d analyzers, All() has %d", len(tests), len(All()))
	}
	for _, tt := range tests {
		t.Run(tt.analyzer.Name, func(t *testing.T) {
			RunTest(t, tt.analyzer, tt.dir)
		})
	}
}

// TestMatchPolicies pins which packages each scoped analyzer runs on; a
// policy that silently widens or narrows would either spam unrelated
// packages or stop guarding the hot paths.
func TestMatchPolicies(t *testing.T) {
	tests := []struct {
		analyzer *Analyzer
		path     string
		want     bool
	}{
		{Guardedby, "visibility/internal/sched", true},
		{Guardedby, "visibility/internal/event", true},
		{Guardedby, "visibility/internal/cluster", true},
		{Guardedby, "visibility/internal/harness", true},
		{Guardedby, "visibility/internal/fault", true},
		{Guardedby, "visibility/internal/core", false},
		{Detrange, "visibility/internal/paint", true},
		{Detrange, "visibility/internal/warnock", true},
		{Detrange, "visibility/internal/raycast", true},
		{Detrange, "visibility/internal/core", true},
		{Detrange, "visibility/internal/sched", false},
		{Detrange, "visibility/internal/wire", true},
		{Detrange, "visibility", true}, // root-package checkpoint encoding
	}
	for _, tt := range tests {
		if got := tt.analyzer.Match(tt.path); got != tt.want {
			t.Errorf("%s.Match(%q) = %v, want %v", tt.analyzer.Name, tt.path, got, tt.want)
		}
	}
	for _, a := range []*Analyzer{Interferecheck, Errchecklite, Confined, Dettaint} {
		if a.Match != nil {
			t.Errorf("%s should run module-wide (Match == nil)", a.Name)
		}
	}
}

// TestLoadModule loads this module's privilege package (and an external
// test variant elsewhere) through the real go-list-backed loader, the same
// path cmd/vislint takes.
func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	pkgs, err := Load("../..", "./internal/privilege", "./internal/core")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	byPath := make(map[string]*Package)
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	for _, want := range []string{
		"visibility/internal/privilege",
		"visibility/internal/core",
		"visibility/internal/core_test", // external test package, checked separately
	} {
		p, ok := byPath[want]
		if !ok {
			t.Fatalf("Load returned no package %q (got %v)", want, paths(pkgs))
		}
		if len(p.Files) == 0 || p.Types == nil {
			t.Errorf("package %q loaded without files or type information", want)
		}
	}
	// The test-augmented variant replaces the plain package: privilege has
	// in-package tests, so its entry must include them.
	priv := byPath["visibility/internal/privilege"]
	found := false
	for _, f := range priv.Files {
		if strings.HasSuffix(priv.Fset.Position(f.Pos()).Filename, "privilege_test.go") {
			found = true
		}
	}
	if !found {
		t.Errorf("privilege package was loaded without its in-package test files")
	}
}

func paths(pkgs []*Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.Path)
	}
	return out
}

// TestAllowRationaleRequired pins the rationale contract: a lint:allow
// without a trailing explanation suppresses nothing and is itself
// reported (against the non-suppressible "directive" pseudo-analyzer).
func TestAllowRationaleRequired(t *testing.T) {
	src := `package p

func f() {
	//lint:allow confined
	//lint:allow dettaint the worker owns this map exclusively
	_ = 0
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	pkg := &Package{Path: "p", Fset: fset, Files: []*ast.File{f}}

	diags := directiveDiags(pkg)
	if len(diags) != 1 {
		t.Fatalf("directiveDiags = %v, want exactly one finding", diags)
	}
	d := diags[0]
	if d.Pos.Line != 4 || d.Analyzer != "directive" ||
		!strings.Contains(d.Message, "lint:allow requires a rationale") {
		t.Errorf("unexpected directive finding: %s", d)
	}

	ig := collectIgnores(pkg)
	if ig.suppressed(Diagnostic{Pos: pos("p.go", 5), Analyzer: "confined"}) {
		t.Errorf("rationale-less allow must suppress nothing")
	}
	for _, line := range []int{5, 6} {
		if !ig.suppressed(Diagnostic{Pos: pos("p.go", line), Analyzer: "dettaint"}) {
			t.Errorf("rationale-bearing allow should cover line %d", line)
		}
	}
}

// TestModuleClean is the module-wide regression gate: the full analyzer
// suite over the whole module must report nothing. A new finding either
// gets fixed or carries a rationale-bearing //lint:allow.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool and loads the whole module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestIgnoreDirective pins the suppression contract: a directive names its
// analyzer and covers its own line plus the next.
func TestIgnoreDirective(t *testing.T) {
	ig := ignores{
		"f.go:10": {"detrange": true},
		"f.go:11": {"detrange": true},
		"g.go:5":  {"all": true},
	}
	tests := []struct {
		d    Diagnostic
		want bool
	}{
		{Diagnostic{Pos: pos("f.go", 10), Analyzer: "detrange"}, true},
		{Diagnostic{Pos: pos("f.go", 11), Analyzer: "detrange"}, true},
		{Diagnostic{Pos: pos("f.go", 12), Analyzer: "detrange"}, false},
		{Diagnostic{Pos: pos("f.go", 10), Analyzer: "guardedby"}, false},
		{Diagnostic{Pos: pos("g.go", 5), Analyzer: "errchecklite"}, true},
	}
	for _, tt := range tests {
		if got := ig.suppressed(tt.d); got != tt.want {
			t.Errorf("suppressed(%s:%d %s) = %v, want %v",
				tt.d.Pos.Filename, tt.d.Pos.Line, tt.d.Analyzer, got, tt.want)
		}
	}
}
