package lint

import (
	"go/ast"
	"go/types"
)

// Detrange flags `range` over a map in the analyzer hot paths.
//
// The painter, Warnock, and raycast analyzers produce ordered histories
// and dependence lists; core.Engine and core.Seq consume them and the
// cross-checker compares runs byte for byte. Go randomizes map iteration
// order on every range, so a map range anywhere on these paths can emit
// dependences (or painter history entries, or equivalence-set ids) in a
// different order run to run — the bug reproduces only intermittently
// and only as a cross-check mismatch far from its cause. Iterate a
// sorted key slice instead. A loop that is provably order-insensitive
// (e.g. cloning a map into another map) may carry a
// "//vislint:ignore detrange <why>" directive.
var Detrange = &Analyzer{
	Name: "detrange",
	Doc:  "forbid range over maps in analyzer hot paths (map order is nondeterministic)",
	Match: func(path string) bool {
		switch pkgTail(path) {
		case "paint", "warnock", "raycast", "core":
			return true
		}
		return false
	},
	Run: runDetrange,
}

func runDetrange(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				pass.Reportf(rs.For,
					"range over map %s in a hot path: iteration order is nondeterministic and can reorder emitted dependences; iterate sorted keys instead", t)
			}
			return true
		})
	}
	return nil
}
