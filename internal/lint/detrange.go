package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Detrange flags `range` over a map in code whose output order is
// observable.
//
// Two scopes. In the analyzer hot paths (paint, warnock, raycast, core)
// every map range is flagged: the analyzers produce ordered histories and
// dependence lists, core.Engine and core.Seq consume them, and the
// cross-checker compares runs byte for byte, so a map range anywhere on
// these paths can reorder emitted dependences run to run. In the encoding
// layers (the wire package and the root package's checkpoint files) only
// map ranges inside encoder-feeding functions are flagged: a function
// that calls a JSON/binary encoder (or is named Encode/Checkpoint/
// MarshalJSON), and any same-package function it directly calls, must not
// assemble its output by iterating a map — the bytes it produces are
// compared across runs.
//
// Iterate a sorted key slice instead. A loop that is provably
// order-insensitive (e.g. cloning a map into another map) may carry a
// "//lint:allow detrange <why>" directive.
var Detrange = &Analyzer{
	Name: "detrange",
	Doc:  "forbid range over maps in analyzer hot paths and encoder-feeding functions (map order is nondeterministic)",
	Match: func(path string) bool {
		if path == "visibility" {
			return true
		}
		switch pkgTail(path) {
		case "paint", "warnock", "raycast", "core", "wire":
			return true
		}
		return false
	},
	Run: runDetrange,
}

func runDetrange(pass *Pass) error {
	path := strings.TrimSuffix(pass.Pkg.Path(), "_test")
	hot := path != pass.ModulePath && pkgTail(path) != "wire"
	var scoped map[*ast.FuncDecl]bool
	if !hot {
		scoped = encoderFeeders(pass)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hot && !scoped[fd] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					if hot {
						pass.Reportf(rs.For,
							"range over map %s in a hot path: iteration order is nondeterministic and can reorder emitted dependences; iterate sorted keys instead", t)
					} else {
						pass.Reportf(rs.For,
							"range over map %s in encoder-feeding function %s: iteration order is nondeterministic and the encoded bytes are compared across runs; iterate sorted keys instead", t, fd.Name.Name)
					}
				}
				return true
			})
		}
	}
	return nil
}

// encoderFeeders returns the functions whose bodies feed wire/checkpoint
// encoders: seeds are functions that call an encoding entry point (or are
// named like one), and the set closes over their direct same-package
// callees — one level of transitivity, matching how encode helpers are
// factored in this module.
func encoderFeeders(pass *Pass) map[*ast.FuncDecl]bool {
	byObj := make(map[types.Object]*ast.FuncDecl)
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			decls = append(decls, fd)
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				byObj[obj] = fd
			}
		}
	}
	seeds := make(map[*ast.FuncDecl]bool)
	for _, fd := range decls {
		switch fd.Name.Name {
		case "Encode", "Checkpoint", "MarshalJSON", "MarshalBinary":
			seeds[fd] = true
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			default:
				return true
			}
			if fn, ok := pass.Info.Uses[id].(*types.Func); ok && isEncoderFunc(fn) {
				seeds[fd] = true
				return false
			}
			return true
		})
	}
	out := make(map[*ast.FuncDecl]bool, len(seeds))
	for fd := range seeds {
		out[fd] = true
	}
	for fd := range seeds {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			default:
				return true
			}
			if obj := pass.Info.Uses[id]; obj != nil {
				if callee, ok := byObj[obj]; ok {
					out[callee] = true
				}
			}
			return true
		})
	}
	return out
}
